package repro

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/placer"
)

// ---------------------------------------------------------------------------
// PR 7 — scaling the solve path: synthetic instances, parallel
// tempering time-to-target, and the enforced bench trend.

// ttChains is the chain budget both sides of the comparison get.
const ttChains = 4

// ttBaseline is the multi-start reference configuration: ttChains
// chains on the stock cooling rate, a move budget proportional to the
// instance (n/4 moves per stage), run to its stage bound. Its best
// cost is the target the tempering run must reach.
func ttBaseline(n int) placer.Schedule {
	return placer.Schedule{MovesPerStage: n / 4, MaxStages: 120, StallStages: 40, Cooling: 0.95}
}

// ttTempered is the tempering configuration measured against the
// baseline: the same chain count and per-stage move budget, but a 3×
// faster cooling rate. Plain multi-start quenches on this schedule;
// tempering tolerates it because the top-anchored ladder starts the
// cold rung deep into the temperature range and the hot rungs keep
// supplying mobility through exchange.
func ttTempered(n int) placer.Schedule {
	return placer.Schedule{MovesPerStage: n / 4, MaxStages: 40, StallStages: 40, Cooling: 0.95 * 0.95 * 0.95}
}

// ttSolveBaseline runs the multi-start reference and returns its best
// cost (the target) and wall-clock.
func ttSolveBaseline(tb testing.TB, p *placer.Problem) (target float64, wall time.Duration) {
	tb.Helper()
	n := len(p.Modules)
	t0 := time.Now()
	res, err := placer.Solve(context.Background(), p,
		placer.WithAlgorithm(placer.SeqPair), placer.WithSeed(7),
		placer.WithSchedule(ttBaseline(n)), placer.WithWorkers(ttChains))
	if err != nil {
		tb.Fatal(err)
	}
	return res.Cost, time.Since(t0)
}

// ttSolveTempered runs the tempered quench with a progress watcher
// that cancels the solve the moment any rung's best reaches the
// target. It returns the wall-clock to that point and whether the
// target was reached at all.
func ttSolveTempered(tb testing.TB, p *placer.Problem, target float64) (wall time.Duration, cost float64, hit bool) {
	tb.Helper()
	n := len(p.Modules)
	var reached atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t0 := time.Now()
	res, err := placer.Solve(ctx, p,
		placer.WithAlgorithm(placer.SeqPair), placer.WithSeed(7),
		placer.WithSchedule(ttTempered(n)),
		placer.WithTempering(ttChains, 1),
		placer.WithProgress(func(pr placer.Progress) {
			if pr.Best <= target && reached.CompareAndSwap(false, true) {
				cancel()
			}
		}))
	if err != nil {
		tb.Fatal(err)
	}
	return time.Since(t0), res.Cost, reached.Load() || res.Cost <= target
}

// BenchmarkTemperTimeToTarget reports the wall-clock a tempered solve
// needs to reach the best cost a same-chain-budget multi-start run
// achieves on a synthetic instance: ns/op is the tempering
// time-to-target. The multi-start baseline runs once outside the
// timer (the solver is deterministic, so its cost and wall are fixed
// for the pinned seeds) and is exported as the target_wall_ms metric,
// so the checked-in trend records both sides. The n=10000 case takes
// minutes per pass and only runs when SCALE_BENCH_LARGE is set; CI
// gates the n=1000 case.
func BenchmarkTemperTimeToTarget(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n >= 10000 && os.Getenv("SCALE_BENCH_LARGE") == "" {
				b.Skip("set SCALE_BENCH_LARGE=1 to run the multi-minute case")
			}
			p, err := placer.Synthetic(placer.SyntheticSpec{N: n, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			target, msWall := ttSolveBaseline(b, p)
			var ratio, gap float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tpWall, tpCost, hit := ttSolveTempered(b, p, target)
				if n <= 1000 && !hit {
					// The n=1000 hit is deterministic for the pinned seeds;
					// losing it means the tempering search regressed.
					b.Fatalf("tempering never reached the multi-start cost %.6g", target)
				}
				ratio = tpWall.Seconds() / msWall.Seconds()
				gap = tpCost/target - 1
			}
			b.StopTimer()
			b.ReportMetric(ratio, "wall_ratio")
			b.ReportMetric(gap*100, "cost_gap_%")
			b.ReportMetric(float64(msWall.Milliseconds()), "target_wall_ms")
		})
	}
}

// TestTemperTimeToTarget enforces the scaling contract at n=1000 on
// every full test run: the tempered quench must reach the multi-start
// best cost, in well under the multi-start wall-clock. The measured
// ratio on an unloaded single core is ~0.35; the assertion allows
// 0.60 so a loaded CI machine does not flake, and the large-instance
// measurement lives in TestTemperTimeToTargetLarge.
func TestTemperTimeToTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second solve comparison")
	}
	p, err := placer.Synthetic(placer.SyntheticSpec{N: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target, msWall := ttSolveBaseline(t, p)
	tpWall, tpCost, hit := ttSolveTempered(t, p, target)
	ratio := tpWall.Seconds() / msWall.Seconds()
	t.Logf("multi-start %.4g in %v; tempering reached %.4g in %v (ratio %.3f)",
		target, msWall, tpCost, tpWall, ratio)
	if !hit {
		t.Fatalf("tempering never reached the multi-start cost %.6g (got %.6g)", target, tpCost)
	}
	if ratio > 0.60 {
		t.Fatalf("time-to-target ratio %.3f above the 0.60 bound (baseline %v, tempering %v)", ratio, msWall, tpWall)
	}
}

// TestTemperTimeToTargetLarge is the n=10⁴ scaling measurement. The
// baseline alone runs for many minutes, so the test only runs when
// SCALE_BENCH_LARGE is set; its output is the source of the scaling
// table in PERFORMANCE.md. At this size the full-budget multi-start
// best is not reachable on a third of the move budget — the search is
// move-starved, so cost quality tracks total moves — and the honest
// contract is an envelope: at ≤0.45× the baseline wall the tempered
// quench must land within 15% of the full-budget target (measured:
// 10.8% above at 0.37× on an idle single core).
func TestTemperTimeToTargetLarge(t *testing.T) {
	if os.Getenv("SCALE_BENCH_LARGE") == "" {
		t.Skip("set SCALE_BENCH_LARGE=1 to run the multi-minute case")
	}
	p, err := placer.Synthetic(placer.SyntheticSpec{N: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target, msWall := ttSolveBaseline(t, p)
	tpWall, tpCost, hit := ttSolveTempered(t, p, target)
	ratio := tpWall.Seconds() / msWall.Seconds()
	gap := tpCost/target - 1
	t.Logf("n=10000: multi-start %.4g in %v; tempering %.4g in %v (ratio %.3f, gap %.1f%%)",
		target, msWall, tpCost, tpWall, ratio, gap*100)
	if !hit && (ratio > 0.45 || gap > 0.15) {
		t.Fatalf("tempered quench outside the envelope: ratio %.3f (want ≤0.45 on a miss), gap %.1f%% (want ≤15%%)",
			ratio, gap*100)
	}
}
