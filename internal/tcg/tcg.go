// Package tcg implements the transitive closure graph representation
// for non-slicing floorplans (Lin/Chang [15]), one of the topological
// encodings Section II lists alongside sequence-pairs and B*-trees.
//
// A TCG is a pair of directed acyclic graphs over the modules: Ch
// captures horizontal relations (an edge i→j means module i is left of
// module j) and Cv vertical relations (i below j). Validity requires
// that every module pair appears in exactly one of the graphs and that
// both graphs equal their transitive closures. Packing is a longest
// path computation: widths along Ch give x, heights along Cv give y.
//
// Perturbations follow the TCG paper: rotation, swap (exchange two
// modules' nodes), reversal of a reduction edge, and moving a
// reduction edge to the other graph — each maintaining the closure
// invariants incrementally.
package tcg

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/seqpair"
)

// TCG is a transitive closure graph pair over modules 0..n-1.
type TCG struct {
	n    int
	W, H []int
	// h[i][j]: i left of j; v[i][j]: i below j.
	h, v [][]bool

	// saved is the preallocated rollback buffer of Perturb, created
	// lazily and never copied by Clone.
	saved *State
}

// State is a reusable snapshot of a TCG's mutable search state (both
// relation matrices and the rotatable dimensions), backing the
// exact-undo protocol of the in-place annealing engine. The zero value
// is ready to use and stops allocating once its buffers match the
// module count.
type State struct {
	w, h   []int
	hm, vm []bool // row-major flattened matrices
}

// SaveState copies t's dimensions and relation matrices into s.
func (t *TCG) SaveState(s *State) {
	s.w = append(s.w[:0], t.W...)
	s.h = append(s.h[:0], t.H...)
	s.hm = s.hm[:0]
	s.vm = s.vm[:0]
	for i := 0; i < t.n; i++ {
		s.hm = append(s.hm, t.h[i]...)
		s.vm = append(s.vm, t.v[i]...)
	}
}

// LoadState restores a snapshot previously captured with SaveState.
// The TCG must have the same module count as when the state was saved.
func (t *TCG) LoadState(s *State) {
	copy(t.W, s.w)
	copy(t.H, s.h)
	for i := 0; i < t.n; i++ {
		copy(t.h[i], s.hm[i*t.n:(i+1)*t.n])
		copy(t.v[i], s.vm[i*t.n:(i+1)*t.n])
	}
}

// PackWorkspace holds the reusable buffers of a packing evaluation. A
// workspace reused across PackInto calls makes packing allocation-free
// at steady state. The zero value is ready to use.
type PackWorkspace struct {
	x, y        []int
	order, pred []int
	seen        []bool
}

// ensure sizes all buffers for n modules.
func (ws *PackWorkspace) ensure(n int) {
	if cap(ws.x) < n {
		ws.x = make([]int, n)
		ws.y = make([]int, n)
	}
	ws.x, ws.y = ws.x[:n], ws.y[:n]
	ws.ensureScratch(n)
}

// ensureScratch sizes only the longest-path scratch (not the
// coordinate buffers, which Pack supplies itself).
func (ws *PackWorkspace) ensureScratch(n int) {
	if cap(ws.order) < n {
		ws.order = make([]int, n)
		ws.pred = make([]int, n)
		ws.seen = make([]bool, n)
	}
	ws.order, ws.pred, ws.seen = ws.order[:n], ws.pred[:n], ws.seen[:n]
}

// PackInto computes lower-left coordinates using ws for every
// intermediate buffer. The returned slices are owned by the workspace
// and overwritten by the next PackInto on the same workspace.
func (t *TCG) PackInto(ws *PackWorkspace) (x, y []int) {
	ws.ensure(t.n)
	longestPathInto(ws.x, t.h, t.W, t.n, ws)
	longestPathInto(ws.y, t.v, t.H, t.n, ws)
	return ws.x, ws.y
}

// New returns the TCG of a single horizontal row (module i left of
// every j > i), which is trivially closed and covering.
func New(w, h []int) *TCG {
	n := len(w)
	if len(h) != n {
		panic("tcg: dimension slices differ in length")
	}
	t := &TCG{
		n: n,
		W: append([]int(nil), w...),
		H: append([]int(nil), h...),
		h: newMatrix(n),
		v: newMatrix(n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.h[i][j] = true
		}
	}
	return t
}

func newMatrix(n int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	return m
}

// FromSeqPair converts a sequence-pair into its TCG: left-of relations
// become Ch edges, below relations become Cv edges. The result is
// always a valid TCG (the two representations are equivalent).
func FromSeqPair(sp *seqpair.SP, w, h []int) (*TCG, error) {
	n := sp.N()
	if len(w) != n || len(h) != n {
		return nil, fmt.Errorf("tcg: dims length mismatch with %d modules", n)
	}
	t := New(w, h)
	for i := range t.h {
		for j := range t.h[i] {
			t.h[i][j] = false
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if sp.LeftOf(i, j) {
				t.h[i][j] = true
			} else if sp.Below(i, j) {
				t.v[i][j] = true
			}
		}
	}
	return t, nil
}

// N returns the module count.
func (t *TCG) N() int { return t.n }

// Clone returns a deep copy.
func (t *TCG) Clone() *TCG {
	c := &TCG{
		n: t.n,
		W: append([]int(nil), t.W...),
		H: append([]int(nil), t.H...),
		h: newMatrix(t.n),
		v: newMatrix(t.n),
	}
	for i := 0; i < t.n; i++ {
		copy(c.h[i], t.h[i])
		copy(c.v[i], t.v[i])
	}
	return c
}

// LeftOf reports whether i is left of j.
func (t *TCG) LeftOf(i, j int) bool { return t.h[i][j] }

// Below reports whether i is below j.
func (t *TCG) Below(i, j int) bool { return t.v[i][j] }

// Validate checks the three TCG invariants: pair coverage (every
// distinct pair related in exactly one graph and one direction),
// acyclicity (implied by coverage and closure, checked anyway), and
// transitive closure of both graphs.
func (t *TCG) Validate() error {
	for i := 0; i < t.n; i++ {
		if t.h[i][i] || t.v[i][i] {
			return fmt.Errorf("tcg: self-loop at module %d", i)
		}
		for j := 0; j < t.n; j++ {
			if i == j {
				continue
			}
			count := 0
			for _, b := range [4]bool{t.h[i][j], t.h[j][i], t.v[i][j], t.v[j][i]} {
				if b {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("tcg: pair (%d,%d) has %d relations, want 1", i, j, count)
			}
		}
	}
	for _, g := range [2][][]bool{t.h, t.v} {
		for i := 0; i < t.n; i++ {
			for j := 0; j < t.n; j++ {
				if !g[i][j] {
					continue
				}
				for k := 0; k < t.n; k++ {
					if g[j][k] && !g[i][k] {
						return fmt.Errorf("tcg: closure missing %d->%d (via %d)", i, k, j)
					}
				}
			}
		}
	}
	return nil
}

// Pack computes lower-left coordinates by longest path over Ch
// (weights = widths) and Cv (weights = heights). The returned slices
// are freshly allocated; hot loops should reuse a PackWorkspace via
// PackInto.
func (t *TCG) Pack() (x, y []int) {
	var ws PackWorkspace
	ws.ensureScratch(t.n)
	x = make([]int, t.n)
	y = make([]int, t.n)
	longestPathInto(x, t.h, t.W, t.n, &ws)
	longestPathInto(y, t.v, t.H, t.n, &ws)
	return x, y
}

// longestPathInto computes, for each node, the maximum weighted path
// of predecessors into coord. Since the graph is transitively closed,
// predecessors can be relaxed directly in topological order.
func longestPathInto(coord []int, g [][]bool, w []int, n int, ws *PackWorkspace) {
	// Topological order by predecessor counts (the closure makes
	// in-degree equal the number of all ancestors).
	order, pred, seen := ws.order, ws.pred, ws.seen
	for j := 0; j < n; j++ {
		pred[j] = 0
		seen[j] = false
		coord[j] = 0
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if g[i][j] {
				pred[j]++
			}
		}
	}
	idx := 0
	for idx < n {
		progress := false
		for j := 0; j < n; j++ {
			if !seen[j] && pred[j] == 0 {
				order[idx] = j
				idx++
				seen[j] = true
				for k := 0; k < n; k++ {
					if g[j][k] {
						pred[k]--
					}
				}
				progress = true
			}
		}
		if !progress {
			// Cyclic (invalid TCG); return zeros rather than spin.
			for j := 0; j < n; j++ {
				coord[j] = 0
			}
			return
		}
	}
	for _, j := range order {
		for i := 0; i < n; i++ {
			if g[i][j] && coord[i]+w[i] > coord[j] {
				coord[j] = coord[i] + w[i]
			}
		}
	}
}

// Placement packs and returns a named placement.
func (t *TCG) Placement(names []string) (geom.Placement, error) {
	if len(names) != t.n {
		return nil, fmt.Errorf("tcg: %d names for %d modules", len(names), t.n)
	}
	x, y := t.Pack()
	p := geom.Placement{}
	for i := 0; i < t.n; i++ {
		p[names[i]] = geom.NewRect(x[i], y[i], t.W[i], t.H[i])
	}
	return p, nil
}

// Span returns the packing's total width and height.
func (t *TCG) Span() (int, int) {
	x, y := t.Pack()
	var tw, th int
	for i := 0; i < t.n; i++ {
		if x[i]+t.W[i] > tw {
			tw = x[i] + t.W[i]
		}
		if y[i]+t.H[i] > th {
			th = y[i] + t.H[i]
		}
	}
	return tw, th
}

// isReduction reports whether edge i→j of g has no intermediate node
// (i→k→j), i.e. it is in the transitive reduction.
func isReduction(g [][]bool, i, j, n int) bool {
	if !g[i][j] {
		return false
	}
	for k := 0; k < n; k++ {
		if g[i][k] && g[k][j] {
			return false
		}
	}
	return true
}

// Rotate swaps a module's width and height.
func (t *TCG) Rotate(m int) { t.W[m], t.H[m] = t.H[m], t.W[m] }

// Swap exchanges the graph nodes of modules a and b (their dimensions
// stay attached to the ids), i.e. swaps rows and columns in both
// matrices.
func (t *TCG) Swap(a, b int) {
	if a == b {
		return
	}
	for _, g := range [2][][]bool{t.h, t.v} {
		g[a], g[b] = g[b], g[a]
		for i := 0; i < t.n; i++ {
			g[i][a], g[i][b] = g[i][b], g[i][a]
		}
	}
}

// Reverse reverses the reduction edge i→j in the chosen graph
// (horizontal true = Ch) and restores the closure: every predecessor
// of j (plus j) gains an edge to every successor of i (plus i) in that
// graph, with the corresponding relations removed from the other
// graph. It returns an error if the edge is absent or not a reduction
// edge.
func (t *TCG) Reverse(i, j int, horizontal bool) error {
	g, o := t.v, t.h
	if horizontal {
		g, o = t.h, t.v
	}
	if !isReduction(g, i, j, t.n) {
		return fmt.Errorf("tcg: %d->%d is not a reduction edge", i, j)
	}
	g[i][j] = false
	// Sources: j and its predecessors; sinks: i and its successors.
	srcs := []int{j}
	for a := 0; a < t.n; a++ {
		if g[a][j] {
			srcs = append(srcs, a)
		}
	}
	dsts := []int{i}
	for b := 0; b < t.n; b++ {
		if g[i][b] {
			dsts = append(dsts, b)
		}
	}
	for _, a := range srcs {
		for _, b := range dsts {
			if a == b {
				continue
			}
			if g[b][a] {
				// Existing opposite relation stays (a is already
				// after b); adding a->b would create a cycle, and
				// closure does not require it because the b->a
				// relation orders the pair.
				continue
			}
			g[a][b] = true
			o[a][b], o[b][a] = false, false
		}
	}
	return nil
}

// Move transfers the reduction edge i→j from one graph to the other
// (horizontal names the graph currently holding it) and restores the
// closure of the receiving graph.
func (t *TCG) Move(i, j int, horizontal bool) error {
	g, o := t.v, t.h
	if horizontal {
		g, o = t.h, t.v
	}
	if !isReduction(g, i, j, t.n) {
		return fmt.Errorf("tcg: %d->%d is not a reduction edge", i, j)
	}
	g[i][j] = false
	o[i][j] = true
	// Close the receiving graph: predecessors of i (plus i) must reach
	// successors of j (plus j).
	srcs := []int{i}
	for a := 0; a < t.n; a++ {
		if o[a][i] {
			srcs = append(srcs, a)
		}
	}
	dsts := []int{j}
	for b := 0; b < t.n; b++ {
		if o[j][b] {
			dsts = append(dsts, b)
		}
	}
	for _, a := range srcs {
		for _, b := range dsts {
			if a == b {
				continue
			}
			if o[b][a] {
				continue
			}
			o[a][b] = true
			g[a][b], g[b][a] = false, false
		}
	}
	return nil
}

// reductionEdges lists the transitive-reduction edges of one graph.
func (t *TCG) reductionEdges(horizontal bool) [][2]int {
	g := t.v
	if horizontal {
		g = t.h
	}
	var out [][2]int
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if i != j && isReduction(g, i, j, t.n) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Perturb applies one random validity-preserving perturbation.
// Rotation and swap always preserve validity; edge reversal and edge
// move use incremental closure updates that cover the regular cases
// and are verified afterwards — a move that would leave the graphs
// inconsistent (the donor graph losing closure through a removed
// relation) is rolled back, so the TCG stays valid unconditionally.
func (t *TCG) Perturb(rng *rand.Rand) {
	if t.n < 2 {
		return
	}
	switch rng.Intn(4) {
	case 0:
		t.Rotate(rng.Intn(t.n))
	case 1:
		a := rng.Intn(t.n)
		b := rng.Intn(t.n - 1)
		if b >= a {
			b++
		}
		t.Swap(a, b)
	case 2, 3:
		horizontal := rng.Intn(2) == 0
		edges := t.reductionEdges(horizontal)
		if len(edges) == 0 {
			horizontal = !horizontal
			edges = t.reductionEdges(horizontal)
		}
		if len(edges) == 0 {
			return
		}
		e := edges[rng.Intn(len(edges))]
		if t.saved == nil {
			t.saved = &State{}
		}
		t.SaveState(t.saved)
		var err error
		if rng.Intn(2) == 0 {
			err = t.Reverse(e[0], e[1], horizontal)
		} else {
			err = t.Move(e[0], e[1], horizontal)
		}
		if err != nil || t.Validate() != nil {
			t.LoadState(t.saved)
		}
	}
}
