package tcg

import (
	"math/rand"
	"testing"

	"repro/internal/seqpair"
)

func TestNewRowIsValid(t *testing.T) {
	tc := New([]int{10, 20, 30}, []int{5, 5, 5})
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	x, y := tc.Pack()
	if x[0] != 0 || x[1] != 10 || x[2] != 30 {
		t.Fatalf("x = %v, want [0 10 30]", x)
	}
	for _, yi := range y {
		if yi != 0 {
			t.Fatal("row packing must have y = 0")
		}
	}
	tw, th := tc.Span()
	if tw != 60 || th != 5 {
		t.Fatalf("span %dx%d, want 60x5", tw, th)
	}
}

// The TCG of a sequence-pair must pack to exactly the same coordinates
// as the sequence-pair's own longest-path packing (the two
// representations encode the same relations).
func TestFromSeqPairPacksIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		sp := seqpair.New(n)
		sp.Shuffle(rng)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(25)
			h[i] = 1 + rng.Intn(25)
		}
		tc, err := FromSeqPair(sp, w, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.Validate(); err != nil {
			t.Fatalf("trial %d: TCG from SP invalid: %v\nsp=%v", trial, err, sp)
		}
		xs, ys := sp.Pack(w, h)
		xt, yt := tc.Pack()
		for i := 0; i < n; i++ {
			if xs[i] != xt[i] || ys[i] != yt[i] {
				t.Fatalf("trial %d: module %d at (%d,%d) in SP but (%d,%d) in TCG",
					trial, i, xs[i], ys[i], xt[i], yt[i])
			}
		}
	}
}

// Validity and packing legality must survive arbitrary perturbation
// sequences — the core invariant of the representation.
func TestPerturbPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		w := make([]int, n)
		h := make([]int, n)
		names := make([]string, n)
		for i := range w {
			w[i] = 1 + rng.Intn(20)
			h[i] = 1 + rng.Intn(20)
			names[i] = string(rune('a' + i))
		}
		tc := New(w, h)
		for step := 0; step < 120; step++ {
			tc.Perturb(rng)
			if err := tc.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			pl, err := tc.Placement(names)
			if err != nil {
				t.Fatal(err)
			}
			if !pl.Legal() {
				t.Fatalf("trial %d step %d: overlaps %v", trial, step, pl.Overlaps())
			}
		}
	}
}

func TestReverseSimple(t *testing.T) {
	// Row 0->1->2; reverse reduction edge 0->1.
	tc := New([]int{5, 5, 5}, []int{5, 5, 5})
	if err := tc.Reverse(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tc.LeftOf(1, 0) {
		t.Fatal("reversal must flip the relation")
	}
	// Non-reduction edge 0->2 in the original row cannot be reversed.
	tc2 := New([]int{5, 5, 5}, []int{5, 5, 5})
	if err := tc2.Reverse(0, 2, true); err == nil {
		t.Fatal("reversing a non-reduction edge must fail")
	}
	if err := tc2.Reverse(2, 0, true); err == nil {
		t.Fatal("reversing an absent edge must fail")
	}
}

func TestMoveSimple(t *testing.T) {
	// Row of two: move 0->1 from Ch to Cv stacks them.
	tc := New([]int{6, 8}, []int{3, 4})
	if err := tc.Move(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tc.Below(0, 1) {
		t.Fatal("move must transfer the relation to Cv")
	}
	tw, th := tc.Span()
	if tw != 8 || th != 7 {
		t.Fatalf("span %dx%d, want 8x7", tw, th)
	}
}

func TestSwapAndRotate(t *testing.T) {
	tc := New([]int{4, 9}, []int{3, 2})
	tc.Swap(0, 1)
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tc.LeftOf(1, 0) {
		t.Fatal("swap must exchange graph positions")
	}
	tc.Rotate(0)
	if tc.W[0] != 3 || tc.H[0] != 4 {
		t.Fatal("rotate must swap dims")
	}
	tc.Swap(1, 1) // self swap is a no-op
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsBreakage(t *testing.T) {
	tc := New([]int{1, 2, 3}, []int{1, 1, 1})
	tc.h[0][1] = false // pair (0,1) now unrelated
	if err := tc.Validate(); err == nil {
		t.Fatal("missing relation must fail validation")
	}
	tc2 := New([]int{1, 2, 3}, []int{1, 1, 1})
	tc2.v[1][0] = true // double relation
	if err := tc2.Validate(); err == nil {
		t.Fatal("double relation must fail validation")
	}
	tc3 := New([]int{1, 2, 3}, []int{1, 1, 1})
	tc3.h[0][2] = false
	tc3.v[0][2] = true // 0 left of 1 left of 2 but 0 below 2: closure broken
	if err := tc3.Validate(); err == nil {
		t.Fatal("closure violation must fail validation")
	}
}

// Random exploration must reach both stacked and side-by-side
// arrangements (the representation spans non-slicing floorplans).
func TestPerturbExploresArrangements(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tc := New([]int{10, 10, 10}, []int{10, 10, 10})
	seen := map[[2]int]bool{}
	for step := 0; step < 400; step++ {
		tc.Perturb(rng)
		tw, th := tc.Span()
		seen[[2]int{tw, th}] = true
	}
	if len(seen) < 3 {
		t.Fatalf("explored only %d distinct spans", len(seen))
	}
	if !seen[[2]int{30, 10}] && !seen[[2]int{10, 30}] {
		t.Fatal("never reached a full row or column")
	}
}

func TestPlacementNamesMismatch(t *testing.T) {
	tc := New([]int{1}, []int{1})
	if _, err := tc.Placement(nil); err == nil {
		t.Fatal("wrong name count must fail")
	}
}

func TestFromSeqPairValidation(t *testing.T) {
	sp := seqpair.New(3)
	if _, err := FromSeqPair(sp, []int{1, 2}, []int{1, 2, 3}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
}

func BenchmarkTCGPack(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const n = 100
	sp := seqpair.New(n)
	sp.Shuffle(rng)
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	tc, err := FromSeqPair(sp, w, h)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Pack()
	}
}
