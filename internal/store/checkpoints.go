package store

import (
	"container/list"
	"sync"
)

// Checkpoints holds best-so-far solver snapshots for interrupted
// jobs, keyed by content hash and, inside a hash, by algorithm (a
// portfolio run checkpoints every racer; a resumed racer warm-starts
// from its own representation only — snapshots are not portable
// across representations). It is bounded LRU by hash.
//
// Unlike results and job records, snapshots are live solver state
// (opaque `any` values holding engine internals), so this store is
// memory-only — there is nothing meaningful to serialize to a file
// backend, and a cold instance simply starts cold. It lives in this
// package so the scheduler's storage dependencies are all behind one
// door. It has its own mutex because saves arrive from annealing
// goroutines mid-solve, not from under the scheduler's lock.
type Checkpoints struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent hash; values are *ckptSet
	byKey map[string]*list.Element

	saved   int64 // snapshots accepted (improved on the stored cost)
	resumed int64 // loads that handed a snapshot to a warm start
}

type ckptSet struct {
	hash  string
	algos map[string]ckptEntry
}

type ckptEntry struct {
	snapshot any
	cost     float64
	stage    int
}

// NewCheckpoints returns a checkpoint store bounded to capacity
// distinct content hashes.
func NewCheckpoints(capacity int) *Checkpoints {
	return &Checkpoints{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Save records a snapshot if it improves on (or first establishes)
// the stored cost for (hash, algorithm); stale saves from a slower
// chain never overwrite a better checkpoint. Reports acceptance.
func (c *Checkpoints) Save(hash, algorithm string, snapshot any, cost float64, stage int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[hash]
	if !ok {
		el = c.order.PushFront(&ckptSet{hash: hash, algos: make(map[string]ckptEntry)})
		c.byKey[hash] = el
		for c.order.Len() > c.cap {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.byKey, last.Value.(*ckptSet).hash)
		}
	} else {
		c.order.MoveToFront(el)
	}
	set := el.Value.(*ckptSet)
	if prev, ok := set.algos[algorithm]; ok && prev.cost <= cost {
		return false
	}
	set.algos[algorithm] = ckptEntry{snapshot: snapshot, cost: cost, stage: stage}
	c.saved++
	return true
}

// Load returns the stored snapshot for (hash, algorithm), if any.
func (c *Checkpoints) Load(hash, algorithm string) (any, float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[hash]
	if !ok {
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	entry, ok := el.Value.(*ckptSet).algos[algorithm]
	if !ok {
		return nil, 0, false
	}
	c.resumed++
	return entry.snapshot, entry.cost, true
}

// Drop discards every checkpoint under a hash (the canonical solve
// completed; the result cache takes over).
func (c *Checkpoints) Drop(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[hash]; ok {
		c.order.Remove(el)
		delete(c.byKey, hash)
	}
}

// Counters returns the save/resume totals for /metrics.
func (c *Checkpoints) Counters() (saved, resumed, entries int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved, c.resumed, int64(c.order.Len())
}
