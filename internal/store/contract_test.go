// The Store contract, run identically against every backend: a test
// that passes on Memory and fails on File (or vice versa) means the
// scheduler would behave differently depending on a flag, which is
// exactly what the interface exists to prevent.
package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// backends enumerates every Store implementation under test; a new
// backend joins the contract by adding a constructor here.
func backends(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"memory": func() Store { return NewMemory(1024) },
		"file": func() Store {
			f, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
}

func TestContract(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("PutGetDelete", func(t *testing.T) { testPutGetDelete(t, mk()) })
			t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, mk()) })
			t.Run("TTL", func(t *testing.T) { testTTL(t, mk()) })
			t.Run("KeysAndStats", func(t *testing.T) { testKeysAndStats(t, mk()) })
			t.Run("KeyValidation", func(t *testing.T) { testKeyValidation(t, mk()) })
			t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, mk()) })
		})
	}
}

func testPutGetDelete(t *testing.T, s Store) {
	defer s.Close()
	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("Get(absent) = ok=%v err=%v, want miss", ok, err)
	}
	val := []byte(`{"cost": 12.5}`)
	if err := s.Put("abc123", val, 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("abc123")
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if string(got) != string(val) {
		t.Fatalf("Get = %q, want %q", got, val)
	}
	// The returned slice must be the caller's to mutate.
	got[0] = 'X'
	if again, _, _ := s.Get("abc123"); string(again) != string(val) {
		t.Fatalf("mutating a Get result corrupted the store: %q", again)
	}
	if err := s.Delete("abc123"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("abc123"); ok {
		t.Fatal("Get after Delete still hits")
	}
	if err := s.Delete("abc123"); err != nil {
		t.Fatalf("Delete of missing key must be a no-op, got %v", err)
	}
}

func testOverwrite(t *testing.T, s Store) {
	defer s.Close()
	if err := s.Put("k", []byte("first-longer-value"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("second"), 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "second" {
		t.Fatalf("Get after overwrite = %q ok=%v err=%v", got, ok, err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Bytes != int64(len("second")) {
		t.Fatalf("Stats after overwrite = %+v, want 1 entry / %d bytes", st, len("second"))
	}
}

func testTTL(t *testing.T, s Store) {
	defer s.Close()
	if err := s.Put("ephemeral", []byte("x"), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("durable", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("ephemeral"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	time.Sleep(40 * time.Millisecond)
	if _, ok, _ := s.Get("ephemeral"); ok {
		t.Fatal("entry readable past its TTL")
	}
	if _, ok, _ := s.Get("durable"); !ok {
		t.Fatal("ttl=0 entry expired")
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "durable" {
		t.Fatalf("Keys after expiry = %v, want [durable]", keys)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("Stats counts expired entries: %+v", st)
	}
}

func testKeysAndStats(t *testing.T, s Store) {
	defer s.Close()
	want := int64(0)
	for i := 0; i < 5; i++ {
		v := []byte(fmt.Sprintf("value-%d", i))
		want += int64(len(v))
		if err := s.Put(fmt.Sprintf("key-%d", i), v, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("Keys = %v, want 5", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for i := 0; i < 5; i++ {
		if k := fmt.Sprintf("key-%d", i); !seen[k] {
			t.Fatalf("Keys missing %q: %v", k, keys)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5 || st.Bytes != want {
		t.Fatalf("Stats = %+v, want 5 entries / %d bytes", st, want)
	}
}

func testKeyValidation(t *testing.T, s Store) {
	defer s.Close()
	bad := []string{"", ".hidden", "a/b", "a b", "k\x00", string(make([]byte, MaxKeyLen+1))}
	for _, k := range bad {
		if err := s.Put(k, []byte("v"), 0); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
	}
	good := []string{"a", "UPPER.lower_mix-42", "sha256-deadbeef"}
	for _, k := range good {
		if err := s.Put(k, []byte("v"), 0); err != nil {
			t.Errorf("Put(%q): %v", k, err)
		}
	}
}

func testConcurrent(t *testing.T, s Store) {
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i%10)
				if err := s.Put(key, []byte(fmt.Sprintf("%d/%d", g, i)), 0); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					if _, err := s.Keys(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 80 {
		t.Fatalf("Stats after concurrent writes = %+v, want 80 entries", st)
	}
}
