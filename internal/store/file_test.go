// File-backend specifics beyond the shared contract: persistence
// across reopen, cross-instance visibility (the fleet-cache claim),
// LRU eviction and TTL on the memory backend, and the typed adapters'
// round-trips.
package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("survives"), 0); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get("k")
	if err != nil || !ok || string(got) != "survives" {
		t.Fatalf("after reopen: %q ok=%v err=%v", got, ok, err)
	}
}

// TestFileCrossInstance is the fleet-cache property at the blob
// level: two Store handles on one directory — two daemon processes in
// miniature — see each other's writes, deletes, and TTLs.
func TestFileCrossInstance(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("shared", []byte("from-a"), 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get("shared")
	if err != nil || !ok || string(got) != "from-a" {
		t.Fatalf("instance b misses instance a's write: %q ok=%v err=%v", got, ok, err)
	}
	// TTL written by a is honored by b.
	if err := a.Put("fleeting", []byte("x"), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, ok, _ := b.Get("fleeting"); ok {
		t.Fatal("instance b served an entry past the TTL instance a wrote")
	}
	if err := b.Delete("shared"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get("shared"); ok {
		t.Fatal("instance a still hits after instance b's delete")
	}
}

// TestFileIgnoresTempFiles pins the atomicity mechanism: in-progress
// dot-prefixed temp files are invisible to Keys/Stats and unreadable
// as keys.
func TestFileIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-abandoned"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("real", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	keys, err := f.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "real" {
		t.Fatalf("Keys sees temp files: %v", keys)
	}
	st, _ := f.Stats()
	if st.Entries != 1 {
		t.Fatalf("Stats counts temp files: %+v", st)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(2)
	for _, k := range []string{"a", "b", "c"} {
		if err := m.Put(k, []byte(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := m.Get("a"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok, _ := m.Get(k); !ok {
			t.Fatalf("recent entry %q evicted", k)
		}
	}
	// Touch "b", insert "d": "c" is now the LRU victim.
	if _, ok, _ := m.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if err := m.Put("d", []byte("d"), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("c"); ok {
		t.Fatal("LRU evicted by insertion order, not recency")
	}
	if _, ok, _ := m.Get("b"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	st, _ := m.Stats()
	if st.Entries != 2 {
		t.Fatalf("Stats = %+v, want 2 entries", st)
	}
}

// TestTypedAdapters round-trips a wire.Result and a JobRecord through
// the JSON adapters over both backends.
func TestTypedAdapters(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			res := &wire.Result{
				Version:   wire.Version,
				Method:    wire.MethodSeqPair,
				Cost:      42.5,
				Placement: []wire.Placed{{Name: "m1", X: 1, Y: 2, W: 3, H: 4}},
			}
			rc := NewResultCache(mk(), 0)
			if err := rc.Put("hash1", res); err != nil {
				t.Fatal(err)
			}
			got, ok, err := rc.Get("hash1")
			if err != nil || !ok {
				t.Fatalf("ResultCache.Get: ok=%v err=%v", ok, err)
			}
			if got.Cost != res.Cost || len(got.Placement) != 1 || got.Placement[0] != res.Placement[0] {
				t.Fatalf("round-trip mangled the result: %+v", got)
			}
			if _, ok, _ := rc.Get("absent"); ok {
				t.Fatal("ResultCache hit on absent hash")
			}

			js := NewJobStore(mk(), 0)
			rec := &JobRecord{ID: "job-7", Hash: "hash1", State: "done",
				Faults: []string{"scheduler/worker-panic"}, Result: res, FinishedMS: 1234}
			if err := js.Put(rec); err != nil {
				t.Fatal(err)
			}
			back, ok, err := js.Get("job-7")
			if err != nil || !ok {
				t.Fatalf("JobStore.Get: ok=%v err=%v", ok, err)
			}
			if back.State != "done" || back.Hash != "hash1" || len(back.Faults) != 1 ||
				back.Result == nil || back.Result.Cost != 42.5 {
				t.Fatalf("JobRecord round-trip mangled: %+v", back)
			}
			if err := js.Put(&JobRecord{}); err == nil {
				t.Fatal("JobStore accepted a record without an id")
			}
		})
	}
}

// TestResultCacheCorruptEntryIsMiss: a torn or corrupt cached result
// must read as a miss (and be dropped) so the hash re-solves instead
// of erroring forever.
func TestResultCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("badhash", []byte("{not json"), 0); err != nil {
		t.Fatal(err)
	}
	rc := NewResultCache(f, 0)
	if _, ok, err := rc.Get("badhash"); ok || err != nil {
		t.Fatalf("corrupt entry: ok=%v err=%v, want clean miss", ok, err)
	}
	if _, ok, _ := f.Get("badhash"); ok {
		t.Fatal("corrupt entry not dropped after the miss")
	}
}
