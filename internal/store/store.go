// Package store is the placement service's pluggable storage layer:
// one blob-level Store interface (content-hash keys, TTL, size
// accounting) with an in-memory LRU backend and a file-backed backend
// sharable between daemon instances, plus the typed adapters the
// scheduler actually talks to — ResultCache (canonical wire results
// keyed by request content hash) and JobStore (terminal job records
// keyed by job id). A Redis- or SQL-backed Store slots in behind the
// same interfaces without the scheduler noticing.
//
// The division of labor: Store moves bytes and owns expiry/eviction;
// the typed adapters own encoding (canonical JSON). Each adapter
// wraps its own backing Store (on disk: sibling subdirectories), so
// results and job records never contend for one namespace. All
// implementations are safe for concurrent use.
package store

import (
	"fmt"
	"time"
)

// Stats is a point-in-time size accounting of a Store.
type Stats struct {
	// Entries is the number of live (non-expired) entries.
	Entries int64
	// Bytes is the total payload size of the live entries.
	Bytes int64
}

// Store is the pluggable blob store. Keys are content hashes or job
// ids — ValidKey spells out the charset — values are opaque bytes.
//
// TTL semantics: ttl > 0 expires the entry that long after the Put;
// ttl == 0 stores without expiry. Expired entries are misses and are
// reaped lazily. Backends may additionally evict live entries under
// their own capacity policy (the memory backend is a bounded LRU), so
// a Put is never a durability promise — this is a cache-and-scratch
// tier, not a database.
type Store interface {
	// Put stores value under key, replacing any previous entry.
	Put(key string, value []byte, ttl time.Duration) error
	// Get returns the value stored under key. The boolean reports
	// presence; an expired or evicted entry is an ordinary miss, while
	// the error reports backend failure (I/O, corruption).
	Get(key string) ([]byte, bool, error)
	// Delete removes the entry; deleting a missing key is a no-op.
	Delete(key string) error
	// Keys lists the live keys in unspecified order.
	Keys() ([]string, error)
	// Stats reports entry and byte accounting.
	Stats() (Stats, error)
	// Close releases backend resources. The Store is unusable after.
	Close() error
}

// MaxKeyLen bounds key length: long enough for a hex SHA-256 plus a
// typed-adapter namespace prefix, short enough for any filesystem.
const MaxKeyLen = 128

// ValidKey reports whether key is storable: 1..MaxKeyLen characters
// from [A-Za-z0-9._-], not starting with a dot (dot-files are the file
// backend's temp/scratch namespace). Both backends enforce it, so a
// key that works in memory never breaks on disk.
func ValidKey(key string) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("store: key length %d outside [1, %d]", len(key), MaxKeyLen)
	}
	if key[0] == '.' {
		return fmt.Errorf("store: key %q starts with a dot", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: key %q contains invalid byte %q", key, c)
		}
	}
	return nil
}
