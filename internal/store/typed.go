package store

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/wire"
)

// ResultCache is the scheduler's content-addressed result cache:
// canonical wire hash → solved result. Entries round-trip through
// JSON, so a Get never aliases a Put — callers may treat results as
// immutable or not, the cache does not care.
type ResultCache interface {
	Put(hash string, res *wire.Result) error
	Get(hash string) (*wire.Result, bool, error)
	Delete(hash string) error
	List() ([]string, error)
	Stats() (Stats, error)
}

// JobRecord is the durable form of a terminal job: everything the
// HTTP surface serves about a finished job — state, result (with its
// flight recording), error, fault history — without the live-only
// machinery (contexts, progress sources, channels).
type JobRecord struct {
	ID       string       `json:"id"`
	Hash     string       `json:"hash"`
	State    string       `json:"state"`
	CacheHit bool         `json:"cache_hit,omitempty"`
	Degraded bool         `json:"degraded,omitempty"`
	Error    string       `json:"error,omitempty"`
	Crashes  int          `json:"crashes,omitempty"`
	Faults   []string     `json:"faults,omitempty"`
	Result   *wire.Result `json:"result,omitempty"`
	// SubmittedMS/FinishedMS are Unix milliseconds; wall-clock is fine
	// here — records are operational history, not solver output.
	SubmittedMS int64 `json:"submitted_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
}

// JobStore persists terminal JobRecords by job id, so a retired job
// stays queryable past the scheduler's in-memory retention window —
// and, on a shared file store, queryable from another instance.
type JobStore interface {
	Put(rec *JobRecord) error
	Get(id string) (*JobRecord, bool, error)
	Delete(id string) error
	List() ([]string, error)
	Stats() (Stats, error)
}

// NewResultCache adapts a blob Store into a ResultCache; every entry
// is written with ttl (0 = no expiry).
func NewResultCache(s Store, ttl time.Duration) ResultCache {
	return &resultCache{s: s, ttl: ttl}
}

type resultCache struct {
	s   Store
	ttl time.Duration
}

func (c *resultCache) Put(hash string, res *wire.Result) error {
	if res == nil {
		return fmt.Errorf("store: nil result for %q", hash)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return c.s.Put(hash, b, c.ttl)
}

func (c *resultCache) Get(hash string) (*wire.Result, bool, error) {
	b, ok, err := c.s.Get(hash)
	if err != nil || !ok {
		return nil, false, err
	}
	var res wire.Result
	if err := json.Unmarshal(b, &res); err != nil {
		// A corrupt entry must read as a miss, not poison the hash
		// forever: drop it and re-solve.
		c.s.Delete(hash)
		return nil, false, nil
	}
	return &res, true, nil
}

func (c *resultCache) Delete(hash string) error { return c.s.Delete(hash) }
func (c *resultCache) List() ([]string, error)  { return c.s.Keys() }
func (c *resultCache) Stats() (Stats, error)    { return c.s.Stats() }

// NewJobStore adapts a blob Store into a JobStore with one ttl for
// every record.
func NewJobStore(s Store, ttl time.Duration) JobStore {
	return &jobStore{s: s, ttl: ttl}
}

type jobStore struct {
	s   Store
	ttl time.Duration
}

func (j *jobStore) Put(rec *JobRecord) error {
	if rec == nil || rec.ID == "" {
		return fmt.Errorf("store: job record without id")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return j.s.Put(rec.ID, b, j.ttl)
}

func (j *jobStore) Get(id string) (*JobRecord, bool, error) {
	b, ok, err := j.s.Get(id)
	if err != nil || !ok {
		return nil, false, err
	}
	var rec JobRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		j.s.Delete(id)
		return nil, false, nil
	}
	return &rec, true, nil
}

func (j *jobStore) Delete(id string) error  { return j.s.Delete(id) }
func (j *jobStore) List() ([]string, error) { return j.s.Keys() }
func (j *jobStore) Stats() (Stats, error)   { return j.s.Stats() }
