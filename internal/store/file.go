package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// File is the file-backed Store: one file per key under a directory,
// an expiry envelope on the first line, atomic writes via temp file +
// rename. Because Get always reads from disk, two daemon processes
// pointed at the same directory see each other's entries — a result
// cached by one instance is a hit on the next, which is what makes a
// shared -store-dir a poor man's fleet cache. There is no capacity
// bound; expired entries are unlinked lazily on access.
type File struct {
	dir string
}

// envelope is the one-line JSON header preceding every payload.
type envelope struct {
	V int `json:"v"`
	// Exp is the expiry as Unix nanoseconds, 0 for no expiry. Expiry
	// travels with the file, so an instance that did not write the
	// entry still honors its TTL.
	Exp int64 `json:"exp"`
}

const envelopeVersion = 1

// NewFile opens (creating if needed) a file Store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &File{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *File) Dir() string { return f.dir }

// Put writes the entry atomically: the envelope and payload go to a
// dot-prefixed temp file (invisible to Keys, impossible as a key)
// which is then renamed over the final name, so a concurrent Get on
// this or another process sees either the old entry or the new one,
// never a torn write.
func (f *File) Put(key string, value []byte, ttl time.Duration) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	var exp int64
	if ttl > 0 {
		exp = time.Now().Add(ttl).UnixNano()
	}
	head, err := json.Marshal(envelope{V: envelopeVersion, Exp: exp})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, err = tmp.Write(append(append(head, '\n'), value...))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(f.dir, key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	return nil
}

// Get reads the entry from disk (no in-process caching — that is what
// makes entries visible across instances). A missing or expired file
// is a miss; a corrupt envelope is an error.
func (f *File) Get(key string) ([]byte, bool, error) {
	if err := ValidKey(key); err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(filepath.Join(f.dir, key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: get %q: %w", key, err)
	}
	head, payload, ok := bytes.Cut(raw, []byte{'\n'})
	if !ok {
		return nil, false, fmt.Errorf("store: get %q: truncated envelope", key)
	}
	var env envelope
	if err := json.Unmarshal(head, &env); err != nil || env.V != envelopeVersion {
		return nil, false, fmt.Errorf("store: get %q: bad envelope %q", key, head)
	}
	if env.expired(time.Now()) {
		os.Remove(filepath.Join(f.dir, key))
		return nil, false, nil
	}
	return payload, true, nil
}

// Delete unlinks the entry; a missing file is a no-op.
func (f *File) Delete(key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(f.dir, key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}

// Keys lists live entries, unlinking expired ones on the way. Entries
// that vanish mid-walk (another instance's Delete or TTL reap) are
// skipped, not errors.
func (f *File) Keys() ([]string, error) {
	var keys []string
	err := f.walk(func(key string, _ int64) {
		keys = append(keys, key)
	})
	return keys, err
}

// Stats sums live entries and their payload bytes (envelope excluded).
func (f *File) Stats() (Stats, error) {
	var st Stats
	err := f.walk(func(_ string, payload int64) {
		st.Entries++
		st.Bytes += payload
	})
	return st, err
}

// Close is a no-op: the directory persists by design.
func (f *File) Close() error { return nil }

func (e envelope) expired(now time.Time) bool {
	return e.Exp != 0 && now.UnixNano() > e.Exp
}

// walk visits every live entry with its payload size, reaping expired
// ones.
func (f *File) walk(visit func(key string, payloadBytes int64)) error {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	now := time.Now()
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name[0] == '.' || ValidKey(name) != nil {
			continue
		}
		env, headLen, size, err := f.readHeader(name)
		if err != nil {
			continue // vanished or torn mid-walk; skip
		}
		if env.expired(now) {
			os.Remove(filepath.Join(f.dir, name))
			continue
		}
		visit(name, size-headLen)
	}
	return nil
}

// readHeader parses just the envelope line of one entry.
func (f *File) readHeader(key string) (env envelope, headLen, size int64, err error) {
	fh, err := os.Open(filepath.Join(f.dir, key))
	if err != nil {
		return env, 0, 0, err
	}
	defer fh.Close()
	info, err := fh.Stat()
	if err != nil {
		return env, 0, 0, err
	}
	head, err := bufio.NewReader(fh).ReadBytes('\n')
	if err != nil {
		return env, 0, 0, err
	}
	if err := json.Unmarshal(head, &env); err != nil {
		return env, 0, 0, err
	}
	return env, int64(len(head)), info.Size(), nil
}
