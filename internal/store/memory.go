package store

import (
	"container/list"
	"sync"
	"time"
)

// Memory is the in-process Store: a bounded LRU with lazy TTL expiry
// and byte accounting. It is the extraction of the scheduler's
// original hard-wired result cache — same recency-ordered eviction,
// now behind the Store interface so a file or network backend can
// replace it without touching the scheduler.
type Memory struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *memEntry
	byKey map[string]*list.Element
	bytes int64
}

type memEntry struct {
	key string
	val []byte
	exp time.Time // zero means no expiry
}

// NewMemory returns an in-memory Store holding at most capacity
// entries; the least recently used entry is evicted beyond that.
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Put stores a copy of value (entries are immutable once in).
func (m *Memory) Put(key string, value []byte, ttl time.Duration) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	var exp time.Time
	if ttl > 0 {
		exp = time.Now().Add(ttl)
	}
	val := make([]byte, len(value))
	copy(val, value)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += int64(len(val)) - int64(len(e.val))
		e.val, e.exp = val, exp
		m.order.MoveToFront(el)
		return nil
	}
	m.byKey[key] = m.order.PushFront(&memEntry{key: key, val: val, exp: exp})
	m.bytes += int64(len(val))
	for m.order.Len() > m.cap {
		m.removeLocked(m.order.Back())
	}
	return nil
}

// Get returns a copy of the stored value; an expired entry is reaped
// and reported as a miss.
func (m *Memory) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		return nil, false, nil
	}
	e := el.Value.(*memEntry)
	if e.expired(time.Now()) {
		m.removeLocked(el)
		return nil, false, nil
	}
	m.order.MoveToFront(el)
	out := make([]byte, len(e.val))
	copy(out, e.val)
	return out, true, nil
}

// Delete removes the entry if present.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.removeLocked(el)
	}
	return nil
}

// Keys lists live keys, reaping expired entries on the way.
func (m *Memory) Keys() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked(time.Now())
	keys := make([]string, 0, m.order.Len())
	for el := m.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*memEntry).key)
	}
	return keys, nil
}

// Stats reports live entry and byte totals.
func (m *Memory) Stats() (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked(time.Now())
	return Stats{Entries: int64(m.order.Len()), Bytes: m.bytes}, nil
}

// Close drops all entries.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.order.Init()
	m.byKey = make(map[string]*list.Element)
	m.bytes = 0
	return nil
}

func (e *memEntry) expired(now time.Time) bool {
	return !e.exp.IsZero() && now.After(e.exp)
}

func (m *Memory) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	m.order.Remove(el)
	delete(m.byKey, e.key)
	m.bytes -= int64(len(e.val))
}

func (m *Memory) reapLocked(now time.Time) {
	var next *list.Element
	for el := m.order.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*memEntry).expired(now) {
			m.removeLocked(el)
		}
	}
}
