// Package asf implements automatically symmetric-feasible B*-trees
// (ASF-B*-trees, Lin/Lin [16]), which model the placement of one
// symmetry group as a "symmetry island": a placement that is mirror-
// symmetric about a vertical axis by construction, so that no
// symmetric-feasibility check is ever needed during annealing.
//
// The tree packs only representatives of the group's right half:
// each symmetric pair contributes its right member (full size), each
// self-symmetric module contributes its right half (half width). The
// representative tree is packed with the ordinary B*-tree contour; the
// left half of the island is the exact mirror image. Self-symmetric
// representatives must sit on the axis, which in B*-tree terms means
// they form the chain of right children starting at the root (a right
// child inherits its parent's x, and the root is at x = 0).
package asf

import (
	"fmt"
	"math/rand"

	"repro/internal/bstar"
	"repro/internal/geom"
)

// Pair is one symmetric pair: left and right member names share
// dimensions w × h.
type Pair struct {
	Left, Right string
	W, H        int
}

// Self is one self-symmetric module; its width must be even.
type Self struct {
	Name string
	W, H int
}

// Island is the ASF-B*-tree for one symmetry group.
type Island struct {
	pairs []Pair
	selfs []Self
	// reps is the representative B*-tree: module ids 0..len(selfs)-1
	// are self representatives (in chain order), the rest are pair
	// representatives (pair i at id len(selfs)+i).
	reps *bstar.Tree

	// Reusable scratch, never copied by Clone: the Perturb rollback
	// buffer and the chain-membership marks of validChain.
	saved   bstar.TreeState
	onChain []bool
}

// New builds an island with a canonical initial tree: self
// representatives chained as right children from the root, pair
// representatives chained as left children below the last self (or
// from the root when there are no selfs).
func New(pairs []Pair, selfs []Self) (*Island, error) {
	if len(pairs) == 0 && len(selfs) == 0 {
		return nil, fmt.Errorf("asf: empty symmetry group")
	}
	for _, s := range selfs {
		if s.W%2 != 0 {
			return nil, fmt.Errorf("asf: self-symmetric module %q has odd width %d", s.Name, s.W)
		}
	}
	for _, p := range pairs {
		if p.W <= 0 || p.H <= 0 {
			return nil, fmt.Errorf("asf: pair (%s,%s) has non-positive size", p.Left, p.Right)
		}
	}
	isl := &Island{pairs: pairs, selfs: selfs}
	isl.reps = bstar.New(isl.repDims())
	t := isl.reps
	n := t.N()
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	ns := len(selfs)
	if ns > 0 {
		t.Root = 0
		for i := 1; i < ns; i++ {
			t.Right[i-1] = i
			t.Parent[i] = i - 1
		}
		// Pair reps as a left chain under the first self.
		prev := 0
		for i := 0; i < len(pairs); i++ {
			m := ns + i
			t.Left[prev] = m
			t.Parent[m] = prev
			prev = m
		}
	} else {
		t.Root = 0
		for i := 1; i < len(pairs); i++ {
			t.Left[i-1] = i
			t.Parent[i] = i - 1
		}
	}
	return isl, nil
}

// repDims returns widths and heights for the representative modules.
func (isl *Island) repDims() ([]int, []int) {
	n := len(isl.selfs) + len(isl.pairs)
	w := make([]int, n)
	h := make([]int, n)
	for i, s := range isl.selfs {
		w[i], h[i] = s.W/2, s.H
	}
	for i, p := range isl.pairs {
		w[len(isl.selfs)+i], h[len(isl.selfs)+i] = p.W, p.H
	}
	return w, h
}

// Size returns the number of modules in the full island (2p + s).
func (isl *Island) Size() int { return 2*len(isl.pairs) + len(isl.selfs) }

// validChain reports whether all self representatives lie on the
// right-child chain from the root (so they pack at x = 0).
func (isl *Island) validChain() bool {
	ns := len(isl.selfs)
	if ns == 0 {
		return true
	}
	n := isl.reps.N()
	if cap(isl.onChain) < n {
		isl.onChain = make([]bool, n)
	}
	onChain := isl.onChain[:n]
	for i := range onChain {
		onChain[i] = false
	}
	steps := 0
	for m := isl.reps.Root; m != -1; m = isl.reps.Right[m] {
		onChain[m] = true
		if steps++; steps > n {
			return false
		}
	}
	for i := 0; i < ns; i++ {
		if !onChain[i] {
			return false
		}
	}
	return true
}

// Pack returns the symmetric placement of the island, mirrored about
// the vertical axis at x = 0 (axis2 = 0 in doubled coordinates).
// Right members and right halves pack at x ≥ 0; left members are
// exact mirror images.
func (isl *Island) Pack() (geom.Placement, error) {
	if !isl.validChain() {
		return nil, fmt.Errorf("asf: self-symmetric representatives left the axis chain")
	}
	x, y := isl.reps.Pack()
	ns := len(isl.selfs)
	pl := geom.Placement{}
	for i, s := range isl.selfs {
		if x[i] != 0 {
			return nil, fmt.Errorf("asf: self representative %q packed at x=%d, want 0", s.Name, x[i])
		}
		// Full module centered on the axis.
		pl[s.Name] = geom.NewRect(-s.W/2, y[i], s.W, s.H)
	}
	for i, p := range isl.pairs {
		m := ns + i
		w, h := p.W, p.H
		if isl.reps.Rot[m] {
			w, h = h, w
		}
		right := geom.NewRect(x[m], y[m], w, h)
		pl[p.Right] = right
		pl[p.Left] = right.MirrorX(0)
	}
	return pl, nil
}

// Perturb applies one random island-preserving move: rotate a pair
// (both members), swap two pair representatives, move a pair
// representative, or swap adjacent self representatives in the axis
// chain. The island invariant (selfs on the axis chain) is preserved;
// moves that would break it are retried.
func (isl *Island) Perturb(rng *rand.Rand) {
	ns, np := len(isl.selfs), len(isl.pairs)
	t := isl.reps
	// One save covers all attempts: a failed attempt restores the
	// tree to exactly this state before retrying.
	t.SaveState(&isl.saved)
	for attempt := 0; attempt < 24; attempt++ {
		switch op := rng.Intn(4); {
		case op == 0 && np > 0: // rotate a pair rep
			t.Rotate(ns + rng.Intn(np))
		case op == 1 && np >= 2: // swap two pair reps
			a := ns + rng.Intn(np)
			b := ns + rng.Intn(np-1)
			if b >= a {
				b++
			}
			t.SwapNodes(a, b)
		case op == 2 && np > 0: // move a pair rep
			m := ns + rng.Intn(np)
			t.Delete(m)
			reattach(t, m, rng)
		case op == 3 && ns >= 2: // swap two selfs in the chain
			a := rng.Intn(ns)
			b := rng.Intn(ns - 1)
			if b >= a {
				b++
			}
			// Equal-width selfs can swap ids freely; different widths
			// still stay on the chain, so a node swap is safe.
			t.SwapNodes(a, b)
		default:
			continue
		}
		if isl.validChain() {
			return
		}
		// Restore and retry.
		t.LoadState(&isl.saved)
	}
}

// reattach inserts detached module m at a random free slot that keeps
// the self chain intact: left-child slots anywhere, or the right slot
// of the last chain node / of pair representatives.
func reattach(t *bstar.Tree, m int, rng *rand.Rand) {
	n := t.N()
	type slot struct{ p, side int }
	var slots []slot
	for p := 0; p < n; p++ {
		if p == m {
			continue
		}
		if t.Left[p] == -1 {
			slots = append(slots, slot{p, 0})
		}
		if t.Right[p] == -1 {
			slots = append(slots, slot{p, 1})
		}
	}
	if len(slots) == 0 {
		// Tree was a single node: attach under it.
		for p := 0; p < n; p++ {
			if p != m {
				t.InsertChild(p, m, 0)
				return
			}
		}
		return
	}
	s := slots[rng.Intn(len(slots))]
	t.InsertChild(s.p, m, s.side)
}

// SaveState copies the island's mutable search state (its
// representative tree) into s, for the exact-undo protocol. The pair
// and self sets are fixed for the island's lifetime and not saved.
func (isl *Island) SaveState(s *bstar.TreeState) { isl.reps.SaveState(s) }

// LoadState restores a state previously captured with SaveState.
func (isl *Island) LoadState(s *bstar.TreeState) { isl.reps.LoadState(s) }

// Clone returns a deep copy of the island.
func (isl *Island) Clone() *Island {
	return &Island{
		pairs: append([]Pair(nil), isl.pairs...),
		selfs: append([]Self(nil), isl.selfs...),
		reps:  isl.reps.Clone(),
	}
}

// Names returns all module names in the island.
func (isl *Island) Names() []string {
	var out []string
	for _, p := range isl.pairs {
		out = append(out, p.Left, p.Right)
	}
	for _, s := range isl.selfs {
		out = append(out, s.Name)
	}
	return out
}
