package asf

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
)

func testIsland(t *testing.T) *Island {
	t.Helper()
	isl, err := New(
		[]Pair{
			{Left: "a", Right: "a'", W: 10, H: 8},
			{Left: "b", Right: "b'", W: 6, H: 12},
		},
		[]Self{
			{Name: "s1", W: 8, H: 6},
			{Name: "s2", W: 4, H: 4},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return isl
}

func groupOf(isl *Island) constraint.SymmetryGroup {
	g := constraint.SymmetryGroup{Name: "g", Vertical: true}
	for _, p := range isl.pairs {
		g.Pairs = append(g.Pairs, [2]string{p.Left, p.Right})
	}
	for _, s := range isl.selfs {
		g.Selfs = append(g.Selfs, s.Name)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty group must fail")
	}
	if _, err := New(nil, []Self{{Name: "s", W: 7, H: 3}}); err == nil {
		t.Fatal("odd self width must fail")
	}
	if _, err := New([]Pair{{Left: "a", Right: "b", W: 0, H: 3}}, nil); err == nil {
		t.Fatal("zero pair width must fail")
	}
}

func TestPackIsSymmetricByConstruction(t *testing.T) {
	isl := testIsland(t)
	pl, err := isl.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != isl.Size() {
		t.Fatalf("placement has %d modules, want %d", len(pl), isl.Size())
	}
	if !pl.Legal() {
		t.Fatalf("island placement overlaps: %v", pl.Overlaps())
	}
	if err := groupOf(isl).Check(pl); err != nil {
		t.Fatalf("island not symmetric: %v", err)
	}
	// The axis is at x=0: every self straddles it.
	for _, s := range isl.selfs {
		r := pl[s.Name]
		if r.X != -s.W/2 {
			t.Fatalf("self %q at x=%d, want %d", s.Name, r.X, -s.W/2)
		}
	}
}

// The defining ASF property: symmetry holds after every perturbation,
// with no feasibility checking by the caller.
func TestPerturbPreservesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	isl := testIsland(t)
	g := groupOf(isl)
	for step := 0; step < 500; step++ {
		isl.Perturb(rng)
		pl, err := isl.Pack()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !pl.Legal() {
			t.Fatalf("step %d: overlaps %v", step, pl.Overlaps())
		}
		if err := g.Check(pl); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestPairsOnlyIsland(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	isl, err := New([]Pair{
		{Left: "l1", Right: "r1", W: 5, H: 5},
		{Left: "l2", Right: "r2", W: 7, H: 3},
		{Left: "l3", Right: "r3", W: 3, H: 9},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := groupOf(isl)
	for step := 0; step < 300; step++ {
		isl.Perturb(rng)
		pl, err := isl.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Legal() || g.Check(pl) != nil {
			t.Fatalf("step %d: invalid island", step)
		}
	}
}

func TestSelfsOnlyIsland(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	isl, err := New(nil, []Self{
		{Name: "x", W: 10, H: 4},
		{Name: "y", W: 6, H: 8},
		{Name: "z", W: 2, H: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := groupOf(isl)
	pl, err := isl.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Selfs stack on the axis.
	if err := g.Check(pl); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		isl.Perturb(rng)
		pl, err := isl.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Legal() || g.Check(pl) != nil {
			t.Fatalf("step %d: invalid selfs-only island", step)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	isl := testIsland(t)
	before, err := isl.Pack()
	if err != nil {
		t.Fatal(err)
	}
	cl := isl.Clone()
	for i := 0; i < 50; i++ {
		cl.Perturb(rng)
	}
	after, err := isl.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range before {
		if after[name] != r {
			t.Fatal("perturbing a clone mutated the original")
		}
	}
}

func TestNames(t *testing.T) {
	isl := testIsland(t)
	names := isl.Names()
	if len(names) != 6 {
		t.Fatalf("Names = %v, want 6 entries", names)
	}
}

// Exploring many islands, the annealer must be able to reach a
// compact square-ish arrangement; check the best area found over a
// random walk is close to the module-area lower bound.
func TestIslandReachesCompactPlacements(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	isl, err := New([]Pair{
		{Left: "l1", Right: "r1", W: 4, H: 8},
		{Left: "l2", Right: "r2", W: 4, H: 8},
	}, []Self{{Name: "s", W: 8, H: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var modArea int64
	pl, _ := isl.Pack()
	modArea = pl.ModuleArea()
	best := int64(1 << 62)
	for step := 0; step < 2000; step++ {
		isl.Perturb(rng)
		p, err := isl.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if a := p.Area(); a < best {
			best = a
		}
	}
	if float64(best) > 1.5*float64(modArea) {
		t.Fatalf("best island area %d too far above module area %d", best, modArea)
	}
}
