package engine

import "math/rand"

// adaptiveState is the opt-in adaptive move portfolio: move kinds are
// selected with probability proportional to their smoothed acceptance
// rate, so kinds the annealer keeps accepting are proposed more often
// and kinds it keeps rejecting fade (without ever reaching zero — the
// Laplace smoothing keeps every kind explorable as the temperature
// drops and acceptance regimes shift).
//
// The kernel cannot observe acceptance directly — the annealing engine
// decides after Perturb returns — so the outcome of move k is settled
// lazily: a move whose Undo ran was rejected; a move still standing
// when the next Perturb arrives was accepted.
type adaptiveState struct {
	proposed []int
	accepted []int
	last     int  // kind of the in-flight move, -1 when none
	rejected bool // the in-flight move's undo was called
}

func newAdaptiveState(kinds int) *adaptiveState {
	return &adaptiveState{
		proposed: make([]int, kinds),
		accepted: make([]int, kinds),
		last:     -1,
	}
}

// rejectLast marks the in-flight move rejected (called from the
// kernel's undo closure).
func (a *adaptiveState) rejectLast() {
	if a.last >= 0 {
		a.rejected = true
	}
}

// settle commits the previous move's outcome before the next proposal.
func (a *adaptiveState) settle() {
	if a.last >= 0 && !a.rejected {
		a.accepted[a.last]++
	}
	a.last = -1
	a.rejected = false
}

// weight is kind k's smoothed acceptance rate (Laplace +1/+2, so an
// unproposed kind starts at 1/2 and no kind ever reaches zero).
func (a *adaptiveState) weight(k int) float64 {
	return float64(a.accepted[k]+1) / float64(a.proposed[k]+2)
}

// pick draws a move kind proportionally to the smoothed acceptance
// rates.
func (a *adaptiveState) pick(rng *rand.Rand) int {
	total := 0.0
	for k := range a.proposed {
		total += a.weight(k)
	}
	r := rng.Float64() * total
	for k := range a.proposed {
		r -= a.weight(k)
		if r < 0 {
			return k
		}
	}
	return len(a.proposed) - 1
}

// perturb proposes one adaptively-selected move through the move
// table, recording the proposal for the acceptance bookkeeping.
func (a *adaptiveState) perturb(mt MoveTable, rng *rand.Rand) bool {
	a.settle()
	kind := a.pick(rng)
	a.proposed[kind]++
	a.last = kind
	return mt.PerturbKind(kind, rng)
}
