// Package engine is the shared annealable kernel behind every placer
// in this repository. The DATE'09 paper's central idea is that analog
// placement is one optimization problem explored through
// interchangeable topological representations — sequence-pairs,
// B*-trees, transitive closure graphs, slicing trees, HB*-tree
// forests; this package is that idea in code. A representation
// contributes only its topology encoding and move table through the
// Representation interface, and one Solution kernel supplies
// everything the representations used to duplicate: ownership of the
// composite cost.Model, the incremental dirty-set evaluation wiring
// (full Eval on cold or restored direct-coordinate state, diff-based
// Update for topological repacks, UpdateMoved when the representation
// knows its own dirty set), exact move-and-undo bookkeeping against
// the model's journal, snapshot/restore of the best-so-far state,
// feasible-initialization retries, and final placement/breakdown
// assembly.
//
// The kernel implements both anneal.Solution protocols — cloning
// through Neighbor and in-place through Perturb/Undo/Snapshot/Restore
// — plus anneal.MoveReporter and, for representations implementing
// Crossover, anneal.Crossoverer, so one adapter type drives the
// simulated-annealing, greedy, evolutionary and memetic engines alike.
// Every cross-engine feature (the adaptive move portfolio, genetic
// recombination, new representations) lands here once instead of once
// per placer.
package engine

import (
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/geom"
)

// Coords is the packed geometry a Representation hands the kernel:
// module i occupies (X[i], Y[i]) with dimensions W[i] × H[i], swapped
// where Rot is set (Rot may be nil when the representation already
// folds rotation into W/H). The slices may alias representation-owned
// workspaces; the kernel only reads them between Pack and the model
// evaluation it feeds them to.
type Coords struct {
	X, Y []int
	W, H []int
	Rot  []bool
}

// Representation is one topological encoding of a placement — the only
// thing a placer has to implement. The kernel drives the encoding
// through single random moves with exact undo, deep snapshots for the
// best-so-far state, and packing into coordinates for the shared
// incremental objective.
//
// Contract: Perturb applies one random move in place, records whatever
// Undo needs, and reports whether the encoding changed (a bounded-
// retry move set may fail every attempt; it must then leave the
// encoding untouched and report false). Undo reverts exactly the
// encoding change of the last Perturb; after a false Perturb it must
// be a no-op on the encoding. Pack decodes the current encoding into
// c, reporting false for infeasible states (which the kernel prices at
// +Inf without touching the model). Snapshot returns a deep copy of
// the encoding; Restore brings the encoding back to a snapshotted
// state without aliasing the snapshot (the kernel may restore the same
// snapshot again). Clone returns an independent deep copy with its own
// workspaces (used by the cloning engines). Placement names the
// current encoding's packed geometry for result assembly.
type Representation interface {
	Perturb(rng *rand.Rand) bool
	Undo()
	Pack(c *Coords) bool
	Snapshot() any
	Restore(snapshot any)
	Clone() Representation
	Placement() (geom.Placement, error)
}

// MovedModules is an optional Representation extension for encodings
// that know exactly which modules the last Perturb displaced (direct-
// coordinate encodings, where a move is a small record rather than a
// global repack). The kernel then evaluates moves through
// Model.UpdateMoved — skipping even the coordinate diff — and falls
// back to a from-scratch Eval after Restore and at initialization,
// where no move identifies the dirty set.
type MovedModules interface {
	Representation
	MovedModules() []int
}

// MoveTable is an optional Representation extension exposing the move
// set as enumerable kinds, so the kernel's adaptive move portfolio can
// drive selection externally. PerturbKind follows the full Perturb
// contract (undo recording included) restricted to one kind; kinds are
// 0..MoveKinds()-1.
type MoveTable interface {
	Representation
	MoveKinds() int
	PerturbKind(kind int, rng *rand.Rand) bool
}

// Crossover is an optional Representation extension for recombination:
// CrossoverFrom replaces the receiver's encoding — a fresh clone of
// parent a — with a recombination of parents a and b (both the
// receiver's concrete type). Infeasible children are allowed; the
// kernel prices them at +Inf and selection discards them, the
// rejection strategy of permutation-encoding GAs. Representations
// implementing it become eligible for the memetic (genetic:*) engines.
type Crossover interface {
	Representation
	CrossoverFrom(a, b Representation, rng *rand.Rand)
}

// Config assembles a Solution's kernel-owned machinery.
type Config struct {
	// NewModel builds the solution-owned composite objective. It is
	// called lazily at the solution's first feasible packing — so
	// hierarchical adapters can derive the model's module universe from
	// packed geometry — and receives the solution's own representation
	// (clones build their model from their own representation).
	NewModel func(rep Representation) *cost.Model
	// FullEval forces every evaluation to recompute the whole objective
	// from scratch instead of incrementally — the benchmarking and
	// verification switch.
	FullEval bool
	// AdaptiveMoves enables the acceptance-rate-weighted move portfolio
	// for representations implementing MoveTable (no-op otherwise).
	// Default off: the representation's own move distribution is the
	// bit-reproducible historical behavior.
	AdaptiveMoves bool
}

// Solution is the shared annealable state over one Representation: it
// owns the cost model and implements the full anneal.MutableSolution
// contract (plus Neighbor, MoveReporter and Crossoverer) on behalf of
// the representation.
type Solution struct {
	rep Representation
	cfg Config

	model      *cost.Model
	mm         MovedModules // non-nil when rep knows its dirty set
	coords     Coords
	cost       float64
	prevCost   float64
	modelMoved bool // last evaluation journaled into the model
	adaptive   *adaptiveState
	undo       anneal.Undo
}

// New builds a kernel solution over a fully-initialized representation
// and evaluates its initial cost (lazily building the model at the
// first feasible packing).
func New(rep Representation, cfg Config) *Solution {
	s := newSolution(rep, cfg)
	s.evaluate(false)
	return s
}

// newSolution wires a solution without the initial evaluation — the
// cloning paths mutate the fresh copy first and evaluate once after,
// so an offspring costs one pack + one evaluation, not two.
func newSolution(rep Representation, cfg Config) *Solution {
	s := &Solution{rep: rep, cfg: cfg}
	s.mm, _ = rep.(MovedModules)
	if cfg.AdaptiveMoves {
		if mt, ok := rep.(MoveTable); ok {
			s.adaptive = newAdaptiveState(mt.MoveKinds())
		}
	}
	// One pre-bound undo closure per solution: the in-place protocol
	// allocates nothing per move.
	s.undo = func() {
		s.rep.Undo()
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		if s.adaptive != nil {
			s.adaptive.rejectLast()
		}
		s.cost = s.prevCost
	}
	return s
}

// clone builds an independent, not-yet-evaluated solution over a deep
// copy of the representation, with its own (lazily built) model and
// workspaces; callers mutate the copy and then evaluate it once.
func (s *Solution) clone() *Solution {
	return newSolution(s.rep.Clone(), s.cfg)
}

// evaluate packs the current encoding and feeds the objective.
// afterMove selects the incremental path for representations that
// report their own dirty set: their moves go through UpdateMoved,
// while initialization and Restore — where no single move bounds the
// dirty set — re-evaluate from scratch. Topological representations
// always evaluate through the model's coordinate diff (which on a
// fresh model falls through to a full Eval).
func (s *Solution) evaluate(afterMove bool) {
	s.modelMoved = false
	if !s.rep.Pack(&s.coords) {
		s.cost = math.Inf(1)
		return
	}
	if s.model == nil {
		s.model = s.cfg.NewModel(s.rep)
	}
	c := &s.coords
	switch {
	case s.cfg.FullEval:
		s.cost = s.model.Eval(c.X, c.Y, c.W, c.H, c.Rot)
	case s.mm != nil:
		if afterMove {
			s.cost = s.model.UpdateMoved(c.X, c.Y, c.W, c.H, c.Rot, s.mm.MovedModules())
			s.modelMoved = true
		} else {
			s.cost = s.model.Eval(c.X, c.Y, c.W, c.H, c.Rot)
		}
	default:
		s.cost = s.model.Update(c.X, c.Y, c.W, c.H, c.Rot)
		s.modelMoved = true
	}
}

// Cost implements anneal.Solution.
func (s *Solution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter: the module ids the model's last
// evaluation actually touched (nil while no feasible packing has ever
// been evaluated).
func (s *Solution) Moved() []int {
	if s.model == nil {
		return nil
	}
	return s.model.Moved()
}

// MoveKindCounts implements anneal.MoveKindReporter: the adaptive move
// portfolio's cumulative per-kind proposal and acceptance counters,
// nil when adaptive moves are off. The slices alias the live counters
// — callers read them on the annealing goroutine at stage boundaries
// (the flight recorder copies; see internal/obs). The portfolio
// settles a move's outcome lazily at the next proposal, so a stage-
// boundary read can be one acceptance behind the aggregate Stats; the
// recorded trajectory is still exact per proposal.
func (s *Solution) MoveKindCounts() (proposed, accepted []int) {
	if s.adaptive == nil {
		return nil, nil
	}
	return s.adaptive.proposed, s.adaptive.accepted
}

// Perturb implements anneal.MutableSolution: one random move through
// the representation (or the adaptive portfolio), evaluated
// incrementally, with the shared exact-undo closure.
func (s *Solution) Perturb(rng *rand.Rand) anneal.Undo {
	s.prevCost = s.cost
	var changed bool
	if s.adaptive != nil {
		changed = s.adaptive.perturb(s.rep.(MoveTable), rng)
	} else {
		changed = s.rep.Perturb(rng)
	}
	if changed {
		s.evaluate(true)
	} else {
		// The encoding is untouched; make sure a later undo cannot
		// replay the previous move's model journal.
		s.modelMoved = false
		// A move that was never found is not an acceptance, even
		// though the annealer will "accept" its zero delta — crediting
		// it would drive the adaptive weights toward unproductive
		// kinds.
		if s.adaptive != nil {
			s.adaptive.rejectLast()
		}
	}
	return s.undo
}

// Neighbor implements anneal.Solution: the same move set applied to an
// independent deep copy.
func (s *Solution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := s.clone()
	next.rep.Perturb(rng)
	next.evaluate(false)
	return next
}

// Snapshot implements anneal.MutableSolution.
func (s *Solution) Snapshot() any { return s.rep.Snapshot() }

// Restore implements anneal.MutableSolution: the encoding is restored
// and the objective reevaluated against it (incrementally over the
// model's diff for topological representations, from scratch for
// direct-coordinate ones — either way bit-exact with a full Eval).
func (s *Solution) Restore(snapshot any) {
	s.rep.Restore(snapshot)
	s.evaluate(false)
}

// Crossover implements anneal.Crossoverer: a recombination of the
// receiver and mate when the representation supports it, nil otherwise
// (the evolutionary engine then falls back to mutation).
func (s *Solution) Crossover(mate anneal.Solution, rng *rand.Rand) anneal.Solution {
	if _, ok := s.rep.(Crossover); !ok {
		return nil
	}
	m, ok := mate.(*Solution)
	if !ok {
		return nil
	}
	child := s.clone()
	child.rep.(Crossover).CrossoverFrom(s.rep, m.rep, rng)
	child.evaluate(false)
	return child
}

// Rep returns the solution's representation.
func (s *Solution) Rep() Representation { return s.rep }

// Model returns the solution-owned cost model (nil while no feasible
// packing has ever been evaluated).
func (s *Solution) Model() *cost.Model { return s.model }

// Placement names the current encoding's packed geometry.
func (s *Solution) Placement() (geom.Placement, error) { return s.rep.Placement() }

// Breakdown reports the model's per-term cost decomposition (nil while
// no feasible packing has ever been evaluated).
func (s *Solution) Breakdown() []cost.TermValue {
	if s.model == nil {
		return nil
	}
	return s.model.Breakdown()
}

// RefCost evaluates the representation's current encoding from scratch
// through a fresh model — the bit-exact reference the incremental path
// must match. It exists for property tests and diagnostics, not the
// hot path.
func (s *Solution) RefCost() float64 {
	var c Coords
	if !s.rep.Pack(&c) {
		return math.Inf(1)
	}
	return s.cfg.NewModel(s.rep).Eval(c.X, c.Y, c.W, c.H, c.Rot)
}
