package engine

import (
	"fmt"
	"math"

	"repro/internal/anneal"
)

// InitRetries bounds the attempts every placer makes to draw a
// feasible (finite-cost) initial solution before giving up. It lives
// in the kernel so every representation shares one retry policy.
const InitRetries = 64

// FeasibleInit draws initial solutions from gen until one has finite
// cost, retrying up to InitRetries times. On exhaustion it returns the
// last attempt together with an error, so parallel-worker factories
// (which cannot fail) can still hand the engine a solution while
// serial paths surface the shared error message.
func FeasibleInit(gen func() anneal.Solution) (anneal.Solution, error) {
	var s anneal.Solution
	for try := 0; try < InitRetries; try++ {
		s = gen()
		if !math.IsInf(s.Cost(), 1) {
			return s, nil
		}
	}
	return s, fmt.Errorf("engine: no feasible initial solution after %d attempts", InitRetries)
}

// Run dispatches a placer's search: a single in-place annealing chain
// by default, parallel multi-start when opt.Workers > 1, or parallel
// tempering when opt.TemperChains > 1 (which wins over Workers — the
// chains are the parallelism). The serial path builds its solution
// from the same derived seed as ParallelAnneal's worker 0, so
// -workers=1 and the serial path are the same run, and TemperAnneal
// with exchanges disabled degrades to exactly ParallelAnneal.
func Run(newSol func(seed int64) anneal.Solution, opt anneal.Options) (anneal.Solution, anneal.Stats) {
	if opt.TemperChains > 1 {
		return anneal.TemperAnneal(newSol, opt.TemperChains, opt)
	}
	if opt.Workers > 1 {
		return anneal.ParallelAnneal(newSol, opt.Workers, opt)
	}
	return anneal.Anneal(newSol(opt.Seed), opt)
}

// RunFeasible is Run for representations whose random initial states
// can be infeasible even after FeasibleInit's retries: the serial path
// probes the initial solution before annealing, and both paths check
// the final best, surfacing one shared error message prefixed with
// name. Parallel factories cannot fail, so their retry exhaustion is
// detected on the reduced best instead.
func RunFeasible(name string, newSol func(seed int64) anneal.Solution, opt anneal.Options) (anneal.Solution, anneal.Stats, error) {
	fail := func() error {
		return fmt.Errorf("%s: no feasible initial solution after %d attempts", name, InitRetries)
	}
	var best anneal.Solution
	var stats anneal.Stats
	if opt.TemperChains > 1 {
		best, stats = anneal.TemperAnneal(newSol, opt.TemperChains, opt)
	} else if opt.Workers > 1 {
		best, stats = anneal.ParallelAnneal(newSol, opt.Workers, opt)
	} else {
		probe := newSol(opt.Seed)
		if math.IsInf(probe.Cost(), 1) {
			return nil, anneal.Stats{}, fail()
		}
		best, stats = anneal.Anneal(probe, opt)
	}
	if math.IsInf(best.Cost(), 1) {
		return nil, stats, fail()
	}
	return best, stats, nil
}
