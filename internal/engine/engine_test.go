package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/geom"
)

// gridRep is a minimal direct-coordinate Representation for kernel
// tests: n unit modules on integer positions, one move kind
// translating a single module, plus a "jam" kind that always fails
// (exercising the changed=false path). Positions above the feasibility
// bound make Pack fail.
type gridRep struct {
	x, y  []int
	bound int // x >= bound is infeasible (0 = unbounded)

	m, ox, oy int
	moved     []int
	reportM   bool // implement the MovedModules fast path
}

func newGridRep(n int) *gridRep {
	return &gridRep{x: make([]int, n), y: make([]int, n), m: -1, moved: make([]int, 0, 1)}
}

func (r *gridRep) Perturb(rng *rand.Rand) bool { return r.PerturbKind(0, rng) }

func (r *gridRep) MoveKinds() int { return 2 }

func (r *gridRep) PerturbKind(kind int, rng *rand.Rand) bool {
	r.m = -1
	r.moved = r.moved[:0]
	if kind == 1 {
		return false // the jam kind: no move found
	}
	m := rng.Intn(len(r.x))
	r.m, r.ox, r.oy = m, r.x[m], r.y[m]
	r.x[m] += rng.Intn(7) - 3
	r.y[m] += rng.Intn(7) - 3
	r.moved = append(r.moved, m)
	return true
}

func (r *gridRep) Undo() {
	if r.m >= 0 {
		r.x[r.m], r.y[r.m] = r.ox, r.oy
	}
}

func (r *gridRep) Pack(c *Coords) bool {
	if r.bound > 0 {
		for _, x := range r.x {
			if x >= r.bound {
				return false
			}
		}
	}
	w := make([]int, len(r.x))
	for i := range w {
		w[i] = 1
	}
	c.X, c.Y, c.W, c.H, c.Rot = r.x, r.y, w, w, nil
	return true
}

type gridSnap struct{ x, y []int }

func (r *gridRep) Snapshot() any {
	return &gridSnap{x: append([]int(nil), r.x...), y: append([]int(nil), r.y...)}
}

func (r *gridRep) Restore(snap any) {
	sn := snap.(*gridSnap)
	copy(r.x, sn.x)
	copy(r.y, sn.y)
}

func (r *gridRep) Clone() Representation {
	n := newGridRep(len(r.x))
	n.bound = r.bound
	n.reportM = r.reportM
	copy(n.x, r.x)
	copy(n.y, r.y)
	return n
}

func (r *gridRep) Placement() (geom.Placement, error) {
	pl := geom.Placement{}
	for i := range r.x {
		pl[string(rune('a'+i))] = geom.NewRect(r.x[i], r.y[i], 1, 1)
	}
	return pl, nil
}

// movedGridRep exposes the MovedModules fast path.
type movedGridRep struct{ gridRep }

func (r *movedGridRep) MovedModules() []int { return r.moved }

func (r *movedGridRep) Clone() Representation {
	return &movedGridRep{gridRep: *(r.gridRep.Clone().(*gridRep))}
}

// xGridRep adds uniform crossover.
type xGridRep struct{ gridRep }

func (r *xGridRep) CrossoverFrom(a, b Representation, rng *rand.Rand) {
	pb := b.(*xGridRep)
	for i := range r.x {
		if rng.Intn(2) == 0 {
			r.x[i], r.y[i] = pb.x[i], pb.y[i]
		}
	}
}

func (r *xGridRep) Clone() Representation {
	return &xGridRep{gridRep: *(r.gridRep.Clone().(*gridRep))}
}

func gridConfig() Config {
	return Config{NewModel: func(rep Representation) *cost.Model {
		var c Coords
		rep.Pack(&c)
		return cost.NewModel(len(c.X)).Add(1, cost.NewArea())
	}}
}

func newGridSolution(rep Representation, rng *rand.Rand) *Solution {
	gr := rep
	// Spread the modules so the initial cost is non-trivial.
	switch v := gr.(type) {
	case *gridRep:
		for i := range v.x {
			v.x[i], v.y[i] = rng.Intn(20), rng.Intn(20)
		}
	case *movedGridRep:
		for i := range v.x {
			v.x[i], v.y[i] = rng.Intn(20), rng.Intn(20)
		}
	case *xGridRep:
		for i := range v.x {
			v.x[i], v.y[i] = rng.Intn(20), rng.Intn(20)
		}
	}
	return New(gr, gridConfig())
}

// TestKernelContract drives Perturb/Undo/Snapshot/Restore on the plain
// and the MovedModules representations, asserting the incremental cost
// always matches the from-scratch reference exactly.
func TestKernelContract(t *testing.T) {
	reps := map[string]Representation{
		"diffed": newGridRep(8),
		"moved":  &movedGridRep{*newGridRep(8)},
	}
	for name, rep := range reps {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			s := newGridSolution(rep, rng)
			var snap any
			for step := 0; step < 400; step++ {
				before := s.Cost()
				switch rng.Intn(4) {
				case 0:
					s.Perturb(rng)
				case 1:
					undo := s.Perturb(rng)
					undo()
					if got := s.Cost(); got != before {
						t.Fatalf("step %d: cost %v after undo, want %v", step, got, before)
					}
				case 2:
					snap = s.Snapshot()
				default:
					if snap != nil {
						s.Restore(snap)
					}
				}
				if got, want := s.Cost(), s.RefCost(); got != want {
					t.Fatalf("step %d: incremental cost %v, reference %v", step, got, want)
				}
			}
		})
	}
}

// TestKernelInfeasibleMoves: moves into infeasible states cost +Inf
// without touching the model, and undo restores the previous finite
// cost exactly.
func TestKernelInfeasibleMoves(t *testing.T) {
	rep := newGridRep(4)
	rep.bound = 12
	rng := rand.New(rand.NewSource(3))
	for i := range rep.x {
		// Start near the bound so the ±3 moves cross it regularly.
		rep.x[i], rep.y[i] = 9+rng.Intn(3), rng.Intn(10)
	}
	s := New(rep, gridConfig())
	sawInf := false
	for step := 0; step < 500; step++ {
		before := s.Cost()
		undo := s.Perturb(rng)
		if math.IsInf(s.Cost(), 1) {
			sawInf = true
		}
		undo()
		if got := s.Cost(); got != before {
			t.Fatalf("step %d: cost %v after undo, want %v", step, got, before)
		}
	}
	if !sawInf {
		t.Fatal("walk never hit the infeasibility bound; the test is vacuous")
	}
}

// TestKernelFailedMoveKeepsState: a Perturb that finds no move
// (changed=false) must leave cost and state untouched, and its undo
// must not replay the previous move's model journal.
func TestKernelFailedMoveKeepsState(t *testing.T) {
	rep := newGridRep(4)
	rng := rand.New(rand.NewSource(4))
	s := newGridSolution(rep, rng)
	s.Perturb(rng) // a real move journals into the model
	before := s.Cost()
	undo := s.adaptivePerturbKind(t, rng)
	if got := s.Cost(); got != before {
		t.Fatalf("failed move changed cost %v -> %v", before, got)
	}
	undo()
	if got := s.Cost(); got != before {
		t.Fatalf("undo after failed move changed cost %v -> %v", before, got)
	}
	if got, want := s.Cost(), s.RefCost(); got != want {
		t.Fatalf("incremental cost %v, reference %v", got, want)
	}
}

// adaptivePerturbKind drives the jam kind directly through the move
// table (bypassing the random kind choice).
func (s *Solution) adaptivePerturbKind(t *testing.T, rng *rand.Rand) anneal.Undo {
	t.Helper()
	mt := s.rep.(MoveTable)
	s.prevCost = s.cost
	if mt.PerturbKind(1, rng) {
		t.Fatal("jam kind reported a move")
	}
	s.modelMoved = false
	return s.undo
}

// TestKernelCrossover: crossover-capable representations recombine
// through the Crossoverer protocol; incapable ones return nil so the
// evolutionary engine falls back to mutation.
func TestKernelCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := newGridSolution(&xGridRep{*newGridRep(6)}, rng)
	b := newGridSolution(&xGridRep{*newGridRep(6)}, rng)
	child := a.Crossover(b, rng)
	if child == nil {
		t.Fatal("crossover-capable representation returned nil child")
	}
	cs := child.(*Solution)
	if got, want := cs.Cost(), cs.RefCost(); got != want {
		t.Fatalf("child cost %v, reference %v", got, want)
	}
	ar, br, cr := a.rep.(*xGridRep), b.rep.(*xGridRep), cs.rep.(*xGridRep)
	for i := range cr.x {
		fromA := cr.x[i] == ar.x[i] && cr.y[i] == ar.y[i]
		fromB := cr.x[i] == br.x[i] && cr.y[i] == br.y[i]
		if !fromA && !fromB {
			t.Fatalf("module %d inherited from neither parent", i)
		}
	}

	plain := newGridSolution(newGridRep(6), rng)
	if got := plain.Crossover(newGridSolution(newGridRep(6), rng), rng); got != nil {
		t.Fatal("crossover-incapable representation must return nil")
	}
}

// TestAdaptiveMoves: with AdaptiveMoves on, the kernel shifts
// proposals toward accepted kinds — the jam kind (never accepted,
// never even a move) must be proposed less often than the useful kind
// — while cost bookkeeping stays exact.
func TestAdaptiveMoves(t *testing.T) {
	rep := newGridRep(6)
	cfg := gridConfig()
	cfg.AdaptiveMoves = true
	rng := rand.New(rand.NewSource(6))
	for i := range rep.x {
		rep.x[i], rep.y[i] = rng.Intn(20), rng.Intn(20)
	}
	s := New(rep, cfg)
	if s.adaptive == nil {
		t.Fatal("adaptive state not armed for a MoveTable representation")
	}
	for step := 0; step < 600; step++ {
		before := s.Cost()
		undo := s.Perturb(rng)
		// Annealer-style acceptance at zero temperature: delta <= 0 is
		// kept without undo — in particular a jam move's zero delta.
		// The jam kind must still read as rejected to the adaptive
		// bookkeeping, or its weight would converge to 1.
		if s.Cost() > before {
			undo()
			if got := s.Cost(); got != before {
				t.Fatalf("step %d: cost %v after undo, want %v", step, got, before)
			}
		}
		if got, want := s.Cost(), s.RefCost(); got != want {
			t.Fatalf("step %d: incremental cost %v, reference %v", step, got, want)
		}
	}
	if s.adaptive.accepted[1] != 0 {
		t.Fatalf("jam kind credited as accepted %d times", s.adaptive.accepted[1])
	}
	if s.adaptive.proposed[0] <= s.adaptive.proposed[1] {
		t.Fatalf("adaptive selection did not favor the productive kind: proposed %v", s.adaptive.proposed)
	}
	// Adaptive selection is off by default.
	plain := New(newGridRep(4), gridConfig())
	if plain.adaptive != nil {
		t.Fatal("adaptive state armed without opt-in")
	}
}

// TestFeasibleInitRetries: the kernel retry loop keeps drawing until a
// finite-cost solution appears and errors out after InitRetries
// exhausted attempts.
func TestFeasibleInitRetries(t *testing.T) {
	calls := 0
	s, err := FeasibleInit(func() anneal.Solution {
		calls++
		rep := newGridRep(2)
		if calls < 5 {
			rep.x[0], rep.bound = 100, 50 // infeasible draw
		}
		return New(rep, gridConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("FeasibleInit drew %d times, want 5", calls)
	}
	if math.IsInf(s.Cost(), 1) {
		t.Fatal("returned solution is infeasible")
	}

	calls = 0
	_, err = FeasibleInit(func() anneal.Solution {
		calls++
		rep := newGridRep(2)
		rep.x[0], rep.bound = 100, 50
		return New(rep, gridConfig())
	})
	if err == nil {
		t.Fatal("exhausted retries must error")
	}
	if calls != InitRetries {
		t.Fatalf("FeasibleInit drew %d times, want %d", calls, InitRetries)
	}
}

// TestRunFeasibleSerialProbe: the serial path surfaces the shared
// error when the initial draw is infeasible, prefixed with the
// caller's name.
func TestRunFeasibleSerialProbe(t *testing.T) {
	newSol := func(seed int64) anneal.Solution {
		rep := newGridRep(2)
		rep.x[0], rep.bound = 100, 50
		return New(rep, gridConfig())
	}
	_, _, err := RunFeasible("place: testrep", newSol, anneal.Options{MaxStages: 2, MovesPerStage: 2})
	if err == nil {
		t.Fatal("infeasible init must error")
	}
	want := "place: testrep: no feasible initial solution after 64 attempts"
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}
