// Package netlist models analog circuits at the device level: devices
// with typed ports, nets connecting them, and named sub-circuit scopes.
// It is the common input format of every placer and of the layout-aware
// sizing flow, and includes a SPICE-like parser and writer so circuits
// can be stored as text.
//
// A netlist carries two kinds of size information. Electrical
// parameters (transistor W/L in micrometers, capacitance, resistance)
// live in Device.Params and drive the performance evaluator of the
// sizing flow. The layout footprint (Device.FW, Device.FH, integer grid
// units) drives the placers; it is either assigned explicitly by
// circuit generators or derived from the electrical parameters by the
// layout template engine.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// DeviceType classifies a device card.
type DeviceType int

// Device types recognized by the netlist and by the structural
// recognition pass in package hier.
const (
	NMOS DeviceType = iota
	PMOS
	Resistor
	Capacitor
	Block // pre-characterized layout block with a fixed footprint
)

// String implements fmt.Stringer.
func (t DeviceType) String() string {
	switch t {
	case NMOS:
		return "nmos"
	case PMOS:
		return "pmos"
	case Resistor:
		return "res"
	case Capacitor:
		return "cap"
	case Block:
		return "block"
	}
	return fmt.Sprintf("DeviceType(%d)", int(t))
}

// Device is one placeable, sizeable circuit element.
type Device struct {
	Name   string
	Type   DeviceType
	Ports  map[string]string  // port name -> net name ("D","G","S","B"; "P","N" for R/C)
	Params map[string]float64 // electrical parameters ("w", "l", "c", "r", "m")
	FW, FH int                // layout footprint in grid units (0 = not yet derived)
}

// PortNames returns the device's port names in sorted order.
func (d *Device) PortNames() []string {
	names := make([]string, 0, len(d.Ports))
	for p := range d.Ports {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// Param returns the named parameter, or def when absent.
func (d *Device) Param(name string, def float64) float64 {
	if v, ok := d.Params[name]; ok {
		return v
	}
	return def
}

// IsMOS reports whether the device is a MOS transistor.
func (d *Device) IsMOS() bool { return d.Type == NMOS || d.Type == PMOS }

// Pin identifies one connection point: a device port.
type Pin struct {
	Device string
	Port   string
}

// Circuit is a flat collection of devices plus the nets they form.
// Hierarchical structure (sub-circuit grouping) is represented
// separately by package hier so that both exact circuit hierarchy and
// virtual clustering hierarchies can coexist over the same netlist.
type Circuit struct {
	Name    string
	Devices []*Device // in declaration order
	byName  map[string]*Device
}

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]*Device)}
}

// Add inserts a device. It returns an error when the name is empty or
// already taken.
func (c *Circuit) Add(d *Device) error {
	if d.Name == "" {
		return fmt.Errorf("netlist: device with empty name")
	}
	if _, dup := c.byName[d.Name]; dup {
		return fmt.Errorf("netlist: duplicate device %q", d.Name)
	}
	if d.Ports == nil {
		d.Ports = map[string]string{}
	}
	if d.Params == nil {
		d.Params = map[string]float64{}
	}
	c.Devices = append(c.Devices, d)
	c.byName[d.Name] = d
	return nil
}

// MustAdd is Add that panics on error, for use by circuit generators
// with programmatically unique names.
func (c *Circuit) MustAdd(d *Device) {
	if err := c.Add(d); err != nil {
		panic(err)
	}
}

// Device returns the named device, or nil.
func (c *Circuit) Device(name string) *Device { return c.byName[name] }

// DeviceNames returns all device names in declaration order.
func (c *Circuit) DeviceNames() []string {
	names := make([]string, len(c.Devices))
	for i, d := range c.Devices {
		names[i] = d.Name
	}
	return names
}

// Nets returns a map from net name to the pins on that net, built from
// the current device port assignments.
func (c *Circuit) Nets() map[string][]Pin {
	nets := map[string][]Pin{}
	for _, d := range c.Devices {
		for port, net := range d.Ports {
			if net == "" {
				continue
			}
			nets[net] = append(nets[net], Pin{Device: d.Name, Port: port})
		}
	}
	for _, pins := range nets {
		sort.Slice(pins, func(i, j int) bool {
			if pins[i].Device != pins[j].Device {
				return pins[i].Device < pins[j].Device
			}
			return pins[i].Port < pins[j].Port
		})
	}
	return nets
}

// NetNames returns the sorted names of all nets.
func (c *Circuit) NetNames() []string {
	nets := c.Nets()
	names := make([]string, 0, len(nets))
	for n := range nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SignalNets returns net -> device names, excluding the named global
// nets (supplies), which placers should not optimize wirelength for.
func (c *Circuit) SignalNets(globals ...string) map[string][]string {
	skip := map[string]bool{}
	for _, g := range globals {
		skip[g] = true
	}
	out := map[string][]string{}
	for net, pins := range c.Nets() {
		if skip[net] {
			continue
		}
		seen := map[string]bool{}
		var devs []string
		for _, p := range pins {
			if !seen[p.Device] {
				seen[p.Device] = true
				devs = append(devs, p.Device)
			}
		}
		if len(devs) >= 2 {
			out[net] = devs
		}
	}
	return out
}

// ConnectedDevices returns, for each device, the set of devices sharing
// at least one non-global net with it. Used by proximity-cluster
// validation and by the hierarchy detector.
func (c *Circuit) ConnectedDevices(globals ...string) map[string]map[string]bool {
	adj := map[string]map[string]bool{}
	for _, d := range c.Devices {
		adj[d.Name] = map[string]bool{}
	}
	for _, devs := range c.SignalNets(globals...) {
		for i := 0; i < len(devs); i++ {
			for j := i + 1; j < len(devs); j++ {
				adj[devs[i]][devs[j]] = true
				adj[devs[j]][devs[i]] = true
			}
		}
	}
	return adj
}

// Validate checks structural sanity: every device has at least one
// port, MOS devices have D/G/S ports, and footprints are non-negative.
func (c *Circuit) Validate() error {
	for _, d := range c.Devices {
		if len(d.Ports) == 0 {
			return fmt.Errorf("netlist: device %q has no ports", d.Name)
		}
		if d.IsMOS() {
			for _, p := range []string{"D", "G", "S"} {
				if _, ok := d.Ports[p]; !ok {
					return fmt.Errorf("netlist: MOS %q missing port %s", d.Name, p)
				}
			}
		}
		if d.FW < 0 || d.FH < 0 {
			return fmt.Errorf("netlist: device %q has negative footprint", d.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := NewCircuit(c.Name)
	for _, d := range c.Devices {
		nd := &Device{
			Name:   d.Name,
			Type:   d.Type,
			Ports:  make(map[string]string, len(d.Ports)),
			Params: make(map[string]float64, len(d.Params)),
			FW:     d.FW,
			FH:     d.FH,
		}
		for k, v := range d.Ports {
			nd.Ports[k] = v
		}
		for k, v := range d.Params {
			nd.Params[k] = v
		}
		out.MustAdd(nd)
	}
	return out
}

// String renders the circuit in the SPICE-like format accepted by
// Parse.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".circuit %s\n", c.Name)
	for _, d := range c.Devices {
		b.WriteString(formatDevice(d))
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}

func formatDevice(d *Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", d.Name, d.Type)
	for _, p := range d.PortNames() {
		fmt.Fprintf(&b, " %s=%s", p, d.Ports[p])
	}
	params := make([]string, 0, len(d.Params))
	for k := range d.Params {
		params = append(params, k)
	}
	sort.Strings(params)
	for _, k := range params {
		fmt.Fprintf(&b, " %s=%g", k, d.Params[k])
	}
	if d.FW > 0 || d.FH > 0 {
		fmt.Fprintf(&b, " fw=%d fh=%d", d.FW, d.FH)
	}
	return b.String()
}
