package netlist

import (
	"strings"
	"testing"
)

func mos(name string, t DeviceType, d, g, s, b string) *Device {
	return &Device{
		Name:  name,
		Type:  t,
		Ports: map[string]string{"D": d, "G": g, "S": s, "B": b},
		Params: map[string]float64{
			"w": 10, "l": 1,
		},
	}
}

func TestAddAndLookup(t *testing.T) {
	c := NewCircuit("test")
	if err := c.Add(mos("M1", NMOS, "out", "in", "gnd", "gnd")); err != nil {
		t.Fatal(err)
	}
	if c.Device("M1") == nil {
		t.Fatal("device M1 not found after Add")
	}
	if c.Device("M2") != nil {
		t.Fatal("lookup of absent device must return nil")
	}
	if err := c.Add(mos("M1", NMOS, "a", "b", "c", "d")); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if err := c.Add(&Device{}); err == nil {
		t.Fatal("empty name must fail")
	}
}

func TestNets(t *testing.T) {
	c := NewCircuit("test")
	c.MustAdd(mos("M1", NMOS, "out", "in", "gnd", "gnd"))
	c.MustAdd(mos("M2", PMOS, "out", "in", "vdd", "vdd"))
	nets := c.Nets()
	if len(nets["out"]) != 2 {
		t.Fatalf("net out has %d pins, want 2", len(nets["out"]))
	}
	if len(nets["in"]) != 2 {
		t.Fatalf("net in has %d pins, want 2", len(nets["in"]))
	}
	// gnd carries M1's S and B.
	if len(nets["gnd"]) != 2 {
		t.Fatalf("net gnd has %d pins, want 2", len(nets["gnd"]))
	}
	names := c.NetNames()
	want := []string{"gnd", "in", "out", "vdd"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("NetNames = %v, want %v", names, want)
	}
}

func TestSignalNetsExcludesGlobals(t *testing.T) {
	c := NewCircuit("test")
	c.MustAdd(mos("M1", NMOS, "out", "in", "gnd", "gnd"))
	c.MustAdd(mos("M2", PMOS, "out", "in", "vdd", "vdd"))
	sig := c.SignalNets("vdd", "gnd")
	if _, ok := sig["vdd"]; ok {
		t.Fatal("global net vdd must be excluded")
	}
	if devs := sig["out"]; len(devs) != 2 {
		t.Fatalf("signal net out = %v, want two devices", devs)
	}
	// Single-device nets are dropped.
	c.MustAdd(&Device{Name: "C1", Type: Capacitor, Ports: map[string]string{"P": "lonely", "N": "gnd"}})
	sig = c.SignalNets("vdd", "gnd")
	if _, ok := sig["lonely"]; ok {
		t.Fatal("single-device net must be dropped")
	}
}

func TestConnectedDevices(t *testing.T) {
	c := NewCircuit("test")
	c.MustAdd(mos("M1", NMOS, "x", "in", "gnd", "gnd"))
	c.MustAdd(mos("M2", NMOS, "x", "in2", "gnd", "gnd"))
	c.MustAdd(mos("M3", NMOS, "y", "in3", "gnd", "gnd"))
	adj := c.ConnectedDevices("gnd")
	if !adj["M1"]["M2"] || !adj["M2"]["M1"] {
		t.Fatal("M1 and M2 share net x and must be adjacent")
	}
	if adj["M1"]["M3"] {
		t.Fatal("M1 and M3 share only the excluded global gnd")
	}
}

func TestValidate(t *testing.T) {
	c := NewCircuit("test")
	c.MustAdd(mos("M1", NMOS, "out", "in", "gnd", "gnd"))
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	bad := NewCircuit("bad")
	bad.MustAdd(&Device{Name: "M9", Type: NMOS, Ports: map[string]string{"D": "x"}})
	if err := bad.Validate(); err == nil {
		t.Fatal("MOS without G/S must fail validation")
	}
	noPorts := NewCircuit("np")
	noPorts.MustAdd(&Device{Name: "B1", Type: Block})
	if err := noPorts.Validate(); err == nil {
		t.Fatal("device without ports must fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewCircuit("orig")
	c.MustAdd(mos("M1", NMOS, "out", "in", "gnd", "gnd"))
	cl := c.Clone()
	cl.Device("M1").Ports["D"] = "changed"
	cl.Device("M1").Params["w"] = 99
	if c.Device("M1").Ports["D"] != "out" {
		t.Fatal("Clone shares port storage")
	}
	if c.Device("M1").Params["w"] != 10 {
		t.Fatal("Clone shares param storage")
	}
}

func TestRoundTrip(t *testing.T) {
	c := NewCircuit("rt")
	m := mos("M1", PMOS, "out", "in", "vdd", "vdd")
	m.FW, m.FH = 40, 20
	c.MustAdd(m)
	c.MustAdd(&Device{
		Name:   "C1",
		Type:   Capacitor,
		Ports:  map[string]string{"P": "out", "N": "gnd"},
		Params: map[string]float64{"c": 1e-12},
	})

	text := c.String()
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if got.Name != "rt" {
		t.Fatalf("Name = %q, want rt", got.Name)
	}
	gm := got.Device("M1")
	if gm == nil || gm.Type != PMOS || gm.Ports["D"] != "out" || gm.FW != 40 || gm.FH != 20 {
		t.Fatalf("M1 round-trip mismatch: %+v", gm)
	}
	gc := got.Device("C1")
	if gc == nil || gc.Params["c"] != 1e-12 {
		t.Fatalf("C1 round-trip mismatch: %+v", gc)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "M1 nmos D=a G=b S=c\n.end\n"},
		{"missing end", ".circuit x\nM1 nmos D=a G=b S=c\n"},
		{"bad type", ".circuit x\nM1 frobnicator D=a\n.end\n"},
		{"bad param", ".circuit x\nM1 nmos D=a G=b S=c w=abc\n.end\n"},
		{"bad assignment", ".circuit x\nM1 nmos D\n.end\n"},
		{"nested circuit", ".circuit x\n.circuit y\n.end\n"},
		{"duplicate device", ".circuit x\nM1 nmos D=a G=b S=c\nM1 nmos D=a G=b S=c\n.end\n"},
		{"empty input", ""},
		{"bad footprint", ".circuit x\nM1 nmos D=a G=b S=c fw=zz\n.end\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.in); err == nil {
			t.Errorf("%s: Parse succeeded, want error", tc.name)
		}
	}
}

func TestParseSkipsComments(t *testing.T) {
	in := `* a comment
.circuit c
// another comment
M1 nmos D=a G=b S=c B=d

.end
`
	c, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Devices) != 1 {
		t.Fatalf("got %d devices, want 1", len(c.Devices))
	}
}

func TestDeviceParamDefault(t *testing.T) {
	d := mos("M1", NMOS, "a", "b", "c", "d")
	if d.Param("w", 0) != 10 {
		t.Fatal("existing param not returned")
	}
	if d.Param("nf", 4) != 4 {
		t.Fatal("default not returned for absent param")
	}
}

func TestDeviceTypeString(t *testing.T) {
	want := map[DeviceType]string{
		NMOS: "nmos", PMOS: "pmos", Resistor: "res", Capacitor: "cap", Block: "block",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ty), ty.String(), s)
		}
	}
	if DeviceType(99).String() != "DeviceType(99)" {
		t.Error("unknown type string wrong")
	}
}
