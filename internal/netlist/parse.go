package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a circuit in the SPICE-like line format produced by
// (*Circuit).String:
//
//	.circuit <name>
//	<dev> <type> <PORT>=<net> ... <param>=<value> ... [fw=<int> fh=<int>]
//	* comment
//	.end
//
// Port keys are upper-case single tokens (D, G, S, B, P, N, ...);
// lower-case keys are numeric parameters. fw/fh set the layout
// footprint. Blank lines and lines starting with '*' or '//' are
// ignored.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var c *Circuit
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.EqualFold(fields[0], ".circuit"):
			if c != nil {
				return nil, fmt.Errorf("netlist: line %d: nested .circuit", lineno)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("netlist: line %d: .circuit needs a name", lineno)
			}
			c = NewCircuit(fields[1])
		case strings.EqualFold(fields[0], ".end"):
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: .end before .circuit", lineno)
			}
			return c, nil
		default:
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: device before .circuit", lineno)
			}
			d, err := parseDevice(fields)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineno, err)
			}
			if err := c.Add(d); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineno, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: no .circuit header found")
	}
	return nil, fmt.Errorf("netlist: missing .end")
}

// ParseString is Parse over a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parseDevice(fields []string) (*Device, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("device line needs name and type")
	}
	d := &Device{
		Name:   fields[0],
		Ports:  map[string]string{},
		Params: map[string]float64{},
	}
	switch strings.ToLower(fields[1]) {
	case "nmos":
		d.Type = NMOS
	case "pmos":
		d.Type = PMOS
	case "res":
		d.Type = Resistor
	case "cap":
		d.Type = Capacitor
	case "block":
		d.Type = Block
	default:
		return nil, fmt.Errorf("unknown device type %q", fields[1])
	}
	for _, tok := range fields[2:] {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed assignment %q", tok)
		}
		key, val := tok[:eq], tok[eq+1:]
		switch {
		case key == "fw" || key == "fh":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("footprint %s=%q: %v", key, val, err)
			}
			if key == "fw" {
				d.FW = n
			} else {
				d.FH = n
			}
		case key == strings.ToUpper(key): // port assignment
			d.Ports[key] = val
		default: // numeric parameter
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("parameter %s=%q: %v", key, val, err)
			}
			d.Params[key] = f
		}
	}
	return d, nil
}
