// Package mos provides the square-law MOS transistor model used by the
// layout-aware sizing flow of Section V: small-signal quantities
// (transconductance, output resistance), operating-point relations,
// and — crucially for the layout-aware experiments — the dependence of
// junction capacitances and layout footprint on the number of folds
// (fingers). Different foldings "change the junction capacitances of a
// MOS transistor", which is exactly the coupling between geometric
// variables and electrical performance the paper exploits.
//
// Units: lengths in micrometers, currents in amperes, capacitances in
// farads, voltages in volts.
package mos

import (
	"fmt"
	"math"
)

// Tech holds per-type technology parameters of a generic 0.35 µm-class
// CMOS process (representative textbook values; the experiments only
// rely on relative behaviour).
type Tech struct {
	KP     float64 // transconductance parameter µ·Cox, A/V²
	VT     float64 // threshold voltage, V
	Lambda float64 // channel-length modulation at L = 1 µm, 1/V
	Cox    float64 // gate capacitance per area, F/µm²
	CJ     float64 // junction capacitance per area, F/µm²
	CJSW   float64 // junction sidewall capacitance per length, F/µm
	LDiff  float64 // source/drain diffusion extent, µm
}

// NTech returns NMOS parameters.
func NTech() Tech {
	return Tech{
		KP:     170e-6,
		VT:     0.5,
		Lambda: 0.06,
		Cox:    4.6e-15,
		CJ:     0.94e-15,
		CJSW:   0.25e-15,
		LDiff:  0.85,
	}
}

// PTech returns PMOS parameters.
func PTech() Tech {
	return Tech{
		KP:     58e-6,
		VT:     0.55,
		Lambda: 0.08,
		Cox:    4.6e-15,
		CJ:     1.1e-15,
		CJSW:   0.32e-15,
		LDiff:  0.85,
	}
}

// Device is one sized transistor.
type Device struct {
	Tech  Tech
	W, L  float64 // drawn width and length, µm
	Folds int     // number of fingers (>= 1)
}

// Validate checks physical sanity.
func (d Device) Validate() error {
	if d.W <= 0 || d.L <= 0 {
		return fmt.Errorf("mos: non-positive W or L")
	}
	if d.Folds < 1 {
		return fmt.Errorf("mos: folds must be >= 1")
	}
	if d.W/float64(d.Folds) < 0.4 {
		return fmt.Errorf("mos: finger width %.3g µm below minimum", d.W/float64(d.Folds))
	}
	return nil
}

// Beta returns KP·W/L.
func (d Device) Beta() float64 { return d.Tech.KP * d.W / d.L }

// Gm returns the saturation transconductance at drain current id:
// gm = sqrt(2·KP·(W/L)·id).
func (d Device) Gm(id float64) float64 {
	if id <= 0 {
		return 0
	}
	return math.Sqrt(2 * d.Beta() * id)
}

// Rout returns the small-signal output resistance 1/(λ_eff·id), where
// λ_eff scales inversely with channel length.
func (d Device) Rout(id float64) float64 {
	if id <= 0 {
		return math.Inf(1)
	}
	return d.L / (d.Tech.Lambda * id)
}

// VOV returns the overdrive voltage for drain current id.
func (d Device) VOV(id float64) float64 {
	if id <= 0 {
		return 0
	}
	return math.Sqrt(2 * id / d.Beta())
}

// IDSat returns the saturation current at overdrive vov.
func (d Device) IDSat(vov float64) float64 {
	if vov <= 0 {
		return 0
	}
	return 0.5 * d.Beta() * vov * vov
}

// GateCap returns the total gate capacitance Cox·W·L.
func (d Device) GateCap() float64 { return d.Tech.Cox * d.W * d.L }

// drainGeometry returns total drain diffusion area (µm²) and sidewall
// perimeter (µm) as a function of folding. With nf fingers, drain
// stripes are shared between adjacent fingers: ceil(nf/2) stripes of
// width W/nf. Folding therefore shrinks the drain junction — the
// classic layout lever on the parasitic pole.
func (d Device) drainGeometry() (area, perim float64) {
	nf := float64(d.Folds)
	stripes := math.Ceil(nf / 2)
	fw := d.W / nf
	area = stripes * fw * d.Tech.LDiff
	perim = stripes * 2 * (fw + d.Tech.LDiff)
	return area, perim
}

// DrainCap returns the drain junction capacitance CJ·area + CJSW·perimeter.
func (d Device) DrainCap() float64 {
	a, p := d.drainGeometry()
	return d.Tech.CJ*a + d.Tech.CJSW*p
}

// SourceCap returns the source junction capacitance; sources get the
// remaining stripes (floor(nf/2) + 1).
func (d Device) SourceCap() float64 {
	nf := float64(d.Folds)
	stripes := math.Floor(nf/2) + 1
	fw := d.W / nf
	area := stripes * fw * d.Tech.LDiff
	perim := stripes * 2 * (fw + d.Tech.LDiff)
	return d.Tech.CJ*area + d.Tech.CJSW*perim
}

// Footprint returns the layout extent of the folded device in µm:
// width grows with the finger count (each finger is a gate stripe plus
// shared diffusion), height is the finger width plus diffusion
// overhead. Folding turns a wide, flat device into a compact block —
// the geometric half of the layout-aware trade-off.
func (d Device) Footprint() (w, h float64) {
	nf := float64(d.Folds)
	w = nf*d.L + (nf+1)*d.Tech.LDiff
	h = d.W/nf + 2*d.Tech.LDiff
	return w, h
}

// Area returns the footprint area in µm².
func (d Device) Area() float64 {
	w, h := d.Footprint()
	return w * h
}
