package mos

import (
	"math"
	"testing"
)

func dev(w, l float64, folds int) Device {
	return Device{Tech: NTech(), W: w, L: l, Folds: folds}
}

func TestValidate(t *testing.T) {
	if err := dev(10, 1, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := dev(0, 1, 1).Validate(); err == nil {
		t.Fatal("zero width must fail")
	}
	if err := dev(10, 1, 0).Validate(); err == nil {
		t.Fatal("zero folds must fail")
	}
	if err := dev(1, 1, 10).Validate(); err == nil {
		t.Fatal("sub-minimum finger width must fail")
	}
}

func TestSquareLawRelations(t *testing.T) {
	d := dev(20, 1, 1)
	id := 100e-6
	gm := d.Gm(id)
	// gm = sqrt(2*170e-6*20*100e-6) = sqrt(6.8e-7) ≈ 0.825 mA/V
	want := math.Sqrt(2 * 170e-6 * 20 * 100e-6)
	if math.Abs(gm-want) > 1e-9 {
		t.Fatalf("Gm = %g, want %g", gm, want)
	}
	// Round trip: IDSat(VOV(id)) == id.
	if got := d.IDSat(d.VOV(id)); math.Abs(got-id)/id > 1e-9 {
		t.Fatalf("IDSat(VOV) = %g, want %g", got, id)
	}
	// Longer channel -> higher rout.
	if dev(20, 2, 1).Rout(id) <= dev(20, 1, 1).Rout(id) {
		t.Fatal("Rout must grow with L")
	}
	if !math.IsInf(d.Rout(0), 1) {
		t.Fatal("Rout at zero current must be infinite")
	}
	if d.Gm(0) != 0 || d.VOV(0) != 0 || d.IDSat(0) != 0 {
		t.Fatal("zero-current small-signal values must be zero")
	}
}

func TestGmIncreasesWithWidth(t *testing.T) {
	id := 50e-6
	if dev(40, 1, 1).Gm(id) <= dev(10, 1, 1).Gm(id) {
		t.Fatal("Gm must grow with W")
	}
}

// Folding must shrink the drain junction capacitance: the layout-aware
// lever of Section V.
func TestFoldingShrinksDrainCap(t *testing.T) {
	unfolded := dev(40, 1, 1)
	folded := dev(40, 1, 4)
	cu, cf := unfolded.DrainCap(), folded.DrainCap()
	if cf >= cu {
		t.Fatalf("folded drain cap %g must be below unfolded %g", cf, cu)
	}
	// The big win is sharing drain stripes (1 -> 2 folds roughly
	// halves the area); any even folding stays well below unfolded.
	if c2 := dev(40, 1, 2).DrainCap(); c2 > 0.7*cu {
		t.Fatalf("2-fold drain cap %g not substantially below unfolded %g", c2, cu)
	}
	for nf := 2; nf <= 8; nf *= 2 {
		if c := dev(40, 1, nf).DrainCap(); c >= cu {
			t.Fatalf("drain cap at %d folds (%g) not below unfolded (%g)", nf, c, cu)
		}
	}
}

// Folding must square up the footprint: a 1-fold wide device is flat,
// a multi-fold one is compact.
func TestFoldingSquaresFootprint(t *testing.T) {
	flat := dev(100, 1, 1)
	fw, fh := flat.Footprint()
	if fh <= fw {
		t.Fatalf("unfolded 100 µm device should be tall: %gx%g", fw, fh)
	}
	sq := dev(100, 1, 10)
	sw, sh := sq.Footprint()
	ratioFlat := math.Max(fw/fh, fh/fw)
	ratioSq := math.Max(sw/sh, sh/sw)
	if ratioSq >= ratioFlat {
		t.Fatalf("folding did not improve aspect ratio: %g vs %g", ratioSq, ratioFlat)
	}
}

func TestGateCapIndependentOfFolds(t *testing.T) {
	a := dev(40, 1, 1).GateCap()
	b := dev(40, 1, 4).GateCap()
	if math.Abs(a-b) > 1e-20 {
		t.Fatal("gate cap must not depend on folding")
	}
}

func TestSourceCapPositive(t *testing.T) {
	if dev(40, 1, 3).SourceCap() <= 0 {
		t.Fatal("source cap must be positive")
	}
}

func TestAreaMatchesFootprint(t *testing.T) {
	d := dev(40, 2, 4)
	w, h := d.Footprint()
	if math.Abs(d.Area()-w*h) > 1e-12 {
		t.Fatal("Area != W*H")
	}
}

func TestPTechDiffers(t *testing.T) {
	n, p := NTech(), PTech()
	if n.KP <= p.KP {
		t.Fatal("NMOS KP must exceed PMOS KP")
	}
}
