// Package fault is a failpoint registry for chaos-testing the
// placement daemon: named sites in the scheduler, the solve path and
// the HTTP surface ask Point whether an injected fault should fire
// here, and chaos tests (or an operator via PLACED_FAULTPOINTS) arm
// the sites with per-point probabilities. The registry is built for
// production binaries to carry the call sites at zero cost: while no
// point is armed, Point is a single atomic load and a return.
//
// Activation is deterministic: every point draws from its own RNG
// seeded from the global seed and the point's name, so a chaos run
// with a fixed seed fires the same faults at the same call sequence
// regardless of how goroutines interleave between points (the draws
// of one point are serialized under its own lock). Each point counts
// its fires, so tests can assert a storm actually exercised a site.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// armed is the fast-path gate: false whenever no point is enabled, so
// disabled builds pay one atomic load per call site and nothing else.
var armed atomic.Bool

var (
	mu     sync.Mutex
	seed   int64 = 1
	points       = map[string]*point{}
)

// point is one armed failpoint.
type point struct {
	sync.Mutex
	prob  float64
	rng   *rand.Rand
	fires int64
	evals int64
}

// pointSeed derives a per-point seed from the global seed and the
// point name, so arming points in a different order cannot shift any
// point's draw sequence.
func pointSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64())
}

// Enable arms the named failpoint: Point(name) fires with the given
// probability (1 fires every call, 0 never). Enabling resets the
// point's RNG and counters.
func Enable(name string, prob float64) {
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{prob: prob, rng: rand.New(rand.NewSource(pointSeed(seed, name)))}
	armed.Store(true)
}

// Disable disarms one failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every failpoint and restores the default seed,
// returning the registry to the zero-cost state.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	seed = 1
	armed.Store(false)
}

// SetSeed fixes the global activation seed. It only affects points
// enabled afterwards; call it before Enable for a deterministic storm.
func SetSeed(s int64) {
	mu.Lock()
	defer mu.Unlock()
	seed = s
}

// Point reports whether the named failpoint fires at this call. While
// nothing is armed it is one atomic load; sites guard their injected
// panic/hang/error behind it:
//
//	if fault.Point("scheduler/worker-panic") {
//		panic("fault: injected worker panic")
//	}
func Point(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return false
	}
	p.Lock()
	defer p.Unlock()
	p.evals++
	if p.prob < 1 && p.rng.Float64() >= p.prob {
		return false
	}
	p.fires++
	return true
}

// Count returns how many times the named point has fired since it was
// enabled (0 for a disarmed point).
func Count(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	p.Lock()
	defer p.Unlock()
	return p.fires
}

// Evals returns how many times the named point has been evaluated
// since it was enabled, fired or not.
func Evals(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	p.Lock()
	defer p.Unlock()
	return p.evals
}

// Armed lists the currently enabled point names, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnvVar and EnvSeedVar are the environment knobs EnableFromEnv
// consumes: a comma-separated name=probability list, and the global
// activation seed.
const (
	EnvVar     = "PLACED_FAULTPOINTS"
	EnvSeedVar = "PLACED_FAULT_SEED"
)

// EnableFromEnv arms failpoints from PLACED_FAULTPOINTS
// ("scheduler/worker-panic=0.05,solve/slow=0.1") with the seed from
// PLACED_FAULT_SEED, reporting what it armed. An empty variable arms
// nothing; a malformed entry is an error and nothing is armed.
func EnableFromEnv() ([]string, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	if sv := os.Getenv(EnvSeedVar); sv != "" {
		s, err := strconv.ParseInt(sv, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: %s: %v", EnvSeedVar, err)
		}
		SetSeed(s)
	}
	type entry struct {
		name string
		prob float64
	}
	var parsed []entry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, probStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %s entry %q is not name=probability", EnvVar, part)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: %s entry %q: probability must be in [0,1]", EnvVar, part)
		}
		parsed = append(parsed, entry{strings.TrimSpace(name), prob})
	}
	names := make([]string, 0, len(parsed))
	for _, e := range parsed {
		Enable(e.name, e.prob)
		names = append(names, e.name)
	}
	return names, nil
}
