package fault

import (
	"sync"
	"testing"
)

func TestDisabledNeverFires(t *testing.T) {
	Reset()
	for i := 0; i < 1000; i++ {
		if Point("never/armed") {
			t.Fatal("disarmed point fired")
		}
	}
	if Count("never/armed") != 0 || Evals("never/armed") != 0 {
		t.Fatal("disarmed point has counters")
	}
}

func TestAlwaysAndNever(t *testing.T) {
	Reset()
	defer Reset()
	Enable("t/always", 1)
	Enable("t/never", 0)
	for i := 0; i < 100; i++ {
		if !Point("t/always") {
			t.Fatal("prob=1 point did not fire")
		}
		if Point("t/never") {
			t.Fatal("prob=0 point fired")
		}
	}
	if Count("t/always") != 100 || Count("t/never") != 0 {
		t.Fatalf("counts: always=%d never=%d", Count("t/always"), Count("t/never"))
	}
	if Evals("t/never") != 100 {
		t.Fatalf("evals: never=%d", Evals("t/never"))
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []bool {
		Reset()
		SetSeed(42)
		Enable("t/half", 0.5)
		seq := make([]bool, 64)
		for i := range seq {
			seq[i] = Point("t/half")
		}
		return seq
	}
	a, b := run(), run()
	Reset()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically-seeded runs", i)
		}
	}
	fired := false
	for _, f := range a {
		fired = fired || f
	}
	if !fired {
		t.Fatal("p=0.5 point never fired in 64 draws")
	}
}

func TestSeedIndependentOfArmingOrder(t *testing.T) {
	draw := func(first, second string) []bool {
		Reset()
		SetSeed(7)
		Enable(first, 0.5)
		Enable(second, 0.5)
		seq := make([]bool, 32)
		for i := range seq {
			seq[i] = Point("t/a")
		}
		return seq
	}
	a := draw("t/a", "t/b")
	b := draw("t/b", "t/a")
	Reset()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arming order changed point t/a's draw %d", i)
		}
	}
}

func TestConcurrentPointsRace(t *testing.T) {
	Reset()
	defer Reset()
	Enable("t/conc", 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Point("t/conc")
			}
		}()
	}
	wg.Wait()
	if Evals("t/conc") != 8*200 {
		t.Fatalf("evals = %d, want %d", Evals("t/conc"), 8*200)
	}
}

func TestEnableFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, "a/b=0.25, c/d=1")
	t.Setenv(EnvSeedVar, "99")
	names, err := EnableFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/b" || names[1] != "c/d" {
		t.Fatalf("armed %v", names)
	}
	if !Point("c/d") {
		t.Fatal("c/d armed at 1 did not fire")
	}

	t.Setenv(EnvVar, "broken")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("malformed spec accepted")
	}
	t.Setenv(EnvVar, "a/b=2")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}
