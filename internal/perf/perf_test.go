package perf

import (
	"testing"

	"repro/internal/mos"
)

// referenceFC is a reasonable hand design of the folded cascode.
func referenceFC() FoldedCascode {
	n, p := mos.NTech(), mos.PTech()
	return FoldedCascode{
		In:   mos.Device{Tech: n, W: 120, L: 0.7, Folds: 6},
		Tail: mos.Device{Tech: n, W: 60, L: 1.4, Folds: 4},
		Src:  mos.Device{Tech: p, W: 160, L: 1.4, Folds: 8},
		CasP: mos.Device{Tech: p, W: 120, L: 0.7, Folds: 6},
		CasN: mos.Device{Tech: n, W: 60, L: 0.7, Folds: 4},
		Mir:  mos.Device{Tech: n, W: 80, L: 1.4, Folds: 4},

		ITail: 200e-6,
		VDD:   3.3,
		CL:    2e-12,
	}
}

func TestFoldedCascodeNominal(t *testing.T) {
	p, err := referenceFC().Evaluate(Parasitics{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.OpOK {
		t.Fatalf("operating point failed: %s", p.OpMsg)
	}
	if p.GainDB < 60 || p.GainDB > 110 {
		t.Fatalf("gain %.1f dB outside plausible folded-cascode range", p.GainDB)
	}
	if p.GBW < 1e6 || p.GBW > 1e9 {
		t.Fatalf("GBW %.3g Hz implausible", p.GBW)
	}
	if p.PM <= 0 || p.PM >= 90 {
		t.Fatalf("PM %.1f° implausible", p.PM)
	}
	if p.SR <= 0 || p.Power <= 0 {
		t.Fatal("SR/power must be positive")
	}
}

// Layout parasitics must degrade performance monotonically: output cap
// hits GBW and SR, folding-node cap hits phase margin.
func TestParasiticsDegradePerformance(t *testing.T) {
	d := referenceFC()
	clean, err := d.Evaluate(Parasitics{})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := d.Evaluate(Parasitics{COut: 1e-12, CFold: 0.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GBW >= clean.GBW {
		t.Fatal("output parasitic must reduce GBW")
	}
	if loaded.SR >= clean.SR {
		t.Fatal("output parasitic must reduce slew rate")
	}
	if loaded.PM >= clean.PM {
		t.Fatal("folding-node parasitic must reduce phase margin")
	}
	if loaded.GainDB != clean.GainDB {
		t.Fatal("capacitive parasitics must not change dc gain")
	}
}

func TestSpecViolations(t *testing.T) {
	d := referenceFC()
	p, err := d.Evaluate(Parasitics{})
	if err != nil {
		t.Fatal(err)
	}
	pass := Spec{MinGainDB: 50, MinGBW: 1e6, MinPM: 45, MinSR: 1e6}
	if v := pass.Violations(p); len(v) != 0 {
		t.Fatalf("reference design should pass relaxed spec: %v", v)
	}
	hard := Spec{MinGainDB: 150, MinGBW: 1e12, MinPM: 89.9, MinSR: 1e12, MaxPower: 1e-9}
	if v := hard.Violations(p); len(v) != 5 {
		t.Fatalf("impossible spec should violate all 5 entries, got %v", v)
	}
}

func TestOperatingPointDetection(t *testing.T) {
	d := referenceFC()
	d.VDD = 1.0 // far too low for the stacks
	p, err := d.Evaluate(Parasitics{})
	if err != nil {
		t.Fatal(err)
	}
	if p.OpOK {
		t.Fatal("1 V supply must fail the operating point")
	}
	spec := Spec{}
	if v := spec.Violations(p); len(v) == 0 {
		t.Fatal("operating-point failure must appear as a violation")
	}
}

func TestValidateErrors(t *testing.T) {
	d := referenceFC()
	d.ITail = 0
	if _, err := d.Evaluate(Parasitics{}); err == nil {
		t.Fatal("zero tail current must fail")
	}
	d = referenceFC()
	d.In.W = 0
	if _, err := d.Evaluate(Parasitics{}); err == nil {
		t.Fatal("zero width must fail")
	}
}

func TestDeviceAreaPositive(t *testing.T) {
	if referenceFC().DeviceArea() <= 0 {
		t.Fatal("device area must be positive")
	}
}

func TestWiderInputIncreasesGBW(t *testing.T) {
	d := referenceFC()
	base, _ := d.Evaluate(Parasitics{})
	d.In.W *= 2
	d.In.Folds *= 2
	wide, _ := d.Evaluate(Parasitics{})
	if wide.GBW <= base.GBW {
		t.Fatal("wider input pair must raise GBW (same load)")
	}
}

func referenceMiller() Miller {
	n, p := mos.NTech(), mos.PTech()
	return Miller{
		In:   mos.Device{Tech: p, W: 40, L: 1, Folds: 2},
		Load: mos.Device{Tech: n, W: 20, L: 2, Folds: 2},
		Tail: mos.Device{Tech: p, W: 20, L: 2, Folds: 2},
		Out:  mos.Device{Tech: n, W: 80, L: 1, Folds: 4},
		OutP: mos.Device{Tech: p, W: 60, L: 2, Folds: 4},

		ITail: 20e-6,
		IOut:  100e-6,
		VDD:   3.3,
		CC:    2e-12,
		CL:    5e-12,
	}
}

func TestMillerNominal(t *testing.T) {
	p, err := referenceMiller().Evaluate(Parasitics{})
	if err != nil {
		t.Fatal(err)
	}
	if p.GainDB < 60 || p.GainDB > 120 {
		t.Fatalf("Miller gain %.1f dB implausible", p.GainDB)
	}
	if p.PM <= 0 {
		t.Fatalf("Miller PM %.1f° implausible", p.PM)
	}
}

func TestMillerParasiticsDegrade(t *testing.T) {
	d := referenceMiller()
	clean, _ := d.Evaluate(Parasitics{})
	dirty, _ := d.Evaluate(Parasitics{COut: 2e-12, CFold: 0.5e-12})
	if dirty.PM >= clean.PM {
		t.Fatal("parasitics must reduce Miller phase margin")
	}
}

func TestMillerValidate(t *testing.T) {
	d := referenceMiller()
	d.CC = 0
	if _, err := d.Evaluate(Parasitics{}); err == nil {
		t.Fatal("zero compensation cap must fail")
	}
}
