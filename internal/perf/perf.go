// Package perf evaluates analog amplifier performance analytically:
// dc gain, gain-bandwidth product, phase margin, slew rate and power
// for a fully-differential folded-cascode OTA (the circuit of the
// paper's Fig. 10 experiment) and a two-stage Miller OTA.
//
// It substitutes for the SPICE-level simulator of the original
// layout-aware flow (see DESIGN.md): what Section V needs from the
// simulator is that layout parasitics — junction capacitances set by
// folding, wire capacitances set by the floorplan — feed back into the
// performance numbers. Here they enter exactly where physics puts
// them: output-node capacitance degrades GBW and slew rate, folding-
// node capacitance moves the non-dominant pole and erodes phase
// margin.
package perf

import (
	"fmt"
	"math"

	"repro/internal/mos"
)

// Parasitics are the layout-induced capacitances at the critical nodes
// of an amplifier, produced by package extract. Zero values mean a
// pre-layout evaluation.
type Parasitics struct {
	COut  float64 // extra capacitance at the output node(s), F
	CFold float64 // extra capacitance at the folding / internal node, F

	// IgnoreJunctions models the classic schematic-level sizing
	// shortcut of entering zero source/drain areas: device junction
	// capacitances are excluded from every node. It is the
	// "underestimation" failure mode of Section V — sizings look fine
	// at schematic level and degrade fatally once the layout's
	// junction and wire parasitics appear.
	IgnoreJunctions bool
}

// drainCap returns the device's drain junction capacitance unless the
// evaluation ignores junctions.
func (p Parasitics) drainCap(d interface{ DrainCap() float64 }) float64 {
	if p.IgnoreJunctions {
		return 0
	}
	return d.DrainCap()
}

// sourceCap is the source-junction analogue of drainCap.
func (p Parasitics) sourceCap(d interface{ SourceCap() float64 }) float64 {
	if p.IgnoreJunctions {
		return 0
	}
	return d.SourceCap()
}

// Perf is one evaluation result.
type Perf struct {
	GainDB float64 // dc gain, dB
	GBW    float64 // unity-gain bandwidth, Hz
	PM     float64 // phase margin, degrees
	SR     float64 // slew rate, V/s
	Power  float64 // static power, W
	OpOK   bool    // all devices saturate within the supply
	OpMsg  string  // first operating-point violation, if any
}

// Spec is a set of performance requirements (Fig. 9's "performance
// specifications", e.g. "dc-gain higher than 50 dB").
type Spec struct {
	MinGainDB float64
	MinGBW    float64 // Hz
	MinPM     float64 // degrees
	MinSR     float64 // V/s
	MaxPower  float64 // W; 0 = unconstrained
}

// Violations returns human-readable spec violations (empty = pass).
func (s Spec) Violations(p Perf) []string {
	var out []string
	if !p.OpOK {
		out = append(out, "operating point: "+p.OpMsg)
	}
	if p.GainDB < s.MinGainDB {
		out = append(out, fmt.Sprintf("gain %.1f dB < %.1f dB", p.GainDB, s.MinGainDB))
	}
	if p.GBW < s.MinGBW {
		out = append(out, fmt.Sprintf("GBW %.3g Hz < %.3g Hz", p.GBW, s.MinGBW))
	}
	if p.PM < s.MinPM {
		out = append(out, fmt.Sprintf("PM %.1f° < %.1f°", p.PM, s.MinPM))
	}
	if p.SR < s.MinSR {
		out = append(out, fmt.Sprintf("SR %.3g V/s < %.3g V/s", p.SR, s.MinSR))
	}
	if s.MaxPower > 0 && p.Power > s.MaxPower {
		out = append(out, fmt.Sprintf("power %.3g W > %.3g W", p.Power, s.MaxPower))
	}
	return out
}

// FoldedCascode is the design vector of the fully-differential
// folded-cascode OTA: per-group transistor sizes with fold counts,
// tail current, supply and load.
type FoldedCascode struct {
	In   mos.Device // input pair M1/M2 (NMOS)
	Tail mos.Device // tail source M0 (NMOS)
	Src  mos.Device // PMOS current sources M3/M4
	CasP mos.Device // PMOS cascodes M5/M6
	CasN mos.Device // NMOS cascodes M7/M8
	Mir  mos.Device // NMOS mirror M9/M10

	ITail float64 // A
	VDD   float64 // V
	CL    float64 // load capacitance per output, F
}

// Devices returns the named device list (one per matched group).
func (d FoldedCascode) Devices() map[string]mos.Device {
	return map[string]mos.Device{
		"in": d.In, "tail": d.Tail, "src": d.Src,
		"casp": d.CasP, "casn": d.CasN, "mir": d.Mir,
	}
}

// Validate checks the design vector.
func (d FoldedCascode) Validate() error {
	for name, dev := range d.Devices() {
		if err := dev.Validate(); err != nil {
			return fmt.Errorf("perf: %s: %v", name, err)
		}
	}
	if d.ITail <= 0 || d.VDD <= 0 || d.CL <= 0 {
		return fmt.Errorf("perf: non-positive bias, supply or load")
	}
	return nil
}

// Evaluate computes the folded-cascode performance with the given
// layout parasitics.
func (d FoldedCascode) Evaluate(par Parasitics) (Perf, error) {
	if err := d.Validate(); err != nil {
		return Perf{}, err
	}
	iHalf := d.ITail / 2 // per input device
	iOut := d.ITail / 2  // output branch current
	iSrc := iHalf + iOut // PMOS source current

	gm1 := d.In.Gm(iHalf)

	// Output resistance: cascoded PMOS (src under casp) in parallel
	// with cascoded NMOS (mir under casn).
	rUp := d.CasP.Gm(iOut) * d.CasP.Rout(iOut) * d.Src.Rout(iSrc)
	rDn := d.CasN.Gm(iOut) * d.CasN.Rout(iOut) * d.Mir.Rout(iOut)
	rOut := rUp * rDn / (rUp + rDn)
	gain := gm1 * rOut

	// Output node capacitance: load + cascode drains + wiring.
	cOut := d.CL + par.drainCap(d.CasP) + par.drainCap(d.CasN) + par.COut
	gbw := gm1 / (2 * math.Pi * cOut)

	// Folding node: input drain, source drain, cascode source.
	cFold := par.drainCap(d.In) + par.drainCap(d.Src) + par.sourceCap(d.CasP) +
		d.CasP.GateCap()/2 + par.CFold
	p2 := d.CasP.Gm(iOut) / (2 * math.Pi * cFold)
	pm := 90 - math.Atan(gbw/p2)*180/math.Pi

	sr := d.ITail / cOut
	power := d.VDD * (d.ITail + 2*iSrc)

	p := Perf{GainDB: 20 * math.Log10(gain), GBW: gbw, PM: pm, SR: sr, Power: power, OpOK: true}

	// Operating-point: overdrives must fit the supply on both stacks.
	vovIn := d.In.VOV(iHalf)
	vovTail := d.Tail.VOV(d.ITail)
	vovSrc := d.Src.VOV(iSrc)
	vovCasP := d.CasP.VOV(iOut)
	vovCasN := d.CasN.VOV(iOut)
	vovMir := d.Mir.VOV(iOut)
	nStack := vovTail + vovIn + d.In.Tech.VT + 0.2
	pStack := vovSrc + vovCasP + vovCasN + vovMir + 0.3
	switch {
	case nStack > d.VDD:
		p.OpOK = false
		p.OpMsg = fmt.Sprintf("input stack needs %.2f V > VDD %.2f V", nStack, d.VDD)
	case pStack > d.VDD:
		p.OpOK = false
		p.OpMsg = fmt.Sprintf("cascode stack needs %.2f V > VDD %.2f V", pStack, d.VDD)
	}
	return p, nil
}

// DeviceArea returns the total active device area in µm², counting
// matched groups twice (pairs) and the tail once.
func (d FoldedCascode) DeviceArea() float64 {
	return 2*(d.In.Area()+d.Src.Area()+d.CasP.Area()+d.CasN.Area()+d.Mir.Area()) + d.Tail.Area()
}

// Miller is the two-stage Miller-compensated OTA design vector
// (Fig. 6's circuit).
type Miller struct {
	In   mos.Device // input pair P1/P2 (PMOS)
	Load mos.Device // NMOS load mirror N3/N4
	Tail mos.Device // PMOS tail P6
	Out  mos.Device // NMOS output device N8
	OutP mos.Device // PMOS output current source P7

	ITail float64 // first-stage tail current, A
	IOut  float64 // output-stage current, A
	VDD   float64
	CC    float64 // compensation capacitance, F
	CL    float64 // load capacitance, F
}

// Evaluate computes the Miller OTA performance with parasitics (COut
// at the output, CFold at the first-stage output node).
func (d Miller) Evaluate(par Parasitics) (Perf, error) {
	for name, dev := range map[string]mos.Device{
		"in": d.In, "load": d.Load, "tail": d.Tail, "out": d.Out, "outp": d.OutP,
	} {
		if err := dev.Validate(); err != nil {
			return Perf{}, fmt.Errorf("perf: %s: %v", name, err)
		}
	}
	if d.ITail <= 0 || d.IOut <= 0 || d.CC <= 0 || d.CL <= 0 || d.VDD <= 0 {
		return Perf{}, fmt.Errorf("perf: non-positive bias or capacitance")
	}
	iHalf := d.ITail / 2
	gm1 := d.In.Gm(iHalf)
	r1 := parallel(d.In.Rout(iHalf), d.Load.Rout(iHalf))
	gm2 := d.Out.Gm(d.IOut)
	r2 := parallel(d.Out.Rout(d.IOut), d.OutP.Rout(d.IOut))
	gain := gm1 * r1 * gm2 * r2

	cOut := d.CL + par.drainCap(d.Out) + par.drainCap(d.OutP) + par.COut
	c1 := par.drainCap(d.In) + par.drainCap(d.Load) + d.Out.GateCap() + par.CFold
	gbw := gm1 / (2 * math.Pi * d.CC)
	// Pole splitting: output pole gm2/cOut, plus the internal pole the
	// first-stage parasitic c1 reintroduces, and the RHP zero gm2/CC.
	p2 := gm2 / (2 * math.Pi * cOut)
	pInt := gm2 * d.CC / (2 * math.Pi * c1 * cOut)
	z := gm2 / (2 * math.Pi * d.CC)
	pm := 90 - (math.Atan(gbw/p2)+math.Atan(gbw/pInt)+math.Atan(gbw/z))*180/math.Pi

	sr := math.Min(d.ITail/d.CC, d.IOut/cOut)
	power := d.VDD * (d.ITail + d.IOut)
	p := Perf{GainDB: 20 * math.Log10(gain), GBW: gbw, PM: pm, SR: sr, Power: power, OpOK: true}
	return p, nil
}

func parallel(a, b float64) float64 {
	if math.IsInf(a, 1) {
		return b
	}
	if math.IsInf(b, 1) {
		return a
	}
	return a * b / (a + b)
}
