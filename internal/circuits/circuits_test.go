package circuits

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/hier"
)

func TestMillerOpAmpStructure(t *testing.T) {
	b := MillerOpAmp()
	if err := b.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Circuit.Devices) != 9 {
		t.Fatalf("Miller op amp has %d devices, want 9 (8 MOS + C)", len(b.Circuit.Devices))
	}
	if err := b.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 6 hierarchy: CORE with DP, CM1, CM2; N8 and C at top.
	core := b.Tree.Child("CORE")
	if core == nil {
		t.Fatal("CORE node missing")
	}
	for _, want := range []string{"DP", "CM1", "CM2"} {
		if core.Child(want) == nil {
			t.Fatalf("%s missing under CORE", want)
		}
	}
	dp := core.Child("DP")
	if dp.Kind != constraint.KindSymmetry || len(dp.SymPairs) != 1 {
		t.Fatal("DP must carry a symmetry pair")
	}
	if len(b.Tree.Leaves()) != 9 {
		t.Fatalf("tree covers %d devices, want 9", len(b.Tree.Leaves()))
	}
}

// The structural detector must rediscover the published hierarchy of
// Fig. 6 from connectivity alone.
func TestMillerHierarchyDetected(t *testing.T) {
	b := MillerOpAmp()
	blocks := hier.Detect(b.Circuit, "vdd", "gnd")
	foundDP, foundCM1, foundCM2 := false, false, false
	for _, blk := range blocks {
		switch {
		case blk.Kind == hier.DiffPair && has(blk.Devices, "P1") && has(blk.Devices, "P2"):
			foundDP = true
		case blk.Kind == hier.CurrentMirror && has(blk.Devices, "N3") && has(blk.Devices, "N4"):
			foundCM1 = true
		case blk.Kind == hier.CurrentMirror && has(blk.Devices, "P5") && len(blk.Devices) == 3:
			foundCM2 = true
		}
	}
	if !foundDP || !foundCM1 || !foundCM2 {
		t.Fatalf("Fig. 6 blocks not all detected: DP=%v CM1=%v CM2=%v (%+v)",
			foundDP, foundCM1, foundCM2, blocks)
	}
}

func has(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func TestFoldedCascodeStructure(t *testing.T) {
	b := FoldedCascode()
	if err := b.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Tree.Leaves()) != len(b.Circuit.Devices) {
		t.Fatal("tree does not cover all devices")
	}
	// Four matched symmetric pairs plus the mirror.
	symPairs := 0
	var count func(n *constraint.Node)
	count = func(n *constraint.Node) {
		symPairs += len(n.SymPairs)
		for _, c := range n.Children {
			count(c)
		}
	}
	count(b.Tree)
	if symPairs != 5 {
		t.Fatalf("folded cascode has %d symmetric pairs, want 5", symPairs)
	}
}

func TestTableIBenchModuleCounts(t *testing.T) {
	want := map[string]int{
		"miller_v2":     13,
		"comparator_v2": 10,
		"folded_casc":   22,
		"buffer":        46,
		"biasynth":      65,
		"lnamixbias":    110,
	}
	for _, b := range TableIBenches() {
		if got := len(b.Circuit.Devices); got != want[b.Name] {
			t.Errorf("%s: %d modules, want %d", b.Name, got, want[b.Name])
		}
		if err := b.Tree.Validate(); err != nil {
			t.Errorf("%s: invalid tree: %v", b.Name, err)
		}
		if got := len(b.Tree.Leaves()); got != want[b.Name] {
			t.Errorf("%s: tree covers %d devices, want %d", b.Name, got, want[b.Name])
		}
	}
}

func TestTableIBenchDeterministic(t *testing.T) {
	a, err := TableIBench("buffer")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := TableIBench("buffer")
	an, aw, ah := a.Modules()
	bn, bw, bh := b.Modules()
	for i := range an {
		if an[i] != bn[i] || aw[i] != bw[i] || ah[i] != bh[i] {
			t.Fatal("synthetic benchmark generation is not deterministic")
		}
	}
}

func TestTableIBenchUnknown(t *testing.T) {
	if _, err := TableIBench("nope"); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
}

func TestTableINames(t *testing.T) {
	names := TableINames()
	if len(names) != 6 || names[0] != "miller_v2" || names[5] != "lnamixbias" {
		t.Fatalf("TableINames = %v", names)
	}
}

// Synthetic benchmarks must have analog-like properties: heterogeneous
// sizes (max/min dimension ratio above 3) and small basic module sets.
func TestSyntheticProperties(t *testing.T) {
	for _, b := range TableIBenches() {
		_, w, h := b.Modules()
		minD, maxD := 1<<30, 0
		for i := range w {
			for _, d := range []int{w[i], h[i]} {
				if d <= 0 {
					t.Fatalf("%s: nonpositive dimension", b.Name)
				}
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
		}
		if float64(maxD)/float64(minD) < 3 {
			t.Errorf("%s: size ratio %d/%d too homogeneous for an analog benchmark", b.Name, maxD, minD)
		}
		sets := hier.BasicModuleSets(b.Tree)
		for _, s := range sets {
			if len(s) > 6 {
				t.Errorf("%s: basic module set of size %d, want <= 6", b.Name, len(s))
			}
		}
		// Symmetric pairs must be dimension-matched.
		var check func(n *constraint.Node)
		check = func(n *constraint.Node) {
			for _, pr := range n.SymPairs {
				da, db := b.Circuit.Device(pr[0]), b.Circuit.Device(pr[1])
				if da != nil && db != nil && (da.FW != db.FW || da.FH != db.FH) {
					t.Errorf("%s: pair (%s,%s) unmatched dims", b.Name, pr[0], pr[1])
				}
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		check(b.Tree)
	}
}

func TestSyntheticNetsReferToDevices(t *testing.T) {
	b, _ := TableIBench("biasynth")
	if len(b.Nets) == 0 {
		t.Fatal("synthetic benchmark has no signal nets")
	}
	for net, devs := range b.Nets {
		if len(devs) < 2 {
			t.Errorf("net %s connects %d devices, want >= 2", net, len(devs))
		}
		for _, d := range devs {
			if b.Circuit.Device(d) == nil {
				t.Errorf("net %s references unknown device %s", net, d)
			}
		}
	}
}
