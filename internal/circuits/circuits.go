// Package circuits provides the benchmark circuits of the paper: the
// Miller op amp of Fig. 6 (with its exact hierarchy tree), a folded-
// cascode amplifier, and synthetic stand-ins for the six Table I
// circuits (Miller V2, Comparator V2, Folded cascode, Buffer,
// biasynth, lnamixbias) with the same module counts (13, 10, 22, 46,
// 65, 110) and analog-realistic properties: strongly heterogeneous
// module sizes, matched symmetric pairs, and a hierarchy whose leaves
// are small basic module sets.
//
// The originals are industrial designs we do not have; what Table I
// measures — how enhanced shape functions behave as module count and
// size heterogeneity grow — depends on exactly the properties the
// generators reproduce, as recorded in DESIGN.md.
package circuits

import (
	"fmt"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/netlist"
)

// Bench is one placement benchmark: a netlist with footprints, the
// layout design hierarchy with constraints, and the signal nets used
// for wirelength costs.
type Bench struct {
	Name    string
	Circuit *netlist.Circuit
	// Tree is the layout design hierarchy (Fig. 2 of the paper); its
	// leaves are basic module sets.
	Tree *constraint.Node
	// Nets maps signal net names to the devices they connect.
	Nets map[string][]string
}

// Modules returns names, widths and heights of all devices in
// declaration order, the form placers consume.
func (b *Bench) Modules() (names []string, w, h []int) {
	for _, d := range b.Circuit.Devices {
		names = append(names, d.Name)
		w = append(w, d.FW)
		h = append(h, d.FH)
	}
	return names, w, h
}

// MillerOpAmp returns the two-stage Miller op amp of Fig. 6 with its
// published hierarchy: CORE = {DP{P1,P2}, CM1{N3,N4}, CM2{P5,P6,P7}},
// plus output device N8 and compensation capacitor C.
func MillerOpAmp() *Bench {
	c := netlist.NewCircuit("miller_opamp")
	add := func(name string, t netlist.DeviceType, d, g, s string, w, l float64, fw, fh int) {
		c.MustAdd(&netlist.Device{
			Name:   name,
			Type:   t,
			Ports:  map[string]string{"D": d, "G": g, "S": s, "B": s},
			Params: map[string]float64{"w": w, "l": l},
			FW:     fw,
			FH:     fh,
		})
	}
	// Differential pair (PMOS inputs), tail from CM2.
	add("P1", netlist.PMOS, "n1", "inp", "tail", 40, 1, 40, 20)
	add("P2", netlist.PMOS, "n2", "inn", "tail", 40, 1, 40, 20)
	// NMOS load mirror CM1 (N3 diode-connected).
	add("N3", netlist.NMOS, "n1", "n1", "gnd", 20, 2, 30, 16)
	add("N4", netlist.NMOS, "n2", "n1", "gnd", 20, 2, 30, 16)
	// PMOS bias mirror CM2 (P5 diode-connected, P6 tail, P7 output).
	add("P5", netlist.PMOS, "ibias", "ibias", "vdd", 10, 2, 24, 12)
	add("P6", netlist.PMOS, "tail", "ibias", "vdd", 20, 2, 24, 12)
	add("P7", netlist.PMOS, "out", "ibias", "vdd", 60, 2, 24, 12)
	// Output stage.
	add("N8", netlist.NMOS, "out", "n2", "gnd", 80, 1, 50, 30)
	// Compensation capacitor.
	c.MustAdd(&netlist.Device{
		Name:   "C",
		Type:   netlist.Capacitor,
		Ports:  map[string]string{"P": "n2", "N": "out"},
		Params: map[string]float64{"c": 2e-12},
		FW:     60,
		FH:     60,
	})

	tree := &constraint.Node{
		Name: "OPAMP",
		Children: []*constraint.Node{
			{
				Name: "CORE",
				Kind: constraint.KindProximity,
				Children: []*constraint.Node{
					{
						Name:     "DP",
						Kind:     constraint.KindSymmetry,
						Devices:  []string{"P1", "P2"},
						SymPairs: [][2]string{{"P1", "P2"}},
					},
					{
						// At module level a two-device mirror is
						// placed as a matched symmetric pair; its
						// interdigitated common-centroid realization
						// lives inside the module (constraint
						// package's pattern generator).
						Name:     "CM1",
						Kind:     constraint.KindSymmetry,
						Devices:  []string{"N3", "N4"},
						SymPairs: [][2]string{{"N3", "N4"}},
					},
					{
						Name:    "CM2",
						Kind:    constraint.KindProximity,
						Devices: []string{"P5", "P6", "P7"},
					},
				},
			},
		},
		Devices: []string{"N8", "C"},
	}
	return &Bench{
		Name:    "miller_opamp",
		Circuit: c,
		Tree:    tree,
		Nets:    c.SignalNets("vdd", "gnd"),
	}
}

// FoldedCascode returns a fully-differential folded-cascode amplifier
// (the circuit class of the layout-aware experiment of Fig. 10).
func FoldedCascode() *Bench {
	c := netlist.NewCircuit("folded_cascode")
	add := func(name string, t netlist.DeviceType, d, g, s string, w, l float64, fw, fh int) {
		c.MustAdd(&netlist.Device{
			Name:   name,
			Type:   t,
			Ports:  map[string]string{"D": d, "G": g, "S": s, "B": s},
			Params: map[string]float64{"w": w, "l": l},
			FW:     fw,
			FH:     fh,
		})
	}
	// Input differential pair (NMOS) with tail source.
	add("M1", netlist.NMOS, "fold_p", "inp", "tail", 60, 1, 44, 22)
	add("M2", netlist.NMOS, "fold_n", "inn", "tail", 60, 1, 44, 22)
	add("M0", netlist.NMOS, "tail", "vbn", "gnd", 40, 2, 36, 18)
	// PMOS current sources feeding the folding nodes.
	add("M3", netlist.PMOS, "fold_p", "vbp", "vdd", 50, 2, 40, 20)
	add("M4", netlist.PMOS, "fold_n", "vbp", "vdd", 50, 2, 40, 20)
	// PMOS cascodes.
	add("M5", netlist.PMOS, "outp", "vcp", "fold_p", 50, 1, 40, 20)
	add("M6", netlist.PMOS, "outn", "vcp", "fold_n", 50, 1, 40, 20)
	// NMOS cascodes and mirror loads.
	add("M7", netlist.NMOS, "outp", "vcn", "m_p", 30, 1, 30, 16)
	add("M8", netlist.NMOS, "outn", "vcn", "m_n", 30, 1, 30, 16)
	add("M9", netlist.NMOS, "m_p", "m_p", "gnd", 30, 2, 30, 16)
	add("M10", netlist.NMOS, "m_n", "m_p", "gnd", 30, 2, 30, 16)
	// Bias chain.
	add("MB1", netlist.PMOS, "vbp", "vbp", "vdd", 12, 2, 20, 12)
	add("MB2", netlist.NMOS, "vbn", "vbn", "gnd", 12, 2, 20, 12)

	tree := &constraint.Node{
		Name: "FC",
		Children: []*constraint.Node{
			{
				Name:     "DPIN",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"M1", "M2"},
				SymPairs: [][2]string{{"M1", "M2"}},
			},
			{
				Name:     "PSRC",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"M3", "M4"},
				SymPairs: [][2]string{{"M3", "M4"}},
			},
			{
				Name:     "PCAS",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"M5", "M6"},
				SymPairs: [][2]string{{"M5", "M6"}},
			},
			{
				Name:     "NCAS",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"M7", "M8"},
				SymPairs: [][2]string{{"M7", "M8"}},
			},
			{
				Name:     "NMIR",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"M9", "M10"},
				SymPairs: [][2]string{{"M9", "M10"}},
			},
			{
				Name:    "BIAS",
				Kind:    constraint.KindProximity,
				Devices: []string{"MB1", "MB2", "M0"},
			},
		},
	}
	return &Bench{
		Name:    "folded_cascode",
		Circuit: c,
		Tree:    tree,
		Nets:    c.SignalNets("vdd", "gnd"),
	}
}

// tableISpec describes one Table I benchmark.
type tableISpec struct {
	name    string
	modules int
	seed    int64
}

// tableI lists the six circuits of Table I with their module counts.
var tableI = []tableISpec{
	{"miller_v2", 13, 101},
	{"comparator_v2", 10, 102},
	{"folded_casc", 22, 103},
	{"buffer", 46, 104},
	{"biasynth", 65, 105},
	{"lnamixbias", 110, 106},
}

// TableINames returns the benchmark names in the order of Table I.
func TableINames() []string {
	out := make([]string, len(tableI))
	for i, s := range tableI {
		out[i] = s.name
	}
	return out
}

// TableIBench builds the named Table I benchmark. It returns an error
// for unknown names.
func TableIBench(name string) (*Bench, error) {
	for _, s := range tableI {
		if s.name == name {
			return Synthetic(s.name, s.modules, s.seed), nil
		}
	}
	return nil, fmt.Errorf("circuits: unknown Table I benchmark %q", name)
}

// TableIBenches builds all six Table I benchmarks.
func TableIBenches() []*Bench {
	out := make([]*Bench, len(tableI))
	for i, s := range tableI {
		out[i] = Synthetic(s.name, s.modules, s.seed)
	}
	return out
}

// Synthetic generates a deterministic analog-like benchmark with the
// given number of modules: a hierarchy tree whose leaves are basic
// module sets of 2–5 modules (differential pairs with matched
// dimensions, mirror groups, bias clusters), module sizes drawn from a
// heavy-tailed distribution (small matched transistors next to large
// capacitors — "cells very different in size", which the paper notes
// is typical for analog layout), and signal nets linking sibling
// blocks.
func Synthetic(name string, modules int, seed int64) *Bench {
	rng := rand.New(rand.NewSource(seed))
	c := netlist.NewCircuit(name)
	idx := 0
	newModule := func(fw, fh int) string {
		idx++
		dname := fmt.Sprintf("M%d", idx)
		c.MustAdd(&netlist.Device{
			Name:  dname,
			Type:  netlist.Block,
			Ports: map[string]string{"P": fmt.Sprintf("net_%s", dname)},
			FW:    fw,
			FH:    fh,
		})
		return dname
	}
	// Heavy-tailed size: mostly 8..40, occasionally 60..200 (capacitor
	// or inductor class). Even values keep symmetric packing exact.
	dim := func() int {
		if rng.Intn(100) < 12 {
			return 2 * (30 + rng.Intn(70))
		}
		return 2 * (4 + rng.Intn(16))
	}

	tree := buildSyntheticTree(name, modules, rng, newModule, dim, 0)

	// Signal nets: connect one device of each pair of sibling subtrees.
	nets := map[string][]string{}
	netID := 0
	var wire func(n *constraint.Node)
	wire = func(n *constraint.Node) {
		leavesOf := func(m *constraint.Node) []string { return m.Leaves() }
		for i := 0; i+1 < len(n.Children); i++ {
			a := leavesOf(n.Children[i])
			b := leavesOf(n.Children[i+1])
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			netID++
			nn := fmt.Sprintf("net%d", netID)
			nets[nn] = []string{a[rng.Intn(len(a))], b[rng.Intn(len(b))]}
		}
		for _, ch := range n.Children {
			wire(ch)
		}
	}
	wire(tree)

	return &Bench{Name: name, Circuit: c, Tree: tree, Nets: nets}
}

// buildSyntheticTree creates a hierarchy node covering the given
// number of modules, recursively splitting until leaves hold basic
// module sets.
func buildSyntheticTree(name string, modules int, rng *rand.Rand, newModule func(int, int) string, dim func() int, depth int) *constraint.Node {
	n := &constraint.Node{Name: name}
	if modules <= 5 {
		fillLeaf(n, modules, rng, newModule, dim)
		return n
	}
	// Split into 2..4 children.
	parts := 2 + rng.Intn(3)
	if parts > modules/2 {
		parts = modules / 2
	}
	remaining := modules
	for i := 0; i < parts; i++ {
		share := remaining / (parts - i)
		if i < parts-1 && share > 2 {
			share += rng.Intn(3) - 1
		}
		if share < 2 {
			share = 2
		}
		if share > remaining-(parts-i-1)*2 {
			share = remaining - (parts-i-1)*2
		}
		child := buildSyntheticTree(fmt.Sprintf("%s_%d", name, i), share, rng, newModule, dim, depth+1)
		n.Children = append(n.Children, child)
		remaining -= share
	}
	for remaining > 0 {
		// Stray modules attach directly to this node.
		newName := newModule(dim(), dim())
		n.Devices = append(n.Devices, newName)
		remaining--
	}
	return n
}

// fillLeaf populates a leaf node as one basic module set with an
// analog flavor: a symmetric pair, a mirror group, or a plain cluster.
func fillLeaf(n *constraint.Node, modules int, rng *rand.Rand, newModule func(int, int) string, dim func() int) {
	switch {
	case modules == 2 && rng.Intn(100) < 60:
		// Differential pair: matched dimensions, symmetry constraint.
		w, h := dim(), dim()
		a := newModule(w, h)
		b := newModule(w, h)
		n.Devices = []string{a, b}
		n.Kind = constraint.KindSymmetry
		n.SymPairs = [][2]string{{a, b}}
	case modules >= 3 && rng.Intn(100) < 40:
		// Mirror row: matched dimensions, symmetric about the center
		// (outer devices pair up; an odd count leaves a central
		// self-symmetric device, like a diode-connected reference).
		w, h := dim(), dim()
		n.Kind = constraint.KindSymmetry
		for i := 0; i < modules; i++ {
			n.Devices = append(n.Devices, newModule(w, h))
		}
		for i, j := 0, modules-1; i < j; i, j = i+1, j-1 {
			n.SymPairs = append(n.SymPairs, [2]string{n.Devices[i], n.Devices[j]})
		}
		if modules%2 == 1 {
			n.SymSelfs = []string{n.Devices[modules/2]}
		}
	default:
		// Plain cluster with heterogeneous sizes.
		for i := 0; i < modules; i++ {
			n.Devices = append(n.Devices, newModule(dim(), dim()))
		}
		if modules >= 2 {
			n.Kind = constraint.KindProximity
		}
	}
}
