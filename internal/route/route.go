// Package route provides a grid-based maze router with symmetric-pair
// routing. Section II motivates symmetry constraints by parasitic
// matching "of symmetric placement (and routing, as well)": the two
// halves of a differential signal path must see the same wire
// parasitics. This router makes that concrete: a net and its matched
// counterpart are routed as exact mirror images about the symmetry
// axis, so their lengths — and therefore wire resistance and
// capacitance — are identical by construction.
//
// Routing is Lee's algorithm (breadth-first wavefront) on a unit grid;
// module rectangles are obstacles, and every routed net becomes an
// obstacle for later nets (single-layer model).
package route

import (
	"fmt"

	"repro/internal/geom"
)

// Grid is the routing plane.
type Grid struct {
	W, H    int
	blocked []bool
}

// NewGrid returns an empty routing grid of the given extent.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic("route: non-positive grid")
	}
	return &Grid{W: w, H: h, blocked: make([]bool, w*h)}
}

// FromPlacement builds a grid covering the placement's bounding box
// plus a routing margin, blocking every module cell.
func FromPlacement(p geom.Placement, margin int) *Grid {
	bb := p.BBox()
	g := NewGrid(bb.W+2*margin, bb.H+2*margin)
	for _, r := range p {
		g.Block(r.Translate(margin-bb.X, margin-bb.Y))
	}
	return g
}

func (g *Grid) idx(x, y int) int { return y*g.W + x }

// In reports whether the cell lies on the grid.
func (g *Grid) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// Block marks all cells covered by r as obstacles.
func (g *Grid) Block(r geom.Rect) {
	for y := max(0, r.Y); y < min(g.H, r.Y2()); y++ {
		for x := max(0, r.X); x < min(g.W, r.X2()); x++ {
			g.blocked[g.idx(x, y)] = true
		}
	}
}

// Blocked reports whether a cell is an obstacle (off-grid counts as
// blocked).
func (g *Grid) Blocked(x, y int) bool {
	if !g.In(x, y) {
		return true
	}
	return g.blocked[g.idx(x, y)]
}

// Unblock clears a cell (used to open pin cells on module borders).
func (g *Grid) Unblock(x, y int) {
	if g.In(x, y) {
		g.blocked[g.idx(x, y)] = false
	}
}

// Path is one routed net: the cells it occupies.
type Path struct {
	Net   string
	Cells []geom.Point
}

// Length returns the number of cells, a proxy for wire length (and
// therefore wire parasitics).
func (p Path) Length() int { return len(p.Cells) }

// Route connects the pins of a net with Lee wavefront expansion,
// multi-pin nets Prim-style: each new pin is reached by a shortest
// path from the already-connected tree. The routed cells are marked as
// obstacles for subsequent nets. Pins must be unblocked cells.
func (g *Grid) Route(name string, pins []geom.Point) (Path, error) {
	if len(pins) < 2 {
		return Path{}, fmt.Errorf("route: net %q needs at least 2 pins", name)
	}
	for _, p := range pins {
		if g.Blocked(p.X, p.Y) {
			return Path{}, fmt.Errorf("route: net %q pin %v is blocked", name, p)
		}
	}
	tree := map[geom.Point]bool{pins[0]: true}
	var cells []geom.Point
	cells = append(cells, pins[0])
	for _, target := range pins[1:] {
		if tree[target] {
			continue
		}
		seg, err := g.wavefront(tree, target)
		if err != nil {
			return Path{}, fmt.Errorf("route: net %q: %v", name, err)
		}
		for _, c := range seg {
			if !tree[c] {
				tree[c] = true
				cells = append(cells, c)
			}
		}
	}
	// Occupy the routed cells.
	for _, c := range cells {
		g.blocked[g.idx(c.X, c.Y)] = true
	}
	return Path{Net: name, Cells: cells}, nil
}

// wavefront expands BFS from every tree cell until target is reached,
// then backtracks the shortest path.
func (g *Grid) wavefront(tree map[geom.Point]bool, target geom.Point) ([]geom.Point, error) {
	const unseen = -1
	dist := make([]int, g.W*g.H)
	for i := range dist {
		dist[i] = unseen
	}
	var frontier []geom.Point
	for c := range tree {
		dist[g.idx(c.X, c.Y)] = 0
		frontier = append(frontier, c)
	}
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	found := false
	for len(frontier) > 0 && !found {
		var next []geom.Point
		for _, c := range frontier {
			d := dist[g.idx(c.X, c.Y)]
			for _, dir := range dirs {
				nx, ny := c.X+dir[0], c.Y+dir[1]
				if !g.In(nx, ny) || dist[g.idx(nx, ny)] != unseen {
					continue
				}
				if g.Blocked(nx, ny) && !(nx == target.X && ny == target.Y) {
					continue
				}
				dist[g.idx(nx, ny)] = d + 1
				if nx == target.X && ny == target.Y {
					found = true
				}
				next = append(next, geom.Point{X: nx, Y: ny})
			}
		}
		frontier = next
	}
	if dist[g.idx(target.X, target.Y)] == unseen {
		return nil, fmt.Errorf("no path to %v", target)
	}
	// Backtrack from target to any zero-distance cell.
	var path []geom.Point
	cur := target
	for dist[g.idx(cur.X, cur.Y)] > 0 {
		path = append(path, cur)
		d := dist[g.idx(cur.X, cur.Y)]
		moved := false
		for _, dir := range dirs {
			nx, ny := cur.X+dir[0], cur.Y+dir[1]
			if g.In(nx, ny) && dist[g.idx(nx, ny)] == d-1 {
				cur = geom.Point{X: nx, Y: ny}
				moved = true
				break
			}
		}
		if !moved {
			return nil, fmt.Errorf("route: internal backtrack failure at %v", cur)
		}
	}
	path = append(path, cur)
	return path, nil
}

// MirrorCell mirrors a cell about the vertical axis at axis2/2 in
// placement coordinates: the cell center x+0.5 maps to axis2-x-0.5,
// i.e. cell x maps to axis2-1-x.
func MirrorCell(c geom.Point, axis2 int) geom.Point {
	return geom.Point{X: axis2 - 1 - c.X, Y: c.Y}
}

// RouteSymmetricPair routes net A, mirrors its path about the vertical
// axis (doubled coordinate axis2), and claims the mirrored path for
// net B. The pins of B must be exactly the mirrors of A's pins, and
// the mirrored cells must be free; otherwise an error is returned and
// the grid is left unchanged. On success both paths have identical
// length — matched wire parasitics by construction.
func (g *Grid) RouteSymmetricPair(nameA string, pinsA []geom.Point, nameB string, pinsB []geom.Point, axis2 int) (Path, Path, error) {
	if len(pinsA) != len(pinsB) {
		return Path{}, Path{}, fmt.Errorf("route: pair (%s,%s) pin counts differ", nameA, nameB)
	}
	want := map[geom.Point]bool{}
	for _, p := range pinsA {
		want[MirrorCell(p, axis2)] = true
	}
	for _, p := range pinsB {
		if !want[p] {
			return Path{}, Path{}, fmt.Errorf("route: pin %v of %s is not the mirror of a pin of %s", p, nameB, nameA)
		}
	}
	// Route A on a scratch copy first so failures leave g untouched.
	scratch := g.clone()
	pa, err := scratch.Route(nameA, pinsA)
	if err != nil {
		return Path{}, Path{}, err
	}
	// Mirror and verify B's cells on the scratch grid (A's cells are
	// now blocked there; B must not collide with A or anything else).
	cellsB := make([]geom.Point, len(pa.Cells))
	for i, c := range pa.Cells {
		m := MirrorCell(c, axis2)
		if !scratch.In(m.X, m.Y) || scratch.Blocked(m.X, m.Y) {
			return Path{}, Path{}, fmt.Errorf("route: mirrored cell %v of %s is blocked", m, nameB)
		}
		cellsB[i] = m
	}
	// Commit both paths to the real grid.
	g.blocked = scratch.blocked
	for _, c := range cellsB {
		g.blocked[g.idx(c.X, c.Y)] = true
	}
	return pa, Path{Net: nameB, Cells: cellsB}, nil
}

func (g *Grid) clone() *Grid {
	return &Grid{W: g.W, H: g.H, blocked: append([]bool(nil), g.blocked...)}
}

// Connected reports whether the path cells form one 4-connected
// component containing all given pins (a routed net sanity check).
func (p Path) Connected(pins []geom.Point) bool {
	if len(p.Cells) == 0 {
		return false
	}
	set := map[geom.Point]bool{}
	for _, c := range p.Cells {
		set[c] = true
	}
	for _, pin := range pins {
		if !set[pin] {
			return false
		}
	}
	// BFS over the cell set.
	seen := map[geom.Point]bool{p.Cells[0]: true}
	frontier := []geom.Point{p.Cells[0]}
	for len(frontier) > 0 {
		var next []geom.Point
		for _, c := range frontier {
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				n := geom.Point{X: c.X + d[0], Y: c.Y + d[1]}
				if set[n] && !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return len(seen) == len(set)
}
