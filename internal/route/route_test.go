package route

import (
	"testing"

	"repro/internal/geom"
)

func TestRouteStraightLine(t *testing.T) {
	g := NewGrid(20, 5)
	path, err := g.Route("n", []geom.Point{{X: 0, Y: 2}, {X: 19, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if path.Length() != 20 {
		t.Fatalf("length = %d, want 20 (shortest)", path.Length())
	}
	if !path.Connected([]geom.Point{{X: 0, Y: 2}, {X: 19, Y: 2}}) {
		t.Fatal("path not connected to pins")
	}
}

func TestRouteAroundObstacle(t *testing.T) {
	g := NewGrid(21, 11)
	g.Block(geom.NewRect(10, 0, 1, 10)) // wall with a gap at y=10
	path, err := g.Route("n", []geom.Point{{X: 0, Y: 5}, {X: 20, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Must detour over the wall: longer than the straight 21.
	if path.Length() <= 21 {
		t.Fatalf("length = %d, expected a detour", path.Length())
	}
	for _, c := range path.Cells {
		if c.X == 10 && c.Y < 10 {
			t.Fatalf("path crosses the wall at %v", c)
		}
	}
}

func TestRouteBlockedFails(t *testing.T) {
	g := NewGrid(10, 10)
	g.Block(geom.NewRect(5, 0, 1, 10)) // full wall
	if _, err := g.Route("n", []geom.Point{{X: 0, Y: 5}, {X: 9, Y: 5}}); err == nil {
		t.Fatal("routing through a full wall must fail")
	}
	if _, err := g.Route("n", []geom.Point{{X: 5, Y: 5}, {X: 0, Y: 0}}); err == nil {
		t.Fatal("blocked pin must fail")
	}
	if _, err := g.Route("n", []geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Fatal("single-pin net must fail")
	}
}

func TestRouteMultiPin(t *testing.T) {
	g := NewGrid(20, 20)
	pins := []geom.Point{{X: 0, Y: 0}, {X: 19, Y: 0}, {X: 10, Y: 19}}
	path, err := g.Route("n", pins)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Connected(pins) {
		t.Fatal("multi-pin net not connected")
	}
	// A Steiner-ish tree must be shorter than three separate routes.
	if path.Length() > 60 {
		t.Fatalf("length = %d, tree unexpectedly long", path.Length())
	}
}

func TestNetsBecomeObstacles(t *testing.T) {
	g := NewGrid(10, 3)
	// First net occupies most of the middle row (x = 0..8).
	if _, err := g.Route("a", []geom.Point{{X: 0, Y: 1}, {X: 8, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	// Second net must detour around it through x=9 (single-layer
	// model: routed nets are obstacles).
	path, err := g.Route("b", []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range path.Cells {
		if c.Y == 1 && c.X <= 8 {
			t.Fatalf("net b shorts net a at %v", c)
		}
	}
	if path.Length() < 21 {
		t.Fatalf("length = %d, expected full detour via x=9", path.Length())
	}
}

func TestFromPlacement(t *testing.T) {
	p := geom.Placement{
		"A": geom.NewRect(0, 0, 5, 5),
		"B": geom.NewRect(10, 0, 5, 5),
	}
	g := FromPlacement(p, 2)
	if g.W != 19 || g.H != 9 {
		t.Fatalf("grid %dx%d, want 19x9", g.W, g.H)
	}
	// Module interiors are blocked (translated by margin).
	if !g.Blocked(3, 3) {
		t.Fatal("module cell not blocked")
	}
	if g.Blocked(8, 3) {
		t.Fatal("gap between modules wrongly blocked")
	}
}

func TestMirrorCellInvolution(t *testing.T) {
	for axis2 := 5; axis2 < 30; axis2 += 3 {
		for x := 0; x < 10; x++ {
			c := geom.Point{X: x, Y: 7}
			if MirrorCell(MirrorCell(c, axis2), axis2) != c {
				t.Fatalf("mirror not an involution for axis2=%d x=%d", axis2, x)
			}
		}
	}
}

// The headline property: a symmetric pair routes as exact mirrors with
// identical lengths — matched wire parasitics.
func TestRouteSymmetricPair(t *testing.T) {
	// Symmetric world: two module pairs mirrored about x=10 (axis2=20).
	g := NewGrid(20, 12)
	g.Block(geom.NewRect(2, 4, 4, 4))  // left module
	g.Block(geom.NewRect(14, 4, 4, 4)) // right module (mirror)
	pinsA := []geom.Point{{X: 6, Y: 6}, {X: 9, Y: 0}}
	pinsB := []geom.Point{{X: 13, Y: 6}, {X: 10, Y: 0}} // exact mirrors
	pa, pb, err := g.RouteSymmetricPair("a", pinsA, "b", pinsB, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Length() != pb.Length() {
		t.Fatalf("pair lengths differ: %d vs %d", pa.Length(), pb.Length())
	}
	// Cells are exact mirrors.
	mirrored := map[geom.Point]bool{}
	for _, c := range pa.Cells {
		mirrored[MirrorCell(c, 20)] = true
	}
	for _, c := range pb.Cells {
		if !mirrored[c] {
			t.Fatalf("cell %v of b is not a mirror of a", c)
		}
	}
	if !pa.Connected(pinsA) || !pb.Connected(pinsB) {
		t.Fatal("pair paths not connected")
	}
}

func TestRouteSymmetricPairRejectsBadPins(t *testing.T) {
	g := NewGrid(20, 10)
	pinsA := []geom.Point{{X: 2, Y: 2}, {X: 5, Y: 5}}
	pinsB := []geom.Point{{X: 2, Y: 2}, {X: 5, Y: 5}} // not mirrors
	if _, _, err := g.RouteSymmetricPair("a", pinsA, "b", pinsB, 20); err == nil {
		t.Fatal("non-mirrored pins must fail")
	}
	if _, _, err := g.RouteSymmetricPair("a", pinsA, "b", pinsB[:1], 20); err == nil {
		t.Fatal("pin count mismatch must fail")
	}
}

func TestRouteSymmetricPairBlockedMirror(t *testing.T) {
	g := NewGrid(20, 10)
	// Asymmetric obstacle sitting exactly on B's mirror column
	// (x = 17 mirrors A's x = 2 about axis2 = 20): A routes straight,
	// the mirrored path collides.
	g.Block(geom.NewRect(16, 4, 3, 2))
	pinsA := []geom.Point{{X: 2, Y: 2}, {X: 2, Y: 8}}
	pinsB := []geom.Point{{X: 17, Y: 2}, {X: 17, Y: 8}}
	_, _, err := g.RouteSymmetricPair("a", pinsA, "b", pinsB, 20)
	if err == nil {
		t.Fatal("blocked mirror must fail")
	}
	// Failure must leave the grid unchanged (pins still free).
	if g.Blocked(2, 2) || g.Blocked(17, 2) {
		t.Fatal("failed pair routing mutated the grid")
	}
}
