package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuits"
)

func testProblem() *Problem {
	return &Problem{
		Version: Version,
		Name:    "toy",
		Modules: []Module{
			{Name: "A", W: 4, H: 2}, {Name: "B", W: 4, H: 2},
			{Name: "C", W: 3, H: 3}, {Name: "D", W: 5, H: 1},
		},
		Symmetry:  []SymGroup{{Pairs: [][2]int{{0, 1}}}},
		Nets:      [][]int{{0, 2}, {1, 3}},
		Proximity: [][]int{{2, 3}},
		Objective: Objective{AreaWeight: 1, WireWeight: 1},
	}
}

// TestObjectiveDefaultCanonical: area_weight 0 means the default 1,
// so both spellings must share a content address.
func TestObjectiveDefaultCanonical(t *testing.T) {
	p := testProblem()
	q := testProblem()
	q.Objective.AreaWeight = 0
	hp, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hq, err := q.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hp != hq {
		t.Fatalf("area_weight 0 and 1 hash differently: %s vs %s", hp, hq)
	}
}

func TestRoundTrip(t *testing.T) {
	p := testProblem()
	b, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DecodeProblem(b)
	if err != nil {
		t.Fatalf("decoding own canonical encoding: %v", err)
	}
	b2, err := p2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("canonical encoding not stable:\n%s\n%s", b, b2)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round-trip changed the problem:\n%+v\n%+v", p, p2)
	}
}

// TestHashPermutationInvariant: permuting nets, pair endpoints and
// group members must not change the content address.
func TestHashPermutationInvariant(t *testing.T) {
	p := testProblem()
	h1, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	q := testProblem()
	q.Nets = [][]int{{3, 1}, {2, 0}}                   // nets and members permuted
	q.Symmetry = []SymGroup{{Pairs: [][2]int{{1, 0}}}} // endpoints swapped
	q.Version = 0                                      // version omitted
	h2, err := q.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("semantically equal problems hash differently: %s vs %s", h1, h2)
	}

	r := testProblem()
	r.Modules[0].W = 6 // a real change must change the hash
	h3, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different problems share a hash")
	}
}

func TestRequestHashCoversOptions(t *testing.T) {
	a := Request{Problem: *testProblem()}
	b := Request{Problem: *testProblem(), Options: Options{Seed: 42}}
	// The spelled-out service defaults must hash like the zero value,
	// or semantically identical requests would split the cache.
	c := Request{Problem: *testProblem(), Options: Options{
		Method: MethodSeqPair, Workers: 1,
		MovesPerStage: 150, MaxStages: 200, StallStages: 40, Cooling: 0.95,
	}}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("different seeds must not share a cache key")
	}
	if ha != hc {
		t.Fatal("explicit defaults must hash like omitted options")
	}
	// A deadline cannot change a completed result, so it must not
	// split the cache.
	d := Request{Problem: *testProblem(), Options: Options{TimeoutMS: 30000}}
	hd, err := d.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hd != ha {
		t.Fatal("timeout_ms must not enter the content address")
	}

	// The clone-free fast path must agree with Hash once normalized.
	canon, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(canon)
	if err != nil {
		t.Fatal(err)
	}
	hfast, err := dec.HashNormalized()
	if err != nil {
		t.Fatal(err)
	}
	if hfast != ha {
		t.Fatalf("HashNormalized %s disagrees with Hash %s", hfast, ha)
	}
}

// TestHierarchyHashPermutationInvariant: different spellings of one
// hierarchy (pair endpoint order, sibling order, member order) must
// share a content address.
func TestHierarchyHashPermutationInvariant(t *testing.T) {
	mk := func(pair [2]string, flip bool) *Problem {
		p := testProblem()
		p.Symmetry = nil
		kids := []*Node{
			{Name: "dp", Kind: "symmetry", Devices: []string{"A", "B"}, Pairs: [][2]string{pair}},
			{Name: "rest", Kind: "proximity", Devices: []string{"C", "D"}},
		}
		if flip {
			kids[0], kids[1] = kids[1], kids[0]
			kids[1].Devices = []string{"B", "A"}
		}
		p.Hierarchy = &Node{Name: "root", Children: kids}
		return p
	}
	h1, err := mk([2]string{"A", "B"}, false).Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := mk([2]string{"B", "A"}, true).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hierarchy spellings split the content address: %s vs %s", h1, h2)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Problem){
		"no modules":         func(p *Problem) { p.Modules = nil },
		"empty name":         func(p *Problem) { p.Modules[0].Name = "" },
		"dup name":           func(p *Problem) { p.Modules[1].Name = "A" },
		"zero width":         func(p *Problem) { p.Modules[0].W = 0 },
		"future version":     func(p *Problem) { p.Version = 99 },
		"self pair":          func(p *Problem) { p.Symmetry[0].Pairs[0] = [2]int{1, 1} },
		"sym out of range":   func(p *Problem) { p.Symmetry[0].Pairs[0] = [2]int{0, 9} },
		"dup across groups":  func(p *Problem) { p.Symmetry = append(p.Symmetry, SymGroup{Selfs: []int{0}}) },
		"empty group":        func(p *Problem) { p.Symmetry = append(p.Symmetry, SymGroup{}) },
		"net out of range":   func(p *Problem) { p.Nets[0][0] = -1 },
		"net dup member":     func(p *Problem) { p.Nets[0] = []int{2, 2} },
		"one-module net":     func(p *Problem) { p.Nets[0] = []int{2} },
		"prox out of range":  func(p *Problem) { p.Proximity[0][0] = 77 },
		"power length":       func(p *Problem) { p.Power = []float64{1} },
		"negative power":     func(p *Problem) { p.Power = []float64{1, 1, -2, 1} },
		"negative weight":    func(p *Problem) { p.Objective.WireWeight = -1 },
		"half outline":       func(p *Problem) { p.Objective.OutlineW = 50 },
		"bad hierarchy kind": func(p *Problem) { p.Hierarchy = &Node{Kind: "mystery"} },
		"unknown device":     func(p *Problem) { p.Hierarchy = &Node{Devices: []string{"nope"}} },
		"device owned twice": func(p *Problem) {
			p.Hierarchy = &Node{Devices: []string{"A"}, Children: []*Node{{Name: "x", Devices: []string{"A"}}}}
		},
		"dangling sym target": func(p *Problem) {
			p.Hierarchy = &Node{Devices: []string{"A"}, Kind: "symmetry", Pairs: [][2]string{{"A", "ghost"}}}
		},
		"empty centroid unit": func(p *Problem) {
			p.Hierarchy = &Node{Devices: []string{"A"}, Kind: "common_centroid", Units: map[string][]string{"u": {}}}
		},
		"dangling centroid unit": func(p *Problem) {
			p.Hierarchy = &Node{Devices: []string{"A"}, Kind: "common_centroid", Units: map[string][]string{"u": {"ghost"}}}
		},
		"unnamed child": func(p *Problem) {
			p.Hierarchy = &Node{Name: "r", Children: []*Node{{Devices: []string{"A"}}}}
		},
		"duplicate child name": func(p *Problem) {
			p.Hierarchy = &Node{Name: "r", Children: []*Node{
				{Name: "x", Devices: []string{"A"}}, {Name: "x", Devices: []string{"B"}}}}
		},
		"child shadows device": func(p *Problem) {
			p.Hierarchy = &Node{Name: "r", Devices: []string{"A"},
				Children: []*Node{{Name: "A", Devices: []string{"B"}}}}
		},
	}
	for name, mutate := range cases {
		p := testProblem()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestDecodeStrict(t *testing.T) {
	if _, err := DecodeProblem([]byte(`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"objective":{},"bogus":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeProblem([]byte(`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"objective":{}} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := DecodeRequest([]byte(`{"problem":{"modules":[{"name":"A","w":1,"h":1}],"objective":{}},"options":{"method":"sorcery"}}`)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestCanonRoundTrip: wire → placer → wire must be lossless — same
// content address, and byte-identical canonical encodings — including
// the hierarchy. (The semantic conversions to the engines' internal
// representations are tested with the placer package.)
func TestCanonRoundTrip(t *testing.T) {
	for name, p := range map[string]*Problem{
		"toy": testProblem(),
		"hierarchy": func() *Problem {
			p := testProblem()
			p.Hierarchy = &Node{
				Name: "root",
				Children: []*Node{
					{Name: "dp", Kind: "symmetry", Devices: []string{"A", "B"},
						Pairs: [][2]string{{"A", "B"}},
						Units: map[string][]string{"u": {"A"}}},
				},
				Devices: []string{"C", "D"},
			}
			p.Symmetry = nil
			return p
		}(),
	} {
		back := FromCanon(p.ToCanon())
		h1, err := p.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h1 != h2 {
			t.Fatalf("%s: ToCanon/FromCanon round-trip changed the content address", name)
		}
		c1, _ := p.Canonical()
		c2, _ := back.Canonical()
		if !bytes.Equal(c1, c2) {
			t.Fatalf("%s: canonical bytes changed:\n%s\n%s", name, c1, c2)
		}
	}
}

func TestFromBenchMiller(t *testing.T) {
	p, err := FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 9 {
		t.Fatalf("miller has 9 modules, wire sees %d", len(p.Modules))
	}
	if len(p.Symmetry) != 2 {
		t.Fatalf("miller has 2 device-level symmetry groups, wire sees %d", len(p.Symmetry))
	}
	if p.Hierarchy == nil {
		t.Fatal("hierarchy lost")
	}
	if p.Objective.WireWeight != 1 {
		t.Fatalf("conventional objective lost: %+v", p.Objective)
	}
}

// TestCanonicalDeterministic guards against map-ordering leaks into
// the canonical encoding (hierarchy units are a map).
func TestCanonicalDeterministic(t *testing.T) {
	p := testProblem()
	p.Hierarchy = &Node{
		Name:    "root",
		Devices: []string{"A", "B", "C", "D"},
		Units:   map[string][]string{"u1": {"A"}, "u2": {"B"}, "u0": {"C"}},
	}
	first, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := p.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("canonical encoding unstable at iteration %d", i)
		}
	}
}

// TestNormalizeIdempotent feeds randomized valid problems through
// Normalize twice; the second pass must be the identity.
func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		p := &Problem{Modules: make([]Module, n)}
		for i := range p.Modules {
			p.Modules[i] = Module{Name: string(rune('a' + i)), W: 1 + rng.Intn(9), H: 1 + rng.Intn(9)}
		}
		if n >= 4 && rng.Intn(2) == 0 {
			p.Symmetry = []SymGroup{{Pairs: [][2]int{{rng.Intn(2) * 3, 1 + rng.Intn(2)}}}}
		}
		for i := 0; i < rng.Intn(4); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				p.Nets = append(p.Nets, []int{a, b})
			}
		}
		if err := p.Validate(); err != nil {
			continue
		}
		p.Normalize()
		c1, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		p.Normalize()
		c2, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("normalize not idempotent:\n%s\n%s", c1, c2)
		}
	}
}
