package wire

import (
	"fmt"
	"math"

	"repro/placer"
)

// Trace event kinds on the wire. They mirror the placer trace's
// spellings; TraceEvent documents which fields each kind populates.
const (
	TraceKindStage      = "stage"
	TraceKindExchange   = "exchange"
	TraceKindCheckpoint = "checkpoint"
	TraceKindResume     = "resume"
	TraceKindFailpoint  = "failpoint"
)

// TraceEvent is one flight-recorder record on the wire.
//
//   - "stage": one completed temperature stage of chain `worker`:
//     temperature after cooling, best/current cost, cumulative move
//     counters, and (when the adaptive move portfolio ran) cumulative
//     per-move-kind proposal/acceptance counters.
//   - "exchange": one replica-exchange attempt between tempering rungs
//     `worker` and `peer` with the pre-swap decision inputs and the
//     Metropolis outcome in `accept`.
//   - "checkpoint": a best-so-far snapshot capture; worker -1 is the
//     tempering coordinator capturing the ladder-wide best.
//   - "resume": the run warm-started from a checkpoint.
//   - "failpoint": an injected fault (chaos testing) named by `point`;
//     worker/stage are -1 for faults hit outside any chain.
type TraceEvent struct {
	Kind     string  `json:"kind"`
	Worker   int     `json:"worker"`
	Stage    int     `json:"stage"`
	Temp     float64 `json:"temp,omitempty"`
	Best     float64 `json:"best,omitempty"`
	Cur      float64 `json:"cur,omitempty"`
	Moves    int64   `json:"moves,omitempty"`
	Accepted int64   `json:"accepted,omitempty"`
	Improved int64   `json:"improved,omitempty"`

	// Exchange fields. Peer is always > worker ≥ 0 on exchange events,
	// so omitempty never hides it.
	Peer     int     `json:"peer,omitempty"`
	PeerTemp float64 `json:"peer_temp,omitempty"`
	PeerCost float64 `json:"peer_cost,omitempty"`
	Accept   bool    `json:"accept,omitempty"`

	KindProposed []int64 `json:"kind_proposed,omitempty"`
	KindAccepted []int64 `json:"kind_accepted,omitempty"`

	Point string `json:"point,omitempty"`
}

// Trace is a solve's flight recording on the wire: versioned JSON,
// served by GET /v1/jobs/{id}/trace and attached to Result.Trace.
// For a deterministic (fixed-seed, fault-free) solve the canonical
// encoding is itself deterministic byte for byte, provided the
// recording dropped no events.
type Trace struct {
	Version int    `json:"version"`
	Method  string `json:"method"`
	// Capacity is the recorder ring size the solve ran with; Dropped
	// counts events lost to overwriting after the ring filled (the
	// newest events are the ones kept).
	Capacity int          `json:"capacity"`
	Dropped  uint64       `json:"dropped,omitempty"`
	Events   []TraceEvent `json:"events"`
}

// traceFloat makes a recorded float JSON-encodable: JSON has no
// IEEE-754 specials, and a trace may legitimately contain +Inf costs
// (infeasible early states are priced at +Inf). Non-finite values
// clamp to ±MaxFloat64; NaN (never produced by the engines) becomes 0.
func traceFloat(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// TraceFromPlacer converts a placer trace into its wire form.
func TraceFromPlacer(tr *placer.Trace) *Trace {
	if tr == nil {
		return nil
	}
	out := &Trace{
		Version:  Version,
		Method:   tr.Algorithm,
		Capacity: tr.Capacity,
		Dropped:  tr.Dropped,
		Events:   make([]TraceEvent, 0, len(tr.Events)),
	}
	for _, e := range tr.Events {
		we := TraceEvent{
			Kind:     e.Kind,
			Worker:   e.Worker,
			Stage:    e.Stage,
			Temp:     traceFloat(e.Temp),
			Best:     traceFloat(e.Best),
			Cur:      traceFloat(e.Cur),
			Moves:    e.Moves,
			Accepted: e.Accepted,
			Improved: e.Improved,
			PeerTemp: traceFloat(e.PeerTemp),
			PeerCost: traceFloat(e.PeerCost),
			Accept:   e.Accept,
			Point:    e.Point,
		}
		if e.Kind == "exchange" {
			we.Peer = e.Peer
		}
		if len(e.KindProposed) > 0 {
			we.KindProposed = append([]int64(nil), e.KindProposed...)
			we.KindAccepted = append([]int64(nil), e.KindAccepted...)
		}
		out.Events = append(out.Events, we)
	}
	return out
}

// traceKinds is the closed set of event kinds this wire version
// speaks.
var traceKinds = map[string]bool{
	TraceKindStage:      true,
	TraceKindExchange:   true,
	TraceKindCheckpoint: true,
	TraceKindResume:     true,
	TraceKindFailpoint:  true,
}

// Validate checks a trace against the versioned schema: supported
// version, a method this build knows, a sane ring geometry, and
// per-event invariants (a known kind, finite floats, non-negative
// counters, exchange partners above the rung, failpoints named).
func (t *Trace) Validate() error {
	if t.Version != 0 && t.Version != Version {
		return fmt.Errorf("wire: unsupported trace version %d (this build speaks %d)", t.Version, Version)
	}
	if t.Method != "" && !KnownMethod(t.Method) {
		return fmt.Errorf("wire: trace method %q unknown", t.Method)
	}
	if t.Capacity < 0 {
		return fmt.Errorf("wire: negative trace capacity %d", t.Capacity)
	}
	for i, e := range t.Events {
		if !traceKinds[e.Kind] {
			return fmt.Errorf("wire: trace event %d has unknown kind %q", i, e.Kind)
		}
		if e.Worker < -1 || e.Stage < -1 {
			return fmt.Errorf("wire: trace event %d has worker/stage below -1", i)
		}
		for _, v := range []float64{e.Temp, e.Best, e.Cur, e.PeerTemp, e.PeerCost} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("wire: trace event %d has non-finite value", i)
			}
		}
		if e.Moves < 0 || e.Accepted < 0 || e.Improved < 0 {
			return fmt.Errorf("wire: trace event %d has negative counter", i)
		}
		if e.Accepted > e.Moves {
			return fmt.Errorf("wire: trace event %d accepted %d moves of %d proposed", i, e.Accepted, e.Moves)
		}
		if len(e.KindProposed) != len(e.KindAccepted) {
			return fmt.Errorf("wire: trace event %d kind counter lengths differ", i)
		}
		switch e.Kind {
		case TraceKindExchange:
			if e.Peer <= e.Worker {
				return fmt.Errorf("wire: trace event %d exchange peer %d not above rung %d", i, e.Peer, e.Worker)
			}
		case TraceKindFailpoint:
			if e.Point == "" {
				return fmt.Errorf("wire: trace event %d failpoint without a point name", i)
			}
		}
	}
	return nil
}
