package wire

import (
	"math"
	"strings"
	"testing"

	"repro/placer"
)

func validTrace() *Trace {
	return &Trace{
		Version: Version, Method: "seqpair", Capacity: 2048,
		Events: []TraceEvent{
			{Kind: TraceKindResume, Worker: 0, Cur: 10, Best: 10},
			{Kind: TraceKindStage, Worker: 0, Stage: 1, Temp: 5, Best: 9, Cur: 9.5, Moves: 40, Accepted: 20, Improved: 5},
			{Kind: TraceKindExchange, Worker: 0, Stage: 2, Temp: 5, Cur: 9, Peer: 1, PeerTemp: 17.5, PeerCost: 11, Accept: true},
			{Kind: TraceKindCheckpoint, Worker: -1, Stage: 2, Best: 9},
			{Kind: TraceKindFailpoint, Worker: -1, Stage: -1, Point: "solve/slow"},
		},
	}
}

func TestTraceValidateAccepts(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"bad version", func(tr *Trace) { tr.Version = Version + 1 }, "version"},
		{"unknown method", func(tr *Trace) { tr.Method = "simplex" }, "method"},
		{"negative capacity", func(tr *Trace) { tr.Capacity = -1 }, "capacity"},
		{"unknown kind", func(tr *Trace) { tr.Events[0].Kind = "teleport" }, "kind"},
		{"worker below -1", func(tr *Trace) { tr.Events[1].Worker = -2 }, "below -1"},
		{"NaN cost", func(tr *Trace) { tr.Events[1].Best = math.NaN() }, "non-finite"},
		{"Inf temp", func(tr *Trace) { tr.Events[1].Temp = math.Inf(1) }, "non-finite"},
		{"negative moves", func(tr *Trace) { tr.Events[1].Moves = -1 }, "negative counter"},
		{"accepted over proposed", func(tr *Trace) { tr.Events[1].Accepted = tr.Events[1].Moves + 1 }, "accepted"},
		{"kind length mismatch", func(tr *Trace) { tr.Events[1].KindProposed = []int64{1} }, "lengths differ"},
		{"exchange peer below rung", func(tr *Trace) { tr.Events[2].Peer = 0 }, "not above"},
		{"failpoint unnamed", func(tr *Trace) { tr.Events[4].Point = "" }, "without a point"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace()
			tc.mut(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatal("corrupted trace validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTraceFromPlacerSanitizes: +Inf costs (infeasible early states)
// must clamp to JSON-encodable values the validator then accepts, and
// non-exchange events must not leak their Peer -1 sentinel.
func TestTraceFromPlacerSanitizes(t *testing.T) {
	tr := TraceFromPlacer(&placer.Trace{
		Algorithm: "seqpair",
		Capacity:  16,
		Events: []placer.TraceEvent{
			{Kind: "stage", Worker: 0, Stage: 1, Temp: 2, Best: math.Inf(1), Cur: math.Inf(1), Moves: 3, Peer: -1},
		},
	})
	if err := tr.Validate(); err != nil {
		t.Fatalf("sanitized trace rejected: %v", err)
	}
	e := tr.Events[0]
	if e.Best != math.MaxFloat64 || e.Cur != math.MaxFloat64 {
		t.Fatalf("+Inf not clamped: %+v", e)
	}
	if e.Peer != 0 {
		t.Fatalf("non-exchange event leaked peer %d", e.Peer)
	}
	if TraceFromPlacer(nil) != nil {
		t.Fatal("nil placer trace must convert to nil")
	}
}
