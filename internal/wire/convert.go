package wire

import (
	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/place"
	"repro/placer"
)

// ToCanon converts the wire problem to the canonical placer.Problem —
// a deep copy, losslessly (nil-versus-empty distinctions preserved,
// so normalizing either representation yields the same canonical
// bytes). The wire version is transport framing and is dropped;
// Validate checks it separately.
func (p *Problem) ToCanon() *placer.Problem {
	cp := &placer.Problem{
		Name:      p.Name,
		Nets:      cloneIDLists(p.Nets),
		Proximity: cloneIDLists(p.Proximity),
		Power:     append([]float64(nil), p.Power...),
		Objective: placer.Objective{
			AreaWeight:    p.Objective.AreaWeight,
			WireWeight:    p.Objective.WireWeight,
			OutlineW:      p.Objective.OutlineW,
			OutlineH:      p.Objective.OutlineH,
			OutlineWeight: p.Objective.OutlineWeight,
			ProxWeight:    p.Objective.ProxWeight,
			ThermalWeight: p.Objective.ThermalWeight,
			ThermalSigma:  p.Objective.ThermalSigma,
		},
		Hierarchy: nodeToCanon(p.Hierarchy),
	}
	if p.Modules != nil {
		cp.Modules = make([]placer.Module, len(p.Modules))
		for i, m := range p.Modules {
			cp.Modules[i] = placer.Module{Name: m.Name, W: m.W, H: m.H}
		}
	}
	if p.Symmetry != nil {
		cp.Symmetry = make([]placer.SymGroup, len(p.Symmetry))
		for i, g := range p.Symmetry {
			cp.Symmetry[i] = placer.SymGroup{
				Pairs: clonePairs(g.Pairs),
				Selfs: append([]int(nil), g.Selfs...),
			}
		}
	}
	return cp
}

// FromCanon encodes a canonical placer.Problem onto the wire — a deep
// copy, losslessly, with the version written explicitly. The input is
// not normalized implicitly; encode what you mean.
func FromCanon(cp *placer.Problem) *Problem {
	p := &Problem{
		Version:   Version,
		Name:      cp.Name,
		Nets:      cloneIDLists(cp.Nets),
		Proximity: cloneIDLists(cp.Proximity),
		Power:     append([]float64(nil), cp.Power...),
		Objective: Objective{
			AreaWeight:    cp.Objective.AreaWeight,
			WireWeight:    cp.Objective.WireWeight,
			OutlineW:      cp.Objective.OutlineW,
			OutlineH:      cp.Objective.OutlineH,
			OutlineWeight: cp.Objective.OutlineWeight,
			ProxWeight:    cp.Objective.ProxWeight,
			ThermalWeight: cp.Objective.ThermalWeight,
			ThermalSigma:  cp.Objective.ThermalSigma,
		},
		Hierarchy: nodeFromCanon(cp.Hierarchy),
	}
	if cp.Modules != nil {
		p.Modules = make([]Module, len(cp.Modules))
		for i, m := range cp.Modules {
			p.Modules[i] = Module{Name: m.Name, W: m.W, H: m.H}
		}
	}
	if cp.Symmetry != nil {
		p.Symmetry = make([]SymGroup, len(cp.Symmetry))
		for i, g := range cp.Symmetry {
			p.Symmetry[i] = SymGroup{
				Pairs: clonePairs(g.Pairs),
				Selfs: append([]int(nil), g.Selfs...),
			}
		}
	}
	return p
}

func nodeToCanon(nd *Node) *placer.Node {
	if nd == nil {
		return nil
	}
	c := &placer.Node{
		Name:    nd.Name,
		Kind:    nd.Kind,
		Devices: append([]string(nil), nd.Devices...),
		Pairs:   append([][2]string(nil), nd.Pairs...),
		Selfs:   append([]string(nil), nd.Selfs...),
	}
	if nd.Units != nil {
		c.Units = make(map[string][]string, len(nd.Units))
		for k, v := range nd.Units {
			c.Units[k] = append([]string(nil), v...)
		}
	}
	if nd.Children != nil {
		c.Children = make([]*placer.Node, len(nd.Children))
		for i, ch := range nd.Children {
			c.Children[i] = nodeToCanon(ch)
		}
	}
	return c
}

func nodeFromCanon(cn *placer.Node) *Node {
	if cn == nil {
		return nil
	}
	nd := &Node{
		Name:    cn.Name,
		Kind:    cn.Kind,
		Devices: append([]string(nil), cn.Devices...),
		Pairs:   append([][2]string(nil), cn.Pairs...),
		Selfs:   append([]string(nil), cn.Selfs...),
	}
	if cn.Units != nil {
		nd.Units = make(map[string][]string, len(cn.Units))
		for k, v := range cn.Units {
			nd.Units[k] = append([]string(nil), v...)
		}
	}
	if cn.Children != nil {
		nd.Children = make([]*Node, len(cn.Children))
		for i, ch := range cn.Children {
			nd.Children[i] = nodeFromCanon(ch)
		}
	}
	return nd
}

// FromPlace encodes a flat placement problem onto the wire. The
// result is normalized.
func FromPlace(name string, pp *place.Problem) *Problem {
	p := &Problem{
		Version: Version,
		Name:    name,
		Modules: make([]Module, pp.N()),
		Objective: Objective{
			AreaWeight:    pp.AreaWeight,
			WireWeight:    pp.WireWeight,
			OutlineW:      pp.OutlineW,
			OutlineH:      pp.OutlineH,
			OutlineWeight: pp.OutlineWeight,
			ProxWeight:    pp.ProxWeight,
			ThermalWeight: pp.ThermalWeight,
			ThermalSigma:  pp.ThermalSigma,
		},
		Nets:      cloneIDLists(pp.Nets),
		Proximity: cloneIDLists(pp.ProxGroups),
		Power:     append([]float64(nil), pp.Power...),
	}
	for i := 0; i < pp.N(); i++ {
		p.Modules[i] = Module{Name: pp.Names[i], W: pp.W[i], H: pp.H[i]}
	}
	for _, g := range pp.Groups {
		p.Symmetry = append(p.Symmetry, SymGroup{
			Pairs: clonePairs(g.Pairs),
			Selfs: append([]int(nil), g.Selfs...),
		})
	}
	p.Normalize()
	return p
}

// FromBench encodes a benchmark circuit onto the wire: the flat view
// (modules, symmetry groups, nets, proximity groups) through
// place.FromBench — so the conventional area + HPWL objective is
// preserved — plus the design hierarchy, so the hierarchical placer
// sees the same tree a native run would.
func FromBench(b *circuits.Bench) (*Problem, error) {
	pp, err := place.FromBench(b)
	if err != nil {
		return nil, err
	}
	p := FromPlace(b.Name, pp)
	if b.Tree != nil {
		p.Hierarchy = fromConstraintNode(b.Tree)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize() // hierarchy attached after FromPlace's normalization
	return p, nil
}

// kindNames maps constraint kinds to their wire spelling.
var kindNames = map[constraint.Kind]string{
	constraint.KindNone:           "",
	constraint.KindSymmetry:       "symmetry",
	constraint.KindCommonCentroid: "common_centroid",
	constraint.KindProximity:      "proximity",
}

func fromConstraintNode(n *constraint.Node) *Node {
	nd := &Node{
		Name:    n.Name,
		Kind:    kindNames[n.Kind],
		Devices: append([]string(nil), n.Devices...),
		Pairs:   append([][2]string(nil), n.SymPairs...),
		Selfs:   append([]string(nil), n.SymSelfs...),
	}
	if n.Units != nil {
		nd.Units = make(map[string][]string, len(n.Units))
		for k, v := range n.Units {
			nd.Units[k] = append([]string(nil), v...)
		}
	}
	for _, c := range n.Children {
		nd.Children = append(nd.Children, fromConstraintNode(c))
	}
	return nd
}

func clonePairs(ps [][2]int) [][2]int {
	return append([][2]int(nil), ps...)
}

func cloneIDLists(lists [][]int) [][]int {
	if lists == nil {
		return nil
	}
	out := make([][]int, len(lists))
	for i, l := range lists {
		out[i] = append([]int(nil), l...)
	}
	return out
}
