// Package wire defines the canonical, versioned JSON wire format the
// placement service and the CLI speak: a Problem describes one
// placement instance (modules, symmetry groups, nets, proximity
// groups, objective weights, and an optional design hierarchy for the
// hierarchical placer), Options describe how to solve it, and a
// Request bundles the two. Result carries a solved placement back.
//
// The format is strict and canonical. Decoding rejects unknown
// fields, trailing data and semantically invalid problems; decoded
// values are normalized (member lists sorted, defaults made explicit)
// so that Canonical returns one byte representation per semantic
// problem — permuting nets, symmetry pairs or proximity members does
// not change it. Hash is the hex SHA-256 of that canonical encoding
// and is the content address the service's result cache is keyed by.
package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Version is the current wire format version. Decoders accept
// problems with this version or with the field omitted (0), and
// canonicalization always writes it explicitly.
const Version = 1

// Module is one placeable rectangle.
type Module struct {
	Name string `json:"name"`
	W    int    `json:"w"`
	H    int    `json:"h"`
}

// SymGroup is a symmetry group over module ids: pairs mirror about a
// shared vertical axis, selfs are self-symmetric on it.
type SymGroup struct {
	Pairs [][2]int `json:"pairs,omitempty"`
	Selfs []int    `json:"selfs,omitempty"`
}

// Objective carries the weights of the composable cost model. Weights
// are literal: a zero WireWeight means no wirelength term (encoders
// that want the conventional area + HPWL objective write 1), while a
// zero AreaWeight keeps the default area weight of 1. ProxWeight
// applies to the flat placers' proximity pull term; the hierarchical
// placer always enforces proximity through its fragments penalty.
type Objective struct {
	AreaWeight    float64 `json:"area_weight,omitempty"`
	WireWeight    float64 `json:"wire_weight,omitempty"`
	OutlineW      int     `json:"outline_w,omitempty"`
	OutlineH      int     `json:"outline_h,omitempty"`
	OutlineWeight float64 `json:"outline_weight,omitempty"`
	ProxWeight    float64 `json:"prox_weight,omitempty"`
	ThermalWeight float64 `json:"thermal_weight,omitempty"`
	ThermalSigma  float64 `json:"thermal_sigma,omitempty"`
}

// Node is one node of the layout design hierarchy (the constraint
// tree the hierarchical HB*-tree placer consumes). Devices name
// modules; symmetry pairs and selfs may name either modules or child
// nodes (a child participates as one rigid object).
type Node struct {
	Name     string              `json:"name,omitempty"`
	Kind     string              `json:"kind,omitempty"` // "", "symmetry", "common_centroid", "proximity"
	Devices  []string            `json:"devices,omitempty"`
	Pairs    [][2]string         `json:"pairs,omitempty"`
	Selfs    []string            `json:"selfs,omitempty"`
	Units    map[string][]string `json:"units,omitempty"`
	Children []*Node             `json:"children,omitempty"`
}

// Problem is one placement instance on the wire.
type Problem struct {
	Version   int        `json:"version"`
	Name      string     `json:"name,omitempty"`
	Modules   []Module   `json:"modules"`
	Symmetry  []SymGroup `json:"symmetry,omitempty"`
	Nets      [][]int    `json:"nets,omitempty"`
	Proximity [][]int    `json:"proximity,omitempty"`
	Power     []float64  `json:"power,omitempty"`
	Objective Objective  `json:"objective"`
	Hierarchy *Node      `json:"hierarchy,omitempty"`
}

// Methods the service understands. MethodPortfolio races the three
// fast flat representations and keeps the best feasible placement.
const (
	MethodSeqPair   = "seqpair"
	MethodBStar     = "bstar"
	MethodTCG       = "tcg"
	MethodSlicing   = "slicing"
	MethodAbsolute  = "absolute"
	MethodHBStar    = "hbstar"
	MethodPortfolio = "portfolio"
)

// KnownMethod reports whether name is a method the service can run.
func KnownMethod(name string) bool {
	switch name {
	case MethodSeqPair, MethodBStar, MethodTCG, MethodSlicing,
		MethodAbsolute, MethodHBStar, MethodPortfolio:
		return true
	}
	return false
}

// Options select and tune a solver. The zero value means: seqpair,
// one worker, the service's default schedule (150 moves per stage
// over at most 200 stages, stall-stop after 40, cooling 0.95 — see
// Normalize, which writes these explicitly), no deadline.
type Options struct {
	Method        string  `json:"method,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	MovesPerStage int     `json:"moves_per_stage,omitempty"`
	MaxStages     int     `json:"max_stages,omitempty"`
	StallStages   int     `json:"stall_stages,omitempty"`
	Cooling       float64 `json:"cooling,omitempty"`
	InitialTemp   float64 `json:"initial_temp,omitempty"`
	MinTemp       float64 `json:"min_temp,omitempty"`
	// TimeoutMS bounds the solve wall-clock; an expired deadline
	// cancels the run at the next stage boundary and returns the
	// best-so-far placement flagged as cancelled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Request is what POST /v1/place consumes: a problem and how to
// solve it.
type Request struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options"`
}

// Placed is one module of a solved placement.
type Placed struct {
	Name string `json:"name"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
	W    int    `json:"w"`
	H    int    `json:"h"`
}

// Result is a solved placement on the wire.
type Result struct {
	Version    int      `json:"version"`
	Name       string   `json:"name,omitempty"`
	Method     string   `json:"method"`
	Cost       float64  `json:"cost"`
	BBoxW      int      `json:"bbox_w"`
	BBoxH      int      `json:"bbox_h"`
	AreaUsage  float64  `json:"area_usage"`
	Legal      bool     `json:"legal"`
	Violations []string `json:"violations,omitempty"`
	Cancelled  bool     `json:"cancelled,omitempty"`
	Stages     int      `json:"stages"`
	Moves      int      `json:"moves"`
	RuntimeMS  int64    `json:"runtime_ms"`
	Placement  []Placed `json:"placement"`
}

// kinds maps wire kind strings to validity.
var kinds = map[string]bool{"": true, "symmetry": true, "common_centroid": true, "proximity": true}

// Geometry ceilings: module dimensions and counts are bounded so
// packing coordinate sums and area products stay far inside int64 on
// untrusted input (MaxModules·MaxDim² ≤ 2⁵⁷).
const (
	MaxModules = 100_000
	MaxDim     = 1 << 20
)

// Validate checks the problem's internal consistency without
// modifying it. Decode runs it automatically; encoders building
// problems programmatically should run it before Canonical.
func (p *Problem) Validate() error {
	if p.Version != 0 && p.Version != Version {
		return fmt.Errorf("wire: unsupported version %d (this build speaks %d)", p.Version, Version)
	}
	n := len(p.Modules)
	if n == 0 {
		return fmt.Errorf("wire: problem has no modules")
	}
	if n > MaxModules {
		return fmt.Errorf("wire: %d modules over the limit of %d", n, MaxModules)
	}
	names := make(map[string]bool, n)
	for i, m := range p.Modules {
		if m.Name == "" {
			return fmt.Errorf("wire: module %d has no name", i)
		}
		if names[m.Name] {
			return fmt.Errorf("wire: duplicate module name %q", m.Name)
		}
		names[m.Name] = true
		if m.W <= 0 || m.H <= 0 {
			return fmt.Errorf("wire: module %q has non-positive size %dx%d", m.Name, m.W, m.H)
		}
		if m.W > MaxDim || m.H > MaxDim {
			return fmt.Errorf("wire: module %q size %dx%d over the limit of %d", m.Name, m.W, m.H, MaxDim)
		}
	}
	inGroup := make(map[int]bool)
	for gi, g := range p.Symmetry {
		if len(g.Pairs) == 0 && len(g.Selfs) == 0 {
			return fmt.Errorf("wire: symmetry group %d is empty", gi)
		}
		check := func(m int) error {
			if m < 0 || m >= n {
				return fmt.Errorf("wire: symmetry group %d references module %d out of range [0,%d)", gi, m, n)
			}
			if inGroup[m] {
				return fmt.Errorf("wire: module %d appears twice across symmetry groups", m)
			}
			inGroup[m] = true
			return nil
		}
		for _, pr := range g.Pairs {
			if pr[0] == pr[1] {
				return fmt.Errorf("wire: symmetry group %d pairs module %d with itself", gi, pr[0])
			}
			if err := check(pr[0]); err != nil {
				return err
			}
			if err := check(pr[1]); err != nil {
				return err
			}
		}
		for _, s := range g.Selfs {
			if err := check(s); err != nil {
				return err
			}
		}
	}
	idLists := func(what string, lists [][]int, minLen int) error {
		for li, list := range lists {
			if len(list) < minLen {
				return fmt.Errorf("wire: %s %d has fewer than %d members", what, li, minLen)
			}
			seen := make(map[int]bool, len(list))
			for _, m := range list {
				if m < 0 || m >= n {
					return fmt.Errorf("wire: %s %d references module %d out of range [0,%d)", what, li, m, n)
				}
				if seen[m] {
					return fmt.Errorf("wire: %s %d lists module %d twice", what, li, m)
				}
				seen[m] = true
			}
		}
		return nil
	}
	if err := idLists("net", p.Nets, 2); err != nil {
		return err
	}
	if err := idLists("proximity group", p.Proximity, 2); err != nil {
		return err
	}
	if p.Power != nil && len(p.Power) != n {
		return fmt.Errorf("wire: power has %d entries for %d modules", len(p.Power), n)
	}
	for i, pw := range p.Power {
		if pw < 0 || math.IsNaN(pw) || math.IsInf(pw, 0) {
			return fmt.Errorf("wire: power[%d] = %v is not a finite non-negative number", i, pw)
		}
	}
	if err := p.Objective.validate(); err != nil {
		return err
	}
	if p.Hierarchy != nil {
		owned := make(map[string]bool)
		if err := validateNode(p.Hierarchy, names, owned); err != nil {
			return err
		}
	}
	return nil
}

func (o *Objective) validate() error {
	weights := []struct {
		name string
		v    float64
	}{
		{"area_weight", o.AreaWeight},
		{"wire_weight", o.WireWeight},
		{"outline_weight", o.OutlineWeight},
		{"prox_weight", o.ProxWeight},
		{"thermal_weight", o.ThermalWeight},
		{"thermal_sigma", o.ThermalSigma},
	}
	for _, w := range weights {
		if w.v < 0 || math.IsNaN(w.v) || math.IsInf(w.v, 0) {
			return fmt.Errorf("wire: objective %s = %v is not a finite non-negative number", w.name, w.v)
		}
	}
	if o.OutlineW < 0 || o.OutlineH < 0 {
		return fmt.Errorf("wire: negative outline %dx%d", o.OutlineW, o.OutlineH)
	}
	if (o.OutlineW > 0) != (o.OutlineH > 0) {
		return fmt.Errorf("wire: outline needs both dimensions (got %dx%d)", o.OutlineW, o.OutlineH)
	}
	return nil
}

// validateNode walks a hierarchy node: kinds must be known, device
// references must name modules not owned by another node, and
// symmetry pairs/selfs must name this node's devices or children.
func validateNode(nd *Node, modules map[string]bool, owned map[string]bool) error {
	if !kinds[nd.Kind] {
		return fmt.Errorf("wire: hierarchy node %q has unknown kind %q", nd.Name, nd.Kind)
	}
	local := make(map[string]bool, len(nd.Devices)+len(nd.Children))
	for _, d := range nd.Devices {
		if !modules[d] {
			return fmt.Errorf("wire: hierarchy node %q references unknown module %q", nd.Name, d)
		}
		if owned[d] {
			return fmt.Errorf("wire: module %q owned by two hierarchy nodes", d)
		}
		owned[d] = true
		local[d] = true
	}
	for _, c := range nd.Children {
		// Child names are load-bearing identities — pairs/selfs/units
		// resolve against them, and flat-group derivation resolves
		// module names globally — so they must be unambiguous both
		// within the node and against the module namespace.
		if c.Name == "" {
			return fmt.Errorf("wire: hierarchy node %q has an unnamed child", nd.Name)
		}
		if local[c.Name] {
			return fmt.Errorf("wire: hierarchy node %q has ambiguous member name %q", nd.Name, c.Name)
		}
		if modules[c.Name] {
			return fmt.Errorf("wire: hierarchy node name %q collides with a module name", c.Name)
		}
		local[c.Name] = true
	}
	symUsed := make(map[string]bool, 2*len(nd.Pairs)+len(nd.Selfs))
	ref := func(name string) error {
		if !local[name] {
			return fmt.Errorf("wire: hierarchy node %q symmetry references %q, which is neither a device nor a child of it", nd.Name, name)
		}
		if symUsed[name] {
			return fmt.Errorf("wire: hierarchy node %q symmetry lists %q twice", nd.Name, name)
		}
		symUsed[name] = true
		return nil
	}
	for _, pr := range nd.Pairs {
		if pr[0] == pr[1] {
			return fmt.Errorf("wire: hierarchy node %q pairs %q with itself", nd.Name, pr[0])
		}
		if err := ref(pr[0]); err != nil {
			return err
		}
		if err := ref(pr[1]); err != nil {
			return err
		}
	}
	for _, s := range nd.Selfs {
		if err := ref(s); err != nil {
			return err
		}
	}
	unitNames := make([]string, 0, len(nd.Units))
	for name := range nd.Units {
		unitNames = append(unitNames, name)
	}
	sort.Strings(unitNames) // deterministic error choice
	for _, name := range unitNames {
		devs := nd.Units[name]
		if len(devs) == 0 {
			return fmt.Errorf("wire: hierarchy node %q common-centroid unit %q is empty", nd.Name, name)
		}
		for _, d := range devs {
			if !local[d] {
				return fmt.Errorf("wire: hierarchy node %q common-centroid unit %q references %q, which is neither a device nor a child of it", nd.Name, name, d)
			}
		}
	}
	for _, c := range nd.Children {
		if err := validateNode(c, modules, owned); err != nil {
			return err
		}
	}
	return nil
}

// Normalize rewrites the problem into its canonical form: version
// explicit, pair endpoints ordered, member lists sorted, group and
// net lists sorted lexicographically, and empty slices nil. Two
// semantically identical problems normalize to equal values, which is
// what makes Hash a content address. Objective weights whose zero
// value means a fixed default get that default written explicitly
// (area_weight 1); weights whose zero means "derived per problem"
// (outline_weight heuristic, thermal_sigma) keep 0 as their canonical
// spelling. Decode normalizes automatically.
func (p *Problem) Normalize() {
	if p.Version == 0 {
		// Only the omitted version is made explicit; an unsupported
		// one is left for Validate to reject, not silently rewritten.
		p.Version = Version
	}
	if p.Objective.AreaWeight == 0 {
		p.Objective.AreaWeight = 1
	}
	for gi := range p.Symmetry {
		g := &p.Symmetry[gi]
		for pi := range g.Pairs {
			if g.Pairs[pi][0] > g.Pairs[pi][1] {
				g.Pairs[pi][0], g.Pairs[pi][1] = g.Pairs[pi][1], g.Pairs[pi][0]
			}
		}
		sort.Slice(g.Pairs, func(i, j int) bool {
			if g.Pairs[i][0] != g.Pairs[j][0] {
				return g.Pairs[i][0] < g.Pairs[j][0]
			}
			return g.Pairs[i][1] < g.Pairs[j][1]
		})
		sort.Ints(g.Selfs)
		if len(g.Pairs) == 0 {
			g.Pairs = nil
		}
		if len(g.Selfs) == 0 {
			g.Selfs = nil
		}
	}
	sort.Slice(p.Symmetry, func(i, j int) bool {
		return symKey(p.Symmetry[i]) < symKey(p.Symmetry[j])
	})
	normalizeIDLists(p.Nets)
	normalizeIDLists(p.Proximity)
	if len(p.Symmetry) == 0 {
		p.Symmetry = nil
	}
	if len(p.Nets) == 0 {
		p.Nets = nil
	}
	if len(p.Proximity) == 0 {
		p.Proximity = nil
	}
	if len(p.Power) == 0 {
		p.Power = nil
	}
	p.Hierarchy.normalize()
}

// normalize canonicalizes a hierarchy subtree: pair endpoints
// ordered, member lists sorted, children ordered by their (unique)
// names. The normalized form is also the form that solves, so
// different spellings of one tree hash and behave identically.
func (nd *Node) normalize() {
	if nd == nil {
		return
	}
	sort.Strings(nd.Devices)
	for pi := range nd.Pairs {
		if nd.Pairs[pi][0] > nd.Pairs[pi][1] {
			nd.Pairs[pi][0], nd.Pairs[pi][1] = nd.Pairs[pi][1], nd.Pairs[pi][0]
		}
	}
	sort.Slice(nd.Pairs, func(i, j int) bool {
		if nd.Pairs[i][0] != nd.Pairs[j][0] {
			return nd.Pairs[i][0] < nd.Pairs[j][0]
		}
		return nd.Pairs[i][1] < nd.Pairs[j][1]
	})
	sort.Strings(nd.Selfs)
	for _, devs := range nd.Units {
		sort.Strings(devs)
	}
	for _, c := range nd.Children {
		c.normalize()
	}
	sort.Slice(nd.Children, func(i, j int) bool { return nd.Children[i].Name < nd.Children[j].Name })
	if len(nd.Devices) == 0 {
		nd.Devices = nil
	}
	if len(nd.Pairs) == 0 {
		nd.Pairs = nil
	}
	if len(nd.Selfs) == 0 {
		nd.Selfs = nil
	}
	if len(nd.Children) == 0 {
		nd.Children = nil
	}
}

// symKey is a group's smallest member, its canonical sort key (groups
// are disjoint, so keys are distinct on valid problems).
func symKey(g SymGroup) int {
	key := math.MaxInt
	for _, pr := range g.Pairs {
		if pr[0] < key {
			key = pr[0]
		}
	}
	for _, s := range g.Selfs {
		if s < key {
			key = s
		}
	}
	return key
}

func normalizeIDLists(lists [][]int) {
	for _, l := range lists {
		sort.Ints(l)
	}
	sort.Slice(lists, func(i, j int) bool {
		a, b := lists[i], lists[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Normalize canonicalizes the options: the service's solver defaults
// are written explicitly, so `{}` and the spelled-out equivalent
// (seqpair, one worker, 150 moves/stage over ≤200 stages, stall 40,
// cooling 0.95) hash to the same content address and share cache
// entries. InitialTemp and MinTemp stay 0 — their default is
// per-problem calibration, which "0" is the canonical spelling of.
func (o *Options) Normalize() {
	if o.Method == "" {
		o.Method = MethodSeqPair
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MovesPerStage == 0 {
		o.MovesPerStage = DefaultMovesPerStage
	}
	if o.MaxStages == 0 {
		o.MaxStages = DefaultMaxStages
	}
	if o.StallStages == 0 {
		o.StallStages = DefaultStallStages
	}
	if o.Cooling == 0 {
		o.Cooling = DefaultCooling
	}
}

// Default annealing schedule — the one definition shared by
// Normalize (which makes it explicit in the canonical encoding),
// Request.Validate (which sizes the stage-work ceiling with it) and
// the CLI (whose classic schedule it is).
const (
	DefaultMovesPerStage = 150
	DefaultMaxStages     = 200
	DefaultStallStages   = 40
	DefaultCooling       = 0.95
)

// Resource ceilings on solver options: the wire format faces
// untrusted clients, so one request must not be able to conscript
// unbounded goroutines or camp on a pool worker forever.
const (
	MaxWorkers       = 64
	MaxMovesPerStage = 1_000_000
	MaxStagesBound   = 1_000_000
)

// Validate checks the options.
func (o *Options) Validate() error {
	if o.Method != "" && !KnownMethod(o.Method) {
		return fmt.Errorf("wire: unknown method %q", o.Method)
	}
	if o.Workers < 0 || o.MovesPerStage < 0 || o.MaxStages < 0 || o.StallStages < 0 || o.TimeoutMS < 0 {
		return fmt.Errorf("wire: negative solver option")
	}
	if o.Workers > MaxWorkers {
		return fmt.Errorf("wire: workers %d over the limit of %d", o.Workers, MaxWorkers)
	}
	if o.MovesPerStage > MaxMovesPerStage {
		return fmt.Errorf("wire: moves_per_stage %d over the limit of %d", o.MovesPerStage, MaxMovesPerStage)
	}
	if o.MaxStages > MaxStagesBound || o.StallStages > MaxStagesBound {
		return fmt.Errorf("wire: stage bound over the limit of %d", MaxStagesBound)
	}
	if o.Cooling < 0 || o.Cooling >= 1 {
		if o.Cooling != 0 {
			return fmt.Errorf("wire: cooling %v outside (0,1)", o.Cooling)
		}
	}
	for _, v := range []float64{o.Cooling, o.InitialTemp, o.MinTemp} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wire: solver option %v is not a finite non-negative number", v)
		}
	}
	if o.InitialTemp > 0 && o.MinTemp >= o.InitialTemp {
		// The schedule would run zero stages and hand back the random
		// initial placement as a "solved" result.
		return fmt.Errorf("wire: min_temp %v not below initial_temp %v", o.MinTemp, o.InitialTemp)
	}
	return nil
}

// Canonical returns the canonical encoding of the problem: the
// normalized form marshalled with a fixed field order and no
// extraneous whitespace. The receiver is not modified.
func (p *Problem) Canonical() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := p.clone()
	c.Normalize()
	return json.Marshal(c)
}

// Hash returns the hex SHA-256 of the problem's canonical encoding —
// its content address.
func (p *Problem) Hash() (string, error) {
	b, err := p.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MaxStageWork bounds modules × moves-per-stage for one request.
// Cancellation (DELETE, deadlines, shutdown) lands at temperature
// stage boundaries — the hot loop deliberately carries no per-move
// checks — so a single stage must stay small enough that a stage
// boundary is never hours away.
const MaxStageWork = 100_000_000

// Validate checks problem and options, including the joint
// stage-work ceiling that neither can check alone.
func (r *Request) Validate() error {
	if err := r.Problem.Validate(); err != nil {
		return err
	}
	if err := r.Options.Validate(); err != nil {
		return err
	}
	moves := r.Options.MovesPerStage
	if moves == 0 {
		moves = DefaultMovesPerStage // what Normalize will make it
	}
	if work := int64(moves) * int64(len(r.Problem.Modules)); work > MaxStageWork {
		return fmt.Errorf("wire: moves_per_stage × modules = %d over the limit of %d", work, MaxStageWork)
	}
	return nil
}

// Canonical returns the canonical encoding of the request. The
// deadline is excluded: a completed result does not depend on
// timeout_ms (cancelled runs are never cached), so requests differing
// only in deadline share a content address.
func (r *Request) Canonical() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	c := Request{Problem: *r.Problem.clone(), Options: r.Options}
	c.Problem.Normalize()
	c.Options.Normalize()
	c.Options.TimeoutMS = 0
	return json.Marshal(c)
}

// Hash returns the hex SHA-256 of the request's canonical encoding.
// Identical problems solved with identical options share it; the
// service's result cache is keyed by it.
func (r *Request) Hash() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// HashNormalized is Hash for a request already in normalized form
// (DecodeRequest output, or after Problem.Normalize plus
// Options.Normalize): it skips Hash's defensive deep clone and
// re-normalization, which dominate the service's cache-hit path. On
// a request that is not actually normalized it returns the hash of
// that spelling — at worst a cache miss, never a wrong result.
func (r *Request) HashNormalized() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	c := Request{Problem: r.Problem, Options: r.Options}
	c.Options.TimeoutMS = 0 // deadlines are excluded from the content address
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// clone deep-copies the problem.
func (p *Problem) clone() *Problem {
	c := *p
	c.Modules = append([]Module(nil), p.Modules...)
	c.Symmetry = make([]SymGroup, len(p.Symmetry))
	for i, g := range p.Symmetry {
		c.Symmetry[i] = SymGroup{
			Pairs: clonePairs(g.Pairs),
			Selfs: append([]int(nil), g.Selfs...),
		}
	}
	c.Nets = cloneIDLists(p.Nets)
	c.Proximity = cloneIDLists(p.Proximity)
	c.Power = append([]float64(nil), p.Power...)
	c.Hierarchy = p.Hierarchy.clone()
	return &c
}

func clonePairs(ps [][2]int) [][2]int {
	return append([][2]int(nil), ps...)
}

func cloneIDLists(lists [][]int) [][]int {
	if lists == nil {
		return nil
	}
	out := make([][]int, len(lists))
	for i, l := range lists {
		out[i] = append([]int(nil), l...)
	}
	return out
}

func (nd *Node) clone() *Node {
	if nd == nil {
		return nil
	}
	c := *nd
	c.Devices = append([]string(nil), nd.Devices...)
	c.Pairs = append([][2]string(nil), nd.Pairs...)
	c.Selfs = append([]string(nil), nd.Selfs...)
	if nd.Units != nil {
		c.Units = make(map[string][]string, len(nd.Units))
		for k, v := range nd.Units {
			c.Units[k] = append([]string(nil), v...)
		}
	}
	if nd.Children != nil {
		c.Children = make([]*Node, len(nd.Children))
		for i, ch := range nd.Children {
			c.Children[i] = ch.clone()
		}
	}
	return &c
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// data.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("wire: trailing data after JSON value")
	}
	return nil
}

// DecodeProblem strictly parses, validates and normalizes a problem.
func DecodeProblem(data []byte) (*Problem, error) {
	var p Problem
	if err := decodeStrict(data, &p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize()
	return &p, nil
}

// DecodeRequest strictly parses, validates and normalizes a request.
func DecodeRequest(data []byte) (*Request, error) {
	var r Request
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	r.Problem.Normalize()
	r.Options.Normalize()
	return &r, nil
}
