// Package wire defines the canonical, versioned JSON wire format the
// placement service and the CLI speak: a Problem describes one
// placement instance (modules, symmetry groups, nets, proximity
// groups, objective weights, and an optional design hierarchy for the
// hierarchical placer), Options describe how to solve it, and a
// Request bundles the two. Result carries a solved placement back.
//
// The format is the JSON transport encoding of the public
// placer.Problem: ToCanon and FromCanon convert losslessly between
// the two, and validation and normalization are delegated to the
// placer package so the wire format and the public API can never
// disagree about what a well-formed problem is.
//
// The format is strict and canonical. Decoding rejects unknown
// fields, trailing data and semantically invalid problems; decoded
// values are normalized (member lists sorted, defaults made explicit)
// so that Canonical returns one byte representation per semantic
// problem — permuting nets, symmetry pairs or proximity members does
// not change it. Hash is the hex SHA-256 of that canonical encoding
// and is the content address the service's result cache is keyed by.
package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/placer"
)

// Version is the current wire format version. Decoders accept
// problems with this version or with the field omitted (0), and
// canonicalization always writes it explicitly.
const Version = 1

// Module is one placeable rectangle.
type Module struct {
	Name string `json:"name"`
	W    int    `json:"w"`
	H    int    `json:"h"`
}

// SymGroup is a symmetry group over module ids: pairs mirror about a
// shared vertical axis, selfs are self-symmetric on it.
type SymGroup struct {
	Pairs [][2]int `json:"pairs,omitempty"`
	Selfs []int    `json:"selfs,omitempty"`
}

// Objective carries the weights of the composable cost model. Weights
// are literal: a zero WireWeight means no wirelength term (encoders
// that want the conventional area + HPWL objective write 1), while a
// zero AreaWeight keeps the default area weight of 1. ProxWeight
// applies to the flat placers' proximity pull term; the hierarchical
// placer always enforces proximity through its fragments penalty.
type Objective struct {
	AreaWeight    float64 `json:"area_weight,omitempty"`
	WireWeight    float64 `json:"wire_weight,omitempty"`
	OutlineW      int     `json:"outline_w,omitempty"`
	OutlineH      int     `json:"outline_h,omitempty"`
	OutlineWeight float64 `json:"outline_weight,omitempty"`
	ProxWeight    float64 `json:"prox_weight,omitempty"`
	ThermalWeight float64 `json:"thermal_weight,omitempty"`
	ThermalSigma  float64 `json:"thermal_sigma,omitempty"`
}

// Node is one node of the layout design hierarchy (the constraint
// tree the hierarchical HB*-tree placer consumes). Devices name
// modules; symmetry pairs and selfs may name either modules or child
// nodes (a child participates as one rigid object).
type Node struct {
	Name     string              `json:"name,omitempty"`
	Kind     string              `json:"kind,omitempty"` // "", "symmetry", "common_centroid", "proximity"
	Devices  []string            `json:"devices,omitempty"`
	Pairs    [][2]string         `json:"pairs,omitempty"`
	Selfs    []string            `json:"selfs,omitempty"`
	Units    map[string][]string `json:"units,omitempty"`
	Children []*Node             `json:"children,omitempty"`
}

// Problem is one placement instance on the wire.
type Problem struct {
	Version   int        `json:"version"`
	Name      string     `json:"name,omitempty"`
	Modules   []Module   `json:"modules"`
	Symmetry  []SymGroup `json:"symmetry,omitempty"`
	Nets      [][]int    `json:"nets,omitempty"`
	Proximity [][]int    `json:"proximity,omitempty"`
	Power     []float64  `json:"power,omitempty"`
	Objective Objective  `json:"objective"`
	Hierarchy *Node      `json:"hierarchy,omitempty"`
}

// Methods the service understands: the placer registry's algorithms,
// plus MethodPortfolio, which races the portfolio-eligible flat
// representations and keeps the best feasible placement.
const (
	MethodSeqPair   = placer.SeqPair
	MethodBStar     = placer.BStar
	MethodTCG       = placer.TCG
	MethodSlicing   = placer.Slicing
	MethodAbsolute  = placer.Absolute
	MethodHBStar    = placer.HBStar
	MethodPortfolio = "portfolio"
)

// KnownMethod reports whether name is a method the service can run:
// any algorithm in the placer registry, or the portfolio race. New
// engines registered with placer.Register become valid wire methods
// automatically.
func KnownMethod(name string) bool {
	return name == MethodPortfolio || placer.Known(name)
}

// Options select and tune a solver. The zero value means: seqpair,
// one worker, the service's default schedule (150 moves per stage
// over at most 200 stages, stall-stop after 40, cooling 0.95 — see
// Normalize, which writes these explicitly), no deadline.
type Options struct {
	Method        string  `json:"method,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	MovesPerStage int     `json:"moves_per_stage,omitempty"`
	MaxStages     int     `json:"max_stages,omitempty"`
	StallStages   int     `json:"stall_stages,omitempty"`
	Cooling       float64 `json:"cooling,omitempty"`
	InitialTemp   float64 `json:"initial_temp,omitempty"`
	MinTemp       float64 `json:"min_temp,omitempty"`
	// TemperChains enables parallel tempering with that many replica
	// chains on a temperature ladder (0 or 1 disables; tempering takes
	// precedence over Workers). ExchangeEvery is the stage period of
	// replica-exchange sweeps; 0 with chains set degrades to an
	// independent multi-start identical to Workers=chains. Both are
	// omitted from the canonical encoding when zero, so pre-existing
	// request hashes are unchanged.
	TemperChains  int `json:"temper_chains,omitempty"`
	ExchangeEvery int `json:"exchange_every,omitempty"`
	// TimeoutMS bounds the solve wall-clock; an expired deadline
	// cancels the run at the next stage boundary and returns the
	// best-so-far placement flagged as cancelled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Request is what POST /v1/place consumes: a problem and how to
// solve it.
type Request struct {
	Problem Problem `json:"problem"`
	Options Options `json:"options"`
}

// Placed is one module of a solved placement.
type Placed struct {
	Name string `json:"name"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
	W    int    `json:"w"`
	H    int    `json:"h"`
}

// Breakdown decomposes a result's cost per objective term: each field
// is that term's weighted contribution (weight × value), so the
// populated fields sum to Result.Cost exactly. Overlap is the
// absolute placer's residual overlap penalty; Fragments is the
// hierarchical placer's proximity-connectivity penalty.
type Breakdown struct {
	Area      float64 `json:"area,omitempty"`
	HPWL      float64 `json:"hpwl,omitempty"`
	Outline   float64 `json:"outline,omitempty"`
	Proximity float64 `json:"proximity,omitempty"`
	Thermal   float64 `json:"thermal,omitempty"`
	Overlap   float64 `json:"overlap,omitempty"`
	Fragments float64 `json:"fragments,omitempty"`
}

// Result is a solved placement on the wire.
type Result struct {
	Version    int        `json:"version"`
	Name       string     `json:"name,omitempty"`
	Method     string     `json:"method"`
	Cost       float64    `json:"cost"`
	Breakdown  *Breakdown `json:"breakdown,omitempty"`
	BBoxW      int        `json:"bbox_w"`
	BBoxH      int        `json:"bbox_h"`
	AreaUsage  float64    `json:"area_usage"`
	Legal      bool       `json:"legal"`
	Violations []string   `json:"violations,omitempty"`
	Cancelled  bool       `json:"cancelled,omitempty"`
	Stages     int        `json:"stages"`
	Moves      int        `json:"moves"`
	RuntimeMS  int64      `json:"runtime_ms"`
	Placement  []Placed   `json:"placement"`
	// Trace is the solve's flight recording (see Trace), present only
	// when the solve ran with tracing enabled.
	Trace *Trace `json:"trace,omitempty"`
	// EngineTraces holds every portfolio racer's recording — winner
	// included, in racing order, each bounded to its newest events (see
	// placer.MaxEngineTraceEvents) — so losing representations stay
	// inspectable. Absent outside portfolio mode.
	EngineTraces []*Trace `json:"engine_traces,omitempty"`
}

// Geometry ceilings, shared with the placer package: module
// dimensions and counts are bounded so packing coordinate sums and
// area products stay far inside int64 on untrusted input
// (MaxModules·MaxDim² ≤ 2⁵⁷).
const (
	MaxModules = placer.MaxModules
	MaxDim     = placer.MaxDim
)

// Validate checks the problem's internal consistency without
// modifying it: the wire version must be supported, and the decoded
// problem must be semantically valid under the placer package's
// canonical rules. Decode runs it automatically; encoders building
// problems programmatically should run it before Canonical.
func (p *Problem) Validate() error {
	if p.Version != 0 && p.Version != Version {
		return fmt.Errorf("wire: unsupported version %d (this build speaks %d)", p.Version, Version)
	}
	return p.ToCanon().Validate()
}

// Normalize rewrites the problem into its canonical form: version
// explicit, pair endpoints ordered, member lists sorted, group and
// net lists sorted lexicographically, and empty slices nil (the
// placer package's canonical form, round-tripped through ToCanon).
// Two semantically identical problems normalize to equal values,
// which is what makes Hash a content address. Decode normalizes
// automatically.
func (p *Problem) Normalize() {
	cp := p.ToCanon()
	cp.Normalize()
	v := p.Version
	*p = *FromCanon(cp)
	if v != 0 {
		// Only the omitted version is made explicit; an unsupported
		// one is left for Validate to reject, not silently rewritten.
		p.Version = v
	}
}

// Normalize canonicalizes the options: the service's solver defaults
// are written explicitly, so `{}` and the spelled-out equivalent
// (seqpair, one worker, 150 moves/stage over ≤200 stages, stall 40,
// cooling 0.95) hash to the same content address and share cache
// entries. InitialTemp and MinTemp stay 0 — their default is
// per-problem calibration, which "0" is the canonical spelling of.
func (o *Options) Normalize() {
	if o.Method == "" {
		o.Method = MethodSeqPair
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MovesPerStage == 0 {
		o.MovesPerStage = DefaultMovesPerStage
	}
	if o.MaxStages == 0 {
		o.MaxStages = DefaultMaxStages
	}
	if o.StallStages == 0 {
		o.StallStages = DefaultStallStages
	}
	if o.Cooling == 0 {
		o.Cooling = DefaultCooling
	}
}

// Default annealing schedule — the placer package's defaults,
// re-exported as the wire spelling shared by Normalize (which makes
// them explicit in the canonical encoding), Request.Validate (which
// sizes the stage-work ceiling with them) and the CLI.
const (
	DefaultMovesPerStage = placer.DefaultMovesPerStage
	DefaultMaxStages     = placer.DefaultMaxStages
	DefaultStallStages   = placer.DefaultStallStages
	DefaultCooling       = placer.DefaultCooling
)

// Resource ceilings on solver options: the wire format faces
// untrusted clients, so one request must not be able to conscript
// unbounded goroutines or camp on a pool worker forever.
const (
	MaxWorkers       = 64
	MaxMovesPerStage = 1_000_000
	MaxStagesBound   = 1_000_000
)

// Validate checks the options. An unknown method fails with the
// placer registry's shared unknown-algorithm error, so the daemon,
// the CLI and placer.Solve reject it identically.
func (o *Options) Validate() error {
	if o.Method != "" && !KnownMethod(o.Method) {
		return placer.ErrUnknownAlgorithm(o.Method)
	}
	if o.Workers < 0 || o.MovesPerStage < 0 || o.MaxStages < 0 || o.StallStages < 0 || o.TimeoutMS < 0 ||
		o.TemperChains < 0 || o.ExchangeEvery < 0 {
		return fmt.Errorf("wire: negative solver option")
	}
	if o.Workers > MaxWorkers {
		return fmt.Errorf("wire: workers %d over the limit of %d", o.Workers, MaxWorkers)
	}
	if o.TemperChains > MaxWorkers {
		// Every chain is a live goroutine, so chains share the worker
		// ceiling.
		return fmt.Errorf("wire: temper_chains %d over the limit of %d", o.TemperChains, MaxWorkers)
	}
	if o.ExchangeEvery > MaxStagesBound {
		return fmt.Errorf("wire: exchange_every %d over the limit of %d", o.ExchangeEvery, MaxStagesBound)
	}
	if o.MovesPerStage > MaxMovesPerStage {
		return fmt.Errorf("wire: moves_per_stage %d over the limit of %d", o.MovesPerStage, MaxMovesPerStage)
	}
	if o.MaxStages > MaxStagesBound || o.StallStages > MaxStagesBound {
		return fmt.Errorf("wire: stage bound over the limit of %d", MaxStagesBound)
	}
	if o.Cooling < 0 || o.Cooling >= 1 {
		if o.Cooling != 0 {
			return fmt.Errorf("wire: cooling %v outside (0,1)", o.Cooling)
		}
	}
	for _, v := range []float64{o.Cooling, o.InitialTemp, o.MinTemp} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wire: solver option %v is not a finite non-negative number", v)
		}
	}
	if o.InitialTemp > 0 && o.MinTemp >= o.InitialTemp {
		// The schedule would run zero stages and hand back the random
		// initial placement as a "solved" result.
		return fmt.Errorf("wire: min_temp %v not below initial_temp %v", o.MinTemp, o.InitialTemp)
	}
	return nil
}

// Schedule maps the options onto the placer schedule.
func (o *Options) Schedule() placer.Schedule {
	return placer.Schedule{
		MovesPerStage: o.MovesPerStage,
		MaxStages:     o.MaxStages,
		StallStages:   o.StallStages,
		Cooling:       o.Cooling,
		InitialTemp:   o.InitialTemp,
		MinTemp:       o.MinTemp,
	}
}

// Canonical returns the canonical encoding of the problem: the
// normalized form marshalled with a fixed field order and no
// extraneous whitespace. The receiver is not modified.
func (p *Problem) Canonical() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := p.ToCanon()
	cp.Normalize()
	return json.Marshal(FromCanon(cp))
}

// Hash returns the hex SHA-256 of the problem's canonical encoding —
// its content address.
func (p *Problem) Hash() (string, error) {
	b, err := p.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MaxStageWork bounds modules × moves-per-stage for one request.
// Cancellation (DELETE, deadlines, shutdown) lands at temperature
// stage boundaries — the hot loop deliberately carries no per-move
// checks — so a single stage must stay small enough that a stage
// boundary is never hours away.
const MaxStageWork = 100_000_000

// Validate checks problem and options, including the joint
// stage-work ceiling that neither can check alone.
func (r *Request) Validate() error {
	if err := r.Problem.Validate(); err != nil {
		return err
	}
	if err := r.Options.Validate(); err != nil {
		return err
	}
	moves := r.Options.MovesPerStage
	if moves == 0 {
		moves = DefaultMovesPerStage // what Normalize will make it
	}
	// Tempering chains run their stages concurrently, so a stage's
	// work scales with the chain count too.
	chains := r.Options.TemperChains
	if chains < 1 {
		chains = 1
	}
	if work := int64(moves) * int64(len(r.Problem.Modules)) * int64(chains); work > MaxStageWork {
		return fmt.Errorf("wire: moves_per_stage × modules × chains = %d over the limit of %d", work, MaxStageWork)
	}
	return nil
}

// Canonical returns the canonical encoding of the request. The
// deadline is excluded: a completed result does not depend on
// timeout_ms (cancelled runs are never cached), so requests differing
// only in deadline share a content address.
func (r *Request) Canonical() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	cp := r.Problem.ToCanon()
	cp.Normalize()
	c := Request{Problem: *FromCanon(cp), Options: r.Options}
	c.Options.Normalize()
	c.Options.TimeoutMS = 0
	return json.Marshal(c)
}

// Hash returns the hex SHA-256 of the request's canonical encoding.
// Identical problems solved with identical options share it; the
// service's result cache is keyed by it.
func (r *Request) Hash() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// HashNormalized is Hash for a request already in normalized form
// (DecodeRequest output, or after Problem.Normalize plus
// Options.Normalize): it skips Hash's defensive deep clone and
// re-normalization, which dominate the service's cache-hit path. On
// a request that is not actually normalized it returns the hash of
// that spelling — at worst a cache miss, never a wrong result.
func (r *Request) HashNormalized() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	c := Request{Problem: r.Problem, Options: r.Options}
	c.Options.TimeoutMS = 0 // deadlines are excluded from the content address
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// data.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("wire: trailing data after JSON value")
	}
	return nil
}

// DecodeProblem strictly parses, validates and normalizes a problem.
func DecodeProblem(data []byte) (*Problem, error) {
	var p Problem
	if err := decodeStrict(data, &p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize()
	return &p, nil
}

// DecodeRequest strictly parses, validates and normalizes a request.
func DecodeRequest(data []byte) (*Request, error) {
	var r Request
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	r.Problem.Normalize()
	r.Options.Normalize()
	return &r, nil
}
