package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeBatchRequest(t *testing.T) {
	mk := func(items ...Request) []byte {
		b, err := json.Marshal(BatchRequest{Items: items})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	got, err := DecodeBatchRequest(mk(
		Request{Problem: *testProblem()},
		Request{Problem: *testProblem(), Options: Options{Seed: 7}},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != 2 {
		t.Fatalf("decoded %d items, want 2", len(got.Items))
	}
	// Items come out normalized, same as single-request decoding, so
	// submission hashes the canonical form.
	if got.Items[0].Options.Method == "" {
		t.Fatal("batch item not normalized on decode")
	}

	if _, err := DecodeBatchRequest(mk()); err == nil {
		t.Fatal("empty batch accepted")
	}

	over := make([]Request, MaxBatchItems+1)
	for i := range over {
		over[i] = Request{Problem: *testProblem()}
	}
	if _, err := DecodeBatchRequest(mk(over...)); err == nil {
		t.Fatalf("batch of %d items accepted over the %d limit", len(over), MaxBatchItems)
	}

	bad := *testProblem()
	bad.Modules[0].W = -1
	_, err = DecodeBatchRequest(mk(Request{Problem: *testProblem()}, Request{Problem: bad}))
	if err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Fatalf("invalid item error %v must name the item index", err)
	}

	if _, err := DecodeBatchRequest([]byte(`{"items": [], "extra": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
