package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeProblem fuzzes the strict decoder: arbitrary bytes must
// never panic, and whatever decodes successfully must round-trip
// canonically — encode(decode(b)) is a fixed point of the decoder.
// The checked-in corpus under testdata/fuzz/FuzzDecodeProblem seeds
// the interesting shapes; plain `go test` replays corpus + seeds,
// `go test -fuzz=FuzzDecodeProblem ./internal/wire` explores.
func FuzzDecodeProblem(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"version":1,"modules":[{"name":"A","w":4,"h":2}],"objective":{}}`,
		`{"version":1,"modules":[{"name":"A","w":4,"h":2},{"name":"B","w":4,"h":2}],` +
			`"symmetry":[{"pairs":[[0,1]]}],"nets":[[0,1]],"objective":{"wire_weight":1}}`,
		`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"hierarchy":{"name":"r","devices":["A"]},"objective":{}}`,
		`{"version":2,"modules":[{"name":"A","w":1,"h":1}],"objective":{}}`,
		`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"objective":{"outline_w":10,"outline_h":10}}`,
		`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"power":[1.5],"objective":{}}`,
		`{"version":1,"modules":[{"name":"A","w":-1,"h":1}],"objective":{}}`,
		`{"version":1,"modules":[{"name":"A","w":1,"h":1}],"nets":[[0,0]],"objective":{}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProblem(data) // must not panic, ever
		if err != nil {
			return
		}
		// Valid decode ⇒ canonical round-trip is exact.
		c1, err := p.Canonical()
		if err != nil {
			t.Fatalf("decoded problem fails to encode: %v\ninput: %q", err, data)
		}
		p2, err := DecodeProblem(c1)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v\ncanonical: %s", err, c1)
		}
		c2, err := p2.Canonical()
		if err != nil {
			t.Fatalf("re-decoded problem fails to encode: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical encoding not a fixed point:\nfirst:  %s\nsecond: %s", c1, c2)
		}
		h1, err := p.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := p2.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash changed across canonical round-trip: %s vs %s", h1, h2)
		}
	})
}
