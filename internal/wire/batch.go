package wire

import "fmt"

// MaxBatchItems bounds one batch request: enough to amortize
// round-trips over a real sweep, small enough that a single request
// cannot enqueue more work than a whole queue's worth of singles.
const MaxBatchItems = 256

// BatchRequest is POST /v1/place:batch's body: N independent place
// requests decoded and validated in one round-trip. Items are
// submitted individually — each deduplicates against the result cache
// and coalesces onto in-flight identical work, so a batch of K
// identical problems costs one solve.
type BatchRequest struct {
	Items []Request `json:"items"`
}

// Validate checks batch-level invariants; per-item validation happens
// in DecodeBatchRequest (and again at submission).
func (b *BatchRequest) Validate() error {
	if len(b.Items) == 0 {
		return fmt.Errorf("wire: batch with no items")
	}
	if len(b.Items) > MaxBatchItems {
		return fmt.Errorf("wire: batch of %d items exceeds the limit of %d", len(b.Items), MaxBatchItems)
	}
	return nil
}

// DecodeBatchRequest strictly parses a batch, then validates and
// normalizes every item. One invalid item fails the whole batch with
// its index — all-or-nothing keeps partial-submission bookkeeping off
// the client.
func DecodeBatchRequest(data []byte) (*BatchRequest, error) {
	var b BatchRequest
	if err := decodeStrict(data, &b); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	for i := range b.Items {
		if err := b.Items[i].Validate(); err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
		b.Items[i].Problem.Normalize()
		b.Items[i].Options.Normalize()
	}
	return &b, nil
}
