// Package render draws placements (and optionally routed nets) as
// standalone SVG documents, for inspecting the layouts the placers
// produce. Colors are assigned per module deterministically; symmetry
// axes can be overlaid as dashed lines. ChartSVG (chart.go) renders a
// solve's flight recording — cost trajectories, acceptance rates and
// replica exchanges — for cmd/placetrace.
package render

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/geom"
	"repro/internal/route"
)

// Options configure a drawing.
type Options struct {
	// Scale multiplies placement units to SVG user units (default 4).
	Scale float64
	// Axes2 lists doubled x coordinates of symmetry axes to overlay.
	Axes2 []int
	// Paths are routed nets to draw over the modules.
	Paths []route.Path
	// Margin in placement units around the bounding box (default 2).
	Margin int
}

// SVG writes the placement as an SVG document.
func SVG(w io.Writer, p geom.Placement, opt Options) error {
	scale := opt.Scale
	if scale <= 0 {
		scale = 4
	}
	margin := opt.Margin
	if margin <= 0 {
		margin = 2
	}
	bb := p.BBox()
	x0, y0 := bb.X-margin, bb.Y-margin
	width := float64(bb.W+2*margin) * scale
	height := float64(bb.H+2*margin) * scale
	// SVG y grows downward; flip so placement y grows upward.
	toX := func(x int) float64 { return float64(x-x0) * scale }
	toY := func(y int) float64 { return height - float64(y-y0)*scale }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	names := p.Names()
	sort.Strings(names)
	for _, name := range names {
		r := p[name]
		fmt.Fprintf(w,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black" stroke-width="1"/>`+"\n",
			toX(r.X), toY(r.Y2()), float64(r.W)*scale, float64(r.H)*scale, colorFor(name))
		fmt.Fprintf(w,
			`<text x="%.1f" y="%.1f" font-size="%.1f" text-anchor="middle" dominant-baseline="middle">%s</text>`+"\n",
			toX(r.X)+float64(r.W)*scale/2, toY(r.Y)-float64(r.H)*scale/2, 3*scale, name)
	}
	for _, path := range opt.Paths {
		for _, c := range path.Cells {
			fmt.Fprintf(w,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.7"/>`+"\n",
				toX(c.X), toY(c.Y+1), scale, scale, colorFor("net:"+path.Net))
		}
	}
	for _, a2 := range opt.Axes2 {
		x := (float64(a2)/2 - float64(x0)) * scale
		fmt.Fprintf(w,
			`<line x1="%.1f" y1="0" x2="%.1f" y2="%.0f" stroke="red" stroke-dasharray="4,3" stroke-width="1"/>`+"\n",
			x, x, height)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// colorFor assigns a deterministic pastel color per name.
func colorFor(name string) string {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	r := 128 + (v>>16)&0x7f
	g := 128 + (v>>8)&0x7f
	b := 128 + v&0x7f
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}
