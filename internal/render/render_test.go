package render

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
)

func TestSVGContainsModules(t *testing.T) {
	p := geom.Placement{
		"A": geom.NewRect(0, 0, 10, 10),
		"B": geom.NewRect(10, 0, 5, 20),
	}
	var b strings.Builder
	if err := SVG(&b, p, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, name := range []string{">A<", ">B<"} {
		if !strings.Contains(out, name) {
			t.Fatalf("module label %s missing", name)
		}
	}
	// Two module rects plus background.
	if strings.Count(out, "<rect") < 3 {
		t.Fatal("missing rectangles")
	}
}

func TestSVGWithAxisAndPaths(t *testing.T) {
	p := geom.Placement{"A": geom.NewRect(0, 0, 4, 4)}
	var b strings.Builder
	err := SVG(&b, p, Options{
		Axes2: []int{8},
		Paths: []route.Path{{Net: "n", Cells: []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "stroke-dasharray") {
		t.Fatal("axis line missing")
	}
	if strings.Count(out, "fill-opacity") != 2 {
		t.Fatal("routed cells missing")
	}
}

func TestColorDeterministic(t *testing.T) {
	if colorFor("X") != colorFor("X") {
		t.Fatal("color not deterministic")
	}
	if colorFor("X") == colorFor("Y") {
		t.Fatal("distinct names should (almost surely) differ")
	}
}
