package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/wire"
)

func chartTrace() *wire.Trace {
	return &wire.Trace{
		Version: wire.Version, Method: "seqpair", Capacity: 2048,
		Events: []wire.TraceEvent{
			{Kind: wire.TraceKindStage, Worker: 0, Stage: 1, Temp: 10, Best: 90, Cur: 95, Moves: 40, Accepted: 30},
			{Kind: wire.TraceKindStage, Worker: 1, Stage: 1, Temp: 35, Best: 98, Cur: 99, Moves: 40, Accepted: 38},
			{Kind: wire.TraceKindExchange, Worker: 0, Stage: 2, Temp: 10, Cur: 95, Peer: 1, PeerTemp: 35, PeerCost: 99, Accept: true},
			{Kind: wire.TraceKindStage, Worker: 0, Stage: 2, Temp: 9, Best: 80, Cur: 85, Moves: 80, Accepted: 50},
			{Kind: wire.TraceKindStage, Worker: 1, Stage: 2, Temp: 31.5, Best: 95, Cur: 97, Moves: 80, Accepted: 74},
		},
	}
}

func TestChartSVGContents(t *testing.T) {
	var buf bytes.Buffer
	if err := ChartSVG(&buf, chartTrace()); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("output is not an SVG document")
	}
	// Two rungs, three series each (best, current, acceptance).
	if n := strings.Count(svg, "<polyline"); n != 6 {
		t.Fatalf("%d polylines, want 6 (best/cur/accept × 2 rungs)", n)
	}
	// One exchange attempt, accepted → filled circle (not fill="none").
	if n := strings.Count(svg, "<circle"); n != 1 {
		t.Fatalf("%d exchange markers, want 1", n)
	}
	if strings.Contains(svg, `<circle cx="`) && strings.Contains(svg, `r="3" fill="none"`) {
		t.Fatal("accepted exchange rendered as unfilled marker")
	}
	for _, want := range []string{"rung 0", "rung 1", "seqpair", "acceptance rate"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestChartSVGDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := ChartSVG(&a, chartTrace()); err != nil {
		t.Fatal(err)
	}
	if err := ChartSVG(&b, chartTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chart of the same trace differs between renders")
	}
}

func TestChartSVGRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ChartSVG(&buf, &wire.Trace{Version: wire.Version, Method: "seqpair"}); err == nil {
		t.Fatal("empty trace rendered without error")
	}
	if err := ChartSVG(&buf, nil); err == nil {
		t.Fatal("nil trace rendered without error")
	}
}
