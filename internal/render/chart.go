package render

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/wire"
)

// chart layout constants: a fixed 840×560 canvas with a cost panel on
// top, an acceptance-rate panel below it, and a legend strip.
const (
	chartW       = 840.0
	chartCostH   = 300.0
	chartAccH    = 130.0
	chartMarginL = 64.0
	chartMarginR = 16.0
	chartMarginT = 28.0
	chartGap     = 44.0
	chartLegendH = 30.0
)

// chartSeries is one rung's stage history, reassembled from the flat
// event list.
type chartSeries struct {
	worker int
	stages []int
	best   []float64
	cur    []float64
	accept []float64 // per-stage acceptance rate, from the cumulative counters
	moves  []int64
	accCum []int64
}

// ChartSVG renders a flight recording as a standalone SVG chart: the
// top panel plots each rung's best (solid) and current (faint) cost
// against the stage number, with replica-exchange attempts marked on
// the colder rung's trajectory (filled when accepted); the bottom
// panel plots each rung's per-stage move acceptance rate, the
// annealer's cooling made visible. Returns an error when the trace
// has no stage events to plot.
func ChartSVG(w io.Writer, tr *wire.Trace) error {
	if tr == nil {
		return fmt.Errorf("render: nil trace")
	}
	byWorker := map[int]*chartSeries{}
	maxStage := 0
	minCost, maxCost := math.Inf(1), math.Inf(-1)
	for _, e := range tr.Events {
		if e.Kind != wire.TraceKindStage {
			continue
		}
		s := byWorker[e.Worker]
		if s == nil {
			s = &chartSeries{worker: e.Worker}
			byWorker[e.Worker] = s
		}
		// Acceptance counters are cumulative; the per-stage rate is the
		// delta over this stage's moves.
		var prevMoves, prevAcc int64
		if n := len(s.moves); n > 0 {
			prevMoves, prevAcc = s.moves[n-1], s.accCum[n-1]
		}
		rate := 0.0
		if dm := e.Moves - prevMoves; dm > 0 {
			rate = float64(e.Accepted-prevAcc) / float64(dm)
		}
		s.stages = append(s.stages, e.Stage)
		s.best = append(s.best, e.Best)
		s.cur = append(s.cur, e.Cur)
		s.accept = append(s.accept, rate)
		s.moves = append(s.moves, e.Moves)
		s.accCum = append(s.accCum, e.Accepted)
		if e.Stage > maxStage {
			maxStage = e.Stage
		}
		for _, v := range []float64{e.Best, e.Cur} {
			if v < minCost {
				minCost = v
			}
			if v > maxCost {
				maxCost = v
			}
		}
	}
	if len(byWorker) == 0 {
		return fmt.Errorf("render: trace has no stage events to chart")
	}
	if maxStage < 1 {
		maxStage = 1
	}
	if maxCost <= minCost {
		maxCost = minCost + 1
	}

	workers := make([]int, 0, len(byWorker))
	for k := range byWorker {
		workers = append(workers, k)
	}
	sort.Ints(workers)

	height := chartMarginT + chartCostH + chartGap + chartAccH + chartLegendH
	plotW := chartW - chartMarginL - chartMarginR
	toX := func(stage int) float64 {
		return chartMarginL + plotW*float64(stage)/float64(maxStage)
	}
	costY := func(c float64) float64 {
		return chartMarginT + chartCostH*(1-(c-minCost)/(maxCost-minCost))
	}
	accTop := chartMarginT + chartCostH + chartGap
	accY := func(r float64) float64 { return accTop + chartAccH*(1-r) }

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		chartW, height, chartW, height)
	p(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	p(`<text x="%.1f" y="%.1f" font-size="13" font-family="sans-serif">cost by stage — %s (capacity %d, dropped %d)</text>`+"\n",
		chartMarginL, chartMarginT-10, tr.Method, tr.Capacity, tr.Dropped)

	// Panel frames and extremal tick labels.
	p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		chartMarginL, chartMarginT, plotW, chartCostH)
	p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		chartMarginL, accTop, plotW, chartAccH)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">%.4g</text>`+"\n",
		chartMarginL-4, chartMarginT+10, maxCost)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">%.4g</text>`+"\n",
		chartMarginL-4, chartMarginT+chartCostH, minCost)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">1.0</text>`+"\n",
		chartMarginL-4, accTop+10)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">0.0</text>`+"\n",
		chartMarginL-4, accTop+chartAccH)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">stage %d</text>`+"\n",
		chartW-chartMarginR, accTop+chartAccH+14, maxStage)
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">acceptance rate</text>`+"\n",
		chartMarginL, accTop-6)

	polyline := func(xs []int, ys []float64, toY func(float64) float64, color string, width float64, opacity float64) {
		if len(xs) == 0 {
			return
		}
		pts := ""
		for i := range xs {
			pts += fmt.Sprintf("%.1f,%.1f ", toX(xs[i]), toY(ys[i]))
		}
		p(`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="%.2f"/>`+"\n",
			pts, color, width, opacity)
	}

	for _, k := range workers {
		s := byWorker[k]
		color := colorFor(fmt.Sprintf("rung:%d", k))
		polyline(s.stages, s.cur, costY, color, 1, 0.35)
		polyline(s.stages, s.best, costY, color, 2, 1)
		polyline(s.stages, s.accept, accY, color, 1.5, 1)
	}

	// Exchange attempts, marked at the colder rung's pre-swap cost:
	// filled when the Metropolis test accepted the swap.
	for _, e := range tr.Events {
		if e.Kind != wire.TraceKindExchange {
			continue
		}
		fill := "none"
		if e.Accept {
			fill = colorFor(fmt.Sprintf("rung:%d", e.Worker))
		}
		p(`<circle cx="%.1f" cy="%.1f" r="3" fill="%s" stroke="#333" stroke-width="0.8"/>`+"\n",
			toX(e.Stage), costY(clampCost(e.Cur, minCost, maxCost)), fill)
	}

	// Legend: one swatch per rung.
	lx := chartMarginL
	ly := accTop + chartAccH + chartLegendH - 6
	for _, k := range workers {
		color := colorFor(fmt.Sprintf("rung:%d", k))
		p(`<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, color)
		p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">rung %d</text>`+"\n", lx+16, ly, k)
		lx += 80
	}
	p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">○ exchange attempt, ● accepted</text>`+"\n", lx, ly)

	p(`</svg>` + "\n")
	return err
}

func clampCost(c, lo, hi float64) float64 {
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}
