// Package constraint models the analog layout constraints of the paper
// (Section III.A, Fig. 3): symmetry groups, common-centroid groups and
// proximity groups, plus the hierarchical constraint trees of Fig. 2 in
// which a symmetric sub-circuit may itself contain common-centroid or
// symmetric sub-circuits.
//
// Every constraint kind comes with a placement validator, so that any
// placer in this repository — stochastic or deterministic, flat or
// hierarchical — can be checked against the same ground truth.
package constraint

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// SymmetryGroup requires pairs of devices to be placed as mirror images
// about a common axis and self-symmetric devices to be centered on it
// (Section II of the paper; Fig. 3(b)). The axis itself is not fixed in
// advance: a placement satisfies the group if *some* axis works.
type SymmetryGroup struct {
	Name     string
	Pairs    [][2]string // (x, sym(x)) pairs
	Selfs    []string    // self-symmetric devices (x == sym(x))
	Vertical bool        // true: vertical axis (mirror in x); false: horizontal
}

// NewVerticalSymmetry returns a symmetry group with a vertical axis.
func NewVerticalSymmetry(name string, pairs [][2]string, selfs ...string) SymmetryGroup {
	return SymmetryGroup{Name: name, Pairs: pairs, Selfs: selfs, Vertical: true}
}

// Members returns all device names in the group, pairs first, sorted
// within each category.
func (g SymmetryGroup) Members() []string {
	var out []string
	for _, p := range g.Pairs {
		out = append(out, p[0], p[1])
	}
	out = append(out, g.Selfs...)
	return out
}

// Size returns the number of devices in the group (2p + s in the
// paper's Lemma).
func (g SymmetryGroup) Size() int { return 2*len(g.Pairs) + len(g.Selfs) }

// Sym returns the symmetric counterpart of the named device and whether
// the device belongs to the group. Self-symmetric devices map to
// themselves.
func (g SymmetryGroup) Sym(name string) (string, bool) {
	for _, p := range g.Pairs {
		if p[0] == name {
			return p[1], true
		}
		if p[1] == name {
			return p[0], true
		}
	}
	for _, s := range g.Selfs {
		if s == name {
			return name, true
		}
	}
	return "", false
}

// Contains reports whether the named device belongs to the group.
func (g SymmetryGroup) Contains(name string) bool {
	_, ok := g.Sym(name)
	return ok
}

// Validate checks structural sanity: no device appears twice, and the
// group is non-empty.
func (g SymmetryGroup) Validate() error {
	if g.Size() == 0 {
		return fmt.Errorf("constraint: symmetry group %q is empty", g.Name)
	}
	seen := map[string]bool{}
	for _, m := range g.Members() {
		if m == "" {
			return fmt.Errorf("constraint: symmetry group %q has empty member name", g.Name)
		}
		if seen[m] {
			return fmt.Errorf("constraint: device %q appears twice in symmetry group %q", m, g.Name)
		}
		seen[m] = true
	}
	return nil
}

// Axis2 returns the doubled axis coordinate implied by the placement,
// derived from the first pair (or first self-symmetric device), and
// whether all members are present in the placement.
func (g SymmetryGroup) Axis2(p geom.Placement) (int, bool) {
	for _, pr := range g.Pairs {
		a, oka := p[pr[0]]
		b, okb := p[pr[1]]
		if !oka || !okb {
			return 0, false
		}
		if g.Vertical {
			return (a.CenterX2() + b.CenterX2()) / 2, true
		}
		return (a.CenterY2() + b.CenterY2()) / 2, true
	}
	for _, s := range g.Selfs {
		r, ok := p[s]
		if !ok {
			return 0, false
		}
		if g.Vertical {
			return r.CenterX2(), true
		}
		return r.CenterY2(), true
	}
	return 0, false
}

// Check reports whether the placement satisfies the symmetry group: a
// single axis exists about which every pair mirrors and every
// self-symmetric device is centered. It returns a descriptive error on
// the first violation.
func (g SymmetryGroup) Check(p geom.Placement) error {
	axis2, ok := g.Axis2(p)
	if !ok {
		return fmt.Errorf("constraint: symmetry group %q: members missing from placement", g.Name)
	}
	for _, pr := range g.Pairs {
		a, b := p[pr[0]], p[pr[1]]
		var good bool
		if g.Vertical {
			good = geom.SymmetricPairAboutX(a, b, axis2)
		} else {
			good = geom.SymmetricPairAboutY(a, b, axis2)
		}
		if !good {
			return fmt.Errorf("constraint: symmetry group %q: pair (%s,%s) not mirrored about axis2=%d",
				g.Name, pr[0], pr[1], axis2)
		}
	}
	for _, s := range g.Selfs {
		r := p[s]
		var good bool
		if g.Vertical {
			good = geom.SelfSymmetricAboutX(r, axis2)
		} else {
			good = geom.SelfSymmetricAboutY(r, axis2)
		}
		if !good {
			return fmt.Errorf("constraint: symmetry group %q: self-symmetric %s not on axis2=%d",
				g.Name, s, axis2)
		}
	}
	return nil
}

// CommonCentroid requires the unit modules of each owning device to
// share one centroid (Fig. 3(a)): typically a current mirror or
// differential pair split into interdigitated units.
type CommonCentroid struct {
	Name  string
	Units map[string][]string // owner device -> its unit module names
}

// Owners returns the owning device names in sorted order.
func (g CommonCentroid) Owners() []string {
	out := make([]string, 0, len(g.Units))
	for o := range g.Units {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Members returns every unit module name in the group.
func (g CommonCentroid) Members() []string {
	var out []string
	for _, o := range g.Owners() {
		out = append(out, g.Units[o]...)
	}
	return out
}

// Validate checks that every owner has at least one unit and no unit is
// shared.
func (g CommonCentroid) Validate() error {
	if len(g.Units) < 2 {
		return fmt.Errorf("constraint: common-centroid group %q needs >= 2 owners", g.Name)
	}
	seen := map[string]bool{}
	for o, units := range g.Units {
		if len(units) == 0 {
			return fmt.Errorf("constraint: common-centroid group %q: owner %q has no units", g.Name, o)
		}
		for _, u := range units {
			if seen[u] {
				return fmt.Errorf("constraint: unit %q in two owners of group %q", u, g.Name)
			}
			seen[u] = true
		}
	}
	return nil
}

// Check reports whether every owner's units share the same centroid.
// Centroids are compared exactly using coordinates scaled by
// 2·lcm-free unit counts: each owner's centroid is the average of its
// unit centers, so we compare sum(center2)·N_other across owners
// pairwise to stay in integers.
func (g CommonCentroid) Check(p geom.Placement) error {
	type sums struct {
		sx, sy int64
		n      int64
	}
	all := map[string]sums{}
	for o, units := range g.Units {
		var s sums
		for _, u := range units {
			r, ok := p[u]
			if !ok {
				return fmt.Errorf("constraint: common-centroid group %q: unit %q missing", g.Name, u)
			}
			s.sx += int64(r.CenterX2())
			s.sy += int64(r.CenterY2())
			s.n++
		}
		all[o] = s
	}
	owners := g.Owners()
	ref := all[owners[0]]
	for _, o := range owners[1:] {
		s := all[o]
		// Compare sx/n == ref.sx/ref.n exactly via cross-multiplication.
		if s.sx*ref.n != ref.sx*s.n || s.sy*ref.n != ref.sy*s.n {
			return fmt.Errorf("constraint: common-centroid group %q: centroid of %q differs from %q",
				g.Name, o, owners[0])
		}
	}
	return nil
}

// Proximity requires a set of modules to form one connected region so
// the sub-circuit can share a well or guard ring (Fig. 3(c)). The
// region need not be rectangular.
type Proximity struct {
	Name    string
	Members []string
}

// Validate checks the group is non-empty with unique members.
func (g Proximity) Validate() error {
	if len(g.Members) == 0 {
		return fmt.Errorf("constraint: proximity group %q is empty", g.Name)
	}
	seen := map[string]bool{}
	for _, m := range g.Members {
		if seen[m] {
			return fmt.Errorf("constraint: device %q appears twice in proximity group %q", m, g.Name)
		}
		seen[m] = true
	}
	return nil
}

// Check reports whether the members form a single edge-connected
// cluster: the adjacency graph where two modules are adjacent if their
// rectangles share a boundary segment of positive length (or overlap)
// must be connected.
func (g Proximity) Check(p geom.Placement) error {
	n := len(g.Members)
	if n == 0 {
		return fmt.Errorf("constraint: proximity group %q is empty", g.Name)
	}
	rects := make([]geom.Rect, n)
	for i, m := range g.Members {
		r, ok := p[m]
		if !ok {
			return fmt.Errorf("constraint: proximity group %q: member %q missing", g.Name, m)
		}
		rects[i] = r
	}
	// Union-find over touching rectangles.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Touching(rects[i], rects[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return fmt.Errorf("constraint: proximity group %q: %q disconnected from %q",
				g.Name, g.Members[i], g.Members[0])
		}
	}
	return nil
}

// Touching reports whether two rectangles overlap or share a boundary
// segment of positive length (corner contact does not count: a shared
// point cannot carry a connected well).
func Touching(a, b geom.Rect) bool {
	if a.Intersects(b) {
		return true
	}
	xOverlap := min(a.X2(), b.X2()) - max(a.X, b.X)
	yOverlap := min(a.Y2(), b.Y2()) - max(a.Y, b.Y)
	// Vertical edge contact: x ranges abut, y ranges overlap.
	if (a.X2() == b.X || b.X2() == a.X) && yOverlap > 0 {
		return true
	}
	// Horizontal edge contact.
	if (a.Y2() == b.Y || b.Y2() == a.Y) && xOverlap > 0 {
		return true
	}
	return false
}

// Set bundles the flat constraints attached to one placement problem.
type Set struct {
	Symmetry       []SymmetryGroup
	CommonCentroid []CommonCentroid
	Proximity      []Proximity
}

// Validate checks every constraint and that no device is claimed by two
// symmetry groups (the paper's groups are disjoint).
func (s *Set) Validate() error {
	seen := map[string]string{}
	for _, g := range s.Symmetry {
		if err := g.Validate(); err != nil {
			return err
		}
		for _, m := range g.Members() {
			if prev, ok := seen[m]; ok {
				return fmt.Errorf("constraint: device %q in symmetry groups %q and %q", m, prev, g.Name)
			}
			seen[m] = g.Name
		}
	}
	for _, g := range s.CommonCentroid {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	for _, g := range s.Proximity {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Check validates a placement against every constraint in the set,
// returning the first violation.
func (s *Set) Check(p geom.Placement) error {
	for _, g := range s.Symmetry {
		if err := g.Check(p); err != nil {
			return err
		}
	}
	for _, g := range s.CommonCentroid {
		if err := g.Check(p); err != nil {
			return err
		}
	}
	for _, g := range s.Proximity {
		if err := g.Check(p); err != nil {
			return err
		}
	}
	return nil
}

// Violations returns all constraint violations (not just the first).
func (s *Set) Violations(p geom.Placement) []error {
	var out []error
	for _, g := range s.Symmetry {
		if err := g.Check(p); err != nil {
			out = append(out, err)
		}
	}
	for _, g := range s.CommonCentroid {
		if err := g.Check(p); err != nil {
			out = append(out, err)
		}
	}
	for _, g := range s.Proximity {
		if err := g.Check(p); err != nil {
			out = append(out, err)
		}
	}
	return out
}
