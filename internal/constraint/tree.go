package constraint

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Kind labels the constraint attached to one node of a layout design
// hierarchy (Fig. 2 of the paper).
type Kind int

// Constraint kinds for hierarchy nodes.
const (
	KindNone           Kind = iota // plain grouping, no constraint
	KindSymmetry                   // (hierarchical) symmetry
	KindCommonCentroid             // common-centroid
	KindProximity                  // (hierarchical) proximity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSymmetry:
		return "symmetry"
	case KindCommonCentroid:
		return "common-centroid"
	case KindProximity:
		return "proximity"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one sub-circuit of a layout design hierarchy. Leaves carry
// device names; inner nodes carry child sub-circuits. A node's
// constraint may reference both its direct devices and its children
// (hierarchical symmetry: "a sub-circuit with the hierarchical symmetry
// constraint may contain some devices together with other sub-circuits").
type Node struct {
	Name     string
	Kind     Kind
	Devices  []string // devices directly owned by this sub-circuit
	Children []*Node  // nested sub-circuits

	// Symmetry payload (Kind == KindSymmetry). Pair and self entries
	// name either direct devices or children of this node; naming a
	// child means the whole sub-circuit participates as one object.
	SymPairs [][2]string
	SymSelfs []string

	// Common-centroid payload (Kind == KindCommonCentroid).
	Units map[string][]string
}

// Child returns the named child node, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ProximityGroups collects, for every proximity node in the subtree,
// its member device names: the node's own devices plus all devices of
// its sub-circuits. Both the flat and the hierarchical placers derive
// their proximity cost groups from this one walker, so they cannot
// drift on what a proximity group means.
func (n *Node) ProximityGroups() [][]string {
	var groups [][]string
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd.Kind == KindProximity {
			members := append([]string{}, nd.Devices...)
			for _, c := range nd.Children {
				members = append(members, c.Leaves()...)
			}
			groups = append(groups, members)
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(n)
	return groups
}

// Leaves returns every device name in the subtree rooted at n, in a
// deterministic (sorted) order.
func (n *Node) Leaves() []string {
	var out []string
	var walk func(m *Node)
	walk = func(m *Node) {
		out = append(out, m.Devices...)
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	sort.Strings(out)
	return out
}

// CountNodes returns the number of nodes in the subtree (including n).
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Depth returns the height of the subtree (a leaf-only node has depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Validate checks the subtree: unique device ownership, constraint
// payloads referencing existing devices/children, and per-kind sanity.
func (n *Node) Validate() error {
	seen := map[string]string{}
	var walk func(m *Node) error
	walk = func(m *Node) error {
		for _, d := range m.Devices {
			if prev, ok := seen[d]; ok {
				return fmt.Errorf("constraint: device %q owned by nodes %q and %q", d, prev, m.Name)
			}
			seen[d] = m.Name
		}
		local := map[string]bool{}
		for _, d := range m.Devices {
			local[d] = true
		}
		for _, c := range m.Children {
			if local[c.Name] {
				return fmt.Errorf("constraint: node %q has device and child both named %q", m.Name, c.Name)
			}
			local[c.Name] = true
		}
		switch m.Kind {
		case KindSymmetry:
			if len(m.SymPairs) == 0 && len(m.SymSelfs) == 0 {
				return fmt.Errorf("constraint: symmetry node %q has no pairs or selfs", m.Name)
			}
			for _, p := range m.SymPairs {
				if !local[p[0]] || !local[p[1]] {
					return fmt.Errorf("constraint: symmetry node %q references unknown member (%s,%s)",
						m.Name, p[0], p[1])
				}
			}
			for _, s := range m.SymSelfs {
				if !local[s] {
					return fmt.Errorf("constraint: symmetry node %q references unknown member %s", m.Name, s)
				}
			}
		case KindCommonCentroid:
			if len(m.Units) < 2 {
				return fmt.Errorf("constraint: common-centroid node %q needs >= 2 owners", m.Name)
			}
			for o, units := range m.Units {
				if len(units) == 0 {
					return fmt.Errorf("constraint: common-centroid node %q: owner %q empty", m.Name, o)
				}
				for _, u := range units {
					if !local[u] {
						return fmt.Errorf("constraint: common-centroid node %q: unknown unit %q", m.Name, u)
					}
				}
			}
		}
		for _, c := range m.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(n)
}

// memberRect resolves a symmetry member of node n — either a direct
// device or a child sub-circuit — to a rectangle in the placement: the
// device rectangle, or the bounding box of the child's leaves.
func (n *Node) memberRect(name string, p geom.Placement) (geom.Rect, []string, error) {
	if c := n.Child(name); c != nil {
		leaves := c.Leaves()
		sub := geom.Placement{}
		for _, l := range leaves {
			r, ok := p[l]
			if !ok {
				return geom.Rect{}, nil, fmt.Errorf("constraint: device %q of sub-circuit %q missing", l, name)
			}
			sub[l] = r
		}
		return sub.BBox(), leaves, nil
	}
	r, ok := p[name]
	if !ok {
		return geom.Rect{}, nil, fmt.Errorf("constraint: device %q missing from placement", name)
	}
	return r, []string{name}, nil
}

// Check validates the placement against every constraint in the
// subtree. Hierarchical symmetry is checked strictly: paired
// sub-circuits must be exact mirror images device-by-device, matching
// the symmetry-island placements of Fig. 4.
func (n *Node) Check(p geom.Placement) error {
	switch n.Kind {
	case KindSymmetry:
		if err := n.checkSymmetry(p); err != nil {
			return err
		}
	case KindCommonCentroid:
		cc := CommonCentroid{Name: n.Name, Units: n.Units}
		if err := cc.Check(p); err != nil {
			return err
		}
	case KindProximity:
		members := append([]string{}, n.Devices...)
		for _, c := range n.Children {
			members = append(members, c.Leaves()...)
		}
		pr := Proximity{Name: n.Name, Members: members}
		if err := pr.Check(p); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := c.Check(p); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) checkSymmetry(p geom.Placement) error {
	// Derive the axis from the first pair or self member (bounding
	// boxes for sub-circuit members), then verify every member.
	axis2, ok := n.symmetryAxis2(p)
	if !ok {
		return fmt.Errorf("constraint: symmetry node %q: cannot derive axis", n.Name)
	}
	for _, pr := range n.SymPairs {
		ra, la, err := n.memberRect(pr[0], p)
		if err != nil {
			return err
		}
		rb, lb, err := n.memberRect(pr[1], p)
		if err != nil {
			return err
		}
		if !geom.SymmetricPairAboutX(ra, rb, axis2) {
			return fmt.Errorf("constraint: symmetry node %q: pair (%s,%s) outlines not mirrored",
				n.Name, pr[0], pr[1])
		}
		// Sub-circuit pairs must mirror device-by-device. The two leaf
		// lists correspond by construction order; we instead check
		// set-wise: every mirrored rectangle of A must appear in B.
		if len(la) > 1 || len(lb) > 1 {
			if err := mirroredSetEqual(p, la, lb, axis2); err != nil {
				return fmt.Errorf("constraint: symmetry node %q pair (%s,%s): %v",
					n.Name, pr[0], pr[1], err)
			}
		}
	}
	for _, s := range n.SymSelfs {
		r, leaves, err := n.memberRect(s, p)
		if err != nil {
			return err
		}
		if !geom.SelfSymmetricAboutX(r, axis2) {
			return fmt.Errorf("constraint: symmetry node %q: self member %q off axis", n.Name, s)
		}
		// A self-symmetric sub-circuit must itself be mirror-symmetric.
		if len(leaves) > 1 {
			if err := mirroredSetEqual(p, leaves, leaves, axis2); err != nil {
				return fmt.Errorf("constraint: symmetry node %q self member %q: %v", n.Name, s, err)
			}
		}
	}
	return nil
}

func (n *Node) symmetryAxis2(p geom.Placement) (int, bool) {
	for _, pr := range n.SymPairs {
		ra, _, errA := n.memberRect(pr[0], p)
		rb, _, errB := n.memberRect(pr[1], p)
		if errA != nil || errB != nil {
			return 0, false
		}
		return (ra.CenterX2() + rb.CenterX2()) / 2, true
	}
	for _, s := range n.SymSelfs {
		r, _, err := n.memberRect(s, p)
		if err != nil {
			return 0, false
		}
		return r.CenterX2(), true
	}
	return 0, false
}

// mirroredSetEqual checks that mirroring every rectangle of la about
// the axis yields exactly the multiset of rectangles of lb.
func mirroredSetEqual(p geom.Placement, la, lb []string, axis2 int) error {
	count := map[geom.Rect]int{}
	for _, b := range lb {
		count[p[b]]++
	}
	for _, a := range la {
		m := p[a].MirrorX(axis2)
		if count[m] == 0 {
			return fmt.Errorf("mirror of %q (%v) has no counterpart", a, m)
		}
		count[m]--
	}
	return nil
}
