package constraint

import (
	"fmt"

	"repro/internal/geom"
)

// InterdigitationPattern returns the classic two-device common-centroid
// unit pattern of Fig. 3(a) for nA units of device A and nB units of
// device B arranged in the given number of rows. The returned matrix
// holds 'A' and 'B' labels row by row (row 0 at the bottom); the
// pattern is point-symmetric about the array center, which guarantees
// the common-centroid property for equal-size units.
//
// It returns an error when the units cannot fill the rows evenly or
// when a point-symmetric arrangement is impossible (odd counts with an
// odd grid).
func InterdigitationPattern(nA, nB, rows int) ([][]byte, error) {
	total := nA + nB
	if rows <= 0 || total == 0 || total%rows != 0 {
		return nil, fmt.Errorf("constraint: %d units do not fill %d rows", total, rows)
	}
	cols := total / rows
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
	}
	// Fill half the cells (plus the center cell when the grid is odd)
	// greedily alternating A/B, then mirror through the center. Each
	// placed pair (cell, point-mirror) consumes two units of one
	// device, so odd unit counts only work if the grid has a center
	// cell available for the device with the odd count.
	remA, remB := nA, nB
	cells := rows * cols
	half := cells / 2
	// Center cell (odd grid): must take a device with an odd count.
	if cells%2 == 1 {
		r, c := rows/2, cols/2
		switch {
		case remA%2 == 1:
			grid[r][c] = 'A'
			remA--
		case remB%2 == 1:
			grid[r][c] = 'B'
			remB--
		default:
			return nil, fmt.Errorf("constraint: odd grid needs a device with an odd unit count")
		}
	}
	if remA%2 != 0 || remB%2 != 0 {
		return nil, fmt.Errorf("constraint: unit counts %d/%d cannot be point-symmetric on %dx%d",
			nA, nB, rows, cols)
	}
	// Walk the first half of the cells in row-major order, alternating
	// to interdigitate.
	useA := true
	for i := 0; i < half; i++ {
		r, c := i/cols, i%cols
		mr, mc := rows-1-r, cols-1-c
		var lab byte
		switch {
		case remA >= 2 && (useA || remB < 2):
			lab = 'A'
			remA -= 2
		case remB >= 2:
			lab = 'B'
			remB -= 2
		default:
			return nil, fmt.Errorf("constraint: ran out of units")
		}
		useA = !useA
		grid[r][c] = lab
		grid[mr][mc] = lab
	}
	return grid, nil
}

// PatternPlacement converts a label grid (as from
// InterdigitationPattern) into a placement of equal-size unit modules
// (unitW x unitH), naming units <owner><index> with 1-based indices in
// row-major order, e.g. A1, B1, B2, A2... It also returns the
// CommonCentroid constraint describing the group.
func PatternPlacement(grid [][]byte, unitW, unitH int) (geom.Placement, CommonCentroid) {
	p := geom.Placement{}
	cc := CommonCentroid{Name: "cc", Units: map[string][]string{}}
	counts := map[byte]int{}
	for r, row := range grid {
		for c, lab := range row {
			if lab == 0 {
				continue
			}
			counts[lab]++
			name := fmt.Sprintf("%c%d", lab, counts[lab])
			p[name] = geom.NewRect(c*unitW, r*unitH, unitW, unitH)
			owner := string(lab)
			cc.Units[owner] = append(cc.Units[owner], name)
		}
	}
	return p, cc
}
