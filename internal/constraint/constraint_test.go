package constraint

import (
	"testing"

	"repro/internal/geom"
)

func TestSymmetryGroupMembersAndSym(t *testing.T) {
	g := NewVerticalSymmetry("g", [][2]string{{"C", "D"}, {"B", "G"}}, "A", "F")
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
	if s, ok := g.Sym("C"); !ok || s != "D" {
		t.Fatalf("Sym(C) = %q,%v, want D,true", s, ok)
	}
	if s, ok := g.Sym("G"); !ok || s != "B" {
		t.Fatalf("Sym(G) = %q,%v, want B,true", s, ok)
	}
	if s, ok := g.Sym("A"); !ok || s != "A" {
		t.Fatalf("Sym(A) = %q,%v, want A,true", s, ok)
	}
	if _, ok := g.Sym("Z"); ok {
		t.Fatal("Sym(Z) should not be in group")
	}
	if !g.Contains("F") || g.Contains("E") {
		t.Fatal("Contains wrong")
	}
}

func TestSymmetryGroupValidate(t *testing.T) {
	good := NewVerticalSymmetry("g", [][2]string{{"A", "B"}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid group rejected: %v", err)
	}
	dup := NewVerticalSymmetry("g", [][2]string{{"A", "B"}, {"B", "C"}})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate member must be rejected")
	}
	empty := SymmetryGroup{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty group must be rejected")
	}
}

// Fig. 3(b)-style check: a hand-built symmetric placement passes, a
// perturbed one fails.
func TestSymmetryGroupCheck(t *testing.T) {
	g := NewVerticalSymmetry("g", [][2]string{{"C", "D"}}, "E")
	// Axis at x = 10 (axis2 = 20).
	p := geom.Placement{
		"C": geom.NewRect(2, 0, 4, 6),  // centerX2 = 8
		"D": geom.NewRect(14, 0, 4, 6), // centerX2 = 32
		"E": geom.NewRect(8, 10, 4, 4), // centerX2 = 20
	}
	if err := g.Check(p); err != nil {
		t.Fatalf("symmetric placement rejected: %v", err)
	}
	p["D"] = p["D"].Translate(1, 0)
	if err := g.Check(p); err == nil {
		t.Fatal("shifted pair must fail")
	}
	p["D"] = geom.NewRect(14, 0, 4, 6)
	p["E"] = p["E"].Translate(1, 0)
	if err := g.Check(p); err == nil {
		t.Fatal("off-axis self-symmetric must fail")
	}
	delete(p, "E")
	if err := g.Check(p); err == nil {
		t.Fatal("missing member must fail")
	}
}

func TestHorizontalSymmetry(t *testing.T) {
	g := SymmetryGroup{Name: "h", Pairs: [][2]string{{"A", "B"}}, Vertical: false}
	p := geom.Placement{
		"A": geom.NewRect(0, 2, 4, 6),
		"B": geom.NewRect(0, 12, 4, 6),
	}
	if err := g.Check(p); err != nil {
		t.Fatalf("horizontally symmetric placement rejected: %v", err)
	}
	p["B"] = p["B"].Translate(1, 0)
	if err := g.Check(p); err == nil {
		t.Fatal("x-shifted pair must fail horizontal symmetry")
	}
}

func TestCommonCentroidCheck(t *testing.T) {
	// Fig. 3(a): A1 B2 B3 A4 / B1 A2 A3 B4 with equal unit sizes has a
	// common centroid.
	p := geom.Placement{
		"A1": geom.NewRect(0, 10, 10, 10),
		"B2": geom.NewRect(10, 10, 10, 10),
		"B3": geom.NewRect(20, 10, 10, 10),
		"A4": geom.NewRect(30, 10, 10, 10),
		"B1": geom.NewRect(0, 0, 10, 10),
		"A2": geom.NewRect(10, 0, 10, 10),
		"A3": geom.NewRect(20, 0, 10, 10),
		"B4": geom.NewRect(30, 0, 10, 10),
	}
	g := CommonCentroid{
		Name: "cm",
		Units: map[string][]string{
			"A": {"A1", "A2", "A3", "A4"},
			"B": {"B1", "B2", "B3", "B4"},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.Check(p); err != nil {
		t.Fatalf("common-centroid pattern rejected: %v", err)
	}
	// Swapping one A unit off-pattern breaks the centroid.
	p["A4"] = geom.NewRect(40, 10, 10, 10)
	if err := g.Check(p); err == nil {
		t.Fatal("broken pattern must fail")
	}
}

func TestCommonCentroidValidate(t *testing.T) {
	if err := (CommonCentroid{Name: "x", Units: map[string][]string{"A": {"A1"}}}).Validate(); err == nil {
		t.Fatal("single owner must be rejected")
	}
	if err := (CommonCentroid{Name: "x", Units: map[string][]string{"A": {}, "B": {"B1"}}}).Validate(); err == nil {
		t.Fatal("empty owner must be rejected")
	}
	if err := (CommonCentroid{Name: "x", Units: map[string][]string{"A": {"U"}, "B": {"U"}}}).Validate(); err == nil {
		t.Fatal("shared unit must be rejected")
	}
}

func TestProximityCheck(t *testing.T) {
	g := Proximity{Name: "p", Members: []string{"E1", "E2", "E3"}}
	// L-shaped connected cluster (Fig. 3(c) is non-rectangular).
	p := geom.Placement{
		"E1": geom.NewRect(0, 0, 10, 10),
		"E2": geom.NewRect(10, 0, 10, 10), // touches E1's right edge
		"E3": geom.NewRect(0, 10, 10, 5),  // touches E1's top edge
	}
	if err := g.Check(p); err != nil {
		t.Fatalf("connected cluster rejected: %v", err)
	}
	p["E3"] = geom.NewRect(100, 100, 10, 5)
	if err := g.Check(p); err == nil {
		t.Fatal("disconnected member must fail")
	}
	// Corner-only contact is not connected.
	p["E3"] = geom.NewRect(20, 10, 10, 5) // touches E2 only at corner (20,10)
	if err := g.Check(p); err == nil {
		t.Fatal("corner contact must not count as connected")
	}
}

func TestTouching(t *testing.T) {
	a := geom.NewRect(0, 0, 10, 10)
	cases := []struct {
		b    geom.Rect
		want bool
	}{
		{geom.NewRect(10, 0, 5, 10), true},  // right edge full
		{geom.NewRect(10, 5, 5, 10), true},  // right edge partial
		{geom.NewRect(10, 10, 5, 5), false}, // corner only
		{geom.NewRect(0, 10, 10, 5), true},  // top edge
		{geom.NewRect(11, 0, 5, 10), false}, // gap
		{geom.NewRect(5, 5, 10, 10), true},  // overlap
		{geom.NewRect(-5, 10, 4, 5), false}, // top edge but no x overlap
	}
	for _, c := range cases {
		if got := Touching(a, c.b); got != c.want {
			t.Errorf("Touching(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestSetValidateAndCheck(t *testing.T) {
	s := &Set{
		Symmetry: []SymmetryGroup{
			NewVerticalSymmetry("g1", [][2]string{{"A", "B"}}),
		},
		Proximity: []Proximity{{Name: "p1", Members: []string{"A", "B"}}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := geom.Placement{
		"A": geom.NewRect(0, 0, 4, 4),
		"B": geom.NewRect(4, 0, 4, 4),
	}
	if err := s.Check(p); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	p["B"] = geom.NewRect(4, 1, 4, 4)
	if errs := s.Violations(p); len(errs) != 1 {
		t.Fatalf("Violations = %v, want exactly 1 (symmetry)", errs)
	}
	// Overlapping symmetry groups are invalid.
	s.Symmetry = append(s.Symmetry, NewVerticalSymmetry("g2", [][2]string{{"B", "C"}}))
	if err := s.Validate(); err == nil {
		t.Fatal("overlapping symmetry groups must be rejected")
	}
}

func TestInterdigitationPattern(t *testing.T) {
	grid, err := InterdigitationPattern(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 4 {
		t.Fatalf("grid shape %dx%d, want 2x4", len(grid), len(grid[0]))
	}
	// Point symmetry: grid[r][c] == grid[R-1-r][C-1-c].
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if grid[r][c] != grid[1-r][3-c] {
				t.Fatalf("grid not point-symmetric at (%d,%d)", r, c)
			}
		}
	}
	// Count labels.
	nA, nB := 0, 0
	for _, row := range grid {
		for _, l := range row {
			switch l {
			case 'A':
				nA++
			case 'B':
				nB++
			}
		}
	}
	if nA != 4 || nB != 4 {
		t.Fatalf("counts A=%d B=%d, want 4/4", nA, nB)
	}
}

func TestInterdigitationPatternErrors(t *testing.T) {
	if _, err := InterdigitationPattern(3, 4, 2); err == nil {
		t.Fatal("7 units in 2 rows must fail")
	}
	if _, err := InterdigitationPattern(2, 2, 0); err == nil {
		t.Fatal("zero rows must fail")
	}
	if _, err := InterdigitationPattern(4, 2, 2); err == nil {
		// 6 units, 2 rows x 3 cols = even cell count, both even: fine
		// actually 4+2=6, 2 rows of 3. Both counts even -> should work.
		t.Log("4,2,2 worked or failed; verifying explicitly below")
	}
	grid, err := InterdigitationPattern(4, 2, 2)
	if err != nil {
		t.Fatalf("4A+2B over 2x3: %v", err)
	}
	p, cc := PatternPlacement(grid, 10, 10)
	if err := cc.Check(p); err != nil {
		t.Fatalf("generated pattern violates common centroid: %v", err)
	}
}

// Property: every successfully generated pattern satisfies the
// common-centroid constraint when realized with equal unit sizes.
func TestPatternAlwaysCommonCentroid(t *testing.T) {
	for nA := 1; nA <= 6; nA++ {
		for nB := 1; nB <= 6; nB++ {
			for rows := 1; rows <= 3; rows++ {
				grid, err := InterdigitationPattern(nA, nB, rows)
				if err != nil {
					continue
				}
				p, cc := PatternPlacement(grid, 7, 5)
				if err := cc.Validate(); err != nil {
					t.Fatalf("nA=%d nB=%d rows=%d: invalid constraint: %v", nA, nB, rows, err)
				}
				if err := cc.Check(p); err != nil {
					t.Errorf("nA=%d nB=%d rows=%d: %v", nA, nB, rows, err)
				}
				if !p.Legal() {
					t.Errorf("nA=%d nB=%d rows=%d: overlapping units", nA, nB, rows)
				}
			}
		}
	}
}

func TestNodeLeavesAndCounts(t *testing.T) {
	tree := &Node{
		Name: "top",
		Children: []*Node{
			{Name: "s1", Devices: []string{"A", "B"}},
			{Name: "s2", Devices: []string{"C"}, Children: []*Node{
				{Name: "s3", Devices: []string{"D", "E"}},
			}},
		},
		Devices: []string{"X"},
	}
	leaves := tree.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("Leaves = %v, want 6 entries", leaves)
	}
	if tree.CountNodes() != 4 {
		t.Fatalf("CountNodes = %d, want 4", tree.CountNodes())
	}
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tree.Depth())
	}
	if tree.Child("s2") == nil || tree.Child("zz") != nil {
		t.Fatal("Child lookup wrong")
	}
}

func TestNodeValidate(t *testing.T) {
	ok := &Node{
		Name: "top",
		Kind: KindSymmetry,
		Children: []*Node{
			{Name: "L", Devices: []string{"A"}},
			{Name: "R", Devices: []string{"B"}},
		},
		SymPairs: [][2]string{{"L", "R"}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	dupDevice := &Node{
		Name: "top",
		Children: []*Node{
			{Name: "a", Devices: []string{"A"}},
			{Name: "b", Devices: []string{"A"}},
		},
	}
	if err := dupDevice.Validate(); err == nil {
		t.Fatal("device owned twice must be rejected")
	}
	badRef := &Node{Name: "n", Kind: KindSymmetry, SymPairs: [][2]string{{"X", "Y"}}}
	if err := badRef.Validate(); err == nil {
		t.Fatal("unknown symmetry member must be rejected")
	}
	emptySym := &Node{Name: "n", Kind: KindSymmetry, Devices: []string{"A"}}
	if err := emptySym.Validate(); err == nil {
		t.Fatal("symmetry node without pairs must be rejected")
	}
	badCC := &Node{Name: "n", Kind: KindCommonCentroid, Devices: []string{"A"},
		Units: map[string][]string{"A": {"A"}}}
	if err := badCC.Validate(); err == nil {
		t.Fatal("single-owner common-centroid must be rejected")
	}
}

// Fig. 4-style hierarchical symmetry: sub-circuits D and E are a
// symmetric pair inside A; each contains two devices. D's devices
// mirror onto E's.
func TestHierarchicalSymmetryCheck(t *testing.T) {
	tree := &Node{
		Name: "A",
		Kind: KindSymmetry,
		Children: []*Node{
			{Name: "D", Devices: []string{"d1", "d2"}},
			{Name: "E", Devices: []string{"e1", "e2"}},
		},
		SymPairs: [][2]string{{"D", "E"}},
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Axis at x=20 (axis2=40).
	p := geom.Placement{
		"d1": geom.NewRect(0, 0, 6, 10),
		"d2": geom.NewRect(6, 0, 8, 10),
		"e2": geom.NewRect(26, 0, 8, 10), // mirror of d2
		"e1": geom.NewRect(34, 0, 6, 10), // mirror of d1
	}
	if err := tree.Check(p); err != nil {
		t.Fatalf("hierarchically symmetric placement rejected: %v", err)
	}
	// Swap inner devices of E so the outline still mirrors but the
	// interior does not.
	p["e1"], p["e2"] = geom.NewRect(26, 0, 6, 10), geom.NewRect(32, 0, 8, 10)
	if err := tree.Check(p); err == nil {
		t.Fatal("interior mismatch must fail strict hierarchical symmetry")
	}
}

func TestHierarchicalProximityCheck(t *testing.T) {
	tree := &Node{
		Name:    "P",
		Kind:    KindProximity,
		Devices: []string{"x"},
		Children: []*Node{
			{Name: "inner", Devices: []string{"y", "z"}},
		},
	}
	p := geom.Placement{
		"x": geom.NewRect(0, 0, 10, 10),
		"y": geom.NewRect(10, 0, 10, 10),
		"z": geom.NewRect(10, 10, 10, 10),
	}
	if err := tree.Check(p); err != nil {
		t.Fatalf("connected hierarchy rejected: %v", err)
	}
	p["z"] = geom.NewRect(50, 50, 10, 10)
	if err := tree.Check(p); err == nil {
		t.Fatal("disconnected hierarchy must fail")
	}
}

func TestSelfSymmetricSubcircuit(t *testing.T) {
	tree := &Node{
		Name: "S",
		Kind: KindSymmetry,
		Children: []*Node{
			{Name: "M", Devices: []string{"m1", "m2"}},
		},
		SymSelfs: []string{"M"},
	}
	// M straddles axis x=10 (axis2=20) and is internally mirrored.
	p := geom.Placement{
		"m1": geom.NewRect(2, 0, 8, 5),
		"m2": geom.NewRect(10, 0, 8, 5),
	}
	if err := tree.Check(p); err != nil {
		t.Fatalf("self-symmetric sub-circuit rejected: %v", err)
	}
	// Unequal split: outline no longer centered.
	p["m2"] = geom.NewRect(10, 0, 9, 5)
	if err := tree.Check(p); err == nil {
		t.Fatal("asymmetric interior must fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindSymmetry: "symmetry",
		KindCommonCentroid: "common-centroid", KindProximity: "proximity",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestCommonCentroidMembers(t *testing.T) {
	g := CommonCentroid{Name: "cc", Units: map[string][]string{
		"B": {"B1", "B2"},
		"A": {"A1"},
	}}
	m := g.Members()
	if len(m) != 3 || m[0] != "A1" || m[1] != "B1" {
		t.Fatalf("Members = %v, want owner-sorted [A1 B1 B2]", m)
	}
}

func TestAxis2Variants(t *testing.T) {
	// Horizontal-axis group derives the axis from center-Y sums.
	g := SymmetryGroup{Name: "h", Pairs: [][2]string{{"A", "B"}}, Vertical: false}
	p := geom.Placement{
		"A": geom.NewRect(0, 2, 4, 6),
		"B": geom.NewRect(0, 12, 4, 6),
	}
	axis2, ok := g.Axis2(p)
	if !ok || axis2 != 20 {
		t.Fatalf("horizontal Axis2 = %d,%v, want 20,true", axis2, ok)
	}
	// Selfs-only group (horizontal).
	gs := SymmetryGroup{Name: "s", Selfs: []string{"A"}, Vertical: false}
	axis2, ok = gs.Axis2(p)
	if !ok || axis2 != p["A"].CenterY2() {
		t.Fatalf("selfs-only Axis2 = %d,%v", axis2, ok)
	}
	// Missing member.
	if _, ok := g.Axis2(geom.Placement{"A": p["A"]}); ok {
		t.Fatal("Axis2 with missing member must report false")
	}
	// Empty group has no axis.
	if _, ok := (SymmetryGroup{Name: "e"}).Axis2(p); ok {
		t.Fatal("empty group must have no axis")
	}
}

func TestSetCheckAndViolationsAllKinds(t *testing.T) {
	s := &Set{
		Symmetry: []SymmetryGroup{NewVerticalSymmetry("g", [][2]string{{"A", "B"}})},
		CommonCentroid: []CommonCentroid{{
			Name:  "cc",
			Units: map[string][]string{"A": {"A"}, "B": {"B"}},
		}},
		Proximity: []Proximity{{Name: "p", Members: []string{"A", "B"}}},
	}
	// A/B symmetric about x=5 but with distinct centroids and a gap:
	// symmetry passes, common-centroid and proximity fail.
	p := geom.Placement{
		"A": geom.NewRect(0, 0, 2, 2),
		"B": geom.NewRect(8, 0, 2, 2),
	}
	if err := s.Check(p); err == nil {
		t.Fatal("Check must report the first violation")
	}
	errs := s.Violations(p)
	if len(errs) != 2 {
		t.Fatalf("Violations = %v, want centroid + proximity", errs)
	}
	// Bad constraint sets are rejected before checking.
	bad := &Set{CommonCentroid: []CommonCentroid{{Name: "x", Units: map[string][]string{"A": {"A"}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single-owner centroid set must fail Validate")
	}
	bad2 := &Set{Proximity: []Proximity{{Name: "x"}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty proximity set must fail Validate")
	}
	bad3 := &Set{Symmetry: []SymmetryGroup{{Name: "x"}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("empty symmetry group must fail Validate")
	}
}

func TestTreeCheckMissingMembers(t *testing.T) {
	tree := &Node{
		Name: "S",
		Kind: KindSymmetry,
		Children: []*Node{
			{Name: "L", Devices: []string{"a"}},
			{Name: "R", Devices: []string{"b"}},
		},
		SymPairs: [][2]string{{"L", "R"}},
	}
	// Missing device of a sub-circuit member.
	p := geom.Placement{"a": geom.NewRect(0, 0, 2, 2)}
	if err := tree.Check(p); err == nil {
		t.Fatal("missing sub-circuit device must fail")
	}
	// Direct-device symmetry member missing entirely.
	tree2 := &Node{Name: "S", Kind: KindSymmetry,
		Devices: []string{"x", "y"}, SymPairs: [][2]string{{"x", "y"}}}
	if err := tree2.Check(geom.Placement{}); err == nil {
		t.Fatal("missing devices must fail")
	}
	// Common-centroid node check path.
	cc := &Node{Name: "C", Kind: KindCommonCentroid,
		Devices: []string{"u1", "u2", "v1", "v2"},
		Units:   map[string][]string{"u": {"u1", "u2"}, "v": {"v1", "v2"}}}
	good := geom.Placement{
		"u1": geom.NewRect(0, 0, 2, 2), "v1": geom.NewRect(2, 0, 2, 2),
		"v2": geom.NewRect(0, 2, 2, 2), "u2": geom.NewRect(2, 2, 2, 2),
	}
	if err := cc.Check(good); err != nil {
		t.Fatalf("diagonal unit pattern must share centroid: %v", err)
	}
}

func TestSelfSymmetricSubcircuitAxisFromSelf(t *testing.T) {
	// Axis derived from a self member when no pairs exist.
	tree := &Node{
		Name: "S",
		Kind: KindSymmetry,
		Children: []*Node{
			{Name: "M", Devices: []string{"m1"}},
		},
		SymSelfs: []string{"M"},
	}
	p := geom.Placement{"m1": geom.NewRect(0, 0, 4, 4)}
	if err := tree.Check(p); err != nil {
		t.Fatalf("single centered module must satisfy self symmetry: %v", err)
	}
}
