package sizing

import (
	"testing"

	"repro/internal/anneal"
)

// fig10Opts gives the optimizer enough budget to converge to the spec
// boundary deterministically.
func fig10Opts(seed int64) anneal.Options {
	return anneal.Options{Seed: seed, MovesPerStage: 250, MaxStages: 250, StallStages: 60}
}

func runBoth(t *testing.T, seed int64) (nominal, aware *Result) {
	t.Helper()
	var err error
	nominal, err = Run(Problem{Spec: Fig10Spec(), Mode: Nominal, Base: DefaultBase()}, fig10Opts(seed))
	if err != nil {
		t.Fatal(err)
	}
	aware, err = Run(Problem{Spec: Fig10Spec(), Mode: LayoutAware, MaxAspect: 1.3, Base: DefaultBase()}, fig10Opts(seed))
	if err != nil {
		t.Fatal(err)
	}
	return nominal, aware
}

// The Fig. 10 experiment: nominal sizing passes its own (schematic)
// evaluation but fails specs once layout parasitics are extracted;
// layout-aware sizing meets all specs post-extraction with a smaller,
// squarer layout.
func TestFig10Story(t *testing.T) {
	nominal, aware := runBoth(t, 1)

	if len(nominal.ViolationsPre) != 0 {
		t.Fatalf("nominal sizing must satisfy its schematic view, got %v", nominal.ViolationsPre)
	}
	if len(nominal.ViolationsPost) == 0 {
		t.Fatal("nominal sizing must fail specs post-extraction (Fig. 10(a))")
	}
	if len(aware.ViolationsPost) != 0 {
		t.Fatalf("layout-aware sizing must meet all specs post-extraction, got %v", aware.ViolationsPost)
	}
	if aware.Layout.Area() >= nominal.Layout.Area() {
		t.Fatalf("aware layout area %.0f must beat nominal %.0f",
			aware.Layout.Area(), nominal.Layout.Area())
	}
	arN, arA := nominal.Layout.AspectRatio(), aware.Layout.AspectRatio()
	norm := func(a float64) float64 {
		if a < 1 {
			return 1 / a
		}
		return a
	}
	if norm(arA) >= norm(arN) {
		t.Fatalf("aware aspect %.2f must be squarer than nominal %.2f", arA, arN)
	}
}

func TestFig10StoryIsSeedRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-seed Fig. 10 runs in -short mode")
	}
	for _, seed := range []int64{2, 3, 4} {
		nominal, aware := runBoth(t, seed)
		if len(nominal.ViolationsPre) != 0 {
			t.Errorf("seed %d: nominal pre-violations %v", seed, nominal.ViolationsPre)
		}
		if len(nominal.ViolationsPost) == 0 {
			t.Errorf("seed %d: nominal unexpectedly passes post-layout", seed)
		}
		if len(aware.ViolationsPost) != 0 {
			t.Errorf("seed %d: aware post-violations %v", seed, aware.ViolationsPost)
		}
	}
}

func TestExtractionFractionIsModest(t *testing.T) {
	_, aware := runBoth(t, 5)
	if aware.ExtractFraction <= 0 {
		t.Fatal("layout-aware run must spend time in extraction")
	}
	// The paper reports ~17 %; our extraction is analytic, so anything
	// clearly below half the runtime supports "cheap enough for the
	// loop".
	if aware.ExtractFraction > 0.5 {
		t.Fatalf("extraction fraction %.2f implausibly high", aware.ExtractFraction)
	}
}

func TestLayoutAwareRespectsAspectRestriction(t *testing.T) {
	_, aware := runBoth(t, 6)
	ar := aware.Layout.AspectRatio()
	if ar < 1 {
		ar = 1 / ar
	}
	// Soft restriction: small excursions allowed, pathologies not.
	if ar > 2 {
		t.Fatalf("aware aspect ratio %.2f far outside restriction", ar)
	}
}

func TestRunValidatesBase(t *testing.T) {
	base := DefaultBase()
	base.ITail = 0
	if _, err := Run(Problem{Spec: Fig10Spec(), Base: base}, fig10Opts(1)); err == nil {
		t.Fatal("invalid base must fail")
	}
}

func TestDefaultBaseIsReasonable(t *testing.T) {
	if err := DefaultBase().Validate(); err != nil {
		t.Fatal(err)
	}
}
