// Package sizing implements the simulation-based, layout-aware sizing
// flow of Section V (Castro-Lopez et al. [4], Fig. 9): an optimizer
// explores the design space of a folded-cascode OTA (widths, bias
// current and — in layout-aware mode — fold counts), evaluating each
// candidate with the analytic performance model. In layout-aware mode
// every evaluation additionally instantiates the layout template,
// extracts wire parasitics and feeds them back into the evaluation,
// and the cost includes the geometric objectives (area, aspect ratio).
// Nominal mode reproduces the conventional flow: electrical sizing
// with no geometric or parasitic considerations, the layout generated
// only afterwards — the paper's Fig. 10(a) versus 10(b) experiment.
package sizing

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/anneal"
	"repro/internal/extract"
	"repro/internal/mos"
	"repro/internal/perf"
	"repro/internal/template"
)

// Mode selects the sizing flow.
type Mode int

// Sizing modes.
const (
	// Nominal sizes electrically only: no layout in the loop, fold
	// counts left at 1 (layout is generated afterwards, naively).
	Nominal Mode = iota
	// LayoutAware runs template generation + extraction inside the
	// loop and optimizes geometry (folds, area, aspect) concurrently.
	LayoutAware
)

// Problem is one sizing task.
type Problem struct {
	Spec perf.Spec
	Mode Mode
	// MaxAspect bounds height/width (and its inverse) in layout-aware
	// mode; 0 disables the restriction.
	MaxAspect float64
	// Base is the starting design; its L values and supply stay fixed
	// during sizing.
	Base perf.FoldedCascode
}

// Result reports a finished sizing run.
type Result struct {
	Design perf.FoldedCascode
	Layout *template.Instance

	// Pre is the evaluation without layout parasitics (schematic
	// level, junction capacitances only); Post includes the extracted
	// wire parasitics of the generated layout.
	Pre, Post perf.Perf

	ViolationsPre  []string
	ViolationsPost []string

	// ExtractFraction is extraction time / total optimization time —
	// the paper's "only 17 % of the total sizing time" observation.
	ExtractFraction float64
	Elapsed         time.Duration
	Stats           anneal.Stats
}

// timers accumulates instrumentation across the annealing run.
type timers struct {
	extract time.Duration
}

// solution is one candidate design in the annealer.
type solution struct {
	prob *Problem
	tim  *timers
	d    perf.FoldedCascode
	cost float64
}

// specCost turns violations into a smooth penalty: relative shortfall
// per spec entry, heavily weighted so feasibility dominates the
// objective.
func specCost(s perf.Spec, p perf.Perf) float64 {
	c := 0.0
	// A fixed step per violated spec makes feasibility lexically
	// dominant over the power/area objectives (no amount of power
	// saving can buy a violation), while the proportional term still
	// points the search toward feasibility.
	rel := func(want, got float64) {
		if got < want {
			c += 50 + 100*(want-got)/math.Abs(want)
		}
	}
	rel(s.MinGainDB, p.GainDB)
	rel(s.MinGBW, p.GBW)
	rel(s.MinPM, p.PM)
	rel(s.MinSR, p.SR)
	if s.MaxPower > 0 && p.Power > s.MaxPower {
		c += 50 + 100*(p.Power-s.MaxPower)/s.MaxPower
	}
	if !p.OpOK {
		c += 100
	}
	return c
}

func (s *solution) evaluate() {
	switch s.prob.Mode {
	case Nominal:
		// Schematic-level sizing: neither wire nor junction
		// parasitics are visible to the optimizer.
		p, err := s.d.Evaluate(perf.Parasitics{IgnoreJunctions: true})
		if err != nil {
			s.cost = math.Inf(1)
			return
		}
		// Electrical objectives only: meet the spec, minimize power.
		s.cost = specCost(s.prob.Spec, p) + p.Power/1e-4
	case LayoutAware:
		tmpl, foot := template.ForFoldedCascode(s.d)
		inst, err := tmpl.Generate(foot)
		if err != nil {
			s.cost = math.Inf(1)
			return
		}
		t0 := time.Now()
		par := extract.FoldedCascode(inst)
		s.tim.extract += time.Since(t0)
		p, err := s.d.Evaluate(par)
		if err != nil {
			s.cost = math.Inf(1)
			return
		}
		cost := specCost(s.prob.Spec, p) + p.Power/1e-4
		// Geometric objectives: area (µm², normalized) and the aspect
		// restriction.
		cost += inst.Area() / 20000
		if s.prob.MaxAspect > 0 {
			ar := inst.AspectRatio()
			if ar < 1 {
				ar = 1 / ar
			}
			if ar > s.prob.MaxAspect {
				cost += 5 * (ar - s.prob.MaxAspect)
			}
		}
		s.cost = cost
	}
}

// Cost implements anneal.Solution.
func (s *solution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution: scale one width or the bias
// current, or (layout-aware) step one fold count.
func (s *solution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &solution{prob: s.prob, tim: s.tim, d: s.d}
	devs := []*mos.Device{&next.d.In, &next.d.Tail, &next.d.Src, &next.d.CasP, &next.d.CasN, &next.d.Mir}
	nMoves := 7
	if s.prob.Mode == LayoutAware {
		nMoves = 13 // six fold moves in addition
	}
	switch k := rng.Intn(nMoves); {
	case k < 6: // scale a width
		d := devs[k]
		factor := 0.75 + rng.Float64()*0.6
		d.W = clamp(d.W*factor, 2, 600)
		// Folding just tracks legality here (fingers wide enough).
		// Nominal mode never optimizes it — the "layout as an
		// afterthought" flow; layout-aware mode additionally explores
		// fold counts through the dedicated moves below.
		d.Folds = clampFolds(d.W, d.Folds)
	case k == 6: // scale the tail current
		factor := 0.75 + rng.Float64()*0.6
		next.d.ITail = clamp(next.d.ITail*factor, 10e-6, 5e-3)
	default: // step a fold count (layout-aware only)
		d := devs[k-7]
		step := 1
		if rng.Intn(2) == 0 {
			step = -1
		}
		d.Folds = clampFolds(d.W, d.Folds+step)
	}
	next.evaluate()
	return next
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// clampFolds keeps the fold count in [1, 64] with fingers no narrower
// than 0.5 µm.
func clampFolds(w float64, folds int) int {
	if folds < 1 {
		folds = 1
	}
	if folds > 64 {
		folds = 64
	}
	for folds > 1 && w/float64(folds) < 0.5 {
		folds--
	}
	return folds
}

// Run executes the sizing flow and returns the final design with its
// generated layout and pre-/post-extraction evaluations.
func Run(p Problem, opt anneal.Options) (*Result, error) {
	if err := p.Base.Validate(); err != nil {
		return nil, fmt.Errorf("sizing: invalid base design: %v", err)
	}
	start := time.Now()
	tim := &timers{}
	init := &solution{prob: &p, tim: tim, d: p.Base}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*solution)
	elapsed := time.Since(start)

	res := &Result{Design: sol.d, Elapsed: elapsed, Stats: stats}
	// Pre-layout report: what the sizing flow itself saw. Nominal mode
	// saw the junction-free schematic; layout-aware saw junctions (and
	// wires, reported under Post).
	pre, err := sol.d.Evaluate(perf.Parasitics{IgnoreJunctions: p.Mode == Nominal})
	if err != nil {
		return nil, err
	}
	res.Pre = pre
	res.ViolationsPre = p.Spec.Violations(pre)

	tmpl, foot := template.ForFoldedCascode(sol.d)
	inst, err := tmpl.Generate(foot)
	if err != nil {
		return nil, err
	}
	res.Layout = inst
	par := extract.FoldedCascode(inst)
	post, err := sol.d.Evaluate(par)
	if err != nil {
		return nil, err
	}
	res.Post = post
	res.ViolationsPost = p.Spec.Violations(post)
	if elapsed > 0 {
		res.ExtractFraction = float64(tim.extract) / float64(elapsed)
	}
	return res, nil
}

// DefaultBase returns the baseline folded-cascode design used by the
// Fig. 10 experiment.
func DefaultBase() perf.FoldedCascode {
	n, pt := mos.NTech(), mos.PTech()
	return perf.FoldedCascode{
		In:    mos.Device{Tech: n, W: 120, L: 0.7, Folds: 6},
		Tail:  mos.Device{Tech: n, W: 60, L: 1.4, Folds: 4},
		Src:   mos.Device{Tech: pt, W: 160, L: 1.4, Folds: 8},
		CasP:  mos.Device{Tech: pt, W: 120, L: 0.7, Folds: 6},
		CasN:  mos.Device{Tech: n, W: 60, L: 0.7, Folds: 4},
		Mir:   mos.Device{Tech: n, W: 80, L: 1.4, Folds: 4},
		ITail: 200e-6,
		VDD:   3.3,
		CL:    2e-12,
	}
}

// Fig10Spec is the performance specification of the Fig. 10
// experiment ("like dc-gain higher than 50 dB", plus bandwidth, phase
// margin and slew requirements tight enough that ignoring layout
// parasitics is fatal).
func Fig10Spec() perf.Spec {
	return perf.Spec{
		MinGainDB: 55,
		MinGBW:    150e6,
		MinPM:     60,
		MinSR:     50e6,
	}
}
