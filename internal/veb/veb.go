// Package veb implements a van Emde Boas tree: an integer priority
// queue over a bounded universe [0, U) supporting Insert, Delete,
// Contains, Min, Max, Successor and Predecessor in O(log log U) time.
//
// The sequence-pair packing algorithm of Section II of the paper relies
// on "an efficient model of priority queue [26] which entails a
// complexity of O(G·n·log log n) for each code evaluation"; this package
// is that priority queue. Keys are positions in a sequence (0..n-1), so
// the universe is small and the recursive structure is allocated lazily.
package veb

// none is the sentinel for "no element".
const none = -1

// Tree is a van Emde Boas tree over the universe [0, u). The zero value
// is not usable; construct with New.
type Tree struct {
	u        int // universe size (power of two, >= 2)
	min, max int // cached extremes; min is not stored recursively
	summary  *Tree
	clusters []*Tree
	lowBits  uint // log2 of cluster size
	lowMask  int
	n        int // number of stored keys
}

// New returns an empty tree able to store keys in [0, universe).
// A universe below 2 is rounded up to 2.
func New(universe int) *Tree {
	u := 2
	for u < universe {
		u *= 2
	}
	return newSized(u)
}

func newSized(u int) *Tree {
	t := &Tree{u: u, min: none, max: none}
	if u > 2 {
		// Split the bits of a key into high (cluster index) and low
		// (position within cluster) halves.
		bits := uint(0)
		for 1<<bits < u {
			bits++
		}
		t.lowBits = bits / 2
		t.lowMask = 1<<t.lowBits - 1
	}
	return t
}

func (t *Tree) high(x int) int { return x >> t.lowBits }
func (t *Tree) low(x int) int  { return x & t.lowMask }
func (t *Tree) index(h, l int) int {
	return h<<t.lowBits | l
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.n }

// Universe returns the (rounded) universe size.
func (t *Tree) Universe() int { return t.u }

// Min returns the smallest key, or -1 if the tree is empty.
func (t *Tree) Min() int { return t.min }

// Max returns the largest key, or -1 if the tree is empty.
func (t *Tree) Max() int { return t.max }

// Empty reports whether no keys are stored.
func (t *Tree) Empty() bool { return t.min == none }

// Contains reports whether x is stored in the tree.
func (t *Tree) Contains(x int) bool {
	if x < 0 || x >= t.u {
		return false
	}
	for {
		if x == t.min || x == t.max {
			return true
		}
		if t.u == 2 || t.clusters == nil {
			return false
		}
		c := t.clusters[t.high(x)]
		if c == nil {
			return false
		}
		x = t.low(x)
		t = c
	}
}

// Insert adds x to the tree. Inserting a key already present is a
// no-op. Insert panics if x is outside [0, universe).
func (t *Tree) Insert(x int) {
	if x < 0 || x >= t.u {
		panic("veb: key out of universe")
	}
	if t.Contains(x) {
		return
	}
	t.n++
	t.insert(x)
}

func (t *Tree) insert(x int) {
	if t.min == none {
		t.min, t.max = x, x
		return
	}
	if x < t.min {
		t.min, x = x, t.min // lazily push old min down
	}
	if t.u > 2 {
		h, l := t.high(x), t.low(x)
		if t.clusters == nil {
			t.clusters = make([]*Tree, t.u>>t.lowBits)
		}
		if t.clusters[h] == nil {
			t.clusters[h] = newSized(1 << t.lowBits)
		}
		if t.clusters[h].min == none {
			if t.summary == nil {
				t.summary = newSized(t.u >> t.lowBits)
			}
			t.summary.insert(h)
		}
		t.clusters[h].insert(l)
	}
	if x > t.max {
		t.max = x
	}
}

// Delete removes x from the tree. Deleting an absent key is a no-op.
func (t *Tree) Delete(x int) {
	if x < 0 || x >= t.u || !t.Contains(x) {
		return
	}
	t.n--
	t.delete(x)
}

func (t *Tree) delete(x int) {
	if t.min == t.max {
		t.min, t.max = none, none
		return
	}
	if t.u == 2 {
		if x == 0 {
			t.min = 1
		} else {
			t.min = 0
		}
		t.max = t.min
		return
	}
	if x == t.min {
		// Pull the new min up from the first non-empty cluster.
		first := t.summary.min
		x = t.index(first, t.clusters[first].min)
		t.min = x
	}
	h, l := t.high(x), t.low(x)
	t.clusters[h].delete(l)
	if t.clusters[h].min == none {
		// The cluster is kept allocated (only unlinked from the
		// summary) so that a long-lived tree reused across many
		// packing evaluations stops allocating once warm.
		t.summary.delete(h)
	}
	if x == t.max {
		if t.summary == nil || t.summary.min == none {
			t.max = t.min
		} else {
			h := t.summary.max
			t.max = t.index(h, t.clusters[h].max)
		}
	}
}

// Successor returns the smallest stored key strictly greater than x, or
// -1 if none exists. x may be any integer (including negatives).
func (t *Tree) Successor(x int) int {
	if t.min != none && x < t.min {
		return t.min
	}
	if t.min == none || x >= t.max {
		return none
	}
	if t.u == 2 {
		if x < 1 && t.max == 1 {
			return 1
		}
		return none
	}
	h, l := t.high(x), t.low(x)
	if x < 0 {
		h, l = 0, -1
	}
	if h < len(t.clusters) && t.clusters[h] != nil && t.clusters[h].max != none && l < t.clusters[h].max {
		return t.index(h, t.clusters[h].Successor(l))
	}
	nh := t.summary.Successor(h)
	if nh == none {
		return none
	}
	return t.index(nh, t.clusters[nh].min)
}

// Predecessor returns the largest stored key strictly less than x, or
// -1 if none exists.
func (t *Tree) Predecessor(x int) int {
	if t.max != none && x > t.max {
		return t.max
	}
	if t.min == none || x <= t.min {
		return none
	}
	if t.u == 2 {
		if x > 0 && t.min == 0 {
			return 0
		}
		return none
	}
	h, l := t.high(x), t.low(x)
	if x >= t.u {
		h, l = len(t.clusters)-1, t.lowMask+1
	}
	if h < len(t.clusters) && t.clusters[h] != nil && t.clusters[h].min != none && l > t.clusters[h].min {
		return t.index(h, t.clusters[h].Predecessor(l))
	}
	ph := none
	if t.summary != nil {
		ph = t.summary.Predecessor(h)
	}
	if ph == none {
		// Only the lazily-stored min can precede x.
		if x > t.min {
			return t.min
		}
		return none
	}
	return t.index(ph, t.clusters[ph].max)
}

// Clear removes all keys but keeps the recursive cluster structure
// allocated, so a tree reused across packing evaluations reaches a
// steady state with no allocations at all. Cost is proportional to the
// number of clusters ever allocated, not the universe size.
func (t *Tree) Clear() {
	t.min, t.max, t.n = none, none, 0
	if t.summary != nil {
		t.summary.Clear()
	}
	for _, c := range t.clusters {
		if c != nil {
			c.Clear()
		}
	}
}

// Keys returns all stored keys in increasing order. Intended for tests
// and debugging; O(n log log U).
func (t *Tree) Keys() []int {
	var out []int
	for x := t.Min(); x != none; x = t.Successor(x) {
		out = append(out, x)
	}
	return out
}
