package veb

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyTree(t *testing.T) {
	v := New(16)
	if !v.Empty() || v.Len() != 0 {
		t.Fatal("new tree must be empty")
	}
	if v.Min() != -1 || v.Max() != -1 {
		t.Fatal("empty tree extremes must be -1")
	}
	if v.Successor(3) != -1 || v.Predecessor(3) != -1 {
		t.Fatal("empty tree has no successor/predecessor")
	}
	if v.Contains(0) {
		t.Fatal("empty tree contains nothing")
	}
}

func TestInsertContains(t *testing.T) {
	v := New(64)
	keys := []int{5, 1, 63, 0, 32, 33, 17}
	for _, k := range keys {
		v.Insert(k)
	}
	if v.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(keys))
	}
	for _, k := range keys {
		if !v.Contains(k) {
			t.Errorf("Contains(%d) = false, want true", k)
		}
	}
	for _, k := range []int{2, 31, 62, 16} {
		if v.Contains(k) {
			t.Errorf("Contains(%d) = true, want false", k)
		}
	}
	if v.Min() != 0 || v.Max() != 63 {
		t.Fatalf("Min/Max = %d/%d, want 0/63", v.Min(), v.Max())
	}
}

func TestInsertDuplicate(t *testing.T) {
	v := New(8)
	v.Insert(3)
	v.Insert(3)
	if v.Len() != 1 {
		t.Fatalf("Len after duplicate insert = %d, want 1", v.Len())
	}
}

func TestInsertOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert out of universe must panic")
		}
	}()
	New(8).Insert(8)
}

func TestSuccessorPredecessorOrdered(t *testing.T) {
	v := New(128)
	keys := []int{3, 9, 27, 81, 100, 127}
	for _, k := range keys {
		v.Insert(k)
	}
	if got := v.Keys(); !equalInts(got, keys) {
		t.Fatalf("Keys = %v, want %v", got, keys)
	}
	// Walk backwards via Predecessor.
	var back []int
	for x := v.Max(); x != -1; x = v.Predecessor(x) {
		back = append(back, x)
	}
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	if !equalInts(back, keys) {
		t.Fatalf("backward walk = %v, want %v", back, keys)
	}
	if v.Successor(-5) != 3 {
		t.Fatalf("Successor(-5) = %d, want 3", v.Successor(-5))
	}
	if v.Predecessor(1000) != 127 {
		t.Fatalf("Predecessor(1000) = %d, want 127", v.Predecessor(1000))
	}
	if v.Successor(127) != -1 {
		t.Fatal("Successor(max) must be -1")
	}
	if v.Predecessor(3) != -1 {
		t.Fatal("Predecessor(min) must be -1")
	}
}

func TestDelete(t *testing.T) {
	v := New(32)
	for _, k := range []int{1, 2, 3, 20, 30} {
		v.Insert(k)
	}
	v.Delete(3)
	if v.Contains(3) {
		t.Fatal("deleted key still present")
	}
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	v.Delete(1) // delete min
	if v.Min() != 2 {
		t.Fatalf("Min after deleting min = %d, want 2", v.Min())
	}
	v.Delete(30) // delete max
	if v.Max() != 20 {
		t.Fatalf("Max after deleting max = %d, want 20", v.Max())
	}
	v.Delete(7) // absent: no-op
	if v.Len() != 2 {
		t.Fatalf("Len after deleting absent = %d, want 2", v.Len())
	}
	v.Delete(2)
	v.Delete(20)
	if !v.Empty() {
		t.Fatal("tree must be empty after deleting everything")
	}
}

func TestSmallUniverse(t *testing.T) {
	v := New(2)
	v.Insert(0)
	v.Insert(1)
	if v.Min() != 0 || v.Max() != 1 {
		t.Fatal("base-case extremes wrong")
	}
	if v.Successor(0) != 1 || v.Predecessor(1) != 0 {
		t.Fatal("base-case successor/predecessor wrong")
	}
	v.Delete(0)
	if v.Min() != 1 || v.Max() != 1 {
		t.Fatal("base-case delete wrong")
	}
}

func TestUniverseRounding(t *testing.T) {
	v := New(1000)
	if v.Universe() != 1024 {
		t.Fatalf("Universe = %d, want 1024", v.Universe())
	}
	v.Insert(999)
	if !v.Contains(999) {
		t.Fatal("key near universe boundary lost")
	}
}

// Exhaustive differential test against a sorted-slice reference model
// over random operation sequences.
func TestDifferentialAgainstReference(t *testing.T) {
	const universe = 256
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		v := New(universe)
		ref := map[int]bool{}
		for op := 0; op < 2000; op++ {
			k := rng.Intn(universe)
			switch rng.Intn(3) {
			case 0:
				v.Insert(k)
				ref[k] = true
			case 1:
				v.Delete(k)
				delete(ref, k)
			case 2:
				if v.Contains(k) != ref[k] {
					t.Fatalf("trial %d op %d: Contains(%d) mismatch", trial, op, k)
				}
			}
			if op%97 == 0 {
				checkAgainst(t, v, ref)
			}
		}
		checkAgainst(t, v, ref)
	}
}

func checkAgainst(t *testing.T, v *Tree, ref map[int]bool) {
	t.Helper()
	var want []int
	for k := range ref {
		want = append(want, k)
	}
	sort.Ints(want)
	got := v.Keys()
	if !equalInts(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if len(want) == 0 {
		if v.Min() != -1 || v.Max() != -1 {
			t.Fatal("empty extremes wrong")
		}
		return
	}
	if v.Min() != want[0] || v.Max() != want[len(want)-1] {
		t.Fatalf("Min/Max = %d/%d, want %d/%d", v.Min(), v.Max(), want[0], want[len(want)-1])
	}
	if v.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(want))
	}
	// Spot-check successor/predecessor at every stored key and between.
	for _, q := range []int{-1, 0, want[0], want[len(want)-1], 100, 255} {
		wantSucc := -1
		for _, k := range want {
			if k > q {
				wantSucc = k
				break
			}
		}
		if got := v.Successor(q); got != wantSucc {
			t.Fatalf("Successor(%d) = %d, want %d (keys %v)", q, got, wantSucc, want)
		}
		wantPred := -1
		for i := len(want) - 1; i >= 0; i-- {
			if want[i] < q {
				wantPred = want[i]
				break
			}
		}
		if got := v.Predecessor(q); got != wantPred {
			t.Fatalf("Predecessor(%d) = %d, want %d (keys %v)", q, got, wantPred, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkInsertDelete(b *testing.B) {
	const universe = 1 << 16
	v := New(universe)
	rng := rand.New(rand.NewSource(7))
	keys := make([]int, 4096)
	for i := range keys {
		keys[i] = rng.Intn(universe)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		v.Insert(k)
		if i%2 == 1 {
			v.Delete(k)
		}
	}
}

func BenchmarkSuccessor(b *testing.B) {
	const universe = 1 << 16
	v := New(universe)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4096; i++ {
		v.Insert(rng.Intn(universe))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Successor(i % universe)
	}
}
