// Package core is the top of the library: a unified analog placement
// API over the four topological approaches the paper surveys, plus
// drivers that regenerate every table and figure of the evaluation
// (see DESIGN.md for the experiment index).
//
// The four approaches, selected by Method:
//
//   - MethodSeqPair — Section II: simulated annealing over
//     symmetric-feasible sequence-pairs with symmetric packing.
//   - MethodHBStar — Section III: hierarchical placement with
//     HB*-trees and ASF-B*-tree symmetry islands.
//   - MethodDeterministicESF / MethodDeterministicRSF — Section IV:
//     deterministic hierarchically bounded enumeration with enhanced /
//     regular shape functions.
//   - Baselines: MethodBStar (flat B*-tree), MethodTCG (transitive
//     closure graphs [15]), MethodSlicing (normalized Polish
//     expressions), MethodAbsolute (absolute coordinates with overlap
//     penalty).
//
// Section V's layout-aware sizing flow is driven through RunFig10.
package core

import (
	"fmt"
	"time"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/hbstar"
	"repro/internal/place"
	"repro/internal/shapefn"
	"repro/internal/sizing"
	"repro/placer"
)

// Method selects a placement engine.
type Method int

// Placement methods.
const (
	MethodSeqPair Method = iota
	MethodBStar
	MethodHBStar
	MethodSlicing
	MethodAbsolute
	MethodTCG
	MethodDeterministicESF
	MethodDeterministicRSF
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSeqPair:
		return "seqpair"
	case MethodBStar:
		return "bstar"
	case MethodHBStar:
		return "hbstar"
	case MethodSlicing:
		return "slicing"
	case MethodAbsolute:
		return "absolute"
	case MethodTCG:
		return "tcg"
	case MethodDeterministicESF:
		return "esf"
	case MethodDeterministicRSF:
		return "rsf"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod resolves a CLI method name to its Method: the built-in
// engine names plus the deterministic Section IV methods (esf, rsf),
// which have no stochastic engine behind them. Algorithms that exist
// only in the placer registry have no core.Method — core is the
// paper-experiment harness over the built-ins — so callers offering
// registry-external algorithms route them through placer.Solve
// instead. Unknown names fail with the registry's shared
// unknown-algorithm error, so the CLI, the daemon and placer.Solve
// reject a typo with one message.
func ParseMethod(name string) (Method, error) {
	for m := MethodSeqPair; m <= MethodDeterministicRSF; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, placer.ErrUnknownAlgorithm(name)
}

// Objective tunes the composable placement cost (internal/cost) the
// stochastic placers optimize. The zero value keeps every method's
// historical default objective.
type Objective struct {
	// AreaWeight scales the bounding-box area term (0 = default 1).
	AreaWeight float64
	// WireWeight scales HPWL (0 = keep the method's default).
	WireWeight float64
	// OutlineW/OutlineH, when both positive, add a fixed-outline
	// penalty on the bounding box exceeding the target outline.
	OutlineW, OutlineH int
	// OutlineWeight scales that penalty (0 = heuristic default).
	OutlineWeight float64
	// ProxWeight enables the proximity term over the hierarchy's
	// proximity groups for the flat placers (0 = off; the hierarchical
	// placer always enforces proximity through its fragments penalty).
	ProxWeight float64
	// ThermalWeight enables the thermal-mismatch term over symmetry
	// pairs (0 = off); ThermalSigma is the decay length (0 = default).
	ThermalWeight, ThermalSigma float64
}

// OutlineReport describes a placement against a requested fixed
// outline.
type OutlineReport struct {
	W, H             int // requested outline
	ExcessW, ExcessH int // bounding-box excess per dimension (0 = fits)
	Penalty          float64
}

// Fits reports whether the bounding box respects the outline.
func (r *OutlineReport) Fits() bool { return r.ExcessW == 0 && r.ExcessH == 0 }

// PlaceResult is the outcome of PlaceBench.
type PlaceResult struct {
	Method     Method
	Placement  geom.Placement
	Legal      bool
	AreaUsage  float64 // bounding-box area / module area (Table I metric)
	Violations []error // constraint violations, if any
	Runtime    time.Duration
	// Outline reports the final bounding box against the requested
	// fixed outline; nil when the objective requested none.
	Outline *OutlineReport
	// Breakdown decomposes the final cost per objective term (empty
	// for the deterministic methods, which optimize no tunable cost).
	Breakdown []cost.TermValue
}

// PlaceBench places a benchmark circuit with the selected method under
// the default objective. Stochastic methods honor opt; the
// deterministic methods ignore it.
func PlaceBench(b *circuits.Bench, m Method, opt anneal.Options) (*PlaceResult, error) {
	return PlaceBenchObjective(b, m, opt, nil)
}

// PlaceBenchObjective is PlaceBench with an explicit composite
// objective. The deterministic Section IV methods do not optimize a
// tunable cost and only report against the requested outline.
func PlaceBenchObjective(b *circuits.Bench, m Method, opt anneal.Options, obj *Objective) (*PlaceResult, error) {
	start := time.Now()
	if obj == nil {
		obj = &Objective{}
	}
	var pl geom.Placement
	var violations []error
	var breakdown []cost.TermValue

	switch m {
	case MethodSeqPair, MethodBStar, MethodSlicing, MethodAbsolute, MethodTCG:
		prob, err := place.FromBench(b)
		if err != nil {
			return nil, err
		}
		applyObjective(prob, obj)
		var res *place.Result
		switch m {
		case MethodSeqPair:
			res, err = place.SeqPair(prob, opt)
		case MethodBStar:
			prob.Groups = nil // plain B*-tree ignores symmetry
			res, err = place.BStar(prob, opt)
		case MethodSlicing:
			prob.Groups = nil
			res, err = place.Slicing(prob, opt)
		case MethodAbsolute:
			prob.Groups = nil
			res, err = place.Absolute(prob, opt)
		case MethodTCG:
			prob.Groups = nil
			res, err = place.TCG(prob, opt)
		}
		if err != nil {
			return nil, err
		}
		pl = res.Placement
		breakdown = res.Breakdown
		if m == MethodSeqPair {
			violations = prob.ConstraintSet().Violations(pl)
		}
	case MethodHBStar:
		hp := &hbstar.Problem{
			Bench:         b,
			AreaWeight:    obj.AreaWeight,
			WireWeight:    hbstar.DefaultWireWeight,
			OutlineW:      obj.OutlineW,
			OutlineH:      obj.OutlineH,
			OutlineWeight: obj.OutlineWeight,
			ThermalWeight: obj.ThermalWeight,
			ThermalSigma:  obj.ThermalSigma,
		}
		if obj.WireWeight > 0 {
			hp.WireWeight = obj.WireWeight
		}
		res, err := hbstar.Place(hp, opt)
		if err != nil {
			return nil, err
		}
		pl = res.Placement
		breakdown = res.Breakdown
		violations = res.Violations
	case MethodDeterministicESF, MethodDeterministicRSF:
		res, err := deterministic(b, m == MethodDeterministicESF)
		if err != nil {
			return nil, err
		}
		pl = res.Placement
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}

	return &PlaceResult{
		Method:     m,
		Placement:  pl,
		Legal:      pl.Legal(),
		AreaUsage:  pl.AreaUsage(),
		Violations: violations,
		Runtime:    time.Since(start),
		Outline:    outlineReport(pl, obj),
		Breakdown:  breakdown,
	}, nil
}

// applyObjective copies objective tuning onto a flat placement
// problem.
func applyObjective(p *place.Problem, obj *Objective) {
	p.AreaWeight = obj.AreaWeight
	if obj.WireWeight > 0 {
		p.WireWeight = obj.WireWeight
	}
	p.OutlineW, p.OutlineH = obj.OutlineW, obj.OutlineH
	p.OutlineWeight = obj.OutlineWeight
	p.ProxWeight = obj.ProxWeight
	p.ThermalWeight = obj.ThermalWeight
	p.ThermalSigma = obj.ThermalSigma
}

// outlineReport measures a final placement against the requested
// outline (nil when none was requested).
func outlineReport(pl geom.Placement, obj *Objective) *OutlineReport {
	if obj.OutlineW <= 0 || obj.OutlineH <= 0 {
		return nil
	}
	bb := pl.BBox()
	r := &OutlineReport{
		W:       obj.OutlineW,
		H:       obj.OutlineH,
		ExcessW: max(0, bb.W-obj.OutlineW),
		ExcessH: max(0, bb.H-obj.OutlineH),
	}
	ow := obj.OutlineWeight
	if ow == 0 {
		ow = cost.DefaultOutlineWeight(pl.ModuleArea())
	}
	r.Penalty = ow * (float64(r.ExcessW)*float64(r.ExcessW) + float64(r.ExcessH)*float64(r.ExcessH))
	return r
}

// deterministic runs the Section IV placer on a benchmark.
func deterministic(b *circuits.Bench, enhanced bool) (*shapefn.Result, error) {
	p, err := shapefn.NewPlacer(b.Tree, benchDims(b), enhanced)
	if err != nil {
		return nil, err
	}
	return p.Place(b.Tree)
}

func benchDims(b *circuits.Bench) func(string) (int, int, error) {
	return func(name string) (int, int, error) {
		d := b.Circuit.Device(name)
		if d == nil {
			return 0, 0, fmt.Errorf("core: unknown device %q", name)
		}
		if d.FW <= 0 || d.FH <= 0 {
			return 0, 0, fmt.Errorf("core: device %q has no footprint", name)
		}
		return d.FW, d.FH, nil
	}
}

// Fig10Result bundles the two sizing runs of the Fig. 10 experiment.
type Fig10Result struct {
	Nominal, Aware *sizing.Result
}

// RunFig10 executes the layout-aware sizing experiment: a nominal
// (schematic-only) sizing and a layout-aware sizing of the same
// folded-cascode OTA against the same specification.
func RunFig10(opt anneal.Options) (*Fig10Result, error) {
	nominal, err := sizing.Run(sizing.Problem{
		Spec: sizing.Fig10Spec(),
		Mode: sizing.Nominal,
		Base: sizing.DefaultBase(),
	}, opt)
	if err != nil {
		return nil, err
	}
	aware, err := sizing.Run(sizing.Problem{
		Spec:      sizing.Fig10Spec(),
		Mode:      sizing.LayoutAware,
		MaxAspect: 1.3,
		Base:      sizing.DefaultBase(),
	}, opt)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Nominal: nominal, Aware: aware}, nil
}
