package core

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/seqpair"
	"repro/internal/shapefn"
)

// TableIRow is one line of the paper's Table I: ESF versus RSF on one
// circuit.
type TableIRow struct {
	Name        string
	Modules     int
	ESFUsage    float64 // bounding-box area / module area
	RSFUsage    float64
	ESFTime     time.Duration
	RSFTime     time.Duration
	Improvement float64 // (RSFUsage - ESFUsage) / RSFUsage
}

// RunTableI regenerates Table I over the named benchmarks (all six
// when names is empty).
func RunTableI(names []string) ([]TableIRow, error) {
	if len(names) == 0 {
		names = circuits.TableINames()
	}
	rows := make([]TableIRow, 0, len(names))
	for _, name := range names {
		bench, err := circuits.TableIBench(name)
		if err != nil {
			return nil, err
		}
		row := TableIRow{Name: name, Modules: len(bench.Circuit.Devices)}

		esf, err := PlaceBench(bench, MethodDeterministicESF, anneal.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: %s ESF: %v", name, err)
		}
		if !esf.Legal {
			return nil, fmt.Errorf("core: %s ESF produced an illegal placement", name)
		}
		row.ESFUsage, row.ESFTime = esf.AreaUsage, esf.Runtime

		rsf, err := PlaceBench(bench, MethodDeterministicRSF, anneal.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: %s RSF: %v", name, err)
		}
		if !rsf.Legal {
			return nil, fmt.Errorf("core: %s RSF produced an illegal placement", name)
		}
		row.RSFUsage, row.RSFTime = rsf.AreaUsage, rsf.Runtime

		if row.RSFUsage > 0 {
			row.Improvement = (row.RSFUsage - row.ESFUsage) / row.RSFUsage
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ShapeCurve is one (w, h) staircase of a shape function, the data
// behind Fig. 8.
type ShapeCurve [][2]int

// RunFig8 computes the root ESF and RSF shape functions of a Table I
// benchmark (the paper plots lnamixbias) and returns their (w, h)
// staircases.
func RunFig8(name string) (esf, rsf ShapeCurve, err error) {
	bench, err := circuits.TableIBench(name)
	if err != nil {
		return nil, nil, err
	}
	curve := func(enhanced bool) (ShapeCurve, error) {
		p, err := shapefn.NewPlacer(bench.Tree, benchDims(bench), enhanced)
		if err != nil {
			return nil, err
		}
		res, err := p.Place(bench.Tree)
		if err != nil {
			return nil, err
		}
		out := make(ShapeCurve, 0, len(res.Function.Shapes))
		for _, s := range res.Function.Shapes {
			out = append(out, [2]int{s.W, s.H})
		}
		return out, nil
	}
	if esf, err = curve(true); err != nil {
		return nil, nil, err
	}
	if rsf, err = curve(false); err != nil {
		return nil, nil, err
	}
	return esf, rsf, nil
}

// LemmaReport quantifies the Section II Lemma for one instance.
type LemmaReport struct {
	N          int
	Groups     []seqpair.Group
	Total      *big.Int // (n!)² sequence-pairs
	Bound      *big.Int // Lemma upper bound on S-F codes
	Exact      int64    // exact S-F count by pruned enumeration (-1 if skipped)
	Reduction  float64  // 1 - Bound/Total
	Enumerated bool
}

// RunLemma computes the Lemma numbers; enumeration is performed when
// enumerate is set (practical for n ≤ 8).
func RunLemma(n int, groups []seqpair.Group, enumerate bool) (*LemmaReport, error) {
	if err := seqpair.ValidateGroups(n, groups); err != nil {
		return nil, err
	}
	r := &LemmaReport{
		N:      n,
		Groups: groups,
		Total:  seqpair.TotalSequencePairs(n),
		Bound:  seqpair.LemmaBound(n, groups),
		Exact:  -1,
	}
	tf, _ := new(big.Float).SetInt(r.Total).Float64()
	bf, _ := new(big.Float).SetInt(r.Bound).Float64()
	if tf > 0 {
		r.Reduction = 1 - bf/tf
	}
	if enumerate {
		r.Exact = seqpair.CountSFExact(n, groups)
		r.Enumerated = true
	}
	return r, nil
}

// PaperLemmaExample returns the paper's running example: n = 7 with
// symmetry group γ = {(C,D), (B,G), A, F} mapped to ids A=0..G=6.
func PaperLemmaExample() (int, []seqpair.Group) {
	return 7, []seqpair.Group{{Pairs: [][2]int{{2, 3}, {1, 6}}, Selfs: []int{0, 5}}}
}
