package core

import (
	"testing"

	"repro/internal/anneal"
	"repro/internal/circuits"
)

func fastOpts(seed int64) anneal.Options {
	return anneal.Options{Seed: seed, MovesPerStage: 40, MaxStages: 60, StallStages: 15}
}

func TestPlaceBenchAllMethods(t *testing.T) {
	b := circuits.MillerOpAmp()
	for _, m := range []Method{
		MethodSeqPair, MethodBStar, MethodHBStar, MethodTCG,
		MethodSlicing, MethodDeterministicESF, MethodDeterministicRSF,
	} {
		res, err := PlaceBench(b, m, fastOpts(1))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Legal {
			t.Errorf("%v: illegal placement", m)
		}
		if len(res.Placement) != len(b.Circuit.Devices) {
			t.Errorf("%v: placement misses devices", m)
		}
		if res.AreaUsage < 1 {
			t.Errorf("%v: area usage %.3f below 1 is impossible", m, res.AreaUsage)
		}
	}
}

// TestPlaceBenchObjectiveOutline pins the objective threading: a
// requested fixed outline always yields an OutlineReport, a generous
// outline is met, and a default-objective run reports none.
func TestPlaceBenchObjectiveOutline(t *testing.T) {
	b := circuits.MillerOpAmp()
	plain, err := PlaceBench(b, MethodSeqPair, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Outline != nil {
		t.Fatal("default objective must not report an outline")
	}
	bb := plain.Placement.BBox()

	for _, m := range []Method{MethodSeqPair, MethodBStar, MethodHBStar} {
		obj := &Objective{OutlineW: 2 * bb.W, OutlineH: 2 * bb.H}
		res, err := PlaceBenchObjective(b, m, fastOpts(2), obj)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		o := res.Outline
		if o == nil {
			t.Fatalf("%v: outline requested but not reported", m)
		}
		if !o.Fits() || o.Penalty != 0 {
			t.Errorf("%v: generous outline %dx%d violated by %dx%d (penalty %v)",
				m, o.W, o.H, o.ExcessW, o.ExcessH, o.Penalty)
		}
	}

	// An impossible outline must be reported as violated with a
	// positive penalty, not silently dropped.
	res, err := PlaceBenchObjective(b, MethodSeqPair, fastOpts(2), &Objective{OutlineW: 1, OutlineH: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o := res.Outline; o == nil || o.Fits() || o.Penalty <= 0 {
		t.Fatalf("impossible outline: report %+v, want violated with positive penalty", res.Outline)
	}
}

// TestPlaceBenchObjectiveThermal pins that the thermal and proximity
// weights reach the placers without breaking constraints.
func TestPlaceBenchObjectiveThermal(t *testing.T) {
	b := circuits.MillerOpAmp()
	obj := &Objective{ThermalWeight: 2, ProxWeight: 0.5}
	for _, m := range []Method{MethodSeqPair, MethodHBStar} {
		res, err := PlaceBenchObjective(b, m, fastOpts(3), obj)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Legal {
			t.Errorf("%v: illegal placement under thermal objective", m)
		}
	}
}

func TestPlaceBenchAbsoluteMayOverlap(t *testing.T) {
	b := circuits.MillerOpAmp()
	res, err := PlaceBench(b, MethodAbsolute, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Absolute placement is allowed to be illegal; the result must
	// still cover all devices.
	if len(res.Placement) != len(b.Circuit.Devices) {
		t.Fatal("absolute placement misses devices")
	}
}

func TestPlaceBenchUnknownMethod(t *testing.T) {
	b := circuits.MillerOpAmp()
	if _, err := PlaceBench(b, Method(99), fastOpts(1)); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodSeqPair: "seqpair", MethodBStar: "bstar", MethodHBStar: "hbstar",
		MethodSlicing: "slicing", MethodAbsolute: "absolute", MethodTCG: "tcg",
		MethodDeterministicESF: "esf", MethodDeterministicRSF: "rsf",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// Table I on the two smallest circuits: ESF never worse, both legal,
// improvement recorded.
func TestRunTableISmall(t *testing.T) {
	rows, err := RunTableI([]string{"comparator_v2", "miller_v2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ESFUsage > r.RSFUsage {
			t.Errorf("%s: ESF usage %.4f worse than RSF %.4f", r.Name, r.ESFUsage, r.RSFUsage)
		}
		if r.Improvement < 0 {
			t.Errorf("%s: negative improvement", r.Name)
		}
		if r.ESFUsage < 1 || r.RSFUsage < 1 {
			t.Errorf("%s: impossible usage below 1", r.Name)
		}
	}
}

// Full Table I (all six circuits) only without -short.
func TestRunTableIFull(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full Table I in -short mode")
	}
	rows, err := RunTableI(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	wins := 0
	for _, r := range rows {
		if r.ESFUsage > r.RSFUsage {
			t.Errorf("%s: ESF worse than RSF", r.Name)
		}
		if r.Improvement > 0 {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("ESF improves only %d of 6 circuits; Table I's shape expects most", wins)
	}
}

func TestRunFig8(t *testing.T) {
	esf, rsf, err := RunFig8("miller_v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(esf) == 0 || len(rsf) == 0 {
		t.Fatal("empty shape curves")
	}
	// Staircase property: widths increase, heights decrease.
	for _, curve := range []ShapeCurve{esf, rsf} {
		for i := 1; i < len(curve); i++ {
			if curve[i][0] <= curve[i-1][0] || curve[i][1] >= curve[i-1][1] {
				t.Fatalf("curve not a staircase at %d: %v", i, curve)
			}
		}
	}
}

func TestRunLemmaPaperExample(t *testing.T) {
	n, groups := PaperLemmaExample()
	rep, err := RunLemma(n, groups, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Int64() != 25401600 {
		t.Fatalf("Total = %v, want 25401600", rep.Total)
	}
	if rep.Bound.Int64() != 35280 {
		t.Fatalf("Bound = %v, want 35280", rep.Bound)
	}
	if rep.Exact != 35280 {
		t.Fatalf("Exact = %d, want 35280 (bound is tight)", rep.Exact)
	}
	if rep.Reduction < 0.9985 || rep.Reduction > 0.9987 {
		t.Fatalf("Reduction = %v, want ≈ 99.86%%", rep.Reduction)
	}
}

func TestRunLemmaValidates(t *testing.T) {
	if _, err := RunLemma(2, nil, false); err != nil {
		t.Fatal(err)
	}
	n, groups := PaperLemmaExample()
	if _, err := RunLemma(3, groups, false); err == nil {
		t.Fatal("out-of-range group for n=3 must fail")
	}
	_ = n
}

func TestRunFig10(t *testing.T) {
	res, err := RunFig10(anneal.Options{Seed: 1, MovesPerStage: 250, MaxStages: 250, StallStages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nominal.ViolationsPost) == 0 {
		t.Fatal("nominal sizing must fail post-layout")
	}
	if len(res.Aware.ViolationsPost) != 0 {
		t.Fatalf("aware sizing must pass post-layout: %v", res.Aware.ViolationsPost)
	}
	if res.Aware.Layout.Area() >= res.Nominal.Layout.Area() {
		t.Fatal("aware layout must be smaller")
	}
}
