package place

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/seqpair"
)

// BenchmarkCheckpointSnapshot prices the checkpoint/resume hook at
// n=1000: Snapshot is the state the service's checkpoint store keeps
// per interrupted job (both sequence-pair permutations plus rotation
// and dimension vectors), captured on improved stages; Restore is the
// warm-start cost a resumed job pays once. This bounds the overhead
// resumability adds to an annealing run.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	const n = 1000
	rng := rand.New(rand.NewSource(1))
	prob := &Problem{
		Names: make([]string, n),
		W:     make([]int, n),
		H:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		prob.Names[i] = "m" + strconv.Itoa(i)
		prob.W[i] = 1 + rng.Intn(50)
		prob.H[i] = 1 + rng.Intn(50)
	}
	rep := newSPRep(prob, seqpair.RandomSF(n, nil, rng))

	b.Run("capture", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = rep.Snapshot()
		}
	})
	b.Run("restore", func(b *testing.B) {
		snap := rep.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep.Restore(snap)
		}
	})
}
