package place

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bstar"
	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/seqpair"
	"repro/internal/tcg"
)

// mutableFixture drives one placer solution through the exact-undo
// checks: pl must rebuild the full placement from the solution's
// current state (or return nil when the state is infeasible).
type mutableFixture struct {
	name string
	sol  *engine.Solution
	pl   func() geom.Placement
}

func placementsEqual(a, b geom.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for k, r := range a {
		if b[k] != r {
			return false
		}
	}
	return true
}

func costsEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return a == b
}

// fixture wraps a kernel solution with an error-swallowing placement
// extractor (nil for infeasible states).
func fixture(name string, sol *engine.Solution) mutableFixture {
	return mutableFixture{name, sol, func() geom.Placement {
		pl, err := sol.Placement()
		if err != nil {
			return nil
		}
		return pl
	}}
}

func fixtures(t *testing.T) []mutableFixture {
	t.Helper()
	bench := circuits.MillerOpAmp()
	prob, err := FromBench(bench)
	if err != nil {
		t.Fatal(err)
	}
	free, err := FromBench(bench)
	if err != nil {
		t.Fatal(err)
	}
	free.Groups = nil

	rng := rand.New(rand.NewSource(1))

	bt := newKernel(free, newBTRep(free, bstar.NewRandom(free.W, free.H, rng)))
	sps := newKernel(prob, newSPRep(prob, seqpair.RandomSF(prob.N(), prob.Groups, rng)))
	rej := newKernel(prob, newSPRejectRep(prob, seqpair.RandomSF(prob.N(), prob.Groups, rng)))
	tc := newKernel(free, newTCGRep(free, tcg.New(free.W, free.H)))

	n := free.N()
	expr := polish{0}
	for i := 1; i < n; i++ {
		expr = append(expr, i, opV)
	}
	sl := newKernel(free, newSlRep(free, expr))

	absR := newAbsRep(free, 10)
	for i := 0; i < n; i++ {
		absR.x[i], absR.y[i] = (i%3)*15, (i/3)*15
	}
	abs := engine.New(absR, absConfig(free, 10))

	return []mutableFixture{
		fixture("bstar", bt),
		fixture("seqpair", sps),
		fixture("seqpair-reject", rej),
		fixture("tcg", tc),
		fixture("slicing", sl),
		fixture("absolute", abs),
	}
}

// TestPerturbUndoRoundTrip asserts the MutableSolution contract for
// every placer: after Perturb followed by Undo, both the reported cost
// and the full placement geometry round-trip exactly.
func TestPerturbUndoRoundTrip(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for step := 0; step < 300; step++ {
				costBefore := fx.sol.Cost()
				plBefore := fx.pl()
				undo := fx.sol.Perturb(rng)
				undo()
				if got := fx.sol.Cost(); !costsEqual(got, costBefore) {
					t.Fatalf("step %d: cost %v after undo, want %v", step, got, costBefore)
				}
				if !placementsEqual(fx.pl(), plBefore) {
					t.Fatalf("step %d: placement changed after undo", step)
				}
				// Drift to a fresh state so the walk covers the space.
				fx.sol.Perturb(rng)
			}
		})
	}
}

// TestSnapshotRestoreRoundTrip asserts that Restore brings a solution
// back to the snapshotted cost and geometry after arbitrary drift.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 20; trial++ {
				snap := fx.sol.Snapshot()
				costAt := fx.sol.Cost()
				plAt := fx.pl()
				for i := 0; i < 10; i++ {
					fx.sol.Perturb(rng)
				}
				fx.sol.Restore(snap)
				if got := fx.sol.Cost(); !costsEqual(got, costAt) {
					t.Fatalf("trial %d: cost %v after restore, want %v", trial, got, costAt)
				}
				if !placementsEqual(fx.pl(), plAt) {
					t.Fatalf("trial %d: placement changed after restore", trial)
				}
			}
		})
	}
}

// TestCostCoordsMatchesCost cross-checks the allocation-free cost
// evaluation against the named-placement path on random geometry.
func TestCostCoordsMatchesCost(t *testing.T) {
	bench := circuits.MillerOpAmp()
	prob, err := FromBench(bench)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	n := prob.N()
	x := make([]int, n)
	y := make([]int, n)
	rot := make([]bool, n)
	for trial := 0; trial < 200; trial++ {
		for i := 0; i < n; i++ {
			x[i], y[i] = rng.Intn(200), rng.Intn(200)
			rot[i] = rng.Intn(2) == 0
		}
		want := prob.Cost(prob.BuildPlacement(x, y, rot))
		got := prob.CostCoords(x, y, prob.W, prob.H, rot)
		if got != want {
			t.Fatalf("trial %d: CostCoords=%v Cost=%v", trial, got, want)
		}
	}
}
