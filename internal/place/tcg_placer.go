package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/tcg"
)

// tcgSolution wraps a transitive closure graph for the annealer.
type tcgSolution struct {
	prob *Problem
	g    *tcg.TCG
	cost float64
}

func (s *tcgSolution) evaluate() {
	pl, err := s.g.Placement(s.prob.Names)
	if err != nil {
		panic(err) // sizes fixed by construction
	}
	s.cost = s.prob.Cost(pl)
}

// Cost implements anneal.Solution.
func (s *tcgSolution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution with the TCG perturbations
// (rotate, swap, edge reversal, edge move).
func (s *tcgSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &tcgSolution{prob: s.prob, g: s.g.Clone()}
	next.g.Perturb(rng)
	next.evaluate()
	return next
}

// TCG runs a transitive-closure-graph annealing placer — the third
// non-slicing representation Section II names ([15]). Symmetry groups
// are not enforced; it serves as a representation baseline alongside
// BStar and Slicing.
func TCG(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	init := &tcgSolution{prob: p, g: tcg.New(p.W, p.H)}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*tcgSolution)
	pl, err := sol.g.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}

// TwoPhaseBStar runs the GA+SA two-phase strategy of Zhang et al.
// ([28]) over B*-trees: an evolutionary exploration followed by
// annealing refinement.
func TwoPhaseBStar(p *Problem, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sa.Seed + 17))
	init := &btSolution{prob: p, tree: bstar.NewRandom(p.W, p.H, rng)}
	init.evaluate()
	best, stats := anneal.TwoPhase(init, ga, sa)
	sol := best.(*btSolution)
	pl, err := sol.tree.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}
