package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/tcg"
)

// tcgRep wraps a transitive closure graph as an
// engine.Representation. A perturbation is undone by restoring the
// saved matrices — an O(n²) copy, the same order as one packing
// evaluation.
type tcgRep struct {
	prob  *Problem
	g     *tcg.TCG
	ws    tcg.PackWorkspace
	saved tcg.State
}

func newTCGRep(p *Problem, g *tcg.TCG) *tcgRep {
	return &tcgRep{prob: p, g: g}
}

// Perturb implements engine.Representation with the TCG perturbations
// (rotate, swap, edge reversal, edge move).
func (r *tcgRep) Perturb(rng *rand.Rand) bool {
	r.g.SaveState(&r.saved)
	r.g.Perturb(rng)
	return true
}

// Undo implements engine.Representation.
func (r *tcgRep) Undo() { r.g.LoadState(&r.saved) }

// Pack implements engine.Representation. Rotation swaps W/H in place
// on the TCG, so Rot is nil.
func (r *tcgRep) Pack(c *engine.Coords) bool {
	x, y := r.g.PackInto(&r.ws)
	c.X, c.Y, c.W, c.H, c.Rot = x, y, r.g.W, r.g.H, nil
	return true
}

// Snapshot implements engine.Representation.
func (r *tcgRep) Snapshot() any {
	sn := &tcg.State{}
	r.g.SaveState(sn)
	return sn
}

// Restore implements engine.Representation.
func (r *tcgRep) Restore(snapshot any) {
	r.g.LoadState(snapshot.(*tcg.State))
}

// Clone implements engine.Representation.
func (r *tcgRep) Clone() engine.Representation {
	return newTCGRep(r.prob, r.g.Clone())
}

// Placement implements engine.Representation.
func (r *tcgRep) Placement() (geom.Placement, error) {
	return r.g.Placement(r.prob.Names)
}

// TCG runs a transitive-closure-graph annealing placer — the third
// non-slicing representation Section II names ([15]). Symmetry groups
// are not enforced; it serves as a representation baseline alongside
// BStar and Slicing.
func TCG(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		s := newKernel(p, newTCGRep(p, tcg.New(p.W, p.H)))
		_ = seed // the deterministic initial row ignores the seed
		return s
	}
	best, stats := engine.Run(newSol, opt)
	return finishResult(best.(*engine.Solution), stats)
}

// TwoPhaseBStar runs the GA+SA two-phase strategy of Zhang et al.
// ([28]) over B*-trees: an evolutionary exploration followed by
// annealing refinement.
func TwoPhaseBStar(p *Problem, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sa.Seed + 17))
	init := newKernel(p, newBTRep(p, bstar.NewRandom(p.W, p.H, rng)))
	best, stats := anneal.TwoPhase(init, ga, sa)
	return finishResult(best.(*engine.Solution), stats)
}
