package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/cost"
	"repro/internal/tcg"
)

// tcgSolution wraps a transitive closure graph for the annealer,
// implementing both the cloning and the in-place protocols. A
// perturbation is undone by restoring the saved matrices — an O(n²)
// copy, the same order as one packing evaluation — and the objective
// reverts through the solution-owned model's journal.
type tcgSolution struct {
	prob       *Problem
	g          *tcg.TCG
	ws         tcg.PackWorkspace
	saved      tcg.State
	model      *cost.Model
	cost       float64
	prevCost   float64
	modelMoved bool
	undo       anneal.Undo
}

func newTCGSolution(p *Problem, g *tcg.TCG) *tcgSolution {
	s := &tcgSolution{prob: p, g: g, model: p.NewModel()}
	s.undo = func() {
		s.g.LoadState(&s.saved)
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		s.cost = s.prevCost
	}
	return s
}

func (s *tcgSolution) evaluate() {
	x, y := s.g.PackInto(&s.ws)
	// Rotation swaps W/H in place on the TCG, so rot is nil here.
	if s.prob.FullEval {
		s.modelMoved = false
		s.cost = s.model.Eval(x, y, s.g.W, s.g.H, nil)
		return
	}
	s.cost = s.model.Update(x, y, s.g.W, s.g.H, nil)
	s.modelMoved = true
}

// Cost implements anneal.Solution.
func (s *tcgSolution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter.
func (s *tcgSolution) Moved() []int { return s.model.Moved() }

// Neighbor implements anneal.Solution with the TCG perturbations
// (rotate, swap, edge reversal, edge move).
func (s *tcgSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newTCGSolution(s.prob, s.g.Clone())
	next.g.Perturb(rng)
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution.
func (s *tcgSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.g.SaveState(&s.saved)
	s.prevCost = s.cost
	s.g.Perturb(rng)
	s.evaluate()
	return s.undo
}

// tcgSnapshot is the best-so-far record of a tcgSolution.
type tcgSnapshot struct {
	state tcg.State
}

// Snapshot implements anneal.MutableSolution.
func (s *tcgSolution) Snapshot() any {
	sn := &tcgSnapshot{}
	s.g.SaveState(&sn.state)
	return sn
}

// Restore implements anneal.MutableSolution: the graph is restored and
// the objective incrementally reevaluated against it.
func (s *tcgSolution) Restore(snapshot any) {
	sn := snapshot.(*tcgSnapshot)
	s.g.LoadState(&sn.state)
	s.evaluate()
}

// TCG runs a transitive-closure-graph annealing placer — the third
// non-slicing representation Section II names ([15]). Symmetry groups
// are not enforced; it serves as a representation baseline alongside
// BStar and Slicing.
func TCG(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		s := newTCGSolution(p, tcg.New(p.W, p.H))
		s.evaluate()
		_ = seed // the deterministic initial row ignores the seed
		return s
	}
	best, stats := runAnneal(newSol, opt)
	sol := best.(*tcgSolution)
	pl, err := sol.g.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}

// TwoPhaseBStar runs the GA+SA two-phase strategy of Zhang et al.
// ([28]) over B*-trees: an evolutionary exploration followed by
// annealing refinement.
func TwoPhaseBStar(p *Problem, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sa.Seed + 17))
	init := newBTSolution(p, bstar.NewRandom(p.W, p.H, rng))
	init.evaluate()
	best, stats := anneal.TwoPhase(init, ga, sa)
	sol := best.(*btSolution)
	pl, err := sol.tree.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}
