package place

import "repro/internal/cost"

// overlapTerm is the pairwise-overlap penalty of the absolute-
// coordinate placer as an incremental cost.Term: the exact total
// overlap area is maintained against a private coordinate cache, so a
// move of k modules costs O(k·n) pair tests instead of the O(n²) full
// rescan the placer performed before the composable-objective
// refactor. It is placer-defined rather than a cost built-in — the
// demonstration that a new objective component is a ~50-line Term.
type overlapTerm struct {
	// Private coordinate cache: the term needs pre-move geometry to
	// subtract a moved module's old overlaps, which the model's cache
	// no longer holds when Update runs.
	x, y, w, h []int
	total      int64

	// Undo journal.
	jIDs           []int
	jX, jY, jW, jH []int
	jTotal         int64
}

func newOverlapTerm(n int) *overlapTerm {
	return &overlapTerm{
		x: make([]int, n), y: make([]int, n),
		w: make([]int, n), h: make([]int, n),
	}
}

// Name implements cost.Term.
func (t *overlapTerm) Name() string { return "overlap" }

// pairOverlap returns the overlap area of cached modules i and j.
func (t *overlapTerm) pairOverlap(i, j int) int64 {
	ix := min(t.x[i]+t.w[i], t.x[j]+t.w[j]) - max(t.x[i], t.x[j])
	iy := min(t.y[i]+t.h[i], t.y[j]+t.h[j]) - max(t.y[i], t.y[j])
	if ix > 0 && iy > 0 {
		return int64(ix) * int64(iy)
	}
	return 0
}

// moduleOverlap returns module m's total overlap against every other
// cached module.
func (t *overlapTerm) moduleOverlap(m int) int64 {
	var sum int64
	for j := range t.x {
		if j != m {
			sum += t.pairOverlap(m, j)
		}
	}
	return sum
}

// Eval implements cost.Term.
func (t *overlapTerm) Eval(c *cost.Coords) {
	copy(t.x, c.X)
	copy(t.y, c.Y)
	copy(t.w, c.W)
	copy(t.h, c.H)
	t.total = 0
	n := len(t.x)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.total += t.pairOverlap(i, j)
		}
	}
	t.jIDs = t.jIDs[:0]
}

// Update implements cost.Term: subtract the moved modules' old
// overlaps (compensating pairs inside the moved set, which the
// per-module sums count twice), patch the private cache, and add the
// new ones the same way.
func (t *overlapTerm) Update(c *cost.Coords, moved []int) {
	t.jTotal = t.total
	t.jIDs = t.jIDs[:0]
	t.jX, t.jY, t.jW, t.jH = t.jX[:0], t.jY[:0], t.jW[:0], t.jH[:0]
	for _, m := range moved {
		t.total -= t.moduleOverlap(m)
	}
	for i, a := range moved {
		for _, b := range moved[i+1:] {
			t.total += t.pairOverlap(a, b)
		}
	}
	for _, m := range moved {
		t.jIDs = append(t.jIDs, m)
		t.jX = append(t.jX, t.x[m])
		t.jY = append(t.jY, t.y[m])
		t.jW = append(t.jW, t.w[m])
		t.jH = append(t.jH, t.h[m])
		t.x[m], t.y[m], t.w[m], t.h[m] = c.X[m], c.Y[m], c.W[m], c.H[m]
	}
	for _, m := range moved {
		t.total += t.moduleOverlap(m)
	}
	for i, a := range moved {
		for _, b := range moved[i+1:] {
			t.total -= t.pairOverlap(a, b)
		}
	}
}

// Undo implements cost.Term.
func (t *overlapTerm) Undo() {
	for k := len(t.jIDs) - 1; k >= 0; k-- {
		m := t.jIDs[k]
		t.x[m], t.y[m], t.w[m], t.h[m] = t.jX[k], t.jY[k], t.jW[k], t.jH[k]
	}
	if len(t.jIDs) > 0 {
		t.total = t.jTotal
	}
	t.jIDs = t.jIDs[:0]
}

// Value implements cost.Term.
func (t *overlapTerm) Value() float64 { return float64(t.total) }
