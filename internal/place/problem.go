// Package place provides the device-level placers compared in the
// paper: the absolute-coordinate simulated-annealing baseline in the
// tradition of Jepsen/Gellat [11] (explores infeasible overlapping
// configurations), the topological sequence-pair placer restricted to
// symmetric-feasible codes (Section II, [13]), a B*-tree placer, and a
// slicing-tree placer (normalized Polish expressions) representing the
// slicing layout model the paper says degrades density for
// heterogeneous analog cells.
//
// All placers optimize the same composite cost — bounding-box area
// plus weighted half-perimeter wirelength — over the same Problem, so
// the representation ablations of DESIGN.md compare like for like.
package place

import (
	"fmt"
	"math"

	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/seqpair"
)

// Problem is one placement instance over modules 0..n-1.
type Problem struct {
	Names []string
	W, H  []int
	// Groups are symmetry groups over module ids (vertical axes).
	Groups []seqpair.Group
	// Nets lists signal nets as module-id sets for wirelength.
	Nets [][]int
	// WireWeight scales HPWL against bounding-box area in the cost.
	// Zero means area-only.
	WireWeight float64
}

// N returns the module count.
func (p *Problem) N() int { return len(p.Names) }

// Validate checks the problem's internal consistency.
func (p *Problem) Validate() error {
	n := p.N()
	if len(p.W) != n || len(p.H) != n {
		return fmt.Errorf("place: dims length mismatch")
	}
	for i := 0; i < n; i++ {
		if p.W[i] <= 0 || p.H[i] <= 0 {
			return fmt.Errorf("place: module %d has non-positive size", i)
		}
	}
	if err := seqpair.ValidateGroups(n, p.Groups); err != nil {
		return err
	}
	for _, net := range p.Nets {
		for _, m := range net {
			if m < 0 || m >= n {
				return fmt.Errorf("place: net references module %d out of range", m)
			}
		}
	}
	return nil
}

// ModuleArea returns the sum of module areas.
func (p *Problem) ModuleArea() int64 {
	var a int64
	for i := range p.W {
		a += int64(p.W[i]) * int64(p.H[i])
	}
	return a
}

// Cost evaluates a placement: bounding-box area plus weighted total
// HPWL over all nets. Placements missing modules are heavily
// penalized.
func (p *Problem) Cost(pl geom.Placement) float64 {
	if len(pl) < p.N() {
		return math.Inf(1)
	}
	cost := float64(pl.Area())
	if p.WireWeight > 0 {
		wl := 0
		for _, net := range p.Nets {
			names := make([]string, len(net))
			for i, m := range net {
				names[i] = p.Names[m]
			}
			wl += geom.HPWL(pl, names)
		}
		cost += p.WireWeight * float64(wl)
	}
	return cost
}

// CostCoords evaluates the same objective as Cost directly from
// coordinate slices: bounding-box area plus weighted total HPWL, with
// module i occupying (x[i], y[i], w[i], h[i]), dimensions swapped where
// rot is set. It allocates nothing, which makes it the cost function of
// the in-place annealing inner loop; Cost remains the entry point for
// named placements. rot may be nil.
func (p *Problem) CostCoords(x, y, w, h []int, rot []bool) float64 {
	n := p.N()
	const big = 1 << 62
	minX, maxX, minY, maxY := big, -big, big, -big
	for i := 0; i < n; i++ {
		wi, hi := w[i], h[i]
		if rot != nil && rot[i] {
			wi, hi = hi, wi
		}
		minX = min(minX, x[i])
		maxX = max(maxX, x[i]+wi)
		minY = min(minY, y[i])
		maxY = max(maxY, y[i]+hi)
	}
	if n == 0 {
		return 0
	}
	cost := float64(maxX-minX) * float64(maxY-minY)
	if p.WireWeight > 0 {
		wl := 0
		for _, net := range p.Nets {
			// Half-perimeter over doubled module centers, matching
			// geom.HPWL's convention exactly.
			nminX, nmaxX, nminY, nmaxY := big, -big, big, -big
			for _, m := range net {
				wm, hm := w[m], h[m]
				if rot != nil && rot[m] {
					wm, hm = hm, wm
				}
				cx, cy := 2*x[m]+wm, 2*y[m]+hm
				nminX = min(nminX, cx)
				nmaxX = max(nmaxX, cx)
				nminY = min(nminY, cy)
				nmaxY = max(nmaxY, cy)
			}
			if len(net) > 0 {
				wl += (nmaxX - nminX + nmaxY - nminY) / 2
			}
		}
		cost += p.WireWeight * float64(wl)
	}
	return cost
}

// ConstraintSet converts the problem's symmetry groups to named
// geometric constraints for validation.
func (p *Problem) ConstraintSet() *constraint.Set {
	s := &constraint.Set{}
	for gi, g := range p.Groups {
		cg := constraint.SymmetryGroup{
			Name:     fmt.Sprintf("group%d", gi),
			Vertical: true,
		}
		for _, pr := range g.Pairs {
			cg.Pairs = append(cg.Pairs, [2]string{p.Names[pr[0]], p.Names[pr[1]]})
		}
		for _, s := range g.Selfs {
			cg.Selfs = append(cg.Selfs, p.Names[s])
		}
		s.Symmetry = append(s.Symmetry, cg)
	}
	return s
}

// FromBench converts a benchmark circuit into a flat placement
// problem: device footprints become modules, every symmetry node of
// the hierarchy tree (device-level pairs and selfs) becomes a symmetry
// group, and the bench's signal nets become wirelength nets.
func FromBench(b *circuits.Bench) (*Problem, error) {
	names, w, h := b.Modules()
	id := map[string]int{}
	for i, n := range names {
		id[n] = i
	}
	p := &Problem{Names: names, W: w, H: h, WireWeight: 1}

	var walk func(n *constraint.Node) error
	walk = func(n *constraint.Node) error {
		if n.Kind == constraint.KindSymmetry {
			g := seqpair.Group{}
			for _, pr := range n.SymPairs {
				a, oka := id[pr[0]]
				bb, okb := id[pr[1]]
				if !oka || !okb {
					// Pair references a sub-circuit, not a device:
					// flat placers cannot express it; skip.
					continue
				}
				g.Pairs = append(g.Pairs, [2]int{a, bb})
			}
			for _, s := range n.SymSelfs {
				if m, ok := id[s]; ok {
					g.Selfs = append(g.Selfs, m)
				}
			}
			if g.Size() > 0 {
				p.Groups = append(p.Groups, g)
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if b.Tree != nil {
		if err := walk(b.Tree); err != nil {
			return nil, err
		}
	}
	for _, devs := range b.Nets {
		var net []int
		for _, d := range devs {
			if m, ok := id[d]; ok {
				net = append(net, m)
			}
		}
		if len(net) >= 2 {
			p.Nets = append(p.Nets, net)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildPlacement assembles a named placement from coordinates.
func (p *Problem) BuildPlacement(x, y []int, rot []bool) geom.Placement {
	pl := geom.Placement{}
	for i := 0; i < p.N(); i++ {
		w, h := p.W[i], p.H[i]
		if rot != nil && rot[i] {
			w, h = h, w
		}
		pl[p.Names[i]] = geom.NewRect(x[i], y[i], w, h)
	}
	return pl
}
