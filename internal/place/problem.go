// Package place provides the device-level placers compared in the
// paper: the absolute-coordinate simulated-annealing baseline in the
// tradition of Jepsen/Gellat [11] (explores infeasible overlapping
// configurations), the topological sequence-pair placer restricted to
// symmetric-feasible codes (Section II, [13]), a B*-tree placer, and a
// slicing-tree placer (normalized Polish expressions) representing the
// slicing layout model the paper says degrades density for
// heterogeneous analog cells.
//
// All placers optimize the same composite cost — bounding-box area
// plus weighted half-perimeter wirelength — over the same Problem, so
// the representation ablations of DESIGN.md compare like for like.
package place

import (
	"fmt"
	"math"

	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/seqpair"
	"repro/internal/thermal"
)

// Problem is one placement instance over modules 0..n-1. The objective
// every placer optimizes is the composite cost.Model the problem
// builds in NewModel: bounding-box area plus weighted HPWL by default,
// with optional fixed-outline, proximity and thermal-mismatch terms.
type Problem struct {
	Names []string
	W, H  []int
	// Groups are symmetry groups over module ids (vertical axes).
	Groups []seqpair.Group
	// Nets lists signal nets as module-id sets for wirelength.
	Nets [][]int
	// WireWeight scales HPWL against bounding-box area in the cost.
	// Zero means area-only.
	WireWeight float64
	// AreaWeight scales the bounding-box area term. Zero means the
	// default weight of 1 (the zero Problem keeps the historical
	// area + WireWeight·HPWL objective).
	AreaWeight float64
	// OutlineW/OutlineH, when both positive, add a fixed-outline term:
	// a quadratic penalty on the bounding box exceeding the target
	// outline (Adya/Markov fixed-outline floorplanning).
	OutlineW, OutlineH int
	// OutlineWeight scales the fixed-outline penalty. Zero selects a
	// heuristic weight of max(1, ModuleArea/100), strong enough that a
	// few-unit violation rivals the area term.
	OutlineWeight float64
	// ProxGroups lists proximity groups as module-id sets: each
	// contributes the half-perimeter of its center bounding box,
	// pulling members together. FromBench fills them from the
	// hierarchy's proximity nodes; they only enter the cost when
	// ProxWeight > 0.
	ProxGroups [][]int
	// ProxWeight scales the proximity term (0 = off).
	ProxWeight float64
	// ThermalWeight scales the thermal-mismatch term over the symmetry
	// groups' pairs (0 = off). Powers come from Power, or default to
	// each module's area normalized by the largest module.
	ThermalWeight float64
	// ThermalSigma is the thermal decay length (0 = thermal default).
	ThermalSigma float64
	// Power gives per-module dissipated power for the thermal term.
	Power []float64
	// FullEval forces every move to reevaluate the whole objective
	// from scratch instead of incrementally — the pre-refactor
	// behavior, kept for benchmarking the incremental engine and for
	// verification.
	FullEval bool
	// AdaptiveMoves enables the kernel's acceptance-rate-weighted move
	// portfolio for representations that expose a move table (seqpair,
	// slicing, absolute). Default off: the historical per-representation
	// move distributions stay bit-reproducible.
	AdaptiveMoves bool
}

// N returns the module count.
func (p *Problem) N() int { return len(p.Names) }

// Validate checks the problem's internal consistency.
func (p *Problem) Validate() error {
	n := p.N()
	if len(p.W) != n || len(p.H) != n {
		return fmt.Errorf("place: dims length mismatch")
	}
	for i := 0; i < n; i++ {
		if p.W[i] <= 0 || p.H[i] <= 0 {
			return fmt.Errorf("place: module %d has non-positive size", i)
		}
	}
	if err := seqpair.ValidateGroups(n, p.Groups); err != nil {
		return err
	}
	for _, net := range p.Nets {
		for _, m := range net {
			if m < 0 || m >= n {
				return fmt.Errorf("place: net references module %d out of range", m)
			}
		}
	}
	return nil
}

// ModuleArea returns the sum of module areas.
func (p *Problem) ModuleArea() int64 {
	var a int64
	for i := range p.W {
		a += int64(p.W[i]) * int64(p.H[i])
	}
	return a
}

// NewModel builds the problem's composite objective: one cost.Model
// with the terms the problem's weights enable. Every solution owns its
// own model (models hold per-search incremental caches, exactly like
// packing workspaces), so placers call this once per solution.
func (p *Problem) NewModel() *cost.Model {
	m := cost.NewModel(p.N())
	aw := p.AreaWeight
	if aw == 0 {
		aw = 1
	}
	m.Add(aw, cost.NewArea())
	m.Add(p.WireWeight, cost.NewHPWL(p.Nets))
	if p.OutlineW > 0 && p.OutlineH > 0 {
		ow := p.OutlineWeight
		if ow == 0 {
			ow = cost.DefaultOutlineWeight(p.ModuleArea())
		}
		m.Add(ow, cost.NewFixedOutline(p.OutlineW, p.OutlineH))
	}
	if p.ProxWeight > 0 && len(p.ProxGroups) > 0 {
		m.Add(p.ProxWeight, cost.NewProximity(p.ProxGroups))
	}
	if p.ThermalWeight > 0 {
		pairs := p.SymPairs()
		if len(pairs) > 0 {
			m.Add(p.ThermalWeight, cost.NewThermal(
				&thermal.Field{Sigma: p.ThermalSigma}, p.powers(), pairs))
		}
	}
	return m
}

// SymPairs returns all symmetric pairs over all symmetry groups.
func (p *Problem) SymPairs() [][2]int {
	var pairs [][2]int
	for _, g := range p.Groups {
		pairs = append(pairs, g.Pairs...)
	}
	return pairs
}

// powers returns the thermal source powers: Power if set, otherwise
// the shared area-normalized default.
func (p *Problem) powers() []float64 {
	if p.Power != nil {
		return p.Power
	}
	areas := make([]int64, p.N())
	for i := range areas {
		areas[i] = int64(p.W[i]) * int64(p.H[i])
	}
	return cost.AreaNormalizedPowers(areas)
}

// Cost evaluates a named placement against the full composite
// objective through a fresh model. Placements missing modules are
// heavily penalized. It is the reference entry point for final results
// and validation, not the hot path: searching placers evaluate
// incrementally through their own model.
func (p *Problem) Cost(pl geom.Placement) float64 {
	if len(pl) < p.N() {
		return math.Inf(1)
	}
	n := p.N()
	x := make([]int, n)
	y := make([]int, n)
	w := make([]int, n)
	h := make([]int, n)
	for i, name := range p.Names {
		r, ok := pl[name]
		if !ok {
			return math.Inf(1)
		}
		x[i], y[i], w[i], h[i] = r.X, r.Y, r.W, r.H
	}
	return p.NewModel().Eval(x, y, w, h, nil)
}

// CostCoords evaluates the composite objective directly from
// coordinate slices, with module i occupying (x[i], y[i], w[i], h[i]),
// dimensions swapped where rot is set (rot may be nil). Like Cost it
// builds a fresh model per call and exists as the from-scratch
// reference; the annealing inner loop runs on each solution's own
// incrementally-updated model instead.
func (p *Problem) CostCoords(x, y, w, h []int, rot []bool) float64 {
	return p.NewModel().Eval(x, y, w, h, rot)
}

// ConstraintSet converts the problem's symmetry groups to named
// geometric constraints for validation.
func (p *Problem) ConstraintSet() *constraint.Set {
	s := &constraint.Set{}
	for gi, g := range p.Groups {
		cg := constraint.SymmetryGroup{
			Name:     fmt.Sprintf("group%d", gi),
			Vertical: true,
		}
		for _, pr := range g.Pairs {
			cg.Pairs = append(cg.Pairs, [2]string{p.Names[pr[0]], p.Names[pr[1]]})
		}
		for _, s := range g.Selfs {
			cg.Selfs = append(cg.Selfs, p.Names[s])
		}
		s.Symmetry = append(s.Symmetry, cg)
	}
	return s
}

// FromBench converts a benchmark circuit into a flat placement
// problem: device footprints become modules, every symmetry node of
// the hierarchy tree (device-level pairs and selfs) becomes a symmetry
// group, and the bench's signal nets become wirelength nets.
func FromBench(b *circuits.Bench) (*Problem, error) {
	names, w, h := b.Modules()
	id := map[string]int{}
	for i, n := range names {
		id[n] = i
	}
	p := &Problem{Names: names, W: w, H: h, WireWeight: 1}

	var walk func(n *constraint.Node) error
	walk = func(n *constraint.Node) error {
		if n.Kind == constraint.KindSymmetry {
			g := seqpair.Group{}
			for _, pr := range n.SymPairs {
				a, oka := id[pr[0]]
				bb, okb := id[pr[1]]
				if !oka || !okb {
					// Pair references a sub-circuit, not a device:
					// flat placers cannot express it; skip.
					continue
				}
				g.Pairs = append(g.Pairs, [2]int{a, bb})
			}
			for _, s := range n.SymSelfs {
				if m, ok := id[s]; ok {
					g.Selfs = append(g.Selfs, m)
				}
			}
			if g.Size() > 0 {
				p.Groups = append(p.Groups, g)
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if b.Tree != nil {
		if err := walk(b.Tree); err != nil {
			return nil, err
		}
		// Proximity groups enter the cost only when the caller sets
		// ProxWeight.
		for _, members := range b.Tree.ProximityGroups() {
			var grp []int
			for _, d := range members {
				if m, ok := id[d]; ok {
					grp = append(grp, m)
				}
			}
			if len(grp) >= 2 {
				p.ProxGroups = append(p.ProxGroups, grp)
			}
		}
	}
	for _, devs := range b.Nets {
		var net []int
		for _, d := range devs {
			if m, ok := id[d]; ok {
				net = append(net, m)
			}
		}
		if len(net) >= 2 {
			p.Nets = append(p.Nets, net)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildPlacement assembles a named placement from coordinates.
func (p *Problem) BuildPlacement(x, y []int, rot []bool) geom.Placement {
	pl := geom.Placement{}
	for i := 0; i < p.N(); i++ {
		w, h := p.W[i], p.H[i]
		if rot != nil && rot[i] {
			w, h = h, w
		}
		pl[p.Names[i]] = geom.NewRect(x[i], y[i], w, h)
	}
	return pl
}
