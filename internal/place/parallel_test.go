package place

import (
	"testing"

	"repro/internal/anneal"
	"repro/internal/circuits"
)

// TestParallelNeverWorseThanSerial pins the multi-start contract: a
// ParallelAnneal run's worker 0 replicates the serial chain exactly
// (same derived seed, same schedule), so with workers > 1 the best-of
// reduction can never return a worse cost than the serial run of the
// same Options. This is deterministic, not statistical: the serial
// chain is one of the candidates.
func TestParallelNeverWorseThanSerial(t *testing.T) {
	benches := map[string]*circuits.Bench{
		"miller": circuits.MillerOpAmp(),
		"folded": circuits.FoldedCascode(),
	}
	opt := anneal.Options{Seed: 5, MovesPerStage: 60, MaxStages: 30, StallStages: 30}
	popt := opt
	popt.Workers = 4
	type runner func(*Problem, anneal.Options) (*Result, error)
	placers := map[string]runner{"bstar": BStar, "seqpair": SeqPair, "slicing": Slicing}
	for bname, bench := range benches {
		prob, err := FromBench(bench)
		if err != nil {
			t.Fatal(err)
		}
		for pname, run := range placers {
			if pname != "seqpair" {
				p2 := *prob
				p2.Groups = nil
				prob = &p2
			}
			serial, err := run(prob, opt)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", bname, pname, err)
			}
			par, err := run(prob, popt)
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", bname, pname, err)
			}
			if par.Cost > serial.Cost {
				t.Errorf("%s/%s: parallel multi-start cost %v worse than serial %v",
					bname, pname, par.Cost, serial.Cost)
			}
			if par.Stats.Moves <= serial.Stats.Moves {
				t.Errorf("%s/%s: aggregate moves %d not above serial %d",
					bname, pname, par.Stats.Moves, serial.Stats.Moves)
			}
		}
	}
}

// TestParallelDeterministic pins reproducibility of the whole placer
// stack under multi-start: two identical runs give identical
// placements.
func TestParallelDeterministic(t *testing.T) {
	prob, err := FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	opt := anneal.Options{Seed: 9, MovesPerStage: 40, MaxStages: 20, StallStages: 20, Workers: 3}
	a, err := SeqPair(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeqPair(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("costs differ across identical runs: %v vs %v", a.Cost, b.Cost)
	}
	if !placementsEqual(a.Placement, b.Placement) {
		t.Fatal("placements differ across identical runs")
	}
}
