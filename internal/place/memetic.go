package place

import (
	"fmt"
	"math"

	"repro/internal/anneal"
	"repro/internal/engine"
)

// Memetic engines: the crossover-enabled GA+SA two-phase search of
// Zhang et al. [28] over representations implementing
// engine.Crossover. An evolutionary exploration recombines and mutates
// a population of encodings, then simulated annealing refines the
// evolved best in place — the kernel makes the combination available
// to every crossover-capable representation at once, where the
// pre-kernel code had one hand-wired two-phase placer per
// representation.

// DefaultCrossoverRate is the memetic engines' offspring recombination
// probability (the remainder mutates through the representation's own
// move set).
const DefaultCrossoverRate = 0.6

// memetic drives one two-phase run from a solution factory, with the
// sequence-pair-style feasibility contract on the initial draw.
func memetic(name string, newSol func(seed int64) anneal.Solution, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	init := newSol(sa.Seed)
	if math.IsInf(init.Cost(), 1) {
		return nil, fmt.Errorf("%s: no feasible initial solution after %d attempts", name, engine.InitRetries)
	}
	best, stats := anneal.TwoPhase(init, ga, sa)
	return finishResult(best.(*engine.Solution), stats)
}

// GeneticSeqPair runs the memetic engine over symmetric-feasible
// sequence pairs: offspring recombine through order crossover on both
// sequences (children that break symmetric feasibility pack to +Inf
// and die in selection), the rest mutate through the S-F-preserving
// move set, and annealing refines the evolved best. The returned
// placement is checked against the problem's symmetry groups like
// SeqPair's.
func GeneticSeqPair(p *Problem, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := memetic("place: genetic:seqpair", newSPSol(p), ga, sa)
	if err != nil {
		return nil, err
	}
	if err := p.ConstraintSet().Check(res.Placement); err != nil {
		return nil, fmt.Errorf("place: internal error, result violates constraints: %v", err)
	}
	return res, nil
}

// GeneticAbsolute runs the memetic engine over absolute coordinates:
// offspring inherit each module's position and rotation uniformly from
// two parents, the rest mutate through translate/swap/rotate moves,
// and annealing refines the evolved best. Like Absolute, the result
// may contain residual overlaps (penalized, not forbidden).
func GeneticAbsolute(p *Problem, ga anneal.GAOptions, sa anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return memetic("place: genetic:absolute", newAbsSol(p), ga, sa)
}
