package place

import (
	"fmt"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/engine"
	"repro/internal/geom"
)

// Slicing-tree placer over normalized Polish expressions (Wong/Liu
// style), representing the slicing layout model of ILAC [24]. The
// paper states slicing representations "limit the set of reachable
// layout topologies, degrading the layout density especially when
// cells are very different in size"; this placer exists to measure
// exactly that against the non-slicing SP and B*-tree placers.

// Operator tokens in a Polish expression; non-negative values are
// module ids.
const (
	opH = -1 // horizontal cut: operands stacked vertically
	opV = -2 // vertical cut: operands side by side
)

// polish is a normalized Polish expression in postfix form.
type polish []int

// validPolish checks the balloting property (every prefix has more
// operands than operators), the operand/operator counts, and
// normalization (no two adjacent identical operators).
func validPolish(e polish, n int) bool {
	operands, operators := 0, 0
	for i, t := range e {
		if t >= 0 {
			operands++
		} else {
			if t != opH && t != opV {
				return false
			}
			operators++
			if i > 0 && e[i-1] == t {
				return false // not normalized
			}
			if operators >= operands {
				return false
			}
		}
	}
	return operands == n && operators == n-1
}

// slNode is one node of the decoded slicing tree, linked by indices
// into the decoder's node arena so decoding allocates nothing at
// steady state.
type slNode struct {
	op          int // opH, opV, or module id for leaves
	left, right int // arena indices; -1 for leaves
	w, h        int
}

// slDecoder is the reusable scratch of one slicing representation: the
// node arena, the decode stack, the coordinate assignment stack and
// the per-module coordinates.
type slDecoder struct {
	nodes  []slNode
	stack  []int
	frames []slFrame
	x, y   []int
	pos    []int // operand/operator position scratch for moves
}

type slFrame struct{ node, x, y int }

// Slicing move kinds (the representation's move table): the classic
// Wong-Liu set plus module rotation.
const (
	slMoveM1 = iota // swap two adjacent operands
	slMoveM2        // complement one operator
	slMoveM3        // swap adjacent operand/operator
	slMoveRotate
	slMoveKinds
)

// slRep is the slicing-tree engine.Representation.
type slRep struct {
	prob *Problem
	expr polish
	rot  []bool
	dec  slDecoder

	savedExpr polish
	savedRot  []bool
}

func newSlRep(p *Problem, expr polish) *slRep {
	n := p.N()
	r := &slRep{
		prob: p,
		expr: expr,
		rot:  make([]bool, n),
	}
	r.dec.x = make([]int, n)
	r.dec.y = make([]int, n)
	return r
}

// decodeCoords builds the slicing tree in the node arena, sizes it
// bottom-up and assigns lower-left module coordinates into dec.x/y.
// It reports whether the expression was well-formed.
func (r *slRep) decodeCoords() bool {
	d := &r.dec
	d.nodes = d.nodes[:0]
	d.stack = d.stack[:0]
	for _, t := range r.expr {
		if t >= 0 {
			w, h := r.prob.W[t], r.prob.H[t]
			if r.rot[t] {
				w, h = h, w
			}
			d.nodes = append(d.nodes, slNode{op: t, left: -1, right: -1, w: w, h: h})
			d.stack = append(d.stack, len(d.nodes)-1)
			continue
		}
		if len(d.stack) < 2 {
			return false
		}
		rr := d.stack[len(d.stack)-1]
		l := d.stack[len(d.stack)-2]
		d.stack = d.stack[:len(d.stack)-2]
		nd := slNode{op: t, left: l, right: rr}
		if t == opV {
			nd.w = d.nodes[l].w + d.nodes[rr].w
			nd.h = max(d.nodes[l].h, d.nodes[rr].h)
		} else {
			nd.w = max(d.nodes[l].w, d.nodes[rr].w)
			nd.h = d.nodes[l].h + d.nodes[rr].h
		}
		d.nodes = append(d.nodes, nd)
		d.stack = append(d.stack, len(d.nodes)-1)
	}
	if len(d.stack) != 1 {
		return false
	}
	d.frames = append(d.frames[:0], slFrame{d.stack[0], 0, 0})
	for len(d.frames) > 0 {
		f := d.frames[len(d.frames)-1]
		d.frames = d.frames[:len(d.frames)-1]
		nd := &d.nodes[f.node]
		if nd.op >= 0 {
			d.x[nd.op], d.y[nd.op] = f.x, f.y
			continue
		}
		d.frames = append(d.frames, slFrame{nd.left, f.x, f.y})
		if nd.op == opV {
			d.frames = append(d.frames, slFrame{nd.right, f.x + d.nodes[nd.left].w, f.y})
		} else {
			d.frames = append(d.frames, slFrame{nd.right, f.x, f.y + d.nodes[nd.left].h})
		}
	}
	return true
}

// Pack implements engine.Representation: malformed expressions are
// infeasible.
func (r *slRep) Pack(c *engine.Coords) bool {
	if !r.decodeCoords() {
		return false
	}
	c.X, c.Y, c.W, c.H, c.Rot = r.dec.x, r.dec.y, r.prob.W, r.prob.H, r.rot
	return true
}

// Placement implements engine.Representation.
func (r *slRep) Placement() (geom.Placement, error) {
	if !r.decodeCoords() {
		return nil, fmt.Errorf("place: malformed polish expression")
	}
	pl := geom.Placement{}
	for i := 0; i < r.prob.N(); i++ {
		w, h := r.prob.W[i], r.prob.H[i]
		if r.rot[i] {
			w, h = h, w
		}
		pl[r.prob.Names[i]] = geom.NewRect(r.dec.x[i], r.dec.y[i], w, h)
	}
	return pl, nil
}

// applyMove applies one move of the given kind to the expression in
// place (without validity checking; callers retry against the saved
// state).
func (r *slRep) applyMove(kind int, rng *rand.Rand) {
	switch kind {
	case slMoveM1: // M1: swap two adjacent operands
		pos := r.tokenPositions(true)
		if len(pos) >= 2 {
			i := rng.Intn(len(pos) - 1)
			a, b := pos[i], pos[i+1]
			r.expr[a], r.expr[b] = r.expr[b], r.expr[a]
		}
	case slMoveM2: // M2: complement one operator
		pos := r.tokenPositions(false)
		if len(pos) > 0 {
			i := pos[rng.Intn(len(pos))]
			if r.expr[i] == opH {
				r.expr[i] = opV
			} else {
				r.expr[i] = opH
			}
		}
	case slMoveM3: // M3: swap adjacent operand/operator
		i := rng.Intn(len(r.expr) - 1)
		r.expr[i], r.expr[i+1] = r.expr[i+1], r.expr[i]
	case slMoveRotate: // rotate a module
		m := rng.Intn(r.prob.N())
		r.rot[m] = !r.rot[m]
	}
}

// mutate applies one classic Wong-Liu move (M1/M2/M3 or rotation) to
// the receiver. Invalid results are retried a bounded number of times
// against the saved state, re-drawing the kind per attempt; mutate
// reports whether a valid move was found.
func (r *slRep) mutate(rng *rand.Rand) bool {
	n := r.prob.N()
	for attempt := 0; attempt < 16; attempt++ {
		copy(r.expr, r.savedExpr)
		copy(r.rot, r.savedRot)
		r.applyMove(rng.Intn(slMoveKinds), rng)
		if validPolish(r.expr, n) {
			return true
		}
	}
	// All attempts invalid: restore the saved state.
	copy(r.expr, r.savedExpr)
	copy(r.rot, r.savedRot)
	return false
}

// tokenPositions collects the positions of operands (true) or
// operators (false) into the decoder's scratch slice.
func (r *slRep) tokenPositions(operands bool) []int {
	pos := r.dec.pos[:0]
	for i, t := range r.expr {
		if (t >= 0) == operands {
			pos = append(pos, i)
		}
	}
	r.dec.pos = pos
	return pos
}

// save records the current expression and rotations as the undo point.
func (r *slRep) save() {
	r.savedExpr = append(r.savedExpr[:0], r.expr...)
	r.savedRot = append(r.savedRot[:0], r.rot...)
}

// Perturb implements engine.Representation.
func (r *slRep) Perturb(rng *rand.Rand) bool {
	r.save()
	return r.mutate(rng)
}

// MoveKinds implements engine.MoveTable.
func (r *slRep) MoveKinds() int { return slMoveKinds }

// PerturbKind implements engine.MoveTable: the bounded retry loop
// restricted to one move kind.
func (r *slRep) PerturbKind(kind int, rng *rand.Rand) bool {
	r.save()
	n := r.prob.N()
	for attempt := 0; attempt < 16; attempt++ {
		copy(r.expr, r.savedExpr)
		copy(r.rot, r.savedRot)
		r.applyMove(kind, rng)
		if validPolish(r.expr, n) {
			return true
		}
	}
	copy(r.expr, r.savedExpr)
	copy(r.rot, r.savedRot)
	return false
}

// Undo implements engine.Representation.
func (r *slRep) Undo() {
	copy(r.expr, r.savedExpr)
	copy(r.rot, r.savedRot)
}

// slSnapshot is the best-so-far record of an slRep.
type slSnapshot struct {
	expr polish
	rot  []bool
}

// Snapshot implements engine.Representation.
func (r *slRep) Snapshot() any {
	return &slSnapshot{
		expr: append(polish(nil), r.expr...),
		rot:  append([]bool(nil), r.rot...),
	}
}

// Restore implements engine.Representation.
func (r *slRep) Restore(snapshot any) {
	sn := snapshot.(*slSnapshot)
	copy(r.expr, sn.expr)
	copy(r.rot, sn.rot)
}

// Clone implements engine.Representation.
func (r *slRep) Clone() engine.Representation {
	n := newSlRep(r.prob, append(polish(nil), r.expr...))
	copy(n.rot, r.rot)
	return n
}

// Slicing runs the slicing-tree annealing placer.
func Slicing(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if n == 0 {
		return &Result{Placement: geom.Placement{}}, nil
	}
	newSol := func(seed int64) anneal.Solution {
		// Initial expression: a single row m0 m1 V m2 V ...
		expr := polish{0}
		for i := 1; i < n; i++ {
			expr = append(expr, i, opV)
		}
		s := newKernel(p, newSlRep(p, expr))
		_ = seed // the deterministic initial row ignores the seed
		return s
	}
	best, stats := engine.Run(newSol, opt)
	return finishResult(best.(*engine.Solution), stats)
}
