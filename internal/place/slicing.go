package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/geom"
)

// Slicing-tree placer over normalized Polish expressions (Wong/Liu
// style), representing the slicing layout model of ILAC [24]. The
// paper states slicing representations "limit the set of reachable
// layout topologies, degrading the layout density especially when
// cells are very different in size"; this placer exists to measure
// exactly that against the non-slicing SP and B*-tree placers.

// Operator tokens in a Polish expression; non-negative values are
// module ids.
const (
	opH = -1 // horizontal cut: operands stacked vertically
	opV = -2 // vertical cut: operands side by side
)

// polish is a normalized Polish expression in postfix form.
type polish []int

// validPolish checks the balloting property (every prefix has more
// operands than operators), the operand/operator counts, and
// normalization (no two adjacent identical operators).
func validPolish(e polish, n int) bool {
	operands, operators := 0, 0
	for i, t := range e {
		if t >= 0 {
			operands++
		} else {
			if t != opH && t != opV {
				return false
			}
			operators++
			if i > 0 && e[i-1] == t {
				return false // not normalized
			}
			if operators >= operands {
				return false
			}
		}
	}
	return operands == n && operators == n-1
}

// slNode is one node of the decoded slicing tree.
type slNode struct {
	op          int // opH, opV, or module id for leaves
	left, right *slNode
	w, h        int
}

// decode builds the slicing tree and computes sizes bottom-up.
func (s *slSolution) decode() (*slNode, error) {
	var stack []*slNode
	for _, t := range s.expr {
		if t >= 0 {
			w, h := s.prob.W[t], s.prob.H[t]
			if s.rot[t] {
				w, h = h, w
			}
			stack = append(stack, &slNode{op: t, w: w, h: h})
			continue
		}
		if len(stack) < 2 {
			return nil, fmt.Errorf("place: malformed polish expression")
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		nd := &slNode{op: t, left: l, right: r}
		if t == opV {
			nd.w = l.w + r.w
			nd.h = max(l.h, r.h)
		} else {
			nd.w = max(l.w, r.w)
			nd.h = l.h + r.h
		}
		stack = append(stack, nd)
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("place: malformed polish expression")
	}
	return stack[0], nil
}

// slSolution is the annealer state for the slicing placer.
type slSolution struct {
	prob *Problem
	expr polish
	rot  []bool
	cost float64
}

func (s *slSolution) placement() (geom.Placement, error) {
	root, err := s.decode()
	if err != nil {
		return nil, err
	}
	pl := geom.Placement{}
	var assign func(n *slNode, x, y int)
	assign = func(n *slNode, x, y int) {
		if n.op >= 0 {
			pl[s.prob.Names[n.op]] = geom.NewRect(x, y, n.w, n.h)
			return
		}
		assign(n.left, x, y)
		if n.op == opV {
			assign(n.right, x+n.left.w, y)
		} else {
			assign(n.right, x, y+n.left.h)
		}
	}
	assign(root, 0, 0)
	return pl, nil
}

func (s *slSolution) evaluate() {
	pl, err := s.placement()
	if err != nil {
		s.cost = math.Inf(1)
		return
	}
	s.cost = s.prob.Cost(pl)
}

// Cost implements anneal.Solution.
func (s *slSolution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution with the classic Wong-Liu moves:
// M1 swap adjacent operands, M2 complement an operator, M3 swap an
// adjacent operand/operator pair, plus module rotation. Invalid
// results are retried a bounded number of times.
func (s *slSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &slSolution{
		prob: s.prob,
		expr: append(polish(nil), s.expr...),
		rot:  append([]bool(nil), s.rot...),
	}
	n := s.prob.N()
	for attempt := 0; attempt < 16; attempt++ {
		copy(next.expr, s.expr)
		copy(next.rot, s.rot)
		switch rng.Intn(4) {
		case 0: // M1: swap two adjacent operands
			ops := operandPositions(next.expr)
			if len(ops) >= 2 {
				i := rng.Intn(len(ops) - 1)
				a, b := ops[i], ops[i+1]
				next.expr[a], next.expr[b] = next.expr[b], next.expr[a]
			}
		case 1: // M2: complement one operator
			var opPos []int
			for i, t := range next.expr {
				if t < 0 {
					opPos = append(opPos, i)
				}
			}
			if len(opPos) > 0 {
				i := opPos[rng.Intn(len(opPos))]
				if next.expr[i] == opH {
					next.expr[i] = opV
				} else {
					next.expr[i] = opH
				}
			}
		case 2: // M3: swap adjacent operand/operator
			i := rng.Intn(len(next.expr) - 1)
			next.expr[i], next.expr[i+1] = next.expr[i+1], next.expr[i]
		case 3: // rotate a module
			m := rng.Intn(n)
			next.rot[m] = !next.rot[m]
		}
		if validPolish(next.expr, n) {
			next.evaluate()
			return next
		}
	}
	// All attempts invalid: return an unchanged copy.
	copy(next.expr, s.expr)
	copy(next.rot, s.rot)
	next.evaluate()
	return next
}

func operandPositions(e polish) []int {
	var out []int
	for i, t := range e {
		if t >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// Slicing runs the slicing-tree annealing placer.
func Slicing(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if n == 0 {
		return &Result{Placement: geom.Placement{}}, nil
	}
	// Initial expression: a single row m0 m1 V m2 V ...
	expr := polish{0}
	for i := 1; i < n; i++ {
		expr = append(expr, i, opV)
	}
	init := &slSolution{prob: p, expr: expr, rot: make([]bool, n)}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*slSolution)
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}
