package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/geom"
)

// Slicing-tree placer over normalized Polish expressions (Wong/Liu
// style), representing the slicing layout model of ILAC [24]. The
// paper states slicing representations "limit the set of reachable
// layout topologies, degrading the layout density especially when
// cells are very different in size"; this placer exists to measure
// exactly that against the non-slicing SP and B*-tree placers.

// Operator tokens in a Polish expression; non-negative values are
// module ids.
const (
	opH = -1 // horizontal cut: operands stacked vertically
	opV = -2 // vertical cut: operands side by side
)

// polish is a normalized Polish expression in postfix form.
type polish []int

// validPolish checks the balloting property (every prefix has more
// operands than operators), the operand/operator counts, and
// normalization (no two adjacent identical operators).
func validPolish(e polish, n int) bool {
	operands, operators := 0, 0
	for i, t := range e {
		if t >= 0 {
			operands++
		} else {
			if t != opH && t != opV {
				return false
			}
			operators++
			if i > 0 && e[i-1] == t {
				return false // not normalized
			}
			if operators >= operands {
				return false
			}
		}
	}
	return operands == n && operators == n-1
}

// slNode is one node of the decoded slicing tree, linked by indices
// into the decoder's node arena so decoding allocates nothing at
// steady state.
type slNode struct {
	op          int // opH, opV, or module id for leaves
	left, right int // arena indices; -1 for leaves
	w, h        int
}

// slDecoder is the reusable scratch of one slicing solution: the node
// arena, the decode stack, the coordinate assignment stack and the
// per-module coordinates.
type slDecoder struct {
	nodes  []slNode
	stack  []int
	frames []slFrame
	x, y   []int
	pos    []int // operand/operator position scratch for moves
}

type slFrame struct{ node, x, y int }

// slSolution is the annealer state for the slicing placer.
type slSolution struct {
	prob  *Problem
	expr  polish
	rot   []bool
	dec   slDecoder
	model *cost.Model
	cost  float64

	prevCost   float64
	savedExpr  polish
	savedRot   []bool
	modelMoved bool
	undo       anneal.Undo
}

func newSlSolution(p *Problem, expr polish) *slSolution {
	n := p.N()
	s := &slSolution{
		prob:  p,
		expr:  expr,
		rot:   make([]bool, n),
		model: p.NewModel(),
	}
	s.dec.x = make([]int, n)
	s.dec.y = make([]int, n)
	s.undo = func() {
		copy(s.expr, s.savedExpr)
		copy(s.rot, s.savedRot)
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		s.cost = s.prevCost
	}
	return s
}

// decodeCoords builds the slicing tree in the node arena, sizes it
// bottom-up and assigns lower-left module coordinates into dec.x/y.
// It reports whether the expression was well-formed.
func (s *slSolution) decodeCoords() bool {
	d := &s.dec
	d.nodes = d.nodes[:0]
	d.stack = d.stack[:0]
	for _, t := range s.expr {
		if t >= 0 {
			w, h := s.prob.W[t], s.prob.H[t]
			if s.rot[t] {
				w, h = h, w
			}
			d.nodes = append(d.nodes, slNode{op: t, left: -1, right: -1, w: w, h: h})
			d.stack = append(d.stack, len(d.nodes)-1)
			continue
		}
		if len(d.stack) < 2 {
			return false
		}
		r := d.stack[len(d.stack)-1]
		l := d.stack[len(d.stack)-2]
		d.stack = d.stack[:len(d.stack)-2]
		nd := slNode{op: t, left: l, right: r}
		if t == opV {
			nd.w = d.nodes[l].w + d.nodes[r].w
			nd.h = max(d.nodes[l].h, d.nodes[r].h)
		} else {
			nd.w = max(d.nodes[l].w, d.nodes[r].w)
			nd.h = d.nodes[l].h + d.nodes[r].h
		}
		d.nodes = append(d.nodes, nd)
		d.stack = append(d.stack, len(d.nodes)-1)
	}
	if len(d.stack) != 1 {
		return false
	}
	d.frames = append(d.frames[:0], slFrame{d.stack[0], 0, 0})
	for len(d.frames) > 0 {
		f := d.frames[len(d.frames)-1]
		d.frames = d.frames[:len(d.frames)-1]
		nd := &d.nodes[f.node]
		if nd.op >= 0 {
			d.x[nd.op], d.y[nd.op] = f.x, f.y
			continue
		}
		d.frames = append(d.frames, slFrame{nd.left, f.x, f.y})
		if nd.op == opV {
			d.frames = append(d.frames, slFrame{nd.right, f.x + d.nodes[nd.left].w, f.y})
		} else {
			d.frames = append(d.frames, slFrame{nd.right, f.x, f.y + d.nodes[nd.left].h})
		}
	}
	return true
}

func (s *slSolution) placement() (geom.Placement, error) {
	if !s.decodeCoords() {
		return nil, fmt.Errorf("place: malformed polish expression")
	}
	pl := geom.Placement{}
	for i := 0; i < s.prob.N(); i++ {
		w, h := s.prob.W[i], s.prob.H[i]
		if s.rot[i] {
			w, h = h, w
		}
		pl[s.prob.Names[i]] = geom.NewRect(s.dec.x[i], s.dec.y[i], w, h)
	}
	return pl, nil
}

func (s *slSolution) evaluate() {
	s.modelMoved = false
	if !s.decodeCoords() {
		s.cost = math.Inf(1)
		return
	}
	if s.prob.FullEval {
		s.cost = s.model.Eval(s.dec.x, s.dec.y, s.prob.W, s.prob.H, s.rot)
		return
	}
	s.cost = s.model.Update(s.dec.x, s.dec.y, s.prob.W, s.prob.H, s.rot)
	s.modelMoved = true
}

// Cost implements anneal.Solution.
func (s *slSolution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter.
func (s *slSolution) Moved() []int { return s.model.Moved() }

// mutate applies one classic Wong-Liu move to the receiver: M1 swap
// adjacent operands, M2 complement an operator, M3 swap an adjacent
// operand/operator pair, plus module rotation. Invalid results are
// retried a bounded number of times against the saved state; mutate
// reports whether a valid move was found.
func (s *slSolution) mutate(rng *rand.Rand) bool {
	n := s.prob.N()
	for attempt := 0; attempt < 16; attempt++ {
		copy(s.expr, s.savedExpr)
		copy(s.rot, s.savedRot)
		switch rng.Intn(4) {
		case 0: // M1: swap two adjacent operands
			pos := s.tokenPositions(true)
			if len(pos) >= 2 {
				i := rng.Intn(len(pos) - 1)
				a, b := pos[i], pos[i+1]
				s.expr[a], s.expr[b] = s.expr[b], s.expr[a]
			}
		case 1: // M2: complement one operator
			pos := s.tokenPositions(false)
			if len(pos) > 0 {
				i := pos[rng.Intn(len(pos))]
				if s.expr[i] == opH {
					s.expr[i] = opV
				} else {
					s.expr[i] = opH
				}
			}
		case 2: // M3: swap adjacent operand/operator
			i := rng.Intn(len(s.expr) - 1)
			s.expr[i], s.expr[i+1] = s.expr[i+1], s.expr[i]
		case 3: // rotate a module
			m := rng.Intn(n)
			s.rot[m] = !s.rot[m]
		}
		if validPolish(s.expr, n) {
			return true
		}
	}
	// All attempts invalid: restore the saved state.
	copy(s.expr, s.savedExpr)
	copy(s.rot, s.savedRot)
	return false
}

// tokenPositions collects the positions of operands (true) or
// operators (false) into the decoder's scratch slice.
func (s *slSolution) tokenPositions(operands bool) []int {
	pos := s.dec.pos[:0]
	for i, t := range s.expr {
		if (t >= 0) == operands {
			pos = append(pos, i)
		}
	}
	s.dec.pos = pos
	return pos
}

// save records the current expression and rotations as the undo point.
// It also clears modelMoved so a failed mutate (which skips evaluate)
// cannot leave undo pointing at the previous move's model journal.
func (s *slSolution) save() {
	s.savedExpr = append(s.savedExpr[:0], s.expr...)
	s.savedRot = append(s.savedRot[:0], s.rot...)
	s.prevCost = s.cost
	s.modelMoved = false
}

// Neighbor implements anneal.Solution: the same move set applied to a
// copy.
func (s *slSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newSlSolution(s.prob, append(polish(nil), s.expr...))
	copy(next.rot, s.rot)
	next.save()
	next.mutate(rng)
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution.
func (s *slSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.save()
	if s.mutate(rng) {
		s.evaluate()
	}
	return s.undo
}

// slSnapshot is the best-so-far record of an slSolution.
type slSnapshot struct {
	expr polish
	rot  []bool
}

// Snapshot implements anneal.MutableSolution.
func (s *slSolution) Snapshot() any {
	return &slSnapshot{
		expr: append(polish(nil), s.expr...),
		rot:  append([]bool(nil), s.rot...),
	}
}

// Restore implements anneal.MutableSolution: the expression is
// restored and the objective incrementally reevaluated against it.
func (s *slSolution) Restore(snapshot any) {
	sn := snapshot.(*slSnapshot)
	copy(s.expr, sn.expr)
	copy(s.rot, sn.rot)
	s.evaluate()
}

// Slicing runs the slicing-tree annealing placer.
func Slicing(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if n == 0 {
		return &Result{Placement: geom.Placement{}}, nil
	}
	newSol := func(seed int64) anneal.Solution {
		// Initial expression: a single row m0 m1 V m2 V ...
		expr := polish{0}
		for i := 1; i < n; i++ {
			expr = append(expr, i, opV)
		}
		s := newSlSolution(p, expr)
		s.evaluate()
		_ = seed // the deterministic initial row ignores the seed
		return s
	}
	best, stats := runAnneal(newSol, opt)
	sol := best.(*slSolution)
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}
