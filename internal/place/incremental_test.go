package place

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/seqpair"
	"repro/internal/tcg"
)

// incrementalFixtures builds one kernel solution per placer over a
// problem with every objective term enabled, so the property test
// exercises area, HPWL, outline, proximity and thermal caches
// together. The from-scratch reference is the kernel's own RefCost
// (fresh model, full Eval over the current encoding).
func incrementalFixtures(t *testing.T) map[string]*engine.Solution {
	t.Helper()
	bench := circuits.MillerOpAmp()
	newProb := func(groups bool) *Problem {
		p, err := FromBench(bench)
		if err != nil {
			t.Fatal(err)
		}
		if !groups {
			p.Groups = nil
		}
		p.OutlineW, p.OutlineH = 150, 150
		p.ProxWeight = 0.3
		if len(p.ProxGroups) == 0 {
			p.ProxGroups = [][]int{{0, 1, 2}}
		}
		p.ThermalWeight = 2
		return p
	}
	prob := newProb(true)
	// The thermal term derives its pairs from Groups, so the
	// group-free problems exercise every term except thermal; the
	// seqpair fixtures cover thermal.
	free := newProb(false)

	rng := rand.New(rand.NewSource(17))

	bt := newKernel(free, newBTRep(free, bstar.NewRandom(free.W, free.H, rng)))
	sps := newKernel(prob, newSPRep(prob, seqpair.RandomSF(prob.N(), prob.Groups, rng)))
	rej := newKernel(prob, newSPRejectRep(prob, seqpair.RandomSF(prob.N(), prob.Groups, rng)))
	tc := newKernel(free, newTCGRep(free, tcg.New(free.W, free.H)))

	n := free.N()
	expr := polish{0}
	for i := 1; i < n; i++ {
		expr = append(expr, i, opV)
	}
	sl := newKernel(free, newSlRep(free, expr))

	absR := newAbsRep(free, 10)
	for i := 0; i < n; i++ {
		absR.x[i], absR.y[i] = (i%3)*15, (i/3)*15
	}
	abs := engine.New(absR, absConfig(free, 10))

	return map[string]*engine.Solution{
		"bstar":          bt,
		"seqpair":        sps,
		"seqpair-reject": rej,
		"tcg":            tc,
		"slicing":        sl,
		"absolute":       abs,
	}
}

// TestIncrementalCostMatchesFullEval is the incremental-vs-full
// property test: random Perturb/Undo/Snapshot/Restore sequences on
// every placer, asserting after each step that the incrementally
// maintained cost equals a from-scratch evaluation with tolerance
// zero.
func TestIncrementalCostMatchesFullEval(t *testing.T) {
	for name, sol := range incrementalFixtures(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			check := func(step int, op string) {
				t.Helper()
				got, want := sol.Cost(), sol.RefCost()
				if !costsEqual(got, want) {
					t.Fatalf("step %d (%s): incremental cost %v, from-scratch %v", step, op, got, want)
				}
			}
			check(-1, "init")
			var snap any
			for step := 0; step < 250; step++ {
				switch r := rng.Intn(10); {
				case r < 6:
					sol.Perturb(rng)
					check(step, "perturb")
				case r < 8:
					undo := sol.Perturb(rng)
					undo()
					check(step, "undo")
				case r < 9:
					snap = sol.Snapshot()
					check(step, "snapshot")
				default:
					if snap != nil {
						sol.Restore(snap)
						check(step, "restore")
					}
				}
			}
		})
	}
}

// TestMoveReporter pins the optional MoveReporter protocol on every
// placer: the reported moved set holds unique in-range module ids, and
// a move the model saw as empty leaves the cost unchanged (the set is
// the model's actual dirty set, not a decoration).
func TestMoveReporter(t *testing.T) {
	bench := circuits.MillerOpAmp()
	prob, err := FromBench(bench)
	if err != nil {
		t.Fatal(err)
	}
	n := prob.N()
	for name, sol := range incrementalFixtures(t) {
		t.Run(name, func(t *testing.T) {
			mr, ok := anneal.MutableSolution(sol).(anneal.MoveReporter)
			if !ok {
				t.Fatalf("%s does not implement anneal.MoveReporter", name)
			}
			rng := rand.New(rand.NewSource(3))
			seen := make(map[int]bool, n)
			for step := 0; step < 100; step++ {
				before := sol.Cost()
				sol.Perturb(rng)
				moved := mr.Moved()
				clear(seen)
				for _, m := range moved {
					if m < 0 || m >= n {
						t.Fatalf("step %d: module id %d outside [0,%d)", step, m, n)
					}
					if seen[m] {
						t.Fatalf("step %d: module id %d reported twice", step, m)
					}
					seen[m] = true
				}
				// Infeasible outcomes (packing/predicate rejection)
				// bypass the model, so only finite-to-finite steps
				// must tie an empty moved set to an unchanged cost.
				if len(moved) == 0 && !math.IsInf(before, 1) && !math.IsInf(sol.Cost(), 1) &&
					sol.Cost() != before {
					t.Fatalf("step %d: empty moved set but cost changed %v -> %v",
						step, before, sol.Cost())
				}
			}
		})
	}
}
