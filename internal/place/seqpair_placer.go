package place

import (
	"fmt"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/seqpair"
)

// Result is the outcome of one placement run.
type Result struct {
	Placement geom.Placement
	Cost      float64
	Stats     anneal.Stats
	// Breakdown decomposes Cost per objective term, read from the
	// winning solution's own model, so the weighted values sum to Cost
	// exactly (bit for bit).
	Breakdown []cost.TermValue
}

// newKernel wraps a representation in the shared engine kernel over
// the problem's composite model.
func newKernel(p *Problem, rep engine.Representation) *engine.Solution {
	return engine.New(rep, engine.Config{
		NewModel:      func(engine.Representation) *cost.Model { return p.NewModel() },
		FullEval:      p.FullEval,
		AdaptiveMoves: p.AdaptiveMoves,
	})
}

// finishResult assembles a Result from the winning kernel solution:
// the named placement (normalized) and the per-term cost breakdown
// from the solution's own model.
func finishResult(sol *engine.Solution, stats anneal.Stats) (*Result, error) {
	pl, err := sol.Placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.Cost(), Stats: stats, Breakdown: sol.Breakdown()}, nil
}

// Sequence-pair move kinds (the representation's move table).
const (
	spMoveSequence = iota // S-F-preserving sequence move
	spMoveRotate          // pairwise rotation
	spMoveKinds
)

// spLocalMoveMinN is the module count above which group-free sequence
// moves switch from global swaps to range-limited PerturbLocal windows.
// Bounded windows keep the incremental packer's re-scan short — the
// TimberWolf-style move discipline that makes 10⁴–10⁵-module walks
// affordable. The threshold sits above every pinned golden instance,
// so the RNG draw sequence (and thus the goldens) is unchanged below
// it.
const spLocalMoveMinN = 2048

// spRep is the symmetric-feasible sequence-pair Representation.
// Rotations are applied pairwise so symmetric pairs stay
// dimension-matched; effective dimensions are maintained incrementally
// in w/h and packing reuses the SP's cached solver workspaces, so a
// proposed move allocates almost nothing. On problems without symmetry
// groups, packing is incremental: each move records its disturbed
// alpha window and Pack re-scans only that region (bit-identical to
// the full FAST-SP scan by the incpack property tests).
type spRep struct {
	prob *Problem
	sp   *seqpair.SP
	rot  []bool
	w, h []int // effective dims, kept in sync with rot
	pws  seqpair.PackWorkspace
	ip   seqpair.IncPack

	saved          seqpair.State
	spMoved        bool // last move touched the sequences (vs rotation only)
	rotA, rotB     int  // modules whose rotation the last move flipped (-1 none)
	pendLo, pendHi int  // dirty alpha window not yet handed to ip (empty when lo > hi)
	moveLo, moveHi int  // window of the in-flight move, re-disturbed on Undo
}

func newSPRep(p *Problem, sp *seqpair.SP) *spRep {
	return &spRep{
		prob:   p,
		sp:     sp,
		rot:    make([]bool, p.N()),
		w:      append([]int(nil), p.W...),
		h:      append([]int(nil), p.H...),
		pendLo: 1, pendHi: 0,
		moveLo: 1, moveHi: 0,
	}
}

// markMove records [lo, hi] (any order) as disturbed by the in-flight
// move: merged into the pending window for the next incremental pack
// and remembered so Undo can re-disturb it.
func (r *spRep) markMove(lo, hi int) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if r.moveHi < r.moveLo {
		r.moveLo, r.moveHi = lo, hi
	} else {
		r.moveLo, r.moveHi = min(r.moveLo, lo), max(r.moveHi, hi)
	}
	if r.pendHi < r.pendLo {
		r.pendLo, r.pendHi = lo, hi
	} else {
		r.pendLo, r.pendHi = min(r.pendLo, lo), max(r.pendHi, hi)
	}
}

// flip toggles module m's rotation and its effective dimensions.
func (r *spRep) flip(m int) {
	r.rot[m] = !r.rot[m]
	r.w[m], r.h[m] = r.h[m], r.w[m]
}

// Perturb implements engine.Representation: an S-F-preserving sequence
// move four times out of five, a pairwise rotation otherwise.
func (r *spRep) Perturb(rng *rand.Rand) bool {
	if rng.Intn(5) == 0 {
		return r.PerturbKind(spMoveRotate, rng)
	}
	return r.PerturbKind(spMoveSequence, rng)
}

// MoveKinds implements engine.MoveTable.
func (r *spRep) MoveKinds() int { return spMoveKinds }

// PerturbKind implements engine.MoveTable.
func (r *spRep) PerturbKind(kind int, rng *rand.Rand) bool {
	r.spMoved = false
	r.rotA, r.rotB = -1, -1
	r.moveLo, r.moveHi = 1, 0
	if kind == spMoveRotate {
		m := rng.Intn(r.prob.N())
		r.flip(m)
		r.rotA = m
		// Rotate the symmetric counterpart too, keeping pair dims
		// matched; self-symmetric modules need even height after
		// rotation, which we cannot guarantee, so skip them.
		for _, g := range r.prob.Groups {
			if sym, ok := g.Sym(m); ok {
				if sym == m {
					r.flip(m) // revert: self-symmetric
					r.rotA = -1
					break
				}
				r.flip(sym)
				r.rotB = sym
				break
			}
		}
		if r.rotA >= 0 {
			r.markMove(r.sp.PosAlpha(r.rotA), r.sp.PosAlpha(r.rotA))
		}
		if r.rotB >= 0 {
			r.markMove(r.sp.PosAlpha(r.rotB), r.sp.PosAlpha(r.rotB))
		}
		return true
	}
	r.sp.SaveState(&r.saved)
	r.spMoved = true
	n := r.prob.N()
	if len(r.prob.Groups) == 0 && n >= spLocalMoveMinN {
		lo, hi := r.sp.PerturbLocal(rng, max(32, n/64))
		r.markMove(lo, hi)
		return true
	}
	_, a, b := r.sp.PerturbSFTouched(rng, r.prob.Groups)
	if a >= 0 {
		r.markMove(r.sp.PosAlpha(a), r.sp.PosAlpha(b))
	} else if n > 0 {
		// Group move (paired swap / rotation / repair): the repair can
		// reorder members anywhere in beta, so the whole range is dirty.
		r.markMove(0, n-1)
	}
	return true
}

// Undo implements engine.Representation.
func (r *spRep) Undo() {
	if r.spMoved {
		r.sp.LoadState(&r.saved)
	}
	if r.rotA >= 0 {
		r.flip(r.rotA)
	}
	if r.rotB >= 0 {
		r.flip(r.rotB)
	}
	// Reverting re-dirties the move's window: a pack may have consumed
	// it between Perturb and Undo.
	if r.moveHi >= r.moveLo {
		lo, hi := r.moveLo, r.moveHi
		r.markMove(lo, hi)
	}
}

// Pack implements engine.Representation. With symmetry groups the
// symmetric constructor is used; codes it rejects (cross-group
// conflicts) are infeasible so the kernel prices the move at +Inf.
func (r *spRep) Pack(c *engine.Coords) bool {
	if len(r.prob.Groups) > 0 {
		x, y, err := r.sp.PackSymmetric(r.w, r.h, r.prob.Groups)
		if err != nil {
			return false
		}
		c.X, c.Y, c.W, c.H, c.Rot = x, y, r.w, r.h, nil
		return true
	}
	if r.pendHi >= r.pendLo {
		r.ip.Disturb(r.pendLo, r.pendHi)
		r.pendLo, r.pendHi = 1, 0
	}
	x, y := r.sp.PackIncrementalInto(&r.ip, r.w, r.h)
	c.X, c.Y, c.W, c.H, c.Rot = x, y, r.w, r.h, nil
	return true
}

// spSnapshot is the best-so-far record of an spRep.
type spSnapshot struct {
	state seqpair.State
	rot   []bool
	w, h  []int
}

// Snapshot implements engine.Representation.
func (r *spRep) Snapshot() any {
	sn := &spSnapshot{
		rot: append([]bool(nil), r.rot...),
		w:   append([]int(nil), r.w...),
		h:   append([]int(nil), r.h...),
	}
	r.sp.SaveState(&sn.state)
	return sn
}

// Restore implements engine.Representation. Restores happen at stage
// granularity (checkpoints, replica exchanges), so a full re-scan on
// the next pack is cheap relative to tracking the restored delta.
func (r *spRep) Restore(snapshot any) {
	sn := snapshot.(*spSnapshot)
	r.sp.LoadState(&sn.state)
	copy(r.rot, sn.rot)
	copy(r.w, sn.w)
	copy(r.h, sn.h)
	r.ip.Invalidate()
	r.pendLo, r.pendHi = 1, 0
}

// Clone implements engine.Representation.
func (r *spRep) Clone() engine.Representation {
	n := newSPRep(r.prob, r.sp.Clone())
	copy(n.rot, r.rot)
	copy(n.w, r.w)
	copy(n.h, r.h)
	return n
}

// Placement implements engine.Representation.
func (r *spRep) Placement() (geom.Placement, error) {
	if len(r.prob.Groups) > 0 {
		return r.sp.SymmetricPlacement(r.prob.Names, r.w, r.h, r.prob.Groups)
	}
	return r.sp.Placement(r.prob.Names, r.w, r.h)
}

// CrossoverFrom implements engine.Crossover: order crossover on both
// sequences. The receiver is a clone of parent a (rotations inherit
// from it); children that break symmetric feasibility pack to +Inf
// and die in selection — the rejection strategy.
func (r *spRep) CrossoverFrom(a, b engine.Representation, rng *rand.Rand) {
	pb := asSPRep(b)
	if pb == nil {
		return
	}
	alpha := orderCross(r.sp.Alpha, pb.sp.Alpha, rng)
	beta := orderCross(r.sp.Beta, pb.sp.Beta, rng)
	if sp, err := seqpair.FromSequences(alpha, beta); err == nil {
		r.sp = sp
		r.ip.Invalidate()
		r.pendLo, r.pendHi = 1, 0
	}
}

// asSPRep unwraps the sequence-pair state behind either sequence-pair
// representation (the S-F-preserving one or its rejection variant).
func asSPRep(rep engine.Representation) *spRep {
	switch v := rep.(type) {
	case *spRep:
		return v
	case *spRejectRep:
		return &v.spRep
	}
	return nil
}

// orderCross is classic order crossover (OX) over permutations: the
// child keeps p1's segment [i, j] in place and fills the remaining
// positions with the other elements in p2's order.
func orderCross(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	child := make([]int, n)
	if n < 2 {
		copy(child, p1)
		return child
	}
	i, j := rng.Intn(n), rng.Intn(n)
	if i > j {
		i, j = j, i
	}
	inSeg := make(map[int]bool, j-i+1)
	for k := i; k <= j; k++ {
		child[k] = p1[k]
		inSeg[p1[k]] = true
	}
	pos := 0
	for _, m := range p2 {
		if inSeg[m] {
			continue
		}
		for pos >= i && pos <= j {
			pos++
		}
		child[pos] = m
		pos++
	}
	return child
}

// SeqPair runs the Section II placer: simulated annealing restricted
// to symmetric-feasible sequence-pairs, packed with the symmetric
// constructor. The returned placement always satisfies the problem's
// symmetry groups (validated against the geometric checker).
func SeqPair(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	best, stats, err := engine.RunFeasible("place: seqpair", newSPSol(p), opt)
	if err != nil {
		return nil, err
	}
	res, err := finishResult(best.(*engine.Solution), stats)
	if err != nil {
		return nil, err
	}
	if err := p.ConstraintSet().Check(res.Placement); err != nil {
		return nil, fmt.Errorf("place: internal error, result violates constraints: %v", err)
	}
	return res, nil
}

// newSPSol is the sequence-pair solution factory shared by the
// annealing and memetic engines: a random S-F code per attempt, with
// the kernel's feasible-init retries absorbing cross-group-infeasible
// draws.
func newSPSol(p *Problem) func(seed int64) anneal.Solution {
	return func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 7))
		// A random initial S-F code may still be cross-group
		// infeasible; engine.FeasibleInit retries the shared bound.
		s, _ := engine.FeasibleInit(func() anneal.Solution {
			return newKernel(p, newSPRep(p, seqpair.RandomSF(p.N(), p.Groups, rng)))
		})
		return s
	}
}

// SeqPairUnconstrainedMoves is the ablation variant of SeqPair: moves
// are arbitrary sequence-pair perturbations and non-S-F codes are
// rejected by cost (the "rejection" strategy), instead of the move set
// preserving property (1) by construction. Compare against SeqPair in
// the BenchmarkSFMovesVsRejection ablation.
func SeqPairUnconstrainedMoves(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 7))
		s, _ := engine.FeasibleInit(func() anneal.Solution {
			return newKernel(p, newSPRejectRep(p, seqpair.RandomSF(p.N(), p.Groups, rng)))
		})
		return s
	}
	best, stats := engine.Run(newSol, opt)
	return finishResult(best.(*engine.Solution), stats)
}

// spRejectRep perturbs without repairing and relies on the S-F
// predicate to reject infeasible codes: its single move kind is an
// arbitrary sequence swap, and Pack reports non-S-F codes infeasible.
type spRejectRep struct {
	spRep
}

func newSPRejectRep(p *Problem, sp *seqpair.SP) *spRejectRep {
	r := &spRejectRep{}
	r.spRep = *newSPRep(p, sp)
	return r
}

// Perturb implements engine.Representation with the rejection move
// set.
func (r *spRejectRep) Perturb(rng *rand.Rand) bool {
	return r.PerturbKind(0, rng)
}

// MoveKinds implements engine.MoveTable: the rejection variant has one
// move kind (an arbitrary sequence swap).
func (r *spRejectRep) MoveKinds() int { return 1 }

// PerturbKind implements engine.MoveTable.
func (r *spRejectRep) PerturbKind(_ int, rng *rand.Rand) bool {
	r.sp.SaveState(&r.saved)
	r.spMoved = true
	r.rotA, r.rotB = -1, -1
	r.moveLo, r.moveHi = 1, 0
	n := r.prob.N()
	if n >= 2 {
		i, j := rng.Intn(n), rng.Intn(n-1)
		if j >= i {
			j++
		}
		if rng.Intn(2) == 0 {
			r.sp.SwapAlpha(i, j)
			r.markMove(i, j)
		} else {
			a, b := r.sp.Beta[i], r.sp.Beta[j]
			r.sp.SwapBeta(i, j)
			r.markMove(r.sp.PosAlpha(a), r.sp.PosAlpha(b))
		}
	}
	return true
}

// Pack implements engine.Representation: non-S-F codes are infeasible
// before any packing runs (the model never sees the move).
func (r *spRejectRep) Pack(c *engine.Coords) bool {
	if !r.sp.SymmetricFeasible(r.prob.Groups) {
		return false
	}
	return r.spRep.Pack(c)
}

// Clone implements engine.Representation.
func (r *spRejectRep) Clone() engine.Representation {
	n := &spRejectRep{}
	n.spRep = *(r.spRep.Clone().(*spRep))
	return n
}
