package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/seqpair"
)

// Result is the outcome of one placement run.
type Result struct {
	Placement geom.Placement
	Cost      float64
	Stats     anneal.Stats
	// Breakdown decomposes Cost per objective term, read from the
	// winning solution's own model, so the weighted values sum to Cost
	// exactly (bit for bit).
	Breakdown []cost.TermValue
}

// spSolution is a symmetric-feasible sequence-pair state for the
// annealer. Rotations are applied pairwise so symmetric pairs stay
// dimension-matched. Effective dimensions are maintained incrementally
// in w/h, packing reuses the SP's cached solver workspaces, and the
// objective is the solution-owned cost.Model updated over the dirty
// set of each repack, so a proposed move allocates almost nothing and
// reevaluates only the nets its move displaced.
type spSolution struct {
	prob  *Problem
	sp    *seqpair.SP
	rot   []bool
	w, h  []int // effective dims, kept in sync with rot
	pws   seqpair.PackWorkspace
	model *cost.Model
	cost  float64

	prevCost   float64
	saved      seqpair.State
	spMoved    bool // last move touched the sequences (vs rotation only)
	modelMoved bool // last move updated the model (vs infeasible pack)
	rotA, rotB int  // modules whose rotation the last move flipped (-1 none)
	undo       anneal.Undo
}

// init populates the receiver in place and binds the undo closure to
// it. Embedding types must call init on the embedded field of the
// final struct (never copy an initialized spSolution by value): the
// closure captures the receiver.
func (s *spSolution) init(p *Problem, sp *seqpair.SP) {
	n := p.N()
	s.prob = p
	s.sp = sp
	s.rot = make([]bool, n)
	s.w = append([]int(nil), p.W...)
	s.h = append([]int(nil), p.H...)
	s.model = p.NewModel()
	s.undo = func() {
		if s.spMoved {
			s.sp.LoadState(&s.saved)
		}
		if s.rotA >= 0 {
			s.flip(s.rotA)
		}
		if s.rotB >= 0 {
			s.flip(s.rotB)
		}
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		s.cost = s.prevCost
	}
}

func newSPSolution(p *Problem, sp *seqpair.SP) *spSolution {
	s := &spSolution{}
	s.init(p, sp)
	return s
}

// flip toggles module m's rotation and its effective dimensions.
func (s *spSolution) flip(m int) {
	s.rot[m] = !s.rot[m]
	s.w[m], s.h[m] = s.h[m], s.w[m]
}

// placement packs the code into a named placement for the final
// result. With symmetry groups the symmetric constructor is used;
// codes it rejects (cross-group conflicts) get infinite cost so the
// annealer treats the move as rejected.
func (s *spSolution) placement() (geom.Placement, error) {
	if len(s.prob.Groups) > 0 {
		return s.sp.SymmetricPlacement(s.prob.Names, s.w, s.h, s.prob.Groups)
	}
	return s.sp.Placement(s.prob.Names, s.w, s.h)
}

func (s *spSolution) evaluate() {
	s.modelMoved = false
	if len(s.prob.Groups) > 0 {
		x, y, err := s.sp.PackSymmetric(s.w, s.h, s.prob.Groups)
		if err != nil {
			s.cost = math.Inf(1)
			return
		}
		s.updateModel(x, y)
		return
	}
	x, y := s.sp.PackInto(&s.pws, s.w, s.h)
	s.updateModel(x, y)
}

// updateModel feeds freshly packed coordinates to the objective:
// incrementally over the diffed dirty set by default, or from scratch
// under Problem.FullEval.
func (s *spSolution) updateModel(x, y []int) {
	if s.prob.FullEval {
		s.cost = s.model.Eval(x, y, s.w, s.h, nil)
		return
	}
	s.cost = s.model.Update(x, y, s.w, s.h, nil)
	s.modelMoved = true
}

// Cost implements anneal.Solution.
func (s *spSolution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter.
func (s *spSolution) Moved() []int { return s.model.Moved() }

// mutate applies one S-F-preserving move or a pairwise rotation to the
// receiver, recording undo information.
func (s *spSolution) mutate(rng *rand.Rand) {
	s.spMoved = false
	s.rotA, s.rotB = -1, -1
	if rng.Intn(5) == 0 { // rotation move
		m := rng.Intn(s.prob.N())
		s.flip(m)
		s.rotA = m
		// Rotate the symmetric counterpart too, keeping pair dims
		// matched; self-symmetric modules need even height after
		// rotation, which we cannot guarantee, so skip them.
		for _, g := range s.prob.Groups {
			if sym, ok := g.Sym(m); ok {
				if sym == m {
					s.flip(m) // revert: self-symmetric
					s.rotA = -1
					break
				}
				s.flip(sym)
				s.rotB = sym
				break
			}
		}
		return
	}
	s.sp.SaveState(&s.saved)
	s.spMoved = true
	s.sp.PerturbSF(rng, s.prob.Groups)
}

// Neighbor implements anneal.Solution: an S-F-preserving sequence move
// or a pairwise rotation on a copy.
func (s *spSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newSPSolution(s.prob, s.sp.Clone())
	copy(next.rot, s.rot)
	copy(next.w, s.w)
	copy(next.h, s.h)
	next.mutate(rng)
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution.
func (s *spSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.prevCost = s.cost
	s.mutate(rng)
	s.evaluate()
	return s.undo
}

// spSnapshot is the best-so-far record of an spSolution.
type spSnapshot struct {
	state seqpair.State
	rot   []bool
	w, h  []int
}

// Snapshot implements anneal.MutableSolution.
func (s *spSolution) Snapshot() any {
	sn := &spSnapshot{
		rot: append([]bool(nil), s.rot...),
		w:   append([]int(nil), s.w...),
		h:   append([]int(nil), s.h...),
	}
	s.sp.SaveState(&sn.state)
	return sn
}

// Restore implements anneal.MutableSolution: the topology is restored
// and the objective reevaluated against it (the model's diff touches
// exactly the modules the restore displaced, so the incremental totals
// stay bit-exact with a from-scratch evaluation).
func (s *spSolution) Restore(snapshot any) {
	sn := snapshot.(*spSnapshot)
	s.sp.LoadState(&sn.state)
	copy(s.rot, sn.rot)
	copy(s.w, sn.w)
	copy(s.h, sn.h)
	s.evaluate()
}

// SeqPair runs the Section II placer: simulated annealing restricted
// to symmetric-feasible sequence-pairs, packed with the symmetric
// constructor. The returned placement always satisfies the problem's
// symmetry groups (validated against the geometric checker).
func SeqPair(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 7))
		// A random initial S-F code may still be cross-group
		// infeasible; anneal.FeasibleInit retries the shared bound.
		s, _ := anneal.FeasibleInit(func() anneal.Solution {
			s := newSPSolution(p, seqpair.RandomSF(p.N(), p.Groups, rng))
			s.evaluate()
			return s
		})
		return s
	}
	var best anneal.Solution
	var stats anneal.Stats
	if opt.Workers > 1 {
		best, stats = anneal.ParallelAnneal(newSol, opt.Workers, opt)
	} else {
		probe := newSol(opt.Seed)
		if math.IsInf(probe.Cost(), 1) {
			return nil, fmt.Errorf("place: seqpair: no feasible initial solution after %d attempts", anneal.InitRetries)
		}
		best, stats = anneal.Anneal(probe, opt)
	}
	sol := best.(*spSolution)
	if math.IsInf(sol.cost, 1) {
		return nil, fmt.Errorf("place: seqpair: no feasible initial solution after %d attempts", anneal.InitRetries)
	}
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	if err := p.ConstraintSet().Check(pl); err != nil {
		return nil, fmt.Errorf("place: internal error, result violates constraints: %v", err)
	}
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}

// SeqPairUnconstrainedMoves is the ablation variant of SeqPair: moves
// are arbitrary sequence-pair perturbations and non-S-F codes are
// rejected by cost (the "rejection" strategy), instead of the move set
// preserving property (1) by construction. Compare against SeqPair in
// the BenchmarkSFMovesVsRejection ablation.
func SeqPairUnconstrainedMoves(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 7))
		s, _ := anneal.FeasibleInit(func() anneal.Solution {
			s := newSPRejectSolution(p, seqpair.RandomSF(p.N(), p.Groups, rng))
			s.evaluate()
			return s
		})
		return s
	}
	best, stats := runAnneal(newSol, opt)
	sol := best.(*spRejectSolution)
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}

// spRejectSolution perturbs without repairing and relies on the S-F
// predicate to reject infeasible codes. Its moves never touch
// rotations (rotA/rotB stay -1), so the embedded solution's undo
// closure reverts them exactly.
type spRejectSolution struct {
	spSolution
}

func newSPRejectSolution(p *Problem, sp *seqpair.SP) *spRejectSolution {
	s := &spRejectSolution{}
	s.spSolution.init(p, sp)
	return s
}

// rejectMutate applies one arbitrary sequence move to the receiver.
func (s *spRejectSolution) rejectMutate(rng *rand.Rand) {
	s.sp.SaveState(&s.saved)
	s.spMoved = true
	s.rotA, s.rotB = -1, -1
	n := s.prob.N()
	if n >= 2 {
		i, j := rng.Intn(n), rng.Intn(n-1)
		if j >= i {
			j++
		}
		if rng.Intn(2) == 0 {
			s.sp.SwapAlpha(i, j)
		} else {
			s.sp.SwapBeta(i, j)
		}
	}
}

func (s *spRejectSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newSPRejectSolution(s.prob, s.sp.Clone())
	copy(next.rot, s.rot)
	copy(next.w, s.w)
	copy(next.h, s.h)
	next.rejectMutate(rng)
	if !next.sp.SymmetricFeasible(s.prob.Groups) {
		next.cost = math.Inf(1)
		return next
	}
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution with the rejection move
// set.
func (s *spRejectSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.prevCost = s.cost
	s.rejectMutate(rng)
	if !s.sp.SymmetricFeasible(s.prob.Groups) {
		s.modelMoved = false // the model never saw this move
		s.cost = math.Inf(1)
		return s.undo
	}
	s.evaluate()
	return s.undo
}
