package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/seqpair"
)

// Result is the outcome of one placement run.
type Result struct {
	Placement geom.Placement
	Cost      float64
	Stats     anneal.Stats
}

// spSolution is a symmetric-feasible sequence-pair state for the
// annealer. Rotations are applied pairwise so symmetric pairs stay
// dimension-matched.
type spSolution struct {
	prob *Problem
	sp   *seqpair.SP
	rot  []bool
	cost float64
}

func (s *spSolution) dims() (w, h []int) {
	n := s.prob.N()
	w = make([]int, n)
	h = make([]int, n)
	for i := 0; i < n; i++ {
		if s.rot[i] {
			w[i], h[i] = s.prob.H[i], s.prob.W[i]
		} else {
			w[i], h[i] = s.prob.W[i], s.prob.H[i]
		}
	}
	return w, h
}

// placement packs the code. With symmetry groups the symmetric
// constructor is used; codes it rejects (cross-group conflicts) get
// infinite cost so the annealer treats the move as rejected.
func (s *spSolution) placement() (geom.Placement, error) {
	w, h := s.dims()
	if len(s.prob.Groups) > 0 {
		return s.sp.SymmetricPlacement(s.prob.Names, w, h, s.prob.Groups)
	}
	return s.sp.Placement(s.prob.Names, w, h)
}

func (s *spSolution) evaluate() {
	pl, err := s.placement()
	if err != nil {
		s.cost = math.Inf(1)
		return
	}
	s.cost = s.prob.Cost(pl)
}

// Cost implements anneal.Solution.
func (s *spSolution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution: an S-F-preserving sequence move
// or a pairwise rotation.
func (s *spSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &spSolution{
		prob: s.prob,
		sp:   s.sp.Clone(),
		rot:  append([]bool(nil), s.rot...),
	}
	if rng.Intn(5) == 0 { // rotation move
		m := rng.Intn(s.prob.N())
		next.rot[m] = !next.rot[m]
		// Rotate the symmetric counterpart too, keeping pair dims
		// matched; self-symmetric modules need even height after
		// rotation, which we cannot guarantee, so skip them.
		for _, g := range s.prob.Groups {
			if sym, ok := g.Sym(m); ok {
				if sym == m {
					next.rot[m] = s.rot[m] // revert: self-symmetric
					break
				}
				next.rot[sym] = !next.rot[sym]
				break
			}
		}
	} else {
		next.sp.PerturbSF(rng, s.prob.Groups)
	}
	next.evaluate()
	return next
}

// SeqPair runs the Section II placer: simulated annealing restricted
// to symmetric-feasible sequence-pairs, packed with the symmetric
// constructor. The returned placement always satisfies the problem's
// symmetry groups (validated against the geometric checker).
func SeqPair(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	init := &spSolution{
		prob: p,
		sp:   seqpair.RandomSF(p.N(), p.Groups, rng),
		rot:  make([]bool, p.N()),
	}
	init.evaluate()
	// A random initial S-F code may still be cross-group infeasible;
	// retry a few times.
	for tries := 0; math.IsInf(init.cost, 1) && tries < 64; tries++ {
		init.sp = seqpair.RandomSF(p.N(), p.Groups, rng)
		init.evaluate()
	}
	if math.IsInf(init.cost, 1) {
		return nil, fmt.Errorf("place: could not find a feasible initial symmetric-feasible code")
	}
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*spSolution)
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	if err := p.ConstraintSet().Check(pl); err != nil {
		return nil, fmt.Errorf("place: internal error, result violates constraints: %v", err)
	}
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}

// SeqPairUnconstrainedMoves is the ablation variant of SeqPair: moves
// are arbitrary sequence-pair perturbations and non-S-F codes are
// rejected by cost (the "rejection" strategy), instead of the move set
// preserving property (1) by construction. Compare against SeqPair in
// the BenchmarkSFMovesVsRejection ablation.
func SeqPairUnconstrainedMoves(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	init := &spRejectSolution{spSolution{
		prob: p,
		sp:   seqpair.RandomSF(p.N(), p.Groups, rng),
		rot:  make([]bool, p.N()),
	}}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*spRejectSolution)
	pl, err := sol.placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}

// spRejectSolution perturbs without repairing and relies on the S-F
// predicate to reject infeasible codes.
type spRejectSolution struct {
	spSolution
}

func (s *spRejectSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &spRejectSolution{spSolution{
		prob: s.prob,
		sp:   s.sp.Clone(),
		rot:  append([]bool(nil), s.rot...),
	}}
	// Arbitrary move: swap random positions in a random sequence.
	n := s.prob.N()
	if n >= 2 {
		i, j := rng.Intn(n), rng.Intn(n-1)
		if j >= i {
			j++
		}
		if rng.Intn(2) == 0 {
			next.sp.SwapAlpha(i, j)
		} else {
			next.sp.SwapBeta(i, j)
		}
	}
	if !next.sp.SymmetricFeasible(s.prob.Groups) {
		next.cost = math.Inf(1)
		return next
	}
	next.evaluate()
	return next
}
