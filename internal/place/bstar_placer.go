package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/geom"
)

// btSolution wraps a B*-tree for the annealer.
type btSolution struct {
	prob *Problem
	tree *bstar.Tree
	cost float64
}

func (s *btSolution) evaluate() {
	pl, err := s.tree.Placement(s.prob.Names)
	if err != nil {
		panic(err) // names/tree sizes are fixed by construction
	}
	s.cost = s.prob.Cost(pl)
}

// Cost implements anneal.Solution.
func (s *btSolution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution using the classic B*-tree
// perturbations (rotate, move, swap).
func (s *btSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &btSolution{prob: s.prob, tree: s.tree.Clone()}
	next.tree.Perturb(rng)
	next.evaluate()
	return next
}

// BStar runs a plain B*-tree annealing placer. Symmetry groups are not
// enforced (see package asf for symmetry islands and package hbstar
// for hierarchical constraints); it serves as the unconstrained
// topological baseline.
func BStar(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 11))
	init := &btSolution{prob: p, tree: bstar.NewRandom(p.W, p.H, rng)}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*btSolution)
	pl, err := sol.tree.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}

// absSolution is the absolute-coordinate baseline state: explicit
// module positions that may overlap during the search, with overlap
// penalized in the cost — the exploration style of ILAC/KOAN the paper
// contrasts with topological representations.
type absSolution struct {
	prob    *Problem
	x, y    []int
	rot     []bool
	span    int // translation range for moves
	penalty float64
	cost    float64
}

func (s *absSolution) placement() geom.Placement {
	return s.prob.BuildPlacement(s.x, s.y, s.rot)
}

func (s *absSolution) evaluate() {
	pl := s.placement()
	cost := s.prob.Cost(pl)
	var overlap int64
	names := s.prob.Names
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if in, ok := pl[names[i]].Intersection(pl[names[j]]); ok {
				overlap += in.Area()
			}
		}
	}
	s.cost = cost + s.penalty*float64(overlap)
}

// Cost implements anneal.Solution.
func (s *absSolution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution: translate, swap or rotate.
func (s *absSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &absSolution{
		prob:    s.prob,
		x:       append([]int(nil), s.x...),
		y:       append([]int(nil), s.y...),
		rot:     append([]bool(nil), s.rot...),
		span:    s.span,
		penalty: s.penalty,
	}
	n := s.prob.N()
	switch rng.Intn(4) {
	case 0, 1: // translate
		m := rng.Intn(n)
		next.x[m] += rng.Intn(2*s.span+1) - s.span
		next.y[m] += rng.Intn(2*s.span+1) - s.span
		if next.x[m] < 0 {
			next.x[m] = 0
		}
		if next.y[m] < 0 {
			next.y[m] = 0
		}
	case 2: // swap positions
		if n >= 2 {
			a, b := rng.Intn(n), rng.Intn(n-1)
			if b >= a {
				b++
			}
			next.x[a], next.x[b] = next.x[b], next.x[a]
			next.y[a], next.y[b] = next.y[b], next.y[a]
		}
	case 3: // rotate
		m := rng.Intn(n)
		next.rot[m] = !next.rot[m]
	}
	next.evaluate()
	return next
}

// Absolute runs the absolute-coordinate annealing baseline. The final
// placement may contain residual overlaps (the method's known
// weakness); callers should check Placement.Legal. The overlap penalty
// is proportional to the average module area so it dominates the area
// term.
func Absolute(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 13))
	n := p.N()
	// Initial spread: place modules on a loose grid.
	side := 1
	for side*side < n {
		side++
	}
	maxDim := 1
	for i := 0; i < n; i++ {
		if p.W[i] > maxDim {
			maxDim = p.W[i]
		}
		if p.H[i] > maxDim {
			maxDim = p.H[i]
		}
	}
	pitch := maxDim + 1
	init := &absSolution{
		prob:    p,
		x:       make([]int, n),
		y:       make([]int, n),
		rot:     make([]bool, n),
		span:    pitch,
		penalty: 10,
	}
	order := rng.Perm(n)
	for i, m := range order {
		init.x[m] = (i % side) * pitch
		init.y[m] = (i / side) * pitch
	}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*absSolution)
	pl := sol.placement()
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats}, nil
}
