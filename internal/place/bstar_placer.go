package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/geom"
)

// btRep wraps a B*-tree as an engine.Representation: the classic
// perturbations (rotate, move, swap) with exact undo through a
// reusable tree-state buffer, and incremental workspace packing —
// prefix reuse against the previous traversal, bit-identical to the
// full contour pack — so a proposed move allocates nothing and only
// re-packs from the first disturbed traversal step.
type btRep struct {
	prob  *Problem
	tree  *bstar.Tree
	ws    bstar.IncPackWorkspace
	saved bstar.TreeState
}

func newBTRep(p *Problem, tree *bstar.Tree) *btRep {
	return &btRep{prob: p, tree: tree}
}

// Perturb implements engine.Representation using the classic B*-tree
// perturbations (rotate, move, swap).
func (r *btRep) Perturb(rng *rand.Rand) bool {
	r.tree.SaveState(&r.saved)
	r.tree.Perturb(rng)
	return true
}

// Undo implements engine.Representation.
func (r *btRep) Undo() { r.tree.LoadState(&r.saved) }

// Pack implements engine.Representation.
func (r *btRep) Pack(c *engine.Coords) bool {
	x, y := r.tree.PackIncInto(&r.ws)
	c.X, c.Y, c.W, c.H, c.Rot = x, y, r.tree.W, r.tree.H, r.tree.Rot
	return true
}

// Snapshot implements engine.Representation.
func (r *btRep) Snapshot() any {
	sn := &bstar.TreeState{}
	r.tree.SaveState(sn)
	return sn
}

// Restore implements engine.Representation.
func (r *btRep) Restore(snapshot any) {
	r.tree.LoadState(snapshot.(*bstar.TreeState))
}

// Clone implements engine.Representation.
func (r *btRep) Clone() engine.Representation {
	return newBTRep(r.prob, r.tree.Clone())
}

// Placement implements engine.Representation.
func (r *btRep) Placement() (geom.Placement, error) {
	return r.tree.Placement(r.prob.Names)
}

// BStar runs a plain B*-tree annealing placer. Symmetry groups are not
// enforced (see package asf for symmetry islands and package hbstar
// for hierarchical constraints); it serves as the unconstrained
// topological baseline.
func BStar(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 11))
		return newKernel(p, newBTRep(p, bstar.NewRandom(p.W, p.H, rng)))
	}
	best, stats := engine.Run(newSol, opt)
	return finishResult(best.(*engine.Solution), stats)
}

// Absolute-coordinate move kinds (the representation's move table).
const (
	absMoveTranslate = iota
	absMoveSwap
	absMoveRotate
	absMoveKinds
)

// absRep is the absolute-coordinate baseline Representation: explicit
// module positions that may overlap during the search — the
// exploration style of ILAC/KOAN the paper contrasts with topological
// representations (overlap is penalized by the placer-defined
// overlapTerm the Absolute entry point adds to the model). Mutations
// are small records (one translation, swap or rotation), so the moved
// set is known exactly and the kernel evaluates through
// Model.UpdateMoved without even a coordinate diff.
type absRep struct {
	prob *Problem
	x, y []int
	rot  []bool
	span int // translation range for moves

	op         int // last move: 0 translate, 1 swap, 2 rotate, -1 none
	ma, mb     int // touched modules
	oldX, oldY int
	moved      []int // scratch for UpdateMoved
}

func newAbsRep(p *Problem, span int) *absRep {
	n := p.N()
	return &absRep{
		prob: p,
		x:    make([]int, n),
		y:    make([]int, n),
		rot:  make([]bool, n),
		span: span,
	}
}

// MovedModules implements engine.MovedModules.
func (r *absRep) MovedModules() []int { return r.moved }

// Perturb implements engine.Representation: translate half the time,
// swap or rotate otherwise.
func (r *absRep) Perturb(rng *rand.Rand) bool {
	switch rng.Intn(4) {
	case 0, 1:
		return r.PerturbKind(absMoveTranslate, rng)
	case 2:
		return r.PerturbKind(absMoveSwap, rng)
	default:
		return r.PerturbKind(absMoveRotate, rng)
	}
}

// MoveKinds implements engine.MoveTable.
func (r *absRep) MoveKinds() int { return absMoveKinds }

// PerturbKind implements engine.MoveTable, recording the undo
// information in op/ma/mb/oldX/oldY and the moved set in moved.
func (r *absRep) PerturbKind(kind int, rng *rand.Rand) bool {
	n := r.prob.N()
	r.op = -1
	r.moved = r.moved[:0]
	switch kind {
	case absMoveTranslate:
		m := rng.Intn(n)
		r.op, r.ma = 0, m
		r.oldX, r.oldY = r.x[m], r.y[m]
		r.x[m] += rng.Intn(2*r.span+1) - r.span
		r.y[m] += rng.Intn(2*r.span+1) - r.span
		if r.x[m] < 0 {
			r.x[m] = 0
		}
		if r.y[m] < 0 {
			r.y[m] = 0
		}
		r.moved = append(r.moved, m)
	case absMoveSwap:
		if n >= 2 {
			a, b := rng.Intn(n), rng.Intn(n-1)
			if b >= a {
				b++
			}
			r.op, r.ma, r.mb = 1, a, b
			r.x[a], r.x[b] = r.x[b], r.x[a]
			r.y[a], r.y[b] = r.y[b], r.y[a]
			r.moved = append(r.moved, a, b)
		}
	case absMoveRotate:
		m := rng.Intn(n)
		r.op, r.ma = 2, m
		r.rot[m] = !r.rot[m]
		r.moved = append(r.moved, m)
	}
	return true
}

// Undo implements engine.Representation.
func (r *absRep) Undo() {
	switch r.op {
	case 0:
		r.x[r.ma], r.y[r.ma] = r.oldX, r.oldY
	case 1:
		r.x[r.ma], r.x[r.mb] = r.x[r.mb], r.x[r.ma]
		r.y[r.ma], r.y[r.mb] = r.y[r.mb], r.y[r.ma]
	case 2:
		r.rot[r.ma] = !r.rot[r.ma]
	}
}

// Pack implements engine.Representation: the coordinates are the
// encoding, so packing is the identity.
func (r *absRep) Pack(c *engine.Coords) bool {
	c.X, c.Y, c.W, c.H, c.Rot = r.x, r.y, r.prob.W, r.prob.H, r.rot
	return true
}

// absSnapshot is the best-so-far record of an absRep.
type absSnapshot struct {
	x, y []int
	rot  []bool
}

// Snapshot implements engine.Representation.
func (r *absRep) Snapshot() any {
	return &absSnapshot{
		x:   append([]int(nil), r.x...),
		y:   append([]int(nil), r.y...),
		rot: append([]bool(nil), r.rot...),
	}
}

// Restore implements engine.Representation.
func (r *absRep) Restore(snapshot any) {
	sn := snapshot.(*absSnapshot)
	copy(r.x, sn.x)
	copy(r.y, sn.y)
	copy(r.rot, sn.rot)
}

// Clone implements engine.Representation.
func (r *absRep) Clone() engine.Representation {
	n := newAbsRep(r.prob, r.span)
	copy(n.x, r.x)
	copy(n.y, r.y)
	copy(n.rot, r.rot)
	return n
}

// Placement implements engine.Representation.
func (r *absRep) Placement() (geom.Placement, error) {
	return r.prob.BuildPlacement(r.x, r.y, r.rot), nil
}

// CrossoverFrom implements engine.Crossover: uniform per-module
// inheritance of position and rotation from the two parents (always a
// valid encoding — overlap is already priced by the penalty term).
func (r *absRep) CrossoverFrom(a, b engine.Representation, rng *rand.Rand) {
	pb := b.(*absRep)
	for i := range r.x {
		if rng.Intn(2) == 0 {
			r.x[i], r.y[i], r.rot[i] = pb.x[i], pb.y[i], pb.rot[i]
		}
	}
}

// absConfig is the kernel configuration of the absolute placer: its
// model carries the overlap penalty term on top of the problem's
// composite objective.
func absConfig(p *Problem, penalty float64) engine.Config {
	return engine.Config{
		NewModel: func(engine.Representation) *cost.Model {
			return p.NewModel().Add(penalty, newOverlapTerm(p.N()))
		},
		FullEval:      p.FullEval,
		AdaptiveMoves: p.AdaptiveMoves,
	}
}

// Absolute runs the absolute-coordinate annealing baseline. The final
// placement may contain residual overlaps (the method's known
// weakness); callers should check Placement.Legal. The overlap penalty
// is proportional to the average module area so it dominates the area
// term.
func Absolute(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	best, stats := engine.Run(newAbsSol(p), opt)
	return finishResult(best.(*engine.Solution), stats)
}

// newAbsSol is the absolute-coordinate solution factory shared by the
// annealing and memetic engines: modules spread on a loose grid in a
// seed-dependent random order.
func newAbsSol(p *Problem) func(seed int64) anneal.Solution {
	n := p.N()
	// Initial spread: place modules on a loose grid.
	side := 1
	for side*side < n {
		side++
	}
	maxDim := 1
	for i := 0; i < n; i++ {
		if p.W[i] > maxDim {
			maxDim = p.W[i]
		}
		if p.H[i] > maxDim {
			maxDim = p.H[i]
		}
	}
	pitch := maxDim + 1
	return func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 13))
		r := newAbsRep(p, pitch)
		order := rng.Perm(n)
		for i, m := range order {
			r.x[m] = (i % side) * pitch
			r.y[m] = (i / side) * pitch
		}
		return engine.New(r, absConfig(p, 10))
	}
}
