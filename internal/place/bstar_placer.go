package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/cost"
)

// runAnneal dispatches a placer's search: a single in-place annealing
// chain by default, or parallel multi-start when opt.Workers > 1. The
// serial path builds its solution from the same derived seed as
// ParallelAnneal's worker 0, so -workers=1 and the serial path are the
// same run.
func runAnneal(newSol func(seed int64) anneal.Solution, opt anneal.Options) (anneal.Solution, anneal.Stats) {
	if opt.Workers > 1 {
		return anneal.ParallelAnneal(newSol, opt.Workers, opt)
	}
	return anneal.Anneal(newSol(opt.Seed), opt)
}

// btSolution wraps a B*-tree for the annealer. It implements both the
// cloning Solution protocol (Neighbor, used by the evolutionary
// engine) and the in-place MutableSolution protocol: packing runs
// through a per-solution workspace, the objective through a
// solution-owned cost.Model updated over the dirty set of each repack,
// and a perturbation is reverted by restoring the saved tree state and
// the model's journal, so a proposed move allocates nothing and
// reevaluates only what it displaced.
type btSolution struct {
	prob       *Problem
	tree       *bstar.Tree
	ws         bstar.PackWorkspace
	saved      bstar.TreeState
	model      *cost.Model
	cost       float64
	prevCost   float64
	modelMoved bool
	undo       anneal.Undo
}

func newBTSolution(p *Problem, tree *bstar.Tree) *btSolution {
	s := &btSolution{prob: p, tree: tree, model: p.NewModel()}
	s.undo = func() {
		s.tree.LoadState(&s.saved)
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		s.cost = s.prevCost
	}
	return s
}

func (s *btSolution) evaluate() {
	x, y := s.tree.PackInto(&s.ws)
	if s.prob.FullEval {
		s.modelMoved = false
		s.cost = s.model.Eval(x, y, s.tree.W, s.tree.H, s.tree.Rot)
		return
	}
	s.cost = s.model.Update(x, y, s.tree.W, s.tree.H, s.tree.Rot)
	s.modelMoved = true
}

// Cost implements anneal.Solution.
func (s *btSolution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter.
func (s *btSolution) Moved() []int { return s.model.Moved() }

// Neighbor implements anneal.Solution using the classic B*-tree
// perturbations (rotate, move, swap).
func (s *btSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newBTSolution(s.prob, s.tree.Clone())
	next.tree.Perturb(rng)
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution: the same move set as
// Neighbor, applied to the receiver with exact undo.
func (s *btSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.tree.SaveState(&s.saved)
	s.prevCost = s.cost
	s.tree.Perturb(rng)
	s.evaluate()
	return s.undo
}

// btSnapshot is the best-so-far record of a btSolution.
type btSnapshot struct {
	state bstar.TreeState
}

// Snapshot implements anneal.MutableSolution.
func (s *btSolution) Snapshot() any {
	sn := &btSnapshot{}
	s.tree.SaveState(&sn.state)
	return sn
}

// Restore implements anneal.MutableSolution: the tree is restored and
// the objective incrementally reevaluated against it.
func (s *btSolution) Restore(snapshot any) {
	sn := snapshot.(*btSnapshot)
	s.tree.LoadState(&sn.state)
	s.evaluate()
}

// BStar runs a plain B*-tree annealing placer. Symmetry groups are not
// enforced (see package asf for symmetry islands and package hbstar
// for hierarchical constraints); it serves as the unconstrained
// topological baseline.
func BStar(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 11))
		s := newBTSolution(p, bstar.NewRandom(p.W, p.H, rng))
		s.evaluate()
		return s
	}
	best, stats := runAnneal(newSol, opt)
	sol := best.(*btSolution)
	pl, err := sol.tree.Placement(p.Names)
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}

// absSolution is the absolute-coordinate baseline state: explicit
// module positions that may overlap during the search, with overlap
// penalized through the placer-defined overlapTerm — the exploration
// style of ILAC/KOAN the paper contrasts with topological
// representations. Mutations are small records (one translation, swap
// or rotation), so the moved set is known exactly and the objective
// updates through Model.UpdateMoved without even a coordinate diff.
type absSolution struct {
	prob    *Problem
	x, y    []int
	rot     []bool
	span    int // translation range for moves
	penalty float64
	model   *cost.Model
	cost    float64

	prevCost   float64
	op         int // last move: 0 translate, 1 swap, 2 rotate, -1 none
	ma, mb     int // touched modules
	oldX, oldY int
	moved      []int // scratch for UpdateMoved
	modelMoved bool
	undo       anneal.Undo
}

func newAbsSolution(p *Problem, n int, span int, penalty float64) *absSolution {
	s := &absSolution{
		prob:    p,
		x:       make([]int, n),
		y:       make([]int, n),
		rot:     make([]bool, n),
		span:    span,
		penalty: penalty,
		model:   p.NewModel().Add(penalty, newOverlapTerm(n)),
	}
	s.undo = func() {
		switch s.op {
		case 0:
			s.x[s.ma], s.y[s.ma] = s.oldX, s.oldY
		case 1:
			s.x[s.ma], s.x[s.mb] = s.x[s.mb], s.x[s.ma]
			s.y[s.ma], s.y[s.mb] = s.y[s.mb], s.y[s.ma]
		case 2:
			s.rot[s.ma] = !s.rot[s.ma]
		}
		if s.modelMoved {
			s.model.Undo()
			s.modelMoved = false
		}
		s.cost = s.prevCost
	}
	return s
}

// evaluate reevaluates the whole objective from scratch (initial
// placements and snapshot restores).
func (s *absSolution) evaluate() {
	s.modelMoved = false
	s.cost = s.model.Eval(s.x, s.y, s.prob.W, s.prob.H, s.rot)
}

// evaluateMoved incrementally reevaluates after the listed modules
// moved.
func (s *absSolution) evaluateMoved() {
	if s.prob.FullEval {
		s.evaluate()
		return
	}
	s.cost = s.model.UpdateMoved(s.x, s.y, s.prob.W, s.prob.H, s.rot, s.moved)
	s.modelMoved = true
}

// Cost implements anneal.Solution.
func (s *absSolution) Cost() float64 { return s.cost }

// Moved implements anneal.MoveReporter.
func (s *absSolution) Moved() []int { return s.model.Moved() }

// mutate applies one random move to the receiver, recording the undo
// information in s.op/ma/mb/oldX/oldY and the moved set in s.moved.
func (s *absSolution) mutate(rng *rand.Rand) {
	n := s.prob.N()
	s.op = -1
	s.moved = s.moved[:0]
	switch rng.Intn(4) {
	case 0, 1: // translate
		m := rng.Intn(n)
		s.op, s.ma = 0, m
		s.oldX, s.oldY = s.x[m], s.y[m]
		s.x[m] += rng.Intn(2*s.span+1) - s.span
		s.y[m] += rng.Intn(2*s.span+1) - s.span
		if s.x[m] < 0 {
			s.x[m] = 0
		}
		if s.y[m] < 0 {
			s.y[m] = 0
		}
		s.moved = append(s.moved, m)
	case 2: // swap positions
		if n >= 2 {
			a, b := rng.Intn(n), rng.Intn(n-1)
			if b >= a {
				b++
			}
			s.op, s.ma, s.mb = 1, a, b
			s.x[a], s.x[b] = s.x[b], s.x[a]
			s.y[a], s.y[b] = s.y[b], s.y[a]
			s.moved = append(s.moved, a, b)
		}
	case 3: // rotate
		m := rng.Intn(n)
		s.op, s.ma = 2, m
		s.rot[m] = !s.rot[m]
		s.moved = append(s.moved, m)
	}
}

// Neighbor implements anneal.Solution: translate, swap or rotate on a
// copy.
func (s *absSolution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := newAbsSolution(s.prob, s.prob.N(), s.span, s.penalty)
	copy(next.x, s.x)
	copy(next.y, s.y)
	copy(next.rot, s.rot)
	next.mutate(rng)
	next.evaluate()
	return next
}

// Perturb implements anneal.MutableSolution.
func (s *absSolution) Perturb(rng *rand.Rand) anneal.Undo {
	s.prevCost = s.cost
	s.mutate(rng)
	s.evaluateMoved()
	return s.undo
}

// absSnapshot is the best-so-far record of an absSolution.
type absSnapshot struct {
	x, y []int
	rot  []bool
}

// Snapshot implements anneal.MutableSolution.
func (s *absSolution) Snapshot() any {
	return &absSnapshot{
		x:   append([]int(nil), s.x...),
		y:   append([]int(nil), s.y...),
		rot: append([]bool(nil), s.rot...),
	}
}

// Restore implements anneal.MutableSolution.
func (s *absSolution) Restore(snapshot any) {
	sn := snapshot.(*absSnapshot)
	copy(s.x, sn.x)
	copy(s.y, sn.y)
	copy(s.rot, sn.rot)
	s.evaluate()
}

// Absolute runs the absolute-coordinate annealing baseline. The final
// placement may contain residual overlaps (the method's known
// weakness); callers should check Placement.Legal. The overlap penalty
// is proportional to the average module area so it dominates the area
// term.
func Absolute(p *Problem, opt anneal.Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	// Initial spread: place modules on a loose grid.
	side := 1
	for side*side < n {
		side++
	}
	maxDim := 1
	for i := 0; i < n; i++ {
		if p.W[i] > maxDim {
			maxDim = p.W[i]
		}
		if p.H[i] > maxDim {
			maxDim = p.H[i]
		}
	}
	pitch := maxDim + 1
	newSol := func(seed int64) anneal.Solution {
		rng := rand.New(rand.NewSource(seed + 13))
		s := newAbsSolution(p, n, pitch, 10)
		order := rng.Perm(n)
		for i, m := range order {
			s.x[m] = (i % side) * pitch
			s.y[m] = (i / side) * pitch
		}
		s.evaluate()
		return s
	}
	best, stats := runAnneal(newSol, opt)
	sol := best.(*absSolution)
	pl := sol.prob.BuildPlacement(sol.x, sol.y, sol.rot)
	pl.Normalize()
	return &Result{Placement: pl, Cost: sol.cost, Stats: stats, Breakdown: sol.model.Breakdown()}, nil
}
