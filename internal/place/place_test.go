package place

import (
	"testing"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/seqpair"
)

// smallProblem is a 6-module instance with one symmetry group.
func smallProblem() *Problem {
	return &Problem{
		Names: []string{"a", "b", "c", "d", "e", "f"},
		W:     []int{10, 10, 20, 6, 8, 12},
		H:     []int{14, 14, 8, 6, 8, 10},
		Groups: []seqpair.Group{
			{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}},
		},
		Nets:       [][]int{{0, 1, 2}, {3, 4}, {2, 5}},
		WireWeight: 0.5,
	}
}

// fastOpts keeps annealing cheap in tests.
func fastOpts(seed int64) anneal.Options {
	return anneal.Options{Seed: seed, MovesPerStage: 40, MaxStages: 60, StallStages: 15}
}

func TestProblemValidate(t *testing.T) {
	p := smallProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallProblem()
	bad.W[0] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero width must fail")
	}
	bad2 := smallProblem()
	bad2.Nets = append(bad2.Nets, []int{99})
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range net must fail")
	}
	bad3 := smallProblem()
	bad3.W = bad3.W[:2]
	if err := bad3.Validate(); err == nil {
		t.Fatal("dims length mismatch must fail")
	}
}

func TestSeqPairPlacerSatisfiesConstraints(t *testing.T) {
	p := smallProblem()
	res, err := SeqPair(p, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("overlapping placement: %v", res.Placement.Overlaps())
	}
	if err := p.ConstraintSet().Check(res.Placement); err != nil {
		t.Fatalf("constraints violated: %v", err)
	}
	if len(res.Placement) != p.N() {
		t.Fatal("placement missing modules")
	}
	// Area sanity: not worse than 4x the module area.
	if ratio := float64(res.Placement.Area()) / float64(p.ModuleArea()); ratio > 4 {
		t.Fatalf("area usage %.2f unexpectedly bad", ratio)
	}
}

func TestSeqPairPlacerNoGroups(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := SeqPair(p, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatal("overlapping placement")
	}
}

func TestSeqPairRejectionVariant(t *testing.T) {
	p := smallProblem()
	res, err := SeqPairUnconstrainedMoves(p, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatal("overlapping placement")
	}
}

func TestBStarPlacer(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := BStar(p, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("overlapping placement: %v", res.Placement.Overlaps())
	}
	if ratio := float64(res.Placement.Area()) / float64(p.ModuleArea()); ratio > 3 {
		t.Fatalf("area usage %.2f unexpectedly bad", ratio)
	}
}

func TestAbsolutePlacer(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := Absolute(p, anneal.Options{Seed: 5, MovesPerStage: 150, MaxStages: 120, StallStages: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placement) != p.N() {
		t.Fatal("placement missing modules")
	}
	// The absolute baseline is allowed residual overlap, but the
	// penalty should keep it moderate.
	if len(res.Placement.Overlaps()) > p.N() {
		t.Fatalf("excessive overlaps: %v", res.Placement.Overlaps())
	}
}

func TestSlicingPlacer(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := Slicing(p, fastOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("slicing placement overlaps: %v", res.Placement.Overlaps())
	}
	if len(res.Placement) != p.N() {
		t.Fatal("placement missing modules")
	}
}

// The paper's density claim: on heterogeneous analog sizes, the
// non-slicing placers should not lose to the slicing baseline (and
// usually win). We assert non-inferiority with a tolerance to keep the
// test robust to stochastic noise.
func TestNonslicingNotWorseThanSlicing(t *testing.T) {
	bench, err := TableBench("miller_v2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromBench(bench)
	if err != nil {
		t.Fatal(err)
	}
	p.Groups = nil // compare raw packing quality
	p.WireWeight = 0
	opts := anneal.Options{Seed: 9, MovesPerStage: 80, MaxStages: 120, StallStages: 30}
	sl, err := Slicing(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BStar(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(bt.Placement.Area()) > 1.15*float64(sl.Placement.Area()) {
		t.Fatalf("B*-tree area %d much worse than slicing %d", bt.Placement.Area(), sl.Placement.Area())
	}
}

// TableBench re-exports circuits.TableIBench for tests in this package.
func TableBench(name string) (*circuits.Bench, error) { return circuits.TableIBench(name) }

func TestFromBench(t *testing.T) {
	b := circuits.MillerOpAmp()
	p, err := FromBench(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 9 {
		t.Fatalf("problem has %d modules, want 9", p.N())
	}
	// DP and CM1 are symmetry nodes with device-level pairs.
	if len(p.Groups) != 2 {
		t.Fatalf("got %d symmetry groups, want 2 (DP, CM1)", len(p.Groups))
	}
	if len(p.Nets) == 0 {
		t.Fatal("no nets extracted")
	}
}

func TestFromBenchPlacesEndToEnd(t *testing.T) {
	b := circuits.MillerOpAmp()
	p, err := FromBench(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SeqPair(p, fastOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatal("overlapping op amp placement")
	}
	if err := p.ConstraintSet().Check(res.Placement); err != nil {
		t.Fatalf("op amp constraints violated: %v", err)
	}
}

func TestCostPenalizesMissingModules(t *testing.T) {
	p := smallProblem()
	pl := p.BuildPlacement(make([]int, p.N()), make([]int, p.N()), nil)
	delete(pl, "a")
	if c := p.Cost(pl); c != c || c < 1e18 { // +Inf or NaN check
		if c < 1e18 {
			t.Fatal("missing module not penalized")
		}
	}
}

func TestValidPolish(t *testing.T) {
	// (0 1 V) 2 H is valid for n=3.
	if !validPolish(polish{0, 1, opV, 2, opH}, 3) {
		t.Fatal("valid expression rejected")
	}
	// Leading operator violates balloting.
	if validPolish(polish{opV, 0, 1, 2, opH}, 3) {
		t.Fatal("balloting violation accepted")
	}
	// Adjacent identical operators violate normalization.
	if validPolish(polish{0, 1, opV, 2, opV, 3, opV, opV}, 4) {
		t.Fatal("non-normalized expression accepted")
	}
	// Wrong operand count.
	if validPolish(polish{0, 1, opV}, 3) {
		t.Fatal("wrong operand count accepted")
	}
}

func TestTCGPlacer(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := TCG(p, fastOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("TCG placement overlaps: %v", res.Placement.Overlaps())
	}
	if len(res.Placement) != p.N() {
		t.Fatal("placement missing modules")
	}
	if ratio := float64(res.Placement.Area()) / float64(p.ModuleArea()); ratio > 3 {
		t.Fatalf("area usage %.2f unexpectedly bad", ratio)
	}
}

func TestTwoPhaseBStarPlacer(t *testing.T) {
	p := smallProblem()
	p.Groups = nil
	res, err := TwoPhaseBStar(p,
		anneal.GAOptions{Seed: 12, Generations: 30},
		fastOpts(12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatal("two-phase placement overlaps")
	}
	// The two-phase result should not be worse than a raw random tree:
	// its cost must be at most the initial cost seen by the engines.
	if res.Stats.BestCost > res.Stats.InitCost {
		t.Fatal("two-phase must not worsen the initial cost")
	}
}
