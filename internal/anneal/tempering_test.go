package anneal

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// frozen is a mutable solution whose cost never changes: Perturb
// draws randomness but moves nowhere. It isolates the exchange
// machinery — the only way a frozen chain's cost can change is a
// replica swap.
type frozen struct{ c float64 }

func (f *frozen) Cost() float64                    { return f.c }
func (f *frozen) Neighbor(rng *rand.Rand) Solution { return &frozen{f.c} }
func (f *frozen) Perturb(rng *rand.Rand) Undo {
	rng.Int63()
	return func() {}
}
func (f *frozen) Snapshot() any    { return f.c }
func (f *frozen) Restore(snap any) { f.c = snap.(float64) }

// TestTemperDisabledBitIdenticalToParallel pins the delegation
// contract: with exchanges disabled, TemperAnneal is ParallelAnneal —
// same best cost, same statistics, for any chain count (including the
// serial chain count 1, preserving the never-loses-to-serial chain).
func TestTemperDisabledBitIdenticalToParallel(t *testing.T) {
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		var clones atomic.Int64
		return newQuad(rng.Intn(500), &clones)
	}
	for _, chains := range []int{1, 4} {
		opt := Options{Seed: 9, MovesPerStage: 25, MaxStages: 30, ExchangeEvery: 0, TemperChains: chains}
		tb, ts := TemperAnneal(newSol, chains, opt)
		pb, ps := ParallelAnneal(newSol, chains, opt)
		if tb.Cost() != pb.Cost() || ts != ps {
			t.Fatalf("chains=%d: exchange-disabled tempering diverged from multi-start: (%v, %+v) vs (%v, %+v)",
				chains, tb.Cost(), ts, pb.Cost(), ps)
		}
	}
}

// TestTemperDeterministic runs the same tempering twice and demands
// identical outcomes, independent of goroutine scheduling.
func TestTemperDeterministic(t *testing.T) {
	run := func() (float64, Stats) {
		var clones atomic.Int64
		newSol := func(seed int64) Solution {
			rng := rand.New(rand.NewSource(seed))
			return newQuad(rng.Intn(200), &clones)
		}
		best, stats := TemperAnneal(newSol, 4, Options{Seed: 11, MovesPerStage: 30, MaxStages: 40, ExchangeEvery: 2})
		return best.Cost(), stats
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic tempering: (%v, %+v) vs (%v, %+v)", c1, s1, c2, s2)
	}
	if s1.Exchanges == 0 {
		t.Fatalf("no exchanges attempted: %+v", s1)
	}
}

// TestTemperMetropolisExchange pins the exchange acceptance rule on
// frozen chains. When the cold rung holds the worse state the swap
// delta (βa−βb)(Ea−Eb) is positive and every exchange must be
// accepted (the better state always migrates down the ladder); with
// the assignment reversed the delta is hugely negative and no
// exchange may be accepted.
func TestTemperMetropolisExchange(t *testing.T) {
	opt := Options{
		Seed: 3, MovesPerStage: 1, MaxStages: 6, StallStages: 100,
		InitialTemp: 1, MinTemp: 1e-9, ExchangeEvery: 1,
	}
	coldSeed := chainSeed(opt.Seed, 0)
	costBySeed := func(badCold bool) func(seed int64) Solution {
		return func(seed int64) Solution {
			if (seed == coldSeed) == badCold {
				return &frozen{c: 1000}
			}
			return &frozen{c: 10}
		}
	}

	// Cold rung worse: the first sweep's delta is positive, so the
	// swap must be accepted and the good state lands on the cold rung.
	// Every later sweep sees the assignment reversed (hugely negative
	// delta) and must reject — exactly one acceptance total.
	_, stats := TemperAnneal(costBySeed(true), 2, opt)
	if stats.Exchanges < 2 || stats.ExchangeAccepted != 1 {
		t.Fatalf("positive-then-negative delta sequence: accepted %d of %d, want exactly 1", stats.ExchangeAccepted, stats.Exchanges)
	}
	if stats.BestCost != 10 {
		t.Fatalf("best cost %v, want 10", stats.BestCost)
	}

	// Cold rung better: delta = (β0−β1)(10−1000) ≪ 0; exp(delta) is
	// below 1e-100, so acceptance would be a broken criterion.
	_, stats = TemperAnneal(costBySeed(false), 2, opt)
	if stats.Exchanges == 0 || stats.ExchangeAccepted != 0 {
		t.Fatalf("hugely-negative-delta exchange accepted: %d/%d", stats.ExchangeAccepted, stats.Exchanges)
	}
}

// TestTemperExchangeRaisesBest checks tempering does what it is for:
// on frozen chains where only a high rung holds the good state, the
// returned best must be that state, delivered to the cold rung by
// exchange alone.
func TestTemperExchangeRaisesBest(t *testing.T) {
	opt := Options{
		Seed: 5, MovesPerStage: 1, MaxStages: 10, StallStages: 100,
		InitialTemp: 1, MinTemp: 1e-9, ExchangeEvery: 1,
	}
	hotSeed := chainSeed(opt.Seed, 3)
	newSol := func(seed int64) Solution {
		if seed == hotSeed {
			return &frozen{c: 1}
		}
		return &frozen{c: 50}
	}
	best, stats := TemperAnneal(newSol, 4, opt)
	if best.Cost() != 1 || stats.BestCost != 1 {
		t.Fatalf("good state did not migrate down the ladder: best %v (%+v)", best.Cost(), stats)
	}
	if stats.ExchangeAccepted == 0 {
		t.Fatalf("no accepted exchanges: %+v", stats)
	}
}

// TestTemperCancellationNoWedge cancels a tempering run mid-flight
// (exchanges every stage, so cancellation lands between sweeps) and
// requires a prompt return with the best-so-far and Cancelled set —
// no wedged chain, no deadlock.
func TestTemperCancellationNoWedge(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var clones atomic.Int64
	slow := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(rng.Intn(100), &clones)
	}
	opt := Options{
		Seed: 7, MovesPerStage: 2000, MaxStages: 100000, StallStages: 100000,
		ExchangeEvery: 1, Context: ctx,
	}
	done := make(chan Stats, 1)
	go func() {
		_, stats := TemperAnneal(slow, 4, opt)
		done <- stats
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case stats := <-done:
		if !stats.Cancelled {
			t.Fatalf("cancelled run not flagged: %+v", stats)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tempering wedged after cancellation")
	}
}

// TestTemperFindsOptimum is the end-to-end sanity check: tempering on
// the toy quadratic still finds the optimum.
func TestTemperFindsOptimum(t *testing.T) {
	var clones atomic.Int64
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(100+rng.Intn(100), &clones)
	}
	best, stats := TemperAnneal(newSol, 3, Options{Seed: 2, MovesPerStage: 60, MaxStages: 80, ExchangeEvery: 4})
	if stats.BestCost != 0 || best.Cost() != 0 {
		t.Fatalf("tempering missed the optimum: %+v", stats)
	}
	if clones.Load() != 0 {
		t.Fatalf("tempering cloned %d times via Neighbor", clones.Load())
	}
}

// TestTemperProgressWorkerStamp pins Stats.Worker's contract on the
// tempering path: every Progress snapshot identifies its rung, every
// rung reports, and at any completed stage rung k runs strictly colder
// than rung k+1. Replicas are pinned to rungs — an accepted exchange
// swaps states, never the chains — so the rung order must match the
// temperature ladder for the whole run, not just the first stage.
func TestTemperProgressWorkerStamp(t *testing.T) {
	const chains = 4
	var clones atomic.Int64
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(rng.Intn(200), &clones)
	}
	var mu sync.Mutex
	temps := map[int]map[int]float64{} // stage → rung → temperature
	// InitialTemp is fixed so the ladder is exactly geometric:
	// auto-calibration is per-replica (each rung calibrates on its own
	// random start), which can produce base temperatures far enough
	// apart that rung temperatures cross.
	opt := Options{
		Seed: 17, MovesPerStage: 20, MaxStages: 20, StallStages: 20, ExchangeEvery: 2,
		InitialTemp: 200,
		Progress: func(st Stats) {
			mu.Lock()
			defer mu.Unlock()
			if st.Worker < 0 || st.Worker >= chains {
				t.Errorf("progress snapshot from rung %d, ladder has %d", st.Worker, chains)
				return
			}
			byRung := temps[st.Stages]
			if byRung == nil {
				byRung = map[int]float64{}
				temps[st.Stages] = byRung
			}
			byRung[st.Worker] = st.FinalTemp
		},
	}
	TemperAnneal(newSol, chains, opt)

	mu.Lock()
	defer mu.Unlock()
	seen := map[int]bool{}
	for stage, byRung := range temps {
		for k := range byRung {
			seen[k] = true
		}
		for k := 0; k < chains-1; k++ {
			a, oka := byRung[k]
			b, okb := byRung[k+1]
			if oka && okb && a >= b {
				t.Fatalf("stage %d: rung %d at %g not colder than rung %d at %g",
					stage, k, a, k+1, b)
			}
		}
	}
	for k := 0; k < chains; k++ {
		if !seen[k] {
			t.Errorf("rung %d produced no progress snapshots", k)
		}
	}
}
