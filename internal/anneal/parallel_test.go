package anneal

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// quad is a toy mutable solution: minimize (v-7)² over integer moves.
// It counts Neighbor clones so tests can prove which engine ran.
type quad struct {
	v        int
	prev     int
	undo     Undo
	clones   *atomic.Int64
	perturbs int
}

func newQuad(v int, clones *atomic.Int64) *quad {
	q := &quad{v: v, clones: clones}
	q.undo = func() { q.v = q.prev }
	return q
}

func (q *quad) Cost() float64 {
	d := float64(q.v - 7)
	return d * d
}

func (q *quad) Neighbor(rng *rand.Rand) Solution {
	q.clones.Add(1)
	n := newQuad(q.v, q.clones)
	n.v += rng.Intn(3) - 1
	return n
}

func (q *quad) Perturb(rng *rand.Rand) Undo {
	q.perturbs++
	q.prev = q.v
	q.v += rng.Intn(3) - 1
	return q.undo
}

func (q *quad) Snapshot() any    { return q.v }
func (q *quad) Restore(snap any) { q.v = snap.(int) }

// TestAnnealUsesInPlaceEngine proves that a MutableSolution is driven
// through Perturb/Undo, never through Neighbor, and that the returned
// solution is the same object restored to the best state.
func TestAnnealUsesInPlaceEngine(t *testing.T) {
	var clones atomic.Int64
	q := newQuad(100, &clones)
	best, stats := Anneal(q, Options{Seed: 1, MovesPerStage: 50, MaxStages: 60})
	if clones.Load() != 0 {
		t.Fatalf("in-place anneal cloned %d times via Neighbor", clones.Load())
	}
	if q.perturbs == 0 {
		t.Fatal("Perturb was never called")
	}
	if best.(*quad) != q {
		t.Fatal("in-place anneal returned a different object")
	}
	if best.Cost() != stats.BestCost {
		t.Fatalf("returned solution cost %v, stats best %v", best.Cost(), stats.BestCost)
	}
	if stats.BestCost != 0 {
		t.Fatalf("failed to find the optimum: best=%v (%+v)", stats.BestCost, stats)
	}
}

// TestGreedyUsesInPlaceEngine does the same for the hill climber.
func TestGreedyUsesInPlaceEngine(t *testing.T) {
	var clones atomic.Int64
	q := newQuad(40, &clones)
	best, stats := Greedy(q, 2000, 3)
	if clones.Load() != 0 {
		t.Fatalf("in-place greedy cloned %d times via Neighbor", clones.Load())
	}
	if stats.BestCost != 0 || best.Cost() != 0 {
		t.Fatalf("greedy missed the optimum: %v", stats.BestCost)
	}
}

// TestParallelAnnealDeterministic runs the same multi-start twice and
// demands identical outcomes, independent of goroutine scheduling.
func TestParallelAnnealDeterministic(t *testing.T) {
	run := func() (float64, Stats) {
		var clones atomic.Int64
		newSol := func(seed int64) Solution {
			rng := rand.New(rand.NewSource(seed))
			return newQuad(rng.Intn(200), &clones)
		}
		best, stats := ParallelAnneal(newSol, 4, Options{Seed: 11, MovesPerStage: 30, MaxStages: 40})
		return best.Cost(), stats
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic multi-start: (%v, %+v) vs (%v, %+v)", c1, s1, c2, s2)
	}
}

// TestParallelAnnealBestOf checks the reduction: the multi-start
// result is at least as good as every chain run individually.
func TestParallelAnnealBestOf(t *testing.T) {
	opt := Options{Seed: 21, MovesPerStage: 10, MaxStages: 8, StallStages: 3}
	var clones atomic.Int64
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(rng.Intn(1000), &clones)
	}
	const workers = 6
	best, stats := ParallelAnneal(newSol, workers, opt)
	var moves int
	for i := 0; i < workers; i++ {
		wopt := opt
		wopt.Seed = chainSeed(opt.Seed, i)
		wopt.Workers = 1
		chainBest, chainStats := Anneal(newSol(wopt.Seed), wopt)
		moves += chainStats.Moves
		if chainBest.Cost() < best.Cost() {
			t.Fatalf("chain %d beat the multi-start reduction: %v < %v",
				i, chainBest.Cost(), best.Cost())
		}
	}
	if stats.Moves != moves {
		t.Fatalf("aggregate moves %d, chains total %d", stats.Moves, moves)
	}
	// Worker 0 must be the chain a serial run with the same Options
	// produces.
	serialBest, _ := Anneal(newSol(chainSeed(opt.Seed, 0)), opt)
	if serialBest.Cost() < best.Cost() {
		t.Fatalf("serial chain better than multi-start best-of: %v < %v",
			serialBest.Cost(), best.Cost())
	}
}
