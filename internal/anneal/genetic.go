package anneal

import (
	"math/rand"
	"sort"
)

// GAOptions configure the evolutionary baseline.
type GAOptions struct {
	// Population size (μ). Default 20.
	Population int
	// Offspring per generation (λ). Default 40.
	Offspring int
	// Generations to run. Default 100.
	Generations int
	// StallGenerations stops early after this many generations
	// without improvement. Default 20.
	StallGenerations int
	// Seed for the internal RNG.
	Seed int64
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population <= 0 {
		o.Population = 20
	}
	if o.Offspring <= 0 {
		o.Offspring = 40
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.StallGenerations <= 0 {
		o.StallGenerations = 20
	}
	return o
}

// scored pairs a solution with its cached cost.
type scored struct {
	s Solution
	c float64
}

// Evolve runs a (μ+λ) mutation-based evolutionary search seeded from
// the initial solution: each generation draws parents uniformly from
// the population, produces offspring via Neighbor, and keeps the best
// μ of parents plus offspring. It is the genetic-algorithm stand-in of
// the two-phase approach [28]; with interface-level neighbors,
// mutation is the only variation operator, which matches how
// permutation encodings are typically mutated in analog placement.
func Evolve(initial Solution, opt GAOptions) (Solution, Stats) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	pop := make([]scored, 1, opt.Population)
	pop[0] = scored{initial, initial.Cost()}
	stats := Stats{InitCost: pop[0].c}
	// Fill the initial population with mutants of the seed.
	for len(pop) < opt.Population {
		m := initial.Neighbor(rng)
		pop = append(pop, scored{m, m.Cost()})
		stats.Moves++
	}
	sortPop(pop)
	best := pop[0]
	stall := 0
	for gen := 0; gen < opt.Generations && stall < opt.StallGenerations; gen++ {
		stats.Stages++
		for i := 0; i < opt.Offspring; i++ {
			parent := pop[rng.Intn(len(pop))]
			child := parent.s.Neighbor(rng)
			pop = append(pop, scored{child, child.Cost()})
			stats.Moves++
		}
		sortPop(pop)
		pop = pop[:opt.Population]
		if pop[0].c < best.c {
			best = pop[0]
			stats.Improved++
			stall = 0
		} else {
			stall++
		}
	}
	stats.BestCost = best.c
	return best.s, stats
}

func sortPop(pop []scored) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].c < pop[j].c })
}

// TwoPhase runs the GA+SA combination reported in [28]: a coarse
// evolutionary exploration followed by simulated-annealing refinement
// of the evolved best, with the SA temperature calibrated on the
// already-improved solution so the second phase fine-tunes rather than
// re-randomizes.
func TwoPhase(initial Solution, ga GAOptions, sa Options) (Solution, Stats) {
	evolved, gaStats := Evolve(initial, ga)
	refined, saStats := Anneal(evolved, sa)
	return refined, Stats{
		Stages:    gaStats.Stages + saStats.Stages,
		Moves:     gaStats.Moves + saStats.Moves,
		Accepted:  gaStats.Accepted + saStats.Accepted,
		Improved:  gaStats.Improved + saStats.Improved,
		FinalTemp: saStats.FinalTemp,
		InitCost:  gaStats.InitCost,
		BestCost:  saStats.BestCost,
	}
}
