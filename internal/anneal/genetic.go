package anneal

import (
	"context"
	"math/rand"
	"sort"
)

// Crossoverer is an optional extension of Solution for recombination-
// based search: Crossover returns a new solution combining the
// receiver and mate, or nil when the receiver's representation cannot
// recombine — the evolutionary engine then falls back to mutation.
type Crossoverer interface {
	Solution
	Crossover(mate Solution, rng *rand.Rand) Solution
}

// GAOptions configure the evolutionary baseline.
type GAOptions struct {
	// Population size (μ). Default 20.
	Population int
	// Offspring per generation (λ). Default 40.
	Offspring int
	// Generations to run. Default 100.
	Generations int
	// StallGenerations stops early after this many generations
	// without improvement. Default 20.
	StallGenerations int
	// Seed for the internal RNG.
	Seed int64
	// CrossoverRate is the probability an offspring is produced by
	// recombining two parents (through Crossoverer) instead of mutating
	// one. Zero — the default — draws no extra randomness and keeps the
	// historical mutation-only engine bit-identical; it only acts on
	// solutions implementing Crossoverer.
	CrossoverRate float64
	// Context, when non-nil, cancels the run cooperatively. It is
	// checked once per generation; a cancelled run returns the best
	// solution so far with Stats.Cancelled set.
	Context context.Context
}

// cancelled reports whether the run's context has been cancelled.
func (o *GAOptions) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population <= 0 {
		o.Population = 20
	}
	if o.Offspring <= 0 {
		o.Offspring = 40
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.StallGenerations <= 0 {
		o.StallGenerations = 20
	}
	return o
}

// scored pairs a solution with its cached cost.
type scored struct {
	s Solution
	c float64
}

// Evolve runs a (μ+λ) evolutionary search seeded from the initial
// solution: each generation draws parents uniformly from the
// population, produces offspring, and keeps the best μ of parents plus
// offspring. It is the genetic-algorithm stand-in of the two-phase
// approach [28]. Mutation through Neighbor is the default variation
// operator, matching how permutation encodings are typically mutated
// in analog placement; with CrossoverRate > 0, solutions implementing
// Crossoverer additionally recombine pairs of parents.
func Evolve(initial Solution, opt GAOptions) (Solution, Stats) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	pop := make([]scored, 1, opt.Population)
	pop[0] = scored{initial, initial.Cost()}
	stats := Stats{InitCost: pop[0].c}
	// Fill the initial population with mutants of the seed.
	for len(pop) < opt.Population {
		m := initial.Neighbor(rng)
		pop = append(pop, scored{m, m.Cost()})
		stats.Moves++
	}
	sortPop(pop)
	best := pop[0]
	stall := 0
	for gen := 0; gen < opt.Generations && stall < opt.StallGenerations; gen++ {
		if opt.cancelled() {
			stats.Cancelled = true
			break
		}
		stats.Stages++
		for i := 0; i < opt.Offspring; i++ {
			parent := pop[rng.Intn(len(pop))]
			var child Solution
			if opt.CrossoverRate > 0 && rng.Float64() < opt.CrossoverRate {
				if xp, ok := parent.s.(Crossoverer); ok {
					mate := pop[rng.Intn(len(pop))]
					child = xp.Crossover(mate.s, rng)
				}
			}
			if child == nil {
				child = parent.s.Neighbor(rng)
			}
			pop = append(pop, scored{child, child.Cost()})
			stats.Moves++
		}
		sortPop(pop)
		pop = pop[:opt.Population]
		if pop[0].c < best.c {
			best = pop[0]
			stats.Improved++
			stall = 0
		} else {
			stall++
		}
	}
	stats.BestCost = best.c
	return best.s, stats
}

func sortPop(pop []scored) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].c < pop[j].c })
}

// TwoPhase runs the GA+SA combination reported in [28]: a coarse
// evolutionary exploration followed by simulated-annealing refinement
// of the evolved best, with the SA temperature calibrated on the
// already-improved solution so the second phase fine-tunes rather than
// re-randomizes.
func TwoPhase(initial Solution, ga GAOptions, sa Options) (Solution, Stats) {
	evolved, gaStats := Evolve(initial, ga)
	refined, saStats := Anneal(evolved, sa)
	return refined, Stats{
		Stages:    gaStats.Stages + saStats.Stages,
		Moves:     gaStats.Moves + saStats.Moves,
		Accepted:  gaStats.Accepted + saStats.Accepted,
		Improved:  gaStats.Improved + saStats.Improved,
		FinalTemp: saStats.FinalTemp,
		InitCost:  gaStats.InitCost,
		BestCost:  saStats.BestCost,
		Cancelled: gaStats.Cancelled || saStats.Cancelled,
	}
}
