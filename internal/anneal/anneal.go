// Package anneal provides the stochastic optimization engines behind
// the paper's "statistical solution approaches": a simulated-annealing
// driver (Kirkpatrick et al. [12]), a mutation-based evolutionary
// baseline, the two-phase GA+SA combination of Zhang et al. [28], and
// parallel multi-start annealing (ParallelAnneal).
//
// The engines are representation-agnostic and support two solution
// protocols. The cloning protocol (Solution) produces a fresh neighbor
// per proposed move. The in-place protocol (MutableSolution) mutates
// one solution and reverts rejected moves through exact undo — the
// move-and-undo scheme of the B*-tree annealing literature — which
// eliminates per-move allocation; Anneal and Greedy select it
// automatically when the solution implements it.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
)

// Solution is one point of a search space. Neighbor must return a new
// Solution (not mutate the receiver), so the engines can keep the
// incumbent and the best-so-far without explicit undo bookkeeping.
type Solution interface {
	// Cost is the objective to minimize.
	Cost() float64
	// Neighbor returns a random neighboring solution.
	Neighbor(rng *rand.Rand) Solution
}

// Undo reverts the most recent Perturb on a MutableSolution, restoring
// state and cost exactly.
type Undo func()

// MutableSolution is the in-place counterpart of Solution: a solution
// that mutates itself under perturbation and can revert exactly,
// eliminating the clone per proposed move that dominates the cost of a
// Neighbor-based search. When a Solution passed to Anneal or Greedy
// also implements MutableSolution, the engines run the move-and-undo
// protocol of the B*-tree annealing tradition instead of cloning:
// rejected moves call the returned Undo, accepted moves simply keep
// the mutation, and the best-so-far is tracked through Snapshot.
//
// Contract: Perturb applies one random move and returns an Undo that
// restores both the state and the value reported by Cost exactly (a
// well-behaved implementation returns the same, pre-allocated Undo
// every time, so the protocol itself allocates nothing per move).
// Snapshot returns an opaque deep copy of the current state; Restore
// brings the solution back to a previously snapshotted state and must
// not alias the snapshot (the engine may restore the same snapshot
// again). The engines mutate the initial solution they are given; the
// returned best solution is that same value restored to its best
// state.
type MutableSolution interface {
	Cost() float64
	Perturb(rng *rand.Rand) Undo
	Snapshot() any
	Restore(snapshot any)
}

// MoveReporter is an optional extension of MutableSolution implemented
// by solutions with incremental cost models: Moved returns the ids of
// the modules whose geometry the last Perturb actually changed (the
// dirty set the incremental objective reevaluated). The engines never
// require it; it exists so tests and diagnostics can cross-check
// incremental evaluation against a from-scratch one.
type MoveReporter interface {
	Moved() []int
}

// MoveKindReporter is an optional extension of MutableSolution for
// solutions that track per-move-kind proposal/acceptance counters (the
// engine kernel's adaptive move portfolio). The flight recorder reads
// the counters at stage boundaries; the engines never require the
// interface, and implementations may return nil slices when the
// counters are off. The returned slices are read without copying, so
// they must only be mutated from the solution's own annealing
// goroutine (which is where the engines call this).
type MoveKindReporter interface {
	MoveKindCounts() (proposed, accepted []int)
}

// Options configure a simulated-annealing run. The zero value is
// usable: sensible defaults are filled in by Anneal.
type Options struct {
	// InitialTemp is the starting temperature. If 0 it is calibrated
	// so the initial acceptance ratio of uphill moves is about 0.9,
	// following standard practice.
	InitialTemp float64
	// Cooling is the geometric cooling factor per stage (0 < c < 1).
	// Default 0.95.
	Cooling float64
	// MovesPerStage is the number of proposed moves per temperature
	// stage. Default 100.
	MovesPerStage int
	// MinTemp stops the schedule. Default 1e-3 × InitialTemp.
	MinTemp float64
	// MaxStages bounds the number of temperature stages. Default 500.
	MaxStages int
	// StallStages stops the run after this many stages without
	// improving the best cost. Default 50.
	StallStages int
	// Seed for the internal RNG (0 means a fixed default, keeping
	// runs reproducible).
	Seed int64
	// Workers selects parallel multi-start annealing: values above 1
	// run that many independent chains (each with its own RNG and
	// workspaces) and keep the best result. 0 and 1 mean a single
	// serial chain. Placers honor it through their ParallelAnneal
	// wiring; Anneal itself always runs one chain.
	Workers int
	// Context, when non-nil, cancels the run cooperatively. It is
	// checked once per temperature stage — never per move, so the hot
	// loop stays allocation- and branch-cheap — and a cancelled run
	// stops at the next stage boundary, returning the best solution
	// found so far with Stats.Cancelled set. Cancellation does not
	// consume randomness, so a run that is not cancelled is
	// bit-identical to one with a nil Context.
	Context context.Context
	// Progress, when non-nil, is called after every completed
	// temperature stage with a snapshot of the statistics so far
	// (Stages, Moves, Accepted, Improved, FinalTemp, and BestCost as
	// of that stage). It runs on the annealing goroutine, so it must
	// be cheap; ParallelAnneal calls it concurrently from every chain
	// with Stats.Worker identifying the chain, so it must also be safe
	// for concurrent use. Observing progress never perturbs the
	// search: the callback sees a copy.
	Progress func(Stats)
	// Checkpoint, when non-nil, receives the best-so-far snapshot
	// (the same opaque value MutableSolution.Snapshot returns, which
	// the engine never mutates) every CheckpointEvery stages in which
	// the best improved, and once more when the run ends — including
	// a cancelled run, where the final capture is the whole point.
	// It runs on the annealing goroutine; ParallelAnneal calls it
	// concurrently from every chain. Only the in-place engine
	// checkpoints: the cloning protocol has no snapshot to hand out.
	Checkpoint func(snapshot any, cost float64, stage int)
	// CheckpointEvery is the stage period of Checkpoint captures.
	// Zero or negative means every 5 stages.
	CheckpointEvery int
	// Resume, when non-nil, is consulted once at the start of an
	// in-place run: if it returns ok, the engine restores the
	// snapshot — a value a previous run's Checkpoint captured from
	// the same solution type on the same problem — and anneals from
	// that state instead of the initial solution, so an interrupted
	// run's progress is never repeated. The returned best is then
	// never worse than the checkpoint. ParallelAnneal resumes only
	// worker 0, keeping the other chains' multi-start diversity.
	Resume func() (snapshot any, ok bool)
	// TemperChains selects parallel tempering (replica exchange):
	// values above 1 run that many chains at a geometric temperature
	// ladder with periodic Metropolis state exchanges between
	// neighboring rungs (TemperAnneal). 0 and 1 mean no tempering.
	// Placers honor it through engine.Run; when both Workers and
	// TemperChains are set, tempering wins.
	TemperChains int
	// ExchangeEvery is the stage period of replica-exchange sweeps.
	// Zero or negative disables exchanges, which makes TemperAnneal
	// bit-identical to ParallelAnneal with TemperChains workers.
	ExchangeEvery int
	// TemperLadder is the geometric spacing between neighboring rungs
	// of the tempering temperature ladder (rung k runs at
	// TemperLadder^k times the base temperature). Values ≤ 1 mean the
	// default, 1.6.
	TemperLadder float64
	// Flight, when non-nil, receives per-stage flight-recorder events
	// (temperature, best/current cost, cumulative move counters,
	// per-move-kind acceptance for MoveKindReporter solutions, replica
	// exchanges, checkpoint captures and resumes). Recording never
	// consumes randomness and never perturbs the search — a solve with
	// a recorder attached is bit-identical to one without. A nil
	// Flight costs one pointer test per temperature stage; see
	// internal/obs. ParallelAnneal and TemperAnneal share one recorder
	// across all chains (obs.Flight is concurrency-safe).
	Flight *obs.Flight
	// chain is the multi-start chain / tempering rung id stamped on
	// flight events and stage spans. ParallelAnneal sets it per
	// worker; direct Anneal calls record as chain 0.
	chain int
}

func (o Options) withDefaults() Options {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	if o.MovesPerStage <= 0 {
		o.MovesPerStage = 100
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 500
	}
	if o.StallStages <= 0 {
		o.StallStages = 50
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	return o
}

// Stats reports what a run did.
type Stats struct {
	Stages    int
	Moves     int
	Accepted  int
	Improved  int // accepted moves that improved the incumbent
	FinalTemp float64
	BestCost  float64
	InitCost  float64
	// Worker identifies the chain that produced these statistics.
	// ParallelAnneal stamps it on every Progress snapshot with the
	// multi-start chain id and, in the aggregate it returns, records
	// the winning chain. TemperAnneal stamps it with the tempering
	// rung (0 the coldest): replicas are pinned to their rung — an
	// accepted exchange swaps states between rungs, never the chains
	// themselves — so a rung's Progress stream tracks one temperature
	// level across the whole run, and the aggregate records the
	// winning rung. Serial runs leave it 0.
	Worker int
	// Cancelled reports that Options.Context was cancelled and the run
	// stopped early, returning the best solution seen so far.
	Cancelled bool
	// Exchanges and ExchangeAccepted count replica-exchange attempts
	// and Metropolis-accepted swaps. Only TemperAnneal with exchanges
	// enabled sets them; all other engines leave them 0.
	Exchanges        int
	ExchangeAccepted int
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	suffix := ""
	if s.Cancelled {
		suffix = " (cancelled)"
	}
	return fmt.Sprintf("stages=%d moves=%d accepted=%d improved=%d cost %.4g -> %.4g%s",
		s.Stages, s.Moves, s.Accepted, s.Improved, s.InitCost, s.BestCost, suffix)
}

// cancelled reports whether the run's context has been cancelled; a
// nil context never is.
func (o *Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// report sends the callback a per-stage snapshot with the best cost so
// far filled in (the engines only commit BestCost at the end).
func (o *Options) report(stats Stats, bestCost float64) {
	if o.Progress == nil {
		return
	}
	stats.BestCost = bestCost
	o.Progress(stats)
}

// recordStage writes one completed temperature stage into the flight
// recorder: the post-cooling temperature, current and best cost,
// cumulative counters, and — when the solution reports them — the
// per-move-kind proposal/acceptance table. Callers guard with a nil
// test on the recorder so the disabled path builds no event.
func recordStage(f *obs.Flight, worker int, st *Stats, cur, best float64, kinds MoveKindReporter) {
	e := obs.Event{
		Kind:     obs.EventStage,
		Worker:   int32(worker),
		Stage:    int32(st.Stages),
		Temp:     st.FinalTemp,
		Best:     best,
		Cur:      cur,
		Moves:    int64(st.Moves),
		Accepted: int64(st.Accepted),
		Improved: int64(st.Improved),
		Peer:     -1,
	}
	if kinds != nil {
		prop, acc := kinds.MoveKindCounts()
		n := min(len(prop), obs.MaxMoveKinds)
		e.NKinds = uint8(n)
		for i := 0; i < n; i++ {
			e.KindProposed[i] = uint32(prop[i])
			e.KindAccepted[i] = uint32(acc[i])
		}
	}
	f.Record(e)
}

// Anneal runs simulated annealing from the initial solution and
// returns the best solution found with run statistics. If the solution
// also implements MutableSolution, the engine uses the allocation-free
// move-and-undo protocol: the initial solution is mutated in place and
// returned restored to the best state visited.
func Anneal(initial Solution, opt Options) (Solution, Stats) {
	if ms, ok := initial.(MutableSolution); ok {
		best, stats := annealInPlace(ms, opt)
		return best.(Solution), stats
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	cur := initial
	curCost := cur.Cost()
	best, bestCost := cur, curCost
	stats := Stats{InitCost: curCost}

	temp := opt.InitialTemp
	if temp <= 0 {
		temp = calibrate(cur, rng)
	}
	minTemp := opt.MinTemp
	if minTemp <= 0 {
		minTemp = temp * 1e-3
	}

	stall := 0
	for stage := 0; stage < opt.MaxStages && temp > minTemp && stall < opt.StallStages; stage++ {
		if opt.cancelled() {
			stats.Cancelled = true
			break
		}
		stats.Stages++
		improvedThisStage := false
		for move := 0; move < opt.MovesPerStage; move++ {
			stats.Moves++
			next := cur.Neighbor(rng)
			nextCost := next.Cost()
			delta := nextCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				stats.Accepted++
				if delta < 0 {
					stats.Improved++
				}
				cur, curCost = next, nextCost
				if curCost < bestCost {
					best, bestCost = cur, curCost
					improvedThisStage = true
				}
			}
		}
		if improvedThisStage {
			stall = 0
		} else {
			stall++
		}
		temp *= opt.Cooling
		stats.FinalTemp = temp
		opt.report(stats, bestCost)
		if opt.Flight != nil {
			recordStage(opt.Flight, opt.chain, &stats, curCost, bestCost, nil)
		}
	}
	stats.BestCost = bestCost
	return best, stats
}

// annealInPlace is the move-and-undo engine: one mutating solution,
// exact undo on rejection, best-so-far tracked by snapshot. It follows
// the same schedule, RNG discipline and statistics as the cloning
// engine.
func annealInPlace(cur MutableSolution, opt Options) (MutableSolution, Stats) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	kinds, _ := cur.(MoveKindReporter)
	sctx, runSpan := obs.StartSpan(opt.Context, "anneal", obs.Int("chain", opt.chain))
	defer runSpan.End()

	// A warm start replaces the initial state before anything observes
	// it: the run proceeds exactly as if the checkpoint were the
	// (re-evaluated) initial solution, so the returned best can never
	// be worse than the checkpoint it resumed from.
	resumed := false
	if opt.Resume != nil {
		if snap, ok := opt.Resume(); ok {
			cur.Restore(snap)
			resumed = true
		}
	}
	curCost := cur.Cost()
	if resumed && opt.Flight != nil {
		opt.Flight.Record(obs.Event{Kind: obs.EventResume, Worker: int32(opt.chain), Cur: curCost, Best: curCost, Peer: -1})
	}
	bestSnap := cur.Snapshot()
	bestCost := curCost
	stats := Stats{InitCost: curCost}
	// The initial best is capture-worthy: a run cancelled before any
	// improvement still checkpoints a resumable state.
	newSinceCapture := true

	temp := opt.InitialTemp
	if temp <= 0 {
		temp = calibrateInPlace(cur, rng)
		curCost = cur.Cost()
	}
	minTemp := opt.MinTemp
	if minTemp <= 0 {
		minTemp = temp * 1e-3
	}

	stall := 0
	for stage := 0; stage < opt.MaxStages && temp > minTemp && stall < opt.StallStages; stage++ {
		if opt.cancelled() {
			stats.Cancelled = true
			break
		}
		// With observability off this stage boundary costs exactly one
		// atomic load (the disarmed span tracer) and one pointer test
		// (the nil flight recorder) — the contract
		// BenchmarkAnnealObsOverhead pins.
		stageSpan := obs.ChildSpan(sctx, "stage", obs.Int("chain", opt.chain), obs.Int("stage", stats.Stages+1))
		stats.Stages++
		improvedThisStage := false
		for move := 0; move < opt.MovesPerStage; move++ {
			stats.Moves++
			undo := cur.Perturb(rng)
			nextCost := cur.Cost()
			delta := nextCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				stats.Accepted++
				if delta < 0 {
					stats.Improved++
				}
				curCost = nextCost
				if curCost < bestCost {
					bestCost = curCost
					bestSnap = cur.Snapshot()
					improvedThisStage = true
					newSinceCapture = true
				}
			} else {
				undo()
			}
		}
		if improvedThisStage {
			stall = 0
		} else {
			stall++
		}
		temp *= opt.Cooling
		stats.FinalTemp = temp
		opt.report(stats, bestCost)
		if opt.Flight != nil {
			recordStage(opt.Flight, opt.chain, &stats, curCost, bestCost, kinds)
		}
		if opt.Checkpoint != nil && newSinceCapture && stats.Stages%opt.CheckpointEvery == 0 {
			opt.Checkpoint(bestSnap, bestCost, stats.Stages)
			opt.Flight.Record(obs.Event{Kind: obs.EventCheckpoint, Worker: int32(opt.chain), Stage: int32(stats.Stages), Best: bestCost, Peer: -1})
			newSinceCapture = false
		}
		stageSpan.End()
	}
	stats.BestCost = bestCost
	// Final capture, so an interruption between periodic captures (a
	// cancelled run in particular) never loses the latest best.
	if opt.Checkpoint != nil && newSinceCapture {
		opt.Checkpoint(bestSnap, bestCost, stats.Stages)
		opt.Flight.Record(obs.Event{Kind: obs.EventCheckpoint, Worker: int32(opt.chain), Stage: int32(stats.Stages), Best: bestCost, Peer: -1})
	}
	cur.Restore(bestSnap)
	return cur, stats
}

// calibrate estimates an initial temperature from a short random walk:
// the mean uphill delta divided by ln(1/p₀) with p₀ = 0.9, so roughly
// 90 % of uphill moves are initially accepted. Non-finite deltas
// (moves into rejected/infeasible states, which placers encode as
// infinite cost) are excluded from the estimate and from the walk —
// an infinite temperature would otherwise disable the whole schedule.
func calibrate(s Solution, rng *rand.Rand) float64 {
	const samples = 40
	cur := s
	curCost := cur.Cost()
	var sum float64
	var ups int
	for i := 0; i < samples; i++ {
		next := cur.Neighbor(rng)
		nextCost := next.Cost()
		if math.IsInf(nextCost, 0) || math.IsNaN(nextCost) {
			continue // stay on the feasible walk
		}
		if d := nextCost - curCost; d > 0 && !math.IsInf(d, 0) {
			sum += d
			ups++
		}
		cur, curCost = next, nextCost
	}
	if ups == 0 || sum == 0 {
		return 1.0
	}
	return (sum / float64(ups)) / math.Log(1/0.9)
}

// calibrateInPlace is calibrate for the move-and-undo protocol: the
// walk mutates the solution (undoing moves into infeasible states)
// and the initial state is restored before the schedule starts.
func calibrateInPlace(s MutableSolution, rng *rand.Rand) float64 {
	const samples = 40
	start := s.Snapshot()
	curCost := s.Cost()
	var sum float64
	var ups int
	for i := 0; i < samples; i++ {
		undo := s.Perturb(rng)
		nextCost := s.Cost()
		if math.IsInf(nextCost, 0) || math.IsNaN(nextCost) {
			undo() // stay on the feasible walk
			continue
		}
		if d := nextCost - curCost; d > 0 && !math.IsInf(d, 0) {
			sum += d
			ups++
		}
		curCost = nextCost
	}
	s.Restore(start)
	if ups == 0 || sum == 0 {
		return 1.0
	}
	return (sum / float64(ups)) / math.Log(1/0.9)
}

// Greedy runs pure hill-climbing (temperature zero): only improving
// moves are accepted. Useful as an ablation baseline against Anneal.
// Solutions that implement MutableSolution run without cloning: a
// non-improving move is undone in place.
func Greedy(initial Solution, moves int, seed int64) (Solution, Stats) {
	rng := rand.New(rand.NewSource(seed + 1))
	if ms, ok := initial.(MutableSolution); ok {
		curCost := ms.Cost()
		stats := Stats{InitCost: curCost}
		for i := 0; i < moves; i++ {
			stats.Moves++
			undo := ms.Perturb(rng)
			if c := ms.Cost(); c < curCost {
				curCost = c
				stats.Accepted++
				stats.Improved++
			} else {
				undo()
			}
		}
		stats.BestCost = curCost
		return initial, stats
	}
	cur := initial
	curCost := cur.Cost()
	stats := Stats{InitCost: curCost}
	for i := 0; i < moves; i++ {
		stats.Moves++
		next := cur.Neighbor(rng)
		if c := next.Cost(); c < curCost {
			cur, curCost = next, c
			stats.Accepted++
			stats.Improved++
		}
	}
	stats.BestCost = curCost
	return cur, stats
}
