// Package anneal provides the stochastic optimization engines behind
// the paper's "statistical solution approaches": a simulated-annealing
// driver (Kirkpatrick et al. [12]), a mutation-based evolutionary
// baseline, and the two-phase GA+SA combination of Zhang et al. [28].
// The engines are representation-agnostic: placers supply a Solution
// that can report its cost and produce a random neighbor.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Solution is one point of a search space. Neighbor must return a new
// Solution (not mutate the receiver), so the engines can keep the
// incumbent and the best-so-far without explicit undo bookkeeping.
type Solution interface {
	// Cost is the objective to minimize.
	Cost() float64
	// Neighbor returns a random neighboring solution.
	Neighbor(rng *rand.Rand) Solution
}

// Options configure a simulated-annealing run. The zero value is
// usable: sensible defaults are filled in by Anneal.
type Options struct {
	// InitialTemp is the starting temperature. If 0 it is calibrated
	// so the initial acceptance ratio of uphill moves is about 0.9,
	// following standard practice.
	InitialTemp float64
	// Cooling is the geometric cooling factor per stage (0 < c < 1).
	// Default 0.95.
	Cooling float64
	// MovesPerStage is the number of proposed moves per temperature
	// stage. Default 100.
	MovesPerStage int
	// MinTemp stops the schedule. Default 1e-3 × InitialTemp.
	MinTemp float64
	// MaxStages bounds the number of temperature stages. Default 500.
	MaxStages int
	// StallStages stops the run after this many stages without
	// improving the best cost. Default 50.
	StallStages int
	// Seed for the internal RNG (0 means a fixed default, keeping
	// runs reproducible).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	if o.MovesPerStage <= 0 {
		o.MovesPerStage = 100
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 500
	}
	if o.StallStages <= 0 {
		o.StallStages = 50
	}
	return o
}

// Stats reports what a run did.
type Stats struct {
	Stages    int
	Moves     int
	Accepted  int
	Improved  int // accepted moves that improved the incumbent
	FinalTemp float64
	BestCost  float64
	InitCost  float64
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("stages=%d moves=%d accepted=%d improved=%d cost %.4g -> %.4g",
		s.Stages, s.Moves, s.Accepted, s.Improved, s.InitCost, s.BestCost)
}

// Anneal runs simulated annealing from the initial solution and
// returns the best solution found with run statistics.
func Anneal(initial Solution, opt Options) (Solution, Stats) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	cur := initial
	curCost := cur.Cost()
	best, bestCost := cur, curCost
	stats := Stats{InitCost: curCost}

	temp := opt.InitialTemp
	if temp <= 0 {
		temp = calibrate(cur, rng)
	}
	minTemp := opt.MinTemp
	if minTemp <= 0 {
		minTemp = temp * 1e-3
	}

	stall := 0
	for stage := 0; stage < opt.MaxStages && temp > minTemp && stall < opt.StallStages; stage++ {
		stats.Stages++
		improvedThisStage := false
		for move := 0; move < opt.MovesPerStage; move++ {
			stats.Moves++
			next := cur.Neighbor(rng)
			nextCost := next.Cost()
			delta := nextCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				stats.Accepted++
				if delta < 0 {
					stats.Improved++
				}
				cur, curCost = next, nextCost
				if curCost < bestCost {
					best, bestCost = cur, curCost
					improvedThisStage = true
				}
			}
		}
		if improvedThisStage {
			stall = 0
		} else {
			stall++
		}
		temp *= opt.Cooling
		stats.FinalTemp = temp
	}
	stats.BestCost = bestCost
	return best, stats
}

// calibrate estimates an initial temperature from a short random walk:
// the mean uphill delta divided by ln(1/p₀) with p₀ = 0.9, so roughly
// 90 % of uphill moves are initially accepted.
func calibrate(s Solution, rng *rand.Rand) float64 {
	const samples = 40
	cur := s
	curCost := cur.Cost()
	var sum float64
	var ups int
	for i := 0; i < samples; i++ {
		next := cur.Neighbor(rng)
		nextCost := next.Cost()
		if d := nextCost - curCost; d > 0 {
			sum += d
			ups++
		}
		cur, curCost = next, nextCost
	}
	if ups == 0 || sum == 0 {
		return 1.0
	}
	return (sum / float64(ups)) / math.Log(1/0.9)
}

// Greedy runs pure hill-climbing (temperature zero): only improving
// moves are accepted. Useful as an ablation baseline against Anneal.
func Greedy(initial Solution, moves int, seed int64) (Solution, Stats) {
	rng := rand.New(rand.NewSource(seed + 1))
	cur := initial
	curCost := cur.Cost()
	stats := Stats{InitCost: curCost}
	for i := 0; i < moves; i++ {
		stats.Moves++
		next := cur.Neighbor(rng)
		if c := next.Cost(); c < curCost {
			cur, curCost = next, c
			stats.Accepted++
			stats.Improved++
		}
	}
	stats.BestCost = curCost
	return cur, stats
}
