package anneal

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAnnealContextCancel proves a cancelled context stops the run at
// a stage boundary and still returns the best-so-far with the
// Cancelled flag set.
func TestAnnealContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var clones atomic.Int64
	q := newQuad(500, &clones)
	stagesBeforeCancel := 3
	opt := Options{Seed: 1, MovesPerStage: 20, MaxStages: 1000, StallStages: 1000}
	opt.Context = ctx
	opt.Progress = func(st Stats) {
		if st.Stages == stagesBeforeCancel {
			cancel()
		}
	}
	best, stats := Anneal(q, opt)
	if !stats.Cancelled {
		t.Fatalf("run was cancelled but Stats.Cancelled is false: %+v", stats)
	}
	if stats.Stages != stagesBeforeCancel {
		t.Fatalf("cancelled after stage %d, expected exactly %d stages", stats.Stages, stagesBeforeCancel)
	}
	if best == nil || best.Cost() != stats.BestCost {
		t.Fatalf("cancelled run must return best-so-far (cost %v, stats %v)", best.Cost(), stats.BestCost)
	}
	// Best-so-far can never be worse than the start.
	if stats.BestCost > stats.InitCost {
		t.Fatalf("best %v worse than initial %v", stats.BestCost, stats.InitCost)
	}
}

// TestAnnealContextPreCancelled: a context cancelled before the run
// starts yields zero stages and the initial solution.
func TestAnnealContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var clones atomic.Int64
	q := newQuad(42, &clones)
	opt := Options{Seed: 1, MovesPerStage: 20, MaxStages: 100}
	opt.Context = ctx
	_, stats := Anneal(q, opt)
	if !stats.Cancelled || stats.Stages != 0 {
		t.Fatalf("pre-cancelled run did work: %+v", stats)
	}
	if stats.BestCost != stats.InitCost {
		t.Fatalf("pre-cancelled run must report the initial cost, got %+v", stats)
	}
}

// TestAnnealNilContextUnchanged pins that threading a nil context (the
// default) is bit-identical to a context that is never cancelled:
// cancellation checks must not consume randomness.
func TestAnnealNilContextUnchanged(t *testing.T) {
	var clones atomic.Int64
	run := func(ctx context.Context) Stats {
		opt := Options{Seed: 7, MovesPerStage: 30, MaxStages: 50}
		opt.Context = ctx
		_, stats := Anneal(newQuad(300, &clones), opt)
		return stats
	}
	if a, b := run(nil), run(context.Background()); a != b {
		t.Fatalf("context plumbing changed the run: %+v vs %+v", a, b)
	}
}

// TestParallelAnnealContextCancel: every chain of a multi-start run
// honors cancellation and the aggregate carries the flag.
func TestParallelAnnealContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var clones atomic.Int64
	var stages atomic.Int64
	opt := Options{Seed: 3, MovesPerStage: 10, MaxStages: 100000, StallStages: 100000}
	opt.Context = ctx
	opt.Progress = func(st Stats) {
		if stages.Add(1) == 8 {
			cancel()
		}
	}
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(100000+rng.Intn(1000), &clones)
	}
	best, stats := ParallelAnneal(newSol, 4, opt)
	if !stats.Cancelled {
		t.Fatalf("aggregate lost the Cancelled flag: %+v", stats)
	}
	if best == nil {
		t.Fatal("cancelled multi-start returned no solution")
	}
	if stats.Stages >= 100000 {
		t.Fatalf("cancellation did not stop the chains: %+v", stats)
	}
}

// TestParallelWorker0ReplicatesSerial locks in the PR 1 guarantee
// under the new progress/context plumbing: worker 0 of a multi-start
// run walks the exact per-stage trajectory of a serial run with the
// same Options — bit-identical best cost, moves and acceptance counts
// at every stage — so the best-of reduction can never lose to serial.
// It also pins that two identical multi-start runs are bit-identical.
func TestParallelWorker0ReplicatesSerial(t *testing.T) {
	var clones atomic.Int64
	newSol := func(seed int64) Solution {
		rng := rand.New(rand.NewSource(seed))
		return newQuad(rng.Intn(500), &clones)
	}
	base := Options{Seed: 17, MovesPerStage: 25, MaxStages: 40, StallStages: 40}

	var serial []Stats
	sopt := base
	sopt.Progress = func(st Stats) { serial = append(serial, st) }
	_, serialStats := Anneal(newSol(chainSeed(base.Seed, 0)), sopt)

	run := func() ([]Stats, Stats) {
		var mu sync.Mutex
		var w0 []Stats
		popt := base
		popt.Progress = func(st Stats) {
			if st.Worker != 0 {
				return
			}
			mu.Lock()
			w0 = append(w0, st)
			mu.Unlock()
		}
		_, stats := ParallelAnneal(newSol, 4, popt)
		return w0, stats
	}
	w0, par1 := run()
	_, par2 := run()

	if par1 != par2 {
		t.Fatalf("identical multi-start runs differ: %+v vs %+v", par1, par2)
	}
	if len(w0) != len(serial) {
		t.Fatalf("worker 0 ran %d stages, serial ran %d", len(w0), len(serial))
	}
	for i := range serial {
		got := w0[i]
		got.Worker = 0 // serial snapshots carry Worker 0 already
		if got != serial[i] {
			t.Fatalf("stage %d diverged: worker0 %+v vs serial %+v", i, w0[i], serial[i])
		}
	}
	if par1.BestCost > serialStats.BestCost {
		t.Fatalf("multi-start best %v lost to serial %v", par1.BestCost, serialStats.BestCost)
	}
}
