package anneal

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"

	"repro/internal/obs"
)

// defaultTemperLadder is the geometric spacing between neighboring
// rungs of the tempering temperature ladder when Options.TemperLadder
// is unset. 1.6 keeps neighboring rungs close enough that exchange
// acceptance stays useful on the placement objectives (measured
// 20–60 % on the synthetic instances) while spanning more than an
// order of magnitude of temperature across 8 chains.
//
// The ladder is anchored at the top: the hottest rung runs at the
// calibrated (or configured) initial temperature and rung k sits
// TemperLadder^(chains−1−k) below it. Anchoring at the bottom — cold
// rung at the calibrated temperature, hotter rungs above — wastes the
// high rungs, because calibration already targets near-free
// acceptance and anything hotter is a pure random walk. Anchored at
// the top, the ladder covers the whole useful temperature range at
// once: the cold rung starts where a serial schedule would arrive
// only after dozens of cooling stages, and the hot rungs keep the
// mobility the serial schedule front-loads.
const defaultTemperLadder = 3.5

// temperExchangeSalt offsets the dedicated exchange RNG from the
// chain seeds, so enabling exchanges never perturbs any chain's own
// move sequence.
const temperExchangeSalt = 0x7E117E9

// replica is one rung of the tempering ladder: a chain with its own
// solution, RNG, temperature and best-so-far tracking.
type replica struct {
	sol      MutableSolution
	rng      *rand.Rand
	cost     float64
	temp     float64
	bestSnap any
	bestCost float64
	stats    Stats
	kinds    MoveKindReporter // non-nil when sol reports per-kind counters
}

// noteBest records the current state as the replica's best if it
// improves on it (used after a replica exchange delivers a state the
// chain's own walk never visited).
func (r *replica) noteBest() {
	if r.cost < r.bestCost {
		r.bestCost = r.cost
		r.bestSnap = r.sol.Snapshot()
	}
}

// runStage advances the replica by one temperature stage. The move
// loop, acceptance rule, statistics and RNG discipline are exactly
// annealInPlace's, so a replica with exchanges disabled walks the
// same trajectory a serial chain with the same seed would. Progress
// snapshots and flight events carry the replica's rung in Worker:
// replicas are pinned to their rung (exchanges swap states, not
// chains), so the stream tracks one temperature level.
func (r *replica) runStage(opt *Options) {
	stageSpan := obs.ChildSpan(opt.Context, "stage", obs.Int("chain", r.stats.Worker), obs.Int("stage", r.stats.Stages+1))
	r.stats.Stages++
	for move := 0; move < opt.MovesPerStage; move++ {
		r.stats.Moves++
		undo := r.sol.Perturb(r.rng)
		nextCost := r.sol.Cost()
		delta := nextCost - r.cost
		if delta <= 0 || r.rng.Float64() < math.Exp(-delta/r.temp) {
			r.stats.Accepted++
			if delta < 0 {
				r.stats.Improved++
			}
			r.cost = nextCost
			if r.cost < r.bestCost {
				r.bestCost = r.cost
				r.bestSnap = r.sol.Snapshot()
			}
		} else {
			undo()
		}
	}
	r.temp *= opt.Cooling
	r.stats.FinalTemp = r.temp
	opt.report(r.stats, r.bestCost)
	if opt.Flight != nil {
		recordStage(opt.Flight, r.stats.Worker, &r.stats, r.cost, r.bestCost, r.kinds)
	}
	stageSpan.End()
}

// TemperAnneal runs parallel tempering (replica exchange): chains
// replicas anneal concurrently at a geometric temperature ladder
// anchored at the top (the hottest rung at the calibrated base
// temperature, rung k at TemperLadder^(chains−1−k) below it, rung 0
// coldest), and every Options.ExchangeEvery stages neighboring
// rungs attempt a state swap through Snapshot/Restore, accepted with
// the Metropolis criterion min(1, exp((βa−βb)(Ea−Eb))) — a better
// state always migrates toward the cold rung, a worse one climbs the
// ladder with temperature-matched probability. High rungs cross cost
// barriers that would trap a cold chain; exchanges hand their
// discoveries down the ladder.
//
// With exchanges disabled (ExchangeEvery ≤ 0) or fewer than two
// chains the call delegates to ParallelAnneal, bit-identically: rung
// 0 then replicates the exact serial chain of Anneal with the same
// Options, preserving the never-loses-to-serial contract. With
// exchanges enabled each chain still draws the move sequence of its
// multi-start counterpart (the exchange sweep has its own RNG), the
// schedule ends on rung 0's temperature floor, and the run remains
// deterministic for a fixed (Seed, chains, ExchangeEvery).
//
// Cancellation is checked once per stage on the coordinator; chains
// are joined at stage boundaries and exchanges happen between them,
// so a cancelled run never leaves a wedged chain. Stats aggregate all
// chains (Exchanges/ExchangeAccepted count the sweep outcomes);
// InitCost/BestCost/FinalTemp/Worker come from the winning rung, ties
// broken by the lowest rung id.
func TemperAnneal(newSolution func(seed int64) Solution, chains int, opt Options) (Solution, Stats) {
	if chains < 2 || opt.ExchangeEvery <= 0 {
		return ParallelAnneal(newSolution, chains, opt)
	}
	// The exchange mechanism needs Snapshot/Restore; a cloning-protocol
	// solution falls back to plain multi-start.
	if _, ok := newSolution(chainSeed(opt.Seed, 0)).(MutableSolution); !ok {
		return ParallelAnneal(newSolution, chains, opt)
	}
	opt = opt.withDefaults()
	ladder := opt.TemperLadder
	if ladder <= 1 {
		ladder = defaultTemperLadder
	}
	// One span for the whole ladder; the replicas' stage spans parent
	// to it through the derived context.
	var ladderSpan *obs.ActiveSpan
	opt.Context, ladderSpan = obs.StartSpan(opt.Context, "anneal", obs.Int("chains", chains))
	defer ladderSpan.End()

	var panicMu sync.Mutex
	var panicked any
	capture := func(k int) {
		if r := recover(); r != nil {
			panicMu.Lock()
			if panicked == nil {
				panicked = fmt.Sprintf("replica %d: %v\n%s", k, r, debug.Stack())
			}
			panicMu.Unlock()
		}
	}

	// Build every replica concurrently: each owns its representation,
	// workspaces and RNG, seeded exactly like ParallelAnneal's chains;
	// only rung 0 consumes a resume checkpoint. Calibration mirrors
	// annealInPlace, then the ladder scales rung k's base temperature.
	reps := make([]*replica, chains)
	var wg sync.WaitGroup
	wg.Add(chains)
	for k := 0; k < chains; k++ {
		go func(k int) {
			defer wg.Done()
			defer capture(k)
			seed := chainSeed(opt.Seed, k)
			r := &replica{rng: rand.New(rand.NewSource(seed + 1))}
			r.stats.Worker = k
			r.sol, _ = newSolution(seed).(MutableSolution)
			r.kinds, _ = r.sol.(MoveKindReporter)
			resumed := false
			if k == 0 && opt.Resume != nil {
				if snap, ok := opt.Resume(); ok {
					r.sol.Restore(snap)
					resumed = true
				}
			}
			r.cost = r.sol.Cost()
			if resumed && opt.Flight != nil {
				opt.Flight.Record(obs.Event{Kind: obs.EventResume, Worker: int32(k), Cur: r.cost, Best: r.cost, Peer: -1})
			}
			r.stats.InitCost = r.cost
			r.bestSnap = r.sol.Snapshot()
			r.bestCost = r.cost
			base := opt.InitialTemp
			if base <= 0 {
				base = calibrateInPlace(r.sol, r.rng)
				r.cost = r.sol.Cost()
			}
			r.temp = base * math.Pow(ladder, float64(k-(chains-1)))
			reps[k] = r
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	minTemp := opt.MinTemp
	if minTemp <= 0 {
		minTemp = reps[0].temp * 1e-3
	}
	xrng := rand.New(rand.NewSource(opt.Seed + temperExchangeSalt))

	agg := Stats{}
	globalBestCost := math.Inf(1)
	var globalBestSnap any
	for _, r := range reps {
		if r.bestCost < globalBestCost {
			globalBestCost = r.bestCost
			globalBestSnap = r.bestSnap
		}
	}
	// The initial best is capture-worthy, exactly as in annealInPlace.
	newSinceCapture := true

	stall := 0
	stages := 0
	// The schedule is rung 0's: the run ends when the coldest chain's
	// temperature floor, stage bound or stall bound trips, with stall
	// counted on the ladder-wide best.
	for stage := 0; stage < opt.MaxStages && reps[0].temp > minTemp && stall < opt.StallStages; stage++ {
		if opt.cancelled() {
			agg.Cancelled = true
			break
		}
		stages++
		wg.Add(chains)
		for k := 0; k < chains; k++ {
			go func(k int) {
				defer wg.Done()
				defer capture(k)
				reps[k].runStage(&opt)
			}(k)
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		improved := false
		for _, r := range reps {
			if r.bestCost < globalBestCost {
				globalBestCost = r.bestCost
				globalBestSnap = r.bestSnap
				improved = true
				newSinceCapture = true
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
		if opt.Checkpoint != nil && newSinceCapture && stages%opt.CheckpointEvery == 0 {
			opt.Checkpoint(globalBestSnap, globalBestCost, stages)
			// Worker -1: the capture is of the ladder-wide best, not any
			// one rung's.
			opt.Flight.Record(obs.Event{Kind: obs.EventCheckpoint, Worker: -1, Stage: int32(stages), Best: globalBestCost, Peer: -1})
			newSinceCapture = false
		}
		// Replica-exchange sweep over neighboring rungs, on the
		// coordinator between stage barriers (no chain is running, so
		// a swap can never race a move and cancellation can never
		// wedge a chain mid-exchange). The sweep's RNG is its own:
		// enabling exchanges changes no chain's move sequence.
		if stages%opt.ExchangeEvery == 0 {
			for k := 0; k < chains-1; k++ {
				a, b := reps[k], reps[k+1]
				agg.Exchanges++
				// βa > βb (a is colder); swapping states changes the
				// joint Boltzmann weight by exp((βa−βb)(Ea−Eb)).
				delta := (1/a.temp - 1/b.temp) * (a.cost - b.cost)
				accept := delta >= 0 || xrng.Float64() < math.Exp(delta)
				if opt.Flight != nil {
					// Recorded with the pre-swap costs: the decision's
					// inputs, whichever way it went.
					opt.Flight.Record(obs.Event{
						Kind: obs.EventExchange, Stage: int32(stages),
						Worker: int32(k), Temp: a.temp, Cur: a.cost,
						Peer: int32(k + 1), PeerTemp: b.temp, PeerCost: b.cost,
						Accept: accept,
					})
				}
				if accept {
					agg.ExchangeAccepted++
					sa := a.sol.Snapshot()
					a.sol.Restore(b.sol.Snapshot())
					b.sol.Restore(sa)
					a.cost, b.cost = b.cost, a.cost
					a.noteBest()
					b.noteBest()
				}
			}
		}
	}

	win := 0
	for i, r := range reps {
		agg.Stages += r.stats.Stages
		agg.Moves += r.stats.Moves
		agg.Accepted += r.stats.Accepted
		agg.Improved += r.stats.Improved
		if r.bestCost < reps[win].bestCost {
			win = i
		}
	}
	agg.InitCost = reps[win].stats.InitCost
	agg.BestCost = reps[win].bestCost
	agg.FinalTemp = reps[win].stats.FinalTemp
	agg.Worker = win
	if opt.Checkpoint != nil && newSinceCapture {
		opt.Checkpoint(globalBestSnap, globalBestCost, stages)
		opt.Flight.Record(obs.Event{Kind: obs.EventCheckpoint, Worker: -1, Stage: int32(stages), Best: globalBestCost, Peer: -1})
	}
	winner := reps[win]
	winner.sol.Restore(winner.bestSnap)
	return winner.sol.(Solution), agg
}
