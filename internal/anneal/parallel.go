package anneal

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// chainSeed derives the seed of worker i from the base seed. The
// multiplier is an arbitrary large odd constant so neighboring worker
// ids land far apart in the seed space; the mapping is fixed, keeping
// multi-start runs reproducible for a given (seed, workers) pair.
func chainSeed(base int64, worker int) int64 {
	const stride = 0x4F1BBCDCBFA53E0B // 2⁶³/φ, odd
	return base + int64(worker)*stride
}

// ParallelAnneal runs parallel multi-start simulated annealing: one
// independent chain per worker, each on its own solution built by
// newSolution from a derived seed (so every chain owns its RNG, its
// representation state and its packing workspaces — nothing is shared
// between goroutines), followed by a best-of reduction.
//
// The result is deterministic for a fixed (opt.Seed, workers) pair:
// worker i always receives chainSeed(opt.Seed, i) regardless of
// scheduling, and cost ties in the reduction are broken by the lowest
// worker id. Worker 0 runs the exact chain a serial Anneal with the
// same Options would run.
//
// Solutions that implement MutableSolution get the in-place engine,
// making each chain allocation-free at steady state; the aggregate
// Stats sum moves across chains while InitCost/BestCost/FinalTemp come
// from the winning chain, Worker records the winning chain's id, and
// Cancelled is set when any chain stopped on Options.Context.
//
// Options.Progress snapshots are stamped with the reporting chain's
// Worker id; the callback is invoked concurrently from every chain.
func ParallelAnneal(newSolution func(seed int64) Solution, workers int, opt Options) (Solution, Stats) {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		return Anneal(newSolution(chainSeed(opt.Seed, 0)), opt)
	}
	type chain struct {
		best  Solution
		stats Stats
	}
	results := make([]chain, workers)
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				// A chain panic would kill the process from this
				// goroutine, where no caller can recover it; capture
				// it — with the originating chain's stack, which the
				// rethrow would otherwise lose — and rethrow on the
				// calling goroutine, so servers wrapping
				// ParallelAnneal in a recover see it.
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = fmt.Sprintf("worker %d: %v\n%s", i, r, debug.Stack())
					}
					panicMu.Unlock()
				}
			}()
			seed := chainSeed(opt.Seed, i)
			wopt := opt
			wopt.Seed = seed
			wopt.Workers = 1
			// Flight events and stage spans carry the chain id; the
			// recorder itself is shared (it is concurrency-safe).
			wopt.chain = i
			if prog := opt.Progress; prog != nil {
				wopt.Progress = func(st Stats) {
					st.Worker = i
					prog(st)
				}
			}
			// Only worker 0 — the chain that replicates a serial run —
			// resumes from a checkpoint; the other chains keep their
			// independent multi-start starts, so a resumed run still
			// explores while never losing the checkpointed best.
			if i != 0 {
				wopt.Resume = nil
			}
			best, stats := Anneal(newSolution(seed), wopt)
			stats.Worker = i
			results[i] = chain{best, stats}
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	win := 0
	agg := Stats{}
	for i, r := range results {
		agg.Stages += r.stats.Stages
		agg.Moves += r.stats.Moves
		agg.Accepted += r.stats.Accepted
		agg.Improved += r.stats.Improved
		if r.stats.Cancelled {
			agg.Cancelled = true
		}
		if r.stats.BestCost < results[win].stats.BestCost {
			win = i
		}
	}
	agg.InitCost = results[win].stats.InitCost
	agg.BestCost = results[win].stats.BestCost
	agg.FinalTemp = results[win].stats.FinalTemp
	agg.Worker = results[win].stats.Worker
	return results[win].best, agg
}
