package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is a toy search space: integers with cost (x - 37)², plus
// a rugged term to give SA hills to climb.
type quadratic struct {
	x      int
	rugged bool
}

func (q quadratic) Cost() float64 {
	d := float64(q.x - 37)
	c := d * d
	if q.rugged {
		c += 40 * math.Abs(math.Sin(float64(q.x)))
	}
	return c
}

func (q quadratic) Neighbor(rng *rand.Rand) Solution {
	step := rng.Intn(7) - 3
	return quadratic{q.x + step, q.rugged}
}

// xquadratic is quadratic with midpoint crossover, for the
// recombination-enabled evolutionary engine.
type xquadratic struct{ quadratic }

func (q xquadratic) Neighbor(rng *rand.Rand) Solution {
	return xquadratic{q.quadratic.Neighbor(rng).(quadratic)}
}

func (q xquadratic) Crossover(mate Solution, rng *rand.Rand) Solution {
	m, ok := mate.(xquadratic)
	if !ok {
		return nil
	}
	return xquadratic{quadratic{(q.x + m.x) / 2, q.rugged}}
}

// TestEvolveCrossover: with CrossoverRate set, recombination-capable
// populations still converge, and a zero rate draws no extra
// randomness (bit-identical to the historical mutation-only engine).
func TestEvolveCrossover(t *testing.T) {
	best, stats := Evolve(xquadratic{quadratic{x: 400}},
		GAOptions{Seed: 5, Generations: 600, StallGenerations: 100, CrossoverRate: 0.5})
	if best.Cost() > 4 {
		t.Fatalf("crossover evolve ended at cost %v (stats: %v)", best.Cost(), stats)
	}
	// Rate zero must replay the mutation-only engine exactly, even on
	// crossover-capable solutions.
	a, _ := Evolve(xquadratic{quadratic{x: 400}}, GAOptions{Seed: 5, Generations: 50})
	b, _ := Evolve(quadratic{x: 400}, GAOptions{Seed: 5, Generations: 50})
	ax := a.(xquadratic).x
	bx := b.(quadratic).x
	if ax != bx {
		t.Fatalf("zero crossover rate diverged from the mutation-only engine: %d vs %d", ax, bx)
	}
}

func TestAnnealFindsOptimum(t *testing.T) {
	best, stats := Anneal(quadratic{x: 500}, Options{Seed: 1})
	q := best.(quadratic)
	if q.Cost() > 4 {
		t.Fatalf("anneal ended at x=%d cost=%v, want near 37 (stats: %v)", q.x, q.Cost(), stats)
	}
	if stats.Moves == 0 || stats.Accepted == 0 {
		t.Fatal("no moves recorded")
	}
	if stats.BestCost > stats.InitCost {
		t.Fatal("best cost must not exceed initial cost")
	}
}

func TestAnnealRuggedLandscape(t *testing.T) {
	best, _ := Anneal(quadratic{x: 300, rugged: true}, Options{Seed: 2, MovesPerStage: 200})
	q := best.(quadratic)
	if math.Abs(float64(q.x-37)) > 10 {
		t.Fatalf("rugged anneal ended at x=%d, want near 37", q.x)
	}
}

func TestAnnealDeterministicWithSeed(t *testing.T) {
	a, _ := Anneal(quadratic{x: 200}, Options{Seed: 7})
	b, _ := Anneal(quadratic{x: 200}, Options{Seed: 7})
	if a.(quadratic).x != b.(quadratic).x {
		t.Fatal("same seed must give same result")
	}
}

func TestAnnealRespectsMaxStages(t *testing.T) {
	_, stats := Anneal(quadratic{x: 500}, Options{Seed: 1, MaxStages: 3, StallStages: 100})
	if stats.Stages > 3 {
		t.Fatalf("Stages = %d, want <= 3", stats.Stages)
	}
}

func TestAnnealStallStops(t *testing.T) {
	// Start at the optimum: no improvement is possible, so the run
	// must stop after StallStages stages.
	_, stats := Anneal(quadratic{x: 37}, Options{Seed: 1, StallStages: 5, MaxStages: 1000})
	if stats.Stages > 60 {
		t.Fatalf("Stages = %d, expected early stall stop", stats.Stages)
	}
}

func TestGreedyOnlyImproves(t *testing.T) {
	best, stats := Greedy(quadratic{x: 90}, 3000, 3)
	q := best.(quadratic)
	if q.Cost() > 4 {
		t.Fatalf("greedy ended at x=%d, want near 37", q.x)
	}
	if stats.Accepted != stats.Improved {
		t.Fatal("greedy must only accept improving moves")
	}
}

func TestEvolveFindsOptimum(t *testing.T) {
	best, stats := Evolve(quadratic{x: 400}, GAOptions{Seed: 5, Generations: 600, StallGenerations: 100})
	q := best.(quadratic)
	if q.Cost() > 9 {
		t.Fatalf("evolve ended at x=%d cost=%v (stats %v)", q.x, q.Cost(), stats)
	}
}

func TestTwoPhaseBeatsItsStart(t *testing.T) {
	best, stats := TwoPhase(quadratic{x: 700, rugged: true},
		GAOptions{Seed: 11, Generations: 30},
		Options{Seed: 11, MovesPerStage: 100})
	q := best.(quadratic)
	if math.Abs(float64(q.x-37)) > 10 {
		t.Fatalf("two-phase ended at x=%d, want near 37", q.x)
	}
	if stats.BestCost >= stats.InitCost {
		t.Fatal("two-phase must improve on the initial cost")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Stages: 1, Moves: 2, Accepted: 1, BestCost: 3}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
