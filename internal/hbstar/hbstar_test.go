package hbstar

import (
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/cost"
	"repro/internal/geom"
)

func dimsFrom(m map[string][2]int) func(string) (int, int, error) {
	return func(name string) (int, int, error) {
		d, ok := m[name]
		if !ok {
			return 0, 0, errUnknown(name)
		}
		return d[0], d[1], nil
	}
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown device " + string(e) }

// fig2Tree is a small stand-in for the paper's Fig. 2 hierarchy: a top
// design with a symmetric sub-circuit, a proximity sub-circuit and
// free devices.
func fig2Tree() (*constraint.Node, map[string][2]int) {
	tree := &constraint.Node{
		Name: "top",
		Children: []*constraint.Node{
			{
				Name:     "sym",
				Kind:     constraint.KindSymmetry,
				Devices:  []string{"D", "E", "F"},
				SymPairs: [][2]string{{"D", "E"}},
				SymSelfs: []string{"F"},
			},
			{
				Name:    "prox",
				Kind:    constraint.KindProximity,
				Devices: []string{"J", "K"},
			},
		},
		Devices: []string{"A", "B", "C"},
	}
	dims := map[string][2]int{
		"A": {12, 8}, "B": {6, 6}, "C": {10, 14},
		"D": {8, 10}, "E": {8, 10}, "F": {6, 4},
		"J": {9, 5}, "K": {5, 9},
	}
	return tree, dims
}

func TestBuildForest(t *testing.T) {
	tree, dims := fig2Tree()
	f, err := Build(tree, dimsFrom(dims))
	if err != nil {
		t.Fatal(err)
	}
	// Number of HB*-trees = sub-circuits + top = 3 (sym, prox, top).
	if f.TreeCount() != 3 {
		t.Fatalf("TreeCount = %d, want 3", f.TreeCount())
	}
}

func TestBuildErrors(t *testing.T) {
	tree, dims := fig2Tree()
	delete(dims, "K")
	if _, err := Build(tree, dimsFrom(dims)); err == nil {
		t.Fatal("unknown device must fail")
	}
	// Unequal pair dims.
	tree2, dims2 := fig2Tree()
	dims2["E"] = [2]int{9, 10}
	if _, err := Build(tree2, dimsFrom(dims2)); err == nil {
		t.Fatal("unequal pair dims must fail")
	}
	// Symmetry node with stray device.
	tree3, dims3 := fig2Tree()
	tree3.Children[0].Devices = append(tree3.Children[0].Devices, "X")
	dims3["X"] = [2]int{2, 2}
	if _, err := Build(tree3, dimsFrom(dims3)); err == nil {
		t.Fatal("stray device in symmetry node must fail")
	}
	// Empty sub-circuit.
	empty := &constraint.Node{Name: "top", Children: []*constraint.Node{{Name: "void"}}}
	if _, err := Build(empty, dimsFrom(dims)); err == nil {
		t.Fatal("empty sub-circuit must fail")
	}
}

func TestPackLegalAndSymmetric(t *testing.T) {
	tree, dims := fig2Tree()
	f, err := Build(tree, dimsFrom(dims))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := f.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 8 {
		t.Fatalf("placement has %d modules, want 8", len(pl))
	}
	if !pl.Legal() {
		t.Fatalf("overlaps: %v", pl.Overlaps())
	}
	sym := constraint.SymmetryGroup{
		Name: "sym", Vertical: true,
		Pairs: [][2]string{{"D", "E"}},
		Selfs: []string{"F"},
	}
	if err := sym.Check(pl); err != nil {
		t.Fatalf("symmetry island broken: %v", err)
	}
}

// Symmetry must hold after arbitrary perturbation sequences — the
// point of linking ASF islands under hierarchy nodes.
func TestPerturbKeepsLegalityAndSymmetry(t *testing.T) {
	tree, dims := fig2Tree()
	f, err := Build(tree, dimsFrom(dims))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sym := constraint.SymmetryGroup{
		Name: "sym", Vertical: true,
		Pairs: [][2]string{{"D", "E"}},
		Selfs: []string{"F"},
	}
	for step := 0; step < 400; step++ {
		f.Perturb(rng)
		pl, err := f.Pack()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !pl.Legal() {
			t.Fatalf("step %d: overlaps %v", step, pl.Overlaps())
		}
		if err := sym.Check(pl); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// The skyline (contour-node) mechanism must let a later module nest
// into the notch of a non-rectangular sub-placement, which the
// bounding-box abstraction cannot: this is the deterministic check.
// The sub-circuit packs wide (20x10) then tall (10x30) to its right —
// an L-shaped outline with a 20-wide notch above the wide module. The
// top tree places "nest" as the sub-circuit's right child (same x), so
// with contour nodes it rests at y=10 inside the notch; with bounding
// boxes it is pushed to y=30.
func TestContourNodesAllowNesting(t *testing.T) {
	tree := &constraint.Node{
		Name: "top",
		Children: []*constraint.Node{
			{Name: "sub", Devices: []string{"wide", "tall"}},
		},
		Devices: []string{"nest"},
	}
	dims := map[string][2]int{
		"wide": {20, 10},
		"tall": {10, 30},
		"nest": {20, 10},
	}
	build := func(bbox bool) *Forest {
		f, err := Build(tree, dimsFrom(dims))
		if err != nil {
			t.Fatal(err)
		}
		f.BBoxOutline = bbox
		// Top tree items: 0 = "nest" (device first), 1 = hierarchy
		// node for "sub". Structure: root = sub, right child = nest.
		top := f.root
		top.tree.Root = 1
		top.tree.Left[1], top.tree.Right[1], top.tree.Parent[1] = -1, 0, -1
		top.tree.Left[0], top.tree.Right[0], top.tree.Parent[0] = -1, -1, 1
		return f
	}
	withContour := build(false)
	pl, err := withContour.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Legal() {
		t.Fatalf("contour packing overlaps: %v", pl.Overlaps())
	}
	if got := pl["nest"]; got.Y != 10 || got.X != 0 {
		t.Fatalf("nest at %v, want (0,10) inside the contour notch", got)
	}
	withBBox := build(true)
	plb, err := withBBox.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if got := plb["nest"]; got.Y != 30 {
		t.Fatalf("bbox-outline nest at %v, want y=30 above the bounding box", got)
	}
	if pl.Area() >= plb.Area() {
		t.Fatalf("contour area %d must beat bbox area %d", pl.Area(), plb.Area())
	}
}

// Randomized comparison: across a perturbation walk, the best area
// with contour nodes is never worse than with bounding-box outlines.
func TestContourBeatsBBoxOnRandomWalks(t *testing.T) {
	tree, dims := fig2Tree()
	bestOf := func(bbox bool, seed int64) int64 {
		f, err := Build(tree, dimsFrom(dims))
		if err != nil {
			t.Fatal(err)
		}
		f.BBoxOutline = bbox
		rng := rand.New(rand.NewSource(seed))
		best := int64(1 << 62)
		for step := 0; step < 1500; step++ {
			f.Perturb(rng)
			pl, err := f.Pack()
			if err != nil {
				t.Fatal(err)
			}
			if !pl.Legal() {
				t.Fatalf("step %d: overlaps", step)
			}
			if a := pl.Area(); a < best {
				best = a
			}
		}
		return best
	}
	contour := bestOf(false, 7)
	bbox := bestOf(true, 7)
	if contour > bbox {
		t.Fatalf("contour best %d worse than bbox best %d", contour, bbox)
	}
}

func TestCloneIndependence(t *testing.T) {
	tree, dims := fig2Tree()
	f, err := Build(tree, dimsFrom(dims))
	if err != nil {
		t.Fatal(err)
	}
	before, err := f.Pack()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cl := f.Clone()
	for i := 0; i < 100; i++ {
		cl.Perturb(rng)
	}
	after, err := f.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range before {
		if after[name] != r {
			t.Fatal("perturbing clone mutated original forest")
		}
	}
	if cl.TreeCount() != f.TreeCount() {
		t.Fatal("clone has different tree count")
	}
}

func TestPlaceMillerOpAmp(t *testing.T) {
	b := circuits.MillerOpAmp()
	res, err := Place(&Problem{Bench: b, WireWeight: 0.5},
		anneal.Options{Seed: 5, MovesPerStage: 60, MaxStages: 80, StallStages: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("overlaps: %v", res.Placement.Overlaps())
	}
	// Symmetry constraints are satisfied by construction.
	for _, v := range res.Violations {
		t.Logf("violation: %v", v)
	}
	// DP and CM1 symmetry must hold exactly.
	dp := constraint.SymmetryGroup{Name: "DP", Vertical: true, Pairs: [][2]string{{"P1", "P2"}}}
	if err := dp.Check(res.Placement); err != nil {
		t.Fatal(err)
	}
	cm := constraint.SymmetryGroup{Name: "CM1", Vertical: true, Pairs: [][2]string{{"N3", "N4"}}}
	if err := cm.Check(res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceTableICircuit(t *testing.T) {
	b, err := circuits.TableIBench("comparator_v2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(&Problem{Bench: b, WireWeight: 0.2},
		anneal.Options{Seed: 9, MovesPerStage: 50, MaxStages: 60, StallStages: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Legal() {
		t.Fatalf("overlaps: %v", res.Placement.Overlaps())
	}
	if len(res.Placement) != len(b.Circuit.Devices) {
		t.Fatal("missing modules in placement")
	}
	// Area sanity.
	if u := res.Placement.AreaUsage(); u > 3 {
		t.Fatalf("area usage %.2f unexpectedly bad", u)
	}
}

func TestProximityFragments(t *testing.T) {
	tree := &constraint.Node{
		Name:    "p",
		Kind:    constraint.KindProximity,
		Devices: []string{"a", "b", "c"},
	}
	o := &objective{id: map[string]int{"a": 0, "b": 1, "c": 2}}
	ft := newFragTerm(o.proximityGroups(tree))
	eval := func(pl geom.Placement) int {
		c := &cost.Coords{X: make([]int, 3), Y: make([]int, 3), W: make([]int, 3), H: make([]int, 3)}
		for name, i := range o.id {
			r := pl[name]
			c.X[i], c.Y[i], c.W[i], c.H[i] = r.X, r.Y, r.W, r.H
		}
		ft.Eval(c)
		return int(ft.Value())
	}
	connected := geom.Placement{
		"a": geom.NewRect(0, 0, 5, 5),
		"b": geom.NewRect(5, 0, 5, 5),
		"c": geom.NewRect(10, 0, 5, 5),
	}
	if got := eval(connected); got != 0 {
		t.Fatalf("connected fragments = %d, want 0", got)
	}
	split := geom.Placement{
		"a": geom.NewRect(0, 0, 5, 5),
		"b": geom.NewRect(100, 0, 5, 5),
		"c": geom.NewRect(200, 0, 5, 5),
	}
	if got := eval(split); got != 2 {
		t.Fatalf("split fragments = %d, want 2", got)
	}
}
