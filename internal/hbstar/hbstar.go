// Package hbstar implements hierarchical B*-trees (HB*-trees, Lin/Lin
// [17]), the Section III representation for analog placement with
// layout design hierarchy. Each sub-circuit of the hierarchy owns its
// own tree: symmetry sub-circuits are ASF-B*-tree symmetry islands
// (package asf), other sub-circuits are B*-trees whose nodes are
// devices and hierarchy nodes. A hierarchy node stands for a whole
// child sub-circuit; its top outline is carried as a list of skyline
// segments — the paper's "contour nodes" — so that modules packed
// later can nest into the notches of a non-rectangular sub-placement
// instead of being pushed above its bounding box.
//
// Packing is recursive pre-order, exactly as the paper describes:
// "once a hierarchy node is traversed, the nodes in the HB*-tree
// linked by the hierarchy node will be traversed before traversing the
// next node"; perturbation first selects one of the trees, then
// applies an ordinary B*-tree (or island) perturbation to it.
package hbstar

import (
	"fmt"
	"sort"

	"repro/internal/asf"
	"repro/internal/bstar"
	"repro/internal/constraint"
	"repro/internal/geom"
)

// seg is one skyline segment: height h over [x1, x2) relative to the
// sub-placement origin. A hierarchy node's segments are its contour
// nodes.
type seg struct {
	x1, x2, h int
}

// item is one entry of a sub-circuit's B*-tree: a device or a
// hierarchy node referencing a child sub-circuit.
type item struct {
	dev   string // device name; "" for hierarchy nodes
	w, h  int    // device dimensions (unused for hierarchy nodes)
	child *Node
}

// Node is one sub-circuit with its tree.
type Node struct {
	name string
	kind constraint.Kind

	// Symmetry sub-circuits pack as an island.
	island *asf.Island

	// Other sub-circuits pack a B*-tree over items. The tree's W/H
	// arrays are placeholders; item dimensions are resolved at pack
	// time (children change shape every pack).
	tree  *bstar.Tree
	items []item
}

// Forest is the complete HB*-tree set of one design: the top tree plus
// one tree per sub-circuit ("the number of the HB*-trees will be equal
// to that of the sub-circuits plus the one modelling the top design").
type Forest struct {
	root *Node
	all  []*Node // every Node, for uniform perturbation

	// BBoxOutline disables the contour nodes: hierarchy nodes expose
	// a flat bounding-box top instead of their skyline. Ablation knob
	// for measuring what the paper's contour nodes buy.
	BBoxOutline bool
}

// Build converts a constraint hierarchy into an HB*-tree forest. dims
// resolves device footprints. Symmetry nodes must consist of device
// pairs and selfs only (hierarchical symmetry over sub-circuits is
// packed by mirroring and currently requires the pair members to be
// leaf devices).
func Build(root *constraint.Node, dims func(name string) (w, h int, err error)) (*Forest, error) {
	f := &Forest{}
	rn, err := f.build(root, dims)
	if err != nil {
		return nil, err
	}
	f.root = rn
	return f, nil
}

func (f *Forest) build(cn *constraint.Node, dims func(string) (int, int, error)) (*Node, error) {
	n := &Node{name: cn.Name, kind: cn.Kind}
	if cn.Kind == constraint.KindSymmetry {
		if len(cn.Children) > 0 {
			return nil, fmt.Errorf("hbstar: symmetry node %q has sub-circuits; flatten hierarchical symmetry to device pairs first", cn.Name)
		}
		inGroup := map[string]bool{}
		var pairs []asf.Pair
		var selfs []asf.Self
		for _, pr := range cn.SymPairs {
			wl, hl, err := dims(pr[0])
			if err != nil {
				return nil, err
			}
			wr, hr, err := dims(pr[1])
			if err != nil {
				return nil, err
			}
			if wl != wr || hl != hr {
				return nil, fmt.Errorf("hbstar: pair (%s,%s) has unequal dimensions", pr[0], pr[1])
			}
			pairs = append(pairs, asf.Pair{Left: pr[0], Right: pr[1], W: wl, H: hl})
			inGroup[pr[0]], inGroup[pr[1]] = true, true
		}
		for _, s := range cn.SymSelfs {
			w, h, err := dims(s)
			if err != nil {
				return nil, err
			}
			selfs = append(selfs, asf.Self{Name: s, W: w, H: h})
			inGroup[s] = true
		}
		for _, d := range cn.Devices {
			if !inGroup[d] {
				return nil, fmt.Errorf("hbstar: device %q in symmetry node %q is not in any pair", d, cn.Name)
			}
		}
		isl, err := asf.New(pairs, selfs)
		if err != nil {
			return nil, err
		}
		n.island = isl
		f.all = append(f.all, n)
		return n, nil
	}

	for _, d := range cn.Devices {
		w, h, err := dims(d)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item{dev: d, w: w, h: h})
	}
	for _, ch := range cn.Children {
		sub, err := f.build(ch, dims)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item{child: sub})
	}
	if len(n.items) == 0 {
		return nil, fmt.Errorf("hbstar: empty sub-circuit %q", cn.Name)
	}
	// Placeholder dims; real extents come from items at pack time.
	ws := make([]int, len(n.items))
	hs := make([]int, len(n.items))
	for i := range ws {
		ws[i], hs[i] = 1, 1
	}
	n.tree = bstar.New(ws, hs)
	f.all = append(f.all, n)
	return n, nil
}

// packed is a packed sub-circuit: its placement (origin at (0,0)) and
// top skyline.
type packed struct {
	pl      geom.Placement
	width   int
	profile []seg
}

// Pack packs the whole forest and returns the design placement.
func (f *Forest) Pack() (geom.Placement, error) {
	p, err := f.root.pack(f.BBoxOutline)
	if err != nil {
		return nil, err
	}
	return p.pl, nil
}

func (n *Node) pack(bboxOutline bool) (packed, error) {
	if n.island != nil {
		pl, err := n.island.Pack()
		if err != nil {
			return packed{}, err
		}
		pl.Normalize()
		return finishPacked(pl), nil
	}

	// Pack children first.
	sub := make([]packed, len(n.items))
	for i, it := range n.items {
		if it.child != nil {
			p, err := it.child.pack(bboxOutline)
			if err != nil {
				return packed{}, err
			}
			sub[i] = p
		}
	}
	width := func(i int) int {
		it := n.items[i]
		if it.child != nil {
			return sub[i].width
		}
		if n.tree.Rot[i] {
			return it.h
		}
		return it.w
	}
	profile := func(i, atY int) []seg {
		it := n.items[i]
		if it.child != nil {
			if bboxOutline {
				top := 0
				for _, s := range sub[i].profile {
					if s.h > top {
						top = s.h
					}
				}
				return []seg{{0, sub[i].width, atY + top}}
			}
			out := make([]seg, len(sub[i].profile))
			for k, s := range sub[i].profile {
				out[k] = seg{s.x1, s.x2, s.h + atY}
			}
			return out
		}
		h := it.h
		if n.tree.Rot[i] {
			h = it.w
		}
		return []seg{{0, width(i), atY + h}}
	}

	// Pre-order contour packing over the node's tree.
	const inf = int(^uint(0) >> 1)
	contour := []seg{{0, inf, 0}}
	maxOver := func(x1, x2 int) int {
		top := 0
		for _, s := range contour {
			if s.x2 <= x1 || s.x1 >= x2 {
				continue
			}
			if s.h > top {
				top = s.h
			}
		}
		return top
	}
	update := func(x int, prof []seg) {
		var out []seg
		// prof segments are absolute heights over [x+s.x1, x+s.x2).
		lo, hi := x+prof[0].x1, x+prof[len(prof)-1].x2
		inserted := false
		for _, s := range contour {
			if s.x2 <= lo || s.x1 >= hi {
				out = append(out, s)
				continue
			}
			if s.x1 < lo {
				out = append(out, seg{s.x1, lo, s.h})
			}
			if !inserted {
				for _, p := range prof {
					out = append(out, seg{x + p.x1, x + p.x2, p.h})
				}
				inserted = true
			}
			if s.x2 > hi {
				out = append(out, seg{hi, s.x2, s.h})
			}
		}
		if !inserted {
			for _, p := range prof {
				out = append(out, seg{x + p.x1, x + p.x2, p.h})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].x1 < out[j].x1 })
		}
		contour = mergeSegs(out)
	}

	xs := make([]int, len(n.items))
	ys := make([]int, len(n.items))
	type frame struct{ m, x int }
	stack := []frame{{n.tree.Root, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w := width(fr.m)
		y := maxOver(fr.x, fr.x+w)
		xs[fr.m], ys[fr.m] = fr.x, y
		update(fr.x, profile(fr.m, y))
		if r := n.tree.Right[fr.m]; r != -1 {
			stack = append(stack, frame{r, fr.x})
		}
		if l := n.tree.Left[fr.m]; l != -1 {
			stack = append(stack, frame{l, fr.x + w})
		}
	}

	// Assemble the placement.
	pl := geom.Placement{}
	for i, it := range n.items {
		if it.child != nil {
			for name, r := range sub[i].pl {
				pl[name] = r.Translate(xs[i], ys[i])
			}
			continue
		}
		w, h := it.w, it.h
		if n.tree.Rot[i] {
			w, h = h, w
		}
		pl[it.dev] = geom.NewRect(xs[i], ys[i], w, h)
	}
	pl.Normalize()
	return finishPacked(pl), nil
}

// finishPacked computes width and skyline of a normalized placement.
func finishPacked(pl geom.Placement) packed {
	bb := pl.BBox()
	return packed{pl: pl, width: bb.W, profile: skyline(pl)}
}

// skyline computes the top profile of a placement as merged segments
// covering [bbox.X, bbox.X2) — zero-height gaps included so the parent
// contour stays well-formed.
func skyline(pl geom.Placement) []seg {
	bb := pl.BBox()
	// Collect x breakpoints.
	xsSet := map[int]bool{bb.X: true, bb.X2(): true}
	for _, r := range pl {
		xsSet[r.X] = true
		xsSet[r.X2()] = true
	}
	xs := make([]int, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	var out []seg
	for i := 0; i+1 < len(xs); i++ {
		x1, x2 := xs[i], xs[i+1]
		h := 0
		for _, r := range pl {
			if r.X < x2 && x1 < r.X2() && r.Y2() > h {
				h = r.Y2()
			}
		}
		out = append(out, seg{x1 - bb.X, x2 - bb.X, h - bb.Y})
	}
	return mergeSegs(out)
}

// mergeSegs coalesces adjacent segments of equal height.
func mergeSegs(in []seg) []seg {
	var out []seg
	for _, s := range in {
		if s.x1 >= s.x2 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].h == s.h && out[len(out)-1].x2 == s.x1 {
			out[len(out)-1].x2 = s.x2
		} else {
			out = append(out, s)
		}
	}
	return out
}

// TreeCount returns the number of HB*-trees in the forest (the paper:
// number of sub-circuits plus one for the top design).
func (f *Forest) TreeCount() int { return len(f.all) }

// Clone deep-copies the forest.
func (f *Forest) Clone() *Forest {
	nf := &Forest{BBoxOutline: f.BBoxOutline}
	nf.root = nf.cloneNode(f.root)
	return nf
}

func (f *Forest) cloneNode(n *Node) *Node {
	nn := &Node{name: n.name, kind: n.kind}
	if n.island != nil {
		nn.island = n.island.Clone()
	} else {
		nn.tree = n.tree.Clone()
		nn.items = make([]item, len(n.items))
		for i, it := range n.items {
			nn.items[i] = it
			if it.child != nil {
				nn.items[i].child = f.cloneNode(it.child)
			}
		}
	}
	f.all = append(f.all, nn)
	return nn
}
