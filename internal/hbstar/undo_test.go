package hbstar

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/geom"
)

func buildTestForest(t *testing.T) *Forest {
	t.Helper()
	bench, err := circuits.TableIBench("folded_casc")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(bench.Tree, func(name string) (int, int, error) {
		d := bench.Circuit.Device(name)
		return d.FW, d.FH, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func samePlacement(a, b geom.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for k, r := range a {
		if b[k] != r {
			return false
		}
	}
	return true
}

// TestForestPerturbUndo asserts that PerturbUndoable + Undo restores
// the packed placement of the whole forest exactly, across a long
// random walk touching islands and plain trees alike.
func TestForestPerturbUndo(t *testing.T) {
	f := buildTestForest(t)
	rng := rand.New(rand.NewSource(31))
	var u ForestUndo
	for step := 0; step < 400; step++ {
		before, err := f.Pack()
		if err != nil {
			t.Fatalf("step %d: pack failed: %v", step, err)
		}
		f.PerturbUndoable(rng, &u)
		u.Undo()
		after, err := f.Pack()
		if err != nil {
			t.Fatalf("step %d: pack after undo failed: %v", step, err)
		}
		if !samePlacement(before, after) {
			t.Fatalf("step %d: undo did not restore the forest placement", step)
		}
		f.Perturb(rng) // drift
	}
}

// TestSolutionPerturbUndo drives the annealer adapter itself.
func TestSolutionPerturbUndo(t *testing.T) {
	bench, err := circuits.TableIBench("folded_casc")
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{Bench: bench, WireWeight: 0.5, ProximityPenalty: 2}
	s := newSolution(prob, buildTestForest(t))
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 200; step++ {
		costBefore := s.Cost()
		undo := s.Perturb(rng)
		undo()
		if got := s.Cost(); got != costBefore {
			t.Fatalf("step %d: cost %v after undo, want %v", step, got, costBefore)
		}
		// Recompute from state through a fresh model: must agree with
		// the incrementally maintained cost bit for bit.
		if got := s.RefCost(); got != costBefore {
			t.Fatalf("step %d: re-evaluated cost %v, want %v", step, got, costBefore)
		}
		s.Perturb(rng) // drift
	}
}

// TestSolutionSnapshotRestoreRoundTrip asserts the full
// MutableSolution snapshot contract for the hierarchical placer —
// matching internal/place's flat-placer test: Restore brings the
// solution back to the snapshotted cost and the exact packed placement
// after arbitrary drift across the forest's plain trees and ASF
// symmetry islands.
func TestSolutionSnapshotRestoreRoundTrip(t *testing.T) {
	bench, err := circuits.TableIBench("folded_casc")
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{Bench: bench, WireWeight: 0.5, ProximityPenalty: 2}
	s := newSolution(prob, buildTestForest(t))
	pack := func() geom.Placement {
		pl, err := s.Placement()
		if err != nil {
			return nil
		}
		return pl
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		snap := s.Snapshot()
		costAt := s.Cost()
		plAt := pack()
		for i := 0; i < 10; i++ {
			s.Perturb(rng)
		}
		s.Restore(snap)
		if got := s.Cost(); got != costAt {
			t.Fatalf("trial %d: cost %v after restore, want %v", trial, got, costAt)
		}
		if !samePlacement(pack(), plAt) {
			t.Fatalf("trial %d: placement changed after restore", trial)
		}
		// The snapshot must stay restorable after further drift (the
		// annealer re-restores its best-so-far at the end of a run).
		for i := 0; i < 5; i++ {
			s.Perturb(rng)
		}
		s.Restore(snap)
		if got := s.Cost(); got != costAt {
			t.Fatalf("trial %d: second restore cost %v, want %v", trial, got, costAt)
		}
	}
}
