package hbstar

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/thermal"
)

// objective is the hierarchical placer's module universe: the devices
// of the initial forest packing, in sorted-name order, with the
// coordinate slices packings flatten into. Packings are map-shaped
// (geom.Placement), so the adapter flattens them into coordinate
// slices and lets the model's diff find the modules a perturbation
// actually displaced — a hierarchical move repacks everything but
// typically shifts only one subtree. The composite model itself is
// built by newModel and owned by the engine kernel.
type objective struct {
	names      []string
	id         map[string]int
	x, y, w, h []int
}

// newObjective fixes the module universe from one reference packing.
func newObjective(ref geom.Placement) *objective {
	o := &objective{id: map[string]int{}}
	o.names = ref.Names()
	sort.Strings(o.names)
	n := len(o.names)
	for i, name := range o.names {
		o.id[name] = i
	}
	o.x = make([]int, n)
	o.y = make([]int, n)
	o.w = make([]int, n)
	o.h = make([]int, n)
	return o
}

// newModel builds the placer's cost model from one reference packing
// over the universe. The terms mirror the historical hbstar cost —
// bounding-box area, weighted HPWL over the bench nets, and the
// proximity-fragments penalty scaled by the average module area —
// plus the optional fixed-outline and thermal-mismatch terms of the
// composable objective. Nets are indexed by sorted net name so runs
// stay deterministic despite the bench's map-shaped net list.
func (o *objective) newModel(p *Problem, ref geom.Placement) *cost.Model {
	n := len(o.names)

	var nets [][]int
	netNames := make([]string, 0, len(p.Bench.Nets))
	for name := range p.Bench.Nets {
		netNames = append(netNames, name)
	}
	sort.Strings(netNames)
	for _, name := range netNames {
		var net []int
		for _, d := range p.Bench.Nets[name] {
			if m, ok := o.id[d]; ok {
				net = append(net, m)
			}
		}
		if len(net) >= 2 {
			nets = append(nets, net)
		}
	}

	var moduleArea int64
	for _, name := range o.names {
		moduleArea += ref[name].Area()
	}
	avgArea := float64(moduleArea) / float64(max(1, n))

	model := cost.NewModel(n)
	aw := p.AreaWeight
	if aw == 0 {
		aw = 1
	}
	model.Add(aw, cost.NewArea())
	model.Add(p.WireWeight, cost.NewHPWL(nets))
	if groups := o.proximityGroups(p.Bench.Tree); len(groups) > 0 {
		model.Add(p.ProximityPenalty*avgArea, newFragTerm(groups))
	}
	if p.OutlineW > 0 && p.OutlineH > 0 {
		ow := p.OutlineWeight
		if ow == 0 {
			ow = cost.DefaultOutlineWeight(moduleArea)
		}
		model.Add(ow, cost.NewFixedOutline(p.OutlineW, p.OutlineH))
	}
	if p.ThermalWeight > 0 {
		if pairs := o.symPairs(p.Bench.Tree); len(pairs) > 0 {
			var powers []float64
			if p.Power != nil {
				powers = make([]float64, n)
				for i, name := range o.names {
					powers[i] = p.Power[name]
				}
			} else {
				areas := make([]int64, n)
				for i, name := range o.names {
					areas[i] = ref[name].Area()
				}
				powers = cost.AreaNormalizedPowers(areas)
			}
			model.Add(p.ThermalWeight, cost.NewThermal(
				&thermal.Field{Sigma: p.ThermalSigma}, powers, pairs))
		}
	}
	return model
}

// load flattens a packing into the coordinate slices; it reports
// whether every module of the universe is present.
func (o *objective) load(pl geom.Placement) bool {
	if len(pl) != len(o.names) {
		return false
	}
	for i, name := range o.names {
		r, ok := pl[name]
		if !ok {
			return false
		}
		o.x[i], o.y[i], o.w[i], o.h[i] = r.X, r.Y, r.W, r.H
	}
	return true
}

// proximityGroups maps the tree's proximity groups (the shared
// constraint.Node.ProximityGroups walker) into module-id groups.
func (o *objective) proximityGroups(root *constraint.Node) [][]int {
	var groups [][]int
	for _, members := range root.ProximityGroups() {
		var grp []int
		for _, d := range members {
			if m, ok := o.id[d]; ok {
				grp = append(grp, m)
			}
		}
		if len(grp) >= 2 {
			groups = append(groups, grp)
		}
	}
	return groups
}

// symPairs collects device-level symmetric pairs for the thermal term.
func (o *objective) symPairs(root *constraint.Node) [][2]int {
	var pairs [][2]int
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		if n.Kind == constraint.KindSymmetry {
			for _, pr := range n.SymPairs {
				a, oka := o.id[pr[0]]
				b, okb := o.id[pr[1]]
				if oka && okb {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return pairs
}

// fragTerm is the proximity-connectivity penalty as a cost.Term: its
// value is the excess connected-component count over all proximity
// groups. Connectivity is a global property of a group's geometry —
// one module sliding away can split or heal any number of fragments —
// so Update recomputes the count (cheap: groups are small) and Undo
// restores the previous value.
type fragTerm struct {
	groups [][]int
	parent []int // union-find scratch over the largest group
	val    int
	prev   int
}

func newFragTerm(groups [][]int) *fragTerm {
	maxLen := 0
	for _, g := range groups {
		maxLen = max(maxLen, len(g))
	}
	return &fragTerm{groups: groups, parent: make([]int, maxLen)}
}

// Name implements cost.Term.
func (t *fragTerm) Name() string { return "proximity-frag" }

// Eval implements cost.Term.
func (t *fragTerm) Eval(c *cost.Coords) { t.val = t.compute(c) }

// Update implements cost.Term.
func (t *fragTerm) Update(c *cost.Coords, moved []int) {
	t.prev = t.val
	t.val = t.compute(c)
}

// Undo implements cost.Term.
func (t *fragTerm) Undo() { t.val = t.prev }

// Value implements cost.Term.
func (t *fragTerm) Value() float64 { return float64(t.val) }

// compute counts excess fragments over all groups under the current
// coordinates.
func (t *fragTerm) compute(c *cost.Coords) int {
	total := 0
	for _, grp := range t.groups {
		total += t.groupFragments(c, grp)
	}
	return total
}

func (t *fragTerm) groupFragments(c *cost.Coords, grp []int) int {
	n := len(grp)
	if n <= 1 {
		return 0
	}
	parent := t.parent[:n]
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	rect := func(m int) geom.Rect {
		return geom.NewRect(c.X[m], c.Y[m], c.W[m], c.H[m])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if constraint.Touching(rect(grp[i]), rect(grp[j])) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	comps := 0
	for i := range parent {
		if find(i) == i {
			comps++
		}
	}
	return comps - 1
}
