package hbstar

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/geom"
)

// Perturb selects one of the forest's HB*-trees uniformly and applies
// one perturbation to it, exactly the paper's scheme ("one of the
// HB*-trees should be selected first, and then any perturbation
// operation for the B*-tree can be applied").
func (f *Forest) Perturb(rng *rand.Rand) {
	if len(f.all) == 0 {
		return
	}
	n := f.all[rng.Intn(len(f.all))]
	if n.island != nil {
		n.island.Perturb(rng)
		return
	}
	if n.tree.N() > 1 {
		n.tree.Perturb(rng)
	} else if n.tree.N() == 1 && len(n.items) == 1 && n.items[0].dev != "" {
		n.tree.Rotate(0)
	}
}

// Problem is a hierarchical placement instance.
type Problem struct {
	Bench *circuits.Bench
	// WireWeight scales HPWL against area.
	WireWeight float64
	// ProximityPenalty is added per disconnected fragment of a
	// proximity sub-circuit (scaled by average module area).
	ProximityPenalty float64
}

// Result of a hierarchical placement run.
type Result struct {
	Placement geom.Placement
	Cost      float64
	Stats     anneal.Stats
	// Violations lists remaining constraint violations (typically
	// proximity connectivity when the penalty could not remove them;
	// symmetry is satisfied by construction).
	Violations []error
}

// solution adapts a Forest to the annealer.
type solution struct {
	prob   *Problem
	forest *Forest
	cost   float64
}

func (s *solution) evaluate() {
	pl, err := s.forest.Pack()
	if err != nil {
		s.cost = math.Inf(1)
		return
	}
	cost := float64(pl.Area())
	if s.prob.WireWeight > 0 {
		for _, devs := range s.prob.Bench.Nets {
			cost += s.prob.WireWeight * float64(geom.HPWL(pl, devs))
		}
	}
	if s.prob.ProximityPenalty > 0 {
		avg := float64(pl.ModuleArea()) / float64(len(pl))
		cost += s.prob.ProximityPenalty * avg * float64(proximityFragments(s.prob.Bench.Tree, pl))
	}
	s.cost = cost
}

// Cost implements anneal.Solution.
func (s *solution) Cost() float64 { return s.cost }

// Neighbor implements anneal.Solution.
func (s *solution) Neighbor(rng *rand.Rand) anneal.Solution {
	next := &solution{prob: s.prob, forest: s.forest.Clone()}
	next.forest.Perturb(rng)
	next.evaluate()
	return next
}

// proximityFragments counts excess connected components over all
// proximity sub-circuits (0 when every proximity group is connected).
func proximityFragments(root *constraint.Node, pl geom.Placement) int {
	total := 0
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		if n.Kind == constraint.KindProximity {
			members := append([]string{}, n.Devices...)
			for _, c := range n.Children {
				members = append(members, c.Leaves()...)
			}
			total += fragments(members, pl)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return total
}

// fragments returns the number of connected components minus one.
func fragments(members []string, pl geom.Placement) int {
	n := len(members)
	if n <= 1 {
		return 0
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if constraint.Touching(pl[members[i]], pl[members[j]]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	comps := 0
	for i := range parent {
		if find(i) == i {
			comps++
		}
	}
	return comps - 1
}

// Place runs the HB*-tree hierarchical placer on a benchmark.
func Place(p *Problem, opt anneal.Options) (*Result, error) {
	if p.Bench == nil || p.Bench.Tree == nil {
		return nil, fmt.Errorf("hbstar: benchmark with hierarchy tree required")
	}
	if p.ProximityPenalty == 0 {
		p.ProximityPenalty = 2
	}
	dims := func(name string) (int, int, error) {
		d := p.Bench.Circuit.Device(name)
		if d == nil {
			return 0, 0, fmt.Errorf("hbstar: unknown device %q", name)
		}
		if d.FW <= 0 || d.FH <= 0 {
			return 0, 0, fmt.Errorf("hbstar: device %q has no footprint", name)
		}
		return d.FW, d.FH, nil
	}
	forest, err := Build(p.Bench.Tree, dims)
	if err != nil {
		return nil, err
	}
	init := &solution{prob: p, forest: forest}
	init.evaluate()
	best, stats := anneal.Anneal(init, opt)
	sol := best.(*solution)
	pl, err := sol.forest.Pack()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	res := &Result{Placement: pl, Cost: sol.cost, Stats: stats}
	res.Violations = treeViolations(p.Bench.Tree, pl)
	return res, nil
}

// treeViolations collects all constraint violations of the hierarchy
// tree against a placement.
func treeViolations(root *constraint.Node, pl geom.Placement) []error {
	var out []error
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		clone := *n
		clone.Children = nil // check this node's own constraint only
		switch n.Kind {
		case constraint.KindSymmetry, constraint.KindCommonCentroid:
			if err := clone.Check(pl); err != nil {
				out = append(out, err)
			}
		case constraint.KindProximity:
			members := append([]string{}, n.Devices...)
			for _, c := range n.Children {
				members = append(members, c.Leaves()...)
			}
			pr := constraint.Proximity{Name: n.Name, Members: members}
			if err := pr.Check(pl); err != nil {
				out = append(out, err)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
