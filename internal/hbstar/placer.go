package hbstar

import (
	"fmt"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/geom"
)

// Perturb selects one of the forest's HB*-trees uniformly and applies
// one perturbation to it, exactly the paper's scheme ("one of the
// HB*-trees should be selected first, and then any perturbation
// operation for the B*-tree can be applied").
func (f *Forest) Perturb(rng *rand.Rand) {
	f.PerturbUndoable(rng, nil)
}

// ForestUndo records which tree of the forest one perturbation touched
// and that tree's prior state, so the move can be reverted exactly. It
// is reusable: the state buffers grow to the largest tree ever saved
// and then stop allocating.
type ForestUndo struct {
	node  *Node
	state bstar.TreeState
}

// Undo reverts the recorded perturbation.
func (u *ForestUndo) Undo() {
	if u == nil || u.node == nil {
		return
	}
	if u.node.island != nil {
		u.node.island.LoadState(&u.state)
		return
	}
	u.node.tree.LoadState(&u.state)
}

// PerturbUndoable is Perturb with exact-undo recording: when u is
// non-nil, the touched tree's prior state is saved into it first.
func (f *Forest) PerturbUndoable(rng *rand.Rand, u *ForestUndo) {
	if u != nil {
		u.node = nil
	}
	if len(f.all) == 0 {
		return
	}
	n := f.all[rng.Intn(len(f.all))]
	if u != nil {
		u.node = n
		if n.island != nil {
			n.island.SaveState(&u.state)
		} else {
			n.tree.SaveState(&u.state)
		}
	}
	if n.island != nil {
		n.island.Perturb(rng)
		return
	}
	if n.tree.N() > 1 {
		n.tree.Perturb(rng)
	} else if n.tree.N() == 1 && len(n.items) == 1 && n.items[0].dev != "" {
		n.tree.Rotate(0)
	}
}

// DefaultWireWeight is the hierarchical placer's historical HPWL
// weight — the one default shared by core.PlaceBenchObjective and the
// CLI's wire mode, so every path that wants "classic hbstar" agrees.
const DefaultWireWeight = 0.5

// Problem is a hierarchical placement instance. Its objective is the
// composite cost.Model of internal/cost: area plus weighted HPWL, the
// proximity-fragments penalty, and optional fixed-outline and thermal
// terms, all evaluated incrementally over the modules each
// perturbation actually displaces.
type Problem struct {
	Bench *circuits.Bench
	// AreaWeight scales the bounding-box area term (0 = default 1).
	AreaWeight float64
	// WireWeight scales HPWL against area.
	WireWeight float64
	// ProximityPenalty is added per disconnected fragment of a
	// proximity sub-circuit (scaled by average module area).
	ProximityPenalty float64
	// OutlineW/OutlineH, when both positive, add a fixed-outline
	// penalty term (quadratic in the bounding box's excess).
	OutlineW, OutlineH int
	// OutlineWeight scales the fixed-outline penalty (0 = heuristic
	// default of max(1, module area / 100)).
	OutlineWeight float64
	// ThermalWeight scales the thermal-mismatch term over the
	// hierarchy's device-level symmetric pairs (0 = off).
	ThermalWeight float64
	// ThermalSigma is the thermal decay length (0 = thermal default).
	ThermalSigma float64
	// Power gives per-device dissipated power for the thermal term
	// (device name → power). Nil means the area-normalized default.
	Power map[string]float64
}

// Result of a hierarchical placement run.
type Result struct {
	Placement geom.Placement
	Cost      float64
	Stats     anneal.Stats
	// Violations lists remaining constraint violations (typically
	// proximity connectivity when the penalty could not remove them;
	// symmetry is satisfied by construction).
	Violations []error
	// Breakdown decomposes Cost per objective term (area, hpwl,
	// proximity-frag, outline, thermal), read from the winning
	// solution's model so the weighted values sum to Cost exactly.
	Breakdown []cost.TermValue
}

// forestRep adapts a Forest to the engine kernel. A perturbation
// touches exactly one of the forest's trees, so undo restores just
// that tree from a reusable buffer instead of cloning the whole forest
// per proposed move; the kernel's composite objective reevaluates only
// the modules the repack displaced (found by diffing the flattened
// packing against the model's coordinate cache). The module universe
// (objective) and the model are built lazily from the first feasible
// packing, so construction — including Neighbor clones — never pays a
// redundant full pack.
type forestRep struct {
	prob   *Problem
	forest *Forest
	obj    *objective
	ref    geom.Placement // last packing; the lazy model's reference
	u      ForestUndo
}

func newForestRep(p *Problem, f *Forest) *forestRep {
	return &forestRep{prob: p, forest: f}
}

// Perturb implements engine.Representation.
func (r *forestRep) Perturb(rng *rand.Rand) bool {
	r.forest.PerturbUndoable(rng, &r.u)
	return true
}

// Undo implements engine.Representation.
func (r *forestRep) Undo() { r.u.Undo() }

// Pack implements engine.Representation: the forest packs to a named
// placement, which is flattened onto the fixed module universe (built
// from the first feasible packing).
func (r *forestRep) Pack(c *engine.Coords) bool {
	pl, err := r.forest.Pack()
	if err != nil {
		return false
	}
	if r.obj == nil {
		r.obj = newObjective(pl)
	}
	if !r.obj.load(pl) {
		return false
	}
	r.ref = pl
	c.X, c.Y, c.W, c.H, c.Rot = r.obj.x, r.obj.y, r.obj.w, r.obj.h, nil
	return true
}

// newModel builds the composite model from the representation's last
// packing; the kernel calls it lazily right after the first feasible
// Pack.
func (r *forestRep) newModel() *cost.Model {
	return r.obj.newModel(r.prob, r.ref)
}

// Snapshot implements engine.Representation.
func (r *forestRep) Snapshot() any { return r.forest.Clone() }

// Restore implements engine.Representation. The snapshot is cloned so
// the engine may keep and re-restore it.
func (r *forestRep) Restore(snapshot any) {
	r.forest = snapshot.(*Forest).Clone()
	r.u.node = nil // pending undo would target the replaced forest
}

// Clone implements engine.Representation (universe and model are
// rebuilt lazily from the clone's own first packing).
func (r *forestRep) Clone() engine.Representation {
	return newForestRep(r.prob, r.forest.Clone())
}

// Placement implements engine.Representation.
func (r *forestRep) Placement() (geom.Placement, error) { return r.forest.Pack() }

// newSolution wraps a forest in the engine kernel over the
// hierarchical composite objective.
func newSolution(p *Problem, f *Forest) *engine.Solution {
	return engine.New(newForestRep(p, f), engine.Config{
		NewModel: func(rep engine.Representation) *cost.Model {
			return rep.(*forestRep).newModel()
		},
	})
}

// Place runs the HB*-tree hierarchical placer on a benchmark.
func Place(p *Problem, opt anneal.Options) (*Result, error) {
	if p.Bench == nil || p.Bench.Tree == nil {
		return nil, fmt.Errorf("hbstar: benchmark with hierarchy tree required")
	}
	if p.ProximityPenalty == 0 {
		p.ProximityPenalty = 2
	}
	dims := func(name string) (int, int, error) {
		d := p.Bench.Circuit.Device(name)
		if d == nil {
			return 0, 0, fmt.Errorf("hbstar: unknown device %q", name)
		}
		if d.FW <= 0 || d.FH <= 0 {
			return 0, 0, fmt.Errorf("hbstar: device %q has no footprint", name)
		}
		return d.FW, d.FH, nil
	}
	forest, err := Build(p.Bench.Tree, dims)
	if err != nil {
		return nil, err
	}
	newSol := func(seed int64) anneal.Solution {
		s := newSolution(p, forest.Clone())
		_ = seed // the canonical initial forest ignores the seed
		return s
	}
	best, stats := engine.Run(newSol, opt)
	sol := best.(*engine.Solution)
	pl, err := sol.Placement()
	if err != nil {
		return nil, err
	}
	pl.Normalize()
	res := &Result{Placement: pl, Cost: sol.Cost(), Stats: stats, Breakdown: sol.Breakdown()}
	res.Violations = treeViolations(p.Bench.Tree, pl)
	return res, nil
}

// treeViolations collects all constraint violations of the hierarchy
// tree against a placement.
func treeViolations(root *constraint.Node, pl geom.Placement) []error {
	var out []error
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		clone := *n
		clone.Children = nil // check this node's own constraint only
		switch n.Kind {
		case constraint.KindSymmetry, constraint.KindCommonCentroid:
			if err := clone.Check(pl); err != nil {
				out = append(out, err)
			}
		case constraint.KindProximity:
			members := append([]string{}, n.Devices...)
			for _, c := range n.Children {
				members = append(members, c.Leaves()...)
			}
			pr := constraint.Proximity{Name: n.Name, Members: members}
			if err := pr.Check(pl); err != nil {
				out = append(out, err)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
