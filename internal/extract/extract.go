// Package extract computes layout-induced parasitics from a generated
// template instance — the "extraction within sizing" step of Section V
// the paper shows to be cheap enough to keep inside the optimization
// loop (≈17 % of total sizing time in the original experiments).
//
// Wire capacitance and resistance are per-length estimates on the
// routed net lengths the template reports; device junction and gate
// capacitances are computed by the device model itself (package mos)
// and enter the evaluation through package perf.
package extract

import (
	"repro/internal/perf"
	"repro/internal/template"
)

// Per-micrometer wire parasitics of a generic metal-2 class layer.
const (
	CwPerUM = 0.20e-15 // F/µm
	RwPerUM = 0.08     // Ω/µm
)

// WireCap returns the capacitance of a wire of the given length.
func WireCap(lengthUM float64) float64 { return CwPerUM * lengthUM }

// WireRes returns the resistance of a wire of the given length.
func WireRes(lengthUM float64) float64 { return RwPerUM * lengthUM }

// NetCaps returns the wire capacitance of every routed net.
func NetCaps(inst *template.Instance) map[string]float64 {
	out := make(map[string]float64, len(inst.NetLengthUM))
	for net, l := range inst.NetLengthUM {
		out[net] = WireCap(l)
	}
	return out
}

// FoldedCascode maps the extracted wire capacitances of a folded-
// cascode template instance onto the evaluator's critical nodes: the
// average output net feeds COut, the average folding net feeds CFold.
func FoldedCascode(inst *template.Instance) perf.Parasitics {
	caps := NetCaps(inst)
	return perf.Parasitics{
		COut:  (caps["out_p"] + caps["out_n"]) / 2,
		CFold: (caps["fold_p"] + caps["fold_n"]) / 2,
	}
}

// typicalNetLengthUM is the fixed per-net length the estimator assumes
// instead of reading the layout.
const typicalNetLengthUM = 40

// Estimate returns layout-independent "typical length" parasitics —
// the estimation-instead-of-extraction shortcut the paper's last
// conclusion warns about: it saves almost no CPU time here while its
// error grows with how far the actual layout strays from typical
// (sprawling unfolded layouts have much longer nets than 40 µm). Use
// EstimationError to quantify the gap against a real extraction.
func Estimate() perf.Parasitics {
	return perf.Parasitics{
		COut:  WireCap(typicalNetLengthUM),
		CFold: WireCap(typicalNetLengthUM),
	}
}

// EstimationError returns the relative error of the fixed estimate
// against the actual extraction of an instance, per node, as
// |est − ext| / ext.
func EstimationError(inst *template.Instance) (errOut, errFold float64) {
	est := Estimate()
	ext := FoldedCascode(inst)
	rel := func(e, x float64) float64 {
		if x == 0 {
			return 0
		}
		d := e - x
		if d < 0 {
			d = -d
		}
		return d / x
	}
	return rel(est.COut, ext.COut), rel(est.CFold, ext.CFold)
}
