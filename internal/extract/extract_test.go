package extract

import (
	"testing"

	"repro/internal/mos"
	"repro/internal/perf"
	"repro/internal/template"
)

func instance(t *testing.T, folds int) *template.Instance {
	t.Helper()
	n, p := mos.NTech(), mos.PTech()
	d := perf.FoldedCascode{
		In:    mos.Device{Tech: n, W: 120, L: 0.7, Folds: folds},
		Tail:  mos.Device{Tech: n, W: 60, L: 1.4, Folds: folds},
		Src:   mos.Device{Tech: p, W: 160, L: 1.4, Folds: folds},
		CasP:  mos.Device{Tech: p, W: 120, L: 0.7, Folds: folds},
		CasN:  mos.Device{Tech: n, W: 60, L: 0.7, Folds: folds},
		Mir:   mos.Device{Tech: n, W: 80, L: 1.4, Folds: folds},
		ITail: 200e-6, VDD: 3.3, CL: 2e-12,
	}
	tmpl, foot := template.ForFoldedCascode(d)
	inst, err := tmpl.Generate(foot)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestWireParasitics(t *testing.T) {
	if WireCap(100) != 100*CwPerUM {
		t.Fatal("WireCap wrong")
	}
	if WireRes(100) != 100*RwPerUM {
		t.Fatal("WireRes wrong")
	}
}

func TestNetCaps(t *testing.T) {
	inst := instance(t, 4)
	caps := NetCaps(inst)
	if len(caps) == 0 {
		t.Fatal("no net caps extracted")
	}
	for net, c := range caps {
		if c <= 0 {
			t.Fatalf("net %s has non-positive cap", net)
		}
		if c != WireCap(inst.NetLengthUM[net]) {
			t.Fatalf("net %s cap inconsistent with length", net)
		}
	}
}

func TestFoldedCascodeParasitics(t *testing.T) {
	inst := instance(t, 4)
	par := FoldedCascode(inst)
	if par.COut <= 0 || par.CFold <= 0 {
		t.Fatalf("parasitics must be positive: %+v", par)
	}
	if par.IgnoreJunctions {
		t.Fatal("extracted parasitics must include junctions")
	}
	// Plausible magnitude: tens of fF for a ~100 µm layout.
	if par.COut > 1e-12 || par.CFold > 1e-12 {
		t.Fatalf("parasitics implausibly large: %+v", par)
	}
}

// The compact (folded) layout must have smaller wire parasitics than
// the sprawling unfolded one — the geometric-electrical coupling the
// layout-aware flow exploits.
func TestUnfoldedLayoutHasLargerParasitics(t *testing.T) {
	folded := FoldedCascode(instance(t, 8))
	unfolded := FoldedCascode(instance(t, 1))
	if unfolded.CFold <= folded.CFold {
		t.Fatalf("unfolded CFold %g should exceed folded %g", unfolded.CFold, folded.CFold)
	}
}

// The paper's final conclusion: estimation instead of extraction
// "incurs accuracy errors while attaining only a very small CPU time
// improvement". The fixed estimate drifts far from truth exactly when
// it matters — on sprawling unfolded layouts with long nets.
func TestEstimationErrorGrowsWithSprawl(t *testing.T) {
	_, foldErr := EstimationError(instance(t, 8))
	_, foldErrUnfolded := EstimationError(instance(t, 1))
	if foldErrUnfolded <= foldErr {
		t.Fatalf("unfolded estimation error %.2f should exceed folded %.2f",
			foldErrUnfolded, foldErr)
	}
	if foldErrUnfolded < 0.5 {
		t.Fatalf("unfolded estimation error %.2f suspiciously small", foldErrUnfolded)
	}
}

func TestEstimateIsLayoutIndependent(t *testing.T) {
	if Estimate() != Estimate() {
		t.Fatal("estimate must be constant")
	}
	if Estimate().COut <= 0 {
		t.Fatal("estimate must be positive")
	}
}
