package seqpair

import (
	"fmt"
	"math/rand"
	"testing"
)

// randDims returns random module dimensions in [1, 40].
func randDims(n int, rng *rand.Rand) (w, h []int) {
	w = make([]int, n)
	h = make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(40)
		h[i] = 1 + rng.Intn(40)
	}
	return w, h
}

// checkIncremental packs sp both ways and fails on any coordinate
// mismatch — tolerance zero, the incremental-vs-full contract.
func checkIncremental(t *testing.T, sp *SP, ip *IncPack, ws *PackWorkspace, w, h []int, tag string) {
	t.Helper()
	ix, iy := sp.PackIncrementalInto(ip, w, h)
	fx, fy := sp.PackInto(ws, w, h)
	for m := 0; m < sp.N(); m++ {
		if ix[m] != fx[m] || iy[m] != fy[m] {
			t.Fatalf("%s: module %d incremental (%d,%d) != full (%d,%d)", tag, m, ix[m], iy[m], fx[m], fy[m])
		}
	}
}

// TestIncrementalPackMatchesFullRandomStorm storms one evolving SP
// with every disturbance the placer adapters generate — alpha swaps,
// beta swaps, both-sequence swaps, rotations, save/undo cycles,
// wholesale invalidation — packing incrementally after each batch and
// demanding bit-identity with the from-scratch packer.
func TestIncrementalPackMatchesFullRandomStorm(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 25, 120, 400} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			sp := New(n)
			sp.Shuffle(rng)
			w, h := randDims(n, rng)
			ip := &IncPack{}
			ws := &PackWorkspace{}
			var saved State
			savedValid := false
			undoLo, undoHi := 1, 0 // alpha window covering every move since the save
			touch := func(lo, hi int) {
				if hi < lo {
					lo, hi = hi, lo
				}
				ip.Disturb(lo, hi)
				if !savedValid {
					return
				}
				if undoHi < undoLo {
					undoLo, undoHi = lo, hi
					return
				}
				undoLo, undoHi = min(undoLo, lo), max(undoHi, hi)
			}
			checkIncremental(t, sp, ip, ws, w, h, "initial")
			iters := 300
			if n >= 120 {
				iters = 120
			}
			for it := 0; it < iters; it++ {
				// A batch of 1–3 moves accumulates dirty windows before
				// the next pack, like rejected-move runs in the annealer.
				batch := 1 + rng.Intn(3)
				for b := 0; b < batch; b++ {
					switch op := rng.Intn(6); {
					case op == 0 && n >= 2: // alpha swap
						i, j := rng.Intn(n), rng.Intn(n)
						sp.SwapAlpha(i, j)
						touch(i, j)
					case op == 1 && n >= 2: // beta swap
						i, j := rng.Intn(n), rng.Intn(n)
						a, b := sp.Beta[i], sp.Beta[j]
						sp.SwapBeta(i, j)
						touch(sp.PosAlpha(a), sp.PosAlpha(b))
					case op == 2 && n >= 2: // both sequences
						a, b := rng.Intn(n), rng.Intn(n)
						touch(sp.PosAlpha(a), sp.PosAlpha(b))
						sp.SwapModulesAlpha(a, b)
						sp.SwapModulesBeta(a, b)
						touch(sp.PosAlpha(a), sp.PosAlpha(b))
					case op == 3: // rotation: dimension change only
						m := rng.Intn(n)
						w[m], h[m] = h[m], w[m]
						touch(sp.PosAlpha(m), sp.PosAlpha(m))
					case op == 4 && n >= 2: // save → move(s) → pack → undo
						sp.SaveState(&saved)
						savedValid = true
						undoLo, undoHi = 1, 0
						i, j := rng.Intn(n), rng.Intn(n)
						sp.SwapAlpha(i, j)
						touch(i, j)
					case op == 5:
						ip.Invalidate()
					}
				}
				checkIncremental(t, sp, ip, ws, w, h, fmt.Sprintf("iter %d", it))
				if savedValid {
					// Undo after a pack: restore and re-disturb the window
					// covering every move made since the save, exactly the
					// placer adapters' pending-window protocol.
					sp.LoadState(&saved)
					if undoHi >= undoLo {
						ip.Disturb(undoLo, undoHi)
					}
					savedValid = false
					checkIncremental(t, sp, ip, ws, w, h, fmt.Sprintf("iter %d undo", it))
				}
			}
		})
	}
}

// TestIncrementalPackMatchesNaive cross-checks the whole chain against
// the O(n²) longest-path reference on a mid-size storm.
func TestIncrementalPackMatchesNaive(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(7))
	sp := New(n)
	sp.Shuffle(rng)
	w, h := randDims(n, rng)
	ip := &IncPack{}
	for it := 0; it < 60; it++ {
		i, j := rng.Intn(n), rng.Intn(n)
		sp.SwapAlpha(i, j)
		ip.Disturb(i, j)
		if it%3 == 0 {
			a, b := sp.Beta[rng.Intn(n)], sp.Beta[rng.Intn(n)]
			ip.Disturb(sp.PosAlpha(a), sp.PosAlpha(b))
			sp.SwapModulesBeta(a, b)
		}
		ix, iy := sp.PackIncrementalInto(ip, w, h)
		nx, ny := sp.PackNaive(w, h)
		for m := 0; m < n; m++ {
			if ix[m] != nx[m] || iy[m] != ny[m] {
				t.Fatalf("iter %d module %d: incremental (%d,%d) != naive (%d,%d)", it, m, ix[m], iy[m], nx[m], ny[m])
			}
		}
	}
}

// TestIncrementalPackCleanCacheReturnsSame pins that a pack with no
// pending disturbance returns the cached coordinates without
// rescanning (same backing arrays, same values).
func TestIncrementalPackCleanCacheReturnsSame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50
	sp := New(n)
	sp.Shuffle(rng)
	w, h := randDims(n, rng)
	ip := &IncPack{}
	x1, y1 := sp.PackIncrementalInto(ip, w, h)
	c0, c1 := x1[0], y1[0]
	x2, y2 := sp.PackIncrementalInto(ip, w, h)
	if &x2[0] != &x1[0] || &y2[0] != &y1[0] {
		t.Fatal("clean-cache pack rebuilt the coordinate buffers")
	}
	if x2[0] != c0 || y2[0] != c1 {
		t.Fatal("clean-cache pack changed coordinates")
	}
}

// localMove applies one window-limited sequence move (the large-n
// move distribution of the seq-pair placer) and returns its dirty
// window.
func localMove(sp *SP, rng *rand.Rand, window int) (lo, hi int) {
	return sp.PerturbLocal(rng, window)
}

// TestIncrementalPackLocalMoves storms with the range-limited move
// set used at large n.
func TestIncrementalPackLocalMoves(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(11))
	sp := New(n)
	sp.Shuffle(rng)
	w, h := randDims(n, rng)
	ip := &IncPack{}
	ws := &PackWorkspace{}
	for it := 0; it < 200; it++ {
		lo, hi := localMove(sp, rng, 16)
		ip.Disturb(lo, hi)
		checkIncremental(t, sp, ip, ws, w, h, fmt.Sprintf("local iter %d", it))
	}
}

// benchSP builds a shuffled n-module instance for the packing
// benchmarks.
func benchSP(n int, seed int64) (*SP, []int, []int, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	sp := New(n)
	sp.Shuffle(rng)
	w, h := randDims(n, rng)
	return sp, w, h, rng
}

// BenchmarkSeqPairIncrementalPack measures per-move pack cost at
// large n under the placer's range-limited move distribution:
// incremental (windowed re-scan) vs full (complete FAST-SP scan).
// The ratio is the PR 7 acceptance number recorded in BENCH_PR7.json.
func BenchmarkSeqPairIncrementalPack(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		window := n / 64
		if window < 16 {
			window = 16
		}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			sp, w, h, rng := benchSP(n, 42)
			ip := &IncPack{}
			sp.PackIncrementalInto(ip, w, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo, hi := sp.PerturbLocal(rng, window)
				ip.Disturb(lo, hi)
				sp.PackIncrementalInto(ip, w, h)
			}
		})
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			sp, w, h, rng := benchSP(n, 42)
			ws := &PackWorkspace{}
			sp.PackInto(ws, w, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.PerturbLocal(rng, window)
				sp.PackInto(ws, w, h)
			}
		})
	}
}
