// Package seqpair implements the sequence-pair representation for
// non-slicing placements (Murata et al. [22]) together with the
// symmetric-feasibility machinery of Section II of the paper
// (Krishnamoorthy/Maruvada/Balasa [13]):
//
//   - the symmetric-feasible (S-F) predicate, property (1) of the paper;
//   - an S-F repair operator and an S-F-preserving move set, so that a
//     simulated-annealing search explores only S-F codes;
//   - packing of a sequence-pair into a placement, both by the naive
//     O(n²) longest-path method and by an O(n log log n) weighted-LCS
//     method built on a van Emde Boas priority queue ([26], FAST-SP);
//   - construction of a geometrically symmetric placement from an S-F
//     code (Fig. 1 of the paper);
//   - exact counting and enumeration of S-F sequence-pairs (the Lemma).
//
// Modules are identified by dense integer ids 0..n-1; the caller keeps
// the id→name mapping (see NewNamed for a convenience wrapper).
package seqpair

import (
	"fmt"
	"math/rand"
)

// SP is a sequence-pair: two permutations of the module ids 0..n-1.
// Alpha and Beta list module ids in sequence order. The inverse
// permutations (module id → position) are maintained incrementally so
// the S-F predicate and the packing relations are O(1) per query.
type SP struct {
	Alpha, Beta []int // sequence order -> module id
	posA, posB  []int // module id -> position

	// Cached packing workspaces, created lazily by Pack and
	// PackSymmetric and reused across evaluations so that the
	// annealing inner loop stops allocating. Never copied by Clone;
	// they make packing methods unsafe for concurrent use on one SP.
	pw  *PackWorkspace
	sym *symWorkspace
}

// New returns the identity sequence-pair over n modules (both
// sequences 0,1,...,n-1). New panics if n < 0.
func New(n int) *SP {
	if n < 0 {
		panic("seqpair: negative module count")
	}
	sp := &SP{
		Alpha: make([]int, n),
		Beta:  make([]int, n),
		posA:  make([]int, n),
		posB:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		sp.Alpha[i], sp.Beta[i] = i, i
		sp.posA[i], sp.posB[i] = i, i
	}
	return sp
}

// FromSequences builds an SP from explicit sequences. It returns an
// error unless both are permutations of 0..n-1 of equal length.
func FromSequences(alpha, beta []int) (*SP, error) {
	n := len(alpha)
	if len(beta) != n {
		return nil, fmt.Errorf("seqpair: sequence lengths differ (%d vs %d)", n, len(beta))
	}
	sp := &SP{
		Alpha: append([]int(nil), alpha...),
		Beta:  append([]int(nil), beta...),
		posA:  make([]int, n),
		posB:  make([]int, n),
	}
	if err := sp.reindex(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *SP) reindex() error {
	n := len(sp.Alpha)
	seenA := make([]bool, n)
	seenB := make([]bool, n)
	for i := 0; i < n; i++ {
		a, b := sp.Alpha[i], sp.Beta[i]
		if a < 0 || a >= n || seenA[a] {
			return fmt.Errorf("seqpair: alpha is not a permutation")
		}
		if b < 0 || b >= n || seenB[b] {
			return fmt.Errorf("seqpair: beta is not a permutation")
		}
		seenA[a], seenB[b] = true, true
		sp.posA[a], sp.posB[b] = i, i
	}
	return nil
}

// N returns the number of modules.
func (sp *SP) N() int { return len(sp.Alpha) }

// PosAlpha returns the position of module m in the alpha sequence
// (α⁻¹ in the paper's notation).
func (sp *SP) PosAlpha(m int) int { return sp.posA[m] }

// PosBeta returns the position of module m in the beta sequence (β⁻¹).
func (sp *SP) PosBeta(m int) int { return sp.posB[m] }

// Clone returns a deep copy.
func (sp *SP) Clone() *SP {
	return &SP{
		Alpha: append([]int(nil), sp.Alpha...),
		Beta:  append([]int(nil), sp.Beta...),
		posA:  append([]int(nil), sp.posA...),
		posB:  append([]int(nil), sp.posB...),
	}
}

// State is a reusable snapshot of a sequence-pair's search state (both
// sequences and their inverses). It backs the exact-undo protocol of
// the in-place annealing engine: save before a perturbation, load to
// revert it. The zero value is ready to use and stops allocating once
// its buffers match the module count.
type State struct {
	alpha, beta, posA, posB []int
}

// SaveState copies sp's sequences into s.
func (sp *SP) SaveState(s *State) {
	s.alpha = append(s.alpha[:0], sp.Alpha...)
	s.beta = append(s.beta[:0], sp.Beta...)
	s.posA = append(s.posA[:0], sp.posA...)
	s.posB = append(s.posB[:0], sp.posB...)
}

// LoadState restores sequences previously captured with SaveState. The
// SP must have the same module count as when the state was saved.
func (sp *SP) LoadState(s *State) {
	copy(sp.Alpha, s.alpha)
	copy(sp.Beta, s.beta)
	copy(sp.posA, s.posA)
	copy(sp.posB, s.posB)
}

// LeftOf reports whether module a is to the left of module b under the
// standard sequence-pair semantics: a precedes b in both sequences.
func (sp *SP) LeftOf(a, b int) bool {
	return sp.posA[a] < sp.posA[b] && sp.posB[a] < sp.posB[b]
}

// Below reports whether module a is below module b: a succeeds b in
// alpha but precedes it in beta.
func (sp *SP) Below(a, b int) bool {
	return sp.posA[a] > sp.posA[b] && sp.posB[a] < sp.posB[b]
}

// Shuffle randomizes both sequences using rng.
func (sp *SP) Shuffle(rng *rand.Rand) {
	n := sp.N()
	rng.Shuffle(n, func(i, j int) { sp.Alpha[i], sp.Alpha[j] = sp.Alpha[j], sp.Alpha[i] })
	rng.Shuffle(n, func(i, j int) { sp.Beta[i], sp.Beta[j] = sp.Beta[j], sp.Beta[i] })
	for i := 0; i < n; i++ {
		sp.posA[sp.Alpha[i]] = i
		sp.posB[sp.Beta[i]] = i
	}
}

// SwapAlpha exchanges the modules at alpha positions i and j.
func (sp *SP) SwapAlpha(i, j int) {
	sp.Alpha[i], sp.Alpha[j] = sp.Alpha[j], sp.Alpha[i]
	sp.posA[sp.Alpha[i]] = i
	sp.posA[sp.Alpha[j]] = j
}

// SwapBeta exchanges the modules at beta positions i and j.
func (sp *SP) SwapBeta(i, j int) {
	sp.Beta[i], sp.Beta[j] = sp.Beta[j], sp.Beta[i]
	sp.posB[sp.Beta[i]] = i
	sp.posB[sp.Beta[j]] = j
}

// SwapModulesAlpha exchanges two modules' positions in alpha.
func (sp *SP) SwapModulesAlpha(a, b int) { sp.SwapAlpha(sp.posA[a], sp.posA[b]) }

// SwapModulesBeta exchanges two modules' positions in beta.
func (sp *SP) SwapModulesBeta(a, b int) { sp.SwapBeta(sp.posB[a], sp.posB[b]) }

// Equal reports whether two sequence-pairs are identical.
func (sp *SP) Equal(o *SP) bool {
	if sp.N() != o.N() {
		return false
	}
	for i := range sp.Alpha {
		if sp.Alpha[i] != o.Alpha[i] || sp.Beta[i] != o.Beta[i] {
			return false
		}
	}
	return true
}

// String renders the pair as (α; β) using module ids.
func (sp *SP) String() string {
	return fmt.Sprintf("(%v; %v)", sp.Alpha, sp.Beta)
}
