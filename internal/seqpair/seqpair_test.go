package seqpair

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
)

// fig1SP returns the paper's Fig. 1 sequence-pair
// (EBAFCDG, EBCDFAG) with letters mapped A=0 .. G=6, and its symmetry
// group γ = {(C,D), (B,G), A, F}.
func fig1SP(t *testing.T) (*SP, Group) {
	t.Helper()
	// E B A F C D G / E B C D F A G
	alpha := []int{4, 1, 0, 5, 2, 3, 6}
	beta := []int{4, 1, 2, 3, 5, 0, 6}
	sp, err := FromSequences(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Pairs: [][2]int{{2, 3}, {1, 6}}, Selfs: []int{0, 5}}
	return sp, g
}

func TestNewIdentity(t *testing.T) {
	sp := New(4)
	for i := 0; i < 4; i++ {
		if sp.Alpha[i] != i || sp.Beta[i] != i {
			t.Fatalf("identity SP wrong at %d", i)
		}
		if sp.PosAlpha(i) != i || sp.PosBeta(i) != i {
			t.Fatalf("identity positions wrong at %d", i)
		}
	}
}

func TestFromSequencesValidation(t *testing.T) {
	if _, err := FromSequences([]int{0, 1}, []int{0}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := FromSequences([]int{0, 0}, []int{0, 1}); err == nil {
		t.Fatal("non-permutation alpha must fail")
	}
	if _, err := FromSequences([]int{0, 1}, []int{1, 1}); err == nil {
		t.Fatal("non-permutation beta must fail")
	}
	if _, err := FromSequences([]int{0, 2}, []int{0, 1}); err == nil {
		t.Fatal("out-of-range id must fail")
	}
}

func TestRelations(t *testing.T) {
	// alpha = [0,1], beta = [0,1]: 0 left of 1.
	sp, _ := FromSequences([]int{0, 1}, []int{0, 1})
	if !sp.LeftOf(0, 1) || sp.LeftOf(1, 0) || sp.Below(0, 1) || sp.Below(1, 0) {
		t.Fatal("identity relations wrong")
	}
	// alpha = [1,0], beta = [0,1]: 0 below 1.
	sp, _ = FromSequences([]int{1, 0}, []int{0, 1})
	if !sp.Below(0, 1) || sp.LeftOf(0, 1) || sp.LeftOf(1, 0) {
		t.Fatal("below relation wrong")
	}
}

// Every distinct module pair is in exactly one of the four relations.
func TestRelationTotality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		sp := New(n)
		sp.Shuffle(rng)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				rel := 0
				if sp.LeftOf(a, b) {
					rel++
				}
				if sp.LeftOf(b, a) {
					rel++
				}
				if sp.Below(a, b) {
					rel++
				}
				if sp.Below(b, a) {
					rel++
				}
				if rel != 1 {
					t.Fatalf("modules %d,%d have %d relations, want 1 (%v)", a, b, rel, sp)
				}
			}
		}
	}
}

func TestSwapsMaintainIndex(t *testing.T) {
	sp := New(5)
	sp.SwapAlpha(0, 4)
	if sp.PosAlpha(0) != 4 || sp.PosAlpha(4) != 0 {
		t.Fatal("SwapAlpha index broken")
	}
	sp.SwapModulesBeta(1, 3)
	if sp.PosBeta(1) != 3 || sp.PosBeta(3) != 1 {
		t.Fatal("SwapModulesBeta index broken")
	}
	sp.SwapModulesAlpha(0, 4)
	if sp.PosAlpha(0) != 0 {
		t.Fatal("SwapModulesAlpha index broken")
	}
}

// bruteSF checks property (1) literally, quantifying over all distinct
// member pairs.
func bruteSF(sp *SP, g Group) bool {
	ms := g.Members()
	for _, x := range ms {
		for _, y := range ms {
			if x == y {
				continue
			}
			sx, _ := g.Sym(x)
			sy, _ := g.Sym(y)
			if (sp.PosAlpha(x) < sp.PosAlpha(y)) != (sp.PosBeta(sy) < sp.PosBeta(sx)) {
				return false
			}
		}
	}
	return true
}

func TestFig1IsSymmetricFeasible(t *testing.T) {
	sp, g := fig1SP(t)
	if !sp.SymmetricFeasibleGroup(g) {
		t.Fatal("Fig. 1 sequence-pair must satisfy property (1)")
	}
	if !bruteSF(sp, g) {
		t.Fatal("Fig. 1 sequence-pair must satisfy brute-force property (1)")
	}
	// Breaking the pair order must violate the property: swap C and F
	// in beta only.
	sp.SwapModulesBeta(2, 5)
	if sp.SymmetricFeasibleGroup(g) {
		t.Fatal("perturbed pair must violate property (1)")
	}
}

// The fast predicate must agree with the literal property (1) on random
// codes.
func TestSFPredicateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Group{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4}}
	agree, sfCount := 0, 0
	for trial := 0; trial < 3000; trial++ {
		sp := New(7)
		sp.Shuffle(rng)
		want := bruteSF(sp, g)
		got := sp.SymmetricFeasibleGroup(g)
		if got != want {
			t.Fatalf("trial %d: predicate %v, brute force %v for %v", trial, got, want, sp)
		}
		agree++
		if got {
			sfCount++
		}
	}
	if sfCount == 0 {
		t.Fatal("no S-F codes among random samples; test is vacuous")
	}
}

func TestRepairSF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := []Group{
		{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4}},
		{Pairs: [][2]int{{5, 6}}},
	}
	for trial := 0; trial < 500; trial++ {
		sp := New(9)
		sp.Shuffle(rng)
		sp.RepairSF(groups)
		if !sp.SymmetricFeasible(groups) {
			t.Fatalf("trial %d: repair did not produce S-F code: %v", trial, sp)
		}
		// Repair must be idempotent.
		before := sp.Clone()
		sp.RepairSF(groups)
		if !sp.Equal(before) {
			t.Fatalf("trial %d: repair not idempotent", trial)
		}
	}
}

func TestRepairPreservesAlphaAndNonMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	groups := []Group{{Pairs: [][2]int{{0, 1}}}}
	sp := New(5)
	sp.Shuffle(rng)
	alphaBefore := append([]int(nil), sp.Alpha...)
	posBefore := map[int]int{2: sp.PosBeta(2), 3: sp.PosBeta(3), 4: sp.PosBeta(4)}
	sp.RepairSF(groups)
	for i := range alphaBefore {
		if sp.Alpha[i] != alphaBefore[i] {
			t.Fatal("repair must not touch alpha")
		}
	}
	for m, p := range posBefore {
		if sp.PosBeta(m) != p {
			t.Fatalf("repair moved non-member %d", m)
		}
	}
}

func TestPerturbSFPreservesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	groups := []Group{
		{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4, 5}},
	}
	sp := RandomSF(10, groups, rng)
	if !sp.SymmetricFeasible(groups) {
		t.Fatal("RandomSF must be S-F")
	}
	for step := 0; step < 2000; step++ {
		sp.PerturbSF(rng, groups)
		if !sp.SymmetricFeasible(groups) {
			t.Fatalf("step %d: move broke property (1): %v", step, sp)
		}
		if err := sp.reindex(); err != nil {
			t.Fatalf("step %d: sequences corrupted: %v", step, err)
		}
	}
}

func TestPerturbSFSmallCases(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Only group members, no free modules.
	groups := []Group{{Pairs: [][2]int{{0, 1}}}}
	sp := RandomSF(2, groups, rng)
	for i := 0; i < 100; i++ {
		sp.PerturbSF(rng, groups)
		if !sp.SymmetricFeasible(groups) {
			t.Fatal("move broke property on all-member instance")
		}
	}
	// Single module: no-op.
	one := New(1)
	one.PerturbSF(rng, nil)
	// No groups at all.
	free := New(5)
	for i := 0; i < 100; i++ {
		free.PerturbSF(rng, nil)
		if err := free.reindex(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPackKnownSmall(t *testing.T) {
	// Two modules side by side.
	sp, _ := FromSequences([]int{0, 1}, []int{0, 1})
	w := []int{10, 20}
	h := []int{5, 8}
	x, y := sp.Pack(w, h)
	if x[0] != 0 || x[1] != 10 || y[0] != 0 || y[1] != 0 {
		t.Fatalf("side-by-side packing wrong: x=%v y=%v", x, y)
	}
	// Two modules stacked (0 below 1).
	sp, _ = FromSequences([]int{1, 0}, []int{0, 1})
	x, y = sp.Pack(w, h)
	if x[0] != 0 || x[1] != 0 || y[0] != 0 || y[1] != 5 {
		t.Fatalf("stacked packing wrong: x=%v y=%v", x, y)
	}
	tw, th := Span(x, y, w, h)
	if tw != 20 || th != 13 {
		t.Fatalf("span = %dx%d, want 20x13", tw, th)
	}
}

func TestPackFig1Legal(t *testing.T) {
	sp, _ := fig1SP(t)
	w := []int{8, 6, 5, 5, 20, 8, 6}
	h := []int{6, 8, 7, 7, 5, 6, 8}
	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	p, err := sp.Placement(names, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Legal() {
		t.Fatalf("Fig. 1 packing overlaps: %v", p.Overlaps())
	}
}

// The vEB-based packer must agree with the naive longest-path packer.
func TestPackDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		sp := New(n)
		sp.Shuffle(rng)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(30)
			h[i] = 1 + rng.Intn(30)
		}
		xn, yn := sp.PackNaive(w, h)
		xf, yf := sp.Pack(w, h)
		for i := 0; i < n; i++ {
			if xn[i] != xf[i] || yn[i] != yf[i] {
				t.Fatalf("trial %d: packer mismatch at module %d: naive (%d,%d) fast (%d,%d)\nsp=%v",
					trial, i, xn[i], yn[i], xf[i], yf[i], sp)
			}
		}
	}
}

// Packed placements are always legal (no overlaps) and respect the
// sequence-pair relations.
func TestPackLegalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		sp := New(n)
		sp.Shuffle(rng)
		w := make([]int, n)
		h := make([]int, n)
		names := make([]string, n)
		for i := range w {
			w[i] = 1 + rng.Intn(25)
			h[i] = 1 + rng.Intn(25)
			names[i] = string(rune('a' + i))
		}
		p, err := sp.Placement(names, w, h)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Legal() {
			t.Fatalf("trial %d: overlapping packing: %v", trial, p.Overlaps())
		}
		x, y := sp.Pack(w, h)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if sp.LeftOf(a, b) && x[a]+w[a] > x[b] {
					t.Fatalf("trial %d: left-of violated for %d,%d", trial, a, b)
				}
				if sp.Below(a, b) && y[a]+h[a] > y[b] {
					t.Fatalf("trial %d: below violated for %d,%d", trial, a, b)
				}
			}
		}
	}
}

func TestPlacementArgValidation(t *testing.T) {
	sp := New(3)
	if _, err := sp.Placement([]string{"a"}, []int{1, 2, 3}, []int{1, 2, 3}); err == nil {
		t.Fatal("short names must fail")
	}
	if _, err := sp.SymmetricPlacement([]string{"a", "b", "c"}, []int{1, 2}, []int{1, 2, 3}, nil); err == nil {
		t.Fatal("short dims must fail")
	}
}

func TestLemmaBoundPaperExample(t *testing.T) {
	g := Group{Pairs: [][2]int{{2, 3}, {1, 6}}, Selfs: []int{0, 5}}
	bound := LemmaBound(7, []Group{g})
	if bound.Int64() != 35280 {
		t.Fatalf("LemmaBound = %v, want 35280", bound)
	}
	total := TotalSequencePairs(7)
	if total.Int64() != 25401600 {
		t.Fatalf("TotalSequencePairs = %v, want 25401600", total)
	}
	reduction := 1 - float64(bound.Int64())/float64(total.Int64())
	if reduction < 0.9985 || reduction > 0.9987 {
		t.Fatalf("search-space reduction = %v, want ~99.86%%", reduction)
	}
}

// Exhaustive verification of the Lemma for a small instance: the count
// of S-F codes equals the formula exactly.
func TestLemmaExhaustiveSmall(t *testing.T) {
	g := Group{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}}
	groups := []Group{g}
	sf, total := CountSF(5, groups)
	if total != 14400 { // (5!)²
		t.Fatalf("total = %d, want 14400", total)
	}
	want := LemmaBound(5, groups).Int64() // (5!)²/3! = 2400
	if sf != want {
		t.Fatalf("S-F count = %d, want %d", sf, want)
	}
	if fast := CountSFExact(5, groups); fast != want {
		t.Fatalf("CountSFExact = %d, want %d", fast, want)
	}
}

func TestLemmaTwoGroups(t *testing.T) {
	groups := []Group{
		{Pairs: [][2]int{{0, 1}}},
		{Selfs: []int{2, 3}},
	}
	sf, _ := CountSF(4, groups)
	want := LemmaBound(4, groups).Int64() // (4!)²/(2!·2!) = 144
	if sf != want {
		t.Fatalf("S-F count = %d, want %d", sf, want)
	}
	if fast := CountSFExact(4, groups); fast != want {
		t.Fatalf("CountSFExact = %d, want %d", fast, want)
	}
}

// Full paper-scale verification: n = 7 with the Fig. 1 group has
// exactly 35,280 S-F codes among 25,401,600. Run only without -short.
func TestLemmaPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 25.4M-code enumeration in -short mode")
	}
	g := Group{Pairs: [][2]int{{2, 3}, {1, 6}}, Selfs: []int{0, 5}}
	count := CountSFExact(7, []Group{g})
	if count != 35280 {
		t.Fatalf("S-F count = %d, want 35280", count)
	}
}

// Every enumerated S-F code must satisfy the predicate, and
// enumeration must not produce duplicates.
func TestEnumerateSFSound(t *testing.T) {
	g := Group{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}}
	groups := []Group{g}
	seen := map[string]bool{}
	EnumerateSF(4, groups, func(sp *SP) bool {
		if !sp.SymmetricFeasible(groups) {
			t.Fatalf("enumerated non-S-F code %v", sp)
		}
		key := sp.String()
		if seen[key] {
			t.Fatalf("duplicate code %v", sp)
		}
		seen[key] = true
		return true
	})
	want := LemmaBound(4, groups).Int64()
	if int64(len(seen)) != want {
		t.Fatalf("enumerated %d codes, want %d", len(seen), want)
	}
}

func TestEnumerateSFEarlyStop(t *testing.T) {
	count := 0
	EnumerateSF(4, nil, func(*SP) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop after %d codes, want 10", count)
	}
}

// toConstraintGroup converts a module-id group to a named constraint
// group for geometric validation.
func toConstraintGroup(g Group, names []string) constraint.SymmetryGroup {
	cg := constraint.SymmetryGroup{Name: "g", Vertical: true}
	for _, p := range g.Pairs {
		cg.Pairs = append(cg.Pairs, [2]string{names[p[0]], names[p[1]]})
	}
	for _, s := range g.Selfs {
		cg.Selfs = append(cg.Selfs, names[s])
	}
	return cg
}

// Fig. 1 end-to-end: the S-F code must yield a legal, geometrically
// symmetric placement.
func TestFig1SymmetricPlacement(t *testing.T) {
	sp, g := fig1SP(t)
	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	// Pair dims equal; self-symmetric A and F have even widths.
	w := []int{8, 6, 5, 5, 20, 8, 6}
	h := []int{6, 8, 7, 7, 5, 6, 8}
	p, err := sp.SymmetricPlacement(names, w, h, []Group{g})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Legal() {
		t.Fatalf("symmetric placement overlaps: %v", p.Overlaps())
	}
	cg := toConstraintGroup(g, names)
	if err := cg.Check(p); err != nil {
		t.Fatalf("symmetric placement violates symmetry: %v", err)
	}
}

// Property: random S-F codes pack into legal placements satisfying the
// symmetry constraint.
func TestPackSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	groups := []Group{
		{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4}},
	}
	names := []string{"p0", "p1", "q0", "q1", "s", "f1", "f2", "f3"}
	for trial := 0; trial < 200; trial++ {
		n := 8
		sp := RandomSF(n, groups, rng)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(20)
			h[i] = 1 + rng.Intn(20)
		}
		// Pairs share dims; selfs get even width.
		w[1], h[1] = w[0], h[0]
		w[3], h[3] = w[2], h[2]
		w[4] = w[4] &^ 1
		if w[4] == 0 {
			w[4] = 2
		}
		p, err := sp.SymmetricPlacement(names, w, h, groups)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.Legal() {
			t.Fatalf("trial %d: overlaps %v\nsp=%v", trial, p.Overlaps(), sp)
		}
		cg := toConstraintGroup(groups[0], names)
		if err := cg.Check(p); err != nil {
			t.Fatalf("trial %d: %v\nsp=%v\nplacement=%v", trial, err, sp, p)
		}
	}
}

func TestPackSymmetricErrors(t *testing.T) {
	groups := []Group{{Pairs: [][2]int{{0, 1}}}}
	sp := New(2)
	sp.RepairSF(groups)
	// Unequal pair dims.
	if _, _, err := sp.PackSymmetric([]int{3, 4}, []int{5, 5}, groups); err == nil {
		t.Fatal("unequal pair widths must fail")
	}
	// Mixed self parity.
	g2 := []Group{{Selfs: []int{0, 1}}}
	if _, _, err := New(2).PackSymmetric([]int{3, 4}, []int{5, 5}, g2); err == nil {
		t.Fatal("mixed self-symmetric width parity must fail")
	}
	// Invalid group.
	bad := []Group{{Pairs: [][2]int{{0, 5}}}}
	if _, _, err := New(2).PackSymmetric([]int{3, 3}, []int{5, 5}, bad); err == nil {
		t.Fatal("out-of-range group member must fail")
	}
}

// Exhaustive completeness check: every S-F code over a small instance
// must pack into a legal, geometrically symmetric placement — property
// (1) is a sufficient condition per the paper, so the constructor must
// never fail on an S-F code.
func TestPackSymmetricCompleteOnAllSFCodes(t *testing.T) {
	groups := []Group{{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}}}
	names := []string{"a", "b", "s", "f1", "f2"}
	w := []int{5, 5, 4, 7, 3}
	h := []int{6, 6, 3, 2, 9}
	cg := toConstraintGroup(groups[0], names)
	count := 0
	EnumerateSF(5, groups, func(sp *SP) bool {
		count++
		p, err := sp.SymmetricPlacement(names, w, h, groups)
		if err != nil {
			t.Fatalf("S-F code %v failed to pack: %v", sp, err)
		}
		if !p.Legal() {
			t.Fatalf("S-F code %v packed with overlaps: %v", sp, p.Overlaps())
		}
		if err := cg.Check(p); err != nil {
			t.Fatalf("S-F code %v not symmetric: %v", sp, err)
		}
		return true
	})
	want := LemmaBound(5, groups).Int64()
	if int64(count) != want {
		t.Fatalf("enumerated %d codes, want %d", count, want)
	}
}

// With two independent groups, per-group property (1) is no longer
// sufficient: cross-group vertical relations can demand y(a) ≥ y(a) +
// h₁ + h₂ (e.g. group-1's left member below group-0's left member
// while group-0's right member is below group-1's right member). The
// constructor must detect those codes and reject them, and must still
// succeed on the (majority of) feasible ones with correct geometry.
func TestPackSymmetricTwoGroupsExhaustive(t *testing.T) {
	groups := []Group{
		{Pairs: [][2]int{{0, 1}}},
		{Pairs: [][2]int{{2, 3}}},
	}
	names := []string{"a", "b", "c", "d", "f"}
	w := []int{4, 4, 6, 6, 5}
	h := []int{5, 5, 3, 3, 4}
	cgs := []constraint.SymmetryGroup{
		toConstraintGroup(groups[0], names),
		toConstraintGroup(groups[1], names),
	}
	ok, rejected := 0, 0
	EnumerateSF(5, groups, func(sp *SP) bool {
		p, err := sp.SymmetricPlacement(names, w, h, groups)
		if err != nil {
			rejected++
			return true
		}
		ok++
		if !p.Legal() {
			t.Fatalf("S-F code %v packed with overlaps: %v", sp, p.Overlaps())
		}
		for _, cg := range cgs {
			if err := cg.Check(p); err != nil {
				t.Fatalf("S-F code %v: %v", sp, err)
			}
		}
		return true
	})
	if ok == 0 {
		t.Fatal("no two-group code packed; constructor is broken")
	}
	if rejected == 0 {
		t.Fatal("expected some cross-group-infeasible codes to be rejected")
	}
	if float64(ok)/float64(ok+rejected) < 0.5 {
		t.Fatalf("only %d/%d codes packed; constructor too conservative", ok, ok+rejected)
	}
}

func TestGroupValidate(t *testing.T) {
	if err := (Group{Pairs: [][2]int{{0, 0}}}).Validate(3); err == nil {
		t.Fatal("module paired with itself must fail")
	}
	if err := ValidateGroups(4, []Group{
		{Pairs: [][2]int{{0, 1}}},
		{Selfs: []int{1}},
	}); err == nil {
		t.Fatal("overlapping groups must fail")
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	sp := New(6)
	sp.Shuffle(rng)
	cl := sp.Clone()
	if !sp.Equal(cl) {
		t.Fatal("clone must be equal")
	}
	cl.SwapAlpha(0, 1)
	if sp.Equal(cl) {
		t.Fatal("modified clone must differ")
	}
	if sp.Equal(New(7)) {
		t.Fatal("different sizes must differ")
	}
}

func BenchmarkPackNaive100(b *testing.B)  { benchPack(b, 100, true) }
func BenchmarkPackFast100(b *testing.B)   { benchPack(b, 100, false) }
func BenchmarkPackNaive1000(b *testing.B) { benchPack(b, 1000, true) }
func BenchmarkPackFast1000(b *testing.B)  { benchPack(b, 1000, false) }

func benchPack(b *testing.B, n int, naive bool) {
	rng := rand.New(rand.NewSource(41))
	sp := New(n)
	sp.Shuffle(rng)
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			sp.PackNaive(w, h)
		} else {
			sp.Pack(w, h)
		}
	}
}
