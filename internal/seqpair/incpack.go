package seqpair

import "sort"

// Incremental packing. The FAST-SP scan (packLCSInto) is a fold over
// the alpha sequence whose only carried state is the "staircase" — the
// Pareto frontier of (beta position, edge value) pairs with values
// strictly increasing in key. A local sequence move disturbs the
// inputs of only a few scan steps, so the whole pack can be replayed
// from a checkpointed staircase just before the disturbed window and
// terminated as soon as the staircase provably re-converges with the
// previous pack's:
//
//   - every pack journals, per scan step, the inserted (key, value)
//     and the dominated keys it deleted;
//   - staircase snapshots are checkpointed on a fixed step grid and
//     refreshed in passing, so by induction each checkpoint always
//     equals the state of the most recent pack just before its step;
//   - an incremental pack loads the nearest checkpoint at or below the
//     window, replays the journal up to the window (cheap: no
//     predecessor queries, just recorded splices), then re-scans
//     for real while maintaining, against a shadow copy evolved by the
//     old journal, a count of keys on which the two staircases
//     disagree — when the scan has passed the window and the count is
//     zero, every remaining step would reproduce the cached
//     coordinates exactly, so the scan stops.
//
// The early exit is exact, not approximate: the scan step is a
// deterministic function of (staircase, module, key, dimension), so
// agreeing staircases and undisturbed inputs imply identical suffixes.
// The property tests in incpack_test.go hold PackIncrementalInto
// bit-identical to PackInto under randomized move/undo/disturb storms.
//
// The staircase here is a sorted key slice with epoch-stamped
// value/membership arrays indexed by beta position, not the vEB queue
// of the full packer: the incremental scan touches few steps, so the
// O(log s) binary search and small memmoves beat re-Clearing a vEB
// universe every pack.

// incCkStride returns the checkpoint grid stride for n modules: dense
// enough that journal replay to the window stays cheap, sparse enough
// that checkpoint refreshes and memory stay bounded at n = 10⁵.
func incCkStride(n int) int {
	const minStride = 64
	if s := n / 64; s > minStride {
		return s
	}
	return minStride
}

// incAxis is the per-axis incremental scan state (x: forward alpha
// scan over widths; y: reverse alpha scan over heights).
type incAxis struct {
	reverse bool
	ck      int
	// coord is the cached coordinate per module id — the output.
	coord []int
	// Journal of the most recent trajectory, per scan step.
	insKey, insVal []int
	delKeys        [][]int
	// Working staircase: sorted keys, plus value/membership indexed by
	// key (beta position). A key is live iff stamp[key] == epoch.
	keys  []int
	val   []int
	stamp []uint32
	epoch uint32
	// Shadow staircase evolved by the old journal during an
	// incremental re-scan, for the agreement count.
	oldVal   []int
	oldStamp []uint32
	oldEpoch uint32
	// Checkpoints: staircase state just before step g*ck.
	ckKeys, ckVals [][]int
	odScratch      []int
}

func (a *incAxis) ensure(n int) {
	a.ck = incCkStride(n)
	if cap(a.coord) < n {
		a.coord = make([]int, n)
		a.insKey = make([]int, n)
		a.insVal = make([]int, n)
		a.delKeys = make([][]int, n)
		a.val = make([]int, n)
		a.stamp = make([]uint32, n)
		a.oldVal = make([]int, n)
		a.oldStamp = make([]uint32, n)
	}
	a.coord = a.coord[:n]
	a.insKey, a.insVal = a.insKey[:n], a.insVal[:n]
	a.delKeys = a.delKeys[:n]
	a.val, a.stamp = a.val[:n], a.stamp[:n]
	a.oldVal, a.oldStamp = a.oldVal[:n], a.oldStamp[:n]
	nck := (n-1)/a.ck + 1
	if n == 0 {
		nck = 0
	}
	for len(a.ckKeys) < nck {
		a.ckKeys = append(a.ckKeys, nil)
		a.ckVals = append(a.ckVals, nil)
	}
	a.ckKeys = a.ckKeys[:nck]
	a.ckVals = a.ckVals[:nck]
}

// agree reports whether the working and shadow staircases agree on
// key k (same membership and, if live, same value).
func (a *incAxis) agree(k int) bool {
	live := a.stamp[k] == a.epoch
	if live != (a.oldStamp[k] == a.oldEpoch) {
		return false
	}
	return !live || a.val[k] == a.oldVal[k]
}

// splice replaces keys[i:i+nd] with the single key p.
func (a *incAxis) splice(i, nd, p int) {
	switch {
	case nd == 0:
		a.keys = append(a.keys, 0)
		copy(a.keys[i+1:], a.keys[i:])
		a.keys[i] = p
	default:
		a.keys[i] = p
		if nd > 1 {
			copy(a.keys[i+1:], a.keys[i+nd:])
			a.keys = a.keys[:len(a.keys)-nd+1]
		}
	}
}

func (a *incAxis) saveCk(g int) {
	a.ckKeys[g] = append(a.ckKeys[g][:0], a.keys...)
	vals := a.ckVals[g][:0]
	for _, k := range a.keys {
		vals = append(vals, a.val[k])
	}
	a.ckVals[g] = vals
}

func (a *incAxis) loadCk(g int) {
	a.epoch++
	a.keys = append(a.keys[:0], a.ckKeys[g]...)
	for i, k := range a.keys {
		a.val[k] = a.ckVals[g][i]
		a.stamp[k] = a.epoch
	}
}

// step runs one scan step on the working staircase, overwriting the
// journal entry for s. With diff non-nil it maintains the
// working-vs-shadow agreement count across every mutation.
func (a *incAxis) step(sp *SP, dim []int, s int, diff *int) {
	var m int
	if a.reverse {
		m = sp.Alpha[len(sp.Alpha)-1-s]
	} else {
		m = sp.Alpha[s]
	}
	p := sp.posB[m]
	i := sort.SearchInts(a.keys, p)
	c := 0
	if i > 0 {
		c = a.val[a.keys[i-1]]
	}
	a.coord[m] = c
	end := c + dim[m]
	// Dominated successors: larger keys whose value does not exceed
	// the new entry's, exactly as the vEB packer deletes them.
	dl := a.delKeys[s][:0]
	j := i
	for j < len(a.keys) {
		q := a.keys[j]
		if a.val[q] > end {
			break
		}
		dl = append(dl, q)
		if diff != nil {
			eq := a.agree(q)
			a.stamp[q] = 0
			if eq != a.agree(q) {
				if eq {
					*diff++
				} else {
					*diff--
				}
			}
		} else {
			a.stamp[q] = 0
		}
		j++
	}
	a.delKeys[s] = dl
	a.splice(i, j-i, p)
	a.insKey[s], a.insVal[s] = p, end
	if diff != nil {
		eq := a.agree(p)
		a.val[p] = end
		a.stamp[p] = a.epoch
		if eq != a.agree(p) {
			if eq {
				*diff++
			} else {
				*diff--
			}
		}
	} else {
		a.val[p] = end
		a.stamp[p] = a.epoch
	}
}

// replay applies the journaled step s to the working staircase
// without recomputation: recorded deletions, recorded insertion.
func (a *incAxis) replay(s int) {
	p, v := a.insKey[s], a.insVal[s]
	i := sort.SearchInts(a.keys, p)
	nd := len(a.delKeys[s])
	for _, q := range a.delKeys[s] {
		a.stamp[q] = 0
	}
	a.splice(i, nd, p)
	a.val[p] = v
	a.stamp[p] = a.epoch
}

// oldStep evolves the shadow staircase by the stashed old journal
// entry for one step, maintaining the agreement count.
func (a *incAxis) oldStep(okey, oval int, odels []int, diff *int) {
	for _, q := range odels {
		eq := a.agree(q)
		a.oldStamp[q] = 0
		if eq != a.agree(q) {
			if eq {
				*diff++
			} else {
				*diff--
			}
		}
	}
	eq := a.agree(okey)
	a.oldVal[okey] = oval
	a.oldStamp[okey] = a.oldEpoch
	if eq != a.agree(okey) {
		if eq {
			*diff++
		} else {
			*diff--
		}
	}
}

// full runs a complete scan, establishing coord, journal and
// checkpoints from scratch.
func (a *incAxis) full(sp *SP, dim []int) {
	n := sp.N()
	a.epoch++
	a.keys = a.keys[:0]
	for s := 0; s < n; s++ {
		if s%a.ck == 0 {
			a.saveCk(s / a.ck)
		}
		a.step(sp, dim, s, nil)
	}
}

// incremental re-scans with the disturbed scan-step window [lo, hi]:
// checkpoint load, cheap journal replay to lo, then live steps with
// the shadow staircase until past hi with zero disagreements.
func (a *incAxis) incremental(sp *SP, dim []int, lo, hi int) {
	n := sp.N()
	g := lo / a.ck
	a.loadCk(g)
	for s := g * a.ck; s < lo; s++ {
		a.replay(s)
	}
	// Shadow := snapshot of the working staircase (they agree on every
	// key here, by checkpoint validity).
	a.oldEpoch++
	for _, k := range a.keys {
		a.oldVal[k] = a.val[k]
		a.oldStamp[k] = a.oldEpoch
	}
	diff := 0
	for s := lo; s < n; s++ {
		if s > hi && diff == 0 {
			return // exact convergence: the suffix replays the cache
		}
		// Stash the old journal entry before step overwrites it.
		okey, oval := a.insKey[s], a.insVal[s]
		odels := append(a.odScratch[:0], a.delKeys[s]...)
		a.odScratch = odels
		if s%a.ck == 0 {
			a.saveCk(s / a.ck)
		}
		a.step(sp, dim, s, &diff)
		a.oldStep(okey, oval, odels, &diff)
	}
}

// IncPack is the reusable incremental packing state of one SP walk:
// cached coordinates, per-axis scan journals and staircase
// checkpoints. The zero value is ready to use (the first pack is a
// full scan). Like PackWorkspace it must not be shared between
// concurrent packings, and it caches the trajectory of one evolving
// SP: callers must Disturb it with every alpha-position window whose
// scan inputs changed since the last pack (sequence moves, undos,
// rotations) and Invalidate it on wholesale state replacement
// (Restore, crossover).
type IncPack struct {
	n                int
	valid            bool
	dirtyLo, dirtyHi int
	x, y             incAxis
}

// Invalidate drops the cache; the next pack is a full scan.
func (ip *IncPack) Invalidate() { ip.valid = false }

// Disturb widens the pending dirty window to cover alpha positions
// [lo, hi] (inclusive), in any order. Windows accumulate until the
// next PackIncrementalInto consumes them.
func (ip *IncPack) Disturb(lo, hi int) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if ip.dirtyHi < ip.dirtyLo { // empty
		ip.dirtyLo, ip.dirtyHi = lo, hi
		return
	}
	if lo < ip.dirtyLo {
		ip.dirtyLo = lo
	}
	if hi > ip.dirtyHi {
		ip.dirtyHi = hi
	}
}

func (ip *IncPack) clearDirty() { ip.dirtyLo, ip.dirtyHi = 1, 0 }

// PackIncrementalInto packs like PackInto but reuses the cached
// trajectory outside the accumulated dirty window. The returned
// slices are owned by ip and overwritten by the next pack; results
// are bit-identical to PackInto for every correctly disturbed move
// sequence (see the property tests).
func (sp *SP) PackIncrementalInto(ip *IncPack, w, h []int) (x, y []int) {
	n := sp.N()
	if !ip.valid || ip.n != n {
		ip.n = n
		ip.x.reverse, ip.y.reverse = false, true
		ip.x.ensure(n)
		ip.y.ensure(n)
		ip.x.full(sp, w)
		ip.y.full(sp, h)
		ip.valid = true
		ip.clearDirty()
		return ip.x.coord, ip.y.coord
	}
	if ip.dirtyHi < ip.dirtyLo {
		return ip.x.coord, ip.y.coord // clean cache
	}
	lo, hi := ip.dirtyLo, ip.dirtyHi
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	// Alpha-position window [lo,hi] maps to scan steps [lo,hi] on the
	// forward x scan and [n-1-hi, n-1-lo] on the reverse y scan.
	ip.x.incremental(sp, w, lo, hi)
	ip.y.incremental(sp, h, n-1-hi, n-1-lo)
	ip.clearDirty()
	return ip.x.coord, ip.y.coord
}
