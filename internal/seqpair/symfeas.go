package seqpair

import (
	"fmt"
	"math/rand"
	"sort"
)

// Group is a symmetry group over module ids: pairs of symmetric
// modules plus self-symmetric modules, all sharing one vertical axis
// (the paper's γ = {(C,D), (B,G), A, F}).
type Group struct {
	Pairs [][2]int
	Selfs []int
}

// Members returns all module ids in the group.
func (g Group) Members() []int {
	out := make([]int, 0, g.Size())
	for _, p := range g.Pairs {
		out = append(out, p[0], p[1])
	}
	out = append(out, g.Selfs...)
	return out
}

// Size returns 2p + s, the number of modules in the group.
func (g Group) Size() int { return 2*len(g.Pairs) + len(g.Selfs) }

// Sym returns sym(m) and whether m belongs to the group.
// Self-symmetric modules map to themselves.
func (g Group) Sym(m int) (int, bool) {
	for _, p := range g.Pairs {
		if p[0] == m {
			return p[1], true
		}
		if p[1] == m {
			return p[0], true
		}
	}
	for _, s := range g.Selfs {
		if s == m {
			return m, true
		}
	}
	return 0, false
}

// Validate checks that group members are distinct and within [0, n).
func (g Group) Validate(n int) error {
	seen := map[int]bool{}
	for _, m := range g.Members() {
		if m < 0 || m >= n {
			return fmt.Errorf("seqpair: group member %d out of range [0,%d)", m, n)
		}
		if seen[m] {
			return fmt.Errorf("seqpair: module %d appears twice in group", m)
		}
		seen[m] = true
	}
	return nil
}

// ValidateGroups checks each group and that groups are disjoint.
func ValidateGroups(n int, groups []Group) error {
	seen := map[int]bool{}
	for i, g := range groups {
		if err := g.Validate(n); err != nil {
			return err
		}
		for _, m := range g.Members() {
			if seen[m] {
				return fmt.Errorf("seqpair: module %d in two groups (second is group %d)", m, i)
			}
			seen[m] = true
		}
	}
	return nil
}

// membersByAlpha returns the group's members sorted by alpha position.
func (sp *SP) membersByAlpha(g Group) []int {
	ms := g.Members()
	sort.Slice(ms, func(i, j int) bool { return sp.posA[ms[i]] < sp.posA[ms[j]] })
	return ms
}

// SymmetricFeasibleGroup reports whether sp satisfies property (1) of
// the paper for one group: for any distinct members x, y,
//
//	α⁻¹(x) < α⁻¹(y)  ⇔  β⁻¹(sym(y)) < β⁻¹(sym(x)).
//
// Equivalently, the subsequence of β restricted to group members must
// read sym(m_k), ..., sym(m_1) where m_1..m_k is the members'
// α-order. The check is O(k log k) for a group of k members.
func (sp *SP) SymmetricFeasibleGroup(g Group) bool {
	ms := sp.membersByAlpha(g)
	// Expected β order: sym of reversed α order.
	k := len(ms)
	expect := make([]int, k)
	for i, m := range ms {
		s, _ := g.Sym(m)
		expect[k-1-i] = s
	}
	// Actual β order of members.
	actual := append([]int(nil), ms...)
	sort.Slice(actual, func(i, j int) bool { return sp.posB[actual[i]] < sp.posB[actual[j]] })
	for i := range expect {
		if expect[i] != actual[i] {
			return false
		}
	}
	return true
}

// SymmetricFeasible reports whether sp satisfies property (1) for
// every group.
func (sp *SP) SymmetricFeasible(groups []Group) bool {
	for _, g := range groups {
		if !sp.SymmetricFeasibleGroup(g) {
			return false
		}
	}
	return true
}

// RepairSF rewrites beta so that sp becomes symmetric-feasible for
// every group, leaving alpha untouched and moving only group members
// within beta (each group's members keep their original beta
// *positions* but are reordered among themselves). Any sequence-pair
// maps to an S-F one this way, which gives both a legal initial
// solution and a cheap projection after arbitrary moves.
func (sp *SP) RepairSF(groups []Group) {
	for _, g := range groups {
		ms := sp.membersByAlpha(g)
		k := len(ms)
		// Positions currently holding group members, ascending.
		pos := make([]int, k)
		for i, m := range ms {
			pos[i] = sp.posB[m]
		}
		sort.Ints(pos)
		// Desired occupancy: sym(m_k) first, ..., sym(m_1) last.
		for i := 0; i < k; i++ {
			s, _ := g.Sym(ms[k-1-i])
			p := pos[i]
			sp.Beta[p] = s
			sp.posB[s] = p
		}
	}
}

// MoveKind enumerates the S-F-preserving perturbations used by the
// simulated-annealing placer.
type MoveKind int

// Move kinds. SwapAlphaPaired and SwapBetaPaired realize the paper's
// rule: "if two cells from distinct symmetric pairs are interchanged in
// the sequence α, then their symmetric counterparts must be
// interchanged as well in the sequence β."
const (
	SwapAlphaFree   MoveKind = iota // swap two non-group modules in α
	SwapBetaFree                    // swap two non-group modules in β
	SwapBothFree                    // swap two non-group modules in both
	SwapAlphaPaired                 // swap two group members in α, fix β
	SwapGroupRotate                 // rotate three group members in α, fix β
)

// PerturbSF applies one random S-F-preserving move and returns the
// kind applied. The receiver must already be symmetric-feasible; the
// result is guaranteed symmetric-feasible. Modules outside every group
// are "free". When a chosen move has no applicable operands (e.g. no
// free modules), PerturbSF falls back to a paired swap; with fewer than
// two modules it is a no-op.
func (sp *SP) PerturbSF(rng *rand.Rand, groups []Group) MoveKind {
	kind, _, _ := sp.PerturbSFTouched(rng, groups)
	return kind
}

// PerturbSFTouched is PerturbSF reporting which modules the move
// touched: for the free-module kinds the swapped pair (a, b); for the
// group kinds (paired swap, rotation, and their repair) a = b = -1,
// meaning the caller must treat the whole sequence as disturbed. The
// RNG draw sequence is identical to PerturbSF's for every input —
// including the allocation-free fast path taken when groups is empty,
// where the free pool is all of 0..n-1 and never needs materializing
// (profiling the n ≥ 10⁴ walks showed the pool allocations dominating
// move cost).
func (sp *SP) PerturbSFTouched(rng *rand.Rand, groups []Group) (MoveKind, int, int) {
	n := sp.N()
	if n < 2 {
		return SwapBothFree, -1, -1
	}
	if len(groups) == 0 {
		// Fast path: every module is free, pool[i] == i, so the draws
		// (kind, i, j) below replicate the general path bit for bit
		// without building inGroup/free.
		kind := MoveKind(rng.Intn(5))
		if kind >= SwapAlphaPaired {
			kind = SwapBothFree
		}
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		switch kind {
		case SwapAlphaFree:
			sp.SwapModulesAlpha(a, b)
		case SwapBetaFree:
			sp.SwapModulesBeta(a, b)
		default:
			sp.SwapModulesAlpha(a, b)
			sp.SwapModulesBeta(a, b)
		}
		return kind, a, b
	}
	inGroup := make([]bool, n)
	var members []int
	for _, g := range groups {
		for _, m := range g.Members() {
			inGroup[m] = true
			members = append(members, m)
		}
	}
	var free []int
	for m := 0; m < n; m++ {
		if !inGroup[m] {
			free = append(free, m)
		}
	}
	kind := MoveKind(rng.Intn(5))
	if len(free) < 2 && kind <= SwapBothFree {
		kind = SwapAlphaPaired
	}
	if len(members) < 2 && kind >= SwapAlphaPaired {
		if len(free) < 2 {
			return SwapBothFree, -1, -1
		}
		kind = SwapBothFree
	}
	pick2 := func(pool []int) (int, int) {
		i := rng.Intn(len(pool))
		j := rng.Intn(len(pool) - 1)
		if j >= i {
			j++
		}
		return pool[i], pool[j]
	}
	switch kind {
	case SwapAlphaFree:
		a, b := pick2(free)
		sp.SwapModulesAlpha(a, b)
		return kind, a, b
	case SwapBetaFree:
		a, b := pick2(free)
		sp.SwapModulesBeta(a, b)
		return kind, a, b
	case SwapBothFree:
		a, b := pick2(free)
		sp.SwapModulesAlpha(a, b)
		sp.SwapModulesBeta(a, b)
		return kind, a, b
	case SwapAlphaPaired:
		a, b := pick2(members)
		sp.SwapModulesAlpha(a, b)
		sp.RepairSF(groups)
	case SwapGroupRotate:
		if len(members) < 3 {
			a, b := pick2(members)
			sp.SwapModulesAlpha(a, b)
			sp.RepairSF(groups)
			return SwapAlphaPaired, -1, -1
		}
		i := rng.Intn(len(members))
		j := rng.Intn(len(members))
		k := rng.Intn(len(members))
		if i != j && j != k && i != k {
			a, b, c := members[i], members[j], members[k]
			// Rotate a -> b -> c -> a in alpha.
			pa, pb, pc := sp.posA[a], sp.posA[b], sp.posA[c]
			sp.Alpha[pb], sp.Alpha[pc], sp.Alpha[pa] = a, b, c
			sp.posA[a], sp.posA[b], sp.posA[c] = pb, pc, pa
		} else {
			a, b := pick2(members)
			sp.SwapModulesAlpha(a, b)
		}
		sp.RepairSF(groups)
	}
	return kind, -1, -1
}

// PerturbLocal applies one range-limited sequence move — a swap of
// alpha positions i and j with |i−j| ≤ window, a beta swap of the
// modules at those alpha positions, or both — and returns the
// disturbed alpha-position window [lo, hi]. Range limiting is the
// classic TimberWolf-style large-instance move discipline: a bounded
// window keeps the incremental packer's re-scan short, which is what
// makes n ≥ 10⁴ walks affordable. It does not preserve symmetric
// feasibility and is only used on problems without symmetry groups.
func (sp *SP) PerturbLocal(rng *rand.Rand, window int) (lo, hi int) {
	n := sp.N()
	if n < 2 {
		return 0, 0
	}
	if window < 1 {
		window = 1
	}
	if window > n/2 {
		window = n / 2
	}
	kind := rng.Intn(3)
	i := rng.Intn(n)
	d := 1 + rng.Intn(window)
	j := i + d
	if j >= n {
		j = i - d // in range: i ≥ n−d and d ≤ n/2 imply i−d ≥ n−2d ≥ 0
	}
	switch kind {
	case 0:
		sp.SwapAlpha(i, j)
	case 1:
		sp.SwapModulesBeta(sp.Alpha[i], sp.Alpha[j])
	default:
		sp.SwapAlpha(i, j)
		sp.SwapModulesBeta(sp.Alpha[i], sp.Alpha[j])
	}
	if i > j {
		i, j = j, i
	}
	return i, j
}

// RandomSF returns a random symmetric-feasible sequence-pair over n
// modules: a uniformly random pair projected by RepairSF.
func RandomSF(n int, groups []Group, rng *rand.Rand) *SP {
	sp := New(n)
	sp.Shuffle(rng)
	sp.RepairSF(groups)
	return sp
}
