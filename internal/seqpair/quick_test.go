package seqpair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
)

// spFromSeeds builds a reproducible random instance from fuzz inputs.
func spFromSeeds(seed int64, nRaw uint8) (*SP, []int, []int, *rand.Rand) {
	n := 1 + int(nRaw)%12
	rng := rand.New(rand.NewSource(seed))
	sp := New(n)
	sp.Shuffle(rng)
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(30)
		h[i] = 1 + rng.Intn(30)
	}
	return sp, w, h, rng
}

// Property: packed placements never overlap and respect the relation
// semantics (left-of implies disjoint x intervals, below implies
// disjoint y intervals), for arbitrary codes and dimensions.
func TestQuickPackSound(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		sp, w, h, _ := spFromSeeds(seed, nRaw)
		n := sp.N()
		x, y := sp.Pack(w, h)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				overlapX := x[a] < x[b]+w[b] && x[b] < x[a]+w[a]
				overlapY := y[a] < y[b]+h[b] && y[b] < y[a]+h[a]
				if overlapX && overlapY {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RepairSF is a projection — it always lands in the S-F set
// and is the identity on it.
func TestQuickRepairProjection(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		sp, _, _, _ := spFromSeeds(seed, nRaw)
		n := sp.N()
		if n < 4 {
			return true
		}
		groups := []Group{{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}}}
		sp.RepairSF(groups)
		if !sp.SymmetricFeasible(groups) {
			return false
		}
		before := sp.Clone()
		sp.RepairSF(groups)
		return sp.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the Lemma bound divides the total count exactly (the
// quotient structure of the S-F subset), for arbitrary group shapes.
func TestQuickLemmaDivides(t *testing.T) {
	f := func(pRaw, sRaw, extraRaw uint8) bool {
		p := int(pRaw) % 3
		s := int(sRaw) % 3
		extra := int(extraRaw) % 3
		n := 2*p + s + extra
		if n == 0 || 2*p+s == 0 {
			return true
		}
		var g Group
		id := 0
		for i := 0; i < p; i++ {
			g.Pairs = append(g.Pairs, [2]int{id, id + 1})
			id += 2
		}
		for i := 0; i < s; i++ {
			g.Selfs = append(g.Selfs, id)
			id++
		}
		total := TotalSequencePairs(n)
		bound := LemmaBound(n, []Group{g})
		rem := total.Mod(total, bound)
		return rem.Sign() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: symmetric packing, when it succeeds, always yields a legal
// and geometrically symmetric placement — never a silently wrong one.
func TestQuickSymmetricPackSoundOrRejected(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		sp, w, h, rng := spFromSeeds(seed, nRaw)
		n := sp.N()
		if n < 5 {
			return true
		}
		groups := []Group{{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4}}}
		w[1], h[1] = w[0], h[0]
		w[3], h[3] = w[2], h[2]
		w[4] &^= 1
		if w[4] == 0 {
			w[4] = 2
		}
		sp.RepairSF(groups)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		pl, err := sp.SymmetricPlacement(names, w, h, groups)
		if err != nil {
			return true // rejection is allowed; wrong output is not
		}
		if !pl.Legal() {
			return false
		}
		cg := toQuickGroup(groups[0], names)
		_ = rng
		return cg.Check(pl) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// toQuickGroup converts a module-id group to a named constraint group.
func toQuickGroup(g Group, names []string) constraint.SymmetryGroup {
	cg := constraint.SymmetryGroup{Name: "q", Vertical: true}
	for _, p := range g.Pairs {
		cg.Pairs = append(cg.Pairs, [2]string{names[p[0]], names[p[1]]})
	}
	for _, s := range g.Selfs {
		cg.Selfs = append(cg.Selfs, names[s])
	}
	return cg
}
