package seqpair

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/veb"
)

// PackNaive converts the sequence-pair into lower-left module
// coordinates by the classic O(n²) longest-path evaluation of the
// horizontal and vertical constraint graphs. It is the reference
// implementation the fast packer is differential-tested against.
// w and h give module dimensions indexed by module id.
func (sp *SP) PackNaive(w, h []int) (x, y []int) {
	n := sp.N()
	x = make([]int, n)
	y = make([]int, n)
	// Horizontal: process in alpha order; a is left of b iff a
	// precedes b in both sequences.
	for ia := 0; ia < n; ia++ {
		b := sp.Alpha[ia]
		best := 0
		for ja := 0; ja < ia; ja++ {
			a := sp.Alpha[ja]
			if sp.posB[a] < sp.posB[b] && x[a]+w[a] > best {
				best = x[a] + w[a]
			}
		}
		x[b] = best
	}
	// Vertical: process in reverse alpha order; a is below b iff a
	// succeeds b in alpha and precedes it in beta.
	for ia := n - 1; ia >= 0; ia-- {
		b := sp.Alpha[ia]
		best := 0
		for ja := n - 1; ja > ia; ja-- {
			a := sp.Alpha[ja]
			if sp.posB[a] < sp.posB[b] && y[a]+h[a] > best {
				best = y[a] + h[a]
			}
		}
		y[b] = best
	}
	return x, y
}

// Pack converts the sequence-pair into lower-left module coordinates
// using the weighted longest-common-subsequence formulation (Tang/Wong
// FAST-SP [26]) with a van Emde Boas priority queue over beta
// positions, giving O(n log log n) per evaluation — the complexity the
// paper quotes for symmetric placement evaluation.
func (sp *SP) Pack(w, h []int) (x, y []int) {
	n := sp.N()
	x = sp.packLCS(sp.Alpha, w, false)
	y = sp.packLCS(sp.Alpha, h, true)
	_ = n
	return x, y
}

// packLCS computes one coordinate axis. For x it scans alpha forward;
// for y (reverse=true) it scans alpha backward. In both cases the
// "dominates" relation on already-scanned modules is "smaller beta
// position", so a single predecessor query on a vEB tree keyed by beta
// position yields the coordinate.
func (sp *SP) packLCS(order []int, dim []int, reverse bool) []int {
	n := len(order)
	coord := make([]int, n)
	if n == 0 {
		return coord
	}
	t := veb.New(n)
	vals := make([]int, n) // beta position -> running edge value
	scan := func(m int) {
		p := sp.posB[m]
		c := 0
		if pred := t.Predecessor(p); pred >= 0 {
			c = vals[pred]
		}
		coord[m] = c
		end := c + dim[m]
		t.Insert(p)
		vals[p] = end
		// Remove dominated entries: larger keys with no larger value,
		// so values stay strictly increasing in key.
		for q := t.Successor(p); q >= 0 && vals[q] <= end; q = t.Successor(p) {
			t.Delete(q)
		}
	}
	if reverse {
		for i := n - 1; i >= 0; i-- {
			scan(order[i])
		}
	} else {
		for i := 0; i < n; i++ {
			scan(order[i])
		}
	}
	return coord
}

// Span returns the total width and height of a packing given the
// coordinates and dimensions.
func Span(x, y, w, h []int) (totalW, totalH int) {
	for i := range x {
		if x[i]+w[i] > totalW {
			totalW = x[i] + w[i]
		}
		if y[i]+h[i] > totalH {
			totalH = y[i] + h[i]
		}
	}
	return totalW, totalH
}

// Placement packs the sequence-pair and returns a named placement.
// names, w and h are indexed by module id and must all have length
// sp.N().
func (sp *SP) Placement(names []string, w, h []int) (geom.Placement, error) {
	n := sp.N()
	if len(names) != n || len(w) != n || len(h) != n {
		return nil, fmt.Errorf("seqpair: names/w/h length mismatch with %d modules", n)
	}
	x, y := sp.Pack(w, h)
	p := geom.Placement{}
	for i := 0; i < n; i++ {
		p[names[i]] = geom.NewRect(x[i], y[i], w[i], h[i])
	}
	return p, nil
}
