package seqpair

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/veb"
)

// PackNaive converts the sequence-pair into lower-left module
// coordinates by the classic O(n²) longest-path evaluation of the
// horizontal and vertical constraint graphs. It is the reference
// implementation the fast packer is differential-tested against.
// w and h give module dimensions indexed by module id.
func (sp *SP) PackNaive(w, h []int) (x, y []int) {
	n := sp.N()
	x = make([]int, n)
	y = make([]int, n)
	// Horizontal: process in alpha order; a is left of b iff a
	// precedes b in both sequences.
	for ia := 0; ia < n; ia++ {
		b := sp.Alpha[ia]
		best := 0
		for ja := 0; ja < ia; ja++ {
			a := sp.Alpha[ja]
			if sp.posB[a] < sp.posB[b] && x[a]+w[a] > best {
				best = x[a] + w[a]
			}
		}
		x[b] = best
	}
	// Vertical: process in reverse alpha order; a is below b iff a
	// succeeds b in alpha and precedes it in beta.
	for ia := n - 1; ia >= 0; ia-- {
		b := sp.Alpha[ia]
		best := 0
		for ja := n - 1; ja > ia; ja-- {
			a := sp.Alpha[ja]
			if sp.posB[a] < sp.posB[b] && y[a]+h[a] > best {
				best = y[a] + h[a]
			}
		}
		y[b] = best
	}
	return x, y
}

// PackWorkspace holds the reusable buffers of the FAST-SP packer: the
// vEB priority queue (whose lazily allocated cluster structure is the
// dominant allocation cost of a packing evaluation) and the running
// edge values. A workspace reused across PackInto calls makes packing
// allocation-free at steady state. The zero value is ready to use. A
// workspace must not be shared between concurrent packings.
type PackWorkspace struct {
	x, y, vals []int
	t          *veb.Tree
}

// ensure sizes the buffers for n modules.
func (ws *PackWorkspace) ensure(n int) {
	if cap(ws.x) < n {
		ws.x = make([]int, n)
		ws.y = make([]int, n)
		ws.vals = make([]int, n)
	}
	ws.x, ws.y, ws.vals = ws.x[:n], ws.y[:n], ws.vals[:n]
	if ws.t == nil || ws.t.Universe() < n {
		ws.t = veb.New(n)
	}
}

// PackInto converts the sequence-pair into lower-left module
// coordinates using ws for every intermediate buffer. The returned
// slices are owned by the workspace and overwritten by the next
// PackInto on the same workspace.
func (sp *SP) PackInto(ws *PackWorkspace, w, h []int) (x, y []int) {
	n := sp.N()
	ws.ensure(n)
	sp.packLCSInto(ws, ws.x, w, false)
	sp.packLCSInto(ws, ws.y, h, true)
	return ws.x, ws.y
}

// Pack converts the sequence-pair into lower-left module coordinates
// using the weighted longest-common-subsequence formulation (Tang/Wong
// FAST-SP [26]) with a van Emde Boas priority queue over beta
// positions, giving O(n log log n) per evaluation — the complexity the
// paper quotes for symmetric placement evaluation.
//
// The returned slices are freshly allocated and owned by the caller;
// the queue and edge-value scratch are cached on the SP and reused by
// later evaluations, so repeated packing of one (mutating) SP does not
// re-build the vEB structure. Packing therefore must not be invoked
// concurrently on one SP; concurrent searches should use distinct SPs
// (see anneal.ParallelAnneal) or explicit PackInto workspaces.
func (sp *SP) Pack(w, h []int) (x, y []int) {
	n := sp.N()
	if sp.pw == nil {
		sp.pw = &PackWorkspace{}
	}
	sp.pw.ensure(n)
	x = make([]int, n)
	y = make([]int, n)
	sp.packLCSInto(sp.pw, x, w, false)
	sp.packLCSInto(sp.pw, y, h, true)
	return x, y
}

// packLCSInto computes one coordinate axis into coord. For x it scans
// alpha forward; for y (reverse=true) it scans alpha backward. In both
// cases the "dominates" relation on already-scanned modules is
// "smaller beta position", so a single predecessor query on a vEB tree
// keyed by beta position yields the coordinate.
func (sp *SP) packLCSInto(ws *PackWorkspace, coord, dim []int, reverse bool) {
	order := sp.Alpha
	n := len(order)
	if n == 0 {
		return
	}
	t, vals := ws.t, ws.vals
	t.Clear()
	scan := func(m int) {
		p := sp.posB[m]
		c := 0
		if pred := t.Predecessor(p); pred >= 0 {
			c = vals[pred]
		}
		coord[m] = c
		end := c + dim[m]
		t.Insert(p)
		vals[p] = end
		// Remove dominated entries: larger keys with no larger value,
		// so values stay strictly increasing in key.
		for q := t.Successor(p); q >= 0 && vals[q] <= end; q = t.Successor(p) {
			t.Delete(q)
		}
	}
	if reverse {
		for i := n - 1; i >= 0; i-- {
			scan(order[i])
		}
	} else {
		for i := 0; i < n; i++ {
			scan(order[i])
		}
	}
}

// Span returns the total width and height of a packing given the
// coordinates and dimensions.
func Span(x, y, w, h []int) (totalW, totalH int) {
	for i := range x {
		if x[i]+w[i] > totalW {
			totalW = x[i] + w[i]
		}
		if y[i]+h[i] > totalH {
			totalH = y[i] + h[i]
		}
	}
	return totalW, totalH
}

// Placement packs the sequence-pair and returns a named placement.
// names, w and h are indexed by module id and must all have length
// sp.N().
func (sp *SP) Placement(names []string, w, h []int) (geom.Placement, error) {
	n := sp.N()
	if len(names) != n || len(w) != n || len(h) != n {
		return nil, fmt.Errorf("seqpair: names/w/h length mismatch with %d modules", n)
	}
	x, y := sp.Pack(w, h)
	p := geom.Placement{}
	for i := 0; i < n; i++ {
		p[names[i]] = geom.NewRect(x[i], y[i], w[i], h[i])
	}
	return p, nil
}
