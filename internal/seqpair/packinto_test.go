package seqpair

import (
	"math/rand"
	"testing"
)

// TestPackIntoMatchesNaive differential-tests the workspace packer
// against the O(n²) longest-path oracle with a single reused
// workspace, across random codes and perturbation sequences — the
// dirty-reuse pattern of the annealing inner loop.
func TestPackIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var ws PackWorkspace // shared across every check on purpose
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(24)
		sp := New(n)
		sp.Shuffle(rng)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(30)
			h[i] = 1 + rng.Intn(30)
		}
		for step := 0; step < 15; step++ {
			nx, ny := sp.PackNaive(w, h)
			x, y := sp.PackInto(&ws, w, h)
			for i := 0; i < n; i++ {
				if x[i] != nx[i] || y[i] != ny[i] {
					t.Fatalf("n=%d step=%d module %d: PackInto (%d,%d), naive (%d,%d)",
						n, step, i, x[i], y[i], nx[i], ny[i])
				}
			}
			// Pack (caller-owned slices, cached scratch) must agree too.
			px, py := sp.Pack(w, h)
			for i := 0; i < n; i++ {
				if px[i] != nx[i] || py[i] != ny[i] {
					t.Fatalf("n=%d step=%d module %d: Pack (%d,%d), naive (%d,%d)",
						n, step, i, px[i], py[i], nx[i], ny[i])
				}
			}
			if n >= 2 {
				i, j := rng.Intn(n), rng.Intn(n-1)
				if j >= i {
					j++
				}
				if rng.Intn(2) == 0 {
					sp.SwapAlpha(i, j)
				} else {
					sp.SwapBeta(i, j)
				}
			}
		}
	}
}

// TestPackSymmetricWorkspaceReuse checks that the solver scratch
// cached on the SP never leaks state between evaluations: packing the
// same mutating code sequence on one SP must match a fresh SP packing
// the same code.
func TestPackSymmetricWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 8
	groups := []Group{{Pairs: [][2]int{{0, 1}, {2, 3}}, Selfs: []int{4}}}
	w := []int{6, 6, 5, 5, 4, 7, 3, 9}
	h := []int{4, 4, 8, 8, 6, 5, 7, 2}
	sp := RandomSF(n, groups, rng)
	for step := 0; step < 200; step++ {
		x1, y1, err1 := sp.PackSymmetric(w, h, groups)
		fresh, err := FromSequences(sp.Alpha, sp.Beta)
		if err != nil {
			t.Fatal(err)
		}
		x2, y2, err2 := fresh.PackSymmetric(w, h, groups)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: reused ws err=%v, fresh err=%v", step, err1, err2)
		}
		if err1 == nil {
			for i := 0; i < n; i++ {
				if x1[i] != x2[i] || y1[i] != y2[i] {
					t.Fatalf("step %d module %d: reused (%d,%d), fresh (%d,%d)",
						step, i, x1[i], y1[i], x2[i], y2[i])
				}
			}
		}
		sp.PerturbSF(rng, groups)
	}
}

// TestSaveLoadState checks the exact-undo contract on sequences.
func TestSaveLoadState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var st State
	sp := New(12)
	sp.Shuffle(rng)
	for step := 0; step < 100; step++ {
		before := sp.Clone()
		sp.SaveState(&st)
		sp.Shuffle(rng)
		sp.LoadState(&st)
		if !sp.Equal(before) {
			t.Fatalf("step %d: LoadState did not restore the code", step)
		}
		for m := 0; m < sp.N(); m++ {
			if sp.PosAlpha(m) != before.PosAlpha(m) || sp.PosBeta(m) != before.PosBeta(m) {
				t.Fatalf("step %d: inverse permutations diverged at module %d", step, m)
			}
		}
		sp.Shuffle(rng) // drift
	}
}
