package seqpair

import (
	"fmt"

	"repro/internal/geom"
)

// PackSymmetric converts a symmetric-feasible sequence-pair into a
// geometrically symmetric placement: every symmetry group ends up
// mirrored about its own vertical axis (Fig. 1 of the paper).
//
// Horizontal coordinates come from a small parametric longest-path
// problem. Per group g there is an axis variable A_g (in doubled
// coordinates) and per pair p a half-span r_p ≥ 0, so the doubled
// centers are A_g − r_p (left member), A_g + r_p (right member) and
// A_g (self-symmetric); free modules have their own center variables.
// Every left-of relation of the sequence pair becomes an inequality.
// Inequalities between members of one group reduce to constraints on
// the half-spans alone (the axis cancels); the rest form a longest-path
// system over {axes, free centers} whose edge weights depend linearly
// on the half-spans. A positive cycle in that system (always through an
// axis) is eliminated by raising a half-span that appears with negative
// coefficient on the cycle — the algebraic witness that the pair must
// straddle the cycle's material. For symmetric-feasible codes this
// terminates with the most compact symmetric placement consistent with
// the code; for infeasible codes it reports an error.
//
// Symmetric pair members must have identical dimensions, and all
// self-symmetric modules of one group must have widths of equal parity
// (otherwise no common integer axis exists).
//
// Property (1) guarantees feasibility for a single symmetry group. With
// several groups, cross-group relations can make simultaneous mirror
// symmetry impossible (e.g. group 1's left member below group 0's left
// member while group 0's right member is below group 1's right member
// forces y ≥ y + h₁ + h₂); such codes are detected and reported as
// errors, and a stochastic placer should treat them as rejected moves.
// The returned slices are freshly allocated and owned by the caller;
// all solver scratch (classification tables, constraint systems,
// longest-path buffers) is cached on the SP and reused by later
// evaluations, so the annealing inner loop stops allocating. Symmetric
// packing therefore must not be invoked concurrently on one SP.
func (sp *SP) PackSymmetric(w, h []int, groups []Group) (x, y []int, err error) {
	n := sp.N()
	if err := ValidateGroups(n, groups); err != nil {
		return nil, nil, err
	}
	if sp.sym == nil {
		sp.sym = &symWorkspace{}
	}
	cls := &sp.sym.cls
	if err := cls.classify(sp, w, h, groups); err != nil {
		return nil, nil, err
	}
	x = make([]int, n)
	y = make([]int, n)
	if err := cls.solveX(sp, w, sp.sym, x); err != nil {
		return nil, nil, err
	}
	if err := cls.solveY(sp, h, sp.sym, y); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// symWorkspace carries every reusable buffer of the symmetric packer.
type symWorkspace struct {
	cls           classifier
	varOf, parity []int
	vals, pred    []int
	rules         []rRule
	edges         []edge
	coef          []int // per-pair net coefficient along a positive cycle
	lbY           []int
}

// resizeInts returns s with length n, reallocating only on growth.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Module roles within the symmetric packing.
const (
	roleFree = iota
	roleLeft
	roleRight
	roleSelf
)

// pairInfo is one symmetric pair with its half-span variable.
type pairInfo struct {
	g    int // group index
	a, b int // left member, right member (by sequence-pair order)
	r    int // half-span in doubled coordinates
	par  int // required parity of r
}

// classifier holds the per-module decomposition of a symmetric packing
// problem. Its slices are reused across classify calls.
type classifier struct {
	role    []int
	groupOf []int
	pairOf  []int
	pairs   []pairInfo
	parAxis []int // axis parity per group
	nGroups int
}

func (c *classifier) classify(sp *SP, w, h []int, groups []Group) error {
	n := sp.N()
	c.role = resizeInts(c.role, n)
	for i := range c.role {
		c.role[i] = roleFree
	}
	c.groupOf = resizeInts(c.groupOf, n)
	c.pairOf = resizeInts(c.pairOf, n)
	c.parAxis = resizeInts(c.parAxis, len(groups))
	c.pairs = c.pairs[:0]
	c.nGroups = len(groups)
	for gi, g := range groups {
		c.parAxis[gi] = -1
		for _, s := range g.Selfs {
			if c.parAxis[gi] == -1 {
				c.parAxis[gi] = w[s] & 1
			} else if c.parAxis[gi] != w[s]&1 {
				return fmt.Errorf("seqpair: self-symmetric modules of group %d have mixed width parity", gi)
			}
			c.role[s] = roleSelf
			c.groupOf[s] = gi
		}
	}
	for gi, g := range groups {
		if c.parAxis[gi] == -1 {
			c.parAxis[gi] = 0
		}
		for _, pr := range g.Pairs {
			a, b := pr[0], pr[1]
			if w[a] != w[b] || h[a] != h[b] {
				return fmt.Errorf("seqpair: symmetric pair (%d,%d) has unequal dimensions", a, b)
			}
			switch {
			case sp.LeftOf(a, b):
			case sp.LeftOf(b, a):
				a, b = b, a
			default:
				return fmt.Errorf("seqpair: pair (%d,%d) not horizontally related; code is not symmetric-feasible", a, b)
			}
			pv := pairInfo{g: gi, a: a, b: b}
			pv.par = (c.parAxis[gi] ^ (w[a] & 1)) & 1
			pv.r = raiseParity(w[a], pv.par) // r ≥ w: members must not overlap
			c.role[a], c.role[b] = roleLeft, roleRight
			c.groupOf[a], c.groupOf[b] = gi, gi
			c.pairOf[a], c.pairOf[b] = len(c.pairs), len(c.pairs)
			c.pairs = append(c.pairs, pv)
		}
	}
	return nil
}

func raiseParity(v, par int) int {
	if v&1 != par {
		v++
	}
	return v
}

// rRule is one constraint on half-spans derived from a left-of
// relation between two members of the same group.
type rRule struct {
	kind int // 0: r_p ≥ c; 1: r_p ≥ r_q + c; 2: r_p ≥ c − r_q
	p, q int
	c    int
}

// edge is a parametric longest-path edge: val[to] ≥ val[from] + base
// + Σ coef_p·r_p, with at most two half-span terms.
type edge struct {
	from, to int
	base     int
	rp       [2]int // pair indices, -1 = unused
	rc       [2]int // coefficients ±1
}

func (e *edge) weight(pairs []pairInfo) int {
	w := e.base
	for k := 0; k < 2; k++ {
		if e.rp[k] >= 0 {
			w += e.rc[k] * pairs[e.rp[k]].r
		}
	}
	return w
}

// solveX computes the horizontal coordinates into x, drawing all
// scratch from ws.
func (c *classifier) solveX(sp *SP, w []int, ws *symWorkspace, x []int) error {
	n := sp.N()
	// Variable ids: 0..nGroups-1 are axes, then one per free module.
	varOf := resizeInts(ws.varOf, n)
	nv := c.nGroups
	parity := append(ws.parity[:0], c.parAxis...)
	for m := 0; m < n; m++ {
		if c.role[m] == roleFree {
			varOf[m] = nv
			parity = append(parity, w[m]&1)
			nv++
		} else {
			varOf[m] = c.groupOf[m]
		}
	}
	// offCoef: contribution of the module's pair half-span to its
	// doubled center: center2(m) = val[varOf[m]] + offCoef(m)·r.
	offCoef := func(m int) int {
		switch c.role[m] {
		case roleLeft:
			return -1
		case roleRight:
			return 1
		}
		return 0
	}

	rules := ws.rules[:0]
	edges := ws.edges[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !sp.LeftOf(i, j) {
				continue
			}
			cost := w[i] + w[j]
			if varOf[i] == varOf[j] && c.role[i] != roleFree {
				// Same group: axis cancels; constrain half-spans.
				ri, rj := c.role[i], c.role[j]
				switch {
				case ri == roleLeft && rj == roleLeft:
					rules = append(rules, rRule{kind: 1, p: c.pairOf[i], q: c.pairOf[j], c: cost})
				case ri == roleLeft && rj == roleRight && c.pairOf[i] == c.pairOf[j]:
					// a left-of b of the same pair: 2r ≥ cost.
					rules = append(rules, rRule{kind: 0, p: c.pairOf[i], c: (cost + 1) / 2})
				case ri == roleLeft && rj == roleRight:
					rules = append(rules, rRule{kind: 2, p: c.pairOf[j], q: c.pairOf[i], c: cost})
				case ri == roleLeft && rj == roleSelf:
					rules = append(rules, rRule{kind: 0, p: c.pairOf[i], c: cost})
				case ri == roleRight && rj == roleRight:
					rules = append(rules, rRule{kind: 1, p: c.pairOf[j], q: c.pairOf[i], c: cost})
				case ri == roleSelf && rj == roleRight:
					rules = append(rules, rRule{kind: 0, p: c.pairOf[j], c: cost})
				default:
					ws.rules, ws.edges = rules, edges
					return fmt.Errorf("seqpair: members %d,%d of one symmetry group cannot be ordered; code is not symmetric-feasible", i, j)
				}
				continue
			}
			e := edge{from: varOf[i], to: varOf[j], base: cost, rp: [2]int{-1, -1}}
			k := 0
			if ci := offCoef(i); ci != 0 {
				e.rp[k], e.rc[k] = c.pairOf[i], ci
				k++
			}
			if cj := offCoef(j); cj != 0 {
				e.rp[k], e.rc[k] = c.pairOf[j], -cj
				k++
			}
			edges = append(edges, e)
		}
	}
	// Retain grown buffers for the next evaluation.
	ws.varOf, ws.parity, ws.rules, ws.edges = varOf, parity, rules, edges

	if err := c.propagateR(rules); err != nil {
		return err
	}

	// Lower bounds (x ≥ 0 ⇒ center2 ≥ width; for a left member the
	// axis must clear r + w).
	lower := func(vals []int) {
		for m := 0; m < n; m++ {
			v := varOf[m]
			var lb int
			switch c.role[m] {
			case roleLeft:
				lb = c.pairs[c.pairOf[m]].r + w[m]
			case roleRight:
				continue // implied by the left member's bound
			default:
				lb = w[m]
			}
			if lb = raiseParity(lb, parity[v]); vals[v] < lb {
				vals[v] = lb
			}
		}
	}

	ws.vals = resizeInts(ws.vals, nv)
	ws.pred = resizeInts(ws.pred, nv)
	ws.coef = resizeInts(ws.coef, len(c.pairs))
	maxCycleFixes := 8*len(c.pairs) + 16
	for fix := 0; ; fix++ {
		if fix > maxCycleFixes {
			return fmt.Errorf("seqpair: symmetric x packing did not converge; code is not symmetric-feasible")
		}
		vals := ws.vals
		for i := range vals {
			vals[i] = 0
		}
		lower(vals)
		pred := ws.pred // last edge that raised each variable
		for i := range pred {
			pred[i] = -1
		}
		changedLast := -1
		for round := 0; round <= nv; round++ {
			changedLast = -1
			for ei := range edges {
				e := &edges[ei]
				cand := raiseParity(vals[e.from]+e.weight(c.pairs), parity[e.to])
				if cand > vals[e.to] {
					vals[e.to] = cand
					pred[e.to] = ei
					changedLast = e.to
				}
			}
			lower(vals)
			if changedLast == -1 {
				break
			}
		}
		if changedLast == -1 {
			// Converged: extract coordinates.
			for m := 0; m < n; m++ {
				c2 := vals[varOf[m]]
				if co := offCoef(m); co != 0 {
					c2 += co * c.pairs[c.pairOf[m]].r
				}
				if (c2-w[m])&1 != 0 {
					return fmt.Errorf("seqpair: internal parity error for module %d", m)
				}
				x[m] = (c2 - w[m]) / 2
			}
			return nil
		}
		// Positive cycle: walk predecessors nv steps to land on the
		// cycle, then collect it.
		v := changedLast
		for i := 0; i < nv; i++ {
			if pred[v] < 0 {
				return fmt.Errorf("seqpair: symmetric x packing diverged without a cycle witness; code is not symmetric-feasible")
			}
			v = edges[pred[v]].from
		}
		start := v
		coef := ws.coef
		for i := range coef {
			coef[i] = 0
		}
		gain := 0
		for steps := 0; ; steps++ {
			if pred[v] < 0 || steps > nv {
				return fmt.Errorf("seqpair: symmetric x packing diverged without a cycle witness; code is not symmetric-feasible")
			}
			e := &edges[pred[v]]
			gain += e.weight(c.pairs)
			for k := 0; k < 2; k++ {
				if e.rp[k] >= 0 {
					coef[e.rp[k]] += e.rc[k]
				}
			}
			v = e.from
			if v == start {
				break
			}
		}
		// Raise a half-span with negative net coefficient to kill the
		// cycle's gain; if none exists the system is infeasible.
		bestP, bestC := -1, 0
		for p, k := range coef {
			if k < bestC {
				bestP, bestC = p, k
			}
		}
		if bestP < 0 || gain <= 0 {
			return fmt.Errorf("seqpair: unbreakable positive cycle; code is not symmetric-feasible")
		}
		inc := (gain + (-bestC) - 1) / (-bestC)
		pv := &c.pairs[bestP]
		pv.r = raiseParity(pv.r+inc, pv.par)
		if err := c.propagateR(rules); err != nil {
			return err
		}
	}
}

// propagateR settles the half-span constraint system by monotone
// sweeps: lower bounds, differences (r_p ≥ r_q + c) and sums
// (r_p ≥ c − r_q). A diverging difference chain means the code is not
// symmetric-feasible.
func (c *classifier) propagateR(rules []rRule) error {
	maxSweeps := 2*len(c.pairs) + 8
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, ru := range rules {
			pv := &c.pairs[ru.p]
			need := ru.c
			switch ru.kind {
			case 1:
				need = c.pairs[ru.q].r + ru.c
			case 2:
				need = ru.c - c.pairs[ru.q].r
			}
			if need > pv.r {
				pv.r = raiseParity(need, pv.par)
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("seqpair: half-span constraints diverge; code is not symmetric-feasible")
}

// solveY computes vertical coordinates: longest-path packing with
// pair-equalizing lower bounds. Pair members are horizontally related,
// so raising one member's y never feeds back into its twin; the loop
// converges for every symmetric-feasible code.
func (c *classifier) solveY(sp *SP, h []int, ws *symWorkspace, y []int) error {
	n := sp.N()
	lbY := resizeInts(ws.lbY, n)
	ws.lbY = lbY
	for i := range lbY {
		lbY[i] = 0
	}
	maxIters := n + len(c.pairs) + 8
	for iter := 0; iter < maxIters; iter++ {
		sp.packWithLB(y, sp.Alpha, h, lbY, true)
		changed := false
		for i := range c.pairs {
			pv := &c.pairs[i]
			if y[pv.a] < y[pv.b] {
				lbY[pv.a] = y[pv.b]
				changed = true
			} else if y[pv.b] < y[pv.a] {
				lbY[pv.b] = y[pv.a]
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("seqpair: symmetric y packing did not converge; code is not symmetric-feasible")
}

// packWithLB is the O(n²) longest-path packing with per-module lower
// bounds, used by the symmetric constructor's vertical pass. The
// result is written into coord, which must have length len(order).
func (sp *SP) packWithLB(coord []int, order, dim, lb []int, reverse bool) {
	n := len(order)
	process := func(i int) {
		b := order[i]
		best := lb[b]
		if reverse {
			for j := n - 1; j > i; j-- {
				a := order[j]
				if sp.posB[a] < sp.posB[b] && coord[a]+dim[a] > best {
					best = coord[a] + dim[a]
				}
			}
		} else {
			for j := 0; j < i; j++ {
				a := order[j]
				if sp.posB[a] < sp.posB[b] && coord[a]+dim[a] > best {
					best = coord[a] + dim[a]
				}
			}
		}
		coord[b] = best
	}
	if reverse {
		for i := n - 1; i >= 0; i-- {
			process(i)
		}
	} else {
		for i := 0; i < n; i++ {
			process(i)
		}
	}
}

// SymmetricPlacement packs symmetrically and returns a named
// placement. names, w, h are indexed by module id.
func (sp *SP) SymmetricPlacement(names []string, w, h []int, groups []Group) (geom.Placement, error) {
	n := sp.N()
	if len(names) != n || len(w) != n || len(h) != n {
		return nil, fmt.Errorf("seqpair: names/w/h length mismatch with %d modules", n)
	}
	x, y, err := sp.PackSymmetric(w, h, groups)
	if err != nil {
		return nil, err
	}
	p := geom.Placement{}
	for i := 0; i < n; i++ {
		p[names[i]] = geom.NewRect(x[i], y[i], w[i], h[i])
	}
	return p, nil
}
