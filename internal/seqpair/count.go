package seqpair

import (
	"math/big"
)

// LemmaBound returns the paper's upper bound on the number of
// symmetric-feasible sequence-pairs for n cells and the given symmetry
// groups:
//
//	(n!)² / ((2p₁+s₁)! · … · (2p_G+s_G)!)
//
// For the paper's example (n = 7, one group with p = 2 pairs and s = 2
// self-symmetric cells) this is (7!)²/6! = 35,280, against (7!)² =
// 25,401,600 total sequence-pairs — a 99.86 % reduction of the search
// space.
func LemmaBound(n int, groups []Group) *big.Int {
	num := new(big.Int).MulRange(1, int64(n)) // n!
	num.Mul(num, new(big.Int).MulRange(1, int64(n)))
	for _, g := range groups {
		k := int64(g.Size())
		if k > 1 {
			num.Div(num, new(big.Int).MulRange(1, k))
		}
	}
	return num
}

// TotalSequencePairs returns (n!)², the size of the unrestricted
// search space.
func TotalSequencePairs(n int) *big.Int {
	f := new(big.Int).MulRange(1, int64(n))
	return new(big.Int).Mul(f, f)
}

// forEachPermutation invokes fn with every permutation of 0..n-1.
// The slice passed to fn is reused; fn must not retain it. If fn
// returns false the enumeration stops.
func forEachPermutation(n int, fn func([]int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return fn(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// CountSF exhaustively enumerates all (n!)² sequence-pairs over n
// modules and counts how many satisfy property (1) for every group.
// It verifies the Lemma by brute force; practical for n ≤ 7.
func CountSF(n int, groups []Group) (sf, total int64) {
	sp := New(n)
	forEachPermutation(n, func(alpha []int) bool {
		copy(sp.Alpha, alpha)
		for i, m := range alpha {
			sp.posA[m] = i
		}
		forEachPermutation(n, func(beta []int) bool {
			copy(sp.Beta, beta)
			for i, m := range beta {
				sp.posB[m] = i
			}
			total++
			if sp.SymmetricFeasible(groups) {
				sf++
			}
			return true
		})
		return true
	})
	return sf, total
}

// EnumerateSF invokes fn with every symmetric-feasible sequence-pair
// over n modules. Enumeration walks all α and, for each α, only the β
// that respect each group's forced member order, so the cost is
// proportional to the number of S-F pairs rather than (n!)². The SP
// passed to fn is reused; fn must not retain it. Returning false stops
// the enumeration.
func EnumerateSF(n int, groups []Group, fn func(*SP) bool) {
	sp := New(n)
	inGroup := make([]int, n) // module -> group index + 1, or 0
	for gi, g := range groups {
		for _, m := range g.Members() {
			inGroup[m] = gi + 1
		}
	}
	forEachPermutation(n, func(alpha []int) bool {
		copy(sp.Alpha, alpha)
		for i, m := range alpha {
			sp.posA[m] = i
		}
		// Forced β order per group: sym of reversed α order.
		forced := make([][]int, len(groups))
		for gi, g := range groups {
			ms := sp.membersByAlpha(g)
			k := len(ms)
			f := make([]int, k)
			for i, m := range ms {
				s, _ := g.Sym(m)
				f[k-1-i] = s
			}
			forced[gi] = f
		}
		next := make([]int, len(groups)) // per-group cursor
		beta := make([]int, 0, n)
		used := make([]bool, n)
		var rec func(pos int) bool
		rec = func(pos int) bool {
			if pos == n {
				copy(sp.Beta, beta)
				for i, m := range beta {
					sp.posB[m] = i
				}
				return fn(sp)
			}
			for m := 0; m < n; m++ {
				if used[m] {
					continue
				}
				gi := inGroup[m]
				if gi > 0 {
					// Only the group's next forced member may appear.
					if forced[gi-1][next[gi-1]] != m {
						continue
					}
					next[gi-1]++
					used[m] = true
					beta = append(beta, m)
					if !rec(pos + 1) {
						return false
					}
					beta = beta[:len(beta)-1]
					used[m] = false
					next[gi-1]--
				} else {
					used[m] = true
					beta = append(beta, m)
					if !rec(pos + 1) {
						return false
					}
					beta = beta[:len(beta)-1]
					used[m] = false
				}
			}
			return true
		}
		return rec(0)
	})
}

// CountSFExact counts symmetric-feasible sequence-pairs by the pruned
// enumeration of EnumerateSF. It matches CountSF's sf result while
// touching only S-F codes.
func CountSFExact(n int, groups []Group) int64 {
	var count int64
	EnumerateSF(n, groups, func(*SP) bool {
		count++
		return true
	})
	return count
}
