package bstar

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkIncPack packs t both ways and demands bit-identical
// coordinates — the incremental-vs-full contract, tolerance zero.
func checkIncPack(t_ *testing.T, tr *Tree, iws *IncPackWorkspace, ws *PackWorkspace, tag string) {
	t_.Helper()
	ix, iy := tr.PackIncInto(iws)
	fx, fy := tr.PackInto(ws)
	for m := 0; m < tr.N(); m++ {
		if ix[m] != fx[m] || iy[m] != fy[m] {
			t_.Fatalf("%s: module %d incremental (%d,%d) != full (%d,%d)", tag, m, ix[m], iy[m], fx[m], fy[m])
		}
	}
}

// TestIncPackMatchesFull storms a tree with the placer's full move
// repertoire — rotate/move/swap perturbations, save/undo cycles,
// wholesale invalidation — packing incrementally after each move and
// comparing against the from-scratch contour pack.
func TestIncPackMatchesFull(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 40, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(500 + n)))
			w := make([]int, n)
			h := make([]int, n)
			for i := range w {
				w[i] = 1 + rng.Intn(30)
				h[i] = 1 + rng.Intn(30)
			}
			tr := NewRandom(w, h, rng)
			iws := &IncPackWorkspace{}
			ws := &PackWorkspace{}
			var saved TreeState
			checkIncPack(t, tr, iws, ws, "initial")
			iters := 300
			if n >= 200 {
				iters = 120
			}
			for it := 0; it < iters; it++ {
				switch rng.Intn(4) {
				case 0, 1:
					tr.Perturb(rng)
				case 2: // save → move → pack → undo: compare-based, no re-disturb needed
					tr.SaveState(&saved)
					tr.Perturb(rng)
					checkIncPack(t, tr, iws, ws, fmt.Sprintf("iter %d pre-undo", it))
					tr.LoadState(&saved)
				case 3:
					iws.Invalidate()
					tr.Perturb(rng)
				}
				checkIncPack(t, tr, iws, ws, fmt.Sprintf("iter %d", it))
			}
		})
	}
}

// TestIncPackCleanCacheReturnsSame pins that packing an undisturbed
// tree returns the cached buffers untouched.
func TestIncPackCleanCacheReturnsSame(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 50
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(20)
		h[i] = 1 + rng.Intn(20)
	}
	tr := NewRandom(w, h, rng)
	iws := &IncPackWorkspace{}
	x1, y1 := tr.PackIncInto(iws)
	c0, c1 := x1[0], y1[0]
	x2, y2 := tr.PackIncInto(iws)
	if &x2[0] != &x1[0] || &y2[0] != &y1[0] {
		t.Fatal("clean-cache pack rebuilt the coordinate buffers")
	}
	if x2[0] != c0 || y2[0] != c1 {
		t.Fatal("clean-cache pack changed coordinates")
	}
}

// BenchmarkBStarIncrementalPack measures per-move pack cost under the
// annealer's move distribution: prefix-reuse incremental vs full
// contour pack.
func BenchmarkBStarIncrementalPack(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		build := func() (*Tree, *rand.Rand) {
			rng := rand.New(rand.NewSource(77))
			w := make([]int, n)
			h := make([]int, n)
			for i := range w {
				w[i] = 1 + rng.Intn(40)
				h[i] = 1 + rng.Intn(40)
			}
			return NewRandom(w, h, rng), rng
		}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			tr, rng := build()
			iws := &IncPackWorkspace{}
			tr.PackIncInto(iws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Perturb(rng)
				tr.PackIncInto(iws)
			}
		})
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			tr, rng := build()
			ws := &PackWorkspace{}
			tr.PackInto(ws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Perturb(rng)
				tr.PackInto(ws)
			}
		})
	}
}
