package bstar

// Incremental B*-tree packing by prefix reuse.
//
// Contour packing is a pre-order traversal: step s places module m_s
// at an x fixed by its parent frame and a y read from the contour.
// Every input to step s — the module id, its x, its effective dims —
// is a pure function of the tree and the steps before it, so if the
// first L steps of this pack are identical to the first L steps of
// the previous pack, their coordinates and the contour state after
// them are identical too, and only steps L..n−1 need to touch the
// contour.
//
// IncPackWorkspace therefore caches the per-step record (module, x,
// width, height) of the last pack plus contour checkpoints on a
// coarse grid. PackIncInto walks the traversal comparing records —
// a few integer compares per step, no contour work — until the first
// mismatch, restores the nearest checkpoint at or before it, replays
// the few cached records between checkpoint and mismatch, and packs
// normally from there while refreshing the cache.
//
// The comparison is against the live tree, so no dirty-window
// bookkeeping is needed: any perturbation — rotate, move, swap, undo,
// restore — is detected at the first step it changes. A move that
// disturbs an early step degrades to a full pack; the win comes from
// the average case, where the perturbed subtree sits halfway through
// the traversal and the whole prefix costs only compares. Unlike the
// sequence-pair incremental packer there is no early exit after the
// disturbance (a changed contour can shift every later y), so the
// expected speedup is the ~2× of halving the contour work, not an
// order of magnitude.
type IncPackWorkspace struct {
	PackWorkspace
	valid bool
	// Per-step traversal records of the last pack: module id, x, and
	// effective dimensions, indexed by pre-order step.
	pm, px, pw, ph []int
	// cks[g] is the contour before step g·ck.
	cks [][]contourSeg
	ck  int
}

// incCkStride returns the checkpoint grid stride for n modules: wide
// enough that checkpoint copies stay cheap, tight enough that replay
// after a restore is short.
func incCkStride(n int) int {
	if s := n / 64; s > 64 {
		return s
	}
	return 64
}

// Invalidate drops the cache; the next PackIncInto packs from
// scratch.
func (ws *IncPackWorkspace) Invalidate() { ws.valid = false }

// saveCk copies the current contour into checkpoint slot g, reusing
// the slot's capacity.
func (ws *IncPackWorkspace) saveCk(g int) {
	ws.cks[g] = append(ws.cks[g][:0], ws.contour...)
}

// record stores step s's traversal record.
func (ws *IncPackWorkspace) record(s, m, x, w, h int) {
	ws.pm[s], ws.px[s], ws.pw[s], ws.ph[s] = m, x, w, h
}

// pushChildren pushes module m's children in pre-order (right first so
// left pops first), mirroring PackInto.
func pushChildren(t *Tree, stack []packFrame, m, x, w int) []packFrame {
	if r := t.Right[m]; r != none {
		stack = append(stack, packFrame{r, x})
	}
	if l := t.Left[m]; l != none {
		stack = append(stack, packFrame{l, x + w})
	}
	return stack
}

// PackIncInto is PackInto with prefix reuse against ws's cached
// traversal. Coordinates are bit-identical to PackInto on the same
// tree (see TestIncPackMatchesFull). The returned slices are owned by
// the workspace and overwritten by the next pack.
func (t *Tree) PackIncInto(ws *IncPackWorkspace) (x, y []int) {
	n := t.N()
	ck := incCkStride(n)
	if n == 0 || t.Root == none {
		ws.valid = false
		return t.PackInto(&ws.PackWorkspace)
	}
	if !ws.valid || len(ws.pm) != n || ws.ck != ck {
		return ws.fullPack(t, ck)
	}
	x, y = ws.x, ws.y
	// Compare walk: no contour work while the traversal matches the
	// cached records.
	stack := append(ws.stack[:0], packFrame{t.Root, 0})
	s := 0
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		w, h := t.dims(f.m)
		if f.m != ws.pm[s] || f.x != ws.px[s] || w != ws.pw[s] || h != ws.ph[s] {
			break // first divergent step; frame stays on the stack
		}
		stack = stack[:len(stack)-1]
		stack = pushChildren(t, stack, f.m, f.x, w)
		s++
	}
	if len(stack) == 0 {
		// Traversal fully matched: the previous coordinates stand.
		ws.stack = stack
		return x, y
	}
	// Rebuild the contour as of step s: nearest checkpoint at or
	// before it, then replay the cached records in between.
	g := s / ck
	ws.contour = append(ws.contour[:0], ws.cks[g]...)
	for r := g * ck; r < s; r++ {
		ws.place(ws.px[r], ws.px[r]+ws.pw[r], ws.ph[r])
	}
	x, y, stack = ws.packFrom(t, stack, s)
	ws.stack = stack[:0]
	return x, y
}

// fullPack packs from scratch, (re)building the record cache and
// checkpoints.
func (ws *IncPackWorkspace) fullPack(t *Tree, ck int) (x, y []int) {
	n := t.N()
	ws.ensure(n)
	ws.ck = ck
	if cap(ws.pm) < n {
		ws.pm = make([]int, n)
		ws.px = make([]int, n)
		ws.pw = make([]int, n)
		ws.ph = make([]int, n)
	}
	ws.pm, ws.px, ws.pw, ws.ph = ws.pm[:n], ws.px[:n], ws.pw[:n], ws.ph[:n]
	if slots := (n + ck - 1) / ck; len(ws.cks) < slots {
		ws.cks = append(ws.cks, make([][]contourSeg, slots-len(ws.cks))...)
	}
	ws.contour = append(ws.contour[:0], contourSeg{0, int(^uint(0) >> 1), 0})
	stack := append(ws.stack[:0], packFrame{t.Root, 0})
	x, y, stack = ws.packFrom(t, stack, 0)
	ws.stack = stack[:0]
	return x, y
}

// packFrom runs the live contour pack from step s with the given
// traversal stack, refreshing records and checkpoints as it goes.
func (ws *IncPackWorkspace) packFrom(t *Tree, stack []packFrame, s int) ([]int, []int, []packFrame) {
	x, y := ws.x, ws.y
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s%ws.ck == 0 {
			ws.saveCk(s / ws.ck)
		}
		w, h := t.dims(f.m)
		ws.record(s, f.m, f.x, w, h)
		x[f.m] = f.x
		y[f.m] = ws.place(f.x, f.x+w, h)
		stack = pushChildren(t, stack, f.m, f.x, w)
		s++
	}
	ws.valid = true
	return x, y, stack
}
