package bstar

// shape is one unlabeled binary tree shape.
type shape struct {
	left, right *shape
}

// shapeSize returns the node count of a shape.
func shapeSize(s *shape) int {
	if s == nil {
		return 0
	}
	return 1 + shapeSize(s.left) + shapeSize(s.right)
}

// genShapes returns all binary tree shapes with n nodes (Catalan(n)
// of them). Shapes share subtrees; treat them as read-only.
func genShapes(n int) []*shape {
	if n == 0 {
		return []*shape{nil}
	}
	var out []*shape
	for k := 0; k < n; k++ {
		lefts := genShapes(k)
		rights := genShapes(n - 1 - k)
		for _, l := range lefts {
			for _, r := range rights {
				out = append(out, &shape{l, r})
			}
		}
	}
	return out
}

// EnumerateTrees invokes fn with every distinct B*-tree over the given
// module dimensions: all Catalan(n) shapes times all n! label
// assignments, n!·Catalan(n) trees total (57,657,600 for n = 8 — use
// only for small n). Rotation flags stay false; callers wanting
// orientations enumerate Rot masks themselves. The Tree passed to fn
// is reused; fn must not retain it. Returning false stops the
// enumeration.
func EnumerateTrees(w, h []int, fn func(*Tree) bool) {
	n := len(w)
	t := New(w, h)
	if n == 0 {
		fn(t)
		return
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	shapes := genShapes(n)
	var permute func(k int) bool
	assign := func(s *shape) {
		// Map labels to shape positions in pre-order; rebuild links.
		for i := 0; i < n; i++ {
			t.Left[i], t.Right[i], t.Parent[i] = none, none, none
		}
		idx := 0
		var build func(s *shape) int
		build = func(s *shape) int {
			if s == nil {
				return none
			}
			m := labels[idx]
			idx++
			if l := build(s.left); l != none {
				t.Left[m] = l
				t.Parent[l] = m
			}
			if r := build(s.right); r != none {
				t.Right[m] = r
				t.Parent[r] = m
			}
			return m
		}
		t.Root = build(s)
	}
	var current *shape
	permute = func(k int) bool {
		if k == n {
			assign(current)
			return fn(t)
		}
		for i := k; i < n; i++ {
			labels[k], labels[i] = labels[i], labels[k]
			ok := permute(k + 1)
			labels[k], labels[i] = labels[i], labels[k]
			if !ok {
				return false
			}
		}
		return true
	}
	for _, s := range shapes {
		current = s
		if !permute(0) {
			return
		}
	}
}
