// Package bstar implements B*-trees (Chang et al. [5]), the ordered
// binary-tree representation for compacted non-slicing floorplans used
// throughout Sections III and IV of the paper. A B*-tree node is a
// module; a left child sits immediately to the right of its parent, a
// right child sits immediately above it at the same x. Packing a tree
// into coordinates uses the standard horizontal-contour sweep in
// amortized linear time.
//
// The package provides the representation, contour packing, the three
// classic perturbations (rotate, move, swap), exhaustive enumeration
// for small instances, and the combinatorial count of distinct
// placements — n!·Catalan(n), which for 8 modules is the 57,657,600
// quoted in Section IV.
package bstar

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/geom"
)

// none marks an absent child/parent link.
const none = -1

// Tree is a B*-tree over modules 0..n-1. Node i represents module i;
// links are module ids. Widths and heights are stored per module and
// swapped by the rotate perturbation.
type Tree struct {
	Root                int
	Left, Right, Parent []int
	W, H                []int
	Rot                 []bool
}

// New returns a left-skewed chain tree (modules in a single row) over
// the given module dimensions.
func New(w, h []int) *Tree {
	n := len(w)
	if len(h) != n {
		panic("bstar: dimension slices differ in length")
	}
	t := &Tree{
		Root:   none,
		Left:   make([]int, n),
		Right:  make([]int, n),
		Parent: make([]int, n),
		W:      append([]int(nil), w...),
		H:      append([]int(nil), h...),
		Rot:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = none, none, none
	}
	if n > 0 {
		t.Root = 0
		for i := 1; i < n; i++ {
			t.Left[i-1] = i
			t.Parent[i] = i - 1
		}
	}
	return t
}

// NewRandom returns a random B*-tree: modules are inserted in random
// order into random free child slots.
func NewRandom(w, h []int, rng *rand.Rand) *Tree {
	t := New(w, h)
	n := t.N()
	if n <= 1 {
		return t
	}
	// Reset links and rebuild by random insertion.
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = none, none, none
	}
	order := rng.Perm(n)
	t.Root = order[0]
	placed := []int{order[0]}
	for _, m := range order[1:] {
		for {
			p := placed[rng.Intn(len(placed))]
			if t.Left[p] == none && (t.Right[p] == none || rng.Intn(2) == 0) {
				t.Left[p] = m
			} else if t.Right[p] == none {
				t.Right[p] = m
			} else {
				continue
			}
			t.Parent[m] = p
			placed = append(placed, m)
			break
		}
	}
	return t
}

// N returns the number of modules.
func (t *Tree) N() int { return len(t.W) }

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{
		Root:   t.Root,
		Left:   append([]int(nil), t.Left...),
		Right:  append([]int(nil), t.Right...),
		Parent: append([]int(nil), t.Parent...),
		W:      append([]int(nil), t.W...),
		H:      append([]int(nil), t.H...),
		Rot:    append([]bool(nil), t.Rot...),
	}
}

// Validate checks structural integrity: exactly one root, consistent
// parent/child links, all modules reachable, no cycles.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		if t.Root != none {
			return fmt.Errorf("bstar: empty tree with root %d", t.Root)
		}
		return nil
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("bstar: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != none {
		return fmt.Errorf("bstar: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	seen := make([]bool, n)
	count := 0
	var walk func(m int) error
	walk = func(m int) error {
		if m == none {
			return nil
		}
		if m < 0 || m >= n {
			return fmt.Errorf("bstar: link to %d out of range", m)
		}
		if seen[m] {
			return fmt.Errorf("bstar: module %d reached twice", m)
		}
		seen[m] = true
		count++
		for _, c := range [2]int{t.Left[m], t.Right[m]} {
			if c != none {
				if t.Parent[c] != m {
					return fmt.Errorf("bstar: child %d of %d has parent %d", c, m, t.Parent[c])
				}
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("bstar: %d of %d modules reachable", count, n)
	}
	return nil
}

// dims returns the effective width and height of module m, honoring
// its rotation flag.
func (t *Tree) dims(m int) (int, int) {
	if t.Rot[m] {
		return t.H[m], t.W[m]
	}
	return t.W[m], t.H[m]
}

// contourSeg is one segment of the packing contour: the skyline has
// height h over [x1, x2).
type contourSeg struct {
	x1, x2, h int
}

// Pack computes lower-left coordinates for all modules by pre-order
// traversal with a horizontal contour, the standard B*-tree packing.
// It returns x and y indexed by module id.
func (t *Tree) Pack() (x, y []int) {
	n := t.N()
	x = make([]int, n)
	y = make([]int, n)
	if n == 0 || t.Root == none {
		return x, y
	}
	contour := []contourSeg{{0, int(^uint(0) >> 1), 0}}

	// place sets module m at xpos, consulting and updating the contour.
	place := func(m, xpos int) {
		w, h := t.dims(m)
		x[m] = xpos
		xEnd := xpos + w
		// Find max contour height over [xpos, xEnd).
		top := 0
		for _, s := range contour {
			if s.x2 <= xpos || s.x1 >= xEnd {
				continue
			}
			if s.h > top {
				top = s.h
			}
		}
		y[m] = top
		// Replace [xpos, xEnd) with the new height.
		var out []contourSeg
		newSeg := contourSeg{xpos, xEnd, top + h}
		inserted := false
		for _, s := range contour {
			if s.x2 <= xpos || s.x1 >= xEnd {
				out = append(out, s)
				continue
			}
			if s.x1 < xpos {
				out = append(out, contourSeg{s.x1, xpos, s.h})
			}
			if !inserted {
				out = append(out, newSeg)
				inserted = true
			}
			if s.x2 > xEnd {
				out = append(out, contourSeg{xEnd, s.x2, s.h})
			}
		}
		if !inserted {
			out = append(out, newSeg)
		}
		// Keep segments sorted by x1 (they are, given construction)
		// and merge adjacent equal heights.
		contour = contour[:0]
		for _, s := range out {
			if len(contour) > 0 && contour[len(contour)-1].h == s.h && contour[len(contour)-1].x2 == s.x1 {
				contour[len(contour)-1].x2 = s.x2
			} else {
				contour = append(contour, s)
			}
		}
	}

	// Pre-order traversal: left child at parent's right edge, right
	// child at parent's x.
	type frame struct{ m, xpos int }
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		place(f.m, f.xpos)
		w, _ := t.dims(f.m)
		// Push right first so left is processed first (pre-order).
		if r := t.Right[f.m]; r != none {
			stack = append(stack, frame{r, x[f.m]})
		}
		if l := t.Left[f.m]; l != none {
			stack = append(stack, frame{l, x[f.m] + w})
		}
	}
	return x, y
}

// Placement packs the tree and returns a named placement. names is
// indexed by module id.
func (t *Tree) Placement(names []string) (geom.Placement, error) {
	if len(names) != t.N() {
		return nil, fmt.Errorf("bstar: %d names for %d modules", len(names), t.N())
	}
	x, y := t.Pack()
	p := geom.Placement{}
	for i := 0; i < t.N(); i++ {
		w, h := t.dims(i)
		p[names[i]] = geom.NewRect(x[i], y[i], w, h)
	}
	return p, nil
}

// Span packs the tree and returns the bounding width and height.
func (t *Tree) Span() (int, int) {
	x, y := t.Pack()
	var tw, th int
	for i := 0; i < t.N(); i++ {
		w, h := t.dims(i)
		if x[i]+w > tw {
			tw = x[i] + w
		}
		if y[i]+h > th {
			th = y[i] + h
		}
	}
	return tw, th
}

// Area packs the tree and returns the bounding-box area.
func (t *Tree) Area() int64 {
	w, h := t.Span()
	return int64(w) * int64(h)
}

// CountPlacements returns the number of distinct B*-trees over n
// modules: n! · Catalan(n). For n = 8 this is 57,657,600, the figure
// quoted in Section IV of the paper.
func CountPlacements(n int) *big.Int {
	fact := new(big.Int).MulRange(1, int64(n))
	// Catalan(n) = C(2n, n)/(n+1).
	cat := new(big.Int).Binomial(int64(2*n), int64(n))
	cat.Div(cat, big.NewInt(int64(n+1)))
	return fact.Mul(fact, cat)
}
