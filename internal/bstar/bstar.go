// Package bstar implements B*-trees (Chang et al. [5]), the ordered
// binary-tree representation for compacted non-slicing floorplans used
// throughout Sections III and IV of the paper. A B*-tree node is a
// module; a left child sits immediately to the right of its parent, a
// right child sits immediately above it at the same x. Packing a tree
// into coordinates uses the standard horizontal-contour sweep in
// amortized linear time.
//
// The package provides the representation, contour packing, the three
// classic perturbations (rotate, move, swap), exhaustive enumeration
// for small instances, and the combinatorial count of distinct
// placements — n!·Catalan(n), which for 8 modules is the 57,657,600
// quoted in Section IV.
package bstar

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/geom"
)

// none marks an absent child/parent link.
const none = -1

// Tree is a B*-tree over modules 0..n-1. Node i represents module i;
// links are module ids. Widths and heights are stored per module and
// swapped by the rotate perturbation.
type Tree struct {
	Root                int
	Left, Right, Parent []int
	W, H                []int
	Rot                 []bool
}

// New returns a left-skewed chain tree (modules in a single row) over
// the given module dimensions.
func New(w, h []int) *Tree {
	n := len(w)
	if len(h) != n {
		panic("bstar: dimension slices differ in length")
	}
	t := &Tree{
		Root:   none,
		Left:   make([]int, n),
		Right:  make([]int, n),
		Parent: make([]int, n),
		W:      append([]int(nil), w...),
		H:      append([]int(nil), h...),
		Rot:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = none, none, none
	}
	if n > 0 {
		t.Root = 0
		for i := 1; i < n; i++ {
			t.Left[i-1] = i
			t.Parent[i] = i - 1
		}
	}
	return t
}

// NewRandom returns a random B*-tree: modules are inserted in random
// order into random free child slots.
func NewRandom(w, h []int, rng *rand.Rand) *Tree {
	t := New(w, h)
	n := t.N()
	if n <= 1 {
		return t
	}
	// Reset links and rebuild by random insertion.
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = none, none, none
	}
	order := rng.Perm(n)
	t.Root = order[0]
	placed := []int{order[0]}
	for _, m := range order[1:] {
		for {
			p := placed[rng.Intn(len(placed))]
			if t.Left[p] == none && (t.Right[p] == none || rng.Intn(2) == 0) {
				t.Left[p] = m
			} else if t.Right[p] == none {
				t.Right[p] = m
			} else {
				continue
			}
			t.Parent[m] = p
			placed = append(placed, m)
			break
		}
	}
	return t
}

// N returns the number of modules.
func (t *Tree) N() int { return len(t.W) }

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{
		Root:   t.Root,
		Left:   append([]int(nil), t.Left...),
		Right:  append([]int(nil), t.Right...),
		Parent: append([]int(nil), t.Parent...),
		W:      append([]int(nil), t.W...),
		H:      append([]int(nil), t.H...),
		Rot:    append([]bool(nil), t.Rot...),
	}
}

// Validate checks structural integrity: exactly one root, consistent
// parent/child links, all modules reachable, no cycles.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		if t.Root != none {
			return fmt.Errorf("bstar: empty tree with root %d", t.Root)
		}
		return nil
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("bstar: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != none {
		return fmt.Errorf("bstar: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	seen := make([]bool, n)
	count := 0
	var walk func(m int) error
	walk = func(m int) error {
		if m == none {
			return nil
		}
		if m < 0 || m >= n {
			return fmt.Errorf("bstar: link to %d out of range", m)
		}
		if seen[m] {
			return fmt.Errorf("bstar: module %d reached twice", m)
		}
		seen[m] = true
		count++
		for _, c := range [2]int{t.Left[m], t.Right[m]} {
			if c != none {
				if t.Parent[c] != m {
					return fmt.Errorf("bstar: child %d of %d has parent %d", c, m, t.Parent[c])
				}
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("bstar: %d of %d modules reachable", count, n)
	}
	return nil
}

// dims returns the effective width and height of module m, honoring
// its rotation flag.
func (t *Tree) dims(m int) (int, int) {
	if t.Rot[m] {
		return t.H[m], t.W[m]
	}
	return t.W[m], t.H[m]
}

// contourSeg is one segment of the packing contour: the skyline has
// height h over [x1, x2).
type contourSeg struct {
	x1, x2, h int
}

// packFrame is one pending pre-order traversal step.
type packFrame struct{ m, x int }

// PackWorkspace holds the scratch state of one packing evaluation:
// coordinate slices, the contour, and the traversal stack. A workspace
// reused across calls to PackInto makes packing allocation-free once
// the buffers have grown to their steady-state capacity, which is what
// a simulated-annealing inner loop needs. The zero value is ready to
// use. A workspace must not be shared between concurrent packings.
type PackWorkspace struct {
	x, y    []int
	contour []contourSeg
	stack   []packFrame
}

// ensure sizes the coordinate buffers for n modules.
func (ws *PackWorkspace) ensure(n int) {
	if cap(ws.x) < n {
		ws.x = make([]int, n)
		ws.y = make([]int, n)
	}
	ws.x = ws.x[:n]
	ws.y = ws.y[:n]
}

// place consults the contour over [x1, x2), returns the resulting base
// height, and splices the interval to height base+h in place (tail
// segments are shifted with copy rather than rebuilt into a fresh
// slice).
func (ws *PackWorkspace) place(x1, x2, h int) int {
	c := ws.contour
	// First segment overlapping [x1, x2). The contour always spans
	// [0, +inf), so both bounds below are found.
	i := 0
	for c[i].x2 <= x1 {
		i++
	}
	top := 0
	j := i
	for ; j < len(c) && c[j].x1 < x2; j++ {
		if c[j].h > top {
			top = c[j].h
		}
	}
	j-- // last overlapping segment
	// Replacement segments: left remainder, the new plateau, right
	// remainder.
	var repl [3]contourSeg
	k := 0
	if c[i].x1 < x1 {
		repl[k] = contourSeg{c[i].x1, x1, c[i].h}
		k++
	}
	newSeg := contourSeg{x1, x2, top + h}
	// Merge the plateau into the preceding segment when heights match
	// (either the left remainder or the untouched neighbor i-1).
	switch {
	case k > 0 && repl[k-1].h == newSeg.h:
		repl[k-1].x2 = newSeg.x2
	case k == 0 && i > 0 && c[i-1].h == newSeg.h && c[i-1].x2 == newSeg.x1:
		c[i-1].x2 = newSeg.x2
		// Extend the neighbor instead of inserting; splice window
		// starts at i with no plateau segment of its own.
	default:
		repl[k] = newSeg
		k++
	}
	if c[j].x2 > x2 {
		if k > 0 && repl[k-1].h == c[j].h {
			repl[k-1].x2 = c[j].x2
		} else if k == 0 && i > 0 && c[i-1].h == c[j].h {
			c[i-1].x2 = c[j].x2
		} else {
			repl[k] = contourSeg{x2, c[j].x2, c[j].h}
			k++
		}
	}
	// Splice c[i:j+1] -> repl[:k] in place.
	old := j + 1 - i
	n := len(c)
	if d := k - old; d > 0 {
		c = append(c, repl[:d]...) // grow length; values fixed below
		copy(c[j+1+d:], c[j+1:n])
	} else if d < 0 {
		copy(c[j+1+d:], c[j+1:])
		c = c[:n+d]
	}
	copy(c[i:i+k], repl[:k])
	ws.contour = c
	return top
}

// PackInto computes lower-left coordinates for all modules by
// pre-order traversal with a horizontal contour, the standard B*-tree
// packing, using ws for every intermediate buffer. The returned slices
// are owned by the workspace and overwritten by the next PackInto on
// the same workspace.
func (t *Tree) PackInto(ws *PackWorkspace) (x, y []int) {
	n := t.N()
	ws.ensure(n)
	x, y = ws.x, ws.y
	if n == 0 || t.Root == none {
		for i := range x {
			x[i], y[i] = 0, 0
		}
		return x, y
	}
	ws.contour = append(ws.contour[:0], contourSeg{0, int(^uint(0) >> 1), 0})
	stack := append(ws.stack[:0], packFrame{t.Root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w, h := t.dims(f.m)
		x[f.m] = f.x
		y[f.m] = ws.place(f.x, f.x+w, h)
		// Push right first so left is processed first (pre-order):
		// left child at the parent's right edge, right child at the
		// parent's x.
		if r := t.Right[f.m]; r != none {
			stack = append(stack, packFrame{r, f.x})
		}
		if l := t.Left[f.m]; l != none {
			stack = append(stack, packFrame{l, f.x + w})
		}
	}
	ws.stack = stack[:0] // retain grown capacity
	return x, y
}

// Pack computes lower-left coordinates for all modules. It is a
// convenience wrapper over PackInto with a one-shot workspace: the
// returned slices are freshly allocated and owned by the caller, and
// all contour scratch is allocated once per call rather than once per
// placed module. Hot loops should hold a PackWorkspace and call
// PackInto instead.
func (t *Tree) Pack() (x, y []int) {
	var ws PackWorkspace
	return t.PackInto(&ws)
}

// Placement packs the tree and returns a named placement. names is
// indexed by module id.
func (t *Tree) Placement(names []string) (geom.Placement, error) {
	if len(names) != t.N() {
		return nil, fmt.Errorf("bstar: %d names for %d modules", len(names), t.N())
	}
	x, y := t.Pack()
	p := geom.Placement{}
	for i := 0; i < t.N(); i++ {
		w, h := t.dims(i)
		p[names[i]] = geom.NewRect(x[i], y[i], w, h)
	}
	return p, nil
}

// Span packs the tree and returns the bounding width and height.
func (t *Tree) Span() (int, int) {
	x, y := t.Pack()
	var tw, th int
	for i := 0; i < t.N(); i++ {
		w, h := t.dims(i)
		if x[i]+w > tw {
			tw = x[i] + w
		}
		if y[i]+h > th {
			th = y[i] + h
		}
	}
	return tw, th
}

// Area packs the tree and returns the bounding-box area.
func (t *Tree) Area() int64 {
	w, h := t.Span()
	return int64(w) * int64(h)
}

// CountPlacements returns the number of distinct B*-trees over n
// modules: n! · Catalan(n). For n = 8 this is 57,657,600, the figure
// quoted in Section IV of the paper.
func CountPlacements(n int) *big.Int {
	fact := new(big.Int).MulRange(1, int64(n))
	// Catalan(n) = C(2n, n)/(n+1).
	cat := new(big.Int).Binomial(int64(2*n), int64(n))
	cat.Div(cat, big.NewInt(int64(n+1)))
	return fact.Mul(fact, cat)
}
