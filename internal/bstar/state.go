package bstar

// TreeState is a reusable snapshot of a tree's mutable search state:
// the link structure and rotation flags (module dimensions are fixed
// for the lifetime of a tree and never saved). It backs the exact-undo
// protocol of the in-place annealing engine: save before a
// perturbation, load to revert it. The zero value is ready to use, and
// a state reused across saves stops allocating once its buffers match
// the tree size.
type TreeState struct {
	root                int
	left, right, parent []int
	rot                 []bool
}

// SaveState copies t's links and rotation flags into s, growing s's
// buffers only when the tree is larger than any previously saved one.
func (t *Tree) SaveState(s *TreeState) {
	s.root = t.Root
	s.left = append(s.left[:0], t.Left...)
	s.right = append(s.right[:0], t.Right...)
	s.parent = append(s.parent[:0], t.Parent...)
	s.rot = append(s.rot[:0], t.Rot...)
}

// LoadState restores links and rotation flags previously captured with
// SaveState. The tree must have the same module count as when the
// state was saved.
func (t *Tree) LoadState(s *TreeState) {
	t.Root = s.root
	copy(t.Left, s.left)
	copy(t.Right, s.right)
	copy(t.Parent, s.parent)
	copy(t.Rot, s.rot)
}
