package bstar

import (
	"math/rand"
	"testing"
)

// packReference is an independent implementation of B*-tree contour
// packing (the pre-workspace algorithm, kept verbatim): the oracle the
// allocation-free packer is differential-tested against.
func packReference(t *Tree) (x, y []int) {
	n := t.N()
	x = make([]int, n)
	y = make([]int, n)
	if n == 0 || t.Root == none {
		return x, y
	}
	contour := []contourSeg{{0, int(^uint(0) >> 1), 0}}
	place := func(m, xpos int) {
		w, h := t.dims(m)
		x[m] = xpos
		xEnd := xpos + w
		top := 0
		for _, s := range contour {
			if s.x2 <= xpos || s.x1 >= xEnd {
				continue
			}
			if s.h > top {
				top = s.h
			}
		}
		y[m] = top
		var out []contourSeg
		newSeg := contourSeg{xpos, xEnd, top + h}
		inserted := false
		for _, s := range contour {
			if s.x2 <= xpos || s.x1 >= xEnd {
				out = append(out, s)
				continue
			}
			if s.x1 < xpos {
				out = append(out, contourSeg{s.x1, xpos, s.h})
			}
			if !inserted {
				out = append(out, newSeg)
				inserted = true
			}
			if s.x2 > xEnd {
				out = append(out, contourSeg{xEnd, s.x2, s.h})
			}
		}
		if !inserted {
			out = append(out, newSeg)
		}
		contour = contour[:0]
		for _, s := range out {
			if len(contour) > 0 && contour[len(contour)-1].h == s.h && contour[len(contour)-1].x2 == s.x1 {
				contour[len(contour)-1].x2 = s.x2
			} else {
				contour = append(contour, s)
			}
		}
	}
	type frame struct{ m, xpos int }
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		place(f.m, f.xpos)
		w, _ := t.dims(f.m)
		if r := t.Right[f.m]; r != none {
			stack = append(stack, frame{r, x[f.m]})
		}
		if l := t.Left[f.m]; l != none {
			stack = append(stack, frame{l, x[f.m] + w})
		}
	}
	return x, y
}

func checkAgainstReference(t *testing.T, tr *Tree, ws *PackWorkspace, ctx string) {
	t.Helper()
	rx, ry := packReference(tr)
	x, y := tr.PackInto(ws)
	for i := range rx {
		if x[i] != rx[i] || y[i] != ry[i] {
			t.Fatalf("%s: module %d at (%d,%d), reference (%d,%d)",
				ctx, i, x[i], y[i], rx[i], ry[i])
		}
	}
	// The compatibility wrapper must agree as well.
	px, py := tr.Pack()
	for i := range rx {
		if px[i] != rx[i] || py[i] != ry[i] {
			t.Fatalf("%s: Pack() module %d at (%d,%d), reference (%d,%d)",
				ctx, i, px[i], py[i], rx[i], ry[i])
		}
	}
}

// TestPackIntoMatchesReference is the property test of the tentpole:
// PackInto with a single reused workspace produces coordinates
// identical to the reference contour packer over random trees and
// random perturbation sequences (the workspace sees the same dirty
// reuse pattern as an annealing run).
func TestPackIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws PackWorkspace // shared across every check on purpose
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(14)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(20)
			h[i] = 1 + rng.Intn(20)
		}
		tr := NewRandom(w, h, rng)
		checkAgainstReference(t, tr, &ws, "fresh random tree")
		for step := 0; step < 25; step++ {
			tr.Perturb(rng)
			if err := tr.Validate(); err != nil {
				t.Fatalf("perturb broke tree: %v", err)
			}
			checkAgainstReference(t, tr, &ws, "after perturbation")
		}
	}
}

// TestPackIntoWorkspaceReuseAcrossSizes checks that one workspace can
// serve trees of different module counts back to back (the hbstar
// forest pattern).
func TestPackIntoWorkspaceReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws PackWorkspace
	for _, n := range []int{12, 1, 8, 3, 15, 2} {
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(9)
			h[i] = 1 + rng.Intn(9)
		}
		tr := NewRandom(w, h, rng)
		checkAgainstReference(t, tr, &ws, "size change")
	}
}

// TestSaveLoadState checks the exact-undo contract: any perturbation
// followed by LoadState restores identical packing coordinates.
func TestSaveLoadState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ws PackWorkspace
	var st TreeState
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(12)
			h[i] = 1 + rng.Intn(12)
		}
		tr := NewRandom(w, h, rng)
		for step := 0; step < 20; step++ {
			bx, by := tr.PackInto(&ws)
			bxc := append([]int(nil), bx...)
			byc := append([]int(nil), by...)
			tr.SaveState(&st)
			tr.Perturb(rng)
			tr.LoadState(&st)
			if err := tr.Validate(); err != nil {
				t.Fatalf("LoadState left invalid tree: %v", err)
			}
			ax, ay := tr.PackInto(&ws)
			for i := 0; i < n; i++ {
				if ax[i] != bxc[i] || ay[i] != byc[i] {
					t.Fatalf("undo changed packing: module %d (%d,%d) -> (%d,%d)",
						i, bxc[i], byc[i], ax[i], ay[i])
				}
			}
			tr.Perturb(rng) // drift to a new state for the next step
		}
	}
}
