package bstar

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNewChain(t *testing.T) {
	w := []int{10, 20, 30}
	h := []int{5, 5, 5}
	tr := New(w, h)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	x, y := tr.Pack()
	// Chain of left children: a single row.
	if x[0] != 0 || x[1] != 10 || x[2] != 30 {
		t.Fatalf("x = %v, want [0 10 30]", x)
	}
	for i, yi := range y {
		if yi != 0 {
			t.Fatalf("y[%d] = %d, want 0", i, yi)
		}
	}
	tw, th := tr.Span()
	if tw != 60 || th != 5 {
		t.Fatalf("span %dx%d, want 60x5", tw, th)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := New(nil, nil)
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if tw, th := empty.Span(); tw != 0 || th != 0 {
		t.Fatal("empty span must be zero")
	}
	one := New([]int{7}, []int{9})
	x, y := one.Pack()
	if x[0] != 0 || y[0] != 0 {
		t.Fatal("single module must pack at origin")
	}
	if one.Area() != 63 {
		t.Fatalf("Area = %d, want 63", one.Area())
	}
}

func TestRightChildStacks(t *testing.T) {
	// Root 0 with right child 1: same x, above.
	tr := New([]int{10, 6}, []int{4, 8})
	tr.Left[0] = none
	tr.Parent[1] = 0
	tr.Right[0] = 1
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	x, y := tr.Pack()
	if x[1] != 0 || y[1] != 4 {
		t.Fatalf("right child at (%d,%d), want (0,4)", x[1], y[1])
	}
}

func TestContourPacking(t *testing.T) {
	// Root 0 (10x4), left child 1 (6x8) to its right, and 1's right
	// child 2 (6x2) above 1. Then 0's right child 3 (20x3) above 0:
	// its span [0,20) covers modules 1's column too, so it must rest
	// on the tallest contour beneath.
	w := []int{10, 6, 6, 20}
	h := []int{4, 8, 2, 3}
	tr := New(w, h)
	for i := range w {
		tr.Left[i], tr.Right[i], tr.Parent[i] = none, none, none
	}
	tr.Root = 0
	tr.Left[0], tr.Parent[1] = 1, 0
	tr.Right[1], tr.Parent[2] = 2, 1
	tr.Right[0], tr.Parent[3] = 3, 0
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	x, y := tr.Pack()
	if x[1] != 10 || y[1] != 0 {
		t.Fatalf("module 1 at (%d,%d), want (10,0)", x[1], y[1])
	}
	if x[2] != 10 || y[2] != 8 {
		t.Fatalf("module 2 at (%d,%d), want (10,8)", x[2], y[2])
	}
	// Module 3 spans [0,20): contour is 10 high over [10,16) after
	// module 2, so y = 10.
	if x[3] != 0 || y[3] != 10 {
		t.Fatalf("module 3 at (%d,%d), want (0,10)", x[3], y[3])
	}
}

func TestRotate(t *testing.T) {
	tr := New([]int{10}, []int{4})
	tr.Rotate(0)
	tw, th := tr.Span()
	if tw != 4 || th != 10 {
		t.Fatalf("rotated span %dx%d, want 4x10", tw, th)
	}
	tr.Rotate(0)
	tw, th = tr.Span()
	if tw != 10 || th != 4 {
		t.Fatal("double rotation must restore dims")
	}
}

// Packing must never overlap modules, for random trees and random
// perturbation sequences.
func TestPackLegalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(15)
		w := make([]int, n)
		h := make([]int, n)
		names := make([]string, n)
		for i := range w {
			w[i] = 1 + rng.Intn(30)
			h[i] = 1 + rng.Intn(30)
			names[i] = string(rune('a' + i))
		}
		tr := NewRandom(w, h, rng)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for step := 0; step < 40; step++ {
			tr.Perturb(rng)
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			p, err := tr.Placement(names)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Legal() {
				t.Fatalf("trial %d step %d: overlaps %v", trial, step, p.Overlaps())
			}
		}
	}
}

// Packed placements must be compacted: every module either touches the
// left boundary or another module on its left, ditto for bottom.
func TestPackingIsCompacted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(20)
			h[i] = 1 + rng.Intn(20)
		}
		tr := NewRandom(w, h, rng)
		x, y := tr.Pack()
		for m := 0; m < n; m++ {
			if y[m] == 0 {
				continue
			}
			wm, _ := tr.dims(m)
			supported := false
			for o := 0; o < n; o++ {
				if o == m {
					continue
				}
				wo, ho := tr.dims(o)
				if y[o]+ho == y[m] && x[o] < x[m]+wm && x[m] < x[o]+wo {
					supported = true
					break
				}
			}
			if !supported {
				t.Fatalf("trial %d: module %d floats at y=%d", trial, m, y[m])
			}
		}
	}
}

func TestSwapNodesAdjacent(t *testing.T) {
	// Chain 0 -> 1 -> 2 (left children). Swap parent/child pairs.
	tr := New([]int{1, 2, 3}, []int{1, 1, 1})
	tr.SwapNodes(0, 1) // 0 is parent of 1
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root != 1 || tr.Left[1] != 0 || tr.Left[0] != 2 {
		t.Fatalf("adjacent swap wrong: root=%d left[1]=%d left[0]=%d", tr.Root, tr.Left[1], tr.Left[0])
	}
	tr.SwapNodes(1, 0) // reverse, passing child first
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root != 0 {
		t.Fatal("swap back must restore root")
	}
	tr.SwapNodes(2, 2) // self swap: no-op
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := []int{1, 2, 3, 4, 5}
	h := []int{5, 4, 3, 2, 1}
	tr := NewRandom(w, h, rng)
	tr.Delete(2)
	// 2 must be detached; remaining structure valid (checked by
	// walking from root and counting 4 reachable).
	if tr.Parent[2] != none || tr.Left[2] != none || tr.Right[2] != none {
		t.Fatal("deleted module still linked")
	}
	count := 0
	var walk func(m int)
	walk = func(m int) {
		if m == none {
			return
		}
		count++
		walk(tr.Left[m])
		walk(tr.Right[m])
	}
	walk(tr.Root)
	if count != 4 {
		t.Fatalf("reachable after delete = %d, want 4", count)
	}
	tr.InsertChild(tr.Root, 2, 1-boolToInt(tr.Right[tr.Root] == none))
	_ = tr
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDeleteRoot(t *testing.T) {
	tr := New([]int{1, 2}, []int{1, 1})
	tr.Delete(0)
	if tr.Root != 1 {
		t.Fatalf("root after delete = %d, want 1", tr.Root)
	}
	if tr.Parent[0] != none || tr.Left[1] != none && tr.Left[1] == 0 {
		t.Fatal("deleted root still linked")
	}
	tr2 := New([]int{1}, []int{1})
	tr2.Delete(0)
	if tr2.Root != none {
		t.Fatal("deleting only module must empty the tree")
	}
}

func TestCountPlacements(t *testing.T) {
	cases := map[int]int64{
		1: 1,
		2: 4,        // 2! * Catalan(2)=2
		3: 30,       // 6 * 5
		8: 57657600, // the paper's Section IV figure
	}
	for n, want := range cases {
		if got := CountPlacements(n).Int64(); got != want {
			t.Errorf("CountPlacements(%d) = %d, want %d", n, got, want)
		}
	}
}

// The enumerator must produce exactly n!·Catalan(n) distinct valid
// trees.
func TestEnumerateTreesCount(t *testing.T) {
	for n := 1; n <= 5; n++ {
		w := make([]int, n)
		h := make([]int, n)
		for i := range w {
			w[i] = i + 1
			h[i] = i + 2
		}
		seen := map[string]bool{}
		EnumerateTrees(w, h, func(tr *Tree) bool {
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d: invalid enumerated tree: %v", n, err)
			}
			key := treeKey(tr)
			if seen[key] {
				t.Fatalf("n=%d: duplicate tree %s", n, key)
			}
			seen[key] = true
			return true
		})
		want := CountPlacements(n).Int64()
		if int64(len(seen)) != want {
			t.Fatalf("n=%d: enumerated %d trees, want %d", n, len(seen), want)
		}
	}
}

func treeKey(t *Tree) string {
	buf := make([]byte, 0, 3*t.N())
	var walk func(m int)
	walk = func(m int) {
		if m == none {
			buf = append(buf, '.')
			return
		}
		buf = append(buf, byte('0'+m))
		walk(t.Left[m])
		walk(t.Right[m])
	}
	walk(t.Root)
	return string(buf)
}

func TestEnumerateTreesEarlyStop(t *testing.T) {
	count := 0
	EnumerateTrees([]int{1, 1, 1}, []int{1, 1, 1}, func(*Tree) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop after %d, want 7", count)
	}
}

// For small instances, exhaustive enumeration must find a packing at
// least as good as any single random tree (sanity of optimality via
// enumeration, used by the deterministic placer of Section IV).
func TestEnumerationFindsOptimum(t *testing.T) {
	w := []int{10, 10, 5, 5}
	h := []int{5, 5, 10, 10}
	best := int64(1 << 62)
	EnumerateTrees(w, h, func(tr *Tree) bool {
		if a := tr.Area(); a < best {
			best = a
		}
		return true
	})
	// Total module area is 200; a perfect 20x10 packing exists:
	// [10x5 stacked twice] next to [5x10, 5x10].
	if best != 200 {
		t.Fatalf("best enumerated area = %d, want 200 (perfect packing)", best)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := New([]int{1, 2, 3}, []int{1, 1, 1})
	tr.Parent[2] = 0 // inconsistent: 2 is left child of 1
	if err := tr.Validate(); err == nil {
		t.Fatal("corrupt parent link must fail validation")
	}
	tr2 := New([]int{1, 2}, []int{1, 1})
	tr2.Left[1] = 0 // cycle
	if err := tr2.Validate(); err == nil {
		t.Fatal("cycle must fail validation")
	}
	tr3 := New([]int{1, 2}, []int{1, 1})
	tr3.Root = 5
	if err := tr3.Validate(); err == nil {
		t.Fatal("out-of-range root must fail validation")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := NewRandom([]int{1, 2, 3}, []int{3, 2, 1}, rng)
	cl := tr.Clone()
	cl.Perturb(rng)
	cl.Rot[0] = !cl.Rot[0]
	if err := tr.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestPlacementNamesMismatch(t *testing.T) {
	tr := New([]int{1}, []int{1})
	if _, err := tr.Placement(nil); err == nil {
		t.Fatal("wrong name count must fail")
	}
}

var sinkPlacement geom.Placement

func BenchmarkPack50(b *testing.B)  { benchPackN(b, 50) }
func BenchmarkPack500(b *testing.B) { benchPackN(b, 500) }

func benchPackN(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(17))
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	tr := NewRandom(w, h, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Pack()
	}
}
