package bstar

import "math/rand"

// OpKind identifies a perturbation applied by Perturb.
type OpKind int

// The three classic B*-tree perturbations.
const (
	OpRotate OpKind = iota // swap a module's width and height
	OpMove                 // delete a module and reinsert it elsewhere
	OpSwap                 // exchange two modules' tree positions
)

// Rotate toggles the rotation flag of module m.
func (t *Tree) Rotate(m int) { t.Rot[m] = !t.Rot[m] }

// SwapNodes exchanges the tree positions of modules a and b, keeping
// their dimensions attached to the module ids. Adjacent nodes
// (parent/child) are handled.
func (t *Tree) SwapNodes(a, b int) {
	if a == b {
		return
	}
	// If a is b's parent, swap so that a is always the child when
	// adjacent.
	if t.Parent[b] == a {
		a, b = b, a
	}
	pa, pb := t.Parent[a], t.Parent[b]
	la, ra := t.Left[a], t.Right[a]
	lb, rb := t.Left[b], t.Right[b]

	if pa == b {
		// b is a's parent: after the swap, a becomes b's parent.
		sideLeft := t.Left[b] == a
		t.Parent[a] = pb
		if pb != none {
			if t.Left[pb] == b {
				t.Left[pb] = a
			} else {
				t.Right[pb] = a
			}
		} else {
			t.Root = a
		}
		t.Parent[b] = a
		if sideLeft {
			t.Left[a] = b
			t.Right[a] = rb
			if rb != none {
				t.Parent[rb] = a
			}
		} else {
			t.Right[a] = b
			t.Left[a] = lb
			if lb != none {
				t.Parent[lb] = a
			}
		}
		t.Left[b], t.Right[b] = la, ra
		if la != none {
			t.Parent[la] = b
		}
		if ra != none {
			t.Parent[ra] = b
		}
		return
	}

	// Non-adjacent: exchange all links.
	t.Parent[a], t.Parent[b] = pb, pa
	if pa != none {
		if t.Left[pa] == a {
			t.Left[pa] = b
		} else {
			t.Right[pa] = b
		}
	} else {
		t.Root = b
	}
	if pb != none {
		if t.Left[pb] == b {
			t.Left[pb] = a
		} else {
			t.Right[pb] = a
		}
	} else {
		t.Root = a
	}
	t.Left[a], t.Right[a] = lb, rb
	t.Left[b], t.Right[b] = la, ra
	for _, c := range [2]int{la, ra} {
		if c != none {
			t.Parent[c] = b
		}
	}
	for _, c := range [2]int{lb, rb} {
		if c != none {
			t.Parent[c] = a
		}
	}
}

// Delete removes module m from the tree structure (its dimensions
// remain). Internal nodes are first rotated down to a leaf by swapping
// with children, preferring the left child, so relative order is
// largely preserved — the standard B*-tree deletion.
func (t *Tree) Delete(m int) {
	for t.Left[m] != none || t.Right[m] != none {
		c := t.Left[m]
		if c == none {
			c = t.Right[m]
		}
		t.SwapNodes(m, c)
	}
	p := t.Parent[m]
	if p == none {
		t.Root = none
	} else if t.Left[p] == m {
		t.Left[p] = none
	} else {
		t.Right[p] = none
	}
	t.Parent[m] = none
}

// InsertChild attaches detached module m as the left (side 0) or right
// (side 1) child of p. The slot must be free.
func (t *Tree) InsertChild(p, m, side int) {
	if side == 0 {
		t.Left[p] = m
	} else {
		t.Right[p] = m
	}
	t.Parent[m] = p
}

// Move deletes module m and reinserts it at a random free child slot.
func (t *Tree) Move(m int, rng *rand.Rand) {
	n := t.N()
	if n < 2 {
		return
	}
	t.Delete(m)
	for {
		p := rng.Intn(n)
		if p == m {
			continue
		}
		free := make([]int, 0, 2)
		if t.Left[p] == none {
			free = append(free, 0)
		}
		if t.Right[p] == none {
			free = append(free, 1)
		}
		if len(free) == 0 {
			continue
		}
		t.InsertChild(p, m, free[rng.Intn(len(free))])
		return
	}
}

// Perturb applies one random perturbation and returns its kind.
func (t *Tree) Perturb(rng *rand.Rand) OpKind {
	n := t.N()
	if n == 0 {
		return OpRotate
	}
	op := OpKind(rng.Intn(3))
	if n == 1 {
		op = OpRotate
	}
	switch op {
	case OpRotate:
		t.Rotate(rng.Intn(n))
	case OpMove:
		t.Move(rng.Intn(n), rng)
	case OpSwap:
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		t.SwapNodes(a, b)
	}
	return op
}
