package cost

import (
	"math"

	"repro/internal/thermal"
)

// ---------------------------------------------------------------------------
// Area

// AreaTerm is the bounding-box area of the placement. All of its state
// is the model-maintained bounding box, so updates and undo are free.
type AreaTerm struct {
	c *Coords
}

// NewArea returns the bounding-box area term.
func NewArea() *AreaTerm { return &AreaTerm{} }

// Name implements Term.
func (t *AreaTerm) Name() string { return "area" }

// Eval implements Term.
func (t *AreaTerm) Eval(c *Coords) { t.c = c }

// Update implements Term.
func (t *AreaTerm) Update(c *Coords, moved []int) {}

// Undo implements Term.
func (t *AreaTerm) Undo() {}

// Value implements Term.
func (t *AreaTerm) Value() float64 {
	return float64(t.c.BBoxW()) * float64(t.c.BBoxH())
}

// ---------------------------------------------------------------------------
// Fixed outline

// FixedOutlineTerm penalizes placements whose bounding box exceeds a
// target W × H outline, the fixed-outline floorplanning objective of
// Adya/Markov: the penalty is the squared excess in each dimension, so
// the gradient toward the outline steepens with the violation and
// vanishes inside it.
type FixedOutlineTerm struct {
	W, H int
	c    *Coords
}

// NewFixedOutline returns a fixed-outline penalty term for a target
// w × h outline.
func NewFixedOutline(w, h int) *FixedOutlineTerm {
	return &FixedOutlineTerm{W: w, H: h}
}

// Name implements Term.
func (t *FixedOutlineTerm) Name() string { return "outline" }

// Eval implements Term.
func (t *FixedOutlineTerm) Eval(c *Coords) { t.c = c }

// Update implements Term.
func (t *FixedOutlineTerm) Update(c *Coords, moved []int) {}

// Undo implements Term.
func (t *FixedOutlineTerm) Undo() {}

// Excess returns how far the current bounding box exceeds the outline
// in each dimension (0 when it fits).
func (t *FixedOutlineTerm) Excess() (int, int) {
	return max(0, t.c.BBoxW()-t.W), max(0, t.c.BBoxH()-t.H)
}

// Value implements Term.
func (t *FixedOutlineTerm) Value() float64 {
	ex, ey := t.Excess()
	return float64(ex)*float64(ex) + float64(ey)*float64(ey)
}

// ---------------------------------------------------------------------------
// Wirelength (HPWL) and proximity

// WirelengthTerm is total half-perimeter wirelength over a set of nets
// with per-net cached bounding boxes: an Update recomputes only the
// nets that touch a moved module (found through a module→nets index),
// keeping the exact integer total incrementally. The same machinery
// serves proximity groups — "keep these modules together" is the
// half-perimeter of the group's center bounding box.
//
// Boxes are kept over doubled module centers and each net contributes
// (dx+dy)/2, matching geom.HPWL's integer convention exactly.
type WirelengthTerm struct {
	name string
	nets [][]int

	// Module→nets index in CSR form, built on first Eval.
	offs []int32
	idx  []int32

	boxes [][4]int // per-net minX, maxX, minY, maxY over doubled centers
	vals  []int    // per-net half-perimeter
	total int64

	mark []int // net → generation of last visit
	gen  int

	// Undo journal: nets touched by the last Update.
	jNets  []int
	jBoxes [][4]int
	jVals  []int
}

// NewHPWL returns the half-perimeter wirelength term over signal nets
// (module-id sets).
func NewHPWL(nets [][]int) *WirelengthTerm {
	return &WirelengthTerm{name: "hpwl", nets: nets}
}

// NewProximity returns a proximity term over module groups: each group
// contributes the half-perimeter of its center bounding box, pulling
// group members together.
func NewProximity(groups [][]int) *WirelengthTerm {
	return &WirelengthTerm{name: "proximity", nets: groups}
}

// Name implements Term.
func (t *WirelengthTerm) Name() string { return t.name }

// Eval implements Term.
func (t *WirelengthTerm) Eval(c *Coords) {
	if t.offs == nil {
		t.buildIndex(c.N())
	}
	t.total = 0
	for ni := range t.nets {
		t.boxes[ni], t.vals[ni] = t.netBox(c, ni)
		t.total += int64(t.vals[ni])
	}
}

// Update implements Term.
func (t *WirelengthTerm) Update(c *Coords, moved []int) {
	t.gen++
	t.jNets = t.jNets[:0]
	t.jBoxes = t.jBoxes[:0]
	t.jVals = t.jVals[:0]
	for _, m := range moved {
		for _, ni32 := range t.idx[t.offs[m]:t.offs[m+1]] {
			ni := int(ni32)
			if t.mark[ni] == t.gen {
				continue
			}
			t.mark[ni] = t.gen
			t.jNets = append(t.jNets, ni)
			t.jBoxes = append(t.jBoxes, t.boxes[ni])
			t.jVals = append(t.jVals, t.vals[ni])
			box, val := t.netBox(c, ni)
			t.total += int64(val - t.vals[ni])
			t.boxes[ni], t.vals[ni] = box, val
		}
	}
}

// Undo implements Term.
func (t *WirelengthTerm) Undo() {
	for k := len(t.jNets) - 1; k >= 0; k-- {
		ni := t.jNets[k]
		t.total += int64(t.jVals[k] - t.vals[ni])
		t.boxes[ni], t.vals[ni] = t.jBoxes[k], t.jVals[k]
	}
	t.jNets = t.jNets[:0]
}

// Value implements Term.
func (t *WirelengthTerm) Value() float64 { return float64(t.total) }

// Total returns the exact integer wirelength.
func (t *WirelengthTerm) Total() int64 { return t.total }

// netBox computes one net's doubled-center bounding box and
// half-perimeter.
func (t *WirelengthTerm) netBox(c *Coords, ni int) ([4]int, int) {
	const big = 1 << 62
	minX, maxX, minY, maxY := big, -big, big, -big
	for _, m := range t.nets[ni] {
		cx, cy := 2*c.X[m]+c.W[m], 2*c.Y[m]+c.H[m]
		minX = min(minX, cx)
		maxX = max(maxX, cx)
		minY = min(minY, cy)
		maxY = max(maxY, cy)
	}
	if len(t.nets[ni]) == 0 {
		return [4]int{}, 0
	}
	return [4]int{minX, maxX, minY, maxY}, (maxX - minX + maxY - minY) / 2
}

// buildIndex builds the module→nets CSR index and per-net caches.
func (t *WirelengthTerm) buildIndex(n int) {
	t.offs = make([]int32, n+1)
	for _, net := range t.nets {
		for _, m := range net {
			t.offs[m+1]++
		}
	}
	for i := 0; i < n; i++ {
		t.offs[i+1] += t.offs[i]
	}
	t.idx = make([]int32, t.offs[n])
	fill := make([]int32, n)
	for ni, net := range t.nets {
		for _, m := range net {
			t.idx[t.offs[m]+fill[m]] = int32(ni)
			fill[m]++
		}
	}
	t.boxes = make([][4]int, len(t.nets))
	t.vals = make([]int, len(t.nets))
	t.mark = make([]int, len(t.nets))
}

// ---------------------------------------------------------------------------
// Thermal mismatch

// ThermalTerm is the temperature-difference mismatch over symmetry
// pairs under the gradient of internal/thermal: powered modules act as
// heat sources at their centers (superposed on any fixed ambient
// sources of the base field), and each pair contributes the absolute
// temperature difference seen at its two members' centers —
// thermal.Field.PairMismatch expressed over model coordinates. A move
// of a non-source module redoes only that module's pairs; a move of a
// source shifts the whole field, so every pair is redone.
type ThermalTerm struct {
	pairs [][2]int
	power []float64 // per module; > 0 marks a heat source

	field  thermal.Field // base (ambient) sources + one per powered module
	nbase  int           // ambient source count; module sources follow
	srcIDs []int         // module id of field.Sources[nbase+k]
	srcOf  []int         // module → source index, -1 for unpowered

	pairVals []float64
	pairsOf  [][]int32 // module → pair indices

	// Undo journal: full per-pair snapshot (pairs are few) plus the
	// moved source positions.
	jPairVals []float64
	jSrc      []thermal.Source
	jValid    bool
}

// NewThermal returns a thermal-mismatch term. base supplies the decay
// length and any fixed ambient sources (it may be nil for defaults);
// power gives each module's dissipated power (nil or all-zero means
// the field has only ambient sources); pairs are the symmetry pairs
// whose mismatch is summed.
func NewThermal(base *thermal.Field, power []float64, pairs [][2]int) *ThermalTerm {
	t := &ThermalTerm{pairs: pairs, power: power}
	if base != nil {
		t.field.Sigma = base.Sigma
		t.field.Sources = append(t.field.Sources, base.Sources...)
	}
	t.nbase = len(t.field.Sources)
	return t
}

// Name implements Term.
func (t *ThermalTerm) Name() string { return "thermal" }

// Eval implements Term.
func (t *ThermalTerm) Eval(c *Coords) {
	if t.srcOf == nil {
		t.buildIndex(c.N())
	}
	for k, m := range t.srcIDs {
		t.field.Sources[t.nbase+k] = t.moduleSource(c, m)
	}
	for pi := range t.pairs {
		t.pairVals[pi] = t.mismatch(c, pi)
	}
	t.jValid = false
}

// Update implements Term.
func (t *ThermalTerm) Update(c *Coords, moved []int) {
	t.jPairVals = append(t.jPairVals[:0], t.pairVals...)
	t.jSrc = append(t.jSrc[:0], t.field.Sources...)
	t.jValid = true

	sourceMoved := false
	for _, m := range moved {
		if t.srcOf[m] >= 0 {
			t.field.Sources[t.srcOf[m]] = t.moduleSource(c, m)
			sourceMoved = true
		}
	}
	if sourceMoved {
		// The field itself changed: every pair sees new temperatures.
		for pi := range t.pairs {
			t.pairVals[pi] = t.mismatch(c, pi)
		}
		return
	}
	for _, m := range moved {
		for _, pi := range t.pairsOf[m] {
			t.pairVals[pi] = t.mismatch(c, int(pi))
		}
	}
}

// Undo implements Term.
func (t *ThermalTerm) Undo() {
	if !t.jValid {
		return
	}
	copy(t.pairVals, t.jPairVals)
	copy(t.field.Sources, t.jSrc)
	t.jValid = false
}

// Value implements Term. The sum runs in pair order, so incremental
// and from-scratch states yield bit-identical values.
func (t *ThermalTerm) Value() float64 {
	v := 0.0
	for _, pv := range t.pairVals {
		v += pv
	}
	return v
}

// MaxMismatch returns the worst pair mismatch under the current state.
func (t *ThermalTerm) MaxMismatch() float64 {
	worst := 0.0
	for _, pv := range t.pairVals {
		worst = math.Max(worst, pv)
	}
	return worst
}

func (t *ThermalTerm) moduleSource(c *Coords, m int) thermal.Source {
	return thermal.Source{
		X:     float64(2*c.X[m]+c.W[m]) / 2,
		Y:     float64(2*c.Y[m]+c.H[m]) / 2,
		Power: t.power[m],
	}
}

func (t *ThermalTerm) mismatch(c *Coords, pi int) float64 {
	a, b := t.pairs[pi][0], t.pairs[pi][1]
	return t.field.MismatchAt(
		float64(2*c.X[a]+c.W[a])/2, float64(2*c.Y[a]+c.H[a])/2,
		float64(2*c.X[b]+c.W[b])/2, float64(2*c.Y[b]+c.H[b])/2,
	)
}

func (t *ThermalTerm) buildIndex(n int) {
	t.srcOf = make([]int, n)
	for i := range t.srcOf {
		t.srcOf[i] = -1
	}
	for m := 0; m < n && m < len(t.power); m++ {
		if t.power[m] > 0 {
			t.srcOf[m] = t.nbase + len(t.srcIDs)
			t.srcIDs = append(t.srcIDs, m)
			t.field.Sources = append(t.field.Sources, thermal.Source{Power: t.power[m]})
		}
	}
	t.pairsOf = make([][]int32, n)
	for pi, pr := range t.pairs {
		t.pairsOf[pr[0]] = append(t.pairsOf[pr[0]], int32(pi))
		if pr[1] != pr[0] {
			t.pairsOf[pr[1]] = append(t.pairsOf[pr[1]], int32(pi))
		}
	}
	t.pairVals = make([]float64, len(t.pairs))
}
