package cost

import (
	"math/rand"
	"testing"

	"repro/internal/thermal"
)

// fixture is a random instance plus the term set under test; it can
// build identical fresh models for from-scratch reference evaluation.
type fixture struct {
	n          int
	x, y, w, h []int
	rot        []bool
	nets       [][]int
	groups     [][]int
	pairs      [][2]int
	power      []float64
}

func newFixture(n int, rng *rand.Rand) *fixture {
	f := &fixture{n: n}
	f.x = make([]int, n)
	f.y = make([]int, n)
	f.w = make([]int, n)
	f.h = make([]int, n)
	f.rot = make([]bool, n)
	f.power = make([]float64, n)
	for i := 0; i < n; i++ {
		f.x[i] = rng.Intn(200)
		f.y[i] = rng.Intn(200)
		f.w[i] = 1 + rng.Intn(30)
		f.h[i] = 1 + rng.Intn(30)
		f.rot[i] = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			f.power[i] = rng.Float64()
		}
	}
	for len(f.nets) < 2*n {
		deg := 2 + rng.Intn(4)
		net := make([]int, 0, deg)
		for len(net) < deg {
			net = append(net, rng.Intn(n))
		}
		f.nets = append(f.nets, net)
	}
	for g := 0; g < n/5; g++ {
		f.groups = append(f.groups, []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)})
	}
	for p := 0; p < n/3; p++ {
		f.pairs = append(f.pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return f
}

func (f *fixture) newModel() *Model {
	return NewModel(f.n).
		Add(1, NewArea()).
		Add(0.5, NewHPWL(f.nets)).
		Add(2, NewFixedOutline(150, 150)).
		Add(0.25, NewProximity(f.groups)).
		Add(3, NewThermal(&thermal.Field{Sigma: 40}, f.power, f.pairs))
}

// check asserts the incremental model's cost equals a from-scratch
// evaluation of the same coordinates, bit for bit.
func (f *fixture) check(t *testing.T, m *Model, step int) {
	t.Helper()
	want := f.newModel().Eval(f.x, f.y, f.w, f.h, f.rot)
	if got := m.Cost(); got != want {
		t.Fatalf("step %d: incremental cost %v, from-scratch %v", step, got, want)
	}
}

// TestIncrementalMatchesFromScratch drives one model through random
// multi-module moves (via both the diff and the explicit-moved-set
// entry points) interleaved with undos, comparing against a fresh full
// evaluation after every operation with tolerance zero.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := newFixture(30, rng)
	m := f.newModel()
	m.Eval(f.x, f.y, f.w, f.h, f.rot)
	f.check(t, m, -1)

	savedX := make([]int, f.n)
	savedY := make([]int, f.n)
	savedRot := make([]bool, f.n)
	var moved []int
	for step := 0; step < 500; step++ {
		copy(savedX, f.x)
		copy(savedY, f.y)
		copy(savedRot, f.rot)
		moved = moved[:0]
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			i := rng.Intn(f.n)
			moved = append(moved, i)
			switch rng.Intn(3) {
			case 0:
				f.x[i] = rng.Intn(200)
				f.y[i] = rng.Intn(200)
			case 1:
				f.rot[i] = !f.rot[i]
			case 2: // listed as moved but left unchanged
			}
		}
		if rng.Intn(2) == 0 {
			m.UpdateMoved(f.x, f.y, f.w, f.h, f.rot, moved)
		} else {
			m.Update(f.x, f.y, f.w, f.h, f.rot)
		}
		f.check(t, m, step)

		if rng.Intn(3) == 0 {
			m.Undo()
			copy(f.x, savedX)
			copy(f.y, savedY)
			copy(f.rot, savedRot)
			f.check(t, m, step)
			// A second Undo without an Update must be a no-op.
			m.Undo()
			f.check(t, m, step)
		}
	}
}

// TestModelUpdateBeforeEval pins the fallback: the first Update on a
// fresh model must behave as a full evaluation.
func TestModelUpdateBeforeEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := newFixture(12, rng)
	m := f.newModel()
	got := m.Update(f.x, f.y, f.w, f.h, f.rot)
	want := f.newModel().Eval(f.x, f.y, f.w, f.h, f.rot)
	if got != want {
		t.Fatalf("first Update = %v, want Eval result %v", got, want)
	}
}

// TestFixedOutline pins the penalty shape: zero inside the outline,
// squared excess outside.
func TestFixedOutline(t *testing.T) {
	m := NewModel(2).Add(1, NewFixedOutline(20, 10))
	x := []int{0, 15}
	y := []int{0, 0}
	w := []int{10, 5}
	h := []int{8, 8}
	if got := m.Eval(x, y, w, h, nil); got != 0 {
		t.Fatalf("inside outline: penalty %v, want 0", got)
	}
	x[1] = 25 // bbox 30x8: 10 over in W
	if got := m.Update(x, y, w, h, nil); got != 100 {
		t.Fatalf("10 units over: penalty %v, want 100", got)
	}
	y[1] = 7 // bbox 30x15: 10 over in W, 5 over in H
	if got := m.Update(x, y, w, h, nil); got != 125 {
		t.Fatalf("10+5 over: penalty %v, want 125", got)
	}
	ol, ok := m.Term("outline")
	if !ok {
		t.Fatal("outline term not registered")
	}
	ex, ey := ol.(*FixedOutlineTerm).Excess()
	if ex != 10 || ey != 5 {
		t.Fatalf("Excess = (%d,%d), want (10,5)", ex, ey)
	}
}

// TestZeroWeightTermDropped pins that Add ignores zero-weight terms.
func TestZeroWeightTermDropped(t *testing.T) {
	m := NewModel(1).Add(0, NewHPWL([][]int{{0, 0}}))
	if _, ok := m.Term("hpwl"); ok {
		t.Fatal("zero-weight term must be dropped")
	}
}

// TestEmptyModel pins the n = 0 edge.
func TestEmptyModel(t *testing.T) {
	m := NewModel(0).Add(1, NewArea())
	if got := m.Eval(nil, nil, nil, nil, nil); got != 0 {
		t.Fatalf("empty placement cost %v, want 0", got)
	}
}
