// Package cost is the composable objective engine shared by every
// placer in this repository. A placement objective is a weighted sum
// of Terms — area, half-perimeter wirelength, fixed-outline penalty,
// proximity, thermal mismatch, or any caller-defined component — and a
// Model composes them over one canonical coordinate cache.
//
// The engine exists for the annealing hot path: a single move touches
// few modules, so recomputing the whole objective per proposed move
// (the pre-refactor behavior) wastes almost all of its work. Every
// Term therefore has two evaluation entry points: a full Eval over all
// modules, and an incremental Update that reevaluates only the state
// invalidated by a set of moved modules, with exact Undo for rejected
// moves. The Model detects the moved set itself by diffing against its
// coordinate cache (topological placers repack all coordinates per
// move, so only a diff can tell which modules actually moved), or
// accepts it explicitly from placers that know it (UpdateMoved).
//
// Exactness contract: for integer-valued terms the incremental totals
// are maintained in integer arithmetic, and float-valued terms cache
// per-element values and recompute sums on demand, so an incremental
// Update followed by Undo — or any sequence of Updates — yields
// exactly the value a from-scratch Eval would, bit for bit. The
// placers' property tests assert this with tolerance zero.
package cost

import "math"

// Coords is the model's canonical coordinate cache: module i occupies
// (X[i], Y[i]) with effective dimensions W[i] × H[i] (rotation already
// applied), and MinX..MaxY is the bounding box over all modules. Terms
// read coordinates only from here; the pointer a Term receives in Eval
// is stable for the Model's lifetime.
type Coords struct {
	X, Y, W, H             []int
	MinX, MaxX, MinY, MaxY int
}

// N returns the module count.
func (c *Coords) N() int { return len(c.X) }

// BBoxW returns the bounding-box width (0 when empty).
func (c *Coords) BBoxW() int {
	if c.MaxX < c.MinX {
		return 0
	}
	return c.MaxX - c.MinX
}

// BBoxH returns the bounding-box height (0 when empty).
func (c *Coords) BBoxH() int {
	if c.MaxY < c.MinY {
		return 0
	}
	return c.MaxY - c.MinY
}

// Term is one component of a composite placement objective.
//
// Contract: Eval recomputes the term's cached state from scratch over
// all modules (and performs any lazy allocation; it may be called
// repeatedly). Update incrementally reevaluates after the listed
// modules changed position or dimensions — Coords already holds the
// new values when Update runs — and must record enough state for Undo
// to revert exactly one Update. Value reports the current value from
// cached state without touching coordinates and must be deterministic
// in that state, so that incremental and from-scratch paths agree
// exactly.
type Term interface {
	// Name identifies the term (unique within a Model).
	Name() string
	// Eval fully recomputes the term over all modules of c.
	Eval(c *Coords)
	// Update incrementally reevaluates after moved modules changed.
	Update(c *Coords, moved []int)
	// Undo reverts the most recent Update exactly.
	Undo()
	// Value returns the term's current (unweighted) value.
	Value() float64
}

// Model composes weighted terms over one coordinate cache and drives
// their incremental evaluation. The zero Model is not usable; build
// with NewModel and Add. A Model is not safe for concurrent use:
// concurrent searches own distinct Models (one per solution), exactly
// like packing workspaces.
type Model struct {
	terms   []Term
	weights []float64
	c       Coords
	inited  bool

	// Single-level move journal for Undo.
	moved                  []int
	oldX, oldY, oldW, oldH []int
	oldBBox                [4]int
	canUndo                bool
}

// NewModel returns an empty model over n modules.
func NewModel(n int) *Model {
	m := &Model{}
	m.c.X = make([]int, n)
	m.c.Y = make([]int, n)
	m.c.W = make([]int, n)
	m.c.H = make([]int, n)
	return m
}

// Add registers a term with its weight and returns the model for
// chaining. Zero-weight terms are dropped: they cannot affect the cost
// and would only slow the hot path.
func (m *Model) Add(weight float64, t Term) *Model {
	if weight == 0 {
		return m
	}
	m.terms = append(m.terms, t)
	m.weights = append(m.weights, weight)
	return m
}

// N returns the module count.
func (m *Model) N() int { return m.c.N() }

// Term returns the registered term with the given name.
func (m *Model) Term(name string) (Term, bool) {
	for _, t := range m.terms {
		if t.Name() == name {
			return t, true
		}
	}
	return nil, false
}

// Weight returns the weight the named term was registered with.
func (m *Model) Weight(name string) float64 {
	for i, t := range m.terms {
		if t.Name() == name {
			return m.weights[i]
		}
	}
	return 0
}

// Cost returns the current weighted objective from cached term state.
func (m *Model) Cost() float64 {
	cost := 0.0
	for i, t := range m.terms {
		cost += m.weights[i] * t.Value()
	}
	return cost
}

// TermValue is one term's contribution to a model's cost: the
// registered name and weight, and the term's current unweighted value
// (weight × value is the term's share of Cost).
type TermValue struct {
	Name   string
	Weight float64
	Value  float64
}

// Breakdown reports every term's current value, in registration
// order. The weighted values sum to exactly Cost() (same float
// summation order).
func (m *Model) Breakdown() []TermValue {
	out := make([]TermValue, len(m.terms))
	for i, t := range m.terms {
		out[i] = TermValue{Name: t.Name(), Weight: m.weights[i], Value: t.Value()}
	}
	return out
}

// Moved returns the module ids the last Update (or Eval: all) touched.
// The slice aliases internal scratch and is valid until the next
// evaluation.
func (m *Model) Moved() []int { return m.moved }

// eff returns module i's effective dimensions under rot.
func eff(w, h []int, rot []bool, i int) (int, int) {
	if rot != nil && rot[i] {
		return h[i], w[i]
	}
	return w[i], h[i]
}

// Eval fully (re)evaluates the objective: the coordinate cache is
// overwritten, the bounding box rescanned and every term recomputed
// from scratch. It invalidates any pending Undo.
func (m *Model) Eval(x, y, w, h []int, rot []bool) float64 {
	n := m.c.N()
	m.moved = m.moved[:0]
	for i := 0; i < n; i++ {
		wi, hi := eff(w, h, rot, i)
		m.c.X[i], m.c.Y[i], m.c.W[i], m.c.H[i] = x[i], y[i], wi, hi
		m.moved = append(m.moved, i)
	}
	m.rescanBBox()
	for _, t := range m.terms {
		t.Eval(&m.c)
	}
	m.inited = true
	m.canUndo = false
	return m.Cost()
}

// Update incrementally reevaluates the objective from new coordinates:
// the moved set is detected by diffing against the coordinate cache
// (position or effective-dimension change), the cache is patched, and
// each term updates only the state those modules invalidate. The first
// call on a fresh model falls back to Eval. Exactly one Update (or
// UpdateMoved) is revertible through Undo.
func (m *Model) Update(x, y, w, h []int, rot []bool) float64 {
	if !m.inited {
		return m.Eval(x, y, w, h, rot)
	}
	m.beginMove()
	// One fused pass: diff-and-patch the cache while rescanning the
	// bounding box over the new values.
	const big = 1 << 62
	minX, maxX, minY, maxY := big, -big, big, -big
	n := m.c.N()
	for i := 0; i < n; i++ {
		wi, hi := eff(w, h, rot, i)
		if x[i] != m.c.X[i] || y[i] != m.c.Y[i] || wi != m.c.W[i] || hi != m.c.H[i] {
			m.journal(i)
			m.c.X[i], m.c.Y[i], m.c.W[i], m.c.H[i] = x[i], y[i], wi, hi
		}
		minX = min(minX, m.c.X[i])
		maxX = max(maxX, m.c.X[i]+m.c.W[i])
		minY = min(minY, m.c.Y[i])
		maxY = max(maxY, m.c.Y[i]+m.c.H[i])
	}
	if n == 0 {
		minX, maxX, minY, maxY = 0, 0, 0, 0
	}
	m.c.MinX, m.c.MaxX, m.c.MinY, m.c.MaxY = minX, maxX, minY, maxY
	for _, t := range m.terms {
		t.Update(&m.c, m.moved)
	}
	m.canUndo = true
	return m.Cost()
}

// UpdateMoved is Update for placers that know exactly which modules a
// move touched (skipping the O(n) diff). Listing an unchanged module
// is allowed; omitting a changed one is not.
func (m *Model) UpdateMoved(x, y, w, h []int, rot []bool, moved []int) float64 {
	if !m.inited {
		return m.Eval(x, y, w, h, rot)
	}
	m.beginMove()
	for _, i := range moved {
		wi, hi := eff(w, h, rot, i)
		if x[i] != m.c.X[i] || y[i] != m.c.Y[i] || wi != m.c.W[i] || hi != m.c.H[i] {
			m.journal(i)
			m.c.X[i], m.c.Y[i], m.c.W[i], m.c.H[i] = x[i], y[i], wi, hi
		}
	}
	return m.finishMove()
}

// Undo reverts the most recent Update/UpdateMoved exactly: cached
// coordinates, bounding box and every term's state. A second Undo
// without an intervening Update is a no-op.
func (m *Model) Undo() {
	if !m.canUndo {
		return
	}
	m.canUndo = false
	for k := len(m.moved) - 1; k >= 0; k-- {
		i := m.moved[k]
		m.c.X[i], m.c.Y[i], m.c.W[i], m.c.H[i] = m.oldX[k], m.oldY[k], m.oldW[k], m.oldH[k]
	}
	m.c.MinX, m.c.MaxX, m.c.MinY, m.c.MaxY = m.oldBBox[0], m.oldBBox[1], m.oldBBox[2], m.oldBBox[3]
	for k := len(m.terms) - 1; k >= 0; k-- {
		m.terms[k].Undo()
	}
}

func (m *Model) beginMove() {
	m.moved = m.moved[:0]
	m.oldX = m.oldX[:0]
	m.oldY = m.oldY[:0]
	m.oldW = m.oldW[:0]
	m.oldH = m.oldH[:0]
	m.oldBBox = [4]int{m.c.MinX, m.c.MaxX, m.c.MinY, m.c.MaxY}
}

func (m *Model) journal(i int) {
	m.moved = append(m.moved, i)
	m.oldX = append(m.oldX, m.c.X[i])
	m.oldY = append(m.oldY, m.c.Y[i])
	m.oldW = append(m.oldW, m.c.W[i])
	m.oldH = append(m.oldH, m.c.H[i])
}

func (m *Model) finishMove() float64 {
	m.rescanBBox()
	for _, t := range m.terms {
		t.Update(&m.c, m.moved)
	}
	m.canUndo = true
	return m.Cost()
}

// rescanBBox recomputes the bounding box with one pass over the cache.
// A full pass keeps shrink moves exact (a module leaving the boundary
// cannot be handled locally) and costs O(n) — far below any per-net
// work the scan spares the terms.
func (m *Model) rescanBBox() {
	const big = 1 << 62
	minX, maxX, minY, maxY := big, -big, big, -big
	n := m.c.N()
	for i := 0; i < n; i++ {
		minX = min(minX, m.c.X[i])
		maxX = max(maxX, m.c.X[i]+m.c.W[i])
		minY = min(minY, m.c.Y[i])
		maxY = max(maxY, m.c.Y[i]+m.c.H[i])
	}
	if n == 0 {
		minX, maxX, minY, maxY = 0, 0, 0, 0
	}
	m.c.MinX, m.c.MaxX, m.c.MinY, m.c.MaxY = minX, maxX, minY, maxY
}

// DefaultOutlineWeight is the shared heuristic weight for the
// fixed-outline penalty when the caller sets none: strong enough that
// a few-unit violation rivals the area term. Every layer (flat
// problems, the hierarchical placer, and outline reporting) derives
// the default from this one function so the penalty the annealer
// optimizes and the penalty reported to the user cannot drift apart.
func DefaultOutlineWeight(moduleArea int64) float64 {
	return math.Max(1, float64(moduleArea)/100)
}

// AreaNormalizedPowers is the shared default thermal source model:
// a module whose area reaches a quarter of the largest module's is a
// heat source with power area/maxArea; smaller devices are treated as
// pure sensors (power 0). Big output and bias devices dominate on-chip
// dissipation, and keeping small modules source-free preserves the
// ThermalTerm's incremental fast path — a move of an unpowered module
// redoes only its own pairs instead of the whole field. Flat and
// hierarchical placers both derive default powers from this one
// function.
func AreaNormalizedPowers(areas []int64) []float64 {
	maxA := int64(1)
	for _, a := range areas {
		maxA = max(maxA, a)
	}
	pw := make([]float64, len(areas))
	for i, a := range areas {
		if 4*a >= maxA {
			pw[i] = float64(a) / float64(maxA)
		}
	}
	return pw
}
