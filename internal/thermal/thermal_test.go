package thermal

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestFieldDecaysWithDistance(t *testing.T) {
	f := &Field{Sources: []Source{{X: 0, Y: 0, Power: 10}}, Sigma: 10}
	near := f.At(1, 0)
	far := f.At(100, 0)
	if near <= far {
		t.Fatal("temperature must decay with distance")
	}
	if peak := f.At(0, 0); peak != 10 {
		t.Fatalf("peak temperature = %g, want 10 (power)", peak)
	}
}

func TestFieldSuperposes(t *testing.T) {
	one := &Field{Sources: []Source{{X: 0, Y: 0, Power: 5}}}
	two := &Field{Sources: []Source{{X: 0, Y: 0, Power: 5}, {X: 0, Y: 0, Power: 5}}}
	if math.Abs(two.At(3, 4)-2*one.At(3, 4)) > 1e-12 {
		t.Fatal("fields must superpose linearly")
	}
}

// The paper's claim: a pair placed symmetrically about the radiator's
// axis sees identical temperatures; an asymmetric pair does not.
func TestSymmetricPlacementHasZeroMismatch(t *testing.T) {
	// Radiator centered at x=50.
	heater := geom.NewRect(45, 100, 10, 10)
	f := &Field{Sources: []Source{SourceFromRect(heater, 100)}, Sigma: 30}

	sym := geom.Placement{
		"A": geom.NewRect(20, 0, 10, 10), // center (25, 5)
		"B": geom.NewRect(70, 0, 10, 10), // center (75, 5): mirror about x=50
	}
	if m := f.PairMismatch(sym, "A", "B"); m > 1e-12 {
		t.Fatalf("symmetric pair mismatch = %g, want 0", m)
	}

	asym := geom.Placement{
		"A": geom.NewRect(20, 0, 10, 10),
		"B": geom.NewRect(40, 0, 10, 10), // closer to the heater
	}
	if m := f.PairMismatch(asym, "A", "B"); m <= 0 {
		t.Fatal("asymmetric pair must see a mismatch")
	}
}

func TestMaxPairMismatch(t *testing.T) {
	f := &Field{Sources: []Source{{X: 0, Y: 0, Power: 10}}, Sigma: 20}
	p := geom.Placement{
		"a1": geom.NewRect(10, 0, 2, 2),
		"a2": geom.NewRect(-12, 0, 2, 2), // mirror of a1 about x=0
		"b1": geom.NewRect(5, 0, 2, 2),
		"b2": geom.NewRect(50, 0, 2, 2), // wildly asymmetric
	}
	worst := f.MaxPairMismatch(p, [][2]string{{"a1", "a2"}, {"b1", "b2"}})
	if worst <= 0 {
		t.Fatal("worst mismatch must be positive")
	}
	if worst != f.PairMismatch(p, "b1", "b2") {
		t.Fatal("worst mismatch must come from the asymmetric pair")
	}
}

func TestDefaultSigma(t *testing.T) {
	f := &Field{Sources: []Source{{X: 0, Y: 0, Power: 1}}}
	if f.At(50, 0) <= 0 {
		t.Fatal("default sigma must give positive field")
	}
}
