// Package thermal models on-chip thermal gradients as superposed
// point-ish heat sources, quantifying the temperature-difference
// mismatch that Section II gives as a motivation for symmetric
// placement: "since the symmetrically placed sensitive components are
// equidistant from the radiating component(s), they see roughly
// identical ambient temperatures and no temperature induced mismatch
// results."
//
// The field of one source of power P at distance d is P/(1 + (d/σ)²),
// a smooth radially-symmetric kernel whose iso-thermal lines are
// circles around the source — sufficient for measuring placement-
// induced mismatch, which only depends on the field's radial symmetry.
package thermal

import (
	"math"

	"repro/internal/geom"
)

// Source is one heat radiator.
type Source struct {
	X, Y  float64 // position (grid units; doubled-center convention not used here)
	Power float64 // arbitrary power units
}

// Field is a superposition of sources.
type Field struct {
	Sources []Source
	// Sigma is the decay length of each source (default 50 units).
	Sigma float64
}

// SourceFromRect places a source at a module's center with the given
// power.
func SourceFromRect(r geom.Rect, power float64) Source {
	return Source{
		X:     float64(r.CenterX2()) / 2,
		Y:     float64(r.CenterY2()) / 2,
		Power: power,
	}
}

// At returns the temperature rise at (x, y).
func (f *Field) At(x, y float64) float64 {
	sigma := f.Sigma
	if sigma <= 0 {
		sigma = 50
	}
	t := 0.0
	for _, s := range f.Sources {
		dx, dy := x-s.X, y-s.Y
		d2 := (dx*dx + dy*dy) / (sigma * sigma)
		t += s.Power / (1 + d2)
	}
	return t
}

// AtRect returns the temperature rise at a module's center.
func (f *Field) AtRect(r geom.Rect) float64 {
	return f.At(float64(r.CenterX2())/2, float64(r.CenterY2())/2)
}

// MismatchAt returns the absolute temperature difference between two
// points — the coordinate-level form of PairMismatch, used by the
// incremental thermal cost term.
func (f *Field) MismatchAt(ax, ay, bx, by float64) float64 {
	return math.Abs(f.At(ax, ay) - f.At(bx, by))
}

// PairMismatch returns the absolute temperature difference seen by two
// modules of a placement — the mismatch a matched pair suffers under
// the gradient.
func (f *Field) PairMismatch(p geom.Placement, a, b string) float64 {
	ra, rb := p[a], p[b]
	return f.MismatchAt(
		float64(ra.CenterX2())/2, float64(ra.CenterY2())/2,
		float64(rb.CenterX2())/2, float64(rb.CenterY2())/2)
}

// MaxPairMismatch returns the worst mismatch over a set of pairs.
func (f *Field) MaxPairMismatch(p geom.Placement, pairs [][2]string) float64 {
	worst := 0.0
	for _, pr := range pairs {
		if m := f.PairMismatch(p, pr[0], pr[1]); m > worst {
			worst = m
		}
	}
	return worst
}
