package hier

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/netlist"
)

// miller builds the Fig. 6 Miller op amp netlist inline (the circuits
// package depends on constraint only; building it here keeps hier's
// tests self-contained).
func miller() *netlist.Circuit {
	c := netlist.NewCircuit("miller")
	add := func(name string, t netlist.DeviceType, d, g, s string) {
		c.MustAdd(&netlist.Device{
			Name:   name,
			Type:   t,
			Ports:  map[string]string{"D": d, "G": g, "S": s, "B": s},
			Params: map[string]float64{"w": 10, "l": 1},
			FW:     20, FH: 10,
		})
	}
	add("P1", netlist.PMOS, "n1", "inp", "tail")
	add("P2", netlist.PMOS, "n2", "inn", "tail")
	add("N3", netlist.NMOS, "n1", "n1", "gnd")
	add("N4", netlist.NMOS, "n2", "n1", "gnd")
	add("P5", netlist.PMOS, "ibias", "ibias", "vdd")
	add("P6", netlist.PMOS, "tail", "ibias", "vdd")
	add("P7", netlist.PMOS, "out", "ibias", "vdd")
	add("N8", netlist.NMOS, "out", "n2", "gnd")
	c.MustAdd(&netlist.Device{
		Name:  "C",
		Type:  netlist.Capacitor,
		Ports: map[string]string{"P": "n2", "N": "out"},
		FW:    30, FH: 30,
	})
	return c
}

func TestDetectMillerBlocks(t *testing.T) {
	blocks := Detect(miller(), "vdd", "gnd")
	var dp, cmN, cmP *Block
	for i := range blocks {
		b := &blocks[i]
		switch {
		case b.Kind == DiffPair:
			dp = b
		case b.Kind == CurrentMirror && contains(b.Devices, "N3"):
			cmN = b
		case b.Kind == CurrentMirror && contains(b.Devices, "P5"):
			cmP = b
		}
	}
	if dp == nil || !contains(dp.Devices, "P1") || !contains(dp.Devices, "P2") {
		t.Fatalf("differential pair P1/P2 not detected: %+v", blocks)
	}
	if cmN == nil || len(cmN.Devices) != 2 || !contains(cmN.Devices, "N4") {
		t.Fatalf("NMOS mirror N3/N4 not detected: %+v", blocks)
	}
	if cmP == nil || len(cmP.Devices) != 3 {
		t.Fatalf("PMOS mirror P5/P6/P7 not detected: %+v", blocks)
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func TestDetectDiffPairNeedsDistinctGates(t *testing.T) {
	c := netlist.NewCircuit("x")
	add := func(name, d, g, s string) {
		c.MustAdd(&netlist.Device{
			Name:  name,
			Type:  netlist.NMOS,
			Ports: map[string]string{"D": d, "G": g, "S": s, "B": "gnd"},
		})
	}
	// Common source, common gate: a cascode-ish pair, not a diff pair.
	add("A", "x1", "g", "s")
	add("B", "x2", "g", "s")
	for _, b := range Detect(c, "gnd") {
		if b.Kind == DiffPair {
			t.Fatalf("common-gate pair wrongly detected as diff pair: %+v", b)
		}
	}
}

func TestDetectMirrorNeedsDiode(t *testing.T) {
	c := netlist.NewCircuit("x")
	add := func(name, d, g, s string) {
		c.MustAdd(&netlist.Device{
			Name:  name,
			Type:  netlist.NMOS,
			Ports: map[string]string{"D": d, "G": g, "S": s, "B": s},
		})
	}
	// Shared gate and source but no diode connection.
	add("A", "x1", "bias", "gnd")
	add("B", "x2", "bias", "gnd")
	for _, b := range Detect(c, "vdd") {
		if b.Kind == CurrentMirror {
			t.Fatalf("diode-less pair wrongly detected as mirror: %+v", b)
		}
	}
}

func TestDetectIgnoresGlobalSourceNets(t *testing.T) {
	c := netlist.NewCircuit("x")
	add := func(name, d, g, s string) {
		c.MustAdd(&netlist.Device{
			Name:  name,
			Type:  netlist.NMOS,
			Ports: map[string]string{"D": d, "G": g, "S": s, "B": s},
		})
	}
	// Two devices sharing only the global gnd as source: not a pair.
	add("A", "x1", "g1", "gnd")
	add("B", "x2", "g2", "gnd")
	if blocks := Detect(c, "gnd"); len(blocks) != 0 {
		t.Fatalf("devices sharing only a global net grouped: %+v", blocks)
	}
}

func TestBuildTreeMiller(t *testing.T) {
	c := miller()
	tree, blocks := BuildTree(c, "vdd", "gnd")
	if err := tree.Validate(); err != nil {
		t.Fatalf("built tree invalid: %v", err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3 (DP, CM1, CM2)", len(blocks))
	}
	// Every device appears exactly once in the tree.
	leaves := tree.Leaves()
	if len(leaves) != len(c.Devices) {
		t.Fatalf("tree has %d leaves, want %d", len(leaves), len(c.Devices))
	}
	// Diff pair node carries a symmetry constraint.
	var symNodes, mirrorSym int
	for _, ch := range tree.Children {
		if ch.Kind == constraint.KindSymmetry {
			symNodes++
			if len(ch.SymPairs) > 0 && ch.SymPairs[0][0] != "P1" {
				mirrorSym++
			}
		}
	}
	if symNodes < 2 {
		t.Fatalf("want >= 2 symmetry nodes (DP + matched mirror), got %d", symNodes)
	}
}

func TestBuildTreeRatioedMirrorIsProximity(t *testing.T) {
	c := netlist.NewCircuit("x")
	add := func(name, d, g, s string, fw int) {
		c.MustAdd(&netlist.Device{
			Name:  name,
			Type:  netlist.NMOS,
			Ports: map[string]string{"D": d, "G": g, "S": s, "B": s},
			FW:    fw, FH: 10,
		})
	}
	add("A", "bias", "bias", "gnd", 10) // diode
	add("B", "x", "bias", "gnd", 40)    // 4x ratio
	tree, _ := BuildTree(c, "vdd")
	found := false
	for _, ch := range tree.Children {
		if ch.Kind == constraint.KindProximity && contains(ch.Devices, "A") {
			found = true
		}
		if ch.Kind == constraint.KindSymmetry && contains(ch.Devices, "A") {
			t.Fatal("ratioed mirror must not become a symmetric pair")
		}
	}
	if !found {
		t.Fatal("ratioed mirror not grouped as proximity cluster")
	}
}

func TestBasicModuleSets(t *testing.T) {
	tree := &constraint.Node{
		Name:    "top",
		Devices: []string{"X"},
		Children: []*constraint.Node{
			{Name: "dp", Devices: []string{"A", "B"}},
			{Name: "inner", Children: []*constraint.Node{
				{Name: "cm", Devices: []string{"C", "D", "E"}},
			}},
		},
	}
	sets := BasicModuleSets(tree)
	if len(sets) != 3 {
		t.Fatalf("got %d sets, want 3: %v", len(sets), sets)
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total != 6 {
		t.Fatalf("sets cover %d modules, want 6", total)
	}
}

func TestBlockKindString(t *testing.T) {
	if DiffPair.String() != "diff-pair" || CurrentMirror.String() != "current-mirror" || Cluster.String() != "cluster" {
		t.Fatal("BlockKind strings wrong")
	}
}
