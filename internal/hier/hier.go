// Package hier detects circuit hierarchy from a device-level netlist,
// in the spirit of the sizing-rules method (Graeb et al. [9], Massier
// et al. [21]) the paper cites as the automatic way to obtain the
// hierarchy tree of Section IV (Fig. 6) and the clusters of Section
// III. It recognizes the basic analog building blocks — differential
// pairs and current mirrors — and groups the remaining devices by
// connectivity, producing:
//
//   - a hierarchy tree (constraint.Node) whose leaf sub-circuits are
//     the "basic module sets" of the deterministic placer, and
//   - the layout constraints those blocks imply: symmetry for
//     differential pairs, common-centroid for current mirrors,
//     proximity for connectivity clusters.
package hier

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/netlist"
)

// BlockKind classifies a recognized structure.
type BlockKind int

// Recognized analog building blocks.
const (
	DiffPair BlockKind = iota
	CurrentMirror
	Cluster // connectivity group with no specific structure
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case DiffPair:
		return "diff-pair"
	case CurrentMirror:
		return "current-mirror"
	case Cluster:
		return "cluster"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Block is one recognized structure over device names.
type Block struct {
	Kind    BlockKind
	Name    string
	Devices []string
}

// Detect recognizes differential pairs and current mirrors in the
// circuit. globals name supply nets (ignored for matching
// common-source tests, since every device shares them). Devices are
// assigned to at most one block, differential pairs taking precedence;
// leftovers are not reported (see BuildTree for full coverage).
func Detect(c *netlist.Circuit, globals ...string) []Block {
	isGlobal := map[string]bool{}
	for _, g := range globals {
		isGlobal[g] = true
	}
	taken := map[string]bool{}
	var blocks []Block

	mosDevices := make([]*netlist.Device, 0, len(c.Devices))
	for _, d := range c.Devices {
		if d.IsMOS() {
			mosDevices = append(mosDevices, d)
		}
	}

	// Differential pairs: two same-type MOS sharing a non-global
	// source net, with distinct gate nets.
	bySource := map[string][]*netlist.Device{}
	for _, d := range mosDevices {
		s := d.Ports["S"]
		if s != "" && !isGlobal[s] {
			bySource[s] = append(bySource[s], d)
		}
	}
	for _, net := range sortedKeys(bySource) {
		devs := bySource[net]
		for i := 0; i < len(devs); i++ {
			for j := i + 1; j < len(devs); j++ {
				a, b := devs[i], devs[j]
				if taken[a.Name] || taken[b.Name] || a.Type != b.Type {
					continue
				}
				if a.Ports["G"] == b.Ports["G"] {
					continue // common gate: mirror-like, not a diff pair
				}
				taken[a.Name], taken[b.Name] = true, true
				blocks = append(blocks, Block{
					Kind:    DiffPair,
					Name:    fmt.Sprintf("dp_%s_%s", a.Name, b.Name),
					Devices: []string{a.Name, b.Name},
				})
			}
		}
	}

	// Current mirrors: same-type MOS sharing gate net and source net,
	// at least one diode-connected (D == G).
	type key struct {
		g, s string
		t    netlist.DeviceType
	}
	byGS := map[key][]*netlist.Device{}
	for _, d := range mosDevices {
		if taken[d.Name] {
			continue
		}
		g, s := d.Ports["G"], d.Ports["S"]
		if g == "" || s == "" || isGlobal[g] {
			continue
		}
		byGS[key{g, s, d.Type}] = append(byGS[key{g, s, d.Type}], d)
	}
	keys := make([]key, 0, len(byGS))
	for k := range byGS {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].g != keys[j].g {
			return keys[i].g < keys[j].g
		}
		if keys[i].s != keys[j].s {
			return keys[i].s < keys[j].s
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		devs := byGS[k]
		if len(devs) < 2 {
			continue
		}
		diode := false
		for _, d := range devs {
			if d.Ports["D"] == d.Ports["G"] {
				diode = true
				break
			}
		}
		if !diode {
			continue
		}
		names := make([]string, 0, len(devs))
		for _, d := range devs {
			if !taken[d.Name] {
				names = append(names, d.Name)
			}
		}
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		for _, n := range names {
			taken[n] = true
		}
		blocks = append(blocks, Block{
			Kind:    CurrentMirror,
			Name:    "cm_" + names[0],
			Devices: names,
		})
	}
	return blocks
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BuildTree detects blocks and assembles the layout design hierarchy:
// a root node whose children are the recognized blocks (as
// constraint-carrying sub-circuits) plus one node per remaining
// device. Differential pairs become symmetry nodes, current mirrors
// become common-centroid nodes (each device contributing itself as a
// single unit), and the root itself carries no constraint.
func BuildTree(c *netlist.Circuit, globals ...string) (*constraint.Node, []Block) {
	blocks := Detect(c, globals...)
	root := &constraint.Node{Name: c.Name}
	used := map[string]bool{}
	for _, b := range blocks {
		child := &constraint.Node{Name: b.Name, Devices: b.Devices}
		switch b.Kind {
		case DiffPair:
			child.Kind = constraint.KindSymmetry
			child.SymPairs = [][2]string{{b.Devices[0], b.Devices[1]}}
		case CurrentMirror:
			// Mirror devices with identical footprints can be matched
			// as a symmetric row (pairs outside-in, central self for
			// odd counts); ratioed mirrors fall back to proximity.
			if equalFootprints(c, b.Devices) {
				child.Kind = constraint.KindSymmetry
				for i, j := 0, len(b.Devices)-1; i < j; i, j = i+1, j-1 {
					child.SymPairs = append(child.SymPairs, [2]string{b.Devices[i], b.Devices[j]})
				}
				if len(b.Devices)%2 == 1 {
					child.SymSelfs = []string{b.Devices[len(b.Devices)/2]}
				}
			} else {
				child.Kind = constraint.KindProximity
			}
		default:
			child.Kind = constraint.KindProximity
		}
		root.Children = append(root.Children, child)
		for _, d := range b.Devices {
			used[d] = true
		}
	}
	for _, d := range c.Devices {
		if !used[d.Name] {
			root.Devices = append(root.Devices, d.Name)
		}
	}
	return root, blocks
}

// equalFootprints reports whether all named devices share one
// footprint.
func equalFootprints(c *netlist.Circuit, names []string) bool {
	if len(names) == 0 {
		return true
	}
	first := c.Device(names[0])
	for _, n := range names[1:] {
		d := c.Device(n)
		if d == nil || first == nil || d.FW != first.FW || d.FH != first.FH {
			return false
		}
	}
	return true
}

// BasicModuleSets returns the leaf-level module groups of a hierarchy
// tree — the "basic module sets" whose placements the deterministic
// placer of Section IV enumerates exhaustively. Each set is the device
// list of one leaf node (a node without children); direct devices of
// inner nodes form singleton sets.
func BasicModuleSets(root *constraint.Node) [][]string {
	var out [][]string
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		if len(n.Children) == 0 {
			if len(n.Devices) > 0 {
				out = append(out, append([]string(nil), n.Devices...))
			}
			return
		}
		for _, d := range n.Devices {
			out = append(out, []string{d})
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
