// Package geom provides the low-level planar geometry used by every
// placement representation in this repository: points, rectangles,
// placements (named rectangles), bounding boxes, overlap tests and the
// symmetry-axis arithmetic needed to validate analog layout constraints.
//
// All coordinates are integers ("database units"; think nanometers or an
// arbitrary manufacturing grid). Integer coordinates make packing
// algorithms exact and make symmetry checks robust: a symmetric pair is
// checked with doubled coordinates so that axes that fall between grid
// lines need no floating point.
package geom

import (
	"fmt"
	"sort"
)

// Point is a location on the integer grid.
type Point struct {
	X, Y int
}

// Add returns the translate of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle given by its lower-left corner and
// its width and height. A Rect with non-positive W or H is degenerate;
// packing code never produces one, but validators tolerate them.
type Rect struct {
	X, Y int // lower-left corner
	W, H int // extent; W,H >= 0 for well-formed rectangles
}

// NewRect returns the rectangle with lower-left corner (x, y), width w
// and height h.
func NewRect(x, y, w, h int) Rect { return Rect{x, y, w, h} }

// X2 returns the x coordinate of the right edge.
func (r Rect) X2() int { return r.X + r.W }

// Y2 returns the y coordinate of the top edge.
func (r Rect) Y2() int { return r.Y + r.H }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() int64 {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return int64(r.W) * int64(r.H)
}

// CenterX2 returns twice the x coordinate of the center of r. Doubling
// keeps the value integral when the center lies on a half-grid point.
func (r Rect) CenterX2() int { return 2*r.X + r.W }

// CenterY2 returns twice the y coordinate of the center of r.
func (r Rect) CenterY2() int { return 2*r.Y + r.H }

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X + dx, r.Y + dy, r.W, r.H}
}

// Rotate90 returns r with width and height exchanged, keeping the
// lower-left corner fixed. Topological packers use it for the "rotate
// module" perturbation.
func (r Rect) Rotate90() Rect { return Rect{r.X, r.Y, r.H, r.W} }

// Intersects reports whether r and s overlap in a region of positive
// area. Rectangles that merely share an edge or corner do not intersect.
func (r Rect) Intersects(s Rect) bool {
	return r.X < s.X2() && s.X < r.X2() && r.Y < s.Y2() && s.Y < r.Y2()
}

// Intersection returns the overlapping region of r and s, and whether
// the overlap has positive area.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	x1 := max(r.X, s.X)
	y1 := max(r.Y, s.Y)
	x2 := min(r.X2(), s.X2())
	y2 := min(r.Y2(), s.Y2())
	if x1 >= x2 || y1 >= y2 {
		return Rect{}, false
	}
	return Rect{x1, y1, x2 - x1, y2 - y1}, true
}

// Union returns the smallest rectangle containing both r and s.
// Degenerate inputs (zero W and H) are treated as empty and ignored if
// the other operand is non-degenerate.
func (r Rect) Union(s Rect) Rect {
	if r.W == 0 && r.H == 0 {
		return s
	}
	if s.W == 0 && s.H == 0 {
		return r
	}
	x1 := min(r.X, s.X)
	y1 := min(r.Y, s.Y)
	x2 := max(r.X2(), s.X2())
	y2 := max(r.Y2(), s.Y2())
	return Rect{x1, y1, x2 - x1, y2 - y1}
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.X <= s.X && r.Y <= s.Y && r.X2() >= s.X2() && r.Y2() >= s.Y2()
}

// ContainsPoint reports whether p lies inside r (boundary inclusive on
// the low edges, exclusive on the high edges, the half-open convention).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.X && p.X < r.X2() && p.Y >= r.Y && p.Y < r.Y2()
}

// MirrorX returns r mirrored about the vertical line x = axis2/2, where
// axis2 is twice the axis coordinate (so axes on half-grid points stay
// exact). The mirror of a point x is axis2 - x; the right edge of r
// becomes the left edge of the image.
func (r Rect) MirrorX(axis2 int) Rect {
	return Rect{axis2 - r.X2(), r.Y, r.W, r.H}
}

// MirrorY returns r mirrored about the horizontal line y = axis2/2.
func (r Rect) MirrorY(axis2 int) Rect {
	return Rect{r.X, axis2 - r.Y2(), r.W, r.H}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X, r.Y, r.W, r.H)
}

// Placement maps module names to their placed rectangles. It is the
// common output format of every placer in this repository.
type Placement map[string]Rect

// Clone returns a deep copy of p.
func (p Placement) Clone() Placement {
	q := make(Placement, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Names returns the module names in sorted order, for deterministic
// iteration and printing.
func (p Placement) Names() []string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// BBox returns the bounding rectangle of all modules in p. The bounding
// box of an empty placement is the zero Rect.
func (p Placement) BBox() Rect {
	var bb Rect
	first := true
	for _, r := range p {
		if first {
			bb = r
			first = false
			continue
		}
		bb = bb.Union(r)
	}
	return bb
}

// Area returns the area of the bounding box of p.
func (p Placement) Area() int64 { return p.BBox().Area() }

// ModuleArea returns the sum of module areas (the denominator of the
// "area usage" metric of Table I in the paper).
func (p Placement) ModuleArea() int64 {
	var a int64
	for _, r := range p {
		a += r.Area()
	}
	return a
}

// AreaUsage returns bounding-box area divided by total module area, the
// metric reported in Table I (1.0 means a perfectly packed placement).
// It returns 0 for an empty placement.
func (p Placement) AreaUsage() float64 {
	m := p.ModuleArea()
	if m == 0 {
		return 0
	}
	return float64(p.Area()) / float64(m)
}

// Overlaps returns the pairs of module names whose rectangles overlap
// with positive area, each pair in sorted name order and the list
// sorted lexicographically. A legal placement returns an empty slice.
//
// The check is a plane sweep over the left edges with an active set
// pruned by right edge: near-linear on legal and almost-legal
// placements instead of the naive n²/2 pairs of map lookups, which
// profiling showed dominating whole solves from n ≈ 10⁴ up.
func (p Placement) Overlaps() [][2]string {
	names := p.Names()
	n := len(names)
	rects := make([]Rect, n)
	for i, nm := range names {
		rects[i] = p[nm]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rects[order[a]].X < rects[order[b]].X })
	var out [][2]string
	active := make([]int, 0, 16)
	for _, i := range order {
		r := rects[i]
		keep := active[:0]
		for _, j := range active {
			if rects[j].X2() <= r.X {
				continue // ended before the sweep line; drop
			}
			keep = append(keep, j)
			// The prune above only discards definite non-overlaps, so
			// the full Intersects keeps degenerate-rectangle semantics
			// identical to the pairwise check.
			if r.Intersects(rects[j]) {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]string{names[a], names[b]})
			}
		}
		active = append(keep, i)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Legal reports whether no two modules overlap.
func (p Placement) Legal() bool { return len(p.Overlaps()) == 0 }

// Translate moves every module by (dx, dy).
func (p Placement) Translate(dx, dy int) {
	for k, r := range p {
		p[k] = r.Translate(dx, dy)
	}
}

// Normalize translates p so its bounding box has lower-left corner at
// the origin.
func (p Placement) Normalize() {
	if len(p) == 0 {
		return
	}
	bb := p.BBox()
	p.Translate(-bb.X, -bb.Y)
}

// AspectRatio returns height divided by width of the bounding box, or 0
// when the width is zero.
func (p Placement) AspectRatio() float64 {
	bb := p.BBox()
	if bb.W == 0 {
		return 0
	}
	return float64(bb.H) / float64(bb.W)
}

// Deadspace returns bounding-box area minus module area, the unused
// silicon the paper's placers minimize.
func (p Placement) Deadspace() int64 { return p.Area() - p.ModuleArea() }

// SymmetricPairAboutX reports whether rectangles a and b are mirror
// images about the vertical line x = axis2/2 (axis2 = doubled axis
// coordinate): equal sizes, equal vertical position, and horizontal
// centers that average to the axis.
func SymmetricPairAboutX(a, b Rect, axis2 int) bool {
	return a.W == b.W && a.H == b.H && a.Y == b.Y &&
		a.CenterX2()+b.CenterX2() == 2*axis2
}

// SelfSymmetricAboutX reports whether rectangle a is centered on the
// vertical line x = axis2/2.
func SelfSymmetricAboutX(a Rect, axis2 int) bool {
	return a.CenterX2() == axis2
}

// SymmetricPairAboutY reports whether a and b are mirror images about
// the horizontal line y = axis2/2.
func SymmetricPairAboutY(a, b Rect, axis2 int) bool {
	return a.W == b.W && a.H == b.H && a.X == b.X &&
		a.CenterY2()+b.CenterY2() == 2*axis2
}

// SelfSymmetricAboutY reports whether a is centered on the horizontal
// line y = axis2/2.
func SelfSymmetricAboutY(a Rect, axis2 int) bool {
	return a.CenterY2() == axis2
}

// HPWL returns the half-perimeter wirelength of a net whose pins are at
// the centers of the named rectangles (doubled-coordinate convention is
// folded back by halving at the end; the result is exact to one unit).
func HPWL(p Placement, pins []string) int {
	if len(pins) == 0 {
		return 0
	}
	minX, maxX := 1<<62, -(1 << 62)
	minY, maxY := 1<<62, -(1 << 62)
	found := false
	for _, name := range pins {
		r, ok := p[name]
		if !ok {
			continue
		}
		found = true
		cx, cy := r.CenterX2(), r.CenterY2()
		minX = min(minX, cx)
		maxX = max(maxX, cx)
		minY = min(minY, cy)
		maxY = max(maxY, cy)
	}
	if !found {
		return 0
	}
	return (maxX - minX + maxY - minY) / 2
}
