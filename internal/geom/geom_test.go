package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectEdges(t *testing.T) {
	r := NewRect(2, 3, 10, 20)
	if r.X2() != 12 || r.Y2() != 23 {
		t.Fatalf("edges: got (%d,%d), want (12,23)", r.X2(), r.Y2())
	}
	if r.Area() != 200 {
		t.Fatalf("area: got %d, want 200", r.Area())
	}
	if r.CenterX2() != 14 || r.CenterY2() != 26 {
		t.Fatalf("center2: got (%d,%d), want (14,26)", r.CenterX2(), r.CenterY2())
	}
}

func TestDegenerateRectArea(t *testing.T) {
	for _, r := range []Rect{{0, 0, 0, 5}, {0, 0, 5, 0}, {0, 0, -1, 5}} {
		if r.Area() != 0 {
			t.Errorf("degenerate %v: area %d, want 0", r, r.Area())
		}
	}
}

func TestIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(5, 5, 10, 10), true},
		{NewRect(10, 0, 5, 5), false},  // shares right edge
		{NewRect(0, 10, 5, 5), false},  // shares top edge
		{NewRect(10, 10, 5, 5), false}, // shares corner
		{NewRect(-5, -5, 5, 5), false}, // shares lower-left corner
		{NewRect(2, 2, 3, 3), true},    // contained
		{NewRect(-5, 2, 30, 3), true},  // crosses
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestIntersection(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 10, 10)
	got, ok := a.Intersection(b)
	if !ok || got != NewRect(5, 5, 5, 5) {
		t.Fatalf("Intersection = %v,%v, want [5,5 5x5],true", got, ok)
	}
	if _, ok := a.Intersection(NewRect(10, 0, 5, 5)); ok {
		t.Fatal("edge-sharing rectangles must not intersect")
	}
}

func TestUnion(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	b := NewRect(10, 10, 5, 5)
	if got := a.Union(b); got != NewRect(0, 0, 15, 15) {
		t.Fatalf("Union = %v, want [0,0 15x15]", got)
	}
	var zero Rect
	if got := zero.Union(b); got != b {
		t.Fatalf("zero.Union = %v, want %v", got, b)
	}
	if got := b.Union(zero); got != b {
		t.Fatalf("Union(zero) = %v, want %v", got, b)
	}
}

func TestContains(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.Contains(NewRect(2, 2, 3, 3)) {
		t.Error("should contain interior rect")
	}
	if !a.Contains(a) {
		t.Error("should contain itself")
	}
	if a.Contains(NewRect(5, 5, 10, 10)) {
		t.Error("should not contain overflowing rect")
	}
}

func TestMirrorX(t *testing.T) {
	// Axis at x=10 (axis2 = 20). [2,?,4x?] -> right edge 6 -> image left
	// edge 20-6 = 14.
	r := NewRect(2, 5, 4, 7)
	m := r.MirrorX(20)
	if m != NewRect(14, 5, 4, 7) {
		t.Fatalf("MirrorX = %v, want [14,5 4x7]", m)
	}
	if mm := m.MirrorX(20); mm != r {
		t.Fatalf("double mirror = %v, want %v", mm, r)
	}
	if !SymmetricPairAboutX(r, m, 20) {
		t.Fatal("rect and its mirror must be a symmetric pair")
	}
}

func TestMirrorY(t *testing.T) {
	r := NewRect(2, 5, 4, 7)
	m := r.MirrorY(30)
	if mm := m.MirrorY(30); mm != r {
		t.Fatalf("double mirror = %v, want %v", mm, r)
	}
	if !SymmetricPairAboutY(r, m, 30) {
		t.Fatal("rect and its y-mirror must be a symmetric pair")
	}
}

// Property: mirroring twice about the same axis is the identity.
func TestMirrorInvolutionProperty(t *testing.T) {
	f := func(x, y int16, w, h uint8, axis int16) bool {
		r := NewRect(int(x), int(y), int(w)+1, int(h)+1)
		a2 := int(axis)
		return r.MirrorX(a2).MirrorX(a2) == r && r.MirrorY(a2).MirrorY(a2) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union always contains both operands; intersection (when it
// exists) is contained in both.
func TestUnionIntersectionProperty(t *testing.T) {
	f := func(ax, ay, bx, by int16, aw, ah, bw, bh uint8) bool {
		a := NewRect(int(ax), int(ay), int(aw)+1, int(ah)+1)
		b := NewRect(int(bx), int(by), int(bw)+1, int(bh)+1)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if in, ok := a.Intersection(b); ok {
			if !a.Contains(in) || !b.Contains(in) {
				return false
			}
			if !a.Intersects(b) {
				return false
			}
		} else if a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementBBoxAndArea(t *testing.T) {
	p := Placement{
		"A": NewRect(0, 0, 10, 10),
		"B": NewRect(10, 0, 5, 20),
	}
	bb := p.BBox()
	if bb != NewRect(0, 0, 15, 20) {
		t.Fatalf("BBox = %v, want [0,0 15x20]", bb)
	}
	if p.Area() != 300 {
		t.Fatalf("Area = %d, want 300", p.Area())
	}
	if p.ModuleArea() != 200 {
		t.Fatalf("ModuleArea = %d, want 200", p.ModuleArea())
	}
	if got := p.AreaUsage(); got != 1.5 {
		t.Fatalf("AreaUsage = %v, want 1.5", got)
	}
	if p.Deadspace() != 100 {
		t.Fatalf("Deadspace = %d, want 100", p.Deadspace())
	}
}

func TestPlacementOverlapsAndLegal(t *testing.T) {
	p := Placement{
		"A": NewRect(0, 0, 10, 10),
		"B": NewRect(5, 5, 10, 10),
		"C": NewRect(100, 100, 1, 1),
	}
	ov := p.Overlaps()
	if len(ov) != 1 || ov[0] != [2]string{"A", "B"} {
		t.Fatalf("Overlaps = %v, want [[A B]]", ov)
	}
	if p.Legal() {
		t.Fatal("placement with overlap must not be legal")
	}
	delete(p, "B")
	if !p.Legal() {
		t.Fatal("placement without overlap must be legal")
	}
}

func TestPlacementNormalize(t *testing.T) {
	p := Placement{
		"A": NewRect(-5, 7, 3, 3),
		"B": NewRect(2, 9, 4, 4),
	}
	p.Normalize()
	bb := p.BBox()
	if bb.X != 0 || bb.Y != 0 {
		t.Fatalf("normalized BBox corner = (%d,%d), want (0,0)", bb.X, bb.Y)
	}
	// Relative positions preserved.
	if p["B"].X-p["A"].X != 7 || p["B"].Y-p["A"].Y != 2 {
		t.Fatal("Normalize changed relative positions")
	}
}

func TestPlacementClone(t *testing.T) {
	p := Placement{"A": NewRect(0, 0, 1, 1)}
	q := p.Clone()
	q["A"] = NewRect(5, 5, 1, 1)
	if p["A"].X != 0 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAspectRatio(t *testing.T) {
	p := Placement{"A": NewRect(0, 0, 10, 20)}
	if got := p.AspectRatio(); got != 2.0 {
		t.Fatalf("AspectRatio = %v, want 2", got)
	}
	var empty Placement
	if got := empty.AspectRatio(); got != 0 {
		t.Fatalf("empty AspectRatio = %v, want 0", got)
	}
}

func TestHPWL(t *testing.T) {
	p := Placement{
		"A": NewRect(0, 0, 2, 2),  // center (1,1)
		"B": NewRect(10, 0, 2, 2), // center (11,1)
		"C": NewRect(0, 20, 2, 2), // center (1,21)
	}
	if got := HPWL(p, []string{"A", "B", "C"}); got != 30 {
		t.Fatalf("HPWL = %d, want 30", got)
	}
	if got := HPWL(p, []string{"A"}); got != 0 {
		t.Fatalf("single-pin HPWL = %d, want 0", got)
	}
	if got := HPWL(p, nil); got != 0 {
		t.Fatalf("empty HPWL = %d, want 0", got)
	}
	// Unknown pins are skipped.
	if got := HPWL(p, []string{"A", "Z"}); got != 0 {
		t.Fatalf("HPWL with unknown pin = %d, want 0", got)
	}
}

func TestSymmetryPredicates(t *testing.T) {
	// Axis x = 10 (axis2 = 20).
	a := NewRect(2, 0, 4, 6)  // centerX2 = 8
	b := NewRect(14, 0, 4, 6) // centerX2 = 32; 8+32 = 40 = 2*20
	if !SymmetricPairAboutX(a, b, 20) {
		t.Fatal("a,b should be symmetric about x=10")
	}
	if SymmetricPairAboutX(a, b.Translate(0, 1), 20) {
		t.Fatal("vertical offset must break x-symmetry")
	}
	if SymmetricPairAboutX(a, NewRect(14, 0, 5, 6), 20) {
		t.Fatal("width mismatch must break symmetry")
	}
	c := NewRect(8, 3, 4, 4) // centerX2 = 20
	if !SelfSymmetricAboutX(c, 20) {
		t.Fatal("c should be self-symmetric about x=10")
	}
	if SelfSymmetricAboutX(c.Translate(1, 0), 20) {
		t.Fatal("translated c must not be self-symmetric")
	}
}

func TestPlacementNames(t *testing.T) {
	p := Placement{"b": {}, "a": {}, "c": {}}
	names := p.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v, want sorted [a b c]", names)
	}
}

// Random legal placements generated on a diagonal must be detected as
// legal; shifting one module onto another must be detected as illegal.
func TestLegalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := Placement{}
		x := 0
		for i := 0; i < 10; i++ {
			w, h := 1+rng.Intn(20), 1+rng.Intn(20)
			p[string(rune('a'+i))] = NewRect(x, 0, w, h)
			x += w
		}
		if !p.Legal() {
			t.Fatalf("trial %d: diagonal placement must be legal", trial)
		}
		p["a"] = p["b"] // stack two modules
		if p.Legal() {
			t.Fatalf("trial %d: stacked modules must be illegal", trial)
		}
	}
}
