package obs

import (
	"sort"
	"sync"
)

// EventKind tags one flight-recorder event.
type EventKind uint8

const (
	// EventStage is one completed temperature stage of one annealing
	// chain: temperature after cooling, best/current cost, cumulative
	// move counters, and (when the adaptive move portfolio is active)
	// the per-move-kind proposal/acceptance table.
	EventStage EventKind = iota + 1
	// EventExchange is one replica-exchange attempt between
	// neighboring tempering rungs Worker and Peer.
	EventExchange
	// EventCheckpoint is one best-so-far snapshot capture.
	EventCheckpoint
	// EventResume marks a run that warm-started from a checkpoint.
	EventResume
	// EventFailpoint is an injected fault observed on the solve path
	// (see internal/fault); Point names the failpoint.
	EventFailpoint
)

// String returns the wire spelling of the kind.
func (k EventKind) String() string {
	switch k {
	case EventStage:
		return "stage"
	case EventExchange:
		return "exchange"
	case EventCheckpoint:
		return "checkpoint"
	case EventResume:
		return "resume"
	case EventFailpoint:
		return "failpoint"
	}
	return "unknown"
}

// MaxMoveKinds bounds the per-move-kind counter arrays inlined in
// Event. Every representation's move table is well under it; a larger
// table records its first MaxMoveKinds kinds.
const MaxMoveKinds = 8

// Event is one flight-recorder record. It is a flat value struct —
// fixed-size arrays, no pointers except the rare Point label (a
// pre-existing constant string, so recording still allocates nothing)
// — so a Flight's ring is one contiguous allocation made up front.
//
// Events deliberately carry no wall-clock: a recording of a
// deterministic solve is deterministic byte for byte (spans carry the
// timing instead). Counters are cumulative per chain as of the event's
// stage.
type Event struct {
	Kind   EventKind
	Worker int32 // chain / tempering rung; -1 for ladder-wide or service-level events
	Stage  int32
	Temp   float64
	Best   float64
	Cur    float64

	Moves    int64
	Accepted int64
	Improved int64

	// Exchange fields: the partner rung and its state, plus whether
	// the Metropolis swap was accepted. Peer is -1 on non-exchange
	// events.
	Peer     int32
	PeerTemp float64
	PeerCost float64
	Accept   bool

	// Adaptive move table as of this stage: KindProposed/KindAccepted
	// hold cumulative per-kind counters for the first NKinds kinds.
	// NKinds is 0 when the adaptive portfolio is off.
	NKinds       uint8
	KindProposed [MaxMoveKinds]uint32
	KindAccepted [MaxMoveKinds]uint32

	// Point names the failpoint on EventFailpoint records.
	Point string

	// Seq is the flight-local arrival index, stamped by Record.
	Seq uint64
}

// DefaultFlightEvents is the event capacity NewFlight substitutes for
// non-positive requests.
const DefaultFlightEvents = 2048

// maxFlightEvents caps the capacity a caller (ultimately an untrusted
// request, via the service's knob) can pin in memory: 1<<16 events of
// ~160 B is ~10 MB.
const maxFlightEvents = 1 << 16

// Flight is a fixed-capacity flight recorder: an overwrite-oldest
// ring of Events, allocated once at construction. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Flight
// is the disabled recorder), so recording sites guard with one
// pointer test.
type Flight struct {
	mu      sync.Mutex
	events  []Event
	next    int
	count   int
	seq     uint64
	dropped uint64
}

// NewFlight builds a recorder holding up to capacity events
// (DefaultFlightEvents when capacity ≤ 0, clamped to 1<<16).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	if capacity > maxFlightEvents {
		capacity = maxFlightEvents
	}
	return &Flight{events: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full. No-op
// on a nil recorder. It never allocates.
func (f *Flight) Record(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	e.Seq = f.seq
	f.seq++
	if f.count == len(f.events) {
		f.dropped++
	}
	f.events[f.next] = e
	f.next = (f.next + 1) % len(f.events)
	if f.count < len(f.events) {
		f.count++
	}
	f.mu.Unlock()
}

// Len reports the number of retained events (0 on nil).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Dropped reports how many events were overwritten (0 on nil).
func (f *Flight) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Capacity reports the ring size (0 on nil).
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.events)
}

// Since returns the retained events with Seq ≥ seq in arrival order
// (ascending Seq) — the live-streaming read: a poller passes the next
// sequence it has not yet seen and receives only the new tail, so an
// SSE handler can drain the ring incrementally while the solve is
// still recording into it. Events already overwritten are simply
// gone (the caller can detect the gap from the Seq jump). Arrival
// order of concurrent chains is scheduler-dependent; live streams
// trade the canonical order of Snapshot for immediacy. Nil recorders
// return nil.
func (f *Flight) Since(seq uint64) []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.count == 0 || f.seq <= seq {
		return nil
	}
	// The retained window is [f.seq-count, f.seq); events are stored in
	// arrival order around the ring.
	first := f.seq - uint64(f.count)
	if seq < first {
		seq = first
	}
	n := int(f.seq - seq)
	out := make([]Event, 0, n)
	start := f.next - n
	for i := 0; i < n; i++ {
		out = append(out, f.events[(start+i+len(f.events))%len(f.events)])
	}
	return out
}

// Snapshot returns the retained events in canonical order: by stage,
// then kind, then worker, then peer, then point, then arrival. The
// arrival order of concurrent chains is scheduler-dependent, but for
// a deterministic solve the recorded *values* are not — under the
// canonical order, a recording that lost no events to overwriting is
// bit-for-bit reproducible for a fixed seed. Nil recorders return nil.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]Event, 0, f.count)
	start := f.next - f.count
	for i := 0; i < f.count; i++ {
		out = append(out, f.events[(start+i+len(f.events))%len(f.events)])
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		return a.Seq < b.Seq
	})
	return out
}
