// Package obs is the zero-dependency observability layer: hierarchical
// spans (request → job → engine → anneal → stage) threaded through
// context, and an allocation-bounded flight recorder capturing
// per-stage annealing telemetry (see flight.go). Like internal/fault,
// the package is built to cost nothing when idle: span creation is
// guarded by one atomic load and returns immediately when tracing is
// disarmed, and a nil *Flight records nothing on a nil-receiver check.
// Nothing here imports anything beyond the standard library, and the
// solver packages never pay more than that one load plus one pointer
// test per temperature stage when observability is off — the contract
// BenchmarkAnnealObsOverhead enforces.
//
// Spans are for wall-clock attribution ("where did this request spend
// its 400 ms"), so they carry time.Now timestamps and live in a
// process-wide ring served by the daemon's /debug/spans endpoint.
// Flight events are for search dynamics ("what did the annealer do"),
// so they carry no wall-clock at all: a flight recording of a
// deterministic solve is itself deterministic, byte for byte.
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// armed gates span creation. Flight recorders are armed per solve by
// handing the run a non-nil *Flight instead.
var armed atomic.Bool

// Enable arms the span tracer process-wide.
func Enable() { armed.Store(true) }

// Disable disarms the span tracer. Spans already in the ring remain
// readable.
func Disable() { armed.Store(false) }

// Enabled reports whether the span tracer is armed.
func Enabled() bool { return armed.Load() }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// KV builds a string attribute.
func KV(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Span is one finished span in the ring: a named, timed slice of work
// with its parent link, so exporters can rebuild the tree.
type Span struct {
	ID         uint64    `json:"id"`
	Parent     uint64    `json:"parent,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// ActiveSpan is a span still running. The zero of the API is the nil
// ActiveSpan: every method is a no-op on nil, so call sites never
// branch on whether tracing is armed.
type ActiveSpan struct {
	span Span
}

// ctxKey carries the current span id through context.
type ctxKey struct{}

var nextSpanID atomic.Uint64

// StartSpan opens a span as a child of the span on ctx (if any) and
// returns a derived context carrying it. When the tracer is disarmed
// it returns ctx unchanged and a nil span — one atomic load, no
// allocation. ctx may be nil (treated as context.Background()).
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	if !armed.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(ctxKey{}).(uint64)
	s := &ActiveSpan{span: Span{
		ID:     nextSpanID.Add(1),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
		Attrs:  attrs,
	}}
	return context.WithValue(ctx, ctxKey{}, s.span.ID), s
}

// ChildSpan opens a span parented on ctx without deriving a new
// context — for leaf spans (per-stage timing) where pushing a context
// value per iteration would be waste.
func ChildSpan(ctx context.Context, name string, attrs ...Attr) *ActiveSpan {
	if !armed.Load() {
		return nil
	}
	var parent uint64
	if ctx != nil {
		parent, _ = ctx.Value(ctxKey{}).(uint64)
	}
	return &ActiveSpan{span: Span{
		ID:     nextSpanID.Add(1),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
		Attrs:  attrs,
	}}
}

// SetAttr adds an annotation to a running span. No-op on nil.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// End finishes the span and publishes it to the ring. No-op on nil,
// so `defer sp.End()` is always safe.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.DurationNS = time.Since(s.span.Start).Nanoseconds()
	spanRing.add(s.span)
}

// ID returns the span's id (0 on nil), for parenting work that crosses
// a goroutine or queue boundary via ContextWithSpan.
func (s *ActiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SpanID returns the span id ctx carries, 0 when none — the inverse
// of ContextWithSpan, for code that must stash the parent across a
// non-context boundary (a queued job picked up later by a worker).
func SpanID(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(ctxKey{}).(uint64)
	return id
}

// ContextWithSpan returns ctx carrying the given span id as the
// current parent — the hand-off for work resumed on another goroutine
// (a queued job picked up by a worker). A zero id returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// DefaultSpanRing is the span ring's default capacity.
const DefaultSpanRing = 4096

// ring is the fixed-capacity overwrite-oldest store of finished spans.
type ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	count int
}

var spanRing = &ring{buf: make([]Span, DefaultSpanRing)}

func (r *ring) add(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// SetSpanRingCapacity resizes the span ring, dropping recorded spans.
// Capacities below 1 reset to the default.
func SetSpanRingCapacity(n int) {
	if n < 1 {
		n = DefaultSpanRing
	}
	spanRing.mu.Lock()
	spanRing.buf = make([]Span, n)
	spanRing.next = 0
	spanRing.count = 0
	spanRing.mu.Unlock()
}

// Spans snapshots the ring's finished spans, oldest first by span id
// (the recording order of End calls can interleave across goroutines;
// ids are allocated at StartSpan, giving one stable order).
func Spans() []Span {
	spanRing.mu.Lock()
	out := make([]Span, 0, spanRing.count)
	start := spanRing.next - spanRing.count
	for i := 0; i < spanRing.count; i++ {
		out = append(out, spanRing.buf[(start+i+len(spanRing.buf))%len(spanRing.buf)])
	}
	spanRing.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ResetSpans clears the span ring (tests).
func ResetSpans() {
	spanRing.mu.Lock()
	spanRing.next = 0
	spanRing.count = 0
	spanRing.mu.Unlock()
}
