package obs

import (
	"context"
	"sync"
	"testing"
)

func TestDisarmedSpanIsNil(t *testing.T) {
	Disable()
	ResetSpans()
	ctx := context.Background()
	c2, sp := StartSpan(ctx, "request")
	if sp != nil {
		t.Fatal("disarmed StartSpan returned a span")
	}
	if c2 != ctx {
		t.Fatal("disarmed StartSpan derived a new context")
	}
	// Every method must be nil-safe.
	sp.SetAttr("k", "v")
	sp.End()
	if ChildSpan(ctx, "stage") != nil {
		t.Fatal("disarmed ChildSpan returned a span")
	}
	if got := Spans(); len(got) != 0 {
		t.Fatalf("disarmed tracer recorded %d spans", len(got))
	}
}

func TestSpanHierarchy(t *testing.T) {
	Enable()
	defer Disable()
	ResetSpans()
	ctx, root := StartSpan(context.Background(), "request", KV("hash", "abc"))
	ctx2, job := StartSpan(ctx, "job")
	stage := ChildSpan(ctx2, "stage", Int("stage", 3))
	stage.End()
	job.End()
	root.SetAttr("status", "done")
	root.End()

	spans := Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["job"].Parent != byName["request"].ID {
		t.Errorf("job parented to %d, want request %d", byName["job"].Parent, byName["request"].ID)
	}
	if byName["stage"].Parent != byName["job"].ID {
		t.Errorf("stage parented to %d, want job %d", byName["stage"].Parent, byName["job"].ID)
	}
	if byName["request"].Parent != 0 {
		t.Errorf("request has parent %d, want root", byName["request"].Parent)
	}
	var gotStatus bool
	for _, a := range byName["request"].Attrs {
		if a.Key == "status" && a.Value == "done" {
			gotStatus = true
		}
	}
	if !gotStatus {
		t.Error("SetAttr lost the status attribute")
	}
}

func TestContextWithSpanHandoff(t *testing.T) {
	Enable()
	defer Disable()
	ResetSpans()
	_, req := StartSpan(context.Background(), "request")
	id := req.ID()
	req.End()
	// A worker goroutine resumes under the request's span by id.
	ctx := ContextWithSpan(context.Background(), id)
	_, job := StartSpan(ctx, "job")
	job.End()
	spans := Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("handed-off job parented to %d, want %d", spans[1].Parent, spans[0].ID)
	}
}

func TestSpanRingOverwrite(t *testing.T) {
	Enable()
	defer func() { Disable(); SetSpanRingCapacity(0) }()
	SetSpanRingCapacity(4)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(context.Background(), "s")
		sp.End()
	}
	spans := Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatal("snapshot not ordered by id")
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(Event{Kind: EventStage})
	if f.Len() != 0 || f.Dropped() != 0 || f.Capacity() != 0 || f.Snapshot() != nil {
		t.Fatal("nil flight not inert")
	}
}

func TestFlightRingOverwrite(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(Event{Kind: EventStage, Stage: int32(i)})
	}
	if f.Len() != 4 {
		t.Fatalf("len %d, want 4", f.Len())
	}
	if f.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", f.Dropped())
	}
	ev := f.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("snapshot %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if int(e.Stage) != 6+i {
			t.Fatalf("event %d has stage %d, want %d (oldest overwritten first)", i, e.Stage, 6+i)
		}
	}
}

func TestFlightRecordNoAlloc(t *testing.T) {
	f := NewFlight(64)
	e := Event{Kind: EventStage, Temp: 1.5, NKinds: 3}
	allocs := testing.AllocsPerRun(100, func() {
		f.Record(e)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per call, want 0", allocs)
	}
}

// TestFlightCanonicalOrder: concurrent recorders interleave
// nondeterministically, but Snapshot's canonical order depends only on
// the recorded values.
func TestFlightCanonicalOrder(t *testing.T) {
	snapshot := func() []Event {
		f := NewFlight(256)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := 0; s < 10; s++ {
					f.Record(Event{Kind: EventStage, Worker: int32(w), Stage: int32(s), Peer: -1, Best: float64(w*100 + s)})
				}
			}(w)
		}
		wg.Wait()
		f.Record(Event{Kind: EventExchange, Worker: 0, Peer: 1, Stage: 5})
		return f.Snapshot()
	}
	a, b := snapshot(), snapshot()
	if len(a) != len(b) || len(a) != 41 {
		t.Fatalf("snapshots have %d and %d events, want 41", len(a), len(b))
	}
	for i := range a {
		ea, eb := a[i], b[i]
		ea.Seq, eb.Seq = 0, 0 // arrival index is scheduler-dependent
		if ea != eb {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestFlightCapacityClamp(t *testing.T) {
	if got := NewFlight(0).Capacity(); got != DefaultFlightEvents {
		t.Errorf("NewFlight(0) capacity %d, want default %d", got, DefaultFlightEvents)
	}
	if got := NewFlight(1 << 30).Capacity(); got != maxFlightEvents {
		t.Errorf("NewFlight(1<<30) capacity %d, want clamp %d", got, maxFlightEvents)
	}
}

// TestFlightSince pins the live-streaming read: Since(seq) returns
// only the arrival-ordered tail at or past seq, clamped to the
// retained window after overwrites, and nothing once drained.
func TestFlightSince(t *testing.T) {
	var nilf *Flight
	if nilf.Since(0) != nil {
		t.Fatal("nil flight Since not inert")
	}
	f := NewFlight(4)
	if f.Since(0) != nil {
		t.Fatal("empty flight returned events")
	}
	f.Record(Event{Kind: EventStage, Stage: 0})
	f.Record(Event{Kind: EventStage, Stage: 1})
	ev := f.Since(0)
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("Since(0) = %+v, want seqs [0 1]", ev)
	}
	next := ev[len(ev)-1].Seq + 1
	if got := f.Since(next); got != nil {
		t.Fatalf("drained flight returned %+v", got)
	}
	f.Record(Event{Kind: EventStage, Stage: 2})
	ev = f.Since(next)
	if len(ev) != 1 || ev[0].Stage != 2 || ev[0].Seq != 2 {
		t.Fatalf("incremental Since = %+v, want the one new event", ev)
	}
	// Overflow the ring: a reader far behind is clamped to the retained
	// window (oldest events are gone, newest kept, in arrival order).
	for i := 3; i < 10; i++ {
		f.Record(Event{Kind: EventStage, Stage: int32(i)})
	}
	ev = f.Since(0)
	if len(ev) != 4 {
		t.Fatalf("Since(0) after overflow returned %d events, want capacity 4", len(ev))
	}
	for i, e := range ev {
		if int(e.Stage) != 6+i || e.Seq != uint64(6+i) {
			t.Fatalf("event %d = stage %d seq %d, want %d", i, e.Stage, e.Seq, 6+i)
		}
	}
}
