package shapefn

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/geom"
)

func TestLeafShapes(t *testing.T) {
	f := Leaf("m", 10, 4, true, false)
	if len(f.Shapes) != 2 {
		t.Fatalf("rotatable leaf has %d shapes, want 2", len(f.Shapes))
	}
	f = Leaf("m", 10, 4, false, false)
	if len(f.Shapes) != 1 || f.Shapes[0].W != 10 || f.Shapes[0].H != 4 {
		t.Fatalf("leaf function wrong: %+v", f.Shapes)
	}
	// Square modules do not duplicate on rotation.
	f = Leaf("m", 6, 6, true, false)
	if len(f.Shapes) != 1 {
		t.Fatalf("square leaf has %d shapes, want 1", len(f.Shapes))
	}
}

func TestPruneDominance(t *testing.T) {
	f := prune([]Shape{
		{W: 10, H: 10},
		{W: 12, H: 8},
		{W: 12, H: 9},  // dominated by (12,8)
		{W: 15, H: 10}, // dominated by (10,10)
		{W: 20, H: 2},
	})
	if len(f.Shapes) != 3 {
		t.Fatalf("pruned to %d shapes, want 3: %+v", len(f.Shapes), f.Shapes)
	}
	// Heights strictly decrease with width.
	for i := 1; i < len(f.Shapes); i++ {
		if f.Shapes[i].W <= f.Shapes[i-1].W || f.Shapes[i].H >= f.Shapes[i-1].H {
			t.Fatalf("pruned function not staircase: %+v", f.Shapes)
		}
	}
}

func TestPruneCap(t *testing.T) {
	var shapes []Shape
	for i := 0; i < 200; i++ {
		shapes = append(shapes, Shape{W: i + 1, H: 400 - i})
	}
	f := prune(shapes)
	if len(f.Shapes) > maxShapes {
		t.Fatalf("function size %d exceeds cap %d", len(f.Shapes), maxShapes)
	}
	// Extremes survive thinning.
	if f.Shapes[0].W != 1 || f.Shapes[len(f.Shapes)-1].W != 200 {
		t.Fatal("thinning lost the extreme shapes")
	}
}

func TestAddRSF(t *testing.T) {
	f := Leaf("a", 10, 5, false, false)
	g := Leaf("b", 5, 10, false, false)
	sum := AddRSF(f, g)
	// Candidates: (15,10) horizontal and (10,15) vertical; neither
	// dominates the other.
	if len(sum.Shapes) != 2 {
		t.Fatalf("RSF sum has %d shapes, want 2: %+v", len(sum.Shapes), sum.Shapes)
	}
	// Reconstruction: modules adjacent, no overlap.
	for _, s := range sum.Shapes {
		pl := s.Placement()
		if !pl.Legal() || len(pl) != 2 {
			t.Fatalf("bad reconstruction %v", pl)
		}
		bb := pl.BBox()
		if bb.W != s.W || bb.H != s.H {
			t.Fatalf("reconstructed bbox %v != shape %dx%d", bb, s.W, s.H)
		}
	}
}

// Fig. 7: the enhanced addition interleaves an L-shaped operand with
// the second operand, making the sum narrower than the bounding-box
// addition by w_imp.
func TestEnhancedAdditionInterleaves(t *testing.T) {
	// Operand a: wide base A (8x2) with tall thin T (2x8) on its left
	// edge -> L-shape, outline 8 wide, 10 tall at [0,2).
	a := Function{Shapes: []Shape{{
		W: 8, H: 10,
		tree: &tnode{
			name: "A", w: 8, h: 2,
			right: &tnode{name: "T", w: 2, h: 8},
		},
	}}}
	// Operand b: C (6x7) fits into the notch above A.
	b := Leaf("C", 6, 7, false, true)
	sum := AddESF(a, b, nil)
	best, ok := sum.MinArea()
	if !ok {
		t.Fatal("empty sum")
	}
	// Perfect interleaving packs everything in 8x10 = 80; the
	// bounding-box horizontal sum is 14x10 = 140.
	if best.W != 8 || best.H != 10 {
		t.Fatalf("best enhanced shape %dx%d, want 8x10 (w_imp = 6)", best.W, best.H)
	}
	pl := best.Placement()
	if !pl.Legal() || len(pl) != 3 {
		t.Fatalf("bad merged placement %v", pl)
	}
	// RSF on the same operands cannot do better than 112 (14x8 is not
	// available; candidates are 14x10 and 8x17).
	rsf, _ := AddRSF(a, b).MinArea()
	if int64(rsf.W)*int64(rsf.H) <= int64(best.W)*int64(best.H) {
		t.Fatalf("RSF area %d should exceed ESF area %d", rsf.W*rsf.H, best.W*best.H)
	}
}

// The checker must veto grafts that deform a symmetric operand, with
// the bounding-box fallback keeping the sum usable.
func TestEnhancedAdditionRespectsConstraints(t *testing.T) {
	g := constraint.SymmetryGroup{
		Name: "pair", Vertical: true,
		Pairs: [][2]string{{"L", "R"}},
	}
	check := func(pl geom.Placement) error {
		if _, ok := pl["L"]; !ok {
			return nil
		}
		return g.Check(pl)
	}
	// Symmetric pair L,R side by side (each 4x6).
	pair := Function{Shapes: []Shape{{
		W: 8, H: 6,
		tree: &tnode{
			name: "L", w: 4, h: 6,
			left: &tnode{name: "R", w: 4, h: 6},
		},
	}}}
	c := Leaf("C", 3, 3, false, true)
	sum := AddESF(pair, c, check)
	if len(sum.Shapes) == 0 {
		t.Fatal("sum is empty")
	}
	for _, s := range sum.Shapes {
		pl := s.Placement()
		if err := g.Check(pl); err != nil {
			t.Fatalf("shape %dx%d violates pair symmetry: %v", s.W, s.H, err)
		}
		if !pl.Legal() {
			t.Fatalf("shape %dx%d overlaps", s.W, s.H)
		}
	}
}

func benchDims(b *circuits.Bench) func(string) (int, int, error) {
	return func(name string) (int, int, error) {
		d := b.Circuit.Device(name)
		if d == nil {
			return 0, 0, errUnknownDevice(name)
		}
		return d.FW, d.FH, nil
	}
}

type errUnknownDevice string

func (e errUnknownDevice) Error() string { return "unknown device " + string(e) }

func TestEnumerateSetRespectsSymmetry(t *testing.T) {
	bench := circuits.MillerOpAmp()
	p, err := NewPlacer(bench.Tree, benchDims(bench), true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.EnumerateSet([]string{"P1", "P2"})
	if err != nil {
		t.Fatal(err)
	}
	g := constraint.SymmetryGroup{Name: "DP", Vertical: true, Pairs: [][2]string{{"P1", "P2"}}}
	for _, s := range f.Shapes {
		pl := s.Placement()
		if err := g.Check(pl); err != nil {
			t.Fatalf("enumerated pair shape violates symmetry: %v", err)
		}
	}
	if len(f.Shapes) == 0 {
		t.Fatal("no symmetric placements found for the pair")
	}
}

func TestDeterministicPlaceMiller(t *testing.T) {
	bench := circuits.MillerOpAmp()
	for _, enhanced := range []bool{false, true} {
		p, err := NewPlacer(bench.Tree, benchDims(bench), enhanced)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Place(bench.Tree)
		if err != nil {
			t.Fatalf("enhanced=%v: %v", enhanced, err)
		}
		if len(res.Placement) != len(bench.Circuit.Devices) {
			t.Fatalf("enhanced=%v: placement covers %d of %d devices",
				enhanced, len(res.Placement), len(bench.Circuit.Devices))
		}
		if !res.Placement.Legal() {
			t.Fatalf("enhanced=%v: overlaps %v", enhanced, res.Placement.Overlaps())
		}
		// Symmetry constraints hold on the final placement.
		dp := constraint.SymmetryGroup{Name: "DP", Vertical: true, Pairs: [][2]string{{"P1", "P2"}}}
		if err := dp.Check(res.Placement); err != nil {
			t.Fatalf("enhanced=%v: %v", enhanced, err)
		}
		cm := constraint.SymmetryGroup{Name: "CM1", Vertical: true, Pairs: [][2]string{{"N3", "N4"}}}
		if err := cm.Check(res.Placement); err != nil {
			t.Fatalf("enhanced=%v: %v", enhanced, err)
		}
	}
}

// Table I's headline: ESF area is never worse than RSF area, with the
// gap appearing as instances grow.
func TestESFNotWorseThanRSF(t *testing.T) {
	for _, name := range []string{"comparator_v2", "miller_v2"} {
		bench, err := circuits.TableIBench(name)
		if err != nil {
			t.Fatal(err)
		}
		areas := map[bool]int64{}
		for _, enhanced := range []bool{false, true} {
			p, err := NewPlacer(bench.Tree, benchDims(bench), enhanced)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Place(bench.Tree)
			if err != nil {
				t.Fatalf("%s enhanced=%v: %v", name, enhanced, err)
			}
			if !res.Placement.Legal() {
				t.Fatalf("%s enhanced=%v: overlaps", name, enhanced)
			}
			areas[enhanced] = res.Placement.Area()
		}
		if areas[true] > areas[false] {
			t.Errorf("%s: ESF area %d worse than RSF %d", name, areas[true], areas[false])
		}
	}
}

func TestShapeBBoxMatchesReconstruction(t *testing.T) {
	bench := circuits.MillerOpAmp()
	p, err := NewPlacer(bench.Tree, benchDims(bench), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Place(bench.Tree)
	if err != nil {
		t.Fatal(err)
	}
	bb := res.Placement.BBox()
	if bb.W != res.Shape.W || bb.H != res.Shape.H {
		t.Fatalf("shape %dx%d but reconstruction %dx%d", res.Shape.W, res.Shape.H, bb.W, bb.H)
	}
}

func TestMinAreaEmpty(t *testing.T) {
	if _, ok := (Function{}).MinArea(); ok {
		t.Fatal("empty function must report no shape")
	}
}
