package shapefn

import (
	"fmt"

	"repro/internal/bstar"
	"repro/internal/constraint"
	"repro/internal/geom"
)

// maxEnumSet bounds exhaustive enumeration of a basic module set:
// n!·Catalan(n) placements (times rotations) are enumerated for sets
// up to this size; larger sets are combined incrementally by shape
// addition. The paper's basic module sets are "a small number of
// modules, e.g., the transistors of a differential pair or a current
// mirror", so real sets stay below this bound.
const maxEnumSet = 6

// Placer runs the deterministic, hierarchically bounded enumeration of
// Section IV: enumerate all placements of each basic module set (the
// leaves of the hierarchy tree), store them as (enhanced) shape
// functions, and combine the functions bottom-up along the tree.
type Placer struct {
	// Enhanced selects enhanced shape functions (ESF) instead of
	// regular ones (RSF).
	Enhanced bool
	// AllowRotate enumerates module rotations inside basic sets.
	AllowRotate bool

	dims     func(string) (int, int, error)
	checkers []setChecker
}

// setChecker is one constraint validator with the module set it
// watches.
type setChecker struct {
	members map[string]bool
	check   func(geom.Placement) error
}

// NewPlacer builds a deterministic placer for a hierarchy tree whose
// device footprints come from dims.
func NewPlacer(tree *constraint.Node, dims func(string) (int, int, error), enhanced bool) (*Placer, error) {
	if tree == nil {
		return nil, fmt.Errorf("shapefn: nil hierarchy tree")
	}
	p := &Placer{Enhanced: enhanced, AllowRotate: true, dims: dims}
	// Collect symmetry validators from the tree. Proximity is implied
	// by construction (shape addition keeps operands adjacent), and
	// module-level common centroid reduces to symmetry (see package
	// circuits).
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		if n.Kind == constraint.KindSymmetry && len(n.SymPairs)+len(n.SymSelfs) > 0 {
			g := constraint.SymmetryGroup{Name: n.Name, Vertical: true}
			g.Pairs = append(g.Pairs, n.SymPairs...)
			g.Selfs = append(g.Selfs, n.SymSelfs...)
			members := map[string]bool{}
			for _, m := range g.Members() {
				members[m] = true
			}
			p.checkers = append(p.checkers, setChecker{
				members: members,
				check:   g.Check,
			})
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	return p, nil
}

// checkerFor returns a Checker validating every constraint fully
// contained in placements that include the given modules (others are
// skipped: a fragment cannot violate a constraint it does not cover).
func (p *Placer) checkerFor() Checker {
	if len(p.checkers) == 0 {
		return nil
	}
	return func(pl geom.Placement) error {
		for _, sc := range p.checkers {
			covered := true
			for m := range sc.members {
				if _, ok := pl[m]; !ok {
					covered = false
					break
				}
			}
			if !covered {
				continue
			}
			if err := sc.check(pl); err != nil {
				return err
			}
		}
		return nil
	}
}

// EnumerateSet computes the shape function of one basic module set by
// exhaustive B*-tree (and rotation) enumeration, keeping only
// placements that satisfy the applicable constraints.
func (p *Placer) EnumerateSet(names []string) (Function, error) {
	n := len(names)
	w := make([]int, n)
	h := make([]int, n)
	for i, name := range names {
		var err error
		w[i], h[i], err = p.dims(name)
		if err != nil {
			return Function{}, err
		}
	}
	if n > maxEnumSet {
		return p.incrementalSet(names, w, h)
	}
	check := p.checkerFor()
	var shapes []Shape
	masks := 1
	if p.AllowRotate {
		masks = 1 << n
	}
	for mask := 0; mask < masks; mask++ {
		ew := make([]int, n)
		eh := make([]int, n)
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				ew[i], eh[i] = h[i], w[i]
			} else {
				ew[i], eh[i] = w[i], h[i]
			}
		}
		bstar.EnumerateTrees(ew, eh, func(t *bstar.Tree) bool {
			root := toPointerTree(t, names, ew, eh)
			pl, tw, th := packTree(root)
			if check != nil && check(pl) != nil {
				return true
			}
			s := Shape{W: tw, H: th}
			if p.Enhanced {
				s.tree = root
			} else {
				// Regular shapes keep a reconstruction record: the
				// placement is frozen as a single record tree (RSF
				// still needs to rebuild geometry for the result; the
				// tree is not used for additions).
				s.tree = root
			}
			shapes = append(shapes, s)
			return true
		})
	}
	f := prune(shapes)
	if len(f.Shapes) == 0 {
		return Function{}, fmt.Errorf("shapefn: no constraint-satisfying placement for set %v", names)
	}
	return f, nil
}

// incrementalSet combines an oversized set one module at a time.
func (p *Placer) incrementalSet(names []string, w, h []int) (Function, error) {
	f := Leaf(names[0], w[0], h[0], p.AllowRotate, p.Enhanced)
	for i := 1; i < len(names); i++ {
		g := Leaf(names[i], w[i], h[i], p.AllowRotate, p.Enhanced)
		f = p.add(f, g)
	}
	if len(f.Shapes) == 0 {
		return Function{}, fmt.Errorf("shapefn: empty function for set %v", names)
	}
	return f, nil
}

// toPointerTree converts a dense bstar tree to the pointer form used
// by shape packing.
func toPointerTree(t *bstar.Tree, names []string, w, h []int) *tnode {
	var conv func(m int) *tnode
	conv = func(m int) *tnode {
		if m < 0 {
			return nil
		}
		return &tnode{
			name:  names[m],
			w:     w[m],
			h:     h[m],
			left:  conv(t.Left[m]),
			right: conv(t.Right[m]),
		}
	}
	return conv(t.Root)
}

// add combines two functions according to the placer mode.
func (p *Placer) add(f, g Function) Function {
	if p.Enhanced {
		return AddESF(f, g, p.checkerFor())
	}
	return AddRSF(f, g)
}

// Result of a deterministic placement.
type Result struct {
	Placement geom.Placement
	Function  Function // root shape function
	Shape     Shape    // chosen (minimum-area) shape
}

// Place runs the bottom-up combination over the hierarchy tree and
// returns the minimum-area placement.
func (p *Placer) Place(tree *constraint.Node) (*Result, error) {
	f, err := p.functionFor(tree)
	if err != nil {
		return nil, err
	}
	s, ok := f.MinArea()
	if !ok {
		return nil, fmt.Errorf("shapefn: empty root shape function")
	}
	pl := s.Placement()
	pl.Normalize()
	return &Result{Placement: pl, Function: f, Shape: s}, nil
}

// functionFor computes the shape function of a hierarchy subtree.
func (p *Placer) functionFor(n *constraint.Node) (Function, error) {
	// Leaf sub-circuit: one basic module set, enumerated exhaustively.
	if len(n.Children) == 0 {
		if len(n.Devices) == 0 {
			return Function{}, fmt.Errorf("shapefn: empty sub-circuit %q", n.Name)
		}
		return p.EnumerateSet(n.Devices)
	}
	// Inner node: combine child functions, then direct devices.
	var f Function
	first := true
	for _, c := range n.Children {
		cf, err := p.functionFor(c)
		if err != nil {
			return Function{}, err
		}
		if first {
			f, first = cf, false
		} else {
			f = p.add(f, cf)
		}
	}
	for _, d := range n.Devices {
		w, h, err := p.dims(d)
		if err != nil {
			return Function{}, err
		}
		lf := Leaf(d, w, h, p.AllowRotate, p.Enhanced)
		if first {
			f, first = lf, false
		} else {
			f = p.add(f, lf)
		}
	}
	if len(f.Shapes) == 0 {
		return Function{}, fmt.Errorf("shapefn: empty function at node %q", n.Name)
	}
	return f, nil
}
