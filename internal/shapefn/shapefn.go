// Package shapefn implements shape functions and enhanced shape
// functions (ESF) for the deterministic analog placement of Section IV
// (Strasser et al. [25]).
//
// A shape function is a dominance-pruned set of (width, height)
// alternatives for placing a set of modules: any shape that is both
// wider and taller than another is redundant and removed. Regular
// shape functions (RSF) combine two operands by adding bounding
// rectangles. Enhanced shape functions additionally store the B*-tree
// of each placement; adding two shapes grafts one tree onto the other
// and repacks with the contour, letting the operands interleave — the
// result can be w_imp narrower than the bounding-box sum (Fig. 7).
// Because grafting can deform the second operand, every enhanced sum
// is validated against the symmetry constraints of the modules it
// contains and falls back to the bounding-box sum when a constraint
// would break, preserving "all symmetry constraints" as the paper
// requires.
package shapefn

import (
	"sort"

	"repro/internal/geom"
)

// tnode is a pointer-based B*-tree node carrying a named module, used
// for enhanced shapes. (Package bstar's dense-id trees cover whole
// module sets; shape composition needs trees over arbitrary subsets,
// which pointers express directly.)
type tnode struct {
	name        string
	w, h        int
	left, right *tnode
}

func cloneTree(n *tnode) *tnode {
	if n == nil {
		return nil
	}
	return &tnode{
		name: n.name, w: n.w, h: n.h,
		left:  cloneTree(n.left),
		right: cloneTree(n.right),
	}
}

// lastPreorder returns the last node of a pre-order traversal; it has
// no children, so both its child slots are free attachment points.
func lastPreorder(n *tnode) *tnode {
	for {
		switch {
		case n.right != nil:
			n = n.right
		case n.left != nil:
			n = n.left
		default:
			return n
		}
	}
}

// packTree packs a pointer B*-tree with the standard contour sweep and
// returns the placement with its bounding width and height.
func packTree(root *tnode) (geom.Placement, int, int) {
	pl := geom.Placement{}
	if root == nil {
		return pl, 0, 0
	}
	const inf = int(^uint(0) >> 1)
	type cseg struct{ x1, x2, h int }
	contour := []cseg{{0, inf, 0}}
	place := func(n *tnode, x int) int {
		top := 0
		for _, s := range contour {
			if s.x2 <= x || s.x1 >= x+n.w {
				continue
			}
			if s.h > top {
				top = s.h
			}
		}
		var out []cseg
		inserted := false
		for _, s := range contour {
			if s.x2 <= x || s.x1 >= x+n.w {
				out = append(out, s)
				continue
			}
			if s.x1 < x {
				out = append(out, cseg{s.x1, x, s.h})
			}
			if !inserted {
				out = append(out, cseg{x, x + n.w, top + n.h})
				inserted = true
			}
			if s.x2 > x+n.w {
				out = append(out, cseg{x + n.w, s.x2, s.h})
			}
		}
		contour = out
		return top
	}
	var walk func(n *tnode, x int)
	walk = func(n *tnode, x int) {
		y := place(n, x)
		pl[n.name] = geom.NewRect(x, y, n.w, n.h)
		if n.left != nil {
			walk(n.left, x+n.w)
		}
		if n.right != nil {
			walk(n.right, x)
		}
	}
	walk(root, 0)
	bb := pl.BBox()
	return pl, bb.W, bb.H
}

// Shape is one (width, height) alternative with enough provenance to
// reconstruct its placement: either a B*-tree (enhanced shapes) or a
// bounding-box combination record / leaf (regular shapes and enhanced
// fallbacks).
type Shape struct {
	W, H int

	tree *tnode // enhanced: packs to exactly W × H

	// Bounding-box record (regular shapes): a below/left-of b.
	horiz bool // true: a left of b; false: a below b
	a, b  *Shape

	// Leaf record.
	leafName string
	leafRot  bool
	leafW    int // original (unrotated) dims
	leafH    int
}

// Place writes the shape's placement, translated by (x, y), into out.
func (s *Shape) Place(x, y int, out geom.Placement) {
	switch {
	case s.tree != nil:
		pl, _, _ := packTree(s.tree)
		for name, r := range pl {
			out[name] = r.Translate(x, y)
		}
	case s.a != nil:
		s.a.Place(x, y, out)
		if s.horiz {
			s.b.Place(x+s.a.W, y, out)
		} else {
			s.b.Place(x, y+s.a.H, out)
		}
	default:
		out[s.leafName] = geom.NewRect(x, y, s.W, s.H)
	}
}

// Placement returns the shape's placement at the origin.
func (s *Shape) Placement() geom.Placement {
	out := geom.Placement{}
	s.Place(0, 0, out)
	return out
}

// Function is a dominance-pruned, width-sorted list of shapes.
type Function struct {
	Shapes []Shape
}

// maxShapes bounds function size; beyond it, shapes are thinned evenly
// by width (keeping the extremes and the minimum-area shape). The
// paper prunes only dominated shapes; the cap is an implementation
// bound that keeps the ESF/RSF comparison tractable at 110 modules.
const maxShapes = 72

// prune removes dominated shapes: after sorting by width (then
// height), it keeps shapes with strictly decreasing height.
func prune(shapes []Shape) Function {
	if len(shapes) == 0 {
		return Function{}
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].W != shapes[j].W {
			return shapes[i].W < shapes[j].W
		}
		if shapes[i].H != shapes[j].H {
			return shapes[i].H < shapes[j].H
		}
		// Tie-break: prefer tree-carrying shapes, which keep the
		// enhanced-addition machinery available downstream.
		return shapes[i].tree != nil && shapes[j].tree == nil
	})
	var out []Shape
	for _, s := range shapes {
		if s.W <= 0 || s.H <= 0 {
			continue
		}
		// The previous kept shape is narrower or equal; if it is also
		// no taller, it dominates s.
		if len(out) > 0 && out[len(out)-1].H <= s.H {
			continue
		}
		out = append(out, s)
	}
	if len(out) > maxShapes {
		out = thin(out)
	}
	return Function{Shapes: out}
}

// thin reduces a pruned shape list to maxShapes entries, keeping the
// extremes and the minimum-area shape and sampling the rest evenly.
func thin(shapes []Shape) []Shape {
	minArea := 0
	for i, s := range shapes {
		if int64(s.W)*int64(s.H) < int64(shapes[minArea].W)*int64(shapes[minArea].H) {
			minArea = i
		}
	}
	keep := map[int]bool{0: true, len(shapes) - 1: true, minArea: true}
	need := maxShapes - len(keep)
	for i := 1; i <= need; i++ {
		keep[i*(len(shapes)-1)/(need+1)] = true
	}
	var out []Shape
	for i, s := range shapes {
		if keep[i] {
			out = append(out, s)
		}
	}
	return out
}

// MinArea returns the shape with the smallest bounding-box area.
func (f Function) MinArea() (Shape, bool) {
	if len(f.Shapes) == 0 {
		return Shape{}, false
	}
	best := 0
	for i, s := range f.Shapes {
		if int64(s.W)*int64(s.H) < int64(f.Shapes[best].W)*int64(f.Shapes[best].H) {
			best = i
		}
	}
	return f.Shapes[best], true
}

// Leaf returns the shape function of a single module: its natural
// orientation plus, when allowRot is set, its rotation. Enhanced
// leaves carry single-node trees.
func Leaf(name string, w, h int, allowRot, enhanced bool) Function {
	mk := func(w, h int, rot bool) Shape {
		s := Shape{W: w, H: h, leafName: name, leafRot: rot, leafW: w, leafH: h}
		if enhanced {
			s.tree = &tnode{name: name, w: w, h: h}
		}
		return s
	}
	shapes := []Shape{mk(w, h, false)}
	if allowRot && w != h {
		shapes = append(shapes, mk(h, w, true))
	}
	return prune(shapes)
}

// Checker validates a placement fragment against the layout
// constraints that apply to it; nil means unconstrained. It is invoked
// on every candidate enhanced sum.
type Checker func(geom.Placement) error

// AddRSF combines two shape functions with regular (bounding-box)
// additions: every shape pair, in both orientations.
func AddRSF(f, g Function) Function {
	var out []Shape
	for i := range f.Shapes {
		for j := range g.Shapes {
			a, b := &f.Shapes[i], &g.Shapes[j]
			out = append(out,
				Shape{W: a.W + b.W, H: max(a.H, b.H), horiz: true, a: a, b: b},
				Shape{W: max(a.W, b.W), H: a.H + b.H, horiz: false, a: a, b: b},
			)
		}
	}
	return prune(out)
}

// AddESF combines two enhanced shape functions: for every shape pair
// the second operand's tree is grafted onto the first at several
// attachment points and the merged tree is repacked with the contour,
// letting the operands interleave:
//
//   - the pre-order tail (left and right slots) — the first operand's
//     geometry is provably unchanged, the second may deform into its
//     notches;
//   - the left slot of the module with the largest right extent — the
//     horizontal bounding-box sum, but carrying a mergeable tree and
//     often dropping the second operand into a right-side notch;
//   - the right slot of the module with the largest top extent (when
//     free) — the vertical analogue.
//
// Merged placements are always overlap-free (contour packing); sums
// whose placement violates check are discarded. Plain bounding-box
// records are kept as safety candidates, so the result is never worse
// than AddRSF; the prune tie-break prefers tree-carrying shapes of
// equal size, keeping enhancement available at the next level.
func AddESF(f, g Function, check Checker) Function {
	var out []Shape
	addBBox := func(a, b *Shape) {
		out = append(out,
			Shape{W: a.W + b.W, H: max(a.H, b.H), horiz: true, a: a, b: b},
			Shape{W: max(a.W, b.W), H: a.H + b.H, horiz: false, a: a, b: b},
		)
	}
	for i := range f.Shapes {
		for j := range g.Shapes {
			a, b := &f.Shapes[i], &g.Shapes[j]
			addBBox(a, b)
			if a.tree == nil || b.tree == nil {
				continue
			}
			for _, attach := range attachPoints(a.tree) {
				merged := cloneTree(a.tree)
				node, side := locate(merged, attach)
				if node == nil {
					continue
				}
				graft := cloneTree(b.tree)
				if side == 0 {
					if node.left != nil {
						continue
					}
					node.left = graft
				} else {
					if node.right != nil {
						continue
					}
					node.right = graft
				}
				pl, w, h := packTree(merged)
				if check != nil {
					if err := check(pl); err != nil {
						continue
					}
				}
				out = append(out, Shape{W: w, H: h, tree: merged})
			}
		}
	}
	return prune(out)
}

// attachSpec names an attachment point by the module name and child
// side (0 = left, 1 = right), so it can be re-located in a clone.
type attachSpec struct {
	name string
	side int
}

// attachPoints selects candidate attachment points on tree a: the
// pre-order tail (both slots), the rightmost-extent module's left
// slot, the topmost-extent module's right slot, and the ends of the
// root's left and right chains (the bottom-right and top-left corners
// of the packing).
func attachPoints(a *tnode) []attachSpec {
	tail := lastPreorder(a)
	pts := []attachSpec{{tail.name, 0}, {tail.name, 1}}
	pl, _, _ := packTree(a)
	rightmost, topmost := "", ""
	bestX, bestY := -1, -1
	for name, r := range pl {
		if r.X2() > bestX || (r.X2() == bestX && name < rightmost) {
			bestX, rightmost = r.X2(), name
		}
		if r.Y2() > bestY || (r.Y2() == bestY && name < topmost) {
			bestY, topmost = r.Y2(), name
		}
	}
	add := func(name string, side int) {
		for _, p := range pts {
			if p.name == name && p.side == side {
				return
			}
		}
		pts = append(pts, attachSpec{name, side})
	}
	if rightmost != "" {
		add(rightmost, 0)
	}
	if topmost != "" {
		add(topmost, 1)
	}
	leftEnd := a
	for leftEnd.left != nil {
		leftEnd = leftEnd.left
	}
	add(leftEnd.name, 0)
	rightEnd := a
	for rightEnd.right != nil {
		rightEnd = rightEnd.right
	}
	add(rightEnd.name, 1)
	return pts
}

// locate finds the named node in a tree.
func locate(n *tnode, spec attachSpec) (*tnode, int) {
	if n == nil {
		return nil, 0
	}
	if n.name == spec.name {
		return n, spec.side
	}
	if m, s := locate(n.left, spec); m != nil {
		return m, s
	}
	return locate(n.right, spec)
}
