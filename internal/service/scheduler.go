// Package service is the placement-as-a-service layer over the
// paper's placers: a job scheduler with a bounded worker pool running
// the annealing engines, per-job context cancellation and deadlines,
// a content-addressed LRU cache of solved results keyed by the wire
// format's canonical hash, live progress readable while a job runs,
// and a portfolio mode that races representations on one problem.
// cmd/placed serves it over HTTP.
package service

import (
	"container/list"
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
	"repro/placer"
)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are done, failed and cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is a live view of a running job, aggregated over the
// job's annealing chains (and, in portfolio mode, over its racers).
type Progress struct {
	// BestCost is the lowest cost any chain has reported so far.
	BestCost float64 `json:"best_cost"`
	// Stage is the highest temperature stage any chain has finished.
	Stage int `json:"stage"`
	// Temp is the temperature after that stage.
	Temp float64 `json:"temp"`
	// Moves counts proposed moves across all chains and racers.
	Moves int `json:"moves"`
	// MovesPerSec is Moves over the job's running wall-clock.
	MovesPerSec float64 `json:"moves_per_sec"`
}

// Job is one placement request moving through the scheduler. All
// fields are private behind accessors; jobs are safe for concurrent
// observation while they run.
type Job struct {
	ID   string
	Hash string

	// ikey is the in-flight coalescing key: the content hash plus the
	// request's deadline. Deadlines are excluded from Hash (a cached,
	// completed result is deadline-independent) but must separate
	// in-flight jobs — a deadline-free submitter must not be handed
	// another client's deadline-truncated best-so-far.
	ikey string

	mu        sync.Mutex
	state     State
	req       *wire.Request
	result    *wire.Result
	errMsg    string
	cacheHit  bool
	started   time.Time
	finished  time.Time
	submitted time.Time
	// per-source progress: one source per annealing chain, keyed
	// "method#chain" — multi-start runs one per worker, portfolio mode
	// multiplies that by its racing methods.
	sources map[string]sourceProgress
	moves   int

	cancel context.CancelFunc
	done   chan struct{}

	// crashes counts worker panics this job caused (injected or
	// real); past Config.MaxJobCrashes the job is quarantined as
	// failed instead of wedging the pool with retries.
	crashes int
	// degraded marks a job solved under deadline pressure: the
	// schedule was shortened to shed load, so the result is not the
	// canonical one for the content hash and is never cached.
	degraded bool
	// faults names scheduler-level failpoints this job survived (or
	// died of) — worker panics, injected or real. They lead the served
	// flight recording as failpoint events, so the trace of a retried
	// job explains the retry.
	faults []string
	// span is the submitting request's span id (0 when the submitter
	// carried no span); the worker parents the job's solve spans under
	// it, bridging the trace across the queue.
	span uint64
	// tenant is the submitting tenant (see WithTenant): the fair-queue
	// lane the job waits in and the quota bucket it was charged to.
	// Immutable after Submit.
	tenant string
	// ring is the job's live flight recorder, replaced at the start of
	// every run attempt (so a crash retry's trace covers only the
	// attempt that produced the result, as before). SSE streams stage
	// events from it while the solve runs; guarded by j.mu.
	ring *obs.Flight

	// qelem is the job's slot in its fair-queue lane, guarded by the
	// scheduler's mutex (not j.mu); nil once popped or removed.
	qelem *list.Element
}

type sourceProgress struct {
	best  float64
	stage int
	temp  float64
	moves int
	seen  bool
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CacheHit reports whether the job was served from the result cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Result returns the job's result, nil until it reaches a terminal
// state (cancelled jobs still carry the best-so-far result).
func (j *Job) Result() *wire.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Trace returns the job's flight recording. The boolean is false
// while the job is queued or running — recordings are served only for
// terminal jobs, whose traces are complete. A terminal job may still
// return (nil, true) when nothing was recorded (tracing disabled, a
// cache hit whose stored result predates tracing, an external
// engine). Worker crashes the job caused are prepended as failpoint
// events, so the trace of a retried job explains the retry.
func (j *Job) Trace() (*wire.Trace, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, false
	}
	var tr *wire.Trace
	if j.result != nil {
		tr = j.result.Trace
	}
	if len(j.faults) == 0 {
		return tr, true
	}
	merged := &wire.Trace{Version: wire.Version}
	if tr != nil {
		*merged = *tr
	}
	events := make([]wire.TraceEvent, 0, len(j.faults)+len(merged.Events))
	for _, point := range j.faults {
		events = append(events, wire.TraceEvent{Kind: wire.TraceKindFailpoint, Worker: -1, Stage: -1, Point: point})
	}
	merged.Events = append(events, merged.Events...)
	return merged, true
}

// Err returns the failure message of a failed job.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Degraded reports whether the job was solved under deadline
// pressure with a shortened annealing schedule.
func (j *Job) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Crashes reports how many worker panics the job has caused.
func (j *Job) Crashes() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashes
}

// Done returns a channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Ring returns the job's live flight recorder for incremental reads
// (obs.Flight.Since). It is nil until the job starts running (and
// with tracing disabled); a crash retry replaces it, so streaming
// readers must re-fetch and restart their cursor when the identity
// changes.
func (j *Job) Ring() *obs.Flight {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ring
}

// Tenant reports the tenant the job was submitted under.
func (j *Job) Tenant() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tenant
}

// Progress returns a live aggregate of the job's annealing progress.
// The boolean is false until the first stage completes.
func (j *Job) Progress() (Progress, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progressLocked()
}

// progressLocked is Progress with j.mu held.
func (j *Job) progressLocked() (Progress, bool) {
	var p Progress
	any := false
	for _, src := range j.sources {
		if !src.seen {
			continue
		}
		if !any || src.best < p.BestCost {
			p.BestCost = src.best
		}
		if src.stage > p.Stage {
			p.Stage = src.stage
			p.Temp = src.temp // temperature pairs with the stage reported
		}
		any = true
	}
	p.Moves = j.moves
	if any && !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		if d := end.Sub(j.started).Seconds(); d > 0 {
			p.MovesPerSec = float64(p.Moves) / d
		}
	}
	return p, any
}

// report folds one annealing stage snapshot into the live progress.
// A source is one annealing chain — keyed by (algorithm, chain id),
// so multi-start workers reporting cumulative per-chain stats never
// clobber each other — and keeping the per-source max stage and min
// cost makes the aggregate monotonic.
func (j *Job) report(p placer.Progress) {
	key := fmt.Sprintf("%s#%d", p.Algorithm, p.Worker)
	j.mu.Lock()
	defer j.mu.Unlock()
	src := j.sources[key]
	if !src.seen || p.Best < src.best {
		src.best = p.Best
	}
	if p.Stage > src.stage {
		src.stage = p.Stage
		src.temp = p.Temp
	}
	// Snapshots are cumulative per chain; count only the delta so sums
	// over chains stay exact.
	j.moves += p.Moves - src.moves
	if p.Moves > src.moves {
		src.moves = p.Moves
	}
	src.seen = true
	j.sources[key] = src
}

// Config tunes a Scheduler. The zero value is usable.
type Config struct {
	// Workers is the solver pool size — how many jobs run
	// concurrently. Default 2.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// Submit fails fast with ErrQueueFull beyond it. Default 64.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (entries).
	// 0 means the default of 128; negative disables caching.
	CacheSize int
	// RetainJobs bounds how many terminal (done/failed/cancelled) jobs
	// stay queryable through GET /v1/jobs/{id}; beyond it the oldest
	// terminal jobs are forgotten, so a long-running daemon's job
	// table cannot grow without bound. Solver jobs and cache-hit
	// answers are bounded separately (up to RetainJobs each), so a hot
	// cached problem cannot flush real job history. Queued and running
	// jobs are never evicted. Default 1024.
	RetainJobs int
	// MaxSolve is the server-side ceiling on one job's solve
	// wall-clock: it caps the request's timeout_ms (and substitutes
	// for an absent one), so a single maximal-schedule request cannot
	// camp on a pool worker indefinitely. Hitting it cancels at the
	// next stage boundary, keeping best-so-far. Default 10 minutes;
	// negative disables the ceiling.
	MaxSolve time.Duration
	// MaxJobCrashes is how many worker panics (panics escaping the
	// contained solver path — scheduler bugs or injected faults) one
	// job may cause before it is quarantined as failed with the
	// captured stack; below the limit the job is requeued for retry.
	// Default 2; negative quarantines on the first crash.
	MaxJobCrashes int
	// RetainCheckpoints bounds the checkpoint store (distinct content
	// hashes with saved best-so-far solver state). Interrupted jobs —
	// cancelled, deadline-expired, crashed — leave a checkpoint
	// behind, and a resubmission of the identical request resumes
	// annealing from it instead of restarting cold. 0 means the
	// default of 64; negative disables checkpoint/resume.
	RetainCheckpoints int
	// PressureDepth is the queued-job depth at or beyond which new
	// solves enter deadline-pressure mode: the annealing schedule is
	// shortened (stage and stall bounds quartered) so the queue
	// drains instead of rejecting, and the degraded results are not
	// cached. 0 means half of QueueDepth; negative disables.
	PressureDepth int
	// TraceEvents is the per-job flight-recorder capacity handed to
	// the engines (see placer.WithTrace); a completed job serves its
	// recording on GET /v1/jobs/{id}/trace. Recording never changes
	// placements, so traced and untraced solves stay cache-compatible.
	// 0 means the placer default of 2048 events; negative disables
	// per-job tracing.
	TraceEvents int

	// Results overrides the content-addressed result cache backend.
	// Nil means an in-memory LRU of CacheSize entries (a file-backed
	// store shared between instances makes one instance's solve the
	// next one's cache hit — see internal/store). CacheSize only sizes
	// the default; an explicit backend brings its own bounds.
	Results store.ResultCache
	// Jobs overrides the terminal-job record store. Nil means an
	// in-memory store of RetainJobs entries. Records persist a job's
	// HTTP-visible state past the scheduler's in-memory retention, so
	// GET /v1/jobs/{id} outlives restarts on a durable backend.
	Jobs store.JobStore
	// ResultTTL/JobTTL expire store entries (0 = never). They only
	// apply to the default in-memory stores and to backends the caller
	// constructs with these TTLs; New passes them through when it
	// builds the defaults.
	ResultTTL time.Duration
	JobTTL    time.Duration
	// Instance prefixes job ids ("<instance>-job-N") so two daemons
	// sharing a file-backed job store never collide. Empty keeps the
	// bare "job-N" (single-instance and test default).
	Instance string

	// TenantRate enables per-tenant token-bucket admission quotas:
	// each tenant (X-API-Key header, see WithTenant) may start
	// TenantRate solves/second sustained, bursting to TenantBurst.
	// Cache hits and coalesced submissions are free. 0 disables
	// quotas.
	TenantRate float64
	// TenantBurst is the bucket depth when quotas are enabled; values
	// below 1 mean 1.
	TenantBurst int
	// TenantWeights sets per-tenant weights for the fair dequeue
	// (default weight 1): under contention a tenant drains
	// proportionally to its weight. Fair queueing is always on — with
	// a single tenant it degenerates to the plain FIFO it replaced.
	TenantWeights map[string]float64
}

// ErrQueueFull is returned by Submit when the job queue is at
// capacity; clients should retry later.
var ErrQueueFull = fmt.Errorf("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = fmt.Errorf("service: scheduler closed")

// Scheduler runs placement jobs on a bounded worker pool with a
// content-addressed result cache.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[string]*Job // hash → queued/running job, for coalescing
	retired  *list.List      // terminal solved-job ids, oldest at the back
	hits     *list.List      // terminal cache-hit job ids, separately bounded
	nextID   int
	closed   bool

	// queue is a per-tenant fair queue over lists, not a channel, so
	// cancelling a queued job frees its capacity immediately instead
	// of leaving a dead entry holding a slot until a worker drains it.
	// qcond (on mu) wakes workers.
	queue *fairQueue
	qcond *sync.Cond
	wg    sync.WaitGroup

	// The storage layer, all behind internal/store interfaces: the
	// scheduler never touches a concrete backend type.
	results     store.ResultCache
	jobstore    store.JobStore
	checkpoints *store.Checkpoints
	quotas      *quotas
	metrics     metrics
	// workerCrashes counts panics per worker slot (the supervisor
	// restarts the slot; the counter survives restarts), guarded by mu.
	workerCrashes []int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New starts a scheduler with cfg's worker pool.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.MaxSolve == 0 {
		cfg.MaxSolve = 10 * time.Minute
	}
	switch {
	case cfg.MaxJobCrashes == 0:
		cfg.MaxJobCrashes = 2
	case cfg.MaxJobCrashes < 0:
		cfg.MaxJobCrashes = 0 // quarantine on the first crash
	}
	if cfg.RetainCheckpoints == 0 {
		cfg.RetainCheckpoints = 64
	}
	switch {
	case cfg.PressureDepth == 0:
		cfg.PressureDepth = max(1, cfg.QueueDepth/2)
	case cfg.PressureDepth < 0:
		cfg.PressureDepth = 0 // disabled
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 128
	}
	s := &Scheduler{
		cfg:           cfg,
		jobs:          make(map[string]*Job),
		inflight:      make(map[string]*Job),
		retired:       list.New(),
		hits:          list.New(),
		queue:         newFairQueue(cfg.TenantWeights),
		workerCrashes: make([]int64, cfg.Workers),
	}
	s.qcond = sync.NewCond(&s.mu)
	// The storage layer: caller-provided backends win; otherwise
	// in-memory stores sized by the legacy knobs, so the default
	// scheduler behaves exactly as before the interfaces existed.
	switch {
	case cfg.Results != nil:
		s.results = cfg.Results
	case size > 0:
		s.results = store.NewResultCache(store.NewMemory(size), cfg.ResultTTL)
	}
	if cfg.Jobs != nil {
		s.jobstore = cfg.Jobs
	} else {
		s.jobstore = store.NewJobStore(store.NewMemory(cfg.RetainJobs), cfg.JobTTL)
	}
	if cfg.RetainCheckpoints > 0 {
		s.checkpoints = store.NewCheckpoints(cfg.RetainCheckpoints)
	}
	s.quotas = newQuotas(cfg.TenantRate, cfg.TenantBurst)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.supervise(i)
	}
	return s
}

// Submit validates and enqueues a request. Identical requests (same
// canonical hash) are served from the result cache without solving;
// while an identical job is still queued or running, Submit coalesces
// onto it instead of queueing a duplicate. Coalesced submitters share
// the job's whole fate — including a Cancel issued by any holder of
// its id — the same way they would share its cached result.
func (s *Scheduler) Submit(req *wire.Request) (*Job, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with a caller context used only for span
// parenting: when ctx carries an active obs span (the HTTP request's),
// the job's solve spans are parented under it across the queue. The
// context neither cancels nor bounds the job — a submitter going away
// must not kill a content-addressed job other clients may join.
func (s *Scheduler) SubmitCtx(ctx context.Context, req *wire.Request) (*Job, error) {
	// The normalized form is both the cache key and what Solve runs,
	// so two spellings of one problem share a hash and a placement.
	// Normalize is idempotent, never masks validity (an unsupported
	// version passes through for HashNormalized's Validate to
	// reject), and is already done for requests arriving via
	// DecodeRequest; Submit owns req.
	req.Problem.Normalize()
	req.Options.Normalize()
	hash, err := req.HashNormalized() // validates
	if err != nil {
		return nil, err
	}
	tenant := TenantFrom(ctx)
	j, persist, err := s.submitLocked(ctx, req, hash, tenant)
	if persist != nil {
		// A cache hit mints a terminal job; record it outside the lock
		// (record writes marshal JSON and may touch disk).
		s.persistJob(persist)
	}
	return j, err
}

// submitLocked is the locked core of SubmitCtx; a non-nil persist is
// a job that went terminal inside and needs its record written after
// the lock is released.
func (s *Scheduler) submitLocked(ctx context.Context, req *wire.Request, hash, tenant string) (j *Job, persist *Job, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	if cached, ok := s.cacheGet(hash); ok {
		// Cache hits count only in the cache counters — jobs_total
		// states tally actual solver outcomes — and retire through
		// their own bound, so a hot cached problem stays queryable by
		// id without flushing real jobs out of retention. They are
		// also quota-free: the bucket protects solver capacity, and a
		// hit costs none.
		s.metrics.cacheHits++
		j := s.newJobLocked(hash, req)
		j.tenant = tenant
		j.state = StateDone
		j.result = cached
		j.cacheHit = true
		j.finished = time.Now()
		j.req = nil // terminal jobs answer from result; drop the request body
		close(j.done)
		s.retireOnLocked(s.hits, j)
		return j, j, nil
	}
	s.metrics.cacheMisses++
	// Coalesce only onto a live job with the same deadline (the ikey
	// includes it): a deadline-free submitter must not share a
	// deadline-truncated run.
	ikey := fmt.Sprintf("%s/%d", hash, req.Options.TimeoutMS)
	if running, ok := s.inflight[ikey]; ok {
		switch {
		case !running.State().Terminal():
			s.metrics.coalesced++
			return running, nil, nil
		case running.State() == StateDone && running.Result() != nil:
			// Finished in the window before run() scrubs the entry and
			// caches the result; it is content-addressed, so hand it
			// back instead of re-solving.
			s.metrics.coalesced++
			return running, nil, nil
		}
		// Cancelled or failed while still in the window: fall through
		// to a fresh solve — nobody wants to share a cancelled run.
	}
	// Tenant admission: charged only for work that would occupy a
	// solver, after the free paths above, before the queue bound.
	if s.quotas != nil {
		if ok, retry := s.quotas.take(tenant); !ok {
			s.metrics.tenantInc(&s.metrics.tenantThrottled, tenant)
			return nil, nil, &QuotaError{Tenant: tenant, RetryAfter: retry}
		}
	}
	if s.queue.len() >= s.cfg.QueueDepth {
		// Explicit load shedding: the client gets ErrQueueFull (HTTP
		// 429 with a Retry-After derived from RetryAfter) and
		// resubmits later; the content hash makes the retry idempotent.
		s.metrics.shed++
		return nil, nil, ErrQueueFull
	}
	j = s.newJobLocked(hash, req)
	j.ikey = ikey
	j.span = obs.SpanID(ctx)
	j.tenant = tenant
	j.state = StateQueued // must precede enqueue: a worker may pop it immediately
	s.queue.push(j)
	s.inflight[ikey] = j
	s.metrics.jobsQueued++
	s.metrics.tenantInc(&s.metrics.tenantAdmitted, tenant)
	s.qcond.Signal()
	return j, nil, nil
}

func (s *Scheduler) newJobLocked(hash string, req *wire.Request) *Job {
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	if s.cfg.Instance != "" {
		// Instance-prefixed ids keep two daemons sharing a job store
		// from overwriting each other's records.
		id = s.cfg.Instance + "-" + id
	}
	j := &Job{
		ID:        id,
		Hash:      hash,
		req:       req,
		submitted: time.Now(),
		sources:   make(map[string]sourceProgress),
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	return j
}

// Job returns the job with the given id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs transition to
// cancelled immediately; running jobs stop at the next annealing
// stage boundary and keep their best-so-far placement. Cancelling a
// terminal job is a no-op. The boolean reports whether the job
// exists.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// The worker will observe the state and skip it if it has
		// already popped the job.
		j.state = StateCancelled
		j.finished = time.Now()
		j.req = nil
		close(j.done)
		j.mu.Unlock()
		s.mu.Lock()
		s.queue.remove(j)            // free the queue slot right away
		if s.inflight[j.ikey] == j { // a fresh submit may own the slot by now
			delete(s.inflight, j.ikey)
		}
		s.metrics.jobsQueued--
		s.metrics.jobsCancelled++
		s.retireLocked(j)
		s.mu.Unlock()
		s.persistJob(j)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	default:
		j.mu.Unlock()
	}
	return true
}

// Close stops accepting jobs, cancels running jobs, marks still-queued
// jobs cancelled, and waits for the workers to exit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var drained []*Job
	for s.queue.len() > 0 {
		j := s.queue.pop()
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.finished = time.Now()
			j.req = nil
			close(j.done)
			s.metrics.jobsQueued--
			s.metrics.jobsCancelled++
			s.retireLocked(j)
			drained = append(drained, j)
		}
		j.mu.Unlock()
		delete(s.inflight, j.ikey)
	}
	s.qcond.Broadcast()
	s.mu.Unlock()
	for _, j := range drained {
		s.persistJob(j)
	}
	s.baseCancel()
	s.wg.Wait()
}

// Worker supervision backoff: a crashed worker slot restarts after an
// exponentially growing, jittered delay, so a hot crash loop (a
// poisoned queue, a scheduler bug) cannot spin the pool at 100% CPU.
const (
	workerRestartBase = 25 * time.Millisecond
	workerRestartMax  = 5 * time.Second
)

// supervise owns one worker slot: it runs the worker loop and, when
// the worker dies from a panic (real or injected), restarts it after
// a jittered exponential backoff. Crash and restart counters feed
// /metrics per slot. The supervisor exits when the worker returns
// cleanly (scheduler closed and drained) or the scheduler closes
// during backoff.
func (s *Scheduler) supervise(slot int) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(int64(slot)*7919 + 1)) // jitter only; not part of any reproducible run
	backoff := workerRestartBase
	for {
		started := time.Now()
		crashed := s.workerLoop()
		if !crashed {
			return // clean exit: closed and drained
		}
		s.mu.Lock()
		s.metrics.workerCrashes++
		s.workerCrashes[slot]++
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return // Close already cancels and drains; no restart needed
		}
		if time.Since(started) > 4*workerRestartMax {
			// The worker ran healthily for a while before this crash;
			// treat it as fresh rather than part of a crash loop.
			backoff = workerRestartBase
		}
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		t := time.NewTimer(delay)
		select {
		case <-s.baseCtx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		backoff = min(2*backoff, workerRestartMax)
		s.mu.Lock()
		s.metrics.workerRestarts++
		s.mu.Unlock()
	}
}

// workerLoop pops and runs queued jobs until the scheduler closes,
// reporting whether it exited by panic. A panic mid-job is accounted
// to that job by handleCrash — requeued for retry, or quarantined
// after repeated crashes — so one poisoned job cannot wedge the pool.
func (s *Scheduler) workerLoop() (crashed bool) {
	var cur *Job
	defer func() {
		if r := recover(); r != nil {
			crashed = true
			s.handleCrash(cur, r, debug.Stack())
			if cur != nil && cur.State().Terminal() {
				// Quarantined by the crash: record it (outside the locks
				// handleCrash held).
				s.persistJob(cur)
			}
		}
	}()
	s.mu.Lock()
	for {
		for s.queue.len() == 0 && !s.closed {
			s.qcond.Wait()
		}
		j := s.queue.pop()
		if j == nil {
			s.mu.Unlock()
			return false // closed and drained
		}
		s.mu.Unlock()
		cur = j
		s.run(j)
		cur = nil
		s.mu.Lock()
	}
}

// handleCrash rolls back a job whose worker died mid-run: early
// crashes requeue it at the queue head for a prompt retry; past
// Config.MaxJobCrashes (or during shutdown) it is quarantined as
// failed, carrying the panic value and the captured stack, so a
// reliably-crashing job reaches a terminal state instead of cycling
// through worker restarts forever.
func (s *Scheduler) handleCrash(j *Job, cause any, stack []byte) {
	if j == nil {
		return // crash outside a job (pop/bookkeeping); nothing to roll back
	}
	// Lock order s.mu → j.mu, same as Submit (which inspects a job's
	// state while holding the scheduler lock) and Close.
	s.mu.Lock()
	defer s.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return // already terminal (e.g. crash after the job finished)
	}
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.crashes++
	j.faults = append(j.faults, "scheduler/worker-panic")
	s.metrics.jobsRunning--
	if j.crashes <= s.cfg.MaxJobCrashes && !s.closed {
		j.state = StateQueued
		s.queue.pushFront(j) // head of its line: it already waited once
		s.metrics.jobsQueued++
		s.qcond.Signal()
		return
	}
	j.state = StateFailed
	j.finished = time.Now()
	j.errMsg = fmt.Sprintf("service: worker panic (crash %d, quarantined): %v\n%s", j.crashes, cause, stack)
	j.req = nil
	close(j.done)
	s.metrics.jobsFailed++
	s.metrics.jobsQuarantined++
	if s.inflight[j.ikey] == j {
		delete(s.inflight, j.ikey)
	}
	s.retireLocked(j)
}

// run executes one job.
func (s *Scheduler) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock() // cancelled while queued
		return
	}
	// The server-side ceiling only; Solve itself applies the request's
	// own timeout_ms on top. The submitting request's span (if any)
	// re-parents here, bridging the trace across the queue hand-off.
	base := obs.ContextWithSpan(s.baseCtx, j.span)
	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.MaxSolve > 0 {
		ctx, cancel = context.WithTimeout(base, s.cfg.MaxSolve)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	ctx, jobSpan := obs.StartSpan(ctx, "job",
		obs.KV("id", j.ID), obs.Int("crashes", j.crashes))
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	req := j.req
	j.mu.Unlock()
	defer cancel()
	defer jobSpan.End()

	s.mu.Lock()
	s.metrics.jobsQueued--
	s.metrics.jobsRunning++
	depth := s.queue.len()
	s.mu.Unlock()

	// Deadline-pressure mode: with the queue deep, shorten the
	// annealing schedule instead of shedding — every waiting client
	// gets a (degraded, uncached) placement sooner and the queue
	// drains. The content hash was computed from the original options,
	// and degraded results never enter the cache under it.
	var extra []placer.Option
	if s.cfg.PressureDepth > 0 && depth >= s.cfg.PressureDepth {
		sched := req.Options.Schedule()
		sched.MaxStages = max(1, sched.MaxStages/4)
		sched.StallStages = max(1, sched.StallStages/4)
		extra = append(extra, placer.WithSchedule(sched))
		j.mu.Lock()
		firstDegrade := !j.degraded // a requeued crash retry counts once
		j.degraded = true
		j.mu.Unlock()
		if firstDegrade {
			s.mu.Lock()
			s.metrics.jobsDegraded++
			s.mu.Unlock()
		}
	}
	// Checkpoint/resume: the engines periodically save their best
	// snapshot under the job's content hash, and an identical
	// resubmission after an interruption resumes annealing from it.
	if s.checkpoints != nil {
		extra = append(extra, placer.WithCheckpoint(&jobCheckpointer{s: s, hash: j.Hash}))
	}
	// Flight recording: every solve records into a job-owned ring
	// unless the daemon disabled tracing, so SSE streams can read stage
	// events live (obs.Flight.Since) while the solve runs. A fresh ring
	// per run attempt keeps a crash retry's trace scoped to the attempt
	// that produced the result; streaming readers detect the swap by
	// ring identity. The recording still rides the wire result and is
	// served by GET /v1/jobs/{id}/trace once the job is terminal.
	if s.cfg.TraceEvents >= 0 {
		ring := obs.NewFlight(s.cfg.TraceEvents)
		j.mu.Lock()
		j.ring = ring
		j.mu.Unlock()
		extra = append(extra, placer.WithRecorder(ring))
	}

	// Worker-crash failpoint: fires outside the contained solver
	// recover below (and outside any lock), so chaos tests exercise
	// the supervision path — handleCrash, backoff restart, quarantine.
	if fault.Point("scheduler/worker-panic") {
		panic(fmt.Sprintf("fault: injected worker panic running %s", j.ID))
	}

	res, err := func() (res *wire.Result, err error) {
		// The solver stack is reached by untrusted wire requests; a
		// panic on one pathological problem must fail that job, not
		// take down the daemon and every other job with it.
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("service: solver panic: %v", r)
			}
		}()
		return Solve(ctx, req, j.report, extra...)
	}()

	j.mu.Lock()
	j.finished = time.Now()
	latency := j.finished.Sub(j.started)
	degraded := j.degraded
	var final State
	switch {
	case err != nil:
		// A cancelled run is not an error — the engines return
		// best-so-far with Stats.Cancelled instead — so any solver
		// error is a genuine failure and keeps its real message, even
		// if the deadline also expired meanwhile.
		final = StateFailed
		j.state = final
		j.errMsg = err.Error()
	case res.Cancelled:
		final = StateCancelled
		j.state = final
		j.result = res
	default:
		final = StateDone
		j.state = final
		j.result = res
	}
	j.req = nil // terminal: the retention window should hold results, not request bodies
	close(j.done)
	j.mu.Unlock()

	s.mu.Lock()
	if s.inflight[j.ikey] == j {
		delete(s.inflight, j.ikey)
	}
	s.metrics.jobsRunning--
	switch final {
	case StateDone:
		s.metrics.jobsDone++
		if !degraded {
			s.cachePut(j.Hash, res)
		}
	case StateFailed:
		s.metrics.jobsFailed++
	case StateCancelled:
		s.metrics.jobsCancelled++
	}
	s.metrics.observeLatency(latency.Seconds())
	s.retireLocked(j)
	s.mu.Unlock()

	// A completed canonical solve retires its checkpoint — the result
	// cache answers future resubmissions. Interrupted (and degraded)
	// runs keep theirs, so the next identical request warm-starts.
	if final == StateDone && !degraded && s.checkpoints != nil {
		s.checkpoints.Drop(j.Hash)
	}
	s.persistJob(j)
}

// persistJob writes a terminal job's record to the job store; on a
// file-backed store the record outlives the in-memory retention window
// and the process. Best-effort by design: a failed record write must
// not fail the job, whose in-memory state already answers queries.
// Called outside both locks — record writes marshal JSON and may touch
// disk.
func (s *Scheduler) persistJob(j *Job) {
	if s.jobstore == nil {
		return
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	rec := &store.JobRecord{
		ID:          j.ID,
		Hash:        j.Hash,
		State:       string(j.state),
		CacheHit:    j.cacheHit,
		Degraded:    j.degraded,
		Error:       j.errMsg,
		Crashes:     j.crashes,
		Faults:      append([]string(nil), j.faults...),
		Result:      j.result,
		SubmittedMS: j.submitted.UnixMilli(),
		FinishedMS:  j.finished.UnixMilli(),
	}
	j.mu.Unlock()
	s.jobstore.Put(rec)
}

// Record returns the stored record of a job that is no longer (or was
// never) in the in-memory table — retired past retention, or solved by
// another instance sharing a durable job store.
func (s *Scheduler) Record(id string) (*store.JobRecord, bool) {
	if s.jobstore == nil {
		return nil, false
	}
	rec, ok, err := s.jobstore.Get(id)
	if err != nil || !ok {
		return nil, false
	}
	return rec, true
}

// TraceFromRecord reconstructs the served trace of a recorded job the
// way Job.Trace would: worker-crash faults the job survived are
// prepended as failpoint events.
func TraceFromRecord(rec *store.JobRecord) *wire.Trace {
	var tr *wire.Trace
	if rec.Result != nil {
		tr = rec.Result.Trace
	}
	if len(rec.Faults) == 0 {
		return tr
	}
	merged := &wire.Trace{Version: wire.Version}
	if tr != nil {
		*merged = *tr
	}
	events := make([]wire.TraceEvent, 0, len(rec.Faults)+len(merged.Events))
	for _, point := range rec.Faults {
		events = append(events, wire.TraceEvent{Kind: wire.TraceKindFailpoint, Worker: -1, Stage: -1, Point: point})
	}
	merged.Events = append(events, merged.Events...)
	return merged
}

// retireLocked records a solved job that just reached a terminal
// state; retireOnLocked is the shared FIFO eviction over a given
// retention list. Caller holds s.mu.
func (s *Scheduler) retireLocked(j *Job) {
	s.retireOnLocked(s.retired, j)
}

func (s *Scheduler) retireOnLocked(class *list.List, j *Job) {
	class.PushFront(j.ID)
	for class.Len() > s.cfg.RetainJobs {
		oldest := class.Back()
		class.Remove(oldest)
		delete(s.jobs, oldest.Value.(string))
	}
}

// cacheGet/cachePut guard the nil-cache case and swallow backend
// errors — a failing cache degrades to re-solving, never to failing
// the job. Callers hold s.mu; the stores have their own locking, but
// the calls stay cheap (the default memory backend) or are accepted
// as the cost of sharing (a file backend's read).
func (s *Scheduler) cacheGet(hash string) (*wire.Result, bool) {
	if s.results == nil {
		return nil, false
	}
	res, ok, err := s.results.Get(hash)
	if err != nil || !ok {
		return nil, false
	}
	return res, true
}

func (s *Scheduler) cachePut(hash string, res *wire.Result) {
	if s.results != nil {
		s.results.Put(hash, res)
	}
}

// RetryAfter estimates how long a shed client should wait before
// resubmitting: the smoothed solve latency times the current backlog,
// divided over the worker pool — i.e. roughly when the queue will have
// drained a slot. Clamped to [1s, 5m] so the Retry-After header is
// always sane even before any latency sample exists.
func (s *Scheduler) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	ew := s.metrics.ewmaLatency
	if ew <= 0 {
		ew = 1 // no completed solve yet; assume a second each
	}
	backlog := s.queue.len() + int(s.metrics.jobsRunning)
	d := time.Duration(ew * float64(backlog) / float64(s.cfg.Workers) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// jobCheckpointer adapts the scheduler's checkpoint store
// (store.Checkpoints) to placer.Checkpointer for one job: saves and
// loads are keyed by the job's content hash plus the algorithm the
// engine reports.
type jobCheckpointer struct {
	s    *Scheduler
	hash string
}

func (c *jobCheckpointer) Save(algorithm string, snapshot any, cost float64, stage int) {
	c.s.checkpoints.Save(c.hash, algorithm, snapshot, cost, stage)
}

func (c *jobCheckpointer) Load(algorithm string) (any, float64, bool) {
	return c.s.checkpoints.Load(c.hash, algorithm)
}
