package service

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/store"
)

// sortedKeys returns a map's keys sorted, so /metrics output is
// stable for tests and diffs.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, chosen around the spread between a cache hit-adjacent
// small solve (milliseconds) and a large portfolio race (minutes).
// A fixed-size array keeps the counter array below sized in lockstep.
var latencyBuckets = [...]float64{0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}

// metrics are the scheduler's counters; the scheduler mutates them
// under its own mutex.
type metrics struct {
	jobsQueued    int64 // gauge
	jobsRunning   int64 // gauge
	jobsDone      int64
	jobsFailed    int64
	jobsCancelled int64
	cacheHits     int64
	cacheMisses   int64
	coalesced     int64

	// Fault-tolerance counters.
	shed            int64 // submissions rejected with ErrQueueFull
	jobsDegraded    int64 // jobs solved with a pressure-shortened schedule
	jobsQuarantined int64 // jobs failed after repeated worker crashes
	workerCrashes   int64 // worker panics caught by supervisors (all slots)
	workerRestarts  int64 // worker slots restarted after backoff

	latencyCount   int64
	latencySum     float64
	latencyBuckets [len(latencyBuckets) + 1]int64 // one per bound + +Inf
	// ewmaLatency is an exponentially weighted moving average of solve
	// latency (seconds) feeding Retry-After estimates; recent solves
	// dominate so the estimate tracks load shifts.
	ewmaLatency float64

	// Per-tenant admission counters, labelled by tenant id in /metrics.
	// Lazily allocated; tenantInc bounds the label cardinality.
	tenantAdmitted  map[string]int64 // solves admitted past the quota
	tenantThrottled map[string]int64 // submissions rejected with QuotaError
}

// maxTenantMetricLabels bounds the per-tenant label cardinality in
// /metrics; past it, new tenants are folded into the "other" label so
// an API-key scan cannot grow the exposition without bound (the quota
// buckets themselves have their own, larger bound).
const maxTenantMetricLabels = 256

// tenantInc bumps one tenant's counter in m (one of the maps above),
// capping label cardinality. Caller holds the scheduler's mutex.
func (m *metrics) tenantInc(counters *map[string]int64, tenant string) {
	if *counters == nil {
		*counters = make(map[string]int64)
	}
	c := *counters
	if _, ok := c[tenant]; !ok && len(c) >= maxTenantMetricLabels {
		tenant = "other"
	}
	c[tenant]++
}

func (m *metrics) observeLatency(seconds float64) {
	m.latencyCount++
	m.latencySum += seconds
	if m.latencyCount == 1 {
		m.ewmaLatency = seconds
	} else {
		m.ewmaLatency = 0.7*m.ewmaLatency + 0.3*seconds
	}
	for i, bound := range latencyBuckets {
		if seconds <= bound {
			m.latencyBuckets[i]++
		}
	}
	m.latencyBuckets[len(latencyBuckets)]++
}

// Metrics is a point-in-time snapshot of the scheduler's counters.
type Metrics struct {
	JobsQueued    int64
	JobsRunning   int64
	JobsDone      int64
	JobsFailed    int64
	JobsCancelled int64
	CacheHits     int64
	CacheMisses   int64
	Coalesced     int64
	CacheEntries  int64
	SolveCount    int64
	SolveSum      float64

	Shed               int64
	JobsDegraded       int64
	JobsQuarantined    int64
	WorkerCrashes      int64
	WorkerRestarts     int64
	CheckpointsSaved   int64
	CheckpointsResumed int64
	CheckpointEntries  int64

	// Per-tenant admission outcomes (nil when no tenant has hit the
	// path) and throttle rejections; see Config.TenantRate.
	TenantAdmitted  map[string]int64
	TenantThrottled map[string]int64

	// QueueDepth samples the scheduler's queue list directly (the
	// jobsQueued gauge tracks the same population through its counter
	// arithmetic; the two must agree when the scheduler is idle).
	QueueDepth int64
	// SolveLatencyEWMA is the smoothed solve latency (seconds) feeding
	// Retry-After estimates; 0 until a solve completes.
	SolveLatencyEWMA float64
}

// Metrics returns a snapshot of the scheduler's counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	snap := Metrics{
		JobsQueued:    s.metrics.jobsQueued,
		JobsRunning:   s.metrics.jobsRunning,
		JobsDone:      s.metrics.jobsDone,
		JobsFailed:    s.metrics.jobsFailed,
		JobsCancelled: s.metrics.jobsCancelled,
		CacheHits:     s.metrics.cacheHits,
		CacheMisses:   s.metrics.cacheMisses,
		Coalesced:     s.metrics.coalesced,
		SolveCount:    s.metrics.latencyCount,
		SolveSum:      s.metrics.latencySum,

		Shed:            s.metrics.shed,
		JobsDegraded:    s.metrics.jobsDegraded,
		JobsQuarantined: s.metrics.jobsQuarantined,
		WorkerCrashes:   s.metrics.workerCrashes,
		WorkerRestarts:  s.metrics.workerRestarts,

		QueueDepth:       int64(s.queue.len()),
		SolveLatencyEWMA: s.metrics.ewmaLatency,
	}
	snap.TenantAdmitted = copyCounters(s.metrics.tenantAdmitted)
	snap.TenantThrottled = copyCounters(s.metrics.tenantThrottled)
	s.mu.Unlock()
	// The stores are set once in New and have their own locks.
	if s.results != nil {
		if st, err := s.results.Stats(); err == nil {
			snap.CacheEntries = st.Entries
		}
	}
	if s.checkpoints != nil {
		snap.CheckpointsSaved, snap.CheckpointsResumed, snap.CheckpointEntries = s.checkpoints.Counters()
	}
	return snap
}

// copyCounters snapshots a counter map (nil stays nil) so callers
// never alias the scheduler's live maps.
func copyCounters(src map[string]int64) map[string]int64 {
	if src == nil {
		return nil
	}
	out := make(map[string]int64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// WriteMetrics renders the scheduler's counters in the Prometheus
// text exposition format, served by /metrics.
func (s *Scheduler) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	m := s.metrics // scalar counters copy by value
	// The maps inside m alias the live ones; snapshot them.
	tenantAdmitted := copyCounters(s.metrics.tenantAdmitted)
	tenantThrottled := copyCounters(s.metrics.tenantThrottled)
	tenantDepths := s.queue.depths()
	qdepth := s.queue.len()
	perWorker := make([]int64, len(s.workerCrashes))
	copy(perWorker, s.workerCrashes)
	s.mu.Unlock()
	retryAfter := s.RetryAfter()
	var cacheStats, jobStats store.Stats
	if s.results != nil {
		cacheStats, _ = s.results.Stats()
	}
	if s.jobstore != nil {
		jobStats, _ = s.jobstore.Stats()
	}
	var ckptSaved, ckptResumed, ckptEntries int64
	if s.checkpoints != nil {
		ckptSaved, ckptResumed, ckptEntries = s.checkpoints.Counters()
	}

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP placed_jobs_total Solver jobs finished, by terminal state (cache-hit answers count only in placed_cache_hits_total).\n")
	p("# TYPE placed_jobs_total counter\n")
	p("placed_jobs_total{state=\"done\"} %d\n", m.jobsDone)
	p("placed_jobs_total{state=\"failed\"} %d\n", m.jobsFailed)
	p("placed_jobs_total{state=\"cancelled\"} %d\n", m.jobsCancelled)
	p("# HELP placed_jobs_queued Jobs waiting for a solver worker.\n")
	p("# TYPE placed_jobs_queued gauge\n")
	p("placed_jobs_queued %d\n", m.jobsQueued)
	p("# HELP placed_jobs_running Jobs currently solving.\n")
	p("# TYPE placed_jobs_running gauge\n")
	p("placed_jobs_running %d\n", m.jobsRunning)
	p("# HELP placed_cache_hits_total Submissions served from the result cache.\n")
	p("# TYPE placed_cache_hits_total counter\n")
	p("placed_cache_hits_total %d\n", m.cacheHits)
	p("# HELP placed_cache_misses_total Submissions that missed the result cache.\n")
	p("# TYPE placed_cache_misses_total counter\n")
	p("placed_cache_misses_total %d\n", m.cacheMisses)
	p("# HELP placed_coalesced_total Submissions coalesced onto an identical in-flight job.\n")
	p("# TYPE placed_coalesced_total counter\n")
	p("placed_coalesced_total %d\n", m.coalesced)
	p("# HELP placed_cache_entries Results currently cached.\n")
	p("# TYPE placed_cache_entries gauge\n")
	p("placed_cache_entries %d\n", cacheStats.Entries)
	p("# HELP placed_cache_bytes Serialized bytes held by the result cache backend.\n")
	p("# TYPE placed_cache_bytes gauge\n")
	p("placed_cache_bytes %d\n", cacheStats.Bytes)
	p("# HELP placed_job_records Terminal job records held by the job store backend.\n")
	p("# TYPE placed_job_records gauge\n")
	p("placed_job_records %d\n", jobStats.Entries)
	p("# HELP placed_shed_total Submissions rejected with queue-full load shedding (HTTP 429).\n")
	p("# TYPE placed_shed_total counter\n")
	p("placed_shed_total %d\n", m.shed)
	p("# HELP placed_jobs_degraded_total Jobs solved under deadline pressure with a shortened schedule.\n")
	p("# TYPE placed_jobs_degraded_total counter\n")
	p("placed_jobs_degraded_total %d\n", m.jobsDegraded)
	p("# HELP placed_jobs_quarantined_total Jobs failed after exceeding the worker-crash limit.\n")
	p("# TYPE placed_jobs_quarantined_total counter\n")
	p("placed_jobs_quarantined_total %d\n", m.jobsQuarantined)
	p("# HELP placed_worker_crashes_total Worker panics caught by the supervisors, per worker slot.\n")
	p("# TYPE placed_worker_crashes_total counter\n")
	for slot, n := range perWorker {
		p("placed_worker_crashes_total{worker=\"%d\"} %d\n", slot, n)
	}
	p("# HELP placed_worker_restarts_total Worker slots restarted after crash backoff.\n")
	p("# TYPE placed_worker_restarts_total counter\n")
	p("placed_worker_restarts_total %d\n", m.workerRestarts)
	p("# HELP placed_checkpoints_saved_total Best-so-far solver snapshots accepted into the checkpoint store.\n")
	p("# TYPE placed_checkpoints_saved_total counter\n")
	p("placed_checkpoints_saved_total %d\n", ckptSaved)
	p("# HELP placed_checkpoints_resumed_total Solves warm-started from a stored checkpoint.\n")
	p("# TYPE placed_checkpoints_resumed_total counter\n")
	p("placed_checkpoints_resumed_total %d\n", ckptResumed)
	p("# HELP placed_checkpoint_entries Content hashes with stored checkpoints.\n")
	p("# TYPE placed_checkpoint_entries gauge\n")
	p("placed_checkpoint_entries %d\n", ckptEntries)
	p("# HELP placed_queue_depth Jobs waiting in the scheduler's queue, sampled from the queue list itself (cross-check against placed_jobs_queued).\n")
	p("# TYPE placed_queue_depth gauge\n")
	p("placed_queue_depth %d\n", qdepth)
	p("# HELP placed_tenant_admitted_total Solves admitted past the tenant quota, by tenant.\n")
	p("# TYPE placed_tenant_admitted_total counter\n")
	for _, t := range sortedKeys(tenantAdmitted) {
		p("placed_tenant_admitted_total{tenant=%q} %d\n", t, tenantAdmitted[t])
	}
	p("# HELP placed_tenant_throttled_total Submissions rejected by the tenant admission quota (HTTP 429), by tenant.\n")
	p("# TYPE placed_tenant_throttled_total counter\n")
	for _, t := range sortedKeys(tenantThrottled) {
		p("placed_tenant_throttled_total{tenant=%q} %d\n", t, tenantThrottled[t])
	}
	p("# HELP placed_tenant_queue_depth Queued jobs per fair-queue tenant lane.\n")
	p("# TYPE placed_tenant_queue_depth gauge\n")
	for _, t := range sortedKeys(tenantDepths) {
		p("placed_tenant_queue_depth{tenant=%q} %d\n", t, tenantDepths[t])
	}
	p("# HELP placed_solve_latency_ewma_seconds Exponentially weighted moving average of solve wall-clock latency, the smoothing behind Retry-After.\n")
	p("# TYPE placed_solve_latency_ewma_seconds gauge\n")
	p("placed_solve_latency_ewma_seconds %g\n", m.ewmaLatency)
	p("# HELP placed_retry_after_seconds Current Retry-After estimate handed to shed clients.\n")
	p("# TYPE placed_retry_after_seconds gauge\n")
	p("placed_retry_after_seconds %g\n", retryAfter.Seconds())
	p("# HELP placed_solve_seconds Solve wall-clock latency.\n")
	p("# TYPE placed_solve_seconds histogram\n")
	for i, bound := range latencyBuckets {
		p("placed_solve_seconds_bucket{le=\"%g\"} %d\n", bound, m.latencyBuckets[i])
	}
	p("placed_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.latencyBuckets[len(latencyBuckets)])
	p("placed_solve_seconds_sum %g\n", m.latencySum)
	p("placed_solve_seconds_count %d\n", m.latencyCount)
	return err
}
