package service

import (
	"fmt"
	"io"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, chosen around the spread between a cache hit-adjacent
// small solve (milliseconds) and a large portfolio race (minutes).
// A fixed-size array keeps the counter array below sized in lockstep.
var latencyBuckets = [...]float64{0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}

// metrics are the scheduler's counters; the scheduler mutates them
// under its own mutex.
type metrics struct {
	jobsQueued    int64 // gauge
	jobsRunning   int64 // gauge
	jobsDone      int64
	jobsFailed    int64
	jobsCancelled int64
	cacheHits     int64
	cacheMisses   int64
	coalesced     int64

	latencyCount   int64
	latencySum     float64
	latencyBuckets [len(latencyBuckets) + 1]int64 // one per bound + +Inf
}

func (m *metrics) observeLatency(seconds float64) {
	m.latencyCount++
	m.latencySum += seconds
	for i, bound := range latencyBuckets {
		if seconds <= bound {
			m.latencyBuckets[i]++
		}
	}
	m.latencyBuckets[len(latencyBuckets)]++
}

// Metrics is a point-in-time snapshot of the scheduler's counters.
type Metrics struct {
	JobsQueued    int64
	JobsRunning   int64
	JobsDone      int64
	JobsFailed    int64
	JobsCancelled int64
	CacheHits     int64
	CacheMisses   int64
	Coalesced     int64
	CacheEntries  int64
	SolveCount    int64
	SolveSum      float64
}

// Metrics returns a snapshot of the scheduler's counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Metrics{
		JobsQueued:    s.metrics.jobsQueued,
		JobsRunning:   s.metrics.jobsRunning,
		JobsDone:      s.metrics.jobsDone,
		JobsFailed:    s.metrics.jobsFailed,
		JobsCancelled: s.metrics.jobsCancelled,
		CacheHits:     s.metrics.cacheHits,
		CacheMisses:   s.metrics.cacheMisses,
		Coalesced:     s.metrics.coalesced,
		SolveCount:    s.metrics.latencyCount,
		SolveSum:      s.metrics.latencySum,
	}
	if s.cache != nil {
		snap.CacheEntries = int64(s.cache.len())
	}
	return snap
}

// WriteMetrics renders the scheduler's counters in the Prometheus
// text exposition format, served by /metrics.
func (s *Scheduler) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	m := s.metrics // counters copy by value
	entries := 0
	if s.cache != nil {
		entries = s.cache.len()
	}
	s.mu.Unlock()

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP placed_jobs_total Solver jobs finished, by terminal state (cache-hit answers count only in placed_cache_hits_total).\n")
	p("# TYPE placed_jobs_total counter\n")
	p("placed_jobs_total{state=\"done\"} %d\n", m.jobsDone)
	p("placed_jobs_total{state=\"failed\"} %d\n", m.jobsFailed)
	p("placed_jobs_total{state=\"cancelled\"} %d\n", m.jobsCancelled)
	p("# HELP placed_jobs_queued Jobs waiting for a solver worker.\n")
	p("# TYPE placed_jobs_queued gauge\n")
	p("placed_jobs_queued %d\n", m.jobsQueued)
	p("# HELP placed_jobs_running Jobs currently solving.\n")
	p("# TYPE placed_jobs_running gauge\n")
	p("placed_jobs_running %d\n", m.jobsRunning)
	p("# HELP placed_cache_hits_total Submissions served from the result cache.\n")
	p("# TYPE placed_cache_hits_total counter\n")
	p("placed_cache_hits_total %d\n", m.cacheHits)
	p("# HELP placed_cache_misses_total Submissions that missed the result cache.\n")
	p("# TYPE placed_cache_misses_total counter\n")
	p("placed_cache_misses_total %d\n", m.cacheMisses)
	p("# HELP placed_coalesced_total Submissions coalesced onto an identical in-flight job.\n")
	p("# TYPE placed_coalesced_total counter\n")
	p("placed_coalesced_total %d\n", m.coalesced)
	p("# HELP placed_cache_entries Results currently cached.\n")
	p("# TYPE placed_cache_entries gauge\n")
	p("placed_cache_entries %d\n", entries)
	p("# HELP placed_solve_seconds Solve wall-clock latency.\n")
	p("# TYPE placed_solve_seconds histogram\n")
	for i, bound := range latencyBuckets {
		p("placed_solve_seconds_bucket{le=\"%g\"} %d\n", bound, m.latencyBuckets[i])
	}
	p("placed_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.latencyBuckets[len(latencyBuckets)])
	p("placed_solve_seconds_sum %g\n", m.latencySum)
	p("placed_solve_seconds_count %d\n", m.latencyCount)
	return err
}
