// End-to-end flight-recorder coverage: a tempered solve through the
// HTTP API serves a schema-valid trace, the endpoint's state machine
// (409 while running, 404 when disabled) holds, worker crashes show up
// as failpoint events, and fixed-seed traces are byte-identical across
// daemons. CI runs this file under -race.
package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/wire"
)

// temperedRequest is a small parallel-tempering solve with exchanges
// frequent enough that the recording must contain exchange events.
func temperedRequest(t *testing.T, seed int64) *wire.Request {
	t.Helper()
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.Seed = seed
	req.Options.TemperChains = 3
	req.Options.ExchangeEvery = 2
	req.Options.MovesPerStage = 30
	req.Options.MaxStages = 12
	req.Options.StallStages = 12
	return req
}

// TestTraceEndpointE2E drives a tempered solve through POST /v1/place
// and reads its flight recording back from GET /v1/jobs/{id}/trace:
// the trace must validate against the wire schema and contain stage
// events for every tempering rung plus at least one exchange attempt.
func TestTraceEndpointE2E(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	body := mustJSON(t, temperedRequest(t, 42))
	code, resp := h.do(http.MethodPost, "/v1/place?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("POST ?wait=1: %d %s", code, resp)
	}
	v := h.job(resp)
	if v.State != StateDone {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}

	code, resp = h.do(http.MethodGet, "/v1/jobs/"+v.ID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, resp)
	}
	var tr wire.Trace
	if err := json.Unmarshal(resp, &tr); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, resp)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	if tr.Version != wire.Version || tr.Method != wire.MethodSeqPair {
		t.Fatalf("trace header version=%d method=%q", tr.Version, tr.Method)
	}
	rungs := map[int]bool{}
	exchanges := 0
	for _, e := range tr.Events {
		switch e.Kind {
		case wire.TraceKindStage:
			rungs[e.Worker] = true
		case wire.TraceKindExchange:
			exchanges++
		}
	}
	for k := 0; k < 3; k++ {
		if !rungs[k] {
			t.Errorf("no stage events recorded for tempering rung %d (rungs seen: %v)", k, rungs)
		}
	}
	if exchanges == 0 {
		t.Error("tempered solve recorded no exchange events")
	}

	if code, _ := h.do(http.MethodGet, "/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Fatalf("trace of unknown job: %d, want 404", code)
	}
}

// TestTraceConflictWhileRunning pins the endpoint's state machine: a
// running job answers 409, and after cancellation the kept best-so-far
// result serves its (partial) recording.
func TestTraceConflictWhileRunning(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.MovesPerStage = 5000
	req.Options.MaxStages = 100000
	req.Options.StallStages = 100000
	code, resp := h.do(http.MethodPost, "/v1/place", mustJSON(t, req))
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d %s", code, resp)
	}
	v := h.job(resp)

	// The job is queued or running; either way it is not terminal and
	// the trace endpoint must refuse with 409.
	code, resp = h.do(http.MethodGet, "/v1/jobs/"+v.ID+"/trace", nil)
	if code != http.StatusConflict {
		t.Fatalf("trace of live job: %d %s, want 409", code, resp)
	}

	if code, resp := h.do(http.MethodDelete, "/v1/jobs/"+v.ID, nil); code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", code, resp)
	}
	final := h.poll(v.ID, 60*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}
	// A cancelled solve keeps best-so-far — and with it the recording
	// of the stages that did run.
	code, resp = h.do(http.MethodGet, "/v1/jobs/"+v.ID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("trace after cancel: %d %s", code, resp)
	}
	var tr wire.Trace
	if err := json.Unmarshal(resp, &tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("cancelled job's trace invalid: %v", err)
	}
}

// TestTraceDisabled pins Config.TraceEvents < 0: solves run untraced
// and the endpoint answers 404 for the terminal job.
func TestTraceDisabled(t *testing.T) {
	s := New(Config{Workers: 1, TraceEvents: -1})
	defer s.Close()
	j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	if res == nil || res.Trace != nil {
		t.Fatalf("tracing disabled but result carries a trace: %+v", res)
	}
	tr, ready := j.Trace()
	if !ready || tr != nil {
		t.Fatalf("Trace() = (%v, %v), want (nil, true)", tr, ready)
	}
}

// TestTraceRecordsWorkerCrashes arms the worker-panic failpoint at
// certainty so the job quarantines, then checks the served trace leads
// with the scheduler/worker-panic failpoint events — the recording
// explains why the job failed even though no solve ever completed.
func TestTraceRecordsWorkerCrashes(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(8)
	fault.Enable("scheduler/worker-panic", 1.0)

	s := New(Config{Workers: 1, MaxJobCrashes: 1})
	defer s.Close()
	j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateFailed {
		t.Fatalf("job ended %s, want failed quarantine", j.State())
	}
	tr, ready := j.Trace()
	if !ready || tr == nil {
		t.Fatalf("Trace() = (%v, %v), want crash events", tr, ready)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("crash trace invalid: %v", err)
	}
	crashes := 0
	for _, e := range tr.Events {
		if e.Kind == wire.TraceKindFailpoint && e.Point == "scheduler/worker-panic" {
			if e.Worker != -1 || e.Stage != -1 {
				t.Fatalf("crash event not marked outside any chain: %+v", e)
			}
			crashes++
		}
	}
	// MaxJobCrashes 1 quarantines on the second crash.
	if crashes != 2 {
		t.Fatalf("trace carries %d crash events, want 2", crashes)
	}
}

// TestTraceDeterministicAcrossDaemons solves one fixed-seed tempered
// request on two fresh schedulers and requires byte-identical trace
// JSON — the recording carries no wall-clock, so it inherits the
// solve's determinism.
func TestTraceDeterministicAcrossDaemons(t *testing.T) {
	trace := func() []byte {
		h := newHarness(t, Config{Workers: 2})
		code, resp := h.do(http.MethodPost, "/v1/place?wait=1", mustJSON(t, temperedRequest(t, 7)))
		if code != http.StatusOK {
			t.Fatalf("POST: %d %s", code, resp)
		}
		v := h.job(resp)
		code, body := h.do(http.MethodGet, "/v1/jobs/"+v.ID+"/trace", nil)
		if code != http.StatusOK {
			t.Fatalf("GET trace: %d %s", code, body)
		}
		return body
	}
	a, b := trace(), trace()
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed traces differ across daemons:\n%s\n%s", a, b)
	}
}
