package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/wire"
)

// httpHarness is one daemon instance under httptest.
type httpHarness struct {
	t     *testing.T
	s     *Scheduler
	srv   *httptest.Server
	httpc *http.Client
}

func newHarness(t *testing.T, cfg Config) *httpHarness {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return &httpHarness{t: t, s: s, srv: srv, httpc: srv.Client()}
}

func (h *httpHarness) do(method, path string, body []byte) (int, []byte) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, h.srv.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.httpc.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (h *httpHarness) job(body []byte) JobView {
	h.t.Helper()
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		h.t.Fatalf("bad job JSON: %v\n%s", err, body)
	}
	return v
}

// poll GETs the job until it reaches a terminal state.
func (h *httpHarness) poll(id string, timeout time.Duration) JobView {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := h.do(http.MethodGet, "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			h.t.Fatalf("GET job: %d %s", code, body)
		}
		v := h.job(body)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *httpHarness) metric(name string) float64 {
	h.t.Helper()
	code, body := h.do(http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		h.t.Fatalf("/metrics: %d", code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		h.t.Fatalf("metric %s missing from:\n%s", name, body)
	}
	f, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		h.t.Fatal(err)
	}
	return f
}

func millerWireRequest(t *testing.T) []byte {
	t.Helper()
	p, err := wire.FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	req := wire.Request{Problem: *p, Options: wire.Options{
		Method: wire.MethodSeqPair, Seed: 3, MovesPerStage: 60, MaxStages: 40, StallStages: 40,
	}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEndToEnd is the acceptance walk: POST the Miller op-amp bench
// as wire JSON, poll to completion, get a symmetry-feasible
// placement; POST the identical request again and get a cache hit
// (verified through /metrics) with the identical placement; cancel a
// long-running job via DELETE and get best-so-far promptly.
func TestEndToEnd(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	body := millerWireRequest(t)

	// Health first.
	if code, out := h.do(http.MethodGet, "/healthz", nil); code != http.StatusOK || !bytes.Contains(out, []byte("ok")) {
		t.Fatalf("healthz: %d %s", code, out)
	}

	// 1. Cold solve, async: accepted, then polled to done.
	code, out := h.do(http.MethodPost, "/v1/place", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d %s", code, out)
	}
	v := h.job(out)
	if v.State.Terminal() && v.CacheHit {
		t.Fatalf("cold POST served from cache: %+v", v)
	}
	final := h.poll(v.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	res := final.Result
	if res == nil || len(res.Placement) != 9 {
		t.Fatalf("incomplete placement: %+v", res)
	}
	if !res.Legal {
		t.Fatal("placement has overlaps")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("placement not symmetry-feasible: %v", res.Violations)
	}
	if h.metric("placed_cache_hits_total") != 0 {
		t.Fatal("cold solve counted as cache hit")
	}
	if got := h.metric(`placed_jobs_total{state="done"}`); got != 1 {
		t.Fatalf("done counter %v after first solve", got)
	}

	// 2. Identical POST: immediate 200, cache hit, same placement.
	code, out = h.do(http.MethodPost, "/v1/place", body)
	if code != http.StatusOK {
		t.Fatalf("second POST: %d %s", code, out)
	}
	v2 := h.job(out)
	if !v2.CacheHit || v2.State != StateDone {
		t.Fatalf("second POST not a finished cache hit: %+v", v2)
	}
	if !reflect.DeepEqual(v2.Result.Placement, res.Placement) {
		t.Fatal("cache returned a different placement")
	}
	if v2.Result.Cost != res.Cost {
		t.Fatalf("cache returned a different cost: %v vs %v", v2.Result.Cost, res.Cost)
	}
	if h.metric("placed_cache_hits_total") != 1 {
		t.Fatal("cache hit not counted")
	}

	// 3. Cancellation: start a big job, wait until it reports
	// progress, DELETE it, and require a prompt best-so-far result.
	big, err := circuits.TableIBench("lnamixbias")
	if err != nil {
		t.Fatal(err)
	}
	bp, err := wire.FromBench(big)
	if err != nil {
		t.Fatal(err)
	}
	// B*-tree: the 110-module bench has too many interleaved symmetry
	// groups for a random symmetric-feasible seed (seqpair fails its
	// init retries on it even outside the service). Near-flat cooling
	// keeps the schedule from reaching MinTemp before the DELETE.
	breq, err := json.Marshal(wire.Request{Problem: *bp, Options: wire.Options{
		Method: wire.MethodBStar, MovesPerStage: 500, MaxStages: 1000000, StallStages: 1000000, Cooling: 0.99999,
	}})
	if err != nil {
		t.Fatal(err)
	}
	code, out = h.do(http.MethodPost, "/v1/place", breq)
	if code != http.StatusAccepted {
		t.Fatalf("big POST: %d %s", code, out)
	}
	bv := h.job(out)
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, out = h.do(http.MethodGet, "/v1/jobs/"+bv.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("GET big job: %d", code)
		}
		cur := h.job(out)
		if cur.State == StateRunning && cur.Progress != nil && cur.Progress.Stage > 0 {
			if cur.Progress.BestCost <= 0 || cur.Progress.MovesPerSec <= 0 {
				t.Fatalf("implausible live progress: %+v", *cur.Progress)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("big job never reported progress (state %s)", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelStart := time.Now()
	code, out = h.do(http.MethodDelete, "/v1/jobs/"+bv.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", code, out)
	}
	cancelled := h.poll(bv.ID, 30*time.Second)
	promptness := time.Since(cancelStart)
	if cancelled.State != StateCancelled {
		t.Fatalf("cancelled job finished %s", cancelled.State)
	}
	if cancelled.Result == nil || len(cancelled.Result.Placement) != 110 {
		t.Fatal("cancelled job lost its best-so-far placement")
	}
	if !cancelled.Result.Cancelled {
		t.Fatal("result not flagged cancelled")
	}
	// "Promptly": one stage boundary, not the full 10000-stage run.
	// Generous bound for slow CI machines.
	if promptness > 10*time.Second {
		t.Fatalf("cancellation took %v", promptness)
	}
	if got := h.metric(`placed_jobs_total{state="cancelled"}`); got != 1 {
		t.Fatalf("cancelled counter %v", got)
	}
}

// TestHTTPSyncAndErrors covers ?wait=1, decode rejection and unknown
// job handling.
func TestHTTPSyncAndErrors(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})

	// Synchronous solve returns 200 with the final result directly.
	code, out := h.do(http.MethodPost, "/v1/place?wait=1", millerWireRequest(t))
	if code != http.StatusOK {
		t.Fatalf("sync POST: %d %s", code, out)
	}
	v := h.job(out)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("sync POST did not finish the job: %+v", v)
	}

	// Malformed request → 400 with an error payload.
	code, out = h.do(http.MethodPost, "/v1/place", []byte(`{"problem":{"modules":[]}}`))
	if code != http.StatusBadRequest {
		t.Fatalf("invalid problem: %d %s", code, out)
	}
	var e map[string]string
	if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
		t.Fatalf("no error payload: %s", out)
	}

	// Unknown field → 400 (strict decoding).
	code, _ = h.do(http.MethodPost, "/v1/place", []byte(`{"problem":{"modules":[{"name":"A","w":1,"h":1}],"objective":{}},"surprise":1}`))
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}

	// Unknown job id → 404 for GET and DELETE.
	if code, _ = h.do(http.MethodGet, "/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", code)
	}
	if code, _ = h.do(http.MethodDelete, "/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d", code)
	}
}

// TestHTTPPortfolio solves the Miller bench in portfolio mode over
// HTTP and checks the winner is constraint-feasible.
func TestHTTPPortfolio(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})
	p, err := wire.FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.Request{Problem: *p, Options: wire.Options{
		Method: wire.MethodPortfolio, MovesPerStage: 40, MaxStages: 20, StallStages: 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	code, out := h.do(http.MethodPost, "/v1/place?wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("portfolio POST: %d %s", code, out)
	}
	v := h.job(out)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("portfolio: %+v", v)
	}
	if len(v.Result.Violations) != 0 {
		t.Fatalf("portfolio winner %s infeasible: %v", v.Result.Method, v.Result.Violations)
	}
	if fmt.Sprint(v.Result.Method) == "" {
		t.Fatal("no winner method recorded")
	}
}
