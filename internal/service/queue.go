package service

import "container/list"

// fairQueue is the scheduler's pending-job structure: one FIFO per
// tenant, dequeued by weighted fair queueing over virtual time. Each
// tenant's queue keeps strict FIFO order (so the single-tenant daemon
// behaves exactly like the plain list it replaced, crash requeue at
// the front included), while across tenants every pop charges the
// served tenant 1/weight of virtual time and the next pop goes to the
// smallest vtime — so a tenant flooding the queue cannot starve one
// submitting at a trickle, and a tenant with weight 2 drains twice as
// fast as one with weight 1 under contention. Ties break on the
// tenant name, so dequeue order is deterministic for a fixed arrival
// order. All methods are called under the scheduler's mutex.
type fairQueue struct {
	size    int
	tenants map[string]*tenantQ
	weights map[string]float64
	// vclock is the virtual time of the most recent dequeue. A tenant
	// (re)activating from idle starts at the clock rather than its
	// stale vtime, so idle time banks no credit — fairness is over
	// backlogged tenants only, the classic start-time fairness rule.
	vclock float64
}

type tenantQ struct {
	name  string
	jobs  *list.List // of *Job; Front is next out
	vtime float64
}

func newFairQueue(weights map[string]float64) *fairQueue {
	return &fairQueue{tenants: make(map[string]*tenantQ), weights: weights}
}

func (q *fairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// tq returns (creating if needed) the tenant's queue, applying the
// activation catch-up.
func (q *fairQueue) tq(tenant string) *tenantQ {
	tq, ok := q.tenants[tenant]
	if !ok {
		tq = &tenantQ{name: tenant, jobs: list.New(), vtime: q.vclock}
		q.tenants[tenant] = tq
	}
	return tq
}

// push appends the job to its tenant's FIFO.
func (q *fairQueue) push(j *Job) {
	j.qelem = q.tq(j.tenant).jobs.PushBack(j)
	q.size++
}

// pushFront requeues a job (crash retry) at the head of its tenant's
// line; it already paid its virtual time when first popped, so no new
// charge.
func (q *fairQueue) pushFront(j *Job) {
	j.qelem = q.tq(j.tenant).jobs.PushFront(j)
	q.size++
}

// pop removes and returns the next job under the fairness order, or
// nil when empty.
func (q *fairQueue) pop() *Job {
	var best *tenantQ
	for _, tq := range q.tenants {
		if best == nil || tq.vtime < best.vtime || (tq.vtime == best.vtime && tq.name < best.name) {
			best = tq
		}
	}
	if best == nil {
		return nil
	}
	el := best.jobs.Front()
	best.jobs.Remove(el)
	j := el.Value.(*Job)
	j.qelem = nil
	q.size--
	best.vtime += 1 / q.weight(best.name)
	q.vclock = best.vtime
	if best.jobs.Len() == 0 {
		delete(q.tenants, best.name)
	}
	return j
}

// remove unlinks a still-queued job (cancellation); a job already
// popped (qelem nil) is a no-op.
func (q *fairQueue) remove(j *Job) {
	if j.qelem == nil {
		return
	}
	tq, ok := q.tenants[j.tenant]
	if !ok {
		return
	}
	tq.jobs.Remove(j.qelem)
	j.qelem = nil
	q.size--
	if tq.jobs.Len() == 0 {
		delete(q.tenants, j.tenant)
	}
}

func (q *fairQueue) len() int { return q.size }

// depths reports the per-tenant backlog, for /metrics.
func (q *fairQueue) depths() map[string]int {
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		out[name] = tq.jobs.Len()
	}
	return out
}
