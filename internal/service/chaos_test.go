// Chaos suite: randomized failpoint storms against the full HTTP
// surface. CI runs it under -race (go test -race -run Chaos); the
// assertions are the fault-tolerance contract — no wedged scheduler,
// no lost jobs (every accepted submission reaches a terminal state),
// and bit-identical results once the failpoints are disarmed.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/wire"
)

// chaosRequest is a deliberately tiny solve so a storm of them runs in
// test time; the deadline bounds injected stalls.
func chaosRequest(t *testing.T, seed int64) *wire.Request {
	t.Helper()
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.Seed = seed
	req.Options.MovesPerStage = 20
	req.Options.MaxStages = 10
	req.Options.StallStages = 10
	req.Options.TimeoutMS = 400
	return req
}

// chaosSubmit POSTs one request, retrying injected 400s, shed 429s and
// drain 503s with a small backoff until the daemon accepts it — the
// content hash makes every retry idempotent. Returns the job id. It
// runs on client goroutines, so failures are errors, not t.Fatal.
func chaosSubmit(base string, req *wire.Request) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	backoff := 5 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		var v JobView
		decErr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			if decErr != nil {
				return "", decErr
			}
			return v.ID, nil
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt > 200 {
				return "", fmt.Errorf("request never accepted after %d attempts (last status %d)", attempt, resp.StatusCode)
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
	}
}

// TestChaosStorm arms every failpoint at once and drives concurrent
// clients through the HTTP API until each fault has fired at least
// ten times. Afterwards: every job is terminal, the scheduler drains
// cleanly, and the counters balance.
func TestChaosStorm(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(20260808)
	fault.Enable("scheduler/worker-panic", 0.25)
	fault.Enable("solve/slow", 0.25)
	fault.Enable("solve/error", 0.2)
	fault.Enable("wire/decode-err", 0.25)

	s := New(Config{Workers: 4, QueueDepth: 128, PressureDepth: 8})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	points := []string{"scheduler/worker-panic", "solve/slow", "solve/error", "wire/decode-err"}
	const wantFires = 10
	var (
		mu  sync.Mutex
		ids []string
	)
	seed := int64(0)
	deadline := time.Now().Add(3 * time.Minute)
	for round := 0; ; round++ {
		if time.Now().After(deadline) {
			for _, p := range points {
				t.Logf("%s: %d fires / %d evals", p, fault.Count(p), fault.Evals(p))
			}
			t.Fatal("storm deadline passed before every failpoint fired 10 times")
		}
		var wg sync.WaitGroup
		errc := make(chan error, 3)
		for g := 0; g < 3; g++ {
			wg.Add(1)
			base := seed + int64(g)*10
			reqs := make([]*wire.Request, 10)
			for k := range reqs {
				reqs[k] = chaosRequest(t, base+int64(k))
			}
			go func() {
				defer wg.Done()
				for _, r := range reqs {
					id, err := chaosSubmit(srv.URL, r)
					if err != nil {
						errc <- err
						return
					}
					mu.Lock()
					ids = append(ids, id)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		seed += 30
		done := true
		for _, p := range points {
			if fault.Count(p) < wantFires {
				done = false
			}
		}
		if done {
			break
		}
	}

	// No lost jobs: every accepted submission reaches a terminal state.
	// (Retention may forget old terminal jobs; a forgotten job *was*
	// terminal — only live jobs are never evicted.)
	jobDeadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			j, ok := s.Job(id)
			if !ok || j.State().Terminal() {
				break
			}
			if time.Now().After(jobDeadline) {
				t.Fatalf("job %s wedged in state %s under the storm", id, j.State())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	for _, p := range points {
		if fault.Count(p) < wantFires {
			t.Errorf("failpoint %s fired %d times, want >= %d", p, fault.Count(p), wantFires)
		}
	}

	// No wedged scheduler: a storm-battered pool still drains.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("scheduler wedged: Close did not return")
	}

	m := s.Metrics()
	if m.JobsRunning != 0 || m.JobsQueued != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", m)
	}
	// The sampled queue gauge must agree with the counter-arithmetic
	// one — a storm of crashes, requeues and cancellations is exactly
	// when the two bookkeeping paths would drift apart.
	if m.QueueDepth != m.JobsQueued {
		t.Fatalf("queue depth gauge %d disagrees with jobs-queued counter %d after drain", m.QueueDepth, m.JobsQueued)
	}
	if m.SolveCount > 0 && m.SolveLatencyEWMA <= 0 {
		t.Fatalf("latency EWMA %g not positive after %d completed solves", m.SolveLatencyEWMA, m.SolveCount)
	}
	if m.WorkerCrashes < wantFires {
		t.Fatalf("worker crash counter %d below the panic fire count", m.WorkerCrashes)
	}
	t.Logf("storm: %d submissions, done=%d failed=%d cancelled=%d quarantined=%d degraded=%d shed=%d crashes=%d restarts=%d",
		len(ids), m.JobsDone, m.JobsFailed, m.JobsCancelled, m.JobsQuarantined, m.JobsDegraded, m.Shed, m.WorkerCrashes, m.WorkerRestarts)
}

// TestChaosTemperingStorm drives parallel-tempering jobs — exchanges
// every stage, so cancellation and injected faults land between
// exchange sweeps — through armed failpoints, cancelling half of them
// mid-flight. The contract: no wedged replica barrier (every job goes
// terminal), and the battered scheduler still drains.
func TestChaosTemperingStorm(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(7072026)
	fault.Enable("scheduler/worker-panic", 0.2)
	fault.Enable("solve/slow", 0.25)
	fault.Enable("solve/error", 0.15)

	s := New(Config{Workers: 4, QueueDepth: 128})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	client := srv.Client()
	var ids []string
	for k := 0; k < 24; k++ {
		req := chaosRequest(t, int64(9000+k))
		req.Options.TemperChains = 2 + k%3
		req.Options.ExchangeEvery = 1
		id, err := chaosSubmit(srv.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if k%2 == 0 {
			del, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(del)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	jobDeadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			j, ok := s.Job(id)
			if !ok || j.State().Terminal() {
				break
			}
			if time.Now().After(jobDeadline) {
				t.Fatalf("tempering job %s wedged in state %s", id, j.State())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("scheduler wedged after tempering storm: Close did not return")
	}
	m := s.Metrics()
	if m.JobsRunning != 0 || m.JobsQueued != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", m)
	}
	t.Logf("tempering storm: %d submissions, done=%d failed=%d cancelled=%d crashes=%d",
		len(ids), m.JobsDone, m.JobsFailed, m.JobsCancelled, m.WorkerCrashes)
}

// TestChaosDeterminismFaultsOff pins the zero-cost-when-disabled
// claim end to end: with every failpoint disarmed, two fresh
// schedulers produce bit-identical placements for the same request.
func TestChaosDeterminismFaultsOff(t *testing.T) {
	fault.Reset()
	solve := func() *wire.Result {
		s := New(Config{Workers: 2})
		defer s.Close()
		req := millerRequest(t, wire.MethodSeqPair)
		req.Options.Seed = 1234
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		res := waitJob(t, j)
		if j.State() != StateDone {
			t.Fatalf("faults-off solve ended %s: %s", j.State(), j.Err())
		}
		return res
	}
	a, b := solve(), solve()
	if a.Cost != b.Cost || len(a.Placement) != len(b.Placement) {
		t.Fatalf("faults-off solves diverged: cost %v vs %v", a.Cost, b.Cost)
	}
	for i := range a.Placement {
		if a.Placement[i] != b.Placement[i] {
			t.Fatalf("placement differs at %d: %+v vs %+v — disarmed failpoints must cost nothing and change nothing",
				i, a.Placement[i], b.Placement[i])
		}
	}
	// Byte-identical modulo wall-clock: RuntimeMS is elapsed time, the
	// one legitimately nondeterministic field on the wire result.
	a.RuntimeMS, b.RuntimeMS = 0, 0
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("wire results not byte-identical with faults off:\n%s\n%s", ja, jb)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosFleetStorm drives the fleet surface — batch submissions,
// SSE streams (half disconnected mid-flight), tenant quotas — under
// armed failpoints. The contract is the same as the plain storm: no
// wedged scheduler, every admitted job terminal, gauges balanced after
// drain; plus no SSE reader (connected or torn down mid-stream) may
// perturb or wedge a solve.
func TestChaosFleetStorm(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(20260809)
	fault.Enable("scheduler/worker-panic", 0.2)
	fault.Enable("solve/slow", 0.2)
	fault.Enable("solve/error", 0.15)

	s := New(Config{
		Workers: 4, QueueDepth: 128, PressureDepth: 16,
		TenantRate: 50, TenantBurst: 20, // high enough to admit the storm, real enough to exercise the bucket path
	})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	client := srv.Client()

	// batchSubmit POSTs one batch under a tenant, retrying whole-batch
	// 429s; per-item rejections are retried by resubmitting the batch
	// (identical items coalesce, so retries cost nothing extra).
	batchSubmit := func(tenant string, seeds []int64) ([]string, error) {
		var breq wire.BatchRequest
		for _, seed := range seeds {
			breq.Items = append(breq.Items, *chaosRequest(t, seed))
		}
		body := mustJSON(t, breq)
		backoff := 5 * time.Millisecond
		for attempt := 0; ; attempt++ {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/place:batch", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set(TenantHeader, tenant)
			resp, err := client.Do(req)
			if err != nil {
				return nil, err
			}
			var v BatchView
			decErr := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests:
				if resp.StatusCode == http.StatusTooManyRequests || decErr != nil || anyRejected(v) {
					if attempt > 200 {
						return nil, fmt.Errorf("batch never fully admitted after %d attempts", attempt)
					}
					time.Sleep(backoff)
					if backoff < 100*time.Millisecond {
						backoff *= 2
					}
					continue
				}
				ids := make([]string, 0, len(v.Jobs))
				for _, item := range v.Jobs {
					ids = append(ids, item.Job.ID)
				}
				return ids, nil
			case http.StatusServiceUnavailable:
				time.Sleep(backoff)
			default:
				return nil, fmt.Errorf("batch status %d", resp.StatusCode)
			}
		}
	}

	// streamJob attaches an SSE reader to a job; when tearDown is set it
	// disconnects after the first event instead of draining to done.
	streamJob := func(id string, tearDown bool) error {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil // job already evicted from memory; nothing to stream
		}
		sc := bufio.NewScanner(resp.Body)
		events := 0
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				events++
				if tearDown && events >= 1 {
					cancel() // mid-flight disconnect; the solve must not care
					return nil
				}
				if strings.TrimPrefix(line, "event: ") == "done" {
					return nil
				}
			}
		}
		return nil // server closed (job done) or context cancelled
	}

	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	tenants := []string{"storm-a", "storm-b", "storm-c"}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		tenant := tenants[g]
		base := int64(40000 + g*1000)
		go func() {
			defer wg.Done()
			for round := int64(0); round < 4; round++ {
				seeds := []int64{base + round*4, base + round*4 + 1, base + round*4 + 2, base + round*4 + 2} // one duplicate per batch
				got, err := batchSubmit(tenant, seeds)
				if err != nil {
					errc <- err
					return
				}
				mu.Lock()
				ids = append(ids, got...)
				mu.Unlock()
				// Stream every other batch's first job; tear half of the
				// streams down mid-flight.
				if err := streamJob(got[0], round%2 == 0); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every admitted job reaches a terminal state despite crashes,
	// stalls, injected errors and torn-down streams.
	jobDeadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			j, ok := s.Job(id)
			if !ok || j.State().Terminal() {
				break
			}
			if time.Now().After(jobDeadline) {
				t.Fatalf("fleet-storm job %s wedged in state %s", id, j.State())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("scheduler wedged after fleet storm: Close did not return")
	}
	m := s.Metrics()
	if m.JobsRunning != 0 || m.JobsQueued != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", m)
	}
	if m.QueueDepth != m.JobsQueued {
		t.Fatalf("queue depth gauge %d disagrees with jobs-queued counter %d after drain", m.QueueDepth, m.JobsQueued)
	}
	admitted := int64(0)
	for _, tenant := range tenants {
		admitted += m.TenantAdmitted[tenant]
	}
	if admitted == 0 {
		t.Fatal("no tenant admissions counted under the storm")
	}
	t.Logf("fleet storm: %d jobs, done=%d failed=%d cancelled=%d crashes=%d throttled=%v",
		len(ids), m.JobsDone, m.JobsFailed, m.JobsCancelled, m.WorkerCrashes, m.TenantThrottled)
}

// anyRejected reports whether a batch view contains a per-item
// rejection.
func anyRejected(v BatchView) bool {
	for _, item := range v.Jobs {
		if item.Job == nil {
			return true
		}
	}
	return false
}
