package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// maxRequestBytes bounds a POST /v1/place body.
const maxRequestBytes = 16 << 20

// JobView is the JSON shape of a job on the HTTP API.
type JobView struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Hash     string    `json:"hash"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	// Degraded marks a result produced under deadline pressure with a
	// shortened annealing schedule; resubmit the identical request
	// when the service is quieter for the canonical placement.
	Degraded bool         `json:"degraded,omitempty"`
	Result   *wire.Result `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// View renders the job for the HTTP API as one atomic snapshot —
// state, result and error are read under a single lock acquisition,
// so a client can never observe a running state with a result.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, Hash: j.Hash, State: j.state, CacheHit: j.cacheHit, Degraded: j.degraded}
	if p, ok := j.progressLocked(); ok {
		v.Progress = &p
	}
	if j.result != nil {
		v.Result = j.result
	}
	if j.errMsg != "" {
		v.Error = j.errMsg
	}
	return v
}

// viewFromRecord renders a stored job record in the same JSON shape,
// so a job answered from the job store (evicted from memory, or solved
// by another instance sharing a durable store) is indistinguishable
// from a live terminal job minus the live-only progress.
func viewFromRecord(rec *store.JobRecord) JobView {
	return JobView{
		ID:       rec.ID,
		State:    State(rec.State),
		Hash:     rec.Hash,
		CacheHit: rec.CacheHit,
		Degraded: rec.Degraded,
		Result:   rec.Result,
		Error:    rec.Error,
	}
}

// BatchView is the response of POST /v1/place:batch: one entry per
// submitted item, in request order.
type BatchView struct {
	Jobs []BatchItemView `json:"jobs"`
}

// BatchItemView is one batch item's outcome: a job view on success, or
// the per-item submission error (queue full, tenant quota) with its
// retry hint. Identical items in one batch coalesce onto a single
// solve, so their views share an id and a hash.
type BatchItemView struct {
	Job         *JobView `json:"job,omitempty"`
	Error       string   `json:"error,omitempty"`
	RetryAfterS int64    `json:"retry_after_s,omitempty"`
}

// NewHandler exposes a scheduler over HTTP:
//
//	POST   /v1/place            submit a wire.Request; ?wait=1 blocks until
//	                            done (429 + Retry-After when the queue sheds
//	                            load or the tenant is over quota, 503 once
//	                            the scheduler is draining)
//	POST   /v1/place:batch      submit a wire.BatchRequest: N problems
//	                            decoded and validated together, fanned into
//	                            jobs with identical items coalesced onto one
//	                            solve; ?wait=1 blocks until all are done
//	GET    /v1/algorithms       the placer registry: valid algorithm strings
//	GET    /v1/jobs/{id}        job status, live progress, result; with
//	                            Accept: text/event-stream, a live SSE feed
//	                            of flight-recorder and progress events
//	GET    /v1/jobs/{id}/trace  the solve's flight recording (wire.Trace);
//	                            409 until the job is terminal
//	DELETE /v1/jobs/{id}        cancel (returns promptly; best-so-far kept)
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text metrics
//
// Tenancy: the X-API-Key header names the tenant for quota admission
// and fair queueing; absent means the shared "anonymous" tenant. Jobs
// evicted from memory (or solved by another instance sharing a durable
// job store) are answered from the job store.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", func(w http.ResponseWriter, r *http.Request) {
		// The request span roots the trace tree; the job span parents
		// under it across the queue via SubmitCtx.
		ctx, span := obs.StartSpan(r.Context(), "request", obs.KV("path", "/v1/place"))
		defer span.End()
		ctx = WithTenant(ctx, r.Header.Get(TenantHeader))
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if len(body) > maxRequestBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "request over %d bytes", maxRequestBytes)
			return
		}
		req, err := wire.DecodeRequest(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Failpoint: a decode that succeeded is reported as failed, so
		// chaos tests can exercise client-side retry on 400s without
		// crafting actually-corrupt bodies.
		if fault.Point("wire/decode-err") {
			httpError(w, http.StatusBadRequest, "injected decode error (failpoint wire/decode-err)")
			return
		}
		job, err := s.SubmitCtx(ctx, req)
		if err != nil {
			submitError(w, s, err)
			return
		}
		wait := r.URL.Query().Get("wait")
		if wait == "1" || wait == "true" {
			select {
			case <-job.Done():
			case <-r.Context().Done():
				// The client went away; the job keeps running for the
				// next requester (it is content-addressed).
				httpError(w, statusClientClosedRequest, "client closed request")
				return
			}
		}
		// One snapshot decides both status and body, so a 202 can never
		// carry an already-terminal body.
		v := job.View()
		status := http.StatusAccepted
		if v.State.Terminal() {
			status = http.StatusOK
		}
		writeJSON(w, status, v)
	})

	mux.HandleFunc("POST /v1/place:batch", func(w http.ResponseWriter, r *http.Request) {
		ctx, span := obs.StartSpan(r.Context(), "request", obs.KV("path", "/v1/place:batch"))
		defer span.End()
		ctx = WithTenant(ctx, r.Header.Get(TenantHeader))
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if len(body) > maxRequestBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "request over %d bytes", maxRequestBytes)
			return
		}
		// One decode validates every item up front: a batch with any
		// invalid item is rejected whole, before any job is enqueued.
		batch, err := wire.DecodeBatchRequest(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if fault.Point("wire/decode-err") {
			httpError(w, http.StatusBadRequest, "injected decode error (failpoint wire/decode-err)")
			return
		}
		view := BatchView{Jobs: make([]BatchItemView, len(batch.Items))}
		jobs := make([]*Job, 0, len(batch.Items))
		rejected := 0
		var maxRetry int64
		for i := range batch.Items {
			// Items are already normalized; SubmitCtx coalesces identical
			// items (and identical in-flight singles) onto one solve.
			job, err := s.SubmitCtx(ctx, &batch.Items[i])
			if err != nil {
				if errors.Is(err, ErrClosed) {
					httpError(w, http.StatusServiceUnavailable, "%v", err)
					return
				}
				rejected++
				item := &view.Jobs[i]
				item.Error = err.Error()
				item.RetryAfterS = retrySeconds(s, err)
				if item.RetryAfterS > maxRetry {
					maxRetry = item.RetryAfterS
				}
				continue
			}
			jobs = append(jobs, job)
			view.Jobs[i].Job = &JobView{} // placeholder; snapshot below
		}
		wait := r.URL.Query().Get("wait")
		if wait == "1" || wait == "true" {
			for _, job := range jobs {
				select {
				case <-job.Done():
				case <-r.Context().Done():
					httpError(w, statusClientClosedRequest, "client closed request")
					return
				}
			}
		}
		// Snapshot every job after the optional wait, so a waited batch
		// reports terminal views throughout.
		ji := 0
		status := http.StatusOK
		for i := range view.Jobs {
			if view.Jobs[i].Job == nil {
				continue
			}
			v := jobs[ji].View()
			ji++
			view.Jobs[i].Job = &v
			if !v.State.Terminal() {
				status = http.StatusAccepted
			}
		}
		if rejected == len(batch.Items) {
			// Nothing was admitted: surface the shed as a batch-level 429
			// so naive clients back off, with the longest per-item hint.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", maxRetry))
			status = http.StatusTooManyRequests
		}
		writeJSON(w, status, view)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := s.Job(id)
		if !ok {
			// Fall back to the job store: retired past retention, or
			// solved by another instance sharing a durable store.
			if rec, ok := s.Record(id); ok {
				writeJSON(w, http.StatusOK, viewFromRecord(rec))
				return
			}
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		if wantsEventStream(r) {
			serveJobStream(w, r, job)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := s.Job(id)
		if !ok {
			if rec, ok := s.Record(id); ok {
				if tr := TraceFromRecord(rec); tr != nil {
					writeJSON(w, http.StatusOK, tr)
					return
				}
				httpError(w, http.StatusNotFound, "no trace recorded for job %s", id)
				return
			}
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		tr, ready := job.Trace()
		switch {
		case !ready:
			httpError(w, http.StatusConflict, "job %s not terminal; its trace is served once it finishes", job.ID)
		case tr == nil:
			httpError(w, http.StatusNotFound, "no trace recorded for job %s", job.ID)
		default:
			writeJSON(w, http.StatusOK, tr)
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !s.Cancel(id) {
			// Not in memory; a stored record means the job is already
			// terminal, which is what a cancel wants anyway.
			if rec, ok := s.Record(id); ok {
				writeJSON(w, http.StatusOK, viewFromRecord(rec))
				return
			}
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		job, ok := s.Job(id)
		if !ok {
			// Retention evicted the just-cancelled job between the two
			// calls; it is gone, which is what a cancel wants anyway.
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, AlgorithmViews())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})

	return mux
}

// statusClientClosedRequest is nginx's non-standard 499, the
// conventional "client went away while we were working" status.
const statusClientClosedRequest = 499

// submitError maps a SubmitCtx error to its HTTP response: queue-full
// shedding and tenant quota rejections both answer 429 with a
// Retry-After (backlog-derived and token-refill-derived respectively),
// a draining scheduler answers 503, and anything else is the client's
// 400.
func submitError(w http.ResponseWriter, s *Scheduler, err error) {
	var qe *QuotaError
	switch {
	case errors.Is(err, ErrQueueFull):
		// Load shedding: 429 plus a Retry-After computed from the
		// backlog and the smoothed solve latency. The content hash
		// makes the client's later resubmission idempotent.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(s.RetryAfter().Seconds()))))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(qe.RetryAfter.Seconds()))))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// retrySeconds is the Retry-After value for a shed submission, in
// whole seconds.
func retrySeconds(s *Scheduler, err error) int64 {
	var qe *QuotaError
	switch {
	case errors.As(err, &qe):
		return int64(math.Ceil(qe.RetryAfter.Seconds()))
	case errors.Is(err, ErrQueueFull):
		return int64(math.Ceil(s.RetryAfter().Seconds()))
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
