package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wire"
)

// maxRequestBytes bounds a POST /v1/place body.
const maxRequestBytes = 16 << 20

// JobView is the JSON shape of a job on the HTTP API.
type JobView struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Hash     string    `json:"hash"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	// Degraded marks a result produced under deadline pressure with a
	// shortened annealing schedule; resubmit the identical request
	// when the service is quieter for the canonical placement.
	Degraded bool         `json:"degraded,omitempty"`
	Result   *wire.Result `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// View renders the job for the HTTP API as one atomic snapshot —
// state, result and error are read under a single lock acquisition,
// so a client can never observe a running state with a result.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, Hash: j.Hash, State: j.state, CacheHit: j.cacheHit, Degraded: j.degraded}
	if p, ok := j.progressLocked(); ok {
		v.Progress = &p
	}
	if j.result != nil {
		v.Result = j.result
	}
	if j.errMsg != "" {
		v.Error = j.errMsg
	}
	return v
}

// NewHandler exposes a scheduler over HTTP:
//
//	POST   /v1/place            submit a wire.Request; ?wait=1 blocks until
//	                            done (429 + Retry-After when the queue sheds
//	                            load, 503 once the scheduler is draining)
//	GET    /v1/algorithms       the placer registry: valid algorithm strings
//	GET    /v1/jobs/{id}        job status, live progress, result
//	GET    /v1/jobs/{id}/trace  the solve's flight recording (wire.Trace);
//	                            409 until the job is terminal
//	DELETE /v1/jobs/{id}        cancel (returns promptly; best-so-far kept)
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text metrics
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", func(w http.ResponseWriter, r *http.Request) {
		// The request span roots the trace tree; the job span parents
		// under it across the queue via SubmitCtx.
		ctx, span := obs.StartSpan(r.Context(), "request", obs.KV("path", "/v1/place"))
		defer span.End()
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if len(body) > maxRequestBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "request over %d bytes", maxRequestBytes)
			return
		}
		req, err := wire.DecodeRequest(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Failpoint: a decode that succeeded is reported as failed, so
		// chaos tests can exercise client-side retry on 400s without
		// crafting actually-corrupt bodies.
		if fault.Point("wire/decode-err") {
			httpError(w, http.StatusBadRequest, "injected decode error (failpoint wire/decode-err)")
			return
		}
		job, err := s.SubmitCtx(ctx, req)
		switch err {
		case nil:
		case ErrQueueFull:
			// Load shedding: 429 plus a Retry-After computed from the
			// backlog and the smoothed solve latency. The content hash
			// makes the client's later resubmission idempotent.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(s.RetryAfter().Seconds()))))
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		case ErrClosed:
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wait := r.URL.Query().Get("wait")
		if wait == "1" || wait == "true" {
			select {
			case <-job.Done():
			case <-r.Context().Done():
				// The client went away; the job keeps running for the
				// next requester (it is content-addressed).
				httpError(w, statusClientClosedRequest, "client closed request")
				return
			}
		}
		// One snapshot decides both status and body, so a 202 can never
		// carry an already-terminal body.
		v := job.View()
		status := http.StatusAccepted
		if v.State.Terminal() {
			status = http.StatusOK
		}
		writeJSON(w, status, v)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		tr, ready := job.Trace()
		switch {
		case !ready:
			httpError(w, http.StatusConflict, "job %s not terminal; its trace is served once it finishes", job.ID)
		case tr == nil:
			httpError(w, http.StatusNotFound, "no trace recorded for job %s", job.ID)
		default:
			writeJSON(w, http.StatusOK, tr)
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !s.Cancel(id) {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		job, ok := s.Job(id)
		if !ok {
			// Retention evicted the just-cancelled job between the two
			// calls; it is gone, which is what a cancel wants anyway.
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, AlgorithmViews())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WriteMetrics(w)
	})

	return mux
}

// statusClientClosedRequest is nginx's non-standard 499, the
// conventional "client went away while we were working" status.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
