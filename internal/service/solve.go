package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/hbstar"
	"repro/internal/place"
	"repro/internal/wire"
)

// annealOptions maps wire solver options onto the engine's, threading
// the job context and the progress sink. Defaults come from
// wire.Options.Normalize — the same normalization the cache key is
// hashed over, so requests that hash identically always solve
// identically (o is a copy; the caller's options are untouched).
func annealOptions(ctx context.Context, o wire.Options, progress func(anneal.Stats)) anneal.Options {
	o.Normalize()
	return anneal.Options{
		Seed:          o.Seed,
		Workers:       o.Workers,
		MovesPerStage: o.MovesPerStage,
		MaxStages:     o.MaxStages,
		StallStages:   o.StallStages,
		Cooling:       o.Cooling,
		InitialTemp:   o.InitialTemp,
		MinTemp:       o.MinTemp,
		Context:       ctx,
		Progress:      progress,
	}
}

// flatRunners are the wire methods backed by flat placers. Only the
// sequence-pair placer enforces symmetry groups by construction; the
// others ignore them in their move sets but still optimize the
// identical composite objective (including the thermal term over
// symmetry pairs), so portfolio mode compares like for like, and
// every result is judged against the problem's full constraint set.
var flatRunners = map[string]func(*place.Problem, anneal.Options) (*place.Result, error){
	wire.MethodSeqPair:  place.SeqPair,
	wire.MethodBStar:    place.BStar,
	wire.MethodTCG:      place.TCG,
	wire.MethodSlicing:  place.Slicing,
	wire.MethodAbsolute: place.Absolute,
}

// portfolioMethods are raced by MethodPortfolio, in tie-break order.
var portfolioMethods = []string{wire.MethodSeqPair, wire.MethodBStar, wire.MethodTCG}

// Solve runs one wire request to completion (or cancellation) and
// builds the wire result; it is the one solve path shared by the
// scheduler, the CLI's -json mode and client examples, and it alone
// converts the request's timeout_ms into a context deadline (callers
// layer their own ceilings on ctx). The progress callback (may be
// nil) receives every annealing stage snapshot tagged with the
// method that produced it.
func Solve(ctx context.Context, req *wire.Request, progress func(method string, st anneal.Stats)) (*wire.Result, error) {
	// Always solve the canonical form, whatever the caller's spelling:
	// content-addressed caching is only sound if the normalized
	// encoding is also the one that runs. Normalize never masks
	// validity; Validate rejects what decoding would have rejected.
	req.Problem.Normalize()
	req.Options.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if t := req.Options.TimeoutMS; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := solveMethod(ctx, req.Options.Method, req, progress) // Normalize made the method explicit
	if err != nil {
		return nil, err
	}
	if res.Stages == 0 && !res.Cancelled {
		// A degenerate schedule (e.g. min_temp above the calibrated
		// initial temperature, which static validation cannot see)
		// would hand back — and cache — the random initial placement
		// as if it were solved.
		return nil, fmt.Errorf("service: schedule ran zero annealing stages; check min_temp against the (calibrated) initial temperature")
	}
	res.RuntimeMS = time.Since(start).Milliseconds()
	return res, nil
}

func solveMethod(ctx context.Context, method string, req *wire.Request, progress func(string, anneal.Stats)) (*wire.Result, error) {
	switch method {
	case wire.MethodPortfolio:
		return solvePortfolio(ctx, req, progress)
	case wire.MethodHBStar:
		return solveHBStar(ctx, req, progress)
	default:
		return solveFlat(ctx, method, req, progress)
	}
}

func solveFlat(ctx context.Context, method string, req *wire.Request, progress func(string, anneal.Stats)) (*wire.Result, error) {
	runner, ok := flatRunners[method]
	if !ok {
		return nil, fmt.Errorf("service: unknown method %q", method)
	}
	prob, err := req.Problem.Place()
	if err != nil {
		return nil, err
	}
	var sink func(anneal.Stats)
	if progress != nil {
		sink = func(st anneal.Stats) { progress(method, st) }
	}
	res, err := runner(prob, annealOptions(ctx, req.Options, sink))
	if err != nil {
		return nil, err
	}
	return buildResult(&req.Problem, method, prob, res.Placement, res.Cost, res.Stats), nil
}

func solveHBStar(ctx context.Context, req *wire.Request, progress func(string, anneal.Stats)) (*wire.Result, error) {
	bench, err := req.Problem.Bench()
	if err != nil {
		return nil, err
	}
	obj := req.Problem.Objective
	// prox_weight tunes the flat placers' pull term only; the
	// hierarchical placer always enforces proximity through its
	// fragments penalty (same contract as core.PlaceBenchObjective).
	hp := &hbstar.Problem{
		Bench:         bench,
		AreaWeight:    obj.AreaWeight,
		WireWeight:    obj.WireWeight,
		OutlineW:      obj.OutlineW,
		OutlineH:      obj.OutlineH,
		OutlineWeight: obj.OutlineWeight,
		ThermalWeight: obj.ThermalWeight,
		ThermalSigma:  obj.ThermalSigma,
	}
	if len(req.Problem.Power) > 0 {
		hp.Power = make(map[string]float64, len(req.Problem.Power))
		for i, pw := range req.Problem.Power {
			hp.Power[req.Problem.Modules[i].Name] = pw
		}
	}
	var sink func(anneal.Stats)
	if progress != nil {
		sink = func(st anneal.Stats) { progress(wire.MethodHBStar, st) }
	}
	res, err := hbstar.Place(hp, annealOptions(ctx, req.Options, sink))
	if err != nil {
		return nil, err
	}
	out := placementResult(&req.Problem, wire.MethodHBStar, res.Placement, res.Cost, res.Stats)
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, v.Error())
	}
	return out, nil
}

// solvePortfolio races the three fast flat representations on the
// same problem concurrently — each chain honors the job context, so
// one DELETE cancels the whole race — and keeps the winner. Ranking
// is feasibility first (fewest constraint violations), then cost,
// then the fixed method order, so a symmetry-constrained problem is
// never "won" by a representation that ignored its symmetry groups,
// and the choice is deterministic.
func solvePortfolio(ctx context.Context, req *wire.Request, progress func(string, anneal.Stats)) (*wire.Result, error) {
	type entry struct {
		res *wire.Result
		err error
	}
	results := make([]entry, len(portfolioMethods))
	// The racers split the request's worker budget rather than each
	// claiming it, so method=portfolio cannot multiply the MaxWorkers
	// ceiling by the racer count.
	racerReq := *req
	racerReq.Options.Workers = max(1, req.Options.Workers/len(portfolioMethods))
	req = &racerReq
	var wg sync.WaitGroup
	wg.Add(len(portfolioMethods))
	for i, m := range portfolioMethods {
		go func(i int, m string) {
			defer wg.Done()
			defer func() {
				// One racer's panic fails that racer, not the daemon:
				// this goroutine is outside the scheduler's recover.
				if r := recover(); r != nil {
					results[i] = entry{nil, fmt.Errorf("service: %s racer panic: %v\n%s", m, r, debug.Stack())}
				}
			}()
			res, err := solveMethod(ctx, m, req, progress)
			results[i] = entry{res, err}
		}(i, m)
	}
	wg.Wait()

	order := make([]int, 0, len(results))
	var firstErr error
	for i, e := range results {
		if e.err != nil {
			if firstErr == nil {
				firstErr = e.err
			}
			continue
		}
		order = append(order, i)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("service: every portfolio racer failed: %v", firstErr)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := results[order[a]].res, results[order[b]].res
		if len(ra.Violations) != len(rb.Violations) {
			return len(ra.Violations) < len(rb.Violations)
		}
		if ra.Cost != rb.Cost {
			return ra.Cost < rb.Cost
		}
		return order[a] < order[b]
	})
	win := results[order[0]].res
	if win.Stages == 0 && !win.Cancelled {
		// Checked on the winner's own counters, before loser
		// aggregation can mask it: a zero-stage winner is its random
		// initial placement, not a solved one (see Solve's guard).
		return nil, fmt.Errorf("service: portfolio winner %s ran zero annealing stages; check min_temp against the (calibrated) initial temperature", win.Method)
	}
	// Aggregate race-wide counters so progress and result agree on the
	// total work done — and the race-wide cancellation: if any racer
	// was truncated, the race is not the full deterministic race, so
	// the result must be flagged cancelled (and therefore never
	// cached), even when the winning racer itself ran to completion.
	// A deadline-free identical request must not be served a
	// deadline-shaped winner.
	for _, i := range order[1:] {
		win.Stages += results[i].res.Stages
		win.Moves += results[i].res.Moves
		if results[i].res.Cancelled {
			win.Cancelled = true
		}
	}
	return win, nil
}

// buildResult judges a flat placer's output against the problem's
// full constraint set (symmetry included, whether or not the
// representation enforced it by construction).
func buildResult(p *wire.Problem, method string, full *place.Problem, pl geom.Placement, cost float64, stats anneal.Stats) *wire.Result {
	out := placementResult(p, method, pl, cost, stats)
	for _, v := range full.ConstraintSet().Violations(pl) {
		out.Violations = append(out.Violations, v.Error())
	}
	return out
}

// placementResult assembles the common wire result fields from a
// named placement.
func placementResult(p *wire.Problem, method string, pl geom.Placement, cost float64, stats anneal.Stats) *wire.Result {
	bb := pl.BBox()
	out := &wire.Result{
		Version:   wire.Version,
		Name:      p.Name,
		Method:    method,
		Cost:      cost,
		BBoxW:     bb.W,
		BBoxH:     bb.H,
		AreaUsage: pl.AreaUsage(),
		Legal:     pl.Legal(),
		Cancelled: stats.Cancelled,
		Stages:    stats.Stages,
		Moves:     stats.Moves,
	}
	// Wire placements list modules in problem order, so byte-equal
	// results mean identical placements.
	for _, m := range p.Modules {
		if r, ok := pl[m.Name]; ok {
			out.Placement = append(out.Placement, wire.Placed{Name: m.Name, X: r.X, Y: r.Y, W: r.W, H: r.H})
		}
	}
	return out
}
