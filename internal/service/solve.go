package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/placer"
)

// Solve runs one wire request to completion (or cancellation) and
// builds the wire result; it is the one solve path shared by the
// scheduler, the CLI's -json mode and client examples, and it alone
// converts the request's timeout_ms into a context deadline (callers
// layer their own ceilings on ctx). It is a thin adapter over
// placer.Solve: the wire problem converts to the canonical
// placer.Problem, the options map onto functional options, and the
// placer registry does all algorithm dispatch — the service carries
// no algorithm switch of its own. The progress callback (may be nil)
// receives every annealing stage snapshot tagged with the algorithm
// that produced it. Extra placer options (the scheduler's checkpoint
// wiring, a shortened pressure-mode schedule) are appended after the
// request-derived ones, so they win where they overlap.
//
// Failpoints (chaos testing, see internal/fault): "solve/error" fails
// the solve with an injected error; "solve/slow" stalls it — bounded
// by ctx, so deadlines and cancellation still cut a stuck solve loose.
func Solve(ctx context.Context, req *wire.Request, progress func(placer.Progress), extra ...placer.Option) (*wire.Result, error) {
	// Always solve the canonical form, whatever the caller's spelling:
	// content-addressed caching is only sound if the normalized
	// encoding is also the one that runs. Normalize never masks
	// validity; Validate rejects what decoding would have rejected.
	req.Problem.Normalize()
	req.Options.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if t := req.Options.TimeoutMS; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t)*time.Millisecond)
		defer cancel()
	}
	opts := []placer.Option{
		placer.WithSeed(req.Options.Seed),
		placer.WithWorkers(req.Options.Workers),
		placer.WithSchedule(req.Options.Schedule()),
	}
	if req.Options.TemperChains > 0 {
		opts = append(opts, placer.WithTempering(req.Options.TemperChains, req.Options.ExchangeEvery))
	}
	if req.Options.Method == wire.MethodPortfolio {
		opts = append(opts, placer.WithPortfolio())
	} else {
		opts = append(opts, placer.WithAlgorithm(req.Options.Method)) // Normalize made the method explicit
	}
	if progress != nil {
		opts = append(opts, placer.WithProgress(progress))
	}
	opts = append(opts, extra...)
	ctx, span := obs.StartSpan(ctx, "solve",
		obs.KV("method", req.Options.Method), obs.KV("problem", req.Problem.Name))
	defer span.End()
	fired, err := injectSolveFaults(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := placer.Solve(ctx, req.Problem.ToCanon(), opts...)
	if err != nil {
		return nil, err
	}
	// The wire result names the algorithm that produced the placement;
	// under method=portfolio that is the winning racer, same as before
	// the placer refactor, so clients learn which representation won.
	out := wireResult(&req.Problem, res.Algorithm, res)
	out.RuntimeMS = time.Since(start).Milliseconds()
	if tr := wire.TraceFromPlacer(res.Trace); tr != nil {
		// Solve-path failpoints fire before any chain exists; they lead
		// the recording with worker/stage -1 so chaos runs are visible
		// in the same trace that explains the solve.
		for i, point := range fired {
			tr.Events = append(tr.Events, wire.TraceEvent{})
			copy(tr.Events[i+1:], tr.Events[i:])
			tr.Events[i] = wire.TraceEvent{Kind: wire.TraceKindFailpoint, Worker: -1, Stage: -1, Point: point}
		}
		out.Trace = tr
	}
	// Portfolio races carry every racer's (capped) recording alongside
	// the winner's full trace.
	for _, et := range res.EngineTraces {
		out.EngineTraces = append(out.EngineTraces, wire.TraceFromPlacer(et))
	}
	return out, nil
}

// maxInjectedStall bounds the "solve/slow" failpoint's stall on a
// context with no deadline, so an injected hang can prove the
// MaxSolve/timeout machinery cuts stuck solves loose without being
// able to wedge a deadline-free caller forever.
const maxInjectedStall = 30 * time.Second

// injectSolveFaults applies the solve-path failpoints: a stall
// ("solve/slow", bounded by ctx) and an error return ("solve/error").
// With no failpoint armed it costs one atomic load per name. It
// returns the names of failpoints that fired (for the flight
// recording) alongside any injected error.
func injectSolveFaults(ctx context.Context) (fired []string, err error) {
	if fault.Point("solve/slow") {
		fired = append(fired, "solve/slow")
		t := time.NewTimer(maxInjectedStall)
		select {
		case <-ctx.Done():
		case <-t.C:
		}
		t.Stop()
	}
	if fault.Point("solve/error") {
		fired = append(fired, "solve/error")
		return fired, fmt.Errorf("service: injected solve error (failpoint solve/error)")
	}
	return fired, nil
}

// wireResult encodes a placer result onto the wire.
func wireResult(p *wire.Problem, method string, res *placer.Result) *wire.Result {
	out := &wire.Result{
		Version:    wire.Version,
		Name:       p.Name,
		Method:     method,
		Cost:       res.Cost,
		Breakdown:  wireBreakdown(res.Breakdown),
		BBoxW:      res.BBoxW,
		BBoxH:      res.BBoxH,
		AreaUsage:  res.AreaUsage,
		Legal:      res.Legal,
		Violations: res.Violations,
		Cancelled:  res.Cancelled,
		Stages:     res.Stages,
		Moves:      res.Moves,
	}
	// Wire placements list modules in problem order (placer.Result
	// already does), so byte-equal results mean identical placements.
	for _, m := range res.Placement {
		out.Placement = append(out.Placement, wire.Placed(m))
	}
	return out
}

// wireBreakdown maps the per-term cost decomposition onto the named
// wire fields (weighted contributions; they sum to the result cost).
func wireBreakdown(terms []placer.TermCost) *wire.Breakdown {
	if len(terms) == 0 {
		return nil
	}
	bd := &wire.Breakdown{}
	for _, t := range terms {
		switch t.Name {
		case "area":
			bd.Area = t.Cost
		case "hpwl":
			bd.HPWL = t.Cost
		case "outline":
			bd.Outline = t.Cost
		case "proximity":
			bd.Proximity = t.Cost
		case "thermal":
			bd.Thermal = t.Cost
		case "overlap":
			bd.Overlap = t.Cost
		case "proximity-frag":
			bd.Fragments = t.Cost
		}
	}
	return bd
}

// AlgorithmView is one registry entry on the HTTP API and in the
// CLI's -algorithms listing.
type AlgorithmView struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"` // flat, hierarchical, or portfolio (the meta-method)
	Portfolio   bool   `json:"portfolio"`
	Description string `json:"description,omitempty"`
}

// AlgorithmViews lists every valid wire method from the placer
// registry: the registered engines (name, flat/hierarchical,
// portfolio eligibility) plus the portfolio meta-method, so clients
// never have to guess valid `algorithm` strings.
func AlgorithmViews() []AlgorithmView {
	infos := placer.Algorithms()
	out := make([]AlgorithmView, 0, len(infos)+1)
	for _, info := range infos {
		out = append(out, AlgorithmView{
			Name:        info.Name,
			Kind:        info.Kind(),
			Portfolio:   info.PortfolioEligible(),
			Description: info.Description,
		})
	}
	out = append(out, AlgorithmView{
		Name:        wire.MethodPortfolio,
		Kind:        "portfolio",
		Description: fmt.Sprintf("races %v concurrently and keeps the best feasible placement", placer.PortfolioAlgorithms()),
	})
	return out
}
