// Fleet suite: the multi-instance and multi-tenant surface — durable
// stores shared between daemon instances, the batch endpoint, SSE job
// streams, and per-tenant admission quotas with fair queueing.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/wire"
)

// fleetConfig builds a Config whose result and job stores live on a
// shared directory, the way cmd/placed -store-dir wires them.
func fleetConfig(t *testing.T, dir, instance string) Config {
	t.Helper()
	rs, err := store.NewFile(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	js, err := store.NewFile(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Workers:  1,
		Results:  store.NewResultCache(rs, 0),
		Jobs:     store.NewJobStore(js, 0),
		Instance: instance,
	}
}

// TestFileStoreCrossInstance pins the fleet-cache contract: a result
// solved by one daemon instance is a cache hit on a second instance
// sharing the file-backed store, and the first instance's job records
// are queryable from the second over HTTP.
func TestFileStoreCrossInstance(t *testing.T) {
	dir := t.TempDir()

	s1 := New(fleetConfig(t, dir, "one"))
	j1, err := s1.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitJob(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("first instance job ended %s: %s", j1.State(), j1.Err())
	}
	if !strings.HasPrefix(j1.ID, "one-") {
		t.Fatalf("job id %q missing the instance prefix", j1.ID)
	}
	s1.Close()

	// A second instance sharing the directory answers the identical
	// request from the cache without solving.
	h2 := newHarness(t, fleetConfig(t, dir, "two"))
	j2, err := h2.s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitJob(t, j2)
	if !j2.CacheHit() {
		t.Fatal("second instance missed the shared result cache")
	}
	b1 := mustJSON(t, res1)
	b2 := mustJSON(t, res2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("shared cache returned a different result")
	}
	if h2.metric("placed_cache_hits_total") != 1 {
		t.Fatal("cache hit not counted")
	}

	// The first instance's job record is served by the second via the
	// job-store fallback (it was never in instance two's memory).
	code, body := h2.do(http.MethodGet, "/v1/jobs/"+j1.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cross-instance job lookup: %d %s", code, body)
	}
	v := h2.job(body)
	if v.ID != j1.ID || v.State != StateDone || v.Result == nil {
		t.Fatalf("cross-instance record wrong: %+v", v)
	}
	// Its trace rides the record too.
	code, _ = h2.do(http.MethodGet, "/v1/jobs/"+j1.ID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("cross-instance trace lookup: %d", code)
	}
}

// batchBody builds a batch of requests from per-item seeds; equal
// seeds make wire-identical items.
func batchBody(t *testing.T, seeds ...int64) []byte {
	t.Helper()
	var b wire.BatchRequest
	for _, seed := range seeds {
		req := millerRequest(t, wire.MethodSeqPair)
		req.Options.Seed = seed
		b.Items = append(b.Items, *req)
	}
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchCoalescesIdenticalItems pins the batch acceptance
// criterion: K identical problems in one batch produce exactly one
// solve (verified via /metrics), and every item's view reports the
// shared job.
func TestBatchCoalescesIdenticalItems(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	const k = 4
	code, body := h.do(http.MethodPost, "/v1/place:batch?wait=1", batchBody(t, 9, 9, 9, 9))
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var v BatchView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad batch JSON: %v\n%s", err, body)
	}
	if len(v.Jobs) != k {
		t.Fatalf("batch returned %d items, want %d", len(v.Jobs), k)
	}
	id := ""
	for i, item := range v.Jobs {
		if item.Job == nil {
			t.Fatalf("item %d rejected: %s", i, item.Error)
		}
		if item.Job.State != StateDone {
			t.Fatalf("item %d ended %s", i, item.Job.State)
		}
		if id == "" {
			id = item.Job.ID
		} else if item.Job.ID != id {
			t.Fatalf("identical items got distinct jobs %s and %s", id, item.Job.ID)
		}
	}
	if done := h.metric(`placed_jobs_total{state="done"}`); done != 1 {
		t.Fatalf("batch of %d identical items ran %g solves, want exactly 1", k, done)
	}
	if co := h.metric("placed_coalesced_total"); co != k-1 {
		t.Fatalf("coalesced %g submissions, want %d", co, k-1)
	}

	// Distinct items in one batch get distinct jobs.
	code, body = h.do(http.MethodPost, "/v1/place:batch?wait=1", batchBody(t, 10, 11))
	if code != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Jobs[0].Job.ID == v.Jobs[1].Job.ID {
		t.Fatal("distinct items coalesced")
	}

	// An invalid item rejects the whole batch before any job exists.
	var bad wire.BatchRequest
	req := millerRequest(t, wire.MethodSeqPair)
	req.Problem.Modules[0].W = -1
	bad.Items = append(bad.Items, *req)
	bb := mustJSON(t, bad)
	code, body = h.do(http.MethodPost, "/v1/place:batch", bb)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid batch: %d %s", code, body)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes a text/event-stream body until the "done" event (or
// EOF), returning the events in arrival order.
func readSSE(t *testing.T, r *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for r.Scan() {
		line := r.Text()
		switch {
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// TestSSEJobStream pins the streaming contract: a job stream carries
// at least one progress snapshot and one flight-recorder stage event,
// ends with the terminal view, and observation does not perturb the
// solve — the streamed job's placement is bit-identical to the same
// request solved with no stream attached.
func TestSSEJobStream(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})
	code, body := h.do(http.MethodPost, "/v1/place", millerWireRequest(t))
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	id := h.job(body).ID

	req, err := http.NewRequest(http.MethodGet, h.srv.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := h.httpc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	events := readSSE(t, bufio.NewScanner(resp.Body))

	var progress, stage int
	var final JobView
	sawDone := false
	for _, e := range events {
		switch e.name {
		case "progress":
			progress++
			var p Progress
			if err := json.Unmarshal([]byte(e.data), &p); err != nil {
				t.Fatalf("bad progress event: %v\n%s", err, e.data)
			}
		case "stage":
			stage++
			var te wire.TraceEvent
			if err := json.Unmarshal([]byte(e.data), &te); err != nil {
				t.Fatalf("bad stage event: %v\n%s", err, e.data)
			}
			if te.Kind != wire.TraceKindStage {
				t.Fatalf("stage event with kind %q", te.Kind)
			}
		case "done":
			sawDone = true
			if err := json.Unmarshal([]byte(e.data), &final); err != nil {
				t.Fatalf("bad done event: %v\n%s", err, e.data)
			}
		}
	}
	if progress == 0 {
		t.Error("stream carried no progress events")
	}
	if stage == 0 {
		t.Error("stream carried no stage events")
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final view %+v", final)
	}

	// Determinism pin: the same request on a stream-free daemon places
	// bit-identically (RuntimeMS is wall-clock and excluded).
	h2 := newHarness(t, Config{Workers: 1})
	code, body = h2.do(http.MethodPost, "/v1/place?wait=1", millerWireRequest(t))
	if code != http.StatusOK {
		t.Fatalf("plain submit: %d %s", code, body)
	}
	plain := h2.job(body)
	a, b := *final.Result, *plain.Result
	a.RuntimeMS, b.RuntimeMS = 0, 0
	if !bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Fatal("streamed solve differs from unobserved solve")
	}
}

// tenantDo is h.do with an X-API-Key header.
func tenantDo(h *httpHarness, tenant, method, path string, body []byte) (int, []byte, http.Header) {
	h.t.Helper()
	req, err := http.NewRequest(method, h.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := h.httpc.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// seedRequest is millerWireRequest with a chosen seed, for distinct
// content hashes per submission.
func seedRequest(t *testing.T, seed int64) []byte {
	t.Helper()
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.Seed = seed
	return mustJSON(t, req)
}

// TestTenantQuota pins admission control: a tenant over its token
// bucket gets 429 with a sane Retry-After while other tenants are
// unaffected, cache hits stay quota-free, and the rejections surface
// in the per-tenant metrics.
func TestTenantQuota(t *testing.T) {
	// Refill is negligible in test time: two tokens, then throttled.
	h := newHarness(t, Config{Workers: 2, TenantRate: 0.01, TenantBurst: 2})

	for i := int64(0); i < 2; i++ {
		code, body, _ := tenantDo(h, "alice", http.MethodPost, "/v1/place?wait=1", seedRequest(t, 100+i))
		if code != http.StatusOK {
			t.Fatalf("alice submit %d: %d %s", i, code, body)
		}
	}
	code, body, hdr := tenantDo(h, "alice", http.MethodPost, "/v1/place", seedRequest(t, 300))
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over quota got %d %s, want 429", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("quota 429 carried Retry-After %q", ra)
	}
	if !strings.Contains(string(body), "quota") {
		t.Fatalf("quota rejection body %s does not say why", body)
	}

	// Another tenant has its own bucket.
	code, body, _ = tenantDo(h, "bob", http.MethodPost, "/v1/place?wait=1", seedRequest(t, 400))
	if code != http.StatusOK {
		t.Fatalf("bob submit: %d %s", code, body)
	}

	// Cache hits are quota-free: alice can re-read her solved problem
	// with an empty bucket.
	code, body, _ = tenantDo(h, "alice", http.MethodPost, "/v1/place?wait=1", seedRequest(t, 100))
	if code != http.StatusOK {
		t.Fatalf("alice cache hit: %d %s", code, body)
	}
	if !h.job(body).CacheHit {
		t.Fatal("resubmission was not a cache hit")
	}

	if got := h.metric(`placed_tenant_throttled_total{tenant="alice"}`); got != 1 {
		t.Fatalf("alice throttled %g times in metrics, want 1", got)
	}
	if got := h.metric(`placed_tenant_admitted_total{tenant="bob"}`); got != 1 {
		t.Fatalf("bob admitted %g times in metrics, want 1", got)
	}

	// The batch endpoint charges the same bucket: alice's batch of
	// fresh problems is rejected whole with a batch-level 429.
	code, body, hdr = tenantDo(h, "alice", http.MethodPost, "/v1/place:batch", batchBody(t, 500, 501))
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice batch over quota: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("batch 429 without Retry-After")
	}
	var bv BatchView
	if err := json.Unmarshal(body, &bv); err != nil {
		t.Fatal(err)
	}
	for i, item := range bv.Jobs {
		if item.Error == "" || item.RetryAfterS < 1 {
			t.Fatalf("batch item %d missing rejection detail: %+v", i, item)
		}
	}
}

// fakeJob builds a queued job for fair-queue unit tests.
func fakeJob(id, tenant string) *Job {
	return &Job{ID: id, tenant: tenant, done: make(chan struct{})}
}

// TestFairQueueOrder pins the weighted-fair dequeue: FIFO within a
// tenant, interleaving across tenants (no flooding tenant starves a
// trickle), weight-proportional service, deterministic tie-breaks, and
// crash requeue at the head of the lane without a new vtime charge.
func TestFairQueueOrder(t *testing.T) {
	popAll := func(q *fairQueue) []string {
		var ids []string
		for j := q.pop(); j != nil; j = q.pop() {
			ids = append(ids, j.ID)
		}
		return ids
	}

	// A floods three jobs before B's one: B is served after a single A.
	q := newFairQueue(nil)
	for _, j := range []*Job{fakeJob("a1", "A"), fakeJob("a2", "A"), fakeJob("a3", "A"), fakeJob("b1", "B")} {
		q.push(j)
	}
	if got := fmt.Sprint(popAll(q)); got != "[a1 b1 a2 a3]" {
		t.Fatalf("unweighted pop order %s", got)
	}

	// Weight 2 drains twice as fast under contention.
	q = newFairQueue(map[string]float64{"B": 2})
	for i := 1; i <= 3; i++ {
		q.push(fakeJob(fmt.Sprintf("a%d", i), "A"))
	}
	for i := 1; i <= 3; i++ {
		q.push(fakeJob(fmt.Sprintf("b%d", i), "B"))
	}
	if got := fmt.Sprint(popAll(q)); got != "[a1 b1 b2 a2 b3 a3]" {
		t.Fatalf("weighted pop order %s", got)
	}

	// Crash requeue goes back to the head of its own lane.
	q = newFairQueue(nil)
	q.push(fakeJob("a1", "A"))
	q.push(fakeJob("a2", "A"))
	first := q.pop()
	q.pushFront(first)
	if got := fmt.Sprint(popAll(q)); got != "[a1 a2]" {
		t.Fatalf("requeue order %s", got)
	}

	// remove frees the slot and is idempotent for popped jobs.
	q = newFairQueue(nil)
	j1, j2 := fakeJob("a1", "A"), fakeJob("a2", "A")
	q.push(j1)
	q.push(j2)
	q.remove(j1)
	if q.len() != 1 {
		t.Fatalf("len %d after remove", q.len())
	}
	popped := q.pop()
	q.remove(popped) // no-op
	if popped.ID != "a2" || q.len() != 0 {
		t.Fatalf("remove broke the lane: %v len %d", popped.ID, q.len())
	}

	// An idling tenant banks no credit: B activating late starts at the
	// current virtual clock, not at zero.
	q = newFairQueue(nil)
	for i := 1; i <= 4; i++ {
		q.push(fakeJob(fmt.Sprintf("a%d", i), "A"))
	}
	q.pop() // a1
	q.pop() // a2; A.vtime = 2 = vclock
	q.push(fakeJob("b1", "B"))
	q.push(fakeJob("b2", "B"))
	// B starts at vclock 2, ties with A broken lexicographically.
	if got := fmt.Sprint(popAll(q)); got != "[a3 b1 a4 b2]" {
		t.Fatalf("activation catch-up order %s", got)
	}

	// depths reports per-tenant backlog.
	q = newFairQueue(nil)
	q.push(fakeJob("a1", "A"))
	q.push(fakeJob("b1", "B"))
	q.push(fakeJob("b2", "B"))
	d := q.depths()
	if d["A"] != 1 || d["B"] != 2 {
		t.Fatalf("depths %v", d)
	}
}

// TestJobStoreOutlivesRetention: with a tiny in-memory retention but a
// roomy job store, an evicted job stays queryable over HTTP through
// the record fallback.
func TestJobStoreOutlivesRetention(t *testing.T) {
	js := store.NewJobStore(store.NewMemory(64), 0)
	h := newHarness(t, Config{Workers: 1, RetainJobs: 1, Jobs: js})

	code, body := h.do(http.MethodPost, "/v1/place?wait=1", seedRequest(t, 1))
	if code != http.StatusOK {
		t.Fatalf("first submit: %d %s", code, body)
	}
	first := h.job(body)
	code, body = h.do(http.MethodPost, "/v1/place?wait=1", seedRequest(t, 2))
	if code != http.StatusOK {
		t.Fatalf("second submit: %d %s", code, body)
	}

	// RetainJobs 1: the first job is out of the in-memory table.
	if _, ok := h.s.Job(first.ID); ok {
		t.Fatal("first job still in memory; retention did not evict")
	}
	code, body = h.do(http.MethodGet, "/v1/jobs/"+first.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("evicted job lookup: %d %s", code, body)
	}
	v := h.job(body)
	if v.ID != first.ID || v.State != StateDone || v.Result == nil {
		t.Fatalf("record-backed view wrong: %+v", v)
	}
}

// TestRetainedEngineTraces: a portfolio solve through the service
// keeps the per-racer recordings on the wire result, each bounded by
// the retention cap.
func TestRetainedEngineTraces(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})
	req := millerRequest(t, wire.MethodPortfolio)
	code, body := h.do(http.MethodPost, "/v1/place?wait=1", mustJSON(t, req))
	if code != http.StatusOK {
		t.Fatalf("portfolio submit: %d %s", code, body)
	}
	v := h.job(body)
	if v.Result == nil || len(v.Result.EngineTraces) == 0 {
		t.Fatal("portfolio result retained no engine traces")
	}
	for _, tr := range v.Result.EngineTraces {
		if len(tr.Events) > 256 {
			t.Fatalf("engine trace %q has %d events, over the cap", tr.Method, len(tr.Events))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("engine trace invalid: %v", err)
		}
	}

	// The single-engine path stays lean: no engine traces.
	code, body = h.do(http.MethodPost, "/v1/place?wait=1", seedRequest(t, 77))
	if code != http.StatusOK {
		t.Fatalf("single submit: %d %s", code, body)
	}
	v = h.job(body)
	if v.Result == nil || len(v.Result.EngineTraces) != 0 {
		t.Fatalf("single-engine result grew engine traces: %+v", v.Result.EngineTraces)
	}
}

// Guard against a harness regression where ?wait=1 batches report
// non-terminal items (the wait must cover every fanned job).
func TestBatchWaitIsTerminal(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})
	code, body := h.do(http.MethodPost, "/v1/place:batch?wait=1", batchBody(t, 21, 22, 23))
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var v BatchView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	for i, item := range v.Jobs {
		if item.Job == nil || !item.Job.State.Terminal() {
			t.Fatalf("waited batch item %d not terminal: %+v", i, item)
		}
	}
}
